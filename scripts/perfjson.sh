#!/bin/sh
# perfjson.sh — capture one machine-readable performance snapshot.
#
# Combines the fig8/fig10 replay tables (edcbench -format json), the
# background-maintenance before/after space table (-experiment maint),
# the content-addressed dedup off/on table (-experiment dedup), the
# multi-tenant QoS isolation table (-experiment qos), the codec
# microbenchmarks (go test -bench, parsed into JSON), one open-loop
# serve run (edcbench -serve -json), and the corescale wall-clock
# scaling sweep (scripts/corescale.sh) into a single file.
# Invoked by `make perfjson`, which names the output (BENCH_10.json by
# default); the numbers are whatever this machine produces, so snapshots
# from different hosts are comparable only in shape, not in magnitude
# (the corescale section records its own honest `cores` count).
set -eu

out=${1:-BENCH_10.json}
servespec=${SERVESPEC:-specs/serve-smoke.spec}
requests=${REQUESTS:-4000}
benchtime=${BENCHTIME:-10x}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/edcbench" ./cmd/edcbench
"$tmp/edcbench" -experiment fig8 -format json -requests "$requests" >"$tmp/fig8.json"
"$tmp/edcbench" -experiment fig10 -format json -requests "$requests" >"$tmp/fig10.json"
"$tmp/edcbench" -experiment maint -format json -requests "$requests" >"$tmp/maint.json"
"$tmp/edcbench" -experiment dedup -format json -requests "$requests" >"$tmp/dedup.json"
"$tmp/edcbench" -experiment qos -format json >"$tmp/qos.json"
"$tmp/edcbench" -serve -spec "$servespec" -clients 8 -shards 2 -volume 64 -json >"$tmp/serve.json"
CORESCALE_JSON="$tmp/corescale.json" sh scripts/corescale.sh
go test -run '^$' -bench 'Compress|Decompress' -benchmem \
	-benchtime "$benchtime" ./internal/compress >"$tmp/bench.txt"

# Convert `go test -bench` lines into a JSON array. A line looks like:
#   BenchmarkDecompress/gz/media/4KiB-8  100  8869 ns/op  461.86 MB/s  4096 B/op  1 allocs/op
awk '
BEGIN { printf "[" }
/^Benchmark/ {
	ns = 0; mbs = 0; bop = 0; aop = 0
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "MB/s") mbs = $i
		else if ($(i + 1) == "B/op") bop = $i
		else if ($(i + 1) == "allocs/op") aop = $i
	}
	printf "%s\n  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"mb_per_s\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
		sep, $1, $2, ns, mbs, bop, aop
	sep = ","
}
END { printf "\n]\n" }
' "$tmp/bench.txt" >"$tmp/bench.json"

{
	printf '{\n'
	printf '  "requests": %s,\n' "$requests"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "fig8": '
	cat "$tmp/fig8.json"
	printf ',\n  "fig10": '
	cat "$tmp/fig10.json"
	printf ',\n  "maint": '
	cat "$tmp/maint.json"
	printf ',\n  "dedup": '
	cat "$tmp/dedup.json"
	printf ',\n  "qos": '
	cat "$tmp/qos.json"
	printf ',\n  "codec_benchmarks": '
	cat "$tmp/bench.json"
	printf ',\n  "serve": '
	cat "$tmp/serve.json"
	printf ',\n  "corescale": '
	cat "$tmp/corescale.json"
	printf '}\n'
} >"$out"

echo "wrote $out"
