#!/bin/sh
# qoscheck.sh — determinism and tag-inertness gate for multi-tenant QoS,
# invoked by `make qoscheck`.
#
# Runs the two-tenant qos-smoke spec (latency class + bandwidth-shaped
# bulk class) twice under the race detector at one and two shards and
# fails on any divergence in the pipeline-determined results: per-step
# op counts and read/write mix, global and per-tenant request counts,
# codec mixes, byte totals, and the shaper's and admission control's
# action counts. Open-loop latency fields, achieved rates, and wall
# times depend on real-time mailbox batch boundaries (OBSERVABILITY.md,
# "Serve mode") and are excluded from the projection.
#
# Then runs a tagged-single-tenant spec against its untagged twin: the
# tag alone must change nothing beyond adding the tenant section.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -race -o "$tmp/edcbench" ./cmd/edcbench

stable='{spec, clients, shards,
  steps: [.steps[] | {index, step, ops, reads, writes, offered_qps}],
  requests: .result.Requests, reads: .result.Reads, writes: .result.Writes,
  orig: .result.OrigBytes, comp: .result.CompBytes, stored: .result.StoredBytes,
  runs: .result.RunsByTag, write_through: .result.WriteThrough,
  tenants: (.result.Tenants // {} | map_values(
    {Requests, Reads, Writes, RunsByTag, WriteThrough, Shaped, Rejected}))}'

run() { GOMAXPROCS=4 "$tmp/edcbench" -serve -volume 64 -clients 4 -json "$@"; }

for shards in 1 2; do
	run -spec specs/qos-smoke.spec -shards "$shards" | jq -S "$stable" >"$tmp/a.json"
	run -spec specs/qos-smoke.spec -shards "$shards" | jq -S "$stable" >"$tmp/b.json"
	cmp "$tmp/a.json" "$tmp/b.json" || {
		echo "qoscheck FAIL: qos-smoke diverged at $shards shard(s):" >&2
		diff "$tmp/a.json" "$tmp/b.json" >&2 || true
		exit 1
	}
done

# The tagged run differs from the untagged one only in the spec text,
# the step's tenant label, and the tenant section; drop those and
# demand identity.
untag='del(.spec, .tenants, .steps[].step.Tenant)'
run -spec 'tenant=web d=300ms qps=1000 rw=0.5' | jq -S "$stable | $untag" >"$tmp/t.json"
run -spec 'd=300ms qps=1000 rw=0.5' | jq -S "$stable | $untag" >"$tmp/u.json"
cmp "$tmp/t.json" "$tmp/u.json" || {
	echo "qoscheck FAIL: a bare tenant tag changed the run:" >&2
	diff "$tmp/t.json" "$tmp/u.json" >&2 || true
	exit 1
}

echo "qoscheck OK: QoS serve results are deterministic (1 and 2 shards, -race) and tags alone change nothing"
