#!/bin/sh
# corescale.sh — wall-clock scaling sweep for the live serve path.
#
# Runs the same open-loop spec at GOMAXPROCS 1, 2, and 4 and reports the
# harness throughput (ops per wall-clock second). Virtual-time results
# — counts, achieved QPS, latency percentiles — are the core-scaling
# control: they must not move with the core count; only wall-clock
# throughput should. Invoked by `make corescale`.
set -eu

spec=${SPEC:-specs/serve-smoke.spec}
clients=${CLIENTS:-8}
shards=${SHARDS:-2}
volume=${VOLUME:-64}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/edcbench" ./cmd/edcbench

echo "spec=$spec clients=$clients shards=$shards volume=${volume}MiB"
printf '%-10s  %-14s  %-10s\n' "GOMAXPROCS" "ops/sec wall" "wall"
for procs in 1 2 4; do
	GOMAXPROCS=$procs "$tmp/edcbench" -serve -spec "$spec" \
		-clients "$clients" -shards "$shards" -volume "$volume" \
		-json >"$tmp/run-$procs.json"
	opsw=$(sed -n 's/.*"ops_per_sec_wall": *\([0-9.e+-]*\).*/\1/p' "$tmp/run-$procs.json" | head -1)
	wall=$(sed -n 's/.*"wall_ns": *\([0-9]*\).*/\1/p' "$tmp/run-$procs.json" | head -1)
	printf '%-10s  %-14s  %sms\n' "$procs" "$opsw" "$((${wall:-0} / 1000000))"
done
