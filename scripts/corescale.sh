#!/bin/sh
# corescale.sh — wall-clock scaling sweep and determinism gate for the
# live serve path.
#
# Runs the same open-loop spec at GOMAXPROCS 1, 2, and 4 and reports the
# harness throughput (ops per wall-clock second). Two gates ride on the
# sweep:
#
#   1. Identity gate (always on): the virtual-time results — per-step
#      counts, achieved QPS, latency percentiles — are the core-scaling
#      control and must be byte-identical across all three runs. The
#      canonicalised `.steps` arrays are compared with cmp; any
#      divergence exits non-zero with a diff.
#   2. Speedup gate (opt-in): when CORESCALE_MIN is set (CI sets 1.5 on
#      its 4-vCPU runners), ops/sec-wall at GOMAXPROCS=4 must be at
#      least CORESCALE_MIN times the GOMAXPROCS=1 run. Unset locally so
#      single-core containers can still run the identity gate.
#
# Set CORESCALE_JSON=path to also write a machine-readable summary
# (consumed by scripts/perfjson.sh for the BENCH snapshot).
#
# Requires jq; all field extraction fails loudly on missing or
# malformed output. Invoked by `make corescale`.
set -eu

command -v jq >/dev/null 2>&1 || {
	echo "corescale: jq is required (apt-get install jq)" >&2
	exit 1
}

spec=${SPEC:-specs/corescale.spec}
clients=${CLIENTS:-8}
shards=${SHARDS:-2}
volume=${VOLUME:-64}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/edcbench" ./cmd/edcbench

# field FILE JQ_EXPR — extract one scalar, failing loudly if the path is
# missing, null, or empty (a sed-style silent miss is exactly the bug
# this script used to have).
field() {
	v=$(jq -er "$2" "$1") || {
		echo "corescale: field $2 missing from $1" >&2
		exit 1
	}
	[ -n "$v" ] || {
		echo "corescale: field $2 empty in $1" >&2
		exit 1
	}
	printf '%s' "$v"
}

echo "spec=$spec clients=$clients shards=$shards volume=${volume}MiB cores=$(nproc)"
printf '%-10s  %-14s  %-10s  %s\n' "GOMAXPROCS" "ops/sec wall" "wall" "pool submitted/stolen/inline"
for procs in 1 2 4; do
	GOMAXPROCS=$procs "$tmp/edcbench" -serve -spec "$spec" \
		-clients "$clients" -shards "$shards" -volume "$volume" \
		-json >"$tmp/run-$procs.json"
	opsw=$(field "$tmp/run-$procs.json" '.ops_per_sec_wall')
	wall=$(field "$tmp/run-$procs.json" '.wall_ns')
	# The pool block is omitted when no jobs ran off-loop (GOMAXPROCS=1
	# keeps a single worker, so it is normally present at every width).
	pool=$(jq -r 'if .pool then "\(.pool.submitted)/\(.pool.stolen)/\(.pool.inline)" else "-" end' "$tmp/run-$procs.json")
	# Virtual-time fingerprint: the canonicalised steps array. Everything
	# the simulation computes — counts, achieved QPS, percentiles — lives
	# here; wall-clock fields deliberately do not.
	jq -S '.steps' "$tmp/run-$procs.json" >"$tmp/steps-$procs.json"
	case $opsw in
	0 | 0.0 | "") echo "corescale: zero ops/sec at GOMAXPROCS=$procs" >&2 && exit 1 ;;
	esac
	printf '%-10s  %-14s  %-10s  %s\n' "$procs" "$opsw" "$((wall / 1000000))ms" "$pool"
done

for procs in 2 4; do
	if ! cmp -s "$tmp/steps-1.json" "$tmp/steps-$procs.json"; then
		echo "corescale: virtual-time results differ between GOMAXPROCS=1 and GOMAXPROCS=$procs" >&2
		diff "$tmp/steps-1.json" "$tmp/steps-$procs.json" >&2 || true
		exit 1
	fi
done
echo "virtual-time results identical across GOMAXPROCS 1/2/4"

ops1=$(field "$tmp/run-1.json" '.ops_per_sec_wall')
ops4=$(field "$tmp/run-4.json" '.ops_per_sec_wall')
speedup=$(awk -v a="$ops4" -v b="$ops1" 'BEGIN { printf "%.2f", a / b }')
echo "speedup 4v1: ${speedup}x"

if [ -n "${CORESCALE_MIN:-}" ]; then
	awk -v s="$speedup" -v m="$CORESCALE_MIN" 'BEGIN { exit !(s >= m) }' || {
		echo "corescale: speedup ${speedup}x below required ${CORESCALE_MIN}x" >&2
		exit 1
	}
	echo "speedup gate passed (>= ${CORESCALE_MIN}x)"
fi

if [ -n "${CORESCALE_JSON:-}" ]; then
	for procs in 1 2 4; do
		jq --argjson procs "$procs" \
			'{procs: $procs, wall_ns: .wall_ns, ops_per_sec_wall: .ops_per_sec_wall, stalls: .stalls, pool: .pool}' \
			"$tmp/run-$procs.json" >"$tmp/summary-$procs.json"
	done
	jq -n --arg spec "$spec" --argjson cores "$(nproc)" --argjson speedup "$speedup" \
		--slurpfile r1 "$tmp/summary-1.json" \
		--slurpfile r2 "$tmp/summary-2.json" \
		--slurpfile r4 "$tmp/summary-4.json" \
		'{spec: $spec, cores: $cores, speedup_4v1: $speedup, runs: ($r1 + $r2 + $r4)}' \
		>"$CORESCALE_JSON"
	echo "wrote $CORESCALE_JSON"
fi
