// Command codecbench microbenchmarks the four block codecs on synthetic
// datasets with controlled compressibility (the paper's Fig. 2 setup):
// compression ratio and measured compress/decompress throughput.
//
// Usage:
//
//	codecbench                          # all codecs, both Fig. 2 datasets
//	codecbench -dataset media -size 64  # one dataset, 64 MiB
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset: linux-src, firefox-bin, media, enterprise (empty = Fig. 2 pair)")
		sizeMiB = flag.Int("size", 32, "dataset size in MiB")
		chunkKB = flag.Int("chunk", 128, "chunk size in KiB")
		seed    = flag.Int64("seed", 21, "content seed")
	)
	flag.Parse()

	profiles := map[string]datagen.Profile{
		"linux-src":   datagen.LinuxSrc(),
		"firefox-bin": datagen.FirefoxBin(),
		"media":       datagen.Media(),
		"enterprise":  datagen.Enterprise(),
	}
	var selected []datagen.Profile
	if *dataset == "" {
		selected = []datagen.Profile{datagen.LinuxSrc(), datagen.FirefoxBin()}
	} else {
		p, ok := profiles[*dataset]
		if !ok {
			fmt.Fprintf(os.Stderr, "codecbench: unknown dataset %q\n", *dataset)
			os.Exit(1)
		}
		selected = []datagen.Profile{p}
	}

	reg := compress.Default()
	total := *sizeMiB << 20
	chunk := *chunkKB << 10
	fmt.Printf("%-12s %-5s %7s %10s %10s\n", "dataset", "codec", "ratio", "comp MB/s", "dec MB/s")
	for _, prof := range selected {
		data := datagen.New(prof, *seed).Block(0, total, 0)
		for _, name := range []string{"lzf", "lz4", "gz", "bwz"} {
			c, err := reg.ByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "codecbench: %v\n", err)
				os.Exit(1)
			}
			var compBytes int
			blobs := make([][]byte, 0, total/chunk)
			start := time.Now()
			for off := 0; off+chunk <= total; off += chunk {
				b := c.Compress(data[off : off+chunk])
				compBytes += len(b)
				blobs = append(blobs, b)
			}
			compDur := time.Since(start)
			start = time.Now()
			for _, b := range blobs {
				if _, err := c.Decompress(b, chunk); err != nil {
					fmt.Fprintf(os.Stderr, "codecbench: decompress: %v\n", err)
					os.Exit(1)
				}
			}
			decDur := time.Since(start)
			n := float64(len(blobs) * chunk)
			fmt.Printf("%-12s %-5s %7.2f %10.1f %10.1f\n",
				prof.Name, name,
				n/float64(compBytes),
				n/compDur.Seconds()/1e6,
				n/decDur.Seconds()/1e6)
		}
	}
}
