package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"edc"
	"edc/internal/bench"
	"edc/internal/workload"
)

// serveConfig carries the -serve mode flags.
type serveConfig struct {
	spec      string
	clients   int
	scheme    string
	volumeMiB int
	seed      int64
	workers   int
	shards    int
	mailbox   int
	batch     int
	faults    *edc.FaultPlan
	maint     bool
	dedup     bool
	dupRatio  float64
	dupUni    int
	format    string
	jsonOut   bool
}

// loadSpec resolves the -spec value: an existing file is read whole;
// anything else is treated as inline DSL with ';' standing in for
// newlines so a multi-step spec fits on one command line.
func loadSpec(v string) (workload.Spec, error) {
	if v == "" {
		return nil, fmt.Errorf("-serve requires -spec (a spec file or inline DSL)")
	}
	src := v
	if b, err := os.ReadFile(v); err == nil {
		src = string(b)
	} else {
		src = strings.ReplaceAll(v, ";", "\n")
	}
	return workload.ParseSpec(src)
}

// runServe performs one open-loop serve run and prints the per-step
// table (or, with -json, the full machine-readable ServeResult).
func runServe(sc serveConfig) error {
	spec, err := loadSpec(sc.spec)
	if err != nil {
		return err
	}
	sr, err := bench.RunServe(bench.ServeParams{
		Params: bench.Params{
			VolumeMiB:   sc.volumeMiB,
			Seed:        sc.seed,
			Workers:     sc.workers,
			Shards:      sc.shards,
			Faults:      sc.faults,
			Maint:       sc.maint,
			Dedup:       sc.dedup,
			DupRatio:    sc.dupRatio,
			DupUniverse: sc.dupUni,
		},
		Spec:    spec,
		Clients: sc.clients,
		Scheme:  sc.scheme,
		Mailbox: sc.mailbox,
		Batch:   sc.batch,
	})
	if err != nil {
		return err
	}
	if sc.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sr)
	}
	return bench.WriteTables(os.Stdout, []*bench.Table{bench.ServeTable(sr)}, sc.format)
}
