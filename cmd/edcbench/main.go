// Command edcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	edcbench                     # run every experiment
//	edcbench -experiment fig10   # one experiment
//	edcbench -list               # list experiment IDs
//	edcbench -requests 30000     # bigger replays
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"edc/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (empty = all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		requests   = flag.Int("requests", 0, "requests per trace replay (default 12000)")
		volumeMiB  = flag.Int("volume", 0, "logical volume size in MiB (default 256)")
		seed       = flag.Int64("seed", 0, "seed offset for all generators")
		format     = flag.String("format", "table", "output format: table, csv, json")
		workers    = flag.Int("workers", 0, "replay pipeline width: codec goroutines per replay (0 = GOMAXPROCS, 1 = sequential; results are identical for any value)")
		shards     = flag.Int("shards", 0, "LBA shards per replay: n > 1 partitions the volume across n independent pipelines run concurrently (changes the simulated system; deterministic for fixed n)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		desc := bench.Describe()
		ids := bench.Experiments()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-18s %s\n", id, desc[id])
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	p := bench.Params{Requests: *requests, VolumeMiB: *volumeMiB, Seed: *seed, Workers: *workers, Shards: *shards}
	start := time.Now()
	var (
		tables []*bench.Table
		err    error
	)
	if *experiment == "" {
		tables, err = bench.RunAll(p)
	} else {
		tables, err = bench.Run(*experiment, p)
	}
	if werr := bench.WriteTables(os.Stdout, tables, *format); werr != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
		os.Exit(1)
	}
	if *format == "table" {
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
	}
}
