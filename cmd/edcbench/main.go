// Command edcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	edcbench                     # run every experiment
//	edcbench -experiment fig10   # one experiment
//	edcbench -list               # list experiment IDs
//	edcbench -requests 30000     # bigger replays
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"edc/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (empty = all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		requests   = flag.Int("requests", 0, "requests per trace replay (default 12000)")
		volumeMiB  = flag.Int("volume", 0, "logical volume size in MiB (default 256)")
		seed       = flag.Int64("seed", 0, "seed offset for all generators")
		format     = flag.String("format", "table", "output format: table, csv, json")
	)
	flag.Parse()

	if *list {
		desc := bench.Describe()
		ids := bench.Experiments()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-18s %s\n", id, desc[id])
		}
		return
	}
	p := bench.Params{Requests: *requests, VolumeMiB: *volumeMiB, Seed: *seed}
	start := time.Now()
	var (
		tables []*bench.Table
		err    error
	)
	if *experiment == "" {
		tables, err = bench.RunAll(p)
	} else {
		tables, err = bench.Run(*experiment, p)
	}
	if werr := bench.WriteTables(os.Stdout, tables, *format); werr != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
		os.Exit(1)
	}
	if *format == "table" {
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
