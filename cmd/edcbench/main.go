// Command edcbench regenerates the paper's tables and figures, and runs
// single instrumented replays for the observability layer.
//
// Usage:
//
//	edcbench                     # run every experiment
//	edcbench -experiment fig10   # one experiment
//	edcbench -list               # list experiment IDs
//	edcbench -requests 30000     # bigger replays
//
//	edcbench -replay fin1 -trace-out trace.jsonl   # decision trace
//	edcbench -replay fin1 -json                    # machine-readable stats
//	edcbench -replay prxy0 -series-out s.json -metrics-out m.prom
//
// OBSERVABILITY.md documents the trace, series, and counter formats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"edc"
	"edc/internal/bench"
	"edc/internal/ssd"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (empty = all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		requests   = flag.Int("requests", 0, "requests per trace replay (default 12000)")
		volumeMiB  = flag.Int("volume", 0, "logical volume size in MiB (default 256)")
		seed       = flag.Int64("seed", 0, "seed offset for all generators")
		format     = flag.String("format", "table", "output format: table, csv, json")
		workers    = flag.Int("workers", 0, "replay pipeline width: codec goroutines per replay (0 = GOMAXPROCS, 1 = sequential; results are identical for any value)")
		shards     = flag.Int("shards", 0, "LBA shards per replay: n > 1 partitions the volume across n independent pipelines run concurrently (changes the simulated system; deterministic for fixed n)")
		faults     = flag.String("faults", "", "JSON fault plan injected into every replay (see DESIGN.md §11; deterministic for a fixed plan seed)")
		maintOn    = flag.Bool("maint", false, "enable temperature-aware background maintenance (default policy) in every replay (see DESIGN.md §13; deterministic for a fixed seed)")
		dedupOn    = flag.Bool("dedup", false, "enable content-addressed deduplication (default policy) in every replay (see DESIGN.md §14; deterministic for a fixed seed)")
		dupRatio   = flag.Float64("dup-ratio", 0, "fraction of payload content regions cloned from a small pool (0 = stock profile; pair with -dedup to give the content index something to find)")
		dupUni     = flag.Int("dup-universe", 0, "distinct clone payloads the -dup-ratio pool draws from (default 64)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		serve   = flag.Bool("serve", false, "run an open-loop serve workload (requires -spec) instead of an experiment")
		spec    = flag.String("spec", "", "with -serve: workload spec — a file path, or inline DSL with ';' separating steps (e.g. \"d=2s qps=500 rw=0.5; qps=2000\")")
		clients = flag.Int("clients", 0, "with -serve: client goroutines offering load (default 8)")
		mailbox = flag.Int("mailbox", 0, "with -serve: per-shard submission mailbox bound (default 256)")
		batch   = flag.Int("batch", 0, "with -serve: submissions drained per event-loop wakeup (default 64)")

		replayWl    = flag.String("replay", "", "run one instrumented replay of the named workload (fin1, fin2, usr0, prxy0) instead of an experiment")
		scheme      = flag.String("scheme", "EDC", "compression scheme for -replay (Native, Lzf, Lz4, Gzip, Bzip2, EDC, EDC+)")
		traceOut    = flag.String("trace-out", "", "with -replay: write one JSONL decision event per line to this file (\"-\" = stdout)")
		seriesOut   = flag.String("series-out", "", "with -replay: write the sampled time series as JSON to this file")
		seriesEvery = flag.Duration("series-interval", time.Second, "time-series bin width for -series-out")
		metricsOut  = flag.String("metrics-out", "", "with -replay: write decision counters in Prometheus text format to this file (\"-\" = stdout)")
		jsonOut     = flag.Bool("json", false, "with -replay: print the result as machine-readable JSON instead of the text report")
	)
	flag.Parse()

	var plan *edc.FaultPlan
	if *faults != "" {
		p, err := edc.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: -faults: %v\n", err)
			os.Exit(1)
		}
		plan = p
	}

	if *serve {
		err := runServe(serveConfig{
			spec:      *spec,
			clients:   *clients,
			scheme:    *scheme,
			volumeMiB: *volumeMiB,
			seed:      *seed,
			workers:   *workers,
			shards:    *shards,
			mailbox:   *mailbox,
			batch:     *batch,
			faults:    plan,
			maint:     *maintOn,
			dedup:     *dedupOn,
			dupRatio:  *dupRatio,
			dupUni:    *dupUni,
			format:    *format,
			jsonOut:   *jsonOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *replayWl != "" {
		err := runReplay(replayConfig{
			workload:    *replayWl,
			scheme:      *scheme,
			requests:    *requests,
			volumeMiB:   *volumeMiB,
			seed:        *seed,
			workers:     *workers,
			shards:      *shards,
			faults:      plan,
			maint:       *maintOn,
			dedup:       *dedupOn,
			dupRatio:    *dupRatio,
			dupUni:      *dupUni,
			traceOut:    *traceOut,
			seriesOut:   *seriesOut,
			seriesEvery: *seriesEvery,
			metricsOut:  *metricsOut,
			jsonOut:     *jsonOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		desc := bench.Describe()
		ids := bench.Experiments()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-18s %s\n", id, desc[id])
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	p := bench.Params{Requests: *requests, VolumeMiB: *volumeMiB, Seed: *seed, Workers: *workers, Shards: *shards, Faults: plan, Maint: *maintOn,
		Dedup: *dedupOn, DupRatio: *dupRatio, DupUniverse: *dupUni}
	start := time.Now()
	var (
		tables []*bench.Table
		err    error
	)
	if *experiment == "" {
		tables, err = bench.RunAll(p)
	} else {
		tables, err = bench.Run(*experiment, p)
	}
	if werr := bench.WriteTables(os.Stdout, tables, *format); werr != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
		os.Exit(1)
	}
	if *format == "table" {
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edcbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// replayConfig carries the -replay mode flags.
type replayConfig struct {
	workload    string
	scheme      string
	requests    int
	volumeMiB   int
	seed        int64
	workers     int
	shards      int
	faults      *edc.FaultPlan
	maint       bool
	dedup       bool
	dupRatio    float64
	dupUni      int
	traceOut    string
	seriesOut   string
	seriesEvery time.Duration
	metricsOut  string
	jsonOut     bool
}

// outFile resolves an output path: "-" is stdout (no close), anything
// else is created.
func outFile(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runReplay performs one instrumented replay: generate the named
// workload, attach whatever observers the flags request, play it, and
// write the outputs. Seeds match the experiment harness (trace seed
// 1000+seed, same 512 MiB single-SSD device model), so a -replay run is
// directly comparable to the fig8/fig10 rows for the same workload.
func runReplay(rc replayConfig) error {
	volumeMiB := rc.volumeMiB
	if volumeMiB <= 0 {
		volumeMiB = 256
	}
	requests := rc.requests
	if requests <= 0 {
		requests = 12000
	}
	volume := int64(volumeMiB) << 20
	prof, err := edc.WorkloadByName(rc.workload, volume)
	if err != nil {
		return err
	}
	tr, err := prof.GenerateN(requests, 1000+rc.seed)
	if err != nil {
		return err
	}

	ssdCfg := ssd.DefaultConfig()
	ssdCfg.Blocks = 2048 // 512 MiB raw: the fig8/fig10 single-SSD model
	opts := []edc.Option{
		edc.WithScheme(edc.Scheme(rc.scheme)),
		edc.WithSSDConfig(ssdCfg),
	}
	if rc.workers != 0 {
		opts = append(opts, edc.WithReplayWorkers(rc.workers))
	}
	if rc.shards > 1 {
		opts = append(opts, edc.WithShards(rc.shards))
	}
	if rc.faults != nil {
		opts = append(opts, edc.WithFaults(rc.faults))
	}
	if rc.maint {
		opts = append(opts, edc.WithMaintenance(edc.Maintenance{}))
	}
	if rc.dedup {
		opts = append(opts, edc.WithDedup(edc.Dedup{}))
	}
	if rc.dupRatio > 0 {
		opts = append(opts, edc.WithDataProfile(
			edc.DataProfiles()["enterprise"].WithDup(rc.dupRatio, rc.dupUni), 1))
	}

	var jt *edc.JSONLTracer
	if rc.traceOut != "" {
		w, closeFn, err := outFile(rc.traceOut)
		if err != nil {
			return err
		}
		defer closeFn()
		jt = edc.NewJSONLTracer(w)
		opts = append(opts, edc.WithTracer(jt))
	}
	if rc.seriesOut != "" {
		opts = append(opts, edc.WithTimeSeries(rc.seriesEvery))
	}
	if rc.metricsOut != "" && jt == nil && rc.seriesOut == "" {
		// Counters ride on the collector; force one with a no-op tracer.
		opts = append(opts, edc.WithTracer(edc.TracerFunc(func(*edc.TraceEvent) {})))
	}

	res, err := edc.Replay(tr, volume, opts...)
	if err != nil {
		return err
	}
	if jt != nil {
		if err := jt.Flush(); err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
	}
	if rc.seriesOut != "" {
		w, closeFn, err := outFile(rc.seriesOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Obs.Series); err != nil {
			closeFn()
			return fmt.Errorf("series output: %w", err)
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	if rc.metricsOut != "" {
		w, closeFn, err := outFile(rc.metricsOut)
		if err != nil {
			return err
		}
		if err := res.Obs.WritePrometheus(w); err != nil {
			closeFn()
			return fmt.Errorf("metrics output: %w", err)
		}
		if err := closeFn(); err != nil {
			return err
		}
	}

	// Keep stdout clean for the trace stream when it goes there.
	sum := os.Stdout
	if rc.traceOut == "-" || (rc.metricsOut == "-" && !rc.jsonOut) {
		sum = os.Stderr
	}
	if rc.jsonOut {
		enc := json.NewEncoder(sum)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Report())
	}
	_, err = fmt.Fprint(sum, res.Format())
	return err
}
