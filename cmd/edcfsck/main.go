// Command edcfsck checks EDC on-disk artifacts: mapping-table snapshots
// (written by core.Mapping.SaveSnapshot) and compressed frame streams
// (written by compress.FrameWriter). It verifies structure, checksums
// and internal invariants, and prints a summary.
//
// Usage:
//
//	edcfsck -kind snapshot -capacity 512 mapping.edcm
//	edcfsck -kind frames archive.edcf
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
)

func main() {
	var (
		kind     = flag.String("kind", "snapshot", "artifact kind: snapshot or frames")
		capacity = flag.Int64("capacity", 1024, "backing device capacity in MiB (snapshot check)")
		decode   = flag.Bool("decode", false, "frames: fully decompress every frame, not just CRC-check")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edcfsck [-kind snapshot|frames] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	switch *kind {
	case "snapshot":
		alloc := core.NewAllocator(*capacity << 20)
		m, err := core.LoadSnapshot(f, alloc, nil)
		if err != nil {
			fatalf("snapshot invalid: %v", err)
		}
		if err := m.CheckInvariants(); err != nil {
			fatalf("snapshot inconsistent: %v", err)
		}
		fmt.Printf("snapshot OK: %d live blocks in %d extents, %.1f MiB slots in use, %.1f MiB pinned by partially-dead extents\n",
			m.LiveBlocks(), m.Extents(),
			float64(alloc.InUse())/(1<<20), float64(m.DeadSlotBytes())/(1<<20))
	case "frames":
		if *decode {
			fr := compress.NewFrameReader(f, compress.Default())
			var frames, bytes int64
			for {
				blk, err := fr.ReadBlock()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					fatalf("frame %d invalid: %v", frames, err)
				}
				frames++
				bytes += int64(len(blk))
			}
			fmt.Printf("frames OK: %d frames, %d decoded bytes\n", frames, bytes)
			return
		}
		n, err := compress.VerifyStream(f)
		if err != nil {
			fatalf("stream invalid after %d good frames: %v", n, err)
		}
		fmt.Printf("frames OK: %d frames (CRC verified)\n", n)
	default:
		fatalf("unknown kind %q", *kind)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "edcfsck: "+format+"\n", args...)
	os.Exit(1)
}
