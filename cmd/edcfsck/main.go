// Command edcfsck checks EDC on-disk artifacts: mapping-table snapshots
// (written by core.Mapping.SaveSnapshot), append-only write journals
// (written by core.Journal), and compressed frame streams (written by
// compress.FrameWriter). It verifies structure, checksums and internal
// invariants, and prints a summary.
//
// Usage:
//
//	edcfsck -kind snapshot -capacity 512 mapping.edcm
//	edcfsck -kind journal journal.edcj
//	edcfsck -kind journal -snapshot mapping.edcm -capacity 512 journal.edcj
//	edcfsck -kind frames archive.edcf
//
// With -snapshot, the journal is replayed on top of the snapshot the
// way crash recovery would, and the recovered mapping's invariants are
// checked — a dry run of core.RecoverMapping. Relocate records (written
// by background maintenance) are verified like the recovery path
// verifies them: the old slot must still be mapped to the run being
// moved (a second relocation of the same slot is refused as a double
// free) and its recorded size must match the mapping. Dedup records
// (journal v2: "ED" ref / "EU" unref, see DESIGN.md appendix A) are
// verified the same way — a ref's target extent must be live with the
// recorded identity, and an unref of a still-mapped extent, or a second
// unref of the same slot, is refused. The invariant check cross-counts
// every extent's reference count against the mapping table, so a
// snapshot or recovery whose refcounts disagree with the table fails.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
)

func main() {
	var (
		kind     = flag.String("kind", "snapshot", "artifact kind: snapshot, journal or frames")
		capacity = flag.Int64("capacity", 1024, "backing device capacity in MiB (snapshot/journal check)")
		decode   = flag.Bool("decode", false, "frames: fully decompress every frame, not just CRC-check")
		snapPath = flag.String("snapshot", "", "journal: replay onto this snapshot and check the recovered mapping")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edcfsck [-kind snapshot|journal|frames] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	switch *kind {
	case "snapshot":
		alloc := core.NewAllocator(*capacity << 20)
		m, err := core.LoadSnapshot(f, alloc, nil)
		if err != nil {
			fatalf("snapshot invalid: %v", err)
		}
		if err := m.CheckInvariants(); err != nil {
			fatalf("snapshot inconsistent: %v", err)
		}
		fmt.Printf("snapshot OK: %d live blocks in %d extents, %.1f MiB slots in use, %.1f MiB pinned by partially-dead extents\n",
			m.LiveBlocks(), m.Extents(),
			float64(alloc.InUse())/(1<<20), float64(m.DeadSlotBytes())/(1<<20))
	case "journal":
		data, err := io.ReadAll(f)
		if err != nil {
			fatalf("%v", err)
		}
		records, torn, err := core.CheckJournal(data)
		if err != nil {
			fatalf("journal invalid after %d good records: %v", records, err)
		}
		recs, err := core.DecodeJournal(data)
		if err != nil {
			fatalf("journal invalid: %v", err)
		}
		var relocs, refs, unrefs int
		for _, r := range recs {
			switch {
			case r.Relocate:
				relocs++
			case r.Ref:
				refs++
			case r.Unref:
				unrefs++
			}
		}
		inserts := records - relocs - refs - unrefs
		// Dedup (v2) records extend the summary only when present, so
		// journals from dedup-off runs print the historical line.
		dedupTail := ""
		if refs+unrefs > 0 {
			dedupTail = fmt.Sprintf(", %d refs, %d unrefs", refs, unrefs)
		}
		tail := ""
		if torn {
			tail = ", torn tail dropped"
		}
		if *snapPath == "" {
			fmt.Printf("journal OK: %d records (%d inserts, %d relocates%s)%s\n",
				records, inserts, relocs, dedupTail, tail)
			return
		}
		snap, err := os.ReadFile(*snapPath)
		if err != nil {
			fatalf("%v", err)
		}
		alloc := core.NewAllocator(*capacity << 20)
		m, replayed, err := core.RecoverMapping(snap, data, alloc)
		if err != nil {
			fatalf("recovery failed: %v", err)
		}
		if err := m.CheckInvariants(); err != nil {
			fatalf("recovered mapping inconsistent: %v", err)
		}
		fmt.Printf("journal OK: %d records (%d inserts, %d relocates%s)%s; recovery OK: %d replayed onto snapshot, %d live blocks in %d extents, %.1f MiB slots in use\n",
			records, inserts, relocs, dedupTail, tail, replayed, m.LiveBlocks(), m.Extents(),
			float64(alloc.InUse())/(1<<20))
	case "frames":
		if *decode {
			fr := compress.NewFrameReader(f, compress.Default())
			var frames, bytes int64
			for {
				blk, err := fr.ReadBlock()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					fatalf("frame %d invalid: %v", frames, err)
				}
				frames++
				bytes += int64(len(blk))
			}
			fmt.Printf("frames OK: %d frames, %d decoded bytes\n", frames, bytes)
			return
		}
		n, err := compress.VerifyStream(f)
		if err != nil {
			fatalf("stream invalid after %d good frames: %v", n, err)
		}
		fmt.Printf("frames OK: %d frames (CRC verified)\n", n)
	default:
		fatalf("unknown kind %q", *kind)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "edcfsck: "+format+"\n", args...)
	os.Exit(1)
}
