// Command doclint fails when a package exports an undocumented
// identifier. It is the `make doclint` gate behind the documentation
// guarantee: every exported type, function, method, constant, variable,
// struct field, and interface method in the audited packages carries a
// doc comment (a block comment on a const/var group covers its members;
// a trailing line comment counts for fields and grouped values).
//
// Usage:
//
//	doclint [package-dir ...]
//
// With no arguments it audits the documented API surface: the root edc
// package, internal/core, internal/metrics, internal/obs,
// internal/maint, and internal/dedup. Test files are ignored. Exits
// non-zero listing every offender as file:line: identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// defaultDirs is the audited API surface when no arguments are given.
var defaultDirs = []string{".", "internal/core", "internal/metrics", "internal/obs", "internal/maint", "internal/dedup"}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var bad []string
	for _, dir := range dirs {
		offenders, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, offenders...)
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, b := range bad {
			fmt.Println(b)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(bad))
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns its offenders.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var bad []string
	flag := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		exportedTypes := collectExportedTypes(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, exportedTypes, flag)
				case *ast.GenDecl:
					lintGen(fset, d, flag)
				}
			}
		}
	}
	return bad, nil
}

// collectExportedTypes records the package's exported type names so
// methods on unexported types (unreachable API) are skipped.
func collectExportedTypes(pkg *ast.Package) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// lintFunc flags exported functions, and exported methods whose
// receiver type is itself exported, that carry no doc comment.
func lintFunc(d *ast.FuncDecl, exportedTypes map[string]bool, flag func(token.Pos, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "func"
	if d.Recv != nil {
		recv := receiverType(d.Recv)
		if !exportedTypes[recv] {
			return
		}
		kind = "method " + recv + "."
	} else {
		kind += " "
	}
	flag(d.Pos(), kind+d.Name.Name)
}

// receiverType unwraps the receiver's base type name.
func receiverType(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if g, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = g.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lintGen flags undocumented exported consts, vars, and types. A doc
// comment on the grouped declaration covers every spec in the group;
// per-spec doc or trailing line comments also count. Exported struct
// fields and interface methods inside a type must each be documented,
// where a documented member also covers the undocumented members
// immediately below it (the group-heading idiom: coverage stops at the
// first blank line).
func lintGen(fset *token.FileSet, d *ast.GenDecl, flag func(token.Pos, string)) {
	groupDoc := d.Doc != nil
	covered := newCoverage(fset)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			documented := groupDoc || covered.check(s, s.Doc != nil || s.Comment != nil)
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					flag(name.Pos(), d.Tok.String()+" "+name.Name)
				}
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc == nil && s.Comment == nil {
				flag(s.Name.Pos(), "type "+s.Name.Name)
			}
			lintTypeBody(fset, s, flag)
		}
	}
}

// coverage tracks group-heading propagation: a documented member covers
// the undocumented members on the immediately following lines, until a
// blank line breaks the group.
type coverage struct {
	fset    *token.FileSet
	covered bool
	lastEnd int
}

func newCoverage(fset *token.FileSet) *coverage {
	return &coverage{fset: fset, lastEnd: -2}
}

// check reports whether the node at n counts as documented, given its
// own doc status, and advances the group state.
func (c *coverage) check(n ast.Node, hasDoc bool) bool {
	line := c.fset.Position(n.Pos()).Line
	adjacent := line == c.lastEnd+1
	c.lastEnd = c.fset.Position(n.End()).Line
	if hasDoc {
		c.covered = true
		return true
	}
	if !adjacent {
		c.covered = false
	}
	return c.covered
}

// lintTypeBody audits the members of an exported struct or interface.
func lintTypeBody(fset *token.FileSet, s *ast.TypeSpec, flag func(token.Pos, string)) {
	lintMembers := func(kind string, fields *ast.FieldList) {
		covered := newCoverage(fset)
		for _, f := range fields.List {
			documented := covered.check(f, f.Doc != nil || f.Comment != nil)
			for _, name := range f.Names {
				if name.IsExported() && !documented {
					flag(name.Pos(), kind+" "+s.Name.Name+"."+name.Name)
				}
			}
		}
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lintMembers("field", t.Fields)
	case *ast.InterfaceType:
		lintMembers("interface method", t.Methods)
	}
}
