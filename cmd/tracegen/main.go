// Command tracegen emits synthetic block-I/O traces in SPC or MSR
// Cambridge format, using the paper's four workload profiles (fin1,
// fin2, usr0, prxy0). The same files can be fed back through the parsers
// in internal/trace, or used with any other trace-driven tool.
//
// Usage:
//
//	tracegen -workload fin1 -requests 100000 -format spc > fin1.spc
//	tracegen -workload usr0 -duration 10m -format msr -out usr0.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"edc/internal/trace"
	"edc/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "fin1", "profile: fin1, fin2, usr0, prxy0")
		requests = flag.Int("requests", 0, "number of requests (0 = use -duration)")
		duration = flag.Duration("duration", 5*time.Minute, "trace length when -requests is 0")
		volume   = flag.Int64("volume", 256<<20, "volume footprint in bytes")
		seed     = flag.Int64("seed", 1, "generator seed")
		format   = flag.String("format", "spc", "output format: spc or msr")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var prof workload.Profile
	switch *name {
	case "fin1":
		prof = workload.Fin1(*volume)
	case "fin2":
		prof = workload.Fin2(*volume)
	case "usr0":
		prof = workload.Usr0(*volume)
	case "prxy0":
		prof = workload.Prxy0(*volume)
	default:
		fatalf("unknown workload %q", *name)
	}

	var (
		tr  *trace.Trace
		err error
	)
	if *requests > 0 {
		tr, err = prof.GenerateN(*requests, *seed)
	} else {
		tr, err = prof.Generate(*duration, *seed)
	}
	if err != nil {
		fatalf("generate: %v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		w = f
	}
	switch *format {
	case "spc":
		err = trace.WriteSPC(w, tr)
	case "msr":
		err = trace.WriteMSR(w, tr)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %d requests, %.1f%% reads, avg %.1f KB, %.1f IOPS\n",
		st.Requests, st.ReadRatio*100, st.AvgSize/1024, st.AvgIOPS)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
