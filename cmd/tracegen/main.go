// Command tracegen emits synthetic block-I/O traces in SPC or MSR
// Cambridge format, using the paper's four workload profiles (fin1,
// fin2, usr0, prxy0). The same files can be fed back through the parsers
// in internal/trace, or used with any other trace-driven tool.
//
// Usage:
//
//	tracegen -workload fin1 -requests 100000 -format spc > fin1.spc
//	tracegen -workload usr0 -duration 10m -format msr -out usr0.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"edc/internal/trace"
	"edc/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "fin1", "profile: fin1, fin2, usr0, prxy0")
		requests = flag.Int("requests", 0, "number of requests (0 = use -duration)")
		duration = flag.Duration("duration", 5*time.Minute, "trace length when -requests is 0")
		volume   = flag.Int64("volume", 256<<20, "volume footprint in bytes")
		seed     = flag.Int64("seed", 1, "generator seed")
		format   = flag.String("format", "spc", "output format: spc or msr")
		out      = flag.String("out", "", "output file (default stdout)")
		dupRatio = flag.Float64("dup-ratio", 0, "fraction of writes redirected onto a small pool of duplicate sites (address-level duplication; SPC/MSR traces carry no payloads, so content duplication itself is a replay-side knob — see edcbench -dup-ratio)")
		dupUni   = flag.Int("dup-universe", 64, "distinct duplicate sites the -dup-ratio pool draws from")
		tenants  = flag.String("tenants", "", "weighted tenant assignment as name:weight pairs, comma-separated (e.g. web:3,batch:1); each request is tagged deterministically from the seed, and both SPC and MSR round-trip the tag (empty: untagged)")
	)
	flag.Parse()
	if *dupRatio < 0 || *dupRatio > 1 {
		fatalf("-dup-ratio %g out of [0,1]", *dupRatio)
	}
	if *dupUni <= 0 {
		fatalf("-dup-universe %d must be positive", *dupUni)
	}

	var prof workload.Profile
	switch *name {
	case "fin1":
		prof = workload.Fin1(*volume)
	case "fin2":
		prof = workload.Fin2(*volume)
	case "usr0":
		prof = workload.Usr0(*volume)
	case "prxy0":
		prof = workload.Prxy0(*volume)
	default:
		fatalf("unknown workload %q", *name)
	}

	var (
		tr  *trace.Trace
		err error
	)
	if *requests > 0 {
		tr, err = prof.GenerateN(*requests, *seed)
	} else {
		tr, err = prof.Generate(*duration, *seed)
	}
	if err != nil {
		fatalf("generate: %v", err)
	}
	if *dupRatio > 0 {
		redirectDuplicates(tr, *volume, *dupRatio, *dupUni, *seed)
	}
	if *tenants != "" {
		names, weights, err := parseTenantWeights(*tenants)
		if err != nil {
			fatalf("-tenants: %v", err)
		}
		assignTenants(tr, names, weights, *seed)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		w = f
	}
	switch *format {
	case "spc":
		err = trace.WriteSPC(w, tr)
	case "msr":
		err = trace.WriteMSR(w, tr)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %d requests, %.1f%% reads, avg %.1f KB, %.1f IOPS\n",
		st.Requests, st.ReadRatio*100, st.AvgSize/1024, st.AvgIOPS)
}

// dupGrain matches the payload generator's content-region grain
// (datagen classGrain): redirected writes land on region boundaries so
// a replay with a clone-enabled data profile sees whole-region overlap.
const dupGrain = 64 << 10

// redirectDuplicates rewrites a deterministic ratio fraction of the
// trace's writes to land inside a pool of universe duplicate sites —
// dupGrain-aligned regions spread evenly over the volume. The intra-
// region offset is preserved, so redirected requests overwrite the same
// byte ranges of the same few regions over and over: address-level
// duplication. The trace formats carry no payloads, so whether those
// repeated writes also carry duplicate *content* is up to the replayer's
// data model (in this repo: edcbench -dup-ratio / the edc.DataProfile
// WithDup knob).
func redirectDuplicates(tr *trace.Trace, volume int64, ratio float64, universe int, seed int64) {
	regions := volume / dupGrain
	if regions < 1 {
		return
	}
	if int64(universe) > regions {
		universe = int(regions)
	}
	stride := regions / int64(universe)
	if stride < 1 {
		stride = 1
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if !r.Write {
			continue
		}
		h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i))
		if float64(h>>11)/float64(1<<53) >= ratio {
			continue
		}
		site := int64(splitmix64(h) % uint64(universe))
		off := site*stride*dupGrain + r.Offset%dupGrain
		if off+r.Size > volume {
			off = volume - r.Size
		}
		if off < 0 {
			off = 0
		}
		r.Offset = off
	}
}

// parseTenantWeights parses "name:weight,name:weight" (weight optional,
// default 1) into parallel name/weight slices.
func parseTenantWeights(s string) (names []string, weights []int64, err error) {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, nil, fmt.Errorf("empty tenant entry")
		}
		name, ws, has := strings.Cut(part, ":")
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, nil, fmt.Errorf("bad tenant name %q", name)
		}
		w := int64(1)
		if has {
			w, err = strconv.ParseInt(ws, 10, 64)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("bad weight %q for tenant %q (want a positive integer)", ws, name)
			}
		}
		names = append(names, name)
		weights = append(weights, w)
	}
	return names, weights, nil
}

// assignTenants tags every request with a tenant drawn from the
// weighted pool, deterministically from (seed, request index) — the
// same trace regenerated with the same flags carries the same tags.
func assignTenants(tr *trace.Trace, names []string, weights []int64, seed int64) {
	var total int64
	for _, w := range weights {
		total += w
	}
	for i := range tr.Requests {
		h := splitmix64(uint64(seed)*0xd1b54a32d192ed03 + uint64(i))
		pick := int64(h % uint64(total))
		for j, w := range weights {
			if pick < w {
				tr.Requests[i].Tenant = names[j]
				break
			}
			pick -= w
		}
	}
}

// splitmix64 is the SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
