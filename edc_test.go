package edc

import (
	"errors"
	"testing"
	"time"
)

const testVolume = 64 << 20

func smallTrace(t *testing.T, n int) *Trace {
	t.Helper()
	wl, err := WorkloadByName("fin1", testVolume)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wl.GenerateN(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallSSD() SSDConfig {
	cfg := DefaultSSDConfig()
	cfg.Blocks = 1024 // 256 MiB raw
	return cfg
}

func TestReplayAllSchemes(t *testing.T) {
	tr := smallTrace(t, 1000)
	for _, s := range Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			res, err := Replay(tr, testVolume,
				WithScheme(s), WithSSDConfig(smallSSD()), WithVerify())
			if err != nil {
				t.Fatal(err)
			}
			if res.Scheme != string(s) {
				t.Fatalf("scheme = %q", res.Scheme)
			}
			if res.Resp.Count() != int64(len(tr.Requests)) {
				t.Fatalf("answered %d of %d", res.Resp.Count(), len(tr.Requests))
			}
			if s == SchemeNative && res.TrafficRatio() != 1 {
				t.Fatalf("native ratio = %v", res.TrafficRatio())
			}
			if s != SchemeNative && s != SchemeEDC && res.TrafficRatio() <= 1 {
				t.Fatalf("%s ratio = %v; want > 1", s, res.TrafficRatio())
			}
		})
	}
}

func TestSchemeOrderingOnDefaults(t *testing.T) {
	// The paper's headline shape on a bursty OLTP trace: ratio ordering
	// Bzip2 > Gzip > EDC > Lzf > Native and response ordering
	// Bzip2 > Gzip > Lzf-ish >= EDC-ish >= ~Native.
	tr := smallTrace(t, 3000)
	results := map[Scheme]*Results{}
	for _, s := range Schemes() {
		res, err := Replay(tr, testVolume, WithScheme(s), WithSSDConfig(smallSSD()))
		if err != nil {
			t.Fatal(err)
		}
		results[s] = res
	}
	if !(results[SchemeBzip2].TrafficRatio() > results[SchemeGzip].TrafficRatio() &&
		results[SchemeGzip].TrafficRatio() > results[SchemeLzf].TrafficRatio() &&
		results[SchemeLzf].TrafficRatio() > 1) {
		t.Fatalf("ratio ordering violated: bzip2=%.2f gzip=%.2f lzf=%.2f",
			results[SchemeBzip2].TrafficRatio(), results[SchemeGzip].TrafficRatio(),
			results[SchemeLzf].TrafficRatio())
	}
	edcRatio := results[SchemeEDC].TrafficRatio()
	if edcRatio <= results[SchemeLzf].TrafficRatio()*0.8 {
		t.Fatalf("EDC ratio %.2f far below Lzf %.2f", edcRatio, results[SchemeLzf].TrafficRatio())
	}
	if results[SchemeBzip2].MeanResponse() <= results[SchemeNative].MeanResponse() {
		t.Fatal("Bzip2 should be slower than Native")
	}
	if results[SchemeEDC].MeanResponse() >= results[SchemeBzip2].MeanResponse() {
		t.Fatal("EDC should beat Bzip2 on response time")
	}
}

func TestWorkloadNames(t *testing.T) {
	for _, n := range []string{"fin1", "fin2", "usr0", "prxy0", "Usr_0"} {
		p, err := WorkloadByName(n, testVolume)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := WorkloadByName("nope", testVolume); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload = %v, want ErrUnknownWorkload", err)
	}
}

func TestStandardWorkloadsCount(t *testing.T) {
	if got := len(StandardWorkloads(testVolume)); got != 4 {
		t.Fatalf("standard workloads = %d", got)
	}
}

func TestDataProfilesComplete(t *testing.T) {
	ps := DataProfiles()
	for _, name := range []string{"enterprise", "linux-src", "firefox-bin", "media"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRAIS5Backend(t *testing.T) {
	tr := smallTrace(t, 800)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeEDC),
		WithBackend(RAIS5, 5),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 5 {
		t.Fatalf("devices = %d", len(res.Devices))
	}
}

func TestElasticThresholdOption(t *testing.T) {
	tr := smallTrace(t, 500)
	// Absurdly high gz ceiling: EDC behaves like fixed Gzip.
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeEDC),
		WithElasticThresholds(1e9, 2e9),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	allGz, err2 := Replay(tr, testVolume, WithScheme(SchemeGzip), WithSSDConfig(smallSSD()))
	if err2 != nil {
		t.Fatal(err2)
	}
	// EDC with an all-gz ladder still write-throughs incompressible runs,
	// so its ratio is close to but not above fixed Gzip.
	if res.TrafficRatio() > allGz.TrafficRatio()*1.05 {
		t.Fatalf("all-gz EDC ratio %.2f exceeds fixed gzip %.2f", res.TrafficRatio(), allGz.TrafficRatio())
	}
}

func TestUnknownScheme(t *testing.T) {
	tr := smallTrace(t, 10)
	if _, err := Replay(tr, testVolume, WithScheme("nope"), WithSSDConfig(smallSSD())); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestSystemSingleUse(t *testing.T) {
	s, err := NewSystem(testVolume, WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	tr := smallTrace(t, 50)
	if _, err := s.Play(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Play(tr); !errors.Is(err, ErrReplayed) {
		t.Fatalf("second Play: err = %v, want ErrReplayed", err)
	}
}

func TestWithoutSDOption(t *testing.T) {
	tr := smallTrace(t, 1000)
	with, err := Replay(tr, testVolume, WithScheme(SchemeLzf), WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Replay(tr, testVolume, WithScheme(SchemeLzf), WithoutSD(), WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if without.SDMerged != 0 {
		t.Fatalf("SD disabled but merged %d", without.SDMerged)
	}
	if with.SDMerged == 0 {
		t.Fatal("SD enabled but merged nothing on a fin1 trace")
	}
}

func TestFlushTimeoutOption(t *testing.T) {
	tr := &Trace{Name: "lone", Requests: []Request{
		{Arrival: 0, Offset: 0, Size: 4096, Write: true},
	}}
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeNative),
		WithFlushTimeout(time.Millisecond),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse() > 3*time.Millisecond {
		t.Fatalf("flush timeout not honored: %v", res.MeanResponse())
	}
}

func TestEDCPlusScheme(t *testing.T) {
	tr := smallTrace(t, 800)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeEDCPlus),
		WithSSDConfig(smallSSD()),
		WithDataProfile(DataProfiles()["linux-src"], 3),
		WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "EDC+" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
	if res.Resp.Count() != int64(len(tr.Requests)) {
		t.Fatalf("answered %d", res.Resp.Count())
	}
}

func TestMoreFacadeOptions(t *testing.T) {
	tr := smallTrace(t, 400)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeLz4),
		WithSSDConfig(smallSSD()),
		WithCostModel(DefaultCostModel()),
		WithMaxRun(32<<10),
		WithCPUWorkers(2),
		WithCache(4<<20),
		WithStripeUnit(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "Lz4" || res.TrafficRatio() <= 1 {
		t.Fatalf("lz4 run: scheme=%q ratio=%v", res.Scheme, res.TrafficRatio())
	}
	if res.Cache.Hits+res.Cache.Misses == 0 {
		t.Fatal("cache option had no effect")
	}
}

func TestRAIS0Backend(t *testing.T) {
	tr := smallTrace(t, 400)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeNative),
		WithBackend(RAIS0, 4),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 4 {
		t.Fatalf("devices = %d", len(res.Devices))
	}
}

func TestOffloadOption(t *testing.T) {
	tr := smallTrace(t, 400)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeLzf),
		WithOffload(),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.BusyTime != 0 {
		t.Fatalf("offload left host CPU busy %v", res.CPU.BusyTime)
	}
	if res.TrafficRatio() <= 1 {
		t.Fatal("offloaded compression still compresses")
	}
}

func TestWithoutEstimatorOption(t *testing.T) {
	tr := smallTrace(t, 400)
	res, err := Replay(tr, testVolume,
		WithScheme(SchemeEDC),
		WithoutEstimator(),
		WithDataProfile(DataProfiles()["media"], 4),
		WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteThrough != 0 {
		t.Fatalf("estimator disabled but %d write-throughs", res.WriteThrough)
	}
}

func TestWithExactSlotsOption(t *testing.T) {
	tr := smallTrace(t, 600)
	quant, err := Replay(tr, testVolume, WithScheme(SchemeGzip), WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Replay(tr, testVolume, WithScheme(SchemeGzip), WithExactSlots(), WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if exact.StoredBytes >= quant.StoredBytes {
		t.Fatalf("exact slots stored %d >= quantized %d", exact.StoredBytes, quant.StoredBytes)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Bit-for-bit reproducibility: identical config and seeds give
	// identical statistics.
	tr := smallTrace(t, 1200)
	run := func() *Results {
		res, err := Replay(tr, testVolume,
			WithScheme(SchemeEDC),
			WithSSDConfig(smallSSD()),
			WithDataProfile(DataProfiles()["enterprise"], 9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanResponse() != b.MeanResponse() {
		t.Fatalf("mean response differs: %v vs %v", a.MeanResponse(), b.MeanResponse())
	}
	if a.TrafficRatio() != b.TrafficRatio() {
		t.Fatalf("ratio differs: %v vs %v", a.TrafficRatio(), b.TrafficRatio())
	}
	if a.StoredBytes != b.StoredBytes || a.SDRuns != b.SDRuns || a.WriteThrough != b.WriteThrough {
		t.Fatal("run counters differ between identical runs")
	}
	for tag, n := range a.RunsByTag {
		if b.RunsByTag[tag] != n {
			t.Fatalf("tag %d runs differ: %d vs %d", tag, n, b.RunsByTag[tag])
		}
	}
}
