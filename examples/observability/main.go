// Observability: replay a short synthetic workload with a decision
// tracer attached and print where every write went — which codec the
// elastic policy chose at each intensity level, what the estimator
// bypassed, and how much space the quantized slots wasted.
//
//	go run ./examples/observability
//
// The same event stream can be written as JSONL with
// `edcbench -replay fin1 -trace-out trace.jsonl`; OBSERVABILITY.md
// documents the schema and shows jq recipes over it.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"edc"
)

func main() {
	const volume = 64 << 20

	// A two-phase trace: a calm stretch of spaced-out writes (low
	// calculated IOPS → the policy can afford Gzip-class compression),
	// then a dense burst (high calculated IOPS → light or no
	// compression). The codec-by-phase breakdown below makes the Fig. 6
	// feedback loop visible per decision.
	var tr edc.Trace
	tr.Name = "obs-demo"
	at := time.Duration(0)
	for i := 0; i < 400; i++ { // calm phase: 2 ms apart
		tr.Requests = append(tr.Requests, edc.Request{
			Arrival: at, Offset: int64(i%512) * 16384, Size: 16384, Write: true,
		})
		at += 2 * time.Millisecond
	}
	burstStart := at
	for i := 0; i < 400; i++ { // burst phase: 50 µs apart
		tr.Requests = append(tr.Requests, edc.Request{
			Arrival: at, Offset: int64((i*3)%512) * 16384, Size: 16384, Write: true,
		})
		at += 50 * time.Microsecond
	}

	// Collect the decision stream in memory. Tracers are pure observers:
	// the replay result is identical with or without one.
	var events []edc.TraceEvent
	res, err := edc.Replay(&tr, volume,
		edc.WithTracer(edc.TracerFunc(func(e *edc.TraceEvent) {
			events = append(events, *e)
		})),
		edc.WithTimeSeries(500*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Codec-decision breakdown per phase, plus slot-waste accounting —
	// straight off the event stream.
	type phaseMix map[string]int
	calm, burst := phaseMix{}, phaseMix{}
	var wasteBytes, slotEvents int64
	var ciopsCalm, ciopsBurst []float64
	for _, e := range events {
		switch e.Type {
		case edc.EvPolicy:
			if time.Duration(e.TUS)*time.Microsecond < burstStart {
				calm[e.Codec]++
				ciopsCalm = append(ciopsCalm, e.CIOPS)
			} else {
				burst[e.Codec]++
				ciopsBurst = append(ciopsBurst, e.CIOPS)
			}
		case edc.EvSlot:
			if e.Reason != "oversize" {
				wasteBytes += e.Waste
				slotEvents++
			}
		}
	}

	fmt.Printf("replayed %d requests, %d decision events\n\n", res.Requests, len(events))
	printMix := func(label string, mix phaseMix, ciops []float64) {
		fmt.Printf("%s (mean calculated IOPS %.0f):\n", label, mean(ciops))
		names := make([]string, 0, len(mix))
		for name := range mix {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-5s %4d runs\n", name, mix[name])
		}
	}
	printMix("calm phase", calm, ciopsCalm)
	printMix("burst phase", burst, ciopsBurst)

	fmt.Printf("\nestimator write-through: %d runs (%.1f%%)\n",
		res.WriteThrough, 100*res.WriteThroughRate())
	if slotEvents > 0 {
		fmt.Printf("quantized slot waste: %d bytes over %d stored runs (%.0f B/run)\n",
			wasteBytes, slotEvents, float64(wasteBytes)/float64(slotEvents))
	}

	// The counters snapshot renders in the Prometheus text format.
	fmt.Println("\ncounters:")
	if err := res.Obs.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
