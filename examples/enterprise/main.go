// Enterprise: replay an MSR-Cambridge-style volume (usr_0) against a
// five-device RAIS5 array — the paper's Fig. 11 setting — and show how
// the scheme ordering carries over from a single SSD to an array,
// including parity-induced write amplification.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"time"

	"edc"
)

func main() {
	const volume = 256 << 20

	prof, err := edc.WorkloadByName("usr0", volume)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prof.GenerateN(8000, 11)
	if err != nil {
		log.Fatal(err)
	}

	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 1024 // 256 MiB per member device

	fmt.Println("RAIS5, 5 devices, 64 KiB stripe unit — usr_0-style workload")
	fmt.Printf("%-7s %12s %8s %16s %14s\n",
		"scheme", "mean resp", "ratio", "flash pages", "write amp")
	for _, scheme := range []edc.Scheme{edc.SchemeNative, edc.SchemeLzf, edc.SchemeGzip, edc.SchemeEDC} {
		res, err := edc.Replay(tr, volume,
			edc.WithScheme(scheme),
			edc.WithBackend(edc.RAIS5, 5),
			edc.WithSSDConfig(ssd),
			edc.WithStripeUnit(16),
			edc.WithDataProfile(edc.DataProfiles()["enterprise"], 3))
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		var host, flash int64
		for _, d := range res.Devices {
			host += d.HostPagesWritten
			flash += d.FlashPagesWritten
		}
		wa := 0.0
		if host > 0 {
			wa = float64(flash) / float64(host)
		}
		fmt.Printf("%-7s %12v %8.2f %16d %14.2f\n",
			scheme,
			res.MeanResponse().Round(time.Microsecond),
			res.TrafficRatio(),
			flash, wa)
	}
	fmt.Println("\nCompression reduces the pages the array writes (data + parity),")
	fmt.Println("which is exactly the endurance benefit the paper targets on RAIS.")
}
