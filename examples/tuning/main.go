// Tuning: sweep EDC's Gzip intensity ceiling on a read-heavy OLTP
// workload (the paper's Fig. 12 sensitivity study) to expose the
// space-vs-latency trade-off a storage administrator controls.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"edc"
)

func main() {
	const volume = 128 << 20

	prof, err := edc.WorkloadByName("fin2", volume)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prof.GenerateN(10000, 5)
	if err != nil {
		log.Fatal(err)
	}
	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 1024

	fmt.Println("EDC Gzip-ceiling sweep on Fin2 (Lzf ceiling held at infinity):")
	fmt.Printf("%14s %10s %8s %12s %12s\n",
		"gz ceiling", "gz share", "ratio", "mean resp", "p99 resp")
	for _, ceil := range []float64{0.001, 100, 400, 800, 1600, 5e8} {
		res, err := edc.Replay(tr, volume,
			edc.WithScheme(edc.SchemeEDC),
			edc.WithElasticThresholds(ceil, 1e9),
			edc.WithSSDConfig(ssd),
			edc.WithDataProfile(edc.DataProfiles()["enterprise"], 9))
		if err != nil {
			log.Fatalf("ceiling %v: %v", ceil, err)
		}
		var runs, gzRuns int64
		for tag, n := range res.RunsByTag {
			runs += n
			if tag == 3 { // gz
				gzRuns = n
			}
		}
		label := fmt.Sprintf("%.0f", ceil)
		if ceil >= 5e8 {
			label = "inf"
		} else if ceil < 1 {
			label = "0"
		}
		fmt.Printf("%14s %9.1f%% %8.2f %12v %12v\n",
			label,
			float64(gzRuns)/float64(runs)*100,
			res.TrafficRatio(),
			res.MeanResponse().Round(time.Microsecond),
			res.Resp.Percentile(99).Round(time.Microsecond))
	}
	fmt.Println("\nMore Gzip = better ratio but higher latency; the knee gives the")
	fmt.Println("balance the paper reports around a ~20% Gzip share.")
}
