// Quickstart: build a tiny write/read trace, replay it through EDC and
// through the Native baseline on a simulated SSD, and compare response
// time, space saving and flash endurance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"edc"
)

func main() {
	const volume = 64 << 20 // 64 MiB logical volume

	// A small hand-built trace: a burst of sequential writes, a pause,
	// some random overwrites, then reads of everything.
	var tr edc.Trace
	tr.Name = "quickstart"
	at := time.Duration(0)
	for i := 0; i < 64; i++ { // sequential 16 KiB writes (one file)
		tr.Requests = append(tr.Requests, edc.Request{
			Arrival: at, Offset: int64(i) * 16384, Size: 16384, Write: true,
		})
		at += 200 * time.Microsecond
	}
	at += time.Second         // idle gap
	for i := 0; i < 32; i++ { // random 4 KiB overwrites
		tr.Requests = append(tr.Requests, edc.Request{
			Arrival: at, Offset: int64((i*37)%256) * 4096, Size: 4096, Write: true,
		})
		at += 5 * time.Millisecond
	}
	for i := 0; i < 64; i++ { // read the file back
		tr.Requests = append(tr.Requests, edc.Request{
			Arrival: at, Offset: int64(i) * 16384, Size: 16384,
		})
		at += time.Millisecond
	}

	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 512 // 128 MiB raw device

	for _, scheme := range []edc.Scheme{edc.SchemeNative, edc.SchemeEDC} {
		res, err := edc.Replay(&tr, volume,
			edc.WithScheme(scheme),
			edc.WithSSDConfig(ssd),
			edc.WithDataProfile(edc.DataProfiles()["linux-src"], 1),
			edc.WithVerify(), // check every read round-trips
		)
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		fmt.Printf("%-7s mean response %8v   p99 %8v   compression ratio %.2f   flash pages written %d\n",
			scheme,
			res.MeanResponse().Round(time.Microsecond),
			res.Resp.Percentile(99).Round(time.Microsecond),
			res.TrafficRatio(),
			res.TotalFlashWrites())
	}
	fmt.Println("\nEDC stored the same logical data in fewer flash pages (better endurance)")
	fmt.Println("while keeping response times close to the uncompressed baseline.")
}
