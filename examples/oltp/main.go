// OLTP: replay a synthetic SPC-financial-style workload (the paper's
// Fin1) through all five schemes on a single simulated SSD — the
// Fig. 8/9/10 experiment in miniature — and print the space/performance
// trade-off each scheme lands on.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"
	"time"

	"edc"
)

func main() {
	const volume = 128 << 20

	prof, err := edc.WorkloadByName("fin1", volume)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := prof.GenerateN(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("workload: %s — %d requests, %.0f%% reads, avg %.1f KiB, %.0f IOPS mean\n\n",
		tr.Name, st.Requests, st.ReadRatio*100, st.AvgSize/1024, st.AvgIOPS)

	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 1024 // 256 MiB raw

	fmt.Printf("%-7s %12s %12s %8s %12s %10s\n",
		"scheme", "mean resp", "p99 resp", "ratio", "ratio/time", "erases")
	var native *edc.Results
	for _, scheme := range edc.Schemes() {
		res, err := edc.Replay(tr, volume,
			edc.WithScheme(scheme),
			edc.WithSSDConfig(ssd),
			edc.WithDataProfile(edc.DataProfiles()["enterprise"], 7))
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		if scheme == edc.SchemeNative {
			native = res
		}
		fmt.Printf("%-7s %12v %12v %8.2f %12.2f %10d\n",
			scheme,
			res.MeanResponse().Round(time.Microsecond),
			res.Resp.Percentile(99).Round(time.Microsecond),
			res.TrafficRatio(),
			res.Composite()/native.Composite(),
			res.TotalErases())
	}
	fmt.Println("\nratio/time is the paper's composite metric normalized to Native:")
	fmt.Println("fixed heavy codecs win on ratio but lose the composite; EDC balances both.")
}
