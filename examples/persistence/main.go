// Persistence: the EDC mapping table is metadata that must survive power
// cycles. This example builds a mapping by hand, snapshots it to a
// CRC-protected byte stream, corrupts a copy, restores the good one,
// then walks the crash-recovery path: journal writes made after the
// snapshot, tear the journal's tail as a power cut would, and rebuild
// the mapping from snapshot + journal. The artifacts are written to a
// temp directory so cmd/edcfsck can check the same images offline.
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"edc/internal/compress"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
)

func main() {
	const volume = 16 << 20
	alloc := core.NewAllocator(volume * 2)
	m := core.NewMapping(volume, alloc, nil)

	// Store a few compressed extents, then overwrite one partially.
	put := func(off, size, comp int64, tag compress.Tag) {
		slot, ok := core.QuantizeSlot(size, comp)
		if !ok {
			tag = compress.TagNone
			slot = size
		}
		devOff, err := alloc.Alloc(slot)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Insert(&core.Extent{
			Offset: off, OrigLen: size, CompLen: comp, SlotLen: slot,
			Tag: tag, DevOff: devOff,
		}); err != nil {
			log.Fatal(err)
		}
	}
	put(0, 65536, 20000, compress.TagGZ)
	put(65536, 16384, 9000, compress.TagLZF)
	put(131072, 4096, 4096, compress.TagNone)
	put(65536, 4096, 1500, compress.TagLZF) // partial overwrite of extent 2

	fmt.Printf("before: %d live blocks, %d extents, %d B slots in use\n",
		m.LiveBlocks(), m.Extents(), alloc.InUse())

	var snap bytes.Buffer
	if err := m.SaveSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes\n", snap.Len())

	// A flipped bit anywhere is caught by the trailer CRC.
	bad := append([]byte(nil), snap.Bytes()...)
	bad[10] ^= 0x40
	if _, err := core.LoadSnapshot(bytes.NewReader(bad), core.NewAllocator(volume*2), nil); err != nil {
		fmt.Println("corrupt copy rejected:", err)
	}

	restored, err := core.LoadSnapshot(bytes.NewReader(snap.Bytes()), core.NewAllocator(volume*2), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d live blocks, %d extents — identical mapping, ready to serve reads\n",
		restored.LiveBlocks(), restored.Extents())

	// Between checkpoints, every completed write appends one CRC-sealed
	// record to an append-only journal — the write's durable point.
	var j core.Journal
	journalPut := func(off, size, comp, slot int64, tag compress.Tag, version uint32) {
		devOff, err := alloc.Alloc(slot)
		if err != nil {
			log.Fatal(err)
		}
		j.Append(&core.Extent{
			Offset: off, OrigLen: size, CompLen: comp, SlotLen: slot,
			Tag: tag, Version: version, DevOff: devOff,
		})
	}
	journalPut(262144, 32768, 11000, 16384, compress.TagGZ, 5)
	journalPut(0, 65536, 18000, 32768, compress.TagGZ, 6) // overwrites the first snapshot extent
	fmt.Printf("journal: %d records (%d bytes) appended after the snapshot\n",
		j.Records(), len(j.Bytes()))

	// Crash recovery replays the journal over the snapshot. A torn final
	// record — the crash interrupted the last append — is expected
	// damage and is dropped; anything else is corruption.
	torn := j.Bytes()[:len(j.Bytes())-10]
	records, wasTorn, err := core.CheckJournal(torn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torn journal: %d intact records (torn tail: %v)\n", records, wasTorn)
	recovered, replayed, err := core.RecoverMapping(snap.Bytes(), torn, core.NewAllocator(volume*2))
	if err != nil {
		log.Fatal(err)
	}
	if err := recovered.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d records replayed onto the snapshot → %d live blocks, %d extents\n",
		replayed, recovered.LiveBlocks(), recovered.Extents())

	// The same images on disk are what edcfsck verifies offline.
	dir, err := os.MkdirTemp("", "edc-persistence")
	if err != nil {
		log.Fatal(err)
	}
	snapPath := filepath.Join(dir, "mapping.edcm")
	jnlPath := filepath.Join(dir, "journal.edcj")
	if err := os.WriteFile(snapPath, snap.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(jnlPath, torn, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("check them offline with:")
	fmt.Printf("  go run ./cmd/edcfsck -kind snapshot -capacity 32 %s\n", snapPath)
	fmt.Printf("  go run ./cmd/edcfsck -kind journal -snapshot %s -capacity 32 %s\n", snapPath, jnlPath)
}
