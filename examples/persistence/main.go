// Persistence: the EDC mapping table is metadata that must survive power
// cycles. This example builds a mapping by hand, snapshots it to a
// CRC-protected byte stream, corrupts a copy, and restores the good one
// — the workflow cmd/edcfsck checks on real files.
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"

	"edc/internal/compress"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
)

func main() {
	const volume = 16 << 20
	alloc := core.NewAllocator(volume * 2)
	m := core.NewMapping(volume, alloc, nil)

	// Store a few compressed extents, then overwrite one partially.
	put := func(off, size, comp int64, tag compress.Tag) {
		slot, ok := core.QuantizeSlot(size, comp)
		if !ok {
			tag = compress.TagNone
			slot = size
		}
		devOff, err := alloc.Alloc(slot)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Insert(&core.Extent{
			Offset: off, OrigLen: size, CompLen: comp, SlotLen: slot,
			Tag: tag, DevOff: devOff,
		}); err != nil {
			log.Fatal(err)
		}
	}
	put(0, 65536, 20000, compress.TagGZ)
	put(65536, 16384, 9000, compress.TagLZF)
	put(131072, 4096, 4096, compress.TagNone)
	put(65536, 4096, 1500, compress.TagLZF) // partial overwrite of extent 2

	fmt.Printf("before: %d live blocks, %d extents, %d B slots in use\n",
		m.LiveBlocks(), m.Extents(), alloc.InUse())

	var snap bytes.Buffer
	if err := m.SaveSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes\n", snap.Len())

	// A flipped bit anywhere is caught by the trailer CRC.
	bad := append([]byte(nil), snap.Bytes()...)
	bad[10] ^= 0x40
	if _, err := core.LoadSnapshot(bytes.NewReader(bad), core.NewAllocator(volume*2), nil); err != nil {
		fmt.Println("corrupt copy rejected:", err)
	}

	restored, err := core.LoadSnapshot(bytes.NewReader(snap.Bytes()), core.NewAllocator(volume*2), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %d live blocks, %d extents — identical mapping, ready to serve reads\n",
		restored.LiveBlocks(), restored.Extents())
}
