package edc_test

import (
	"fmt"
	"time"

	"edc"
)

// ExampleReplay demonstrates the one-shot replay API: generate a
// synthetic OLTP workload and run it through the elastic scheme.
func ExampleReplay() {
	const volume = 64 << 20
	prof, err := edc.WorkloadByName("fin1", volume)
	if err != nil {
		panic(err)
	}
	tr, err := prof.GenerateN(500, 1)
	if err != nil {
		panic(err)
	}
	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 512

	res, err := edc.Replay(tr, volume,
		edc.WithScheme(edc.SchemeEDC),
		edc.WithSSDConfig(ssd))
	if err != nil {
		panic(err)
	}
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("requests answered:", res.Resp.Count())
	fmt.Println("space saved:", res.TrafficRatio() > 1.0)
	// Output:
	// scheme: EDC
	// requests answered: 500
	// space saved: true
}

// ExampleNewSystem shows explicit system construction with a fixed
// baseline scheme and a custom payload profile.
func ExampleNewSystem() {
	const volume = 32 << 20
	ssd := edc.DefaultSSDConfig()
	ssd.Blocks = 256

	sys, err := edc.NewSystem(volume,
		edc.WithScheme(edc.SchemeLzf),
		edc.WithSSDConfig(ssd),
		edc.WithDataProfile(edc.DataProfiles()["linux-src"], 7))
	if err != nil {
		panic(err)
	}
	tr := &edc.Trace{Name: "demo", Requests: []edc.Request{
		{Arrival: 0, Offset: 0, Size: 65536, Write: true},
		{Arrival: 50 * time.Millisecond, Offset: 0, Size: 65536},
	}}
	res, err := sys.Play(tr)
	if err != nil {
		panic(err)
	}
	fmt.Println("compressed with Lzf:", res.BytesByTag[1] > 0)
	// Output:
	// compressed with Lzf: true
}

// ExampleStandardWorkloads lists the paper's four evaluation workloads.
func ExampleStandardWorkloads() {
	for _, p := range edc.StandardWorkloads(1 << 30) {
		fmt.Println(p.Name)
	}
	// Output:
	// Fin1
	// Fin2
	// Usr_0
	// Prxy_0
}
