package edc

import (
	"context"
	"errors"
	"time"

	"edc/internal/core"
	"edc/internal/sim"
)

// Serve mode runs the configured EDC stack live instead of replaying a
// recorded trace: after Serve, any number of goroutines may call
// Read/Write concurrently; requests route by LBA to per-shard pipelines
// whose event loops run as long-lived goroutines draining bounded
// submission mailboxes (WithServeQueue). Latency is open-loop in virtual
// time — measured from each operation's intended arrival stamp to its
// virtual completion — so offered load beyond the simulated device's
// capacity surfaces as unbounded queueing delay, exactly the signal
// closed-loop replay cannot produce. StopServe drains everything and
// returns the same Results a replay would.

// ErrNotServing reports a serve-mode call (Read, Write, StopServe) on a
// System that never entered serve mode.
var ErrNotServing = errors.New("edc: system is not serving (call Serve first)")

// ErrServeStopped reports a submission to — or a second StopServe of — a
// System whose serving already stopped.
var ErrServeStopped = core.ErrServeStopped

// Serve switches the System into live serving. It consumes the System's
// single use (a later Play returns ErrReplayed) and is incompatible with
// power-cut fault plans. After Serve returns, Read/Write/ReadAt/WriteAt
// are goroutine-safe.
func (s *System) Serve() error {
	if s.played {
		return ErrReplayed
	}
	s.played = true
	shards := s.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// Codec work runs on the process-wide work-stealing pool: each shard
	// registers its own bounded queue and any idle pool worker drains any
	// shard's backlog, so there is no per-shard worker budget to split.
	perShard := s.cfg
	setup := core.ServeSetup{
		Shards:      shards,
		VolumeBytes: s.volBytes,
		Backend: func(eng *sim.Engine) (core.Backend, error) {
			return buildBackend(perShard, eng)
		},
		Options: func(int) (core.Options, error) {
			return deviceOptions(perShard)
		},
		Mailbox: s.cfg.ServeMailbox,
		Batch:   s.cfg.ServeBatch,
		Obs:     s.col,
		Paced:   s.cfg.PacedServe,
	}
	if s.cfg.Resplit != nil {
		setup.Resplit = *s.cfg.Resplit
	}
	srv, err := core.NewServer(setup)
	if err != nil {
		return err
	}
	// The replay stack built at construction is never used now; drop it
	// so the serving pipelines are the only live simulation state.
	s.dev = nil
	s.sharded = nil
	s.eng = nil
	s.srv = srv
	return nil
}

// Read submits one read of [off, off+size) arriving as soon as possible
// and blocks until it completes, returning the open-loop virtual
// latency. Goroutine-safe; ctx cancels the wait.
func (s *System) Read(ctx context.Context, off, size int64) (time.Duration, error) {
	if s.srv == nil {
		return 0, ErrNotServing
	}
	return s.srv.Read(ctx, off, size)
}

// Write submits one write of [off, off+size) arriving as soon as
// possible and blocks until it completes. Goroutine-safe.
func (s *System) Write(ctx context.Context, off, size int64) (time.Duration, error) {
	if s.srv == nil {
		return 0, ErrNotServing
	}
	return s.srv.Write(ctx, off, size)
}

// ReadAt is Read with an explicit intended virtual arrival stamp (offset
// from serve start): the shard admits the operation no earlier than at,
// and the returned latency is measured from at — the
// coordinated-omission-free open-loop measurement a stamped generator
// wants.
func (s *System) ReadAt(ctx context.Context, at time.Duration, off, size int64) (time.Duration, error) {
	if s.srv == nil {
		return 0, ErrNotServing
	}
	return s.srv.ReadAt(ctx, at, off, size)
}

// WriteAt is Write with an explicit intended virtual arrival stamp; see
// ReadAt.
func (s *System) WriteAt(ctx context.Context, at time.Duration, off, size int64) (time.Duration, error) {
	if s.srv == nil {
		return 0, ErrNotServing
	}
	return s.srv.WriteAt(ctx, at, off, size)
}

// ReadAtTag is ReadAt with the submitting tenant's tag: the operation
// is shaped by the tenant's bandwidth schedule, bounded by its queue
// depth (ErrAdmissionRejected), and accounted in the tenant's own
// Results section. Under a strict QoSConfig an unknown tenant fails
// with ErrUnknownTenant. The empty tag is untagged traffic and behaves
// exactly as ReadAt.
func (s *System) ReadAtTag(ctx context.Context, at time.Duration, off, size int64, tenant string) (time.Duration, error) {
	return s.submitTag(ctx, at, off, size, false, tenant)
}

// WriteAtTag is WriteAt with the submitting tenant's tag; see
// ReadAtTag.
func (s *System) WriteAtTag(ctx context.Context, at time.Duration, off, size int64, tenant string) (time.Duration, error) {
	return s.submitTag(ctx, at, off, size, true, tenant)
}

// submitTag mails one tagged operation and waits for it.
func (s *System) submitTag(ctx context.Context, at time.Duration, off, size int64, write bool, tenant string) (time.Duration, error) {
	if s.srv == nil {
		return 0, ErrNotServing
	}
	aw, err := s.srv.SubmitAtTag(ctx, at, off, size, write, tenant)
	if err != nil {
		return 0, err
	}
	return aw(ctx)
}

// Await blocks for one submitted operation's completion; see SubmitAt.
type Await = core.Await

// SubmitAt mails one stamped operation to its shard(s) and returns an
// Await for its completion instead of blocking. A load generator that
// submits operations in global stamp order through SubmitAt keeps every
// shard's virtual clock behind the stamps still to come, so the
// reported open-loop latencies measure true queueing delay rather than
// submission-order skew between client goroutines (internal/bench's
// serve driver sequences its clients through this).
func (s *System) SubmitAt(ctx context.Context, at time.Duration, off, size int64, write bool) (Await, error) {
	if s.srv == nil {
		return nil, ErrNotServing
	}
	return s.srv.SubmitAt(ctx, at, off, size, write)
}

// SubmitAtTag is SubmitAt with the submitting tenant's tag; see
// ReadAtTag for the tag's semantics.
func (s *System) SubmitAtTag(ctx context.Context, at time.Duration, off, size int64, write bool, tenant string) (Await, error) {
	if s.srv == nil {
		return nil, ErrNotServing
	}
	return s.srv.SubmitAtTag(ctx, at, off, size, write, tenant)
}

// ServeStalls returns how many submissions so far found a full shard
// mailbox and had to block — the serve-mode backpressure signal.
func (s *System) ServeStalls() int64 {
	if s.srv == nil {
		return 0
	}
	return s.srv.Stalls()
}

// ServeShards returns the current shard count: the configured partition
// width, plus one per heat-balanced resplit so far (WithResplit).
// Returns 0 when the System is not serving.
func (s *System) ServeShards() int {
	if s.srv == nil {
		return 0
	}
	return s.srv.Shards()
}

// StopServe closes the intake, drains every shard's mailbox and
// pipeline, and returns the merged Results (the same shape a replay
// produces, plus Results.SubmitStalls).
func (s *System) StopServe() (*Results, error) {
	if s.srv == nil {
		return nil, ErrNotServing
	}
	return s.srv.Stop()
}
