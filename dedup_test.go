package edc_test

import (
	"testing"

	"edc"
)

// dupTrace builds a write-heavy trace over a duplicate-rich payload
// profile: the DupRatio knob makes many 64 KiB content regions clones
// of a small clone universe, so distinct LBAs carry identical bytes.
func dupTrace(t *testing.T, n int) (*edc.Trace, edc.DataProfile) {
	t.Helper()
	wl, err := edc.WorkloadByName("fin1", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wl.GenerateN(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	prof := edc.DataProfiles()["enterprise"].WithDup(0.5, 8)
	return tr, prof
}

// TestDedupHitsAndVerify drives a duplicate-heavy workload through a
// dedup-enabled system in verify mode: dedup must find hits, save slot
// bytes, and every read must still round-trip byte-exact (shared
// extents decompress to the right content for every referrer).
func TestDedupHitsAndVerify(t *testing.T) {
	tr, prof := dupTrace(t, 4000)
	res, err := edc.Replay(tr, 64<<20,
		edc.WithDataProfile(prof, 7),
		edc.WithDedup(edc.Dedup{}),
		edc.WithVerify(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.DedupHits == 0 {
		t.Fatal("expected dedup hits on a duplicate-heavy profile, got none")
	}
	if res.DedupMisses == 0 {
		t.Fatal("expected some dedup misses, got none")
	}
	if res.DedupBytesSaved <= 0 {
		t.Fatalf("expected positive DedupBytesSaved, got %d", res.DedupBytesSaved)
	}
	if hr := res.DedupHitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("hit rate %v out of range", hr)
	}
}

// TestDedupOffUnchanged checks the off switch: a config without Dedup
// and one with Enabled=false produce identical results to each other
// (the bit-identity against the pre-dedup release is enforced end to
// end by make dedupcheck; this guards the in-process config plumbing).
func TestDedupOffUnchanged(t *testing.T) {
	tr, prof := dupTrace(t, 2000)
	base, err := edc.Replay(tr, 64<<20, edc.WithDataProfile(prof, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := edc.DefaultConfig()
	cfg.Data, cfg.DataSeed = prof, 7
	cfg.Dedup = &edc.Dedup{Enabled: false}
	disabled, err := edc.ReplayConfig(tr, 64<<20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Format() != disabled.Format() {
		t.Fatalf("Enabled=false dedup config changed results:\n--- off ---\n%s\n--- disabled ---\n%s",
			base.Format(), disabled.Format())
	}
	if disabled.DedupHits != 0 || disabled.DedupMisses != 0 {
		t.Fatalf("dedup counters moved with dedup disabled: hits=%d misses=%d",
			disabled.DedupHits, disabled.DedupMisses)
	}
}

// TestDedupDeterministic replays the same trace twice with dedup on and
// demands byte-identical formatted results.
func TestDedupDeterministic(t *testing.T) {
	tr, prof := dupTrace(t, 2000)
	run := func() string {
		res, err := edc.Replay(tr, 64<<20,
			edc.WithDataProfile(prof, 7), edc.WithDedup(edc.Dedup{}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Format()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("dedup replay not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestDedupSharded runs dedup under sharded replay (each shard
// deduplicates its own LBA range) and checks determinism across two
// runs plus verify-mode round-trips.
func TestDedupSharded(t *testing.T) {
	tr, prof := dupTrace(t, 3000)
	run := func() *edc.Results {
		res, err := edc.Replay(tr, 64<<20,
			edc.WithDataProfile(prof, 7),
			edc.WithDedup(edc.Dedup{}),
			edc.WithShards(2),
			edc.WithVerify(),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Format() != b.Format() {
		t.Fatalf("sharded dedup not deterministic:\n--- a ---\n%s\n--- b ---\n%s",
			a.Format(), b.Format())
	}
	if a.DedupHits == 0 {
		t.Fatal("expected dedup hits under sharded replay")
	}
}

// TestDedupObsCounters checks the dedup events and counters surface
// through the observability layer and agree with RunStats.
func TestDedupObsCounters(t *testing.T) {
	tr, prof := dupTrace(t, 2000)
	var hits, misses int64
	tracer := edc.TracerFunc(func(e *edc.TraceEvent) {
		switch e.Type {
		case edc.EvDedupHit:
			hits++
			if e.Slot <= 0 {
				t.Errorf("dedup_hit event with non-positive slot %d", e.Slot)
			}
		case edc.EvDedupMiss:
			misses++
		}
	})
	res, err := edc.Replay(tr, 64<<20,
		edc.WithDataProfile(prof, 7),
		edc.WithDedup(edc.Dedup{}),
		edc.WithTracer(tracer),
	)
	if err != nil {
		t.Fatal(err)
	}
	if hits != res.DedupHits || misses != res.DedupMisses {
		t.Fatalf("event counts (hits=%d misses=%d) disagree with stats (hits=%d misses=%d)",
			hits, misses, res.DedupHits, res.DedupMisses)
	}
	if res.Obs == nil {
		t.Fatal("expected an obs report")
	}
	if got := res.Obs.Counters["edc_dedup_hits_total"]; got != res.DedupHits {
		t.Fatalf("counter edc_dedup_hits_total=%d, stats DedupHits=%d", got, res.DedupHits)
	}
	if got := res.Obs.Counters["edc_dedup_saved_bytes_total"]; got != res.DedupBytesSaved {
		t.Fatalf("counter edc_dedup_saved_bytes_total=%d, stats DedupBytesSaved=%d",
			got, res.DedupBytesSaved)
	}
}

// TestDedupValidate exercises the config validation surface.
func TestDedupValidate(t *testing.T) {
	cfg := edc.DefaultConfig()
	cfg.Dedup = &edc.Dedup{Enabled: true, MaxEntries: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected Validate to reject negative MaxEntries")
	}
	cfg.Dedup = &edc.Dedup{Enabled: true}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero-valued enabled dedup config should validate: %v", err)
	}
}
