package edc

import (
	"reflect"
	"strings"
	"testing"
)

// TestWithShardsSingleShardIdentical pins the compatibility guarantee:
// WithShards(1) — and the default of no shard option — replays through
// the stock single pipeline, so results are bit-identical to a plain
// Replay call.
func TestWithShardsSingleShardIdentical(t *testing.T) {
	tr := smallTrace(t, 1200)
	run := func(extra ...Option) *Results {
		opts := append([]Option{WithSSDConfig(smallSSD())}, extra...)
		res, err := Replay(tr, testVolume, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	one := run(WithShards(1))
	if !reflect.DeepEqual(base, one) {
		t.Fatalf("WithShards(1) differs from default replay:\nbase: %v\none:  %v", base, one)
	}
}

// TestWithShardsDeterminism replays the same trace twice through the
// sharded facade path and requires field-identical results for a fixed
// shard count.
func TestWithShardsDeterminism(t *testing.T) {
	tr := smallTrace(t, 1200)
	run := func() *Results {
		res, err := Replay(tr, testVolume,
			WithSSDConfig(smallSSD()), WithShards(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded replays differ:\na: %v\nb: %v", a, b)
	}
	if !strings.HasPrefix(a.Backend, "3-shard") {
		t.Errorf("Backend = %q, want a 3-shard label", a.Backend)
	}
	// Boundary-crossing requests split into per-shard sub-requests, so
	// the merged count can only grow.
	if a.Requests < int64(len(tr.Requests)) {
		t.Errorf("merged Requests = %d below trace length %d", a.Requests, len(tr.Requests))
	}
	if a.Resp.Count() != a.Requests {
		t.Errorf("observed %d responses for %d requests", a.Resp.Count(), a.Requests)
	}
}

// TestWithShardsRAIS exercises the sharded path over the array backend:
// each shard owns a private 5-device RAIS5 array.
func TestWithShardsRAIS(t *testing.T) {
	tr := smallTrace(t, 600)
	res, err := Replay(tr, testVolume,
		WithBackend(RAIS5, 5), WithSSDConfig(smallSSD()), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 5; len(res.Devices) != want {
		t.Errorf("merged stats carry %d devices, want %d", len(res.Devices), want)
	}
}
