package edc

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testFaultPlan() *FaultPlan {
	return &FaultPlan{
		Seed: 77, ReadTransient: 0.01, WriteTransient: 0.02,
		WriteHard: 0.005, SpikeRate: 0.01, SpikeLatency: 2 * time.Millisecond,
	}
}

// TestConfigOptionParity pins the facade's dual-form contract: every
// functional option writes exactly the Config field(s) its struct-form
// counterpart would, so the two configuration styles cannot drift.
func TestConfigOptionParity(t *testing.T) {
	jt := NewJSONLTracer(io.Discard)
	cm := DefaultCostModel()
	plan := testFaultPlan()
	ssdCfg := smallSSD()
	qcfg := QoSConfig{
		Tenants: map[string]QoSTenant{"web": {Class: ClassLatency, Bandwidth: "4M"}},
		Strict:  true,
	}
	cases := []struct {
		name   string
		opt    Option
		direct func(*Config)
	}{
		{"WithScheme", WithScheme(SchemeLzf), func(c *Config) { c.Scheme = SchemeLzf }},
		{"WithElasticThresholds", WithElasticThresholds(100, 900), func(c *Config) { c.GzCeiling, c.LzfCeiling = 100, 900 }},
		{"WithBackend", WithBackend(RAIS5, 5), func(c *Config) { c.Backend, c.Devices = RAIS5, 5 }},
		{"WithSSDConfig", WithSSDConfig(ssdCfg), func(c *Config) { c.SSD = ssdCfg }},
		{"WithDataProfile", WithDataProfile(DataProfiles()["text"], 9), func(c *Config) { c.Data, c.DataSeed = DataProfiles()["text"], 9 }},
		{"WithCostModel", WithCostModel(cm), func(c *Config) { c.Cost = cm }},
		{"WithVerify", WithVerify(), func(c *Config) { c.Verify = true }},
		{"WithoutSD", WithoutSD(), func(c *Config) { c.DisableSD = true }},
		{"WithExactSlots", WithExactSlots(), func(c *Config) { c.ExactSlots = true }},
		{"WithoutEstimator", WithoutEstimator(), func(c *Config) { c.DisableEstimator = true }},
		{"WithMaxRun", WithMaxRun(1 << 16), func(c *Config) { c.MaxRun = 1 << 16 }},
		{"WithFlushTimeout", WithFlushTimeout(5 * time.Millisecond), func(c *Config) { c.FlushTimeout = 5 * time.Millisecond }},
		{"WithStripeUnit", WithStripeUnit(32), func(c *Config) { c.StripeUnitPages = 32 }},
		{"WithCPUWorkers", WithCPUWorkers(4), func(c *Config) { c.CPUWorkers = 4 }},
		{"WithReplayWorkers", WithReplayWorkers(8), func(c *Config) { c.ReplayWorkers = 8 }},
		{"WithShards", WithShards(4), func(c *Config) { c.Shards = 4 }},
		{"WithCache", WithCache(1 << 20), func(c *Config) { c.CacheBytes = 1 << 20 }},
		{"WithOffload", WithOffload(), func(c *Config) { c.Offload = true }},
		{"WithTracer", WithTracer(jt), func(c *Config) { c.Tracer = jt }},
		{"WithTimeSeries", WithTimeSeries(2 * time.Second), func(c *Config) { c.TimeSeriesEvery = 2 * time.Second }},
		{"WithFaults", WithFaults(plan), func(c *Config) { c.Faults = plan }},
		{"WithSnapshotEvery", WithSnapshotEvery(time.Second), func(c *Config) { c.SnapshotEvery = time.Second }},
		{"WithQoS", WithQoS(qcfg), func(c *Config) { q := qcfg; c.QoS = &q }},
	}
	for _, tc := range cases {
		viaOpt := DefaultConfig()
		tc.opt(&viaOpt)
		viaStruct := DefaultConfig()
		tc.direct(&viaStruct)
		if !reflect.DeepEqual(viaOpt, viaStruct) {
			t.Errorf("%s: option form %+v != struct form %+v", tc.name, viaOpt, viaStruct)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Scheme = "Zstd"
	if err := bad.Validate(); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme: err = %v, want ErrUnknownScheme", err)
	}
	bad = DefaultConfig()
	bad.Backend = BackendKind(42)
	if err := bad.Validate(); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown backend: err = %v, want ErrUnknownBackend", err)
	}
	bad = DefaultConfig()
	bad.Faults = &FaultPlan{Seed: 1, PowerCutAt: time.Second}
	bad.Shards = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("power cut + shards must be rejected")
	}
	bad = DefaultConfig()
	bad.Faults = &FaultPlan{Seed: 1, ReadHard: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range fault probability must be rejected")
	}
	bad = DefaultConfig()
	bad.QoS = &QoSConfig{Tenants: map[string]QoSTenant{"web": {Bandwidth: "nope"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unparsable tenant bandwidth must be rejected")
	}
	bad = DefaultConfig()
	bad.QoS = &QoSConfig{Tenants: map[string]QoSTenant{"web": {Class: QoSClass(42)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown tenant class must be rejected")
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNewSystemFromConfigZeroValue(t *testing.T) {
	// A literally-constructed zero Config normalizes to the defaults.
	cfg := Config{SSD: smallSSD(), Verify: true}
	sys, err := NewSystemFromConfig(testVolume, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Play(smallTrace(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Count() != 300 {
		t.Fatalf("answered %d", res.Resp.Count())
	}
}

func TestTypedErrors(t *testing.T) {
	if _, err := Replay(smallTrace(t, 10), testVolume, WithScheme("bogus")); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("bogus scheme: err = %v, want ErrUnknownScheme", err)
	}
	if _, err := WorkloadByName("nope", testVolume); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("bogus workload: err = %v, want ErrUnknownWorkload", err)
	}
	fe := &FaultError{Op: "read", Dev: 2, LBA: 77, Transient: true}
	if !errors.Is(fe, ErrFaultTransient) || errors.Is(fe, ErrFaultHard) {
		t.Fatal("transient FaultError must match ErrFaultTransient only")
	}
	var got *FaultError
	if !errors.As(error(fe), &got) || got.Dev != 2 || got.LBA != 77 {
		t.Fatalf("errors.As extraction failed: %+v", got)
	}
}

// TestFaultDeterminismFacade pins the tentpole's determinism contract at
// the API boundary: same trace + same plan → identical results, with and
// without LBA sharding.
func TestFaultDeterminismFacade(t *testing.T) {
	tr := smallTrace(t, 800)
	for _, shards := range []int{1, 4} {
		run := func() string {
			opts := []Option{
				WithSSDConfig(smallSSD()),
				WithFaults(testFaultPlan()),
			}
			if shards > 1 {
				opts = append(opts, WithShards(shards))
			}
			res, err := Replay(tr, testVolume, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Faults == 0 {
				t.Fatal("plan attached but no faults injected")
			}
			return res.Format()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("shards=%d: fault replays diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", shards, a, b)
		}
	}
}

func TestPowerCutRecovery(t *testing.T) {
	tr := smallTrace(t, 800)
	span := tr.Requests[len(tr.Requests)-1].Arrival
	// Cut just after a mid-trace arrival: that request is admitted but
	// still in flight (device service runs ~100µs+), so the crash
	// demonstrably loses work.
	cut := tr.Requests[400].Arrival + 20*time.Microsecond
	plan := &FaultPlan{Seed: 13, WriteTransient: 0.01, PowerCutAt: cut}
	run := func() *Results {
		res, err := Replay(tr, testVolume,
			WithSSDConfig(smallSSD()),
			WithVerify(),
			WithFaults(plan),
			WithSnapshotEvery(span/8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}
	if res.CrashLost == 0 {
		t.Fatal("a mid-trace power cut should lose in-flight requests")
	}
	if got := res.Resp.Count() + res.CrashLost; got > int64(len(tr.Requests)) {
		t.Fatalf("completed(%d) + lost(%d) > trace size %d",
			res.Resp.Count(), res.CrashLost, len(tr.Requests))
	}
	if res.Resp.Count() == 0 {
		t.Fatal("no requests completed across the crash")
	}
	// The crash/recover/resume composite is itself deterministic.
	if a, b := res.Format(), run().Format(); a != b {
		t.Fatalf("power-cut replays diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestNoPlanMatchesBaseline pins the zero-cost-when-disabled contract:
// attaching no plan leaves results identical to a build that never heard
// of fault injection (here: field-identical to a second plain run, with
// every fault counter zero and no fault line in the report).
func TestNoPlanMatchesBaseline(t *testing.T) {
	tr := smallTrace(t, 400)
	res, err := Replay(tr, testVolume, WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 || res.FaultRetries != 0 || res.DegradedReads != 0 ||
		res.WriteReallocs != 0 || res.UnrecoveredReads != 0 || res.Recoveries != 0 {
		t.Fatalf("fault counters non-zero without a plan: %+v", res)
	}
	if report := res.Format(); strings.Contains(report, "faults:") {
		t.Fatalf("plan-free report mentions faults:\n%s", report)
	}
}
