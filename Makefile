GO ?= go

.PHONY: all build test vet fmtcheck doclint race bench check cover clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean, listing the offenders.
fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fail on undocumented exported identifiers in the audited packages
# (root edc, internal/core, internal/metrics, internal/obs).
doclint:
	$(GO) run ./cmd/doclint

test:
	$(GO) test ./...

# Race-check the packages that exercise the replay pipeline (real
# goroutines joining the virtual-time event loop).
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/parallel/... .

# Codec + generator microbenchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/compress ./internal/datagen

# Coverage for the EDC block layer (the staged pipeline), with a
# per-function summary and the total.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/core/...
	$(GO) tool cover -func=coverage.out | tail -n 25

# The tier-1 gate: everything a PR must keep green.
check: fmtcheck vet build doclint test race

clean:
	$(GO) clean ./...
