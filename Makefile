GO ?= go

.PHONY: all build test vet race bench check cover clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages that exercise the replay pipeline (real
# goroutines joining the virtual-time event loop).
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/parallel/... .

# Codec + generator microbenchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/compress ./internal/datagen

# Coverage for the EDC block layer (the staged pipeline), with a
# per-function summary and the total.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/core/...
	$(GO) tool cover -func=coverage.out | tail -n 25

# The tier-1 gate: everything a PR must keep green.
check: vet build test race

clean:
	$(GO) clean ./...
