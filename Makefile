GO ?= go

.PHONY: all build test vet race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages that exercise the replay pipeline (real
# goroutines joining the virtual-time event loop).
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/parallel/... .

# Codec + generator microbenchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/compress ./internal/datagen

# The tier-1 gate: everything a PR must keep green.
check: vet build test race

clean:
	$(GO) clean ./...
