GO ?= go

.PHONY: all build test vet fmtcheck doclint race raceall bench perfjson servecheck corescale check cover faultcheck maintcheck dedupcheck qoscheck clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean, listing the offenders.
fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fail on undocumented exported identifiers in the audited packages
# (root edc, internal/core, internal/metrics, internal/obs,
# internal/maint, internal/dedup).
doclint:
	$(GO) run ./cmd/doclint

test:
	$(GO) test ./...

# Race-check the packages that exercise the replay pipeline (real
# goroutines joining the virtual-time event loop).
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/parallel/... .

# Race-check everything (the CI race job; slower than `race`).
raceall:
	$(GO) test -race ./...

# Determinism gate for the fault layer: replay fig8 twice under a canned
# fault plan and fail on any byte of divergence.
FAULTPLAN := {"seed":7,"read_transient":0.01,"write_transient":0.02,"write_hard":0.005,"spike_rate":0.01,"spike_latency":"2ms"}
faultcheck:
	$(GO) run ./cmd/edcbench -experiment fig8 -format csv -requests 3000 -faults '$(FAULTPLAN)' > /tmp/edc-faultcheck-1.csv
	$(GO) run ./cmd/edcbench -experiment fig8 -format csv -requests 3000 -faults '$(FAULTPLAN)' > /tmp/edc-faultcheck-2.csv
	cmp /tmp/edc-faultcheck-1.csv /tmp/edc-faultcheck-2.csv
	@echo "faultcheck OK: fig8 under the canned fault plan is deterministic"

# Determinism gate for background maintenance: replay the maint
# experiment (EDC off/on over the four traces) twice under the race
# detector — once single-pipeline, once sharded — and fail on any byte
# of divergence.
maintcheck:
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment maint -format csv -requests 3000 > /tmp/edc-maintcheck-1.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment maint -format csv -requests 3000 > /tmp/edc-maintcheck-2.csv
	cmp /tmp/edc-maintcheck-1.csv /tmp/edc-maintcheck-2.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment maint -format csv -requests 3000 -shards 2 -workers 2 > /tmp/edc-maintcheck-s1.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment maint -format csv -requests 3000 -shards 2 -workers 2 > /tmp/edc-maintcheck-s2.csv
	cmp /tmp/edc-maintcheck-s1.csv /tmp/edc-maintcheck-s2.csv
	@echo "maintcheck OK: background maintenance is deterministic (1 and 2 shards, -race)"

# Determinism gate for content-addressed dedup: replay the dedup
# experiment (EDC off/on over the four traces, duplicate-heavy payloads)
# twice under the race detector — once single-pipeline, once sharded —
# and fail on any byte of divergence.
dedupcheck:
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment dedup -format csv -requests 3000 > /tmp/edc-dedupcheck-1.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment dedup -format csv -requests 3000 > /tmp/edc-dedupcheck-2.csv
	cmp /tmp/edc-dedupcheck-1.csv /tmp/edc-dedupcheck-2.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment dedup -format csv -requests 3000 -shards 2 -workers 2 > /tmp/edc-dedupcheck-s1.csv
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -experiment dedup -format csv -requests 3000 -shards 2 -workers 2 > /tmp/edc-dedupcheck-s2.csv
	cmp /tmp/edc-dedupcheck-s1.csv /tmp/edc-dedupcheck-s2.csv
	@echo "dedupcheck OK: content-addressed dedup is deterministic (1 and 2 shards, -race)"

# Determinism and tag-inertness gate for multi-tenant QoS: the
# two-tenant serve spec (latency class + bandwidth-shaped bulk class)
# twice under the race detector at one and two shards, comparing the
# pipeline-determined results (op counts, codec mixes, byte totals,
# per-tenant shaping/rejection counts — open-loop latency fields depend
# on real-time batch boundaries and are excluded), then a
# tagged-single-tenant spec against its untagged twin: the tag alone
# must change nothing. Needs jq.
qoscheck:
	sh scripts/qoscheck.sh

# Codec + generator microbenchmarks with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/compress ./internal/datagen

# Machine-readable performance snapshot: fig8/fig10 replay tables, the
# maintenance before/after space table, the codec microbenchmarks, an
# open-loop serve run, the multi-tenant qos isolation run, and the
# corescale sweep, written to $(PERFJSON_OUT) at the repo root
# (override to snapshot elsewhere).
PERFJSON_OUT ?= BENCH_10.json
perfjson:
	sh scripts/perfjson.sh $(PERFJSON_OUT)

# Serve-mode smoke: a short multi-step open-loop spec pushed through the
# race detector on several cores — the concurrency gate for the live
# serving path. CI's serve-smoke job runs exactly this target.
servecheck:
	GOMAXPROCS=4 $(GO) run -race ./cmd/edcbench -serve \
		-spec specs/serve-smoke.spec -clients 8 -shards 2 -volume 64

# Core-scaling sweep and gate: the same paced serve workload at
# GOMAXPROCS 1/2/4. Always asserts the virtual-time results (per-step
# counts, achieved QPS, percentiles) are byte-identical across the
# three runs; with CORESCALE_MIN set (CI: 1.5 on 4-vCPU runners) also
# asserts ops/sec-wall at 4 procs >= CORESCALE_MIN x the 1-proc run.
# Needs jq.
corescale:
	sh scripts/corescale.sh

# Coverage for the EDC block layer (the staged pipeline), with a
# per-function summary and the total.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/core/...
	$(GO) tool cover -func=coverage.out | tail -n 25

# The tier-1 gate: everything a PR must keep green.
check: fmtcheck vet build doclint test race maintcheck dedupcheck qoscheck

clean:
	$(GO) clean ./...
