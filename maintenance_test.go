package edc

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// maintPolicy is an aggressive maintenance config for facade tests:
// short ticks, short epochs, and an idle ceiling high enough that the
// small test traces qualify.
func maintPolicy() Maintenance {
	return Maintenance{
		Interval:   20 * time.Millisecond,
		IdleIOPS:   5000,
		EpochLen:   100 * time.Millisecond,
		ColdEpochs: 2,
	}
}

// TestMaintenanceDisabledIsIdentical checks the off path is provably
// unchanged: a config carrying a maintenance policy with Enabled=false
// must replay bit-identically to one with no policy at all, across the
// single-pipeline and sharded systems.
func TestMaintenanceDisabledIsIdentical(t *testing.T) {
	tr := smallTrace(t, 1500)
	for _, shards := range []int{1, 3} {
		run := func(m *Maintenance) *Results {
			cfg := DefaultConfig()
			cfg.SSD = smallSSD()
			cfg.Verify = true
			cfg.Shards = shards
			cfg.Maintenance = m
			res, err := ReplayConfig(tr, testVolume, cfg)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			return res
		}
		disabled := maintPolicy() // Enabled left false
		if !reflect.DeepEqual(run(nil), run(&disabled)) {
			t.Fatalf("shards=%d: Enabled=false maintenance config changed the replay", shards)
		}
	}
}

// TestMaintenanceDeterminism replays the same trace twice with
// maintenance enabled across a workers x shards matrix; every cell must
// reproduce byte-identical Results, and verification must hold on every
// read of a relocated extent.
func TestMaintenanceDeterminism(t *testing.T) {
	tr := smallTrace(t, 1500)
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 3} {
			run := func() *Results {
				res, err := Replay(tr, testVolume,
					WithSSDConfig(smallSSD()),
					WithVerify(),
					WithReplayWorkers(workers),
					WithShards(shards),
					WithMaintenance(maintPolicy()))
				if err != nil {
					t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d shards=%d: repeated maintenance replays diverge:\n%+v\n%+v",
					workers, shards, a, b)
			}
			if a.MaintTicks == 0 {
				t.Fatalf("workers=%d shards=%d: maintenance never ticked", workers, shards)
			}
		}
	}
}

// TestMaintenanceHeatHistogramMerge checks the sharded replay reports
// one merged five-bucket heat histogram covering every shard's extents.
func TestMaintenanceHeatHistogramMerge(t *testing.T) {
	tr := smallTrace(t, 1500)
	single, err := Replay(tr, testVolume,
		WithSSDConfig(smallSSD()), WithMaintenance(maintPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Replay(tr, testVolume,
		WithSSDConfig(smallSSD()), WithShards(3), WithMaintenance(maintPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Results{"single": single, "sharded": sharded} {
		if len(res.HeatHist) != 5 {
			t.Fatalf("%s: heat histogram %v, want 5 buckets", name, res.HeatHist)
		}
		var sum int64
		for _, n := range res.HeatHist {
			sum += n
		}
		if sum == 0 {
			t.Fatalf("%s: heat histogram empty", name)
		}
		if !strings.Contains(res.Format(), "heat:") {
			t.Fatalf("%s: Format() missing the heat line:\n%s", name, res.Format())
		}
	}
	rep := sharded.Report()
	if len(rep.HeatHist) != 5 {
		t.Fatalf("report heat histogram %v, want 5 buckets", rep.HeatHist)
	}
}

// TestMaintenanceServe drives a sharded serve-mode system with
// maintenance enabled: the per-batch re-arm must keep the scheduler
// ticking, and the merged results must stay verified.
func TestMaintenanceServe(t *testing.T) {
	s, err := NewSystem(testVolume,
		WithSSDConfig(smallSSD()), WithShards(2), WithVerify(),
		WithMaintenance(maintPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// One client writes a region then leaves it idle while sparse later
	// traffic gives maintenance room to tick.
	for i := 0; i < 60; i++ {
		off := int64(i%32) * 4096
		at := time.Duration(i) * 5 * time.Millisecond
		if i < 32 {
			_, err = s.WriteAt(ctx, at, off, 4096)
		} else {
			_, err = s.ReadAt(ctx, at, off, 4096)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.StopServe()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaintTicks == 0 {
		t.Fatalf("serve mode never ticked maintenance: %+v", res)
	}
	if len(res.HeatHist) != 5 {
		t.Fatalf("serve mode heat histogram %v, want 5 buckets", res.HeatHist)
	}
}
