module edc

go 1.22
