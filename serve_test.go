package edc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestServeFacade drives a sharded System live from concurrent
// goroutines and checks the merged Results account for every operation.
func TestServeFacade(t *testing.T) {
	s, err := NewSystem(testVolume,
		WithSSDConfig(smallSSD()), WithShards(2), WithVerify(),
		WithServeQueue(16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	const clients, perC = 4, 30
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				// Block-aligned single-block ops inside the volume keep the
				// request count exact.
				off := int64((c*perC+i)*7919%(testVolume/4096)) * 4096
				at := time.Duration(i) * 100 * time.Microsecond
				var err error
				if i%3 == 0 {
					_, err = s.ReadAt(ctx, at, off, 4096)
				} else {
					_, err = s.WriteAt(ctx, at, off, 4096)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := s.StopServe()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != clients*perC {
		t.Fatalf("requests=%d, want %d", res.Requests, clients*perC)
	}
	if res.Resp.Count() != clients*perC {
		t.Fatalf("latency observations=%d, want %d", res.Resp.Count(), clients*perC)
	}
	if res.Scheme != string(SchemeEDC) {
		t.Fatalf("scheme=%q", res.Scheme)
	}
}

// TestServeFacadeErrors covers the serve-mode state machine: calls
// before Serve, Play after Serve, submissions after StopServe.
func TestServeFacadeErrors(t *testing.T) {
	s, err := NewSystem(testVolume, WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Read(ctx, 0, 4096); !errors.Is(err, ErrNotServing) {
		t.Fatalf("Read before Serve: %v, want ErrNotServing", err)
	}
	if _, err := s.StopServe(); !errors.Is(err, ErrNotServing) {
		t.Fatalf("StopServe before Serve: %v, want ErrNotServing", err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Play(smallTrace(t, 10)); !errors.Is(err, ErrReplayed) {
		t.Fatalf("Play after Serve: %v, want ErrReplayed", err)
	}
	if err := s.Serve(); !errors.Is(err, ErrReplayed) {
		t.Fatalf("second Serve: %v, want ErrReplayed", err)
	}
	if _, err := s.Write(ctx, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StopServe(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(ctx, 0, 4096); !errors.Is(err, ErrServeStopped) {
		t.Fatalf("Write after StopServe: %v, want ErrServeStopped", err)
	}
	if _, err := s.StopServe(); !errors.Is(err, ErrServeStopped) {
		t.Fatalf("second StopServe: %v, want ErrServeStopped", err)
	}
}

// TestServeObs checks the observability layer rides along in serve
// mode: decision counters and the time series come back on the merged
// Results exactly as they do for a replay.
func TestServeObs(t *testing.T) {
	s, err := NewSystem(testVolume, WithSSDConfig(smallSSD()), WithShards(2),
		WithTracer(TracerFunc(func(*TraceEvent) {})),
		WithTimeSeries(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 500 * time.Microsecond
		if _, err := s.WriteAt(ctx, at, int64(i)*4096, 4096); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.StopServe()
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("serve Results carry no obs report")
	}
	if got := res.Obs.Counters[`edc_admitted_total{op="write"}`]; got != 40 {
		t.Fatalf("admitted counter=%d, want 40", got)
	}
	if res.Obs.Series == nil || len(res.Obs.Series.CodecRuns) == 0 {
		t.Fatal("serve Results carry no time series bins")
	}
}

// TestServeResplit drives a resplit-enabled single-shard System hot
// enough to split and checks the facade reports the grown shard map and
// the merged Results carry the split accounting.
func TestServeResplit(t *testing.T) {
	s, err := NewSystem(1<<20, WithSSDConfig(smallSSD()),
		WithResplit(ResplitConfig{MaxShards: 3, Factor: 1, WindowOps: 32, Streak: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 512; i++ {
		off := int64(i%256) * 4096
		if _, err := s.Write(ctx, off, 4096); err != nil {
			t.Fatal(err)
		}
	}
	shards := s.ServeShards()
	if shards < 2 || shards > 3 {
		t.Fatalf("ServeShards=%d after hot load, want in [2,3]", shards)
	}
	res, err := s.StopServe()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resplits != int64(shards-1) {
		t.Fatalf("Resplits=%d, want %d", res.Resplits, shards-1)
	}
	if len(res.ShardLiveBlocks) != shards {
		t.Fatalf("ShardLiveBlocks has %d entries, want %d", len(res.ShardLiveBlocks), shards)
	}
}

// TestResplitValidation checks the config-level incompatibility
// refusals (verify, dedup, QoS, paced serve).
func TestResplitValidation(t *testing.T) {
	rc := ResplitConfig{}
	bad := [][]Option{
		{WithResplit(rc), WithVerify()},
		{WithResplit(rc), WithDedup(Dedup{})},
		{WithResplit(rc), WithQoS(QoSConfig{Tenants: map[string]QoSTenant{"a": {}}})},
		{WithResplit(rc), WithPacedServe()},
	}
	for i, opts := range bad {
		if _, err := NewSystem(1<<20, append(opts, WithSSDConfig(smallSSD()))...); err == nil {
			t.Fatalf("case %d: incompatible resplit config accepted", i)
		}
	}
	if _, err := NewSystem(1<<20, WithResplit(rc), WithSSDConfig(smallSSD())); err != nil {
		t.Fatalf("resplit alone refused: %v", err)
	}
}

// TestServeRejectsPowerCut checks serve mode refuses crash-orchestration
// fault plans (there is no trace timeline to cut).
func TestServeRejectsPowerCut(t *testing.T) {
	s, err := NewSystem(testVolume, WithSSDConfig(smallSSD()),
		WithFaults(&FaultPlan{Seed: 1, PowerCutAt: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err == nil {
		t.Fatal("Serve accepted a power-cut fault plan")
	}
}
