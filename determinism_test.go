package edc

import (
	"reflect"
	"testing"
	"time"
)

// TestReplayWorkersDeterminism checks the pipeline's core contract: the
// replay-worker count changes only wall-clock speed, never results.
// Compressed output is a pure function of (content, codec) and the event
// loop joins every future before using it, so RunStats must match
// field-by-field between sequential (workers=1) and pipelined replays.
// With workers > 1 the codec futures run on the process-wide
// work-stealing pool (each replay registers a queue; any idle pool
// worker may execute any job), so matching at both 2 and 8 workers also
// pins down that stealing cannot reorder results. Run under -race this
// exercises the pool's handoff of content/payload buffers between the
// event loop and the workers.
func TestReplayWorkersDeterminism(t *testing.T) {
	tr := smallTrace(t, 1500)
	backends := []struct {
		name string
		opts []Option
	}{
		{"single-ssd", []Option{WithSSDConfig(smallSSD())}},
		{"rais5", []Option{WithBackend(RAIS5, 5), WithSSDConfig(smallSSD())}},
	}
	for _, s := range []Scheme{SchemeEDC, SchemeEDCPlus} {
		for _, be := range backends {
			s, be := s, be
			t.Run(string(s)+"/"+be.name, func(t *testing.T) {
				runWith := func(workers int) *Results {
					opts := append([]Option{
						WithScheme(s),
						WithReplayWorkers(workers),
					}, be.opts...)
					res, err := Replay(tr, testVolume, opts...)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return res
				}
				seq := runWith(1)
				for _, workers := range []int{2, 8} {
					par := runWith(workers)
					if !reflect.DeepEqual(seq, par) {
						report := func(r *Results) []interface{} {
							return []interface{}{
								r.OrigBytes, r.CompBytes, r.StoredBytes,
								r.Resp.Count(), r.MeanResponse(), r.RunsByTag,
							}
						}
						t.Fatalf("results differ between workers=1 and workers=%d:\nseq: %v\npar: %v",
							workers, report(seq), report(par))
					}
				}
			})
		}
	}
}

// TestReadPathWorkersDeterminism checks the same contract on the read
// side with verification enabled: every read decompresses its extent's
// payload snapshot and compares it with the regenerated original, and
// with workers > 1 that whole check runs on pool goroutines between the
// read's submission and completion events. Results must still match the
// sequential replay field-by-field — alone, combined with LBA sharding
// (where every shard's queue feeds the same shared work-stealing pool),
// and under an active fault plan (whose retries reorder nothing). Run
// under -race this exercises the event loop handing freelist buffers
// and payload snapshots to the verify workers.
func TestReadPathWorkersDeterminism(t *testing.T) {
	tr := smallTrace(t, 1500)
	cases := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"sharded", []Option{WithShards(4)}},
		{"faults", []Option{WithFaults(&FaultPlan{
			Seed: 77, ReadTransient: 0.02, SpikeRate: 0.01, SpikeLatency: 2 * time.Millisecond,
		})}},
		{"sharded-faults", []Option{WithShards(4), WithFaults(&FaultPlan{
			Seed: 77, ReadTransient: 0.02, SpikeRate: 0.01, SpikeLatency: 2 * time.Millisecond,
		})}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runWith := func(workers int) *Results {
				opts := append([]Option{
					WithScheme(SchemeEDC),
					WithSSDConfig(smallSSD()),
					WithVerify(),
					WithReplayWorkers(workers),
				}, tc.opts...)
				res, err := Replay(tr, testVolume, opts...)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			seq := runWith(1)
			for _, workers := range []int{2, 4} {
				par := runWith(workers)
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("verify-mode results differ between workers=1 and workers=%d:\nseq: %+v\npar: %+v",
						workers, seq, par)
				}
			}
		})
	}
}
