package edc

import (
	"reflect"
	"testing"
)

// TestReplayWorkersDeterminism checks the pipeline's core contract: the
// replay-worker count changes only wall-clock speed, never results.
// Compressed output is a pure function of (content, codec) and the event
// loop joins every future before using it, so RunStats must match
// field-by-field between sequential (workers=1) and pipelined (workers=8)
// replays. Run under -race this also exercises the pool's handoff of
// content/payload buffers between the event loop and the workers.
func TestReplayWorkersDeterminism(t *testing.T) {
	tr := smallTrace(t, 1500)
	backends := []struct {
		name string
		opts []Option
	}{
		{"single-ssd", []Option{WithSSDConfig(smallSSD())}},
		{"rais5", []Option{WithBackend(RAIS5, 5), WithSSDConfig(smallSSD())}},
	}
	for _, s := range []Scheme{SchemeEDC, SchemeEDCPlus} {
		for _, be := range backends {
			s, be := s, be
			t.Run(string(s)+"/"+be.name, func(t *testing.T) {
				runWith := func(workers int) *Results {
					opts := append([]Option{
						WithScheme(s),
						WithReplayWorkers(workers),
					}, be.opts...)
					res, err := Replay(tr, testVolume, opts...)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return res
				}
				seq := runWith(1)
				par := runWith(8)
				if !reflect.DeepEqual(seq, par) {
					report := func(r *Results) []interface{} {
						return []interface{}{
							r.OrigBytes, r.CompBytes, r.StoredBytes,
							r.Resp.Count(), r.MeanResponse(), r.RunsByTag,
						}
					}
					t.Fatalf("results differ between workers=1 and workers=8:\nseq: %v\npar: %v",
						report(seq), report(par))
				}
			})
		}
	}
}
