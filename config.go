package edc

import (
	"fmt"
	"time"

	"edc/internal/core"
	"edc/internal/datagen"
	"edc/internal/dedup"
	"edc/internal/fault"
	"edc/internal/maint"
	"edc/internal/obs"
	"edc/internal/qos"
	"edc/internal/ssd"
)

// QoSConfig configures multi-tenant quality of service (see
// internal/qos): a tenant table mapping names to traffic classes,
// rclone-style time-of-day bandwidth schedules, and per-tenant queue
// bounds, plus the Strict and Isolate global knobs. Attach one with
// WithQoS or Config.QoS; nil keeps QoS off and untagged runs
// bit-identical to earlier releases.
type QoSConfig = qos.Config

// QoSTenant is one tenant's treatment in a QoSConfig.
type QoSTenant = qos.Tenant

// QoSClass is a tenant's traffic class (standard, latency, bulk).
type QoSClass = qos.Class

// The three traffic classes, re-exported for QoSConfig literals.
const (
	// ClassStandard is the default best-effort class.
	ClassStandard = qos.ClassStandard
	// ClassLatency preempts the deferred FIFO under saturation.
	ClassLatency = qos.ClassLatency
	// ClassBulk drains only after standard and latency queues.
	ClassBulk = qos.ClassBulk
)

// Dedup configures content-addressed deduplication (see internal/dedup):
// every flushed write run is fingerprinted after SD merging and before
// compression, and a run whose fingerprint matches an already-stored
// extent maps to it by reference instead of compressing and allocating a
// new slot. Zero-valued fields take documented defaults. Attach one with
// WithDedup or Config.Dedup; nil (or Enabled=false) keeps dedup off and
// the replay bit-identical to earlier releases.
type Dedup = dedup.Config

// Maintenance configures temperature-aware background maintenance (see
// internal/maint): during idle windows the device recompresses cold
// lzf/uncompressed extents with a heavier codec, demotes hot gz/bwz
// extents to a cheap codec, and compacts fragmented slot free lists.
// Zero-valued fields take documented defaults. Attach one with
// WithMaintenance or Config.Maintenance; nil (or Enabled=false) keeps
// maintenance off and the replay bit-identical to earlier releases.
type Maintenance = maint.Config

// ResplitConfig tunes serve mode's heat-balanced shard repartitioning
// (see internal/core): a shard whose admitted-op share stays above its
// fair share for several evaluation windows splits its LBA range at a
// quiesced, heat-balanced boundary into two independent event loops.
// Zero-valued fields take documented defaults. Attach one with
// WithResplit or Config.Resplit; nil (or Enabled=false) keeps the shard
// map fixed. Splits are triggered by real-time traffic imbalance, so a
// resplit-enabled run is not byte-deterministic across machines.
type ResplitConfig = core.ResplitConfig

// FaultPlan is a seeded, virtual-time fault schedule (see
// internal/fault): per-operation read/write error probabilities
// (transient and hard), latency spikes, whole-device stall windows, and
// an optional power cut. Attach one with WithFaults or Config.Faults;
// parse one from JSON with ParseFaultPlan.
type FaultPlan = fault.Plan

// FaultStall is one whole-device outage window in a FaultPlan.
type FaultStall = fault.Stall

// ParseFaultPlan decodes and validates a JSON fault plan (the format
// edcbench -faults accepts; durations may be nanosecond numbers or Go
// duration strings like "250ms").
func ParseFaultPlan(s string) (*FaultPlan, error) { return fault.ParsePlan(s) }

// Config is the plain-struct form of the facade's functional options:
// every Option writes one field here, and NewSystemFromConfig consumes
// a Config directly — build one literally, or start from
// DefaultConfig() and adjust. The zero value of any field means "use
// the default" exactly as the corresponding Option's absence does.
type Config struct {
	// Scheme selects the compression scheme (default SchemeEDC).
	Scheme Scheme
	// GzCeiling / LzfCeiling are EDC's calculated-IOPS thresholds:
	// Gzip below GzCeiling, Lzf up to LzfCeiling, none above (Fig. 12).
	// Zero keeps the calibrated defaults.
	GzCeiling  float64
	LzfCeiling float64

	// Backend selects the storage organization; Devices the array size
	// (0 → 1 for SingleSSD, 5 for RAIS).
	Backend BackendKind
	Devices int
	// SSD parameterizes the simulated devices (zero value → the
	// X25-E-class DefaultSSDConfig).
	SSD SSDConfig
	// StripeUnitPages is the RAIS stripe unit in pages (0 → 16).
	StripeUnitPages int

	// Data selects the synthetic payload model (zero value →
	// enterprise) generated with DataSeed (0 → 1).
	Data     DataProfile
	DataSeed int64
	// Cost overrides the CPU cost model (nil → calibrated default).
	Cost CostModel

	// Verify stores payloads and checks every read round-trips
	// (memory-hungry; tests and demos).
	Verify bool
	// DisableSD turns off write merging (ablation).
	DisableSD bool
	// ExactSlots disables the 25/50/75/100 % slot quantization
	// (ablation).
	ExactSlots bool
	// DisableEstimator turns off compressibility sampling (ablation).
	DisableEstimator bool
	// MaxRun caps SD merging in bytes (0 → default).
	MaxRun int64
	// FlushTimeout bounds SD buffering delay (0 → default; negative
	// disables the timer).
	FlushTimeout time.Duration

	// CPUWorkers models a multicore host: parallel compression workers
	// in virtual time (0 → 1, the paper's single-threaded prototype).
	CPUWorkers int
	// ReplayWorkers is the number of OS goroutines executing real codec
	// work concurrently with the event loop; affects wall-clock speed
	// only (0 → GOMAXPROCS).
	ReplayWorkers int
	// Shards partitions the volume into n independent pipelines
	// replayed concurrently (<= 1 keeps the single pipeline).
	Shards int

	// CacheBytes enables a host DRAM read cache (0 disables).
	CacheBytes int64
	// Offload moves (de)compression into the device controller.
	Offload bool

	// Tracer streams one TraceEvent per pipeline decision.
	Tracer Tracer
	// TimeSeriesEvery samples IOPS/codec-mix/occupancy into bins of the
	// given width (0 disables).
	TimeSeriesEvery time.Duration

	// ServeMailbox bounds each shard's serve-mode submission mailbox:
	// when a shard's event loop falls behind, submitters block on the
	// full mailbox instead of growing an unbounded queue (0 → 256).
	ServeMailbox int
	// ServeBatch caps how many submissions one serve-mode event-loop
	// wakeup drains before running the engine (0 → 64).
	ServeBatch int
	// Resplit enables serve mode's heat-balanced shard repartitioning;
	// nil (or Enabled=false) keeps the shard map fixed. Incompatible
	// with Verify, Dedup, and QoS (see WithResplit).
	Resplit *ResplitConfig
	// PacedServe keeps each serve-mode shard's virtual clock at or
	// below the highest arrival stamp it has admitted — determinism for
	// stamp-ordered submitters; see WithPacedServe. Incompatible with
	// Resplit and with the synchronous Read/Write wrappers.
	PacedServe bool

	// Maintenance enables temperature-aware background recompression
	// and slot compaction; nil (or Enabled=false) runs no maintenance
	// and the replay is bit-identical to a maintenance-free run.
	Maintenance *Maintenance

	// Dedup enables content-addressed deduplication of flushed write
	// runs; nil (or Enabled=false) keeps dedup off and the replay
	// bit-identical to a dedup-free run.
	Dedup *Dedup

	// QoS enables multi-tenant quality of service: per-tenant classes,
	// bandwidth shaping, priority admission, and (with Isolate) per-
	// tenant intensity windows for codec selection. Nil keeps QoS off;
	// untagged requests behave identically either way.
	QoS *QoSConfig

	// Faults attaches a deterministic fault plan; nil injects nothing
	// and the replay is bit-identical to a plan-free run.
	Faults *FaultPlan
	// SnapshotEvery checkpoints the mapping (snapshot + journal reset)
	// at this virtual-time interval, bounding crash-recovery replay
	// work. Zero disables periodic checkpoints; a power-cut run then
	// recovers from one journal covering the whole run.
	SnapshotEvery time.Duration
}

// DefaultConfig returns the configuration NewSystem uses before options
// apply: SchemeEDC over one default SSD with enterprise data.
func DefaultConfig() Config {
	return Config{
		Scheme:          SchemeEDC,
		GzCeiling:       core.DefaultGzCeiling,
		LzfCeiling:      core.DefaultLzfCeiling,
		Backend:         SingleSSD,
		Devices:         1,
		SSD:             ssd.DefaultConfig(),
		Data:            datagen.Enterprise(),
		DataSeed:        1,
		StripeUnitPages: 16,
	}
}

// normalize fills zero-valued fields with their documented defaults, so
// a literally-constructed Config behaves like DefaultConfig plus the
// fields the caller set.
func (c *Config) normalize() {
	if c.Scheme == "" {
		c.Scheme = SchemeEDC
	}
	if c.GzCeiling == 0 {
		c.GzCeiling = core.DefaultGzCeiling
	}
	if c.LzfCeiling == 0 {
		c.LzfCeiling = core.DefaultLzfCeiling
	}
	if c.Devices == 0 && c.Backend == SingleSSD {
		c.Devices = 1
	}
	if c.SSD == (ssd.Config{}) {
		c.SSD = ssd.DefaultConfig()
	}
	if len(c.Data.Mixture) == 0 {
		c.Data = datagen.Enterprise()
	}
	if c.DataSeed == 0 {
		c.DataSeed = 1
	}
	if c.StripeUnitPages == 0 {
		c.StripeUnitPages = 16
	}
}

// Validate checks the configuration's internal consistency without
// building anything. NewSystemFromConfig calls it; call it directly to
// vet a config before an expensive sweep.
func (c *Config) Validate() error {
	switch c.Scheme {
	case SchemeNative, SchemeLzf, SchemeLz4, SchemeGzip, SchemeBzip2, SchemeEDC, SchemeEDCPlus:
	default:
		return fmt.Errorf("%w %q", ErrUnknownScheme, c.Scheme)
	}
	switch c.Backend {
	case SingleSSD, RAIS0, RAIS5:
	default:
		return fmt.Errorf("%w %d", ErrUnknownBackend, c.Backend)
	}
	if c.Devices < 0 {
		return fmt.Errorf("edc: negative device count %d", c.Devices)
	}
	if c.GzCeiling < 0 || c.LzfCeiling < 0 || c.GzCeiling > c.LzfCeiling {
		return fmt.Errorf("edc: elastic thresholds gz=%g lzf=%g invalid (need 0 <= gz <= lzf)",
			c.GzCeiling, c.LzfCeiling)
	}
	if c.StripeUnitPages < 0 {
		return fmt.Errorf("edc: negative stripe unit %d", c.StripeUnitPages)
	}
	if c.MaxRun < 0 {
		return fmt.Errorf("edc: negative max run %d", c.MaxRun)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("edc: negative cache size %d", c.CacheBytes)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("edc: negative snapshot interval %v", c.SnapshotEvery)
	}
	if c.ServeMailbox < 0 || c.ServeBatch < 0 {
		return fmt.Errorf("edc: negative serve queue bounds mailbox=%d batch=%d",
			c.ServeMailbox, c.ServeBatch)
	}
	if c.Maintenance != nil && c.Maintenance.Enabled {
		if err := c.Maintenance.Validate(); err != nil {
			return err
		}
	}
	if c.Dedup != nil && c.Dedup.Enabled {
		if err := c.Dedup.Validate(); err != nil {
			return err
		}
	}
	if err := c.QoS.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults != nil && c.Faults.PowerCutAt > 0 && c.Shards > 1 {
		return fmt.Errorf("edc: power-cut recovery is not supported with WithShards(%d): shards crash and recover independently of each other", c.Shards)
	}
	if c.Resplit != nil && c.Resplit.Enabled {
		switch {
		case c.Dedup != nil && c.Dedup.Enabled:
			return fmt.Errorf("edc: resplit cannot migrate dedup-shared extents (references may span the split boundary); disable one of the two")
		case c.Verify:
			return fmt.Errorf("edc: resplit rebases extents to new shard-local offsets, which breaks offset-keyed read verification; disable one of the two")
		case c.QoS != nil:
			return fmt.Errorf("edc: resplit changes the shard count mid-run, invalidating per-shard QoS rate shares; disable one of the two")
		case c.PacedServe:
			return fmt.Errorf("edc: resplit's quiesce protocol must run the engine past the paced-serve watermark; disable one of the two")
		}
	}
	return nil
}

// Option customizes a System by writing one Config field. Every Option
// has a corresponding exported field, so functional and struct
// configuration cannot drift apart.
type Option func(*Config)

// WithScheme selects the compression scheme (default SchemeEDC).
func WithScheme(s Scheme) Option { return func(c *Config) { c.Scheme = s } }

// WithElasticThresholds overrides EDC's calculated-IOPS ceilings: Gzip
// below gzMax, Lzf between gzMax and lzfMax, none above (Fig. 12 sweeps
// gzMax).
func WithElasticThresholds(gzMax, lzfMax float64) Option {
	return func(c *Config) { c.GzCeiling, c.LzfCeiling = gzMax, lzfMax }
}

// WithBackend selects the storage organization and device count.
func WithBackend(kind BackendKind, devices int) Option {
	return func(c *Config) { c.Backend, c.Devices = kind, devices }
}

// WithSSDConfig overrides the simulated device parameters.
func WithSSDConfig(cfg SSDConfig) Option { return func(c *Config) { c.SSD = cfg } }

// WithDataProfile selects the synthetic payload model and its seed.
func WithDataProfile(p DataProfile, seed int64) Option {
	return func(c *Config) { c.Data, c.DataSeed = p, seed }
}

// WithCostModel overrides the CPU cost model.
func WithCostModel(cm CostModel) Option { return func(c *Config) { c.Cost = cm } }

// WithVerify stores payloads and checks every read round-trips
// (memory-hungry; tests and demos).
func WithVerify() Option { return func(c *Config) { c.Verify = true } }

// WithoutSD disables write merging (ablation).
func WithoutSD() Option { return func(c *Config) { c.DisableSD = true } }

// WithExactSlots disables the 25/50/75/100 % slot quantization
// (ablation).
func WithExactSlots() Option { return func(c *Config) { c.ExactSlots = true } }

// WithoutEstimator disables EDC's compressibility sampling (ablation:
// compress everything the intensity ladder selects).
func WithoutEstimator() Option { return func(c *Config) { c.DisableEstimator = true } }

// WithMaxRun caps SD merging in bytes.
func WithMaxRun(bytes int64) Option { return func(c *Config) { c.MaxRun = bytes } }

// WithCPUWorkers models a multicore host: n parallel compression
// workers (default 1, the paper's single-threaded prototype).
func WithCPUWorkers(n int) Option { return func(c *Config) { c.CPUWorkers = n } }

// WithReplayWorkers sets how many OS goroutines execute real codec work
// concurrently with the virtual-time event loop (the replay pipeline).
// This changes only wall-clock replay speed: compressed output is a pure
// function of (content, codec), so results are bit-identical for any
// setting. Default runtime.GOMAXPROCS(0); n <= 1 runs sequentially
// inline.
func WithReplayWorkers(n int) Option {
	return func(c *Config) {
		if n < 1 {
			n = 1
		}
		c.ReplayWorkers = n
	}
}

// WithShards partitions the volume into n contiguous LBA ranges, each
// served by an independent pipeline instance — its own virtual-time
// engine, backend device (or array), allocator, and mapping — replayed
// concurrently on OS goroutines. All shards read the same trace-derived
// global intensity signal, so codec selection matches the paper's
// whole-device feedback loop rather than fragmenting per shard. Results
// are deterministic for a fixed n; n <= 1 keeps the stock single
// pipeline. Sharding models an array of n EDC devices front-ending
// disjoint ranges: per-shard closed-loop bounds and shard-local SD merge
// make n > 1 a different (deterministic) system, not a faster identical
// one.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithCache enables a host DRAM read cache of the given size (the upper
// DRAM buffer in the paper's Fig. 4 architecture).
func WithCache(bytes int64) Option { return func(c *Config) { c.CacheBytes = bytes } }

// WithOffload moves compression into the device controller, as
// FTL-integrated designs do (zFTL; hardware-assisted compression): the
// host CPU is free, but every compressed operation occupies the device's
// codec engine.
func WithOffload() Option { return func(c *Config) { c.Offload = true } }

// WithFlushTimeout bounds SD buffering delay (negative disables).
func WithFlushTimeout(d time.Duration) Option { return func(c *Config) { c.FlushTimeout = d } }

// WithStripeUnit sets the RAIS stripe unit in pages (default 16).
func WithStripeUnit(pages int) Option { return func(c *Config) { c.StripeUnitPages = pages } }

// WithTracer streams one TraceEvent per pipeline decision to t
// (admission, SD merge/flush, estimator verdict, codec choice, slot
// placement, cache lookup, decompression, and — under a fault plan —
// fault/retry/degraded-read/recover decisions). Tracers are strict
// observers: results are identical with and without one attached.
// Under WithShards the per-shard streams merge deterministically by
// (virtual time, shard, sequence) after the replay, so t sees a totally
// ordered stream but only once the run completes.
func WithTracer(t Tracer) Option { return func(c *Config) { c.Tracer = t } }

// WithTimeSeries samples calculated IOPS, codec mix, and slot occupancy
// into fixed-interval bins of the given width (Results.Obs.Series).
// Sampling is passive — values are recorded at existing decision points,
// never from added timer events — so it cannot perturb the replay.
// d <= 0 selects one second.
func WithTimeSeries(d time.Duration) Option {
	return func(c *Config) {
		if d <= 0 {
			d = time.Second
		}
		c.TimeSeriesEvery = d
	}
}

// WithServeQueue bounds serve mode's per-shard submission queue: mailbox
// is the channel capacity submitters block on when full (backpressure),
// batch caps how many submissions one event-loop wakeup drains before
// running the virtual-time engine. Zero keeps the defaults (256 / 64).
func WithServeQueue(mailbox, batch int) Option {
	return func(c *Config) { c.ServeMailbox, c.ServeBatch = mailbox, batch }
}

// WithMaintenance enables temperature-aware background maintenance with
// the given policy (zero-valued fields take documented defaults; the
// Enabled flag is set for the caller). During idle windows — calculated
// IOPS at or below m.IdleIOPS — the device recompresses cold
// lzf/uncompressed extents with m.ColdCodec, demotes hot gz/bwz extents
// to m.HotCodec, and compacts fragmented slot free lists. Maintenance
// runs in virtual time on the device's own engine, so results stay
// deterministic per seed, including under WithShards.
func WithMaintenance(m Maintenance) Option {
	return func(c *Config) {
		m.Enabled = true
		c.Maintenance = &m
	}
}

// WithDedup enables content-addressed deduplication with the given
// policy (zero-valued fields take documented defaults; the Enabled flag
// is set for the caller). Every flushed write run is fingerprinted with
// a keyed 128-bit hash after SD merging and before compression; a run
// matching an already-stored extent maps to it by reference — skipping
// estimation, compression, and slot allocation — and the extent is
// released only when its last reference goes away. Dedup runs inside
// each pipeline's event loop in virtual time, so results stay
// deterministic per seed, including under WithShards (each shard
// deduplicates its own LBA range with the same key).
func WithDedup(d Dedup) Option {
	return func(c *Config) {
		d.Enabled = true
		c.Dedup = &d
	}
}

// WithResplit enables serve mode's heat-balanced shard repartitioning
// with the given policy (zero-valued fields take documented defaults;
// the Enabled flag is set for the caller). When one shard's admitted-op
// share stays above Factor times the post-split fair share for Streak
// evaluation windows, its LBA range is split at a quiesced,
// heat-balanced boundary into two shards with independent event loops —
// extents beyond the boundary move to the new shard's device, and the
// router re-routes without ever dropping or reordering a submission.
// The trigger reacts to real-time traffic imbalance, so resplit-enabled
// runs are not byte-deterministic across machines; replay mode ignores
// the setting. Incompatible with WithVerify (expected read content is
// keyed by shard-local offsets, which a move rebases), WithDedup
// (shared references may span the boundary), and WithQoS (per-shard
// rate shares assume a fixed shard count).
func WithResplit(r ResplitConfig) Option {
	return func(c *Config) {
		r.Enabled = true
		c.Resplit = &r
	}
}

// WithPacedServe makes serve mode's virtual-time results deterministic
// for stamp-ordered submitters: each shard's engine runs only up to the
// highest arrival stamp it has admitted so far (a conservative
// watermark), so completions past the newest stamp wait for a later
// arrival — or StopServe's final drain — instead of letting the clock
// race ahead of arrivals still in flight. Without pacing, an engine
// that runs dry before the next submission lands clamps that arrival
// to wherever the clock happened to be, leaking real scheduling races
// (GOMAXPROCS, mailbox batching) into virtual latencies. The contract
// requires submitters to mail operations in globally non-decreasing
// stamp order through SubmitAt/SubmitAtTag and to await completions
// concurrently (internal/bench's serve driver does both); the
// synchronous Read/Write wrappers are refused — a caller blocked on
// its own completion can never send the later arrival that would
// release it. Incompatible with WithResplit, whose quiesce protocol
// must run the engine dry past the watermark.
func WithPacedServe() Option {
	return func(c *Config) { c.PacedServe = true }
}

// WithQoS enables multi-tenant quality of service with the given tenant
// table: requests tagged with a tenant (trace records, tagged serve
// calls, or a tenant=-annotated workload spec) are shaped by that
// tenant's time-of-day bandwidth schedule, admitted by traffic class
// under saturation, and — with q.Isolate — judged against the tenant's
// own calculated-IOPS window instead of the device-global signal.
// Untagged requests are unaffected, so attaching a config leaves an
// untagged run bit-identical.
func WithQoS(q QoSConfig) Option {
	return func(c *Config) { c.QoS = &q }
}

// WithFaults attaches a deterministic fault plan: every device
// operation consults a seeded per-device injector, and the pipeline
// recovers — bounded virtual-time retry for transient errors, RAIS5
// parity reconstruction for failed member reads, re-allocation to a
// fresh slot for hard write failures, and journal-based crash recovery
// for a planned power cut. Results are deterministic for a fixed plan
// seed; with p == nil the replay is bit-identical to a plan-free run.
func WithFaults(p *FaultPlan) Option { return func(c *Config) { c.Faults = p } }

// WithSnapshotEvery checkpoints the mapping at the given virtual-time
// interval (snapshot + journal reset), bounding how much journal a
// crash recovery must replay.
func WithSnapshotEvery(d time.Duration) Option { return func(c *Config) { c.SnapshotEvery = d } }

// collector builds the obs collector a config calls for, nil when
// observability is off.
func (c *Config) collector() *obs.Collector {
	if c.Tracer == nil && c.TimeSeriesEvery <= 0 {
		return nil
	}
	return obs.New(obs.Config{Tracer: c.Tracer, SeriesInterval: c.TimeSeriesEvery})
}
