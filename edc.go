// Package edc is an open reimplementation of Elastic Data Compression
// (EDC) for flash-based storage systems (Mao, Jiang, Wu, Yang, Xi —
// IPDPS 2017), together with everything needed to reproduce the paper's
// evaluation: four from-scratch block codecs (LZF-, LZ4-, Gzip- and
// Bzip2-class), an event-driven SSD/FTL simulator with garbage
// collection, RAIS0/RAIS5 arrays, SPC and MSR trace parsers, synthetic
// bursty workload generators, and an SDGen-style content generator with
// controlled compressibility.
//
// EDC adapts the compression algorithm per write to the measured I/O
// intensity (4 KB-normalized "calculated IOPS") and to the data's
// estimated compressibility: heavier codecs during idle periods, light
// or no compression during bursts, and write-through for incompressible
// blocks. This package exposes the system behind a small facade:
//
//	tr, _ := edc.Workload("fin1", 256<<20).GenerateN(20000, 1)
//	res, _ := edc.Replay(tr, 256<<20, edc.WithScheme(edc.SchemeEDC))
//	fmt.Println(res.MeanResponse(), res.TrafficRatio())
//
// All simulation happens in virtual time: multi-hour traces replay in
// seconds and results are bit-for-bit reproducible for a given seed.
package edc

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
	"edc/internal/datagen"
	"edc/internal/obs"
	"edc/internal/rais"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
	"edc/internal/workload"
)

// Re-exported building blocks. The aliases make internal types usable by
// importers of this package.
type (
	// Trace is an ordered block-level I/O trace.
	Trace = trace.Trace
	// Request is one trace record.
	Request = trace.Request
	// Results carries everything a replay measured.
	Results = core.RunStats
	// Policy selects compression per write run.
	Policy = core.Policy
	// DataProfile describes synthetic payload compressibility.
	DataProfile = datagen.Profile
	// WorkloadProfile describes a synthetic arrival/size/mix model.
	WorkloadProfile = workload.Profile
	// SSDConfig parameterizes the simulated device.
	SSDConfig = ssd.Config
	// CostModel maps codecs to CPU throughput in the simulator.
	CostModel = core.CostModel
	// Report is the machine-readable (JSON) form of Results.
	Report = core.Report
	// Tracer consumes one TraceEvent per pipeline decision (WithTracer).
	Tracer = obs.Tracer
	// TracerFunc adapts a function to the Tracer interface.
	TracerFunc = obs.TracerFunc
	// TraceEvent is one pipeline decision record (see OBSERVABILITY.md
	// for the JSONL schema).
	TraceEvent = obs.Event
	// TraceEventType names a pipeline decision point.
	TraceEventType = obs.EventType
	// JSONLTracer writes one JSON object per decision, one per line.
	JSONLTracer = obs.JSONLTracer
	// ObsReport is the observability snapshot embedded in Results.Obs:
	// decision counters (with a Prometheus-style text exposition) plus
	// the optional WithTimeSeries samples.
	ObsReport = obs.Report
)

// The traced decision points, re-exported for Tracer implementations
// filtering on TraceEvent.Type.
const (
	// EvAdmit: the frontend admitted one host request.
	EvAdmit = obs.EvAdmit
	// EvDefer: the closed-loop bound parked one request.
	EvDefer = obs.EvDefer
	// EvSDMerge: a contiguous write joined the pending run.
	EvSDMerge = obs.EvSDMerge
	// EvSDFlush: the pending run was flushed (Reason says why).
	EvSDFlush = obs.EvSDFlush
	// EvEstimate: the sampling estimator ruled on a run.
	EvEstimate = obs.EvEstimate
	// EvPolicy: the policy chose a codec at the current calculated IOPS.
	EvPolicy = obs.EvPolicy
	// EvSlot: codec output was placed into a quantized slot.
	EvSlot = obs.EvSlot
	// EvSlotFree: a dead extent's slot returned to the allocator.
	EvSlotFree = obs.EvSlotFree
	// EvCacheHit: the host DRAM cache served a read.
	EvCacheHit = obs.EvCacheHit
	// EvCacheMiss: the host DRAM cache missed a read.
	EvCacheMiss = obs.EvCacheMiss
	// EvDecompress: a read had to decompress a compressed extent.
	EvDecompress = obs.EvDecompress
)

// NewJSONLTracer returns a Tracer writing one JSON event per line to w
// (buffered; call Flush when the replay completes).
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// Scheme names the paper's five evaluated schemes.
type Scheme string

// The evaluated schemes (paper Sec. IV-A).
const (
	SchemeNative Scheme = "Native"
	SchemeLzf    Scheme = "Lzf"
	SchemeLz4    Scheme = "Lz4"
	SchemeGzip   Scheme = "Gzip"
	SchemeBzip2  Scheme = "Bzip2"
	SchemeEDC    Scheme = "EDC"
	// SchemeEDCPlus is EDC with the content-aware upgrade (paper future
	// work #1): highly compressible runs get Bzip2-class compression in
	// idle periods.
	SchemeEDCPlus Scheme = "EDC+"
)

// Schemes returns the five schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeNative, SchemeLzf, SchemeGzip, SchemeBzip2, SchemeEDC}
}

// BackendKind selects the storage organization under EDC.
type BackendKind int

// Supported backends.
const (
	SingleSSD BackendKind = iota // one device (Figs. 8-10)
	RAIS0                        // striped array
	RAIS5                        // rotating-parity array (Fig. 11)
)

type options struct {
	scheme       Scheme
	gzCeiling    float64
	lzfCeiling   float64
	backend      BackendKind
	devices      int
	ssdCfg       ssd.Config
	data         DataProfile
	dataSeed     int64
	cost         CostModel
	verify       bool
	disableSD    bool
	exactSlots   bool
	cpuWorkers   int
	replayWork   int
	shards       int
	cacheBytes   int64
	offload      bool
	noEstimate   bool
	maxRun       int64
	flushTimeout time.Duration
	stripePages  int
	tracer       obs.Tracer
	seriesEvery  time.Duration
}

// Option customizes a System.
type Option func(*options)

// WithScheme selects the compression scheme (default SchemeEDC).
func WithScheme(s Scheme) Option { return func(o *options) { o.scheme = s } }

// WithElasticThresholds overrides EDC's calculated-IOPS ceilings: Gzip
// below gzMax, Lzf between gzMax and lzfMax, none above (Fig. 12 sweeps
// gzMax).
func WithElasticThresholds(gzMax, lzfMax float64) Option {
	return func(o *options) { o.gzCeiling, o.lzfCeiling = gzMax, lzfMax }
}

// WithBackend selects the storage organization and device count.
func WithBackend(kind BackendKind, devices int) Option {
	return func(o *options) { o.backend, o.devices = kind, devices }
}

// WithSSDConfig overrides the simulated device parameters.
func WithSSDConfig(cfg SSDConfig) Option { return func(o *options) { o.ssdCfg = cfg } }

// WithDataProfile selects the synthetic payload model and its seed.
func WithDataProfile(p DataProfile, seed int64) Option {
	return func(o *options) { o.data, o.dataSeed = p, seed }
}

// WithCostModel overrides the CPU cost model.
func WithCostModel(cm CostModel) Option { return func(o *options) { o.cost = cm } }

// WithVerify stores payloads and checks every read round-trips
// (memory-hungry; tests and demos).
func WithVerify() Option { return func(o *options) { o.verify = true } }

// WithoutSD disables write merging (ablation).
func WithoutSD() Option { return func(o *options) { o.disableSD = true } }

// WithExactSlots disables the 25/50/75/100 % slot quantization
// (ablation).
func WithExactSlots() Option { return func(o *options) { o.exactSlots = true } }

// WithoutEstimator disables EDC's compressibility sampling (ablation:
// compress everything the intensity ladder selects).
func WithoutEstimator() Option { return func(o *options) { o.noEstimate = true } }

// WithMaxRun caps SD merging in bytes.
func WithMaxRun(bytes int64) Option { return func(o *options) { o.maxRun = bytes } }

// WithCPUWorkers models a multicore host: n parallel compression
// workers (default 1, the paper's single-threaded prototype).
func WithCPUWorkers(n int) Option { return func(o *options) { o.cpuWorkers = n } }

// WithReplayWorkers sets how many OS goroutines execute real codec work
// concurrently with the virtual-time event loop (the replay pipeline).
// This changes only wall-clock replay speed: compressed output is a pure
// function of (content, codec), so results are bit-identical for any
// setting. Default runtime.GOMAXPROCS(0); n <= 1 runs sequentially
// inline.
func WithReplayWorkers(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.replayWork = n
	}
}

// WithShards partitions the volume into n contiguous LBA ranges, each
// served by an independent pipeline instance — its own virtual-time
// engine, backend device (or array), allocator, and mapping — replayed
// concurrently on OS goroutines. All shards read the same trace-derived
// global intensity signal, so codec selection matches the paper's
// whole-device feedback loop rather than fragmenting per shard. Results
// are deterministic for a fixed n; n <= 1 keeps the stock single
// pipeline. Sharding models an array of n EDC devices front-ending
// disjoint ranges: per-shard closed-loop bounds and shard-local SD merge
// make n > 1 a different (deterministic) system, not a faster identical
// one.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithCache enables a host DRAM read cache of the given size (the upper
// DRAM buffer in the paper's Fig. 4 architecture).
func WithCache(bytes int64) Option { return func(o *options) { o.cacheBytes = bytes } }

// WithOffload moves compression into the device controller, as
// FTL-integrated designs do (zFTL; hardware-assisted compression): the
// host CPU is free, but every compressed operation occupies the device's
// codec engine.
func WithOffload() Option { return func(o *options) { o.offload = true } }

// WithFlushTimeout bounds SD buffering delay (negative disables).
func WithFlushTimeout(d time.Duration) Option { return func(o *options) { o.flushTimeout = d } }

// WithStripeUnit sets the RAIS stripe unit in pages (default 16).
func WithStripeUnit(pages int) Option { return func(o *options) { o.stripePages = pages } }

// WithTracer streams one TraceEvent per pipeline decision to t
// (admission, SD merge/flush, estimator verdict, codec choice, slot
// placement, cache lookup, decompression). Tracers are strict
// observers: results are identical with and without one attached.
// Under WithShards the per-shard streams merge deterministically by
// (virtual time, shard, sequence) after the replay, so t sees a totally
// ordered stream but only once the run completes.
func WithTracer(t Tracer) Option { return func(o *options) { o.tracer = t } }

// WithTimeSeries samples calculated IOPS, codec mix, and slot occupancy
// into fixed-interval bins of the given width (Results.Obs.Series).
// Sampling is passive — values are recorded at existing decision points,
// never from added timer events — so it cannot perturb the replay.
// d <= 0 selects one second.
func WithTimeSeries(d time.Duration) Option {
	return func(o *options) {
		if d <= 0 {
			d = time.Second
		}
		o.seriesEvery = d
	}
}

// System is one ready-to-replay EDC stack: virtual-time engine, backend
// devices, and the EDC block layer — or, with WithShards(n>1), a router
// over n such stacks. A System replays exactly one trace.
type System struct {
	eng     *sim.Engine
	dev     *core.Device
	sharded *core.ShardedDevice
}

// DataProfiles maps the named payload models usable with
// WithDataProfile: "enterprise" (default), "linux-src", "firefox-bin",
// "media".
func DataProfiles() map[string]DataProfile {
	return map[string]DataProfile{
		"enterprise":  datagen.Enterprise(),
		"linux-src":   datagen.LinuxSrc(),
		"firefox-bin": datagen.FirefoxBin(),
		"media":       datagen.Media(),
	}
}

// WorkloadNames returns the recognized workload names in presentation
// order (the paper's Table II traces).
func WorkloadNames() []string {
	return []string{"fin1", "fin2", "usr0", "prxy0"}
}

// WorkloadByName returns a named synthetic workload profile over a
// volume: "fin1", "fin2", "usr0", "prxy0" (case-insensitive; "usr_0"
// and "prxy_0" are accepted aliases). Unknown names return an error
// listing the valid choices.
func WorkloadByName(name string, volumeBytes int64) (WorkloadProfile, error) {
	switch strings.ToLower(name) {
	case "fin1":
		return workload.Fin1(volumeBytes), nil
	case "fin2":
		return workload.Fin2(volumeBytes), nil
	case "usr0", "usr_0":
		return workload.Usr0(volumeBytes), nil
	case "prxy0", "prxy_0":
		return workload.Prxy0(volumeBytes), nil
	default:
		return WorkloadProfile{}, fmt.Errorf("edc: unknown workload %q (valid: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
}

// Workload is the panicking form of WorkloadByName, for tests and
// examples with hard-coded names.
func Workload(name string, volumeBytes int64) WorkloadProfile {
	p, err := WorkloadByName(name, volumeBytes)
	if err != nil {
		panic(err)
	}
	return p
}

// StandardWorkloads returns the paper's four evaluation profiles.
func StandardWorkloads(volumeBytes int64) []WorkloadProfile {
	return workload.Standard(volumeBytes)
}

// policyFor builds the core policy for a scheme.
func policyFor(o options) (core.Policy, error) {
	reg := compress.Default()
	switch o.scheme {
	case SchemeNative:
		return core.Native(), nil
	case SchemeLzf:
		c, err := reg.ByName("lzf")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Lzf", c), nil
	case SchemeLz4:
		c, err := reg.ByName("lz4")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Lz4", c), nil
	case SchemeGzip:
		c, err := reg.ByName("gz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Gzip", c), nil
	case SchemeBzip2:
		c, err := reg.ByName("bwz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Bzip2", c), nil
	case SchemeEDC, SchemeEDCPlus:
		gz, err := reg.ByName("gz")
		if err != nil {
			return nil, err
		}
		lzf, err := reg.ByName("lzf")
		if err != nil {
			return nil, err
		}
		elastic, err := core.NewElastic("EDC", []core.Level{
			{MaxIOPS: o.gzCeiling, Codec: gz},
			{MaxIOPS: o.lzfCeiling, Codec: lzf},
		})
		if err != nil || o.scheme == SchemeEDC {
			return elastic, err
		}
		bwz, err := reg.ByName("bwz")
		if err != nil {
			return nil, err
		}
		return core.NewContentAware(elastic, bwz, 2.5)
	default:
		return nil, fmt.Errorf("edc: unknown scheme %q", o.scheme)
	}
}

// buildBackend constructs one backend instance on eng per the configured
// organization. It is a factory (not inlined in NewSystem) so sharded
// replay can stamp out one private backend per shard.
func buildBackend(o options, eng *sim.Engine) (core.Backend, error) {
	switch o.backend {
	case SingleSSD:
		d, err := ssd.New(o.ssdCfg)
		if err != nil {
			return nil, err
		}
		return core.NewSingleSSD(eng, d), nil
	case RAIS0, RAIS5:
		n := o.devices
		if n < 2 {
			n = 5 // the paper's array size
		}
		devs := make([]*ssd.SSD, n)
		for i := range devs {
			d, err := ssd.New(o.ssdCfg)
			if err != nil {
				return nil, err
			}
			devs[i] = d
		}
		level := rais.RAIS0
		if o.backend == RAIS5 {
			level = rais.RAIS5
		}
		arr, err := rais.New(level, devs, o.stripePages)
		if err != nil {
			return nil, err
		}
		return core.NewRAISBackend(eng, arr), nil
	default:
		return nil, fmt.Errorf("edc: unknown backend kind %d", o.backend)
	}
}

// deviceOptions builds core.Options from the facade options. Policy and
// Data carry mutable state, so sharded replay calls this once per shard
// for private instances.
func deviceOptions(o options) (core.Options, error) {
	pol, err := policyFor(o)
	if err != nil {
		return core.Options{}, err
	}
	if o.noEstimate {
		pol = core.WithoutEstimator(pol)
	}
	return core.Options{
		Policy:        pol,
		Cost:          o.cost,
		Data:          datagen.New(o.data, o.dataSeed),
		VerifyReads:   o.verify,
		DisableSD:     o.disableSD,
		ExactSlots:    o.exactSlots,
		CPUWorkers:    o.cpuWorkers,
		ReplayWorkers: o.replayWork,
		CacheBytes:    o.cacheBytes,
		Offload:       o.offload,
		MaxRun:        o.maxRun,
		FlushTimeout:  o.flushTimeout,
	}, nil
}

// NewSystem builds a System exposing volumeBytes of logical space.
func NewSystem(volumeBytes int64, opts ...Option) (*System, error) {
	o := options{
		scheme:      SchemeEDC,
		gzCeiling:   core.DefaultGzCeiling,
		lzfCeiling:  core.DefaultLzfCeiling,
		backend:     SingleSSD,
		devices:     1,
		ssdCfg:      ssd.DefaultConfig(),
		data:        datagen.Enterprise(),
		dataSeed:    1,
		stripePages: 16,
	}
	for _, opt := range opts {
		opt(&o)
	}
	var col *obs.Collector
	if o.tracer != nil || o.seriesEvery > 0 {
		col = obs.New(obs.Config{Tracer: o.tracer, SeriesInterval: o.seriesEvery})
	}
	if o.shards > 1 {
		// Split the replay-pipeline budget across shards: each shard's
		// event loop already runs on its own goroutine, so per-shard
		// codec workers beyond GOMAXPROCS/shards only add contention.
		perShard := o
		if perShard.replayWork == 0 {
			w := runtime.GOMAXPROCS(0) / o.shards
			if w <= 1 {
				w = -1 // sequential inline execution
			}
			perShard.replayWork = w
		}
		sharded, err := core.NewSharded(core.ShardSetup{
			Shards:      o.shards,
			VolumeBytes: volumeBytes,
			Backend: func(eng *sim.Engine) (core.Backend, error) {
				return buildBackend(perShard, eng)
			},
			Options: func(int) (core.Options, error) {
				return deviceOptions(perShard)
			},
			Obs: col,
		})
		if err != nil {
			return nil, err
		}
		return &System{sharded: sharded}, nil
	}
	eng := sim.NewEngine()
	be, err := buildBackend(o, eng)
	if err != nil {
		return nil, err
	}
	dopts, err := deviceOptions(o)
	if err != nil {
		return nil, err
	}
	dopts.Obs = col
	dev, err := core.NewDevice(eng, be, volumeBytes, dopts)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng, dev: dev}, nil
}

// Play replays t and returns the measured results. A System is
// single-use.
func (s *System) Play(t *Trace) (*Results, error) {
	if s.sharded != nil {
		return s.sharded.Play(t)
	}
	return s.dev.Play(t)
}

// Replay is the one-shot form: build a System, play the trace.
func Replay(t *Trace, volumeBytes int64, opts ...Option) (*Results, error) {
	s, err := NewSystem(volumeBytes, opts...)
	if err != nil {
		return nil, err
	}
	return s.Play(t)
}

// DefaultSSDConfig returns the X25-E-class device model used throughout
// the evaluation.
func DefaultSSDConfig() SSDConfig { return ssd.DefaultConfig() }

// DefaultCostModel returns the calibrated CPU cost model.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }
