// Package edc is an open reimplementation of Elastic Data Compression
// (EDC) for flash-based storage systems (Mao, Jiang, Wu, Yang, Xi —
// IPDPS 2017), together with everything needed to reproduce the paper's
// evaluation: four from-scratch block codecs (LZF-, LZ4-, Gzip- and
// Bzip2-class), an event-driven SSD/FTL simulator with garbage
// collection, RAIS0/RAIS5 arrays, SPC and MSR trace parsers, synthetic
// bursty workload generators, and an SDGen-style content generator with
// controlled compressibility.
//
// EDC adapts the compression algorithm per write to the measured I/O
// intensity (4 KB-normalized "calculated IOPS") and to the data's
// estimated compressibility: heavier codecs during idle periods, light
// or no compression during bursts, and write-through for incompressible
// blocks. This package exposes the system behind a small facade:
//
//	wl, _ := edc.WorkloadByName("fin1", 256<<20)
//	tr, _ := wl.GenerateN(20000, 1)
//	res, _ := edc.Replay(tr, 256<<20, edc.WithScheme(edc.SchemeEDC))
//	fmt.Println(res.MeanResponse(), res.TrafficRatio())
//
// Configuration is available in two equivalent forms: functional
// options (the With* family) or the plain Config struct consumed by
// NewSystemFromConfig — every option writes exactly one Config field.
// Failures surface as typed errors (ErrUnknownScheme,
// ErrUnknownWorkload, ErrReplayed, FaultError) for errors.Is/As.
//
// All simulation happens in virtual time: multi-hour traces replay in
// seconds and results are bit-for-bit reproducible for a given seed —
// including runs with an injected fault plan (WithFaults), whose
// decisions derive deterministically from the plan seed.
package edc

import (
	"fmt"
	"io"
	"strings"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/core"
	"edc/internal/datagen"
	"edc/internal/obs"
	"edc/internal/rais"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
	"edc/internal/workload"
)

// Re-exported building blocks. The aliases make internal types usable by
// importers of this package.
type (
	// Trace is an ordered block-level I/O trace.
	Trace = trace.Trace
	// Request is one trace record.
	Request = trace.Request
	// Results carries everything a replay measured.
	Results = core.RunStats
	// Policy selects compression per write run.
	Policy = core.Policy
	// DataProfile describes synthetic payload compressibility.
	DataProfile = datagen.Profile
	// WorkloadProfile describes a synthetic arrival/size/mix model.
	WorkloadProfile = workload.Profile
	// SSDConfig parameterizes the simulated device.
	SSDConfig = ssd.Config
	// CostModel maps codecs to CPU throughput in the simulator.
	CostModel = core.CostModel
	// Report is the machine-readable (JSON) form of Results.
	Report = core.Report
	// Tracer consumes one TraceEvent per pipeline decision (WithTracer).
	Tracer = obs.Tracer
	// TracerFunc adapts a function to the Tracer interface.
	TracerFunc = obs.TracerFunc
	// TraceEvent is one pipeline decision record (see OBSERVABILITY.md
	// for the JSONL schema).
	TraceEvent = obs.Event
	// TraceEventType names a pipeline decision point.
	TraceEventType = obs.EventType
	// JSONLTracer writes one JSON object per decision, one per line.
	JSONLTracer = obs.JSONLTracer
	// ObsReport is the observability snapshot embedded in Results.Obs:
	// decision counters (with a Prometheus-style text exposition) plus
	// the optional WithTimeSeries samples.
	ObsReport = obs.Report
)

// The traced decision points, re-exported for Tracer implementations
// filtering on TraceEvent.Type.
const (
	// EvAdmit: the frontend admitted one host request.
	EvAdmit = obs.EvAdmit
	// EvDefer: the closed-loop bound parked one request.
	EvDefer = obs.EvDefer
	// EvSDMerge: a contiguous write joined the pending run.
	EvSDMerge = obs.EvSDMerge
	// EvSDFlush: the pending run was flushed (Reason says why).
	EvSDFlush = obs.EvSDFlush
	// EvEstimate: the sampling estimator ruled on a run.
	EvEstimate = obs.EvEstimate
	// EvPolicy: the policy chose a codec at the current calculated IOPS.
	EvPolicy = obs.EvPolicy
	// EvSlot: codec output was placed into a quantized slot.
	EvSlot = obs.EvSlot
	// EvSlotFree: a dead extent's slot returned to the allocator.
	EvSlotFree = obs.EvSlotFree
	// EvCacheHit: the host DRAM cache served a read.
	EvCacheHit = obs.EvCacheHit
	// EvCacheMiss: the host DRAM cache missed a read.
	EvCacheMiss = obs.EvCacheMiss
	// EvDecompress: a read had to decompress a compressed extent.
	EvDecompress = obs.EvDecompress
	// EvFault: an injected device fault hit an operation.
	EvFault = obs.EvFault
	// EvRetry: a path re-issued an operation after a transient fault.
	EvRetry = obs.EvRetry
	// EvDegradedRead: a RAIS5 read reconstructed from parity.
	EvDegradedRead = obs.EvDegradedRead
	// EvRecover: a recovery decision (re-allocation, abandoned read, or
	// crash recovery).
	EvRecover = obs.EvRecover
	// EvRecompress: background maintenance relocated one extent to a new
	// codec (Reason: "cold" or "hot").
	EvRecompress = obs.EvRecompress
	// EvCompact: background maintenance coalesced fragmented free slots.
	EvCompact = obs.EvCompact
	// EvDedupHit: a flushed run matched a stored extent's fingerprint
	// and mapped to it by reference.
	EvDedupHit = obs.EvDedupHit
	// EvDedupMiss: a flushed run's fingerprint was unseen; the run took
	// the normal compression pipeline.
	EvDedupMiss = obs.EvDedupMiss
	// EvUnref: a dedup-shared extent lost its last reference and its
	// slot was released.
	EvUnref = obs.EvUnref
	// EvShape: a tenant's bandwidth schedule delayed one request.
	EvShape = obs.EvShape
	// EvAdmitReject: admission control refused one request (tenant
	// queue-depth bound).
	EvAdmitReject = obs.EvAdmitReject
	// EvResplit: serve mode split a hot shard's LBA range in two
	// (Off: split offset within the source shard, Records: extents
	// migrated, Slot: slot bytes migrated, LeftBlocks/RightBlocks: the
	// two halves' occupancy after the split).
	EvResplit = obs.EvResplit
)

// NewJSONLTracer returns a Tracer writing one JSON event per line to w
// (buffered; call Flush when the replay completes).
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// Scheme names the paper's five evaluated schemes.
type Scheme string

// The evaluated schemes (paper Sec. IV-A).
const (
	SchemeNative Scheme = "Native"
	SchemeLzf    Scheme = "Lzf"
	SchemeLz4    Scheme = "Lz4"
	SchemeGzip   Scheme = "Gzip"
	SchemeBzip2  Scheme = "Bzip2"
	SchemeEDC    Scheme = "EDC"
	// SchemeEDCPlus is EDC with the content-aware upgrade (paper future
	// work #1): highly compressible runs get Bzip2-class compression in
	// idle periods.
	SchemeEDCPlus Scheme = "EDC+"
)

// Schemes returns the five schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeNative, SchemeLzf, SchemeGzip, SchemeBzip2, SchemeEDC}
}

// BackendKind selects the storage organization under EDC.
type BackendKind int

// Supported backends.
const (
	SingleSSD BackendKind = iota // one device (Figs. 8-10)
	RAIS0                        // striped array
	RAIS5                        // rotating-parity array (Fig. 11)
)

// System is one ready-to-replay EDC stack: virtual-time engine, backend
// devices, and the EDC block layer — or, with WithShards(n>1), a router
// over n such stacks. A System replays exactly one trace; a second Play
// returns ErrReplayed.
type System struct {
	eng     *sim.Engine
	dev     *core.Device
	sharded *core.ShardedDevice
	srv     *core.Server

	// Power-cut orchestration state: rebuilding the post-crash device
	// needs the full configuration.
	cfg      Config
	col      *obs.Collector
	volBytes int64
	played   bool
}

// DataProfiles maps the named payload models usable with
// WithDataProfile: "enterprise" (default), "linux-src", "firefox-bin",
// "media".
func DataProfiles() map[string]DataProfile {
	return map[string]DataProfile{
		"enterprise":  datagen.Enterprise(),
		"linux-src":   datagen.LinuxSrc(),
		"firefox-bin": datagen.FirefoxBin(),
		"media":       datagen.Media(),
	}
}

// WorkloadNames returns the recognized workload names in presentation
// order (the paper's Table II traces).
func WorkloadNames() []string {
	return []string{"fin1", "fin2", "usr0", "prxy0"}
}

// WorkloadByName returns a named synthetic workload profile over a
// volume: "fin1", "fin2", "usr0", "prxy0" (case-insensitive; "usr_0"
// and "prxy_0" are accepted aliases). Unknown names return an error
// wrapping ErrUnknownWorkload and listing the valid choices.
func WorkloadByName(name string, volumeBytes int64) (WorkloadProfile, error) {
	switch strings.ToLower(name) {
	case "fin1":
		return workload.Fin1(volumeBytes), nil
	case "fin2":
		return workload.Fin2(volumeBytes), nil
	case "usr0", "usr_0":
		return workload.Usr0(volumeBytes), nil
	case "prxy0", "prxy_0":
		return workload.Prxy0(volumeBytes), nil
	default:
		return WorkloadProfile{}, fmt.Errorf("%w %q (valid: %s)",
			ErrUnknownWorkload, name, strings.Join(WorkloadNames(), ", "))
	}
}

// StandardWorkloads returns the paper's four evaluation profiles.
func StandardWorkloads(volumeBytes int64) []WorkloadProfile {
	return workload.Standard(volumeBytes)
}

// policyFor builds the core policy for a scheme.
func policyFor(c Config) (core.Policy, error) {
	reg := compress.Default()
	switch c.Scheme {
	case SchemeNative:
		return core.Native(), nil
	case SchemeLzf:
		cod, err := reg.ByName("lzf")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Lzf", cod), nil
	case SchemeLz4:
		cod, err := reg.ByName("lz4")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Lz4", cod), nil
	case SchemeGzip:
		cod, err := reg.ByName("gz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Gzip", cod), nil
	case SchemeBzip2:
		cod, err := reg.ByName("bwz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Bzip2", cod), nil
	case SchemeEDC, SchemeEDCPlus:
		gz, err := reg.ByName("gz")
		if err != nil {
			return nil, err
		}
		lzf, err := reg.ByName("lzf")
		if err != nil {
			return nil, err
		}
		elastic, err := core.NewElastic("EDC", []core.Level{
			{MaxIOPS: c.GzCeiling, Codec: gz},
			{MaxIOPS: c.LzfCeiling, Codec: lzf},
		})
		if err != nil || c.Scheme == SchemeEDC {
			return elastic, err
		}
		bwz, err := reg.ByName("bwz")
		if err != nil {
			return nil, err
		}
		return core.NewContentAware(elastic, bwz, 2.5)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownScheme, c.Scheme)
	}
}

// buildBackend constructs one backend instance on eng per the configured
// organization. It is a factory (not inlined in NewSystem) so sharded
// replay can stamp out one private backend per shard.
func buildBackend(c Config, eng *sim.Engine) (core.Backend, error) {
	switch c.Backend {
	case SingleSSD:
		d, err := ssd.New(c.SSD)
		if err != nil {
			return nil, err
		}
		return core.NewSingleSSD(eng, d), nil
	case RAIS0, RAIS5:
		n := c.Devices
		if n < 2 {
			n = 5 // the paper's array size
		}
		devs := make([]*ssd.SSD, n)
		for i := range devs {
			d, err := ssd.New(c.SSD)
			if err != nil {
				return nil, err
			}
			devs[i] = d
		}
		level := rais.RAIS0
		if c.Backend == RAIS5 {
			level = rais.RAIS5
		}
		arr, err := rais.New(level, devs, c.StripeUnitPages)
		if err != nil {
			return nil, err
		}
		return core.NewRAISBackend(eng, arr), nil
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownBackend, c.Backend)
	}
}

// deviceOptions builds core.Options from the facade config. Policy and
// Data carry mutable state, so sharded replay calls this once per shard
// for private instances.
func deviceOptions(c Config) (core.Options, error) {
	pol, err := policyFor(c)
	if err != nil {
		return core.Options{}, err
	}
	if c.DisableEstimator {
		pol = core.WithoutEstimator(pol)
	}
	share := c.Shards
	if share < 1 {
		share = 1
	}
	return core.Options{
		Policy:        pol,
		Cost:          c.Cost,
		Data:          datagen.New(c.Data, c.DataSeed),
		VerifyReads:   c.Verify,
		DisableSD:     c.DisableSD,
		ExactSlots:    c.ExactSlots,
		CPUWorkers:    c.CPUWorkers,
		ReplayWorkers: c.ReplayWorkers,
		CacheBytes:    c.CacheBytes,
		Offload:       c.Offload,
		MaxRun:        c.MaxRun,
		FlushTimeout:  c.FlushTimeout,
		Faults:        c.Faults,
		SnapshotEvery: c.SnapshotEvery,
		Maint:         c.Maintenance,
		Dedup:         c.Dedup,
		QoS:           c.QoS,
		// Each of n shards enforces 1/n of every tenant's schedule, so
		// the aggregate device-wide rate matches the configured one.
		QoSShare: share,
	}, nil
}

// NewSystem builds a System exposing volumeBytes of logical space,
// configured by options over DefaultConfig.
func NewSystem(volumeBytes int64, opts ...Option) (*System, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewSystemFromConfig(volumeBytes, cfg)
}

// NewSystemFromConfig builds a System from an explicit Config (the
// struct form of the With* options). Zero-valued fields take their
// documented defaults; the config is validated first.
func NewSystemFromConfig(volumeBytes int64, cfg Config) (*System, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	col := cfg.collector()
	if cfg.Shards > 1 {
		// Codec futures dispatch to the process-wide work-stealing pool
		// (one bounded queue per shard), so no per-shard worker budget is
		// carved out of GOMAXPROCS: an idle core helps whichever shard is
		// hot.
		perShard := cfg
		sharded, err := core.NewSharded(core.ShardSetup{
			Shards:      cfg.Shards,
			VolumeBytes: volumeBytes,
			Backend: func(eng *sim.Engine) (core.Backend, error) {
				return buildBackend(perShard, eng)
			},
			Options: func(int) (core.Options, error) {
				return deviceOptions(perShard)
			},
			Obs: col,
		})
		if err != nil {
			return nil, err
		}
		return &System{sharded: sharded, cfg: cfg, col: col, volBytes: volumeBytes}, nil
	}
	eng := sim.NewEngine()
	be, err := buildBackend(cfg, eng)
	if err != nil {
		return nil, err
	}
	dopts, err := deviceOptions(cfg)
	if err != nil {
		return nil, err
	}
	dopts.Obs = col
	dev, err := core.NewDevice(eng, be, volumeBytes, dopts)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng, dev: dev, cfg: cfg, col: col, volBytes: volumeBytes}, nil
}

// Play replays t and returns the measured results. A System is
// single-use: a second call returns ErrReplayed.
func (s *System) Play(t *Trace) (*Results, error) {
	if s.played {
		return nil, ErrReplayed
	}
	s.played = true
	if s.sharded != nil {
		return s.sharded.Play(t)
	}
	if s.cfg.Faults != nil && s.cfg.Faults.PowerCutAt > 0 {
		return s.playWithPowerCut(t)
	}
	return s.dev.Play(t)
}

// playWithPowerCut runs the planned crash: replay until the cut, lose
// whatever was in flight, rebuild a recovered device from the persisted
// snapshot + journal, and resume with the remainder of the trace. The
// returned Results merge both phases (the lost requests appear in
// CrashLost, not in the response histograms). The recovered device's
// fault injectors restart their decision streams from the plan seed, so
// the whole crash-and-recover run is deterministic.
func (s *System) playWithPowerCut(t *Trace) (*Results, error) {
	cut := s.cfg.Faults.PowerCutAt
	before, cs, err := s.dev.PlayUntil(t, cut)
	if err != nil {
		return before, err
	}
	eng := sim.NewEngine()
	be, err := buildBackend(s.cfg, eng)
	if err != nil {
		return nil, err
	}
	dopts, err := deviceOptions(s.cfg)
	if err != nil {
		return nil, err
	}
	dopts.Obs = s.col // one collector spans both phases
	dev, err := core.RecoverDevice(eng, be, s.volBytes, dopts, cs)
	if err != nil {
		return nil, err
	}
	// The restarted host re-issues only requests that arrive strictly
	// after the cut; arrivals at or before it were admitted by the
	// pre-cut engine (RunUntil fires events with time <= cut) and either
	// completed or were swallowed by the crash (CrashLost).
	rest := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if r.Arrival > cut {
			rest.Requests = append(rest.Requests, r)
		}
	}
	after, err := dev.Play(rest)
	if err != nil {
		return after, err
	}
	merged := core.MergeRunStats([]*core.RunStats{before, after})
	// The shared collector accumulated across both phases; the second
	// phase's snapshot is the complete one.
	merged.Obs = after.Obs
	return merged, nil
}

// Replay is the one-shot form: build a System, play the trace.
func Replay(t *Trace, volumeBytes int64, opts ...Option) (*Results, error) {
	s, err := NewSystem(volumeBytes, opts...)
	if err != nil {
		return nil, err
	}
	return s.Play(t)
}

// ReplayConfig is the one-shot struct-config form of Replay.
func ReplayConfig(t *Trace, volumeBytes int64, cfg Config) (*Results, error) {
	s, err := NewSystemFromConfig(volumeBytes, cfg)
	if err != nil {
		return nil, err
	}
	return s.Play(t)
}

// DefaultSSDConfig returns the X25-E-class device model used throughout
// the evaluation.
func DefaultSSDConfig() SSDConfig { return ssd.DefaultConfig() }

// DefaultCostModel returns the calibrated CPU cost model.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }
