package edc

import (
	"errors"

	"edc/internal/core"
	"edc/internal/fault"
	"edc/internal/qos"
)

// Typed facade errors. Every error the facade returns for a
// misconfigured or misused System wraps one of these sentinels, so
// callers branch with errors.Is instead of matching message strings.
var (
	// ErrUnknownScheme reports a Scheme the facade does not recognize.
	ErrUnknownScheme = errors.New("edc: unknown scheme")
	// ErrUnknownWorkload reports a workload name WorkloadByName does not
	// recognize.
	ErrUnknownWorkload = errors.New("edc: unknown workload")
	// ErrUnknownBackend reports a BackendKind outside
	// SingleSSD/RAIS0/RAIS5.
	ErrUnknownBackend = errors.New("edc: unknown backend kind")
	// ErrReplayed reports a second Play on a single-use System.
	ErrReplayed = core.ErrReplayed
	// ErrUnknownTenant reports a request tagged with a tenant absent
	// from a strict QoSConfig (replay fails the run; tagged serve calls
	// return it per operation).
	ErrUnknownTenant = qos.ErrUnknownTenant
	// ErrAdmissionRejected reports a tagged operation refused admission
	// because its tenant exceeded the configured queue depth.
	ErrAdmissionRejected = qos.ErrAdmissionRejected
)

// FaultError is one injected device failure, carried inside replay
// errors when a fault plan exhausts the pipeline's recovery budget.
// Extract it with errors.As; classify it with errors.Is against
// ErrFaultTransient / ErrFaultHard.
type FaultError = fault.Error

// Fault classification sentinels (errors.Is targets for a FaultError).
var (
	// ErrFaultTransient classifies a retryable injected fault.
	ErrFaultTransient = fault.ErrTransient
	// ErrFaultHard classifies a hard (media) injected fault.
	ErrFaultHard = fault.ErrHard
)
