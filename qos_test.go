package edc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// tagTrace returns a copy of tr with every request tagged as tenant's.
func tagTrace(tr *Trace, tenant string) *Trace {
	out := &Trace{Name: tr.Name, Requests: make([]Request, len(tr.Requests))}
	copy(out.Requests, tr.Requests)
	for i := range out.Requests {
		out.Requests[i].Tenant = tenant
	}
	return out
}

func TestReplayStrictUnknownTenant(t *testing.T) {
	tr := tagTrace(smallTrace(t, 200), "ghost")
	_, err := Replay(tr, testVolume, WithSSDConfig(smallSSD()),
		WithQoS(QoSConfig{
			Strict:  true,
			Tenants: map[string]QoSTenant{"web": {}},
		}))
	if !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestServeStrictUnknownTenant(t *testing.T) {
	sys, err := NewSystem(testVolume, WithSSDConfig(smallSSD()),
		WithQoS(QoSConfig{
			Strict:  true,
			Tenants: map[string]QoSTenant{"web": {}},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Serve(); err != nil {
		t.Fatal(err)
	}
	defer sys.StopServe()
	ctx := context.Background()
	if _, err := sys.WriteAtTag(ctx, 0, 0, 4096, "ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	// The known tenant (and untagged traffic) still flows.
	if _, err := sys.WriteAtTag(ctx, 0, 0, 4096, "web"); err != nil {
		t.Fatalf("known tenant: %v", err)
	}
	if _, err := sys.Write(ctx, 4096, 4096); err != nil {
		t.Fatalf("untagged: %v", err)
	}
}

func TestServeAdmissionRejected(t *testing.T) {
	// A 1 KB/s schedule parks every 4 KiB write for seconds, so the
	// tenant's two queue slots stay occupied no matter how the event
	// loop batches: the third submission must be refused.
	sys, err := NewSystem(testVolume, WithSSDConfig(smallSSD()),
		WithQoS(QoSConfig{
			Tenants: map[string]QoSTenant{
				"web": {Bandwidth: "1k", MaxDeferred: 2},
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Serve(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var aws []Await
	for i := 0; i < 3; i++ {
		aw, err := sys.SubmitAtTag(ctx, 0, int64(i)*4096, 4096, true, "web")
		if err != nil {
			t.Fatal(err)
		}
		aws = append(aws, aw)
	}
	if _, err := aws[2](ctx); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("third op: err = %v, want ErrAdmissionRejected", err)
	}
	// The parked operations only complete during the stop-drain.
	res, err := sys.StopServe()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := aws[i](ctx); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	ts := res.Tenants["web"]
	if ts == nil {
		t.Fatal("no tenant section in results")
	}
	if ts.Rejected != 1 || ts.Shaped == 0 {
		t.Fatalf("rejected = %d shaped = %d; want 1 rejection and shaped > 0", ts.Rejected, ts.Shaped)
	}
}

// TestTaggedSingleTenantMatchesUntagged pins the disabled-path
// contract: tagging every request with one tenant (and configuring no
// QoS) changes nothing about the run except adding the tenant section.
func TestTaggedSingleTenantMatchesUntagged(t *testing.T) {
	tr := smallTrace(t, 800)
	base, err := Replay(tr, testVolume, WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := Replay(tagTrace(tr, "web"), testVolume, WithSSDConfig(smallSSD()))
	if err != nil {
		t.Fatal(err)
	}
	rep := tagged.Report()
	ts := rep.Tenants["web"]
	if ts == nil {
		t.Fatal("tagged run has no tenant section")
	}
	if ts.Requests != int64(len(tr.Requests)) {
		t.Fatalf("tenant requests = %d, want %d", ts.Requests, len(tr.Requests))
	}
	rep.Tenants = nil
	want, err := json.Marshal(base.Report())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("tagged run differs from untagged beyond the tenant section:\nuntagged: %s\ntagged:   %s", want, got)
	}
	// The untagged report must not even serialize a tenants key.
	if bytes.Contains(want, []byte(`"tenants"`)) {
		t.Fatal("untagged report serializes a tenants section")
	}
}

// TestReportTenantsJSONRoundTrip pins the machine-readable contract:
// a tagged run's Report survives a JSON round trip bit-for-bit.
func TestReportTenantsJSONRoundTrip(t *testing.T) {
	res, err := Replay(tagTrace(smallTrace(t, 400), "web"), testVolume,
		WithSSDConfig(smallSSD()),
		WithQoS(QoSConfig{Tenants: map[string]QoSTenant{"web": {Class: ClassLatency}}}))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Tenants["web"] == nil {
		t.Fatal("no tenant section")
	}
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("report changed across JSON round trip:\n%s\n%s", first, second)
	}
}
