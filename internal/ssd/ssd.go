// Package ssd is an event-free analytical simulator of a flash-based SSD:
// page-level FTL with out-of-place updates, greedy garbage collection,
// erase-count (endurance) accounting, and a latency model in which the
// response time of an operation grows linearly with its size — the
// property the paper measures on a real Intel X25-E in Fig. 1 and on
// which EDC's "smaller writes are faster writes" argument rests.
//
// The simulator models timing and endurance only; payload bytes live in
// the block layer above. All operations return the time they would take;
// the caller (a sim.Station per device) serializes them in virtual time.
package ssd

import (
	"errors"
	"fmt"
	"time"
)

// Config describes the simulated device geometry and timing.
type Config struct {
	PageSize      int     // bytes per flash page
	PagesPerBlock int     // pages per erase block
	Blocks        int     // total physical erase blocks
	OverProvision float64 // fraction of physical space hidden from the host

	ReadPageLatency time.Duration // per-page array read
	ProgramLatency  time.Duration // per-page program
	EraseLatency    time.Duration // per-block erase
	TransferBW      int64         // host interface bandwidth, bytes/second

	GCLowWater  float64 // free-block fraction that triggers foreground GC
	GCHighWater float64 // GC reclaims until this free fraction is reached
}

// DefaultConfig models an Intel X25-E-class SLC SATA device, scaled to a
// 2 GiB address space so simulations stay laptop-sized. The timing
// constants preserve the X25-E's externally visible characteristics
// (~75 µs read / ~85 µs buffered write per 4 KiB, ~250 MB/s interface);
// the deeper write penalty of flash shows up through garbage collection
// (page relocations and multi-millisecond erases), as in real devices.
func DefaultConfig() Config {
	return Config{
		PageSize:        4096,
		PagesPerBlock:   64,
		Blocks:          8192, // 2 GiB raw
		OverProvision:   0.07,
		ReadPageLatency: 60 * time.Microsecond,
		ProgramLatency:  90 * time.Microsecond,
		EraseLatency:    2000 * time.Microsecond,
		TransferBW:      250 << 20,
		GCLowWater:      0.05,
		GCHighWater:     0.10,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.PageSize <= 0:
		return errors.New("ssd: PageSize must be positive")
	case c.PagesPerBlock <= 0:
		return errors.New("ssd: PagesPerBlock must be positive")
	case c.Blocks < 4:
		return errors.New("ssd: need at least 4 blocks")
	case c.OverProvision < 0 || c.OverProvision >= 0.5:
		return errors.New("ssd: OverProvision out of range [0, 0.5)")
	case c.TransferBW <= 0:
		return errors.New("ssd: TransferBW must be positive")
	case c.GCLowWater <= 0 || c.GCHighWater <= c.GCLowWater || c.GCHighWater >= 1:
		return errors.New("ssd: watermarks must satisfy 0 < low < high < 1")
	}
	return nil
}

// Stats counts device activity since creation.
type Stats struct {
	HostPagesRead     int64
	HostPagesWritten  int64
	FlashPagesWritten int64 // host writes + GC relocations
	GCPagesMoved      int64
	Erases            int64
	GCRuns            int64
	GCTime            time.Duration
}

// WriteAmplification returns flash writes divided by host writes (1.0
// when no GC relocation has occurred; 0 when nothing was written).
func (s Stats) WriteAmplification() float64 {
	if s.HostPagesWritten == 0 {
		return 0
	}
	return float64(s.FlashPagesWritten) / float64(s.HostPagesWritten)
}

const (
	ppnInvalid = int32(-1)
)

type blockState struct {
	valid  int32 // valid pages in this block
	next   int32 // next free page index, == PagesPerBlock when full
	erases int32
}

// SSD is the simulated device. It is not safe for concurrent use; the
// simulation kernel is single-threaded by construction.
type SSD struct {
	cfg Config

	logicalPages int32
	totalPages   int32

	l2p []int32 // logical page -> physical page (ppnInvalid if unmapped)
	p2l []int32 // physical page -> logical page (ppnInvalid if free/stale)

	blocks     []blockState
	active     int32 // block currently receiving writes
	freeBlocks int32

	stats Stats
}

// New creates a device with all pages free.
func New(cfg Config) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := int32(cfg.Blocks * cfg.PagesPerBlock)
	logical := int32(float64(total) * (1 - cfg.OverProvision))
	d := &SSD{
		cfg:          cfg,
		logicalPages: logical,
		totalPages:   total,
		l2p:          make([]int32, logical),
		p2l:          make([]int32, total),
		blocks:       make([]blockState, cfg.Blocks),
		freeBlocks:   int32(cfg.Blocks),
	}
	for i := range d.l2p {
		d.l2p[i] = ppnInvalid
	}
	for i := range d.p2l {
		d.p2l[i] = ppnInvalid
	}
	d.active = 0
	d.freeBlocks-- // active block is allocated
	return d, nil
}

// Config returns the device configuration.
func (d *SSD) Config() Config { return d.cfg }

// LogicalPages returns the host-visible capacity in pages.
func (d *SSD) LogicalPages() int64 { return int64(d.logicalPages) }

// LogicalBytes returns the host-visible capacity in bytes.
func (d *SSD) LogicalBytes() int64 {
	return int64(d.logicalPages) * int64(d.cfg.PageSize)
}

// Stats returns a snapshot of the activity counters.
func (d *SSD) Stats() Stats { return d.stats }

// transferTime is the size-proportional interface cost (Fig. 1).
func (d *SSD) transferTime(bytes int64) time.Duration {
	return time.Duration(bytes * int64(time.Second) / d.cfg.TransferBW)
}

// pagesFor returns how many pages an operation of `bytes` touches.
func (d *SSD) pagesFor(bytes int64) int64 {
	ps := int64(d.cfg.PageSize)
	return (bytes + ps - 1) / ps
}

// ReadTime returns the service time for reading `bytes` at logical page
// lpn without mutating state beyond statistics.
//
// Unmapped pages cost the same as mapped ones: the controller still
// performs the array access (returning zeroes).
func (d *SSD) ReadTime(lpn int64, bytes int64) (time.Duration, error) {
	if bytes <= 0 {
		return 0, nil
	}
	n := d.pagesFor(bytes)
	if lpn < 0 || lpn+n > int64(d.logicalPages) {
		return 0, fmt.Errorf("ssd: read [%d,+%d) beyond %d logical pages", lpn, n, d.logicalPages)
	}
	d.stats.HostPagesRead += n
	return time.Duration(n)*d.cfg.ReadPageLatency + d.transferTime(bytes), nil
}

// WriteTime performs a host write of `bytes` at logical page lpn and
// returns its service time, including any foreground garbage collection
// it triggered.
func (d *SSD) WriteTime(lpn int64, bytes int64) (time.Duration, error) {
	if bytes <= 0 {
		return 0, nil
	}
	n := d.pagesFor(bytes)
	if lpn < 0 || lpn+n > int64(d.logicalPages) {
		return 0, fmt.Errorf("ssd: write [%d,+%d) beyond %d logical pages", lpn, n, d.logicalPages)
	}
	var gcTime time.Duration
	for i := int64(0); i < n; i++ {
		gcTime += d.writePage(int32(lpn + i))
	}
	d.stats.HostPagesWritten += n
	d.stats.FlashPagesWritten += n
	return time.Duration(n)*d.cfg.ProgramLatency + d.transferTime(bytes) + gcTime, nil
}

// Trim invalidates the mapping for n pages starting at lpn (discard).
func (d *SSD) Trim(lpn int64, n int64) error {
	if lpn < 0 || lpn+n > int64(d.logicalPages) {
		return fmt.Errorf("ssd: trim [%d,+%d) beyond %d logical pages", lpn, n, d.logicalPages)
	}
	for i := int64(0); i < n; i++ {
		d.invalidate(int32(lpn + i))
	}
	return nil
}

// invalidate drops the current mapping of logical page l, if any.
func (d *SSD) invalidate(l int32) {
	ppn := d.l2p[l]
	if ppn == ppnInvalid {
		return
	}
	b := ppn / int32(d.cfg.PagesPerBlock)
	d.blocks[b].valid--
	d.p2l[ppn] = ppnInvalid
	d.l2p[l] = ppnInvalid
}

// writePage maps logical page l to a fresh physical page, returning any
// GC time incurred while allocating.
func (d *SSD) writePage(l int32) time.Duration {
	d.invalidate(l)
	gcTime := d.ensureSpace()
	ppn := d.allocPage()
	d.l2p[l] = ppn
	d.p2l[ppn] = l
	b := ppn / int32(d.cfg.PagesPerBlock)
	d.blocks[b].valid++
	return gcTime
}

// allocPage takes the next page of the active block, opening a new block
// when the active one fills. ensureSpace must have been called.
func (d *SSD) allocPage() int32 {
	ab := &d.blocks[d.active]
	if ab.next >= int32(d.cfg.PagesPerBlock) {
		d.active = d.findFreeBlock()
		d.freeBlocks--
		ab = &d.blocks[d.active]
	}
	ppn := d.active*int32(d.cfg.PagesPerBlock) + ab.next
	ab.next++
	return ppn
}

// findFreeBlock returns a fully-erased block.
func (d *SSD) findFreeBlock() int32 {
	for i := range d.blocks {
		if d.blocks[i].next == 0 && d.blocks[i].valid == 0 {
			return int32(i)
		}
	}
	panic("ssd: no free block (GC invariant violated)")
}

// ensureSpace runs foreground GC when free blocks drop below the low
// watermark, reclaiming until the high watermark. Returns the time spent.
func (d *SSD) ensureSpace() time.Duration {
	low := int32(float64(d.cfg.Blocks) * d.cfg.GCLowWater)
	if low < 1 {
		low = 1
	}
	if d.freeBlocks > low {
		return 0
	}
	high := int32(float64(d.cfg.Blocks) * d.cfg.GCHighWater)
	if high <= low {
		high = low + 1
	}
	var t time.Duration
	d.stats.GCRuns++
	for d.freeBlocks < high {
		victim := d.pickVictim()
		if victim < 0 {
			break // nothing reclaimable
		}
		t += d.collect(victim)
	}
	d.stats.GCTime += t
	return t
}

// pickVictim selects the full block with the fewest valid pages (greedy
// GC), breaking ties toward the block with the fewest erases so wear
// spreads instead of cycling the same blocks. Returns -1 when no full
// block exists.
func (d *SSD) pickVictim() int32 {
	best := int32(-1)
	bestValid := int32(d.cfg.PagesPerBlock) + 1
	bestErases := int32(1<<31 - 1)
	for i := range d.blocks {
		b := &d.blocks[i]
		if int32(i) == d.active || b.next < int32(d.cfg.PagesPerBlock) {
			continue // only full blocks are victims
		}
		if b.valid < bestValid || (b.valid == bestValid && b.erases < bestErases) {
			bestValid = b.valid
			bestErases = b.erases
			best = int32(i)
		}
	}
	if bestValid >= int32(d.cfg.PagesPerBlock) {
		return -1 // all candidates fully valid: erasing gains nothing
	}
	return best
}

// collect relocates the victim's valid pages and erases it.
func (d *SSD) collect(victim int32) time.Duration {
	ppb := int32(d.cfg.PagesPerBlock)
	start := victim * ppb
	var moved int64
	for p := start; p < start+ppb; p++ {
		l := d.p2l[p]
		if l == ppnInvalid {
			continue
		}
		// Relocate: read + program into the active block.
		d.p2l[p] = ppnInvalid
		d.blocks[victim].valid--
		ppn := d.allocPage()
		d.l2p[l] = ppn
		d.p2l[ppn] = l
		d.blocks[ppn/ppb].valid++
		moved++
	}
	d.blocks[victim] = blockState{erases: d.blocks[victim].erases + 1}
	d.freeBlocks++
	d.stats.Erases++
	d.stats.GCPagesMoved += moved
	d.stats.FlashPagesWritten += moved
	return time.Duration(moved)*(d.cfg.ReadPageLatency+d.cfg.ProgramLatency) + d.cfg.EraseLatency
}

// CheckInvariants validates internal FTL consistency; tests call it after
// workloads. It returns nil when the state is consistent.
func (d *SSD) CheckInvariants() error {
	ppb := int32(d.cfg.PagesPerBlock)
	validPerBlock := make([]int32, d.cfg.Blocks)
	mapped := 0
	for l, ppn := range d.l2p {
		if ppn == ppnInvalid {
			continue
		}
		if ppn < 0 || ppn >= d.totalPages {
			return fmt.Errorf("l2p[%d]=%d out of range", l, ppn)
		}
		if d.p2l[ppn] != int32(l) {
			return fmt.Errorf("l2p[%d]=%d but p2l[%d]=%d", l, ppn, ppn, d.p2l[ppn])
		}
		validPerBlock[ppn/ppb]++
		mapped++
	}
	back := 0
	for p, l := range d.p2l {
		if l == ppnInvalid {
			continue
		}
		if d.l2p[l] != int32(p) {
			return fmt.Errorf("p2l[%d]=%d but l2p[%d]=%d", p, l, l, d.l2p[l])
		}
		back++
	}
	if mapped != back {
		return fmt.Errorf("mapping asymmetry: %d forward vs %d backward", mapped, back)
	}
	free := int32(0)
	for i := range d.blocks {
		if d.blocks[i].valid != validPerBlock[i] {
			return fmt.Errorf("block %d valid=%d, recount=%d", i, d.blocks[i].valid, validPerBlock[i])
		}
		if d.blocks[i].next == 0 && d.blocks[i].valid == 0 && int32(i) != d.active {
			free++
		}
		if d.blocks[i].next > ppb || d.blocks[i].valid > d.blocks[i].next {
			return fmt.Errorf("block %d inconsistent: next=%d valid=%d", i, d.blocks[i].next, d.blocks[i].valid)
		}
	}
	if free != d.freeBlocks {
		return fmt.Errorf("freeBlocks=%d, recount=%d", d.freeBlocks, free)
	}
	return nil
}

// MaxErases returns the highest per-block erase count (wear skew probe).
func (d *SSD) MaxErases() int32 {
	var m int32
	for i := range d.blocks {
		if d.blocks[i].erases > m {
			m = d.blocks[i].erases
		}
	}
	return m
}
