package ssd

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// smallConfig returns a tiny device for fast GC-heavy tests.
func smallConfig() Config {
	c := DefaultConfig()
	c.Blocks = 64
	c.PagesPerBlock = 16
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.PagesPerBlock = -1 },
		func(c *Config) { c.Blocks = 2 },
		func(c *Config) { c.OverProvision = 0.9 },
		func(c *Config) { c.TransferBW = 0 },
		func(c *Config) { c.GCLowWater = 0 },
		func(c *Config) { c.GCHighWater = c.GCLowWater },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestCapacity(t *testing.T) {
	d, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(64 * 16)
	want := int64(float64(total) * 0.93)
	if d.LogicalPages() != want {
		t.Fatalf("logical pages = %d; want %d", d.LogicalPages(), want)
	}
	if d.LogicalBytes() != want*4096 {
		t.Fatalf("logical bytes = %d", d.LogicalBytes())
	}
}

func TestReadWriteBounds(t *testing.T) {
	d, _ := New(smallConfig())
	if _, err := d.ReadTime(-1, 4096); err == nil {
		t.Fatal("expected error for negative lpn")
	}
	if _, err := d.ReadTime(d.LogicalPages(), 4096); err == nil {
		t.Fatal("expected error past capacity")
	}
	if _, err := d.WriteTime(d.LogicalPages()-1, 2*4096); err == nil {
		t.Fatal("expected error for write spilling past capacity")
	}
	if err := d.Trim(d.LogicalPages(), 1); err == nil {
		t.Fatal("expected error for trim past capacity")
	}
	if dt, err := d.ReadTime(0, 0); err != nil || dt != 0 {
		t.Fatalf("zero-byte read = %v, %v", dt, err)
	}
}

func TestLatencyLinearInSize(t *testing.T) {
	// Fig. 1: response time grows ~linearly with request size.
	d, _ := New(DefaultConfig())
	sizes := []int64{4096, 8192, 16384, 32768, 65536, 131072}
	var times []time.Duration
	for _, s := range sizes {
		dt, err := d.ReadTime(0, s)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, dt)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("latency not increasing: %v then %v", times[i-1], times[i])
		}
	}
	// Doubling size from 16K to 32K should roughly double total time
	// (per-page read dominates); allow generous tolerance.
	r := float64(times[3]) / float64(times[2])
	if r < 1.7 || r > 2.3 {
		t.Fatalf("32K/16K latency ratio = %.2f; want ~2", r)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	d, _ := New(DefaultConfig())
	rt, _ := d.ReadTime(0, 4096)
	wt, _ := d.WriteTime(0, 4096)
	if wt <= rt {
		t.Fatalf("write %v not slower than read %v", wt, rt)
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	d, _ := New(smallConfig())
	if _, err := d.WriteTime(5, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteTime(5, 4096); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().HostPagesWritten != 2 {
		t.Fatalf("host pages written = %d", d.Stats().HostPagesWritten)
	}
}

func TestGCTriggersUnderPressure(t *testing.T) {
	d, _ := New(smallConfig())
	// Overwrite a small working set many times: forces GC.
	n := d.LogicalPages() / 4
	for round := 0; round < 20; round++ {
		for l := int64(0); l < n; l += 4 {
			if _, err := d.WriteTime(l, 4*4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d.Stats()
	if st.Erases == 0 {
		t.Fatal("expected erases after sustained overwrites")
	}
	if st.GCRuns == 0 {
		t.Fatal("expected GC runs")
	}
	if st.WriteAmplification() < 1.0 {
		t.Fatalf("write amplification = %.2f; want >= 1", st.WriteAmplification())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMoreBytesWrittenMoreErases(t *testing.T) {
	// The endurance argument for compression: writing more total data to
	// the same device forces more erase cycles.
	d1, _ := New(smallConfig())
	d2, _ := New(smallConfig())
	for round := 0; round < 10; round++ {
		for l := int64(0); l < d1.LogicalPages()/2; l++ {
			if _, err := d1.WriteTime(l, 4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 20; round++ {
		for l := int64(0); l < d2.LogicalPages()/2; l++ {
			if _, err := d2.WriteTime(l, 4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	if d2.Stats().Erases <= d1.Stats().Erases {
		t.Fatalf("2x data produced erases %d <= %d", d2.Stats().Erases, d1.Stats().Erases)
	}
}

func TestTrimFreesSpace(t *testing.T) {
	d, _ := New(smallConfig())
	for l := int64(0); l < 32; l++ {
		if _, err := d.WriteTime(l, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Trim(0, 32); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All pages unmapped: reads still succeed (zero-fill semantics).
	if _, err := d.ReadTime(0, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _ := New(smallConfig())
		for op := 0; op < 3000; op++ {
			l := rng.Int63n(d.LogicalPages())
			maxPages := d.LogicalPages() - l
			if maxPages > 8 {
				maxPages = 8
			}
			n := rng.Int63n(maxPages) + 1
			switch rng.Intn(4) {
			case 0:
				if _, err := d.ReadTime(l, n*4096); err != nil {
					return false
				}
			case 3:
				if err := d.Trim(l, n); err != nil {
					return false
				}
			default:
				if _, err := d.WriteTime(l, n*4096); err != nil {
					return false
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, _ := New(smallConfig())
	if _, err := d.WriteTime(0, 3*4096); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadTime(0, 2*4096); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.HostPagesWritten != 3 || st.HostPagesRead != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WriteAmplification() != 1.0 {
		t.Fatalf("WA = %v; want 1.0 before GC", st.WriteAmplification())
	}
	var zero Stats
	if zero.WriteAmplification() != 0 {
		t.Fatal("WA of empty stats should be 0")
	}
}

func TestPartialPageWriteRoundsUp(t *testing.T) {
	d, _ := New(smallConfig())
	if _, err := d.WriteTime(0, 100); err != nil { // 100 bytes -> 1 page
		t.Fatal(err)
	}
	if d.Stats().HostPagesWritten != 1 {
		t.Fatalf("pages = %d; want 1", d.Stats().HostPagesWritten)
	}
}

func TestWearSpreadsAcrossBlocks(t *testing.T) {
	// Sustained overwrites of a hot set should not concentrate erases on
	// a handful of blocks: the tie-break spreads wear.
	d, _ := New(smallConfig())
	for round := 0; round < 60; round++ {
		for l := int64(0); l < d.LogicalPages()/3; l++ {
			if _, err := d.WriteTime(l, 4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d.Stats()
	if st.Erases == 0 {
		t.Skip("workload did not trigger GC")
	}
	maxE := int64(d.MaxErases())
	avgE := st.Erases / int64(len(d.blocks))
	if avgE > 0 && maxE > 8*avgE {
		t.Fatalf("wear skew: max erases %d vs avg %d", maxE, avgE)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite4K(b *testing.B) {
	d, _ := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := int64(i) % (d.LogicalPages() - 1)
		if _, err := d.WriteTime(l, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
