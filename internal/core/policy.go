package core

import (
	"fmt"
	"sort"

	"edc/internal/compress"
)

// Policy decides, per write run, which compression algorithm to apply.
// Implementations must be pure functions of their configuration and the
// observed intensity, so runs are reproducible.
type Policy interface {
	// Name identifies the scheme in reports ("EDC", "Gzip", ...).
	Name() string
	// Select returns the codec for a run observed at the given calculated
	// IOPS; nil means store uncompressed.
	Select(cIOPS float64) compress.Codec
	// ChecksCompressibility reports whether the engine should run the
	// sampling estimator and write non-compressible runs through. The
	// paper's fixed baselines compress all incoming data; EDC does not.
	ChecksCompressibility() bool
}

// nativePolicy never compresses (the paper's "Native" baseline).
type nativePolicy struct{}

func (nativePolicy) Name() string                  { return "Native" }
func (nativePolicy) Select(float64) compress.Codec { return nil }
func (nativePolicy) ChecksCompressibility() bool   { return false }

// Native returns the no-compression baseline policy.
func Native() Policy { return nativePolicy{} }

// fixedPolicy always uses one codec (the paper's Lzf/Gzip/Bzip2
// baselines, "always-on inline compression for all workloads").
type fixedPolicy struct {
	name  string
	codec compress.Codec
}

func (p fixedPolicy) Name() string                  { return p.name }
func (p fixedPolicy) Select(float64) compress.Codec { return p.codec }
func (p fixedPolicy) ChecksCompressibility() bool   { return false }

// Fixed returns a baseline that compresses everything with codec.
func Fixed(name string, codec compress.Codec) Policy {
	return fixedPolicy{name: name, codec: codec}
}

// Level is one rung of the elastic ladder: the codec used while the
// calculated IOPS is at or below MaxIOPS.
type Level struct {
	MaxIOPS float64        // upper intensity bound for this rung
	Codec   compress.Codec // codec applied at or below the bound (nil: none)
}

// ElasticPolicy is the paper's EDC selection (Fig. 6): codecs of higher
// compression ratio at lower intensity, cheaper codecs at higher
// intensity, and no compression above the highest threshold.
type ElasticPolicy struct {
	name   string
	levels []Level // ascending MaxIOPS
}

// NewElastic builds an elastic policy from intensity levels. Levels are
// sorted by MaxIOPS; intensities above the last threshold select no
// compression.
func NewElastic(name string, levels []Level) (*ElasticPolicy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: elastic policy %q needs at least one level", name)
	}
	ls := append([]Level(nil), levels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].MaxIOPS < ls[j].MaxIOPS })
	for i, l := range ls {
		if l.Codec == nil {
			return nil, fmt.Errorf("core: elastic level %d has nil codec", i)
		}
		if l.MaxIOPS <= 0 {
			return nil, fmt.Errorf("core: elastic level %d has non-positive threshold", i)
		}
		if i > 0 && ls[i-1].MaxIOPS == l.MaxIOPS {
			return nil, fmt.Errorf("core: duplicate elastic threshold %v", l.MaxIOPS)
		}
	}
	return &ElasticPolicy{name: name, levels: ls}, nil
}

// DefaultGzCeiling and DefaultLzfCeiling are the stock EDC thresholds in
// calculated IOPS: deep-idle traffic gets Gzip-class compression, normal
// traffic gets Lzf, and bursts above the Lzf ceiling are written
// uncompressed. The Fig. 12 sensitivity sweep varies the Gzip ceiling.
const (
	DefaultGzCeiling  = 300
	DefaultLzfCeiling = 7000
)

// DefaultElastic returns the paper's stock EDC ladder (Gzip when idle,
// Lzf under load, nothing at peak) built from the given registry.
func DefaultElastic(reg *compress.Registry) (*ElasticPolicy, error) {
	gz, err := reg.ByName("gz")
	if err != nil {
		return nil, err
	}
	lzf, err := reg.ByName("lzf")
	if err != nil {
		return nil, err
	}
	return NewElastic("EDC", []Level{
		{MaxIOPS: DefaultGzCeiling, Codec: gz},
		{MaxIOPS: DefaultLzfCeiling, Codec: lzf},
	})
}

// Name implements Policy.
func (p *ElasticPolicy) Name() string { return p.name }

// Select implements Policy.
func (p *ElasticPolicy) Select(cIOPS float64) compress.Codec {
	for _, l := range p.levels {
		if cIOPS <= l.MaxIOPS {
			return l.Codec
		}
	}
	return nil
}

// ChecksCompressibility implements Policy: EDC writes non-compressible
// blocks through.
func (p *ElasticPolicy) ChecksCompressibility() bool { return true }

// Levels returns a copy of the ladder (ascending thresholds).
func (p *ElasticPolicy) Levels() []Level {
	return append([]Level(nil), p.levels...)
}

// RatioAware is an optional Policy extension: the engine passes the
// sampled compressibility estimate alongside the intensity, letting the
// policy exploit content characteristics (the paper's future work #1:
// semantic/file-type-aware algorithm selection).
type RatioAware interface {
	Policy
	// SelectWithRatio chooses a codec given the calculated IOPS and the
	// estimated compression ratio of the run's content.
	SelectWithRatio(cIOPS, estRatio float64) compress.Codec
}

// ContentAware upgrades an elastic ladder's deep-idle band to a heavier
// codec when the content's estimated compressibility justifies it: very
// compressible data (source trees, logs) gets Bzip2-class treatment in
// idle periods, while ordinary data keeps the stock ladder.
type ContentAware struct {
	*ElasticPolicy
	// Heavy is used instead of the ladder's lowest-intensity codec when
	// the estimated ratio is at least MinRatio.
	Heavy    compress.Codec
	MinRatio float64
}

// NewContentAware wraps base with a heavy-codec upgrade rule.
func NewContentAware(base *ElasticPolicy, heavy compress.Codec, minRatio float64) (*ContentAware, error) {
	if heavy == nil {
		return nil, fmt.Errorf("core: content-aware policy needs a heavy codec")
	}
	if minRatio < 1 {
		return nil, fmt.Errorf("core: MinRatio %v must be >= 1", minRatio)
	}
	return &ContentAware{ElasticPolicy: base, Heavy: heavy, MinRatio: minRatio}, nil
}

// Name implements Policy.
func (c *ContentAware) Name() string { return c.ElasticPolicy.Name() + "+" }

// SelectWithRatio implements RatioAware: within the ladder's idle band,
// highly compressible content is upgraded to the heavy codec.
func (c *ContentAware) SelectWithRatio(cIOPS, estRatio float64) compress.Codec {
	pick := c.ElasticPolicy.Select(cIOPS)
	levels := c.ElasticPolicy.levels
	if pick != nil && len(levels) > 0 && pick == levels[0].Codec && estRatio >= c.MinRatio {
		return c.Heavy
	}
	return pick
}

// noEstimate wraps a policy, disabling the compressibility check
// (ablation: compress everything the ladder selects, even data the
// estimator would have written through).
type noEstimate struct {
	Policy
}

func (noEstimate) ChecksCompressibility() bool { return false }

// WithoutEstimator returns p with the sampling compressibility check
// disabled.
func WithoutEstimator(p Policy) Policy { return noEstimate{p} }
