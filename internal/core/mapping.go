package core

import (
	"fmt"

	"edc/internal/compress"
	"edc/internal/dedup"
	"edc/internal/maint"
)

// BlockSize is the logical block granularity of the EDC mapping table.
// The paper's prototype operates on fixed-size 4 KB input blocks
// (Sec. III-C); host requests are aligned to this unit on entry.
const BlockSize = 4096

// Extent describes one stored (possibly merged and compressed) run: the
// paper's per-block mapping metadata — LBA, compressed Size and the
// 3-bit codec Tag (Fig. 5) — extended with the quantized slot length and
// the device location.
type Extent struct {
	Offset  int64 // logical byte offset of the run start
	OrigLen int64 // uncompressed bytes (BlockSize multiple)
	CompLen int64 // compressed payload bytes
	SlotLen int64 // quantized allocation on the device
	Tag     compress.Tag
	DevOff  int64 // byte offset on the backing device
	Version uint32

	// Heat is the extent's epoch-decayed temperature, bumped by the
	// read and write paths and consulted only by background
	// maintenance; it is never persisted (recovered extents start
	// cold).
	Heat maint.Heat

	live    int32 // logical blocks still mapped to this extent
	pending bool  // device write not yet durable; maintenance must not move it

	// shared marks an extent currently referenced by blocks outside its
	// home range [Offset, Offset+OrigLen) — a dedup hit mapped foreign
	// LBAs to it. Shared extents are excluded from dead-space accounting
	// (their live count can exceed their home block count, so "partially
	// dead" is undefined for them). The flag tracks foreign exactly: it
	// clears when the last foreign reference goes away, so in-memory
	// state always matches what a snapshot reload would reconstruct.
	shared bool
	// foreign counts the live blocks outside the home range (shared ==
	// foreign > 0); live is always home-live + foreign.
	foreign int32
	// deadCounted tracks whether this extent's slot is currently counted
	// in Mapping.deadSpace, replacing the old inference from live-count
	// transitions (which dedup's refcount increments would break).
	deadCounted bool

	// sum is the content fingerprint of the stored run; valid only when
	// hasSum (dedup enabled and the extent went through the write path).
	sum    dedup.Sum
	hasSum bool
}

// Compressed reports whether the extent stores transformed data.
func (e *Extent) Compressed() bool { return e.Tag != compress.TagNone }

// Live returns the number of logical blocks still referencing the extent.
func (e *Extent) Live() int { return int(e.live) }

// Mapping is the EDC mapping table: logical 4 KB block -> extent.
// Overwrites decrement the old extent's live count; a fully dead extent
// releases its device slot through the free callback.
type Mapping struct {
	table []*Extent // one entry per logical block
	alloc *Allocator
	// onFree, if set, is told when an extent's slot is released
	// (the engine trims the device range).
	onFree func(*Extent)

	liveBlocks int64
	extents    int64
	deadSpace  int64 // slot bytes held by partially-dead extents

	// deferFrees, set when dedup is enabled, makes extent release
	// enqueue onto dying instead of freeing inline. Each mapping
	// mutation's caller collects the batch with takeDying and flushes it
	// (journal unref + slot free + engine callback) only once its own
	// mutation is durable — so an unref record never precedes the
	// journal record of the write that caused it.
	deferFrees bool
	dying      []*Extent
}

// NewMapping creates a table for a volume of volumeBytes, backed by the
// given slot allocator.
func NewMapping(volumeBytes int64, alloc *Allocator, onFree func(*Extent)) *Mapping {
	nBlocks := (volumeBytes + BlockSize - 1) / BlockSize
	return &Mapping{
		table:  make([]*Extent, nBlocks),
		alloc:  alloc,
		onFree: onFree,
	}
}

// VolumeBlocks returns the logical volume size in blocks.
func (m *Mapping) VolumeBlocks() int64 { return int64(len(m.table)) }

// LiveBlocks returns how many logical blocks are currently mapped.
func (m *Mapping) LiveBlocks() int64 { return m.liveBlocks }

// Extents returns the number of live extents.
func (m *Mapping) Extents() int64 { return m.extents }

// checkRange validates a block-aligned byte range.
func (m *Mapping) checkRange(off, size int64) error {
	if off < 0 || size <= 0 || off%BlockSize != 0 || size%BlockSize != 0 {
		return fmt.Errorf("core: unaligned range [%d,+%d)", off, size)
	}
	if (off+size)/BlockSize > int64(len(m.table)) {
		return fmt.Errorf("core: range [%d,+%d) beyond volume (%d blocks)", off, size, len(m.table))
	}
	return nil
}

// Insert maps the run [ext.Offset, +ext.OrigLen) to ext, unmapping any
// previous extents covering those blocks. The new extent's slot must
// already be allocated; fully-overwritten old extents have their slots
// freed here.
func (m *Mapping) Insert(ext *Extent) error {
	if err := m.checkRange(ext.Offset, ext.OrigLen); err != nil {
		return err
	}
	first := ext.Offset / BlockSize
	n := ext.OrigLen / BlockSize
	for b := first; b < first+n; b++ {
		m.unmapBlock(b)
		m.table[b] = ext
		m.liveBlocks++
	}
	ext.live = int32(n)
	m.extents++
	return nil
}

// unmapBlock detaches block b from its extent, releasing the extent when
// it loses its last block.
func (m *Mapping) unmapBlock(b int64) {
	old := m.table[b]
	if old == nil {
		return
	}
	m.table[b] = nil
	m.liveBlocks--
	old.live--
	if first := old.Offset / BlockSize; b < first || b >= first+old.OrigLen/BlockSize {
		old.foreign--
		if old.foreign == 0 {
			// Last foreign reference gone: the extent reverts to plain
			// home-range semantics, including dead-space accounting
			// (settled below) — matching what LoadSnapshot reconstructs.
			old.shared = false
		}
	}
	if old.live == 0 {
		m.extents--
		m.release(old)
		return
	}
	m.settleDead(old)
}

// settleDead reconciles e's participation in the dead-space gauge with
// its current reference state: shared extents are never counted (their
// live count is not comparable to their home block count); a live,
// unshared extent with unmapped home blocks pins its whole slot.
func (m *Mapping) settleDead(e *Extent) {
	want := !e.shared && e.live > 0 && e.live < int32(e.OrigLen/BlockSize)
	switch {
	case want && !e.deadCounted:
		m.deadSpace += e.SlotLen
		e.deadCounted = true
	case !want && e.deadCounted:
		m.deadSpace -= e.SlotLen
		e.deadCounted = false
	}
}

// release retires a fully-dereferenced extent: settle its dead-space
// accounting, then free its slot — either inline or, under deferFrees,
// onto the dying batch for the current mutation's caller to flush at
// its durable point.
func (m *Mapping) release(old *Extent) {
	if old.deadCounted {
		m.deadSpace -= old.SlotLen
		old.deadCounted = false
	}
	if m.deferFrees {
		m.dying = append(m.dying, old)
		return
	}
	m.alloc.Free(old.DevOff, old.SlotLen)
	if m.onFree != nil {
		m.onFree(old)
	}
}

// takeDying hands the caller the extents released by the mutation it
// just performed (empty unless deferFrees). The caller owns the batch:
// it must journal the unrefs and free the slots once its own mutation
// is durable.
func (m *Mapping) takeDying() []*Extent {
	d := m.dying
	m.dying = nil
	return d
}

// InsertRef maps the run [off, +size) onto the already-stored extent
// ext — the dedup-hit remap. The run must match ext's stored length
// exactly, and ext must still be live. Blocks already mapped to ext are
// left untouched (rewriting identical content in place is a no-op), so
// ext can never be released by its own remap.
func (m *Mapping) InsertRef(off, size int64, ext *Extent) error {
	if err := m.checkRange(off, size); err != nil {
		return err
	}
	if size != ext.OrigLen {
		return fmt.Errorf("core: dedup ref [%d,+%d) against extent of %d bytes", off, size, ext.OrigLen)
	}
	if ext.live <= 0 {
		return fmt.Errorf("core: dedup ref against dead extent at %d", ext.Offset)
	}
	first := off / BlockSize
	n := size / BlockSize
	homeFirst := ext.Offset / BlockSize
	homeEnd := homeFirst + ext.OrigLen/BlockSize
	for b := first; b < first+n; b++ {
		if m.table[b] == ext {
			continue
		}
		if b < homeFirst || b >= homeEnd {
			ext.shared = true
			ext.foreign++
		}
		m.unmapBlock(b)
		m.table[b] = ext
		ext.live++
		m.liveBlocks++
	}
	m.settleDead(ext)
	return nil
}

// Replace swaps old for repl in every block that still references old,
// freeing old's device slot — the remap half of an extent relocation.
// repl must describe the same logical run (Offset, OrigLen, Version)
// with its new slot already allocated; blocks of the run that were
// overwritten while the relocation was in flight stay with their newer
// extents, so repl inherits exactly old's live count. Returns an error
// if old is no longer referenced anywhere (the caller should have
// aborted instead of double-freeing).
func (m *Mapping) Replace(old, repl *Extent) error {
	if old.live <= 0 {
		return fmt.Errorf("core: replace of dead extent at %d", old.Offset)
	}
	if old.shared {
		// Foreign references live outside the home range; the caller
		// must use ReplaceAll to move them too.
		return fmt.Errorf("core: replace of shared extent at %d", old.Offset)
	}
	if repl.Offset != old.Offset || repl.OrigLen != old.OrigLen {
		return fmt.Errorf("core: replace changes run [%d,+%d) -> [%d,+%d)",
			old.Offset, old.OrigLen, repl.Offset, repl.OrigLen)
	}
	first := old.Offset / BlockSize
	n := old.OrigLen / BlockSize
	var moved int32
	for b := first; b < first+n; b++ {
		if m.table[b] == old {
			m.table[b] = repl
			moved++
		}
	}
	if moved != old.live {
		return fmt.Errorf("core: extent at %d: live=%d but %d blocks reference it",
			old.Offset, old.live, moved)
	}
	repl.live = moved
	repl.Heat = old.Heat
	old.live = 0
	if old.deadCounted {
		// The slot was counted dead-space when its first block died;
		// the replacement slot inherits that state at its own size.
		m.deadSpace += repl.SlotLen - old.SlotLen
		old.deadCounted = false
		repl.deadCounted = true
	}
	m.release(old)
	return nil
}

// ReplaceAll swaps old for repl in every block that references old,
// wherever it is mapped — the remap half of relocating an extent that
// dedup may have shared across LBAs. Unlike Replace it scans the whole
// table (relocations are background-rate, so the scan is off the hot
// path); like Replace, repl must describe the same logical run with its
// slot already allocated, and inherits exactly old's references.
func (m *Mapping) ReplaceAll(old, repl *Extent) error {
	if old.live <= 0 {
		return fmt.Errorf("core: replace of dead extent at %d", old.Offset)
	}
	if repl.Offset != old.Offset || repl.OrigLen != old.OrigLen {
		return fmt.Errorf("core: replace changes run [%d,+%d) -> [%d,+%d)",
			old.Offset, old.OrigLen, repl.Offset, repl.OrigLen)
	}
	var moved int32
	for b, e := range m.table {
		if e == old {
			m.table[b] = repl
			moved++
		}
	}
	if moved != old.live {
		return fmt.Errorf("core: extent at %d: live=%d but %d blocks reference it",
			old.Offset, old.live, moved)
	}
	repl.live = moved
	repl.Heat = old.Heat
	repl.shared = old.shared
	repl.foreign = old.foreign
	old.live = 0
	old.foreign = 0
	if old.deadCounted {
		m.deadSpace += repl.SlotLen - old.SlotLen
		old.deadCounted = false
		repl.deadCounted = true
	}
	m.release(old)
	return nil
}

// findExtent locates the live extent for the run starting at off whose
// slot sits at devOff — the lookup journal replay uses to resolve a
// relocate record's old placement. Returns nil if no such extent is
// still mapped.
func (m *Mapping) findExtent(off, origLen, devOff int64) *Extent {
	first := off / BlockSize
	n := origLen / BlockSize
	if first < 0 || n <= 0 || first+n > int64(len(m.table)) {
		return nil
	}
	// Any block of the run may have been overwritten since; the extent
	// is found through whichever of its blocks it still owns.
	for b := first; b < first+n; b++ {
		e := m.table[b]
		if e != nil && e.Offset == off && e.DevOff == devOff {
			return e
		}
	}
	return nil
}

// SplitTail copies every block mapping at or beyond byte offset off
// into dst, a fresh mapping whose volume covers the tail rebased to
// start at zero. clone is called once per distinct source extent to
// build its rebased copy (the caller allocates the destination slot);
// blocks keep exactly the references they had, so partially-overwritten
// runs stay partially overwritten rather than being resurrected by a
// whole-run re-insert. Every extent mapped in the tail must have its
// home offset at or beyond off (the caller picks a non-straddling
// boundary). The source table is not modified — the caller trims the
// tail once the move is committed. Returns the number of extents
// cloned; on error dst is partially built and must be discarded.
func (m *Mapping) SplitTail(off int64, dst *Mapping, clone func(*Extent) (*Extent, error)) (int, error) {
	if off <= 0 || off%BlockSize != 0 {
		return 0, fmt.Errorf("core: split at unaligned offset %d", off)
	}
	first := off / BlockSize
	clones := make(map[*Extent]*Extent)
	for b := first; b < int64(len(m.table)); b++ {
		e := m.table[b]
		if e == nil {
			continue
		}
		if e.Offset < off {
			return len(clones), fmt.Errorf("core: extent at %d straddles split offset %d", e.Offset, off)
		}
		ne, ok := clones[e]
		if !ok {
			var err error
			ne, err = clone(e)
			if err != nil {
				return len(clones), err
			}
			clones[e] = ne
			dst.extents++
		}
		nb := b - first
		if nb >= int64(len(dst.table)) {
			return len(clones), fmt.Errorf("core: split tail block %d beyond destination volume (%d blocks)", nb, len(dst.table))
		}
		dst.table[nb] = ne
		dst.liveBlocks++
		ne.live++
	}
	for _, ne := range clones {
		dst.settleDead(ne)
	}
	return len(clones), nil
}

// Trim unmaps a block-aligned range (host discard).
func (m *Mapping) Trim(off, size int64) error {
	if err := m.checkRange(off, size); err != nil {
		return err
	}
	for b := off / BlockSize; b < (off+size)/BlockSize; b++ {
		m.unmapBlock(b)
	}
	return nil
}

// Lookup returns the extent mapped at byte offset off (nil if unmapped).
func (m *Mapping) Lookup(off int64) *Extent {
	b := off / BlockSize
	if b < 0 || b >= int64(len(m.table)) {
		return nil
	}
	return m.table[b]
}

// ReadSegment is one piece of a read plan: either an extent to fetch and
// decode, or a hole (unmapped blocks, read as zeroes straight from the
// device address space).
type ReadSegment struct {
	Ext   *Extent // nil for holes
	Bytes int64   // logical bytes of this read satisfied by the segment
}

// ReadPlan decomposes a block-aligned read into the distinct extents (and
// holes) it touches. Adjacent blocks of the same extent collapse into a
// single segment, so each extent is fetched and decompressed once.
func (m *Mapping) ReadPlan(off, size int64) ([]ReadSegment, error) {
	if err := m.checkRange(off, size); err != nil {
		return nil, err
	}
	var plan []ReadSegment
	first := off / BlockSize
	n := size / BlockSize
	for b := first; b < first+n; b++ {
		ext := m.table[b]
		if len(plan) > 0 {
			last := &plan[len(plan)-1]
			if last.Ext == ext {
				last.Bytes += BlockSize
				continue
			}
		}
		plan = append(plan, ReadSegment{Ext: ext, Bytes: BlockSize})
	}
	return plan, nil
}

// DeadSlotBytes reports slot bytes pinned by partially-overwritten
// extents (space the quantization cannot reclaim until the whole extent
// dies).
func (m *Mapping) DeadSlotBytes() int64 { return m.deadSpace }

// CheckInvariants recounts live references; tests call it after random
// workloads.
func (m *Mapping) CheckInvariants() error {
	counts := make(map[*Extent]int32)
	foreign := make(map[*Extent]int32)
	var live int64
	for b, e := range m.table {
		if e == nil {
			continue
		}
		counts[e]++
		live++
		if first := e.Offset / BlockSize; int64(b) < first || int64(b) >= first+e.OrigLen/BlockSize {
			foreign[e]++
		}
	}
	if live != m.liveBlocks {
		return fmt.Errorf("liveBlocks=%d, recount=%d", m.liveBlocks, live)
	}
	if int64(len(counts)) != m.extents {
		return fmt.Errorf("extents=%d, recount=%d", m.extents, len(counts))
	}
	var dead int64
	for e, c := range counts {
		if e.live != c {
			return fmt.Errorf("extent at %d: live=%d, recount=%d", e.Offset, e.live, c)
		}
		if !e.shared && e.live > int32(e.OrigLen/BlockSize) {
			return fmt.Errorf("extent at %d: live=%d exceeds blocks=%d", e.Offset, e.live, e.OrigLen/BlockSize)
		}
		if f := foreign[e]; e.foreign != f || e.shared != (f > 0) {
			return fmt.Errorf("extent at %d: foreign=%d shared=%v, recount=%d",
				e.Offset, e.foreign, e.shared, f)
		}
		if want := !e.shared && e.live < int32(e.OrigLen/BlockSize); e.deadCounted != want {
			return fmt.Errorf("extent at %d: deadCounted=%v, want %v (live=%d shared=%v)",
				e.Offset, e.deadCounted, want, e.live, e.shared)
		}
		if e.deadCounted {
			dead += e.SlotLen
		}
	}
	if dead != m.deadSpace {
		return fmt.Errorf("deadSpace=%d, recount=%d", m.deadSpace, dead)
	}
	return nil
}
