package core

import (
	"fmt"
	"time"

	"edc/internal/fault"
	"edc/internal/hdd"
	"edc/internal/obs"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// HDDBackend adapts the analytical disk model to the Backend interface
// (the paper's future work: evaluating EDC on HDD-based systems). Disks
// have no FTL, so DeviceStats reports an empty slice; use DiskStats for
// the disk-specific counters.
type HDDBackend struct {
	dev *hdd.HDD
	st  *sim.Station
	eng *sim.Engine

	inj    *fault.Injector
	fobs   *obs.Collector
	fstats *RunStats
}

var _ Backend = (*HDDBackend)(nil)

// NewHDDBackend wires the disk to a station on eng.
func NewHDDBackend(eng *sim.Engine, dev *hdd.HDD) *HDDBackend {
	return &HDDBackend{dev: dev, st: sim.NewStation(eng, "hdd0"), eng: eng}
}

// InjectFaults implements FaultInjectable.
func (b *HDDBackend) InjectFaults(p *fault.Plan, col *obs.Collector, st *RunStats) {
	b.inj = p.Injector(0)
	b.fobs = col
	b.fstats = st
}

// decide consults the injector for one operation (nil injector: clean).
func (b *HDDBackend) decide(write bool, off, bytes int64) (*fault.Error, time.Duration) {
	if b.inj == nil {
		return nil, 0
	}
	out := b.inj.Op(b.eng.Now(), write, off/int64(b.PageSize()))
	if out.Err != nil {
		b.fstats.Faults++
		b.fobs.Fault(b.eng.Now(), out.Err.Op, 0, off, bytes, out.Err.Transient)
	}
	return out.Err, out.Extra
}

// LogicalBytes implements Backend.
func (b *HDDBackend) LogicalBytes() int64 { return b.dev.LogicalBytes() }

// PageSize implements Backend.
func (b *HDDBackend) PageSize() int { return b.dev.Config().BlockSize }

// Read implements Backend.
func (b *HDDBackend) Read(devOff, bytes int64, extra time.Duration, done func(err error)) {
	off, n := b.clamp(devOff, bytes)
	svc, err := b.dev.ReadTime(off, n)
	if err != nil {
		panic(fmt.Sprintf("core: hdd read: %v", err))
	}
	ferr, fextra := b.decide(false, off, n)
	b.st.Submit(sim.Job{Service: svc + extra + fextra, Done: func(_, _ time.Duration) { done(ferr.AsError()) }})
}

// Write implements Backend.
func (b *HDDBackend) Write(devOff, bytes int64, extra time.Duration, done func(err error)) {
	off, n := b.clamp(devOff, bytes)
	svc, err := b.dev.WriteTime(off, n)
	if err != nil {
		panic(fmt.Sprintf("core: hdd write: %v", err))
	}
	ferr, fextra := b.decide(true, off, n)
	b.st.Submit(sim.Job{Service: svc + extra + fextra, Done: func(_, _ time.Duration) { done(ferr.AsError()) }})
}

// clamp bounds an access to the disk capacity.
func (b *HDDBackend) clamp(devOff, bytes int64) (int64, int64) {
	cap := b.dev.LogicalBytes()
	if bytes <= 0 {
		return 0, 0
	}
	if devOff < 0 {
		devOff = 0
	}
	if devOff+bytes > cap {
		devOff = cap - bytes
		if devOff < 0 {
			devOff = 0
			bytes = cap
		}
	}
	return devOff, bytes
}

// Trim implements Backend: disks have no discard semantics to model.
func (b *HDDBackend) Trim(devOff, bytes int64) {}

// DeviceStats implements Backend (no flash counters on a disk).
func (b *HDDBackend) DeviceStats() []ssd.Stats { return nil }

// DiskStats returns the disk-specific counters.
func (b *HDDBackend) DiskStats() hdd.Stats { return b.dev.Stats() }

// QueueStats implements Backend.
func (b *HDDBackend) QueueStats() []sim.Stats { return []sim.Stats{b.st.Stats()} }

// Describe implements Backend.
func (b *HDDBackend) Describe() string {
	return fmt.Sprintf("single HDD (%d MiB, %d RPM)", b.dev.LogicalBytes()>>20, b.dev.Config().RPM)
}
