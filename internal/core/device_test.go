package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
	"edc/internal/workload"
)

func TestNewDeviceValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, _ := ssd.New(ssd.DefaultConfig())
	be := NewSingleSSD(eng, d)
	if _, err := NewDevice(eng, be, 0, Options{}); err == nil {
		t.Fatal("zero volume should fail")
	}
	if _, err := NewDevice(eng, be, be.LogicalBytes()+1, Options{}); err == nil {
		t.Fatal("volume beyond backend should fail")
	}
	if _, err := NewDevice(eng, be, 1<<20, Options{Cost: CostModel{compress.TagLZF: {}}}); err == nil {
		t.Fatal("invalid cost model should fail")
	}
}

func TestPlayNativeRoundTrip(t *testing.T) {
	rig := newTestRig(t, Options{Policy: Native()})
	st, err := rig.dev.Play(seqTrace(300, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 300 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Resp.Count() != 300 {
		t.Fatalf("responses = %d; want all requests answered", st.Resp.Count())
	}
	if st.TrafficRatio() != 1.0 {
		t.Fatalf("native ratio = %v; want 1.0", st.TrafficRatio())
	}
	if st.RunsByTag[compress.TagNone] != st.SDRuns {
		t.Fatalf("native stored %v compressed runs", st.RunsByTag)
	}
	if err := rig.dev.Mapping().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlayFixedGzipCompresses(t *testing.T) {
	reg := defaultTestRegistry(t)
	gz, _ := reg.ByName("gz")
	rig := newTestRig(t, Options{
		Policy: Fixed("Gzip", gz),
		Data:   datagen.New(datagen.LinuxSrc(), 3),
	})
	st, err := rig.dev.Play(seqTrace(300, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.TrafficRatio() <= 1.2 {
		t.Fatalf("gzip traffic ratio = %v; want substantial compression", st.TrafficRatio())
	}
	if st.BytesByTag[compress.TagGZ] == 0 {
		t.Fatal("no bytes stored via gz")
	}
}

func TestVerifyReadsCatchAllSchemes(t *testing.T) {
	// With VerifyReads on, every read decompresses the stored payload and
	// compares against regenerated content; any engine bug fails the run.
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	bwz, _ := reg.ByName("bwz")
	policies := []Policy{Native(), Fixed("Lzf", lzf), Fixed("Bzip2", bwz)}
	if edc, err := DefaultElastic(reg); err == nil {
		policies = append(policies, edc)
	}
	for _, p := range policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rig := newTestRig(t, Options{Policy: p})
			st, err := rig.dev.Play(seqTrace(400, 500*time.Microsecond))
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if st.Err != nil {
				t.Fatalf("%s: %v", p.Name(), st.Err)
			}
			if st.Reads == 0 {
				t.Fatal("trace exercised no reads")
			}
		})
	}
}

func TestWriteThroughOnIncompressibleData(t *testing.T) {
	reg := defaultTestRegistry(t)
	edc, err := DefaultElastic(reg)
	if err != nil {
		t.Fatal(err)
	}
	rig := newTestRig(t, Options{
		Policy: edc,
		Data:   datagen.New(datagen.Media(), 5),
	})
	st, err := rig.dev.Play(seqTrace(300, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteThrough == 0 {
		t.Fatal("EDC never wrote through on a media volume")
	}
	// Most stored bytes should be uncompressed.
	if st.BytesByTag[compress.TagNone] < st.OrigBytes/2 {
		t.Fatalf("tag-none bytes = %d of %d", st.BytesByTag[compress.TagNone], st.OrigBytes)
	}
}

func TestFixedCompressesEvenIncompressible(t *testing.T) {
	// The paper's complaint about fixed schemes: they burn CPU on
	// incompressible data. Fixed-Gzip on a media volume must attempt
	// compression on every run (WriteThrough stays 0) and end up storing
	// nearly raw-size data.
	reg := defaultTestRegistry(t)
	gz, _ := reg.ByName("gz")
	rig := newTestRig(t, Options{
		Policy: Fixed("Gzip", gz),
		Data:   datagen.New(datagen.Media(), 6),
	})
	st, err := rig.dev.Play(seqTrace(200, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteThrough != 0 {
		t.Fatal("fixed policy must not use the estimator")
	}
	if st.TrafficRatio() > 1.5 {
		t.Fatalf("media volume compressed %vx; expected near 1", st.TrafficRatio())
	}
	if st.Oversize == 0 {
		t.Fatal("expected some runs to miss the 75% slot on media data")
	}
}

func TestElasticUsesIntensity(t *testing.T) {
	// Low-rate trace -> gz; the same requests at a high rate -> lzf/none.
	reg := defaultTestRegistry(t)
	build := func(gap time.Duration) *RunStats {
		edc, err := DefaultElastic(reg)
		if err != nil {
			t.Fatal(err)
		}
		rig := newTestRig(t, Options{
			Policy: edc,
			Data:   datagen.New(datagen.LinuxSrc(), 7),
			// A short window so the 0.2 s burst trace saturates the
			// monitor quickly instead of spending the whole run warming
			// the default 1 s window up.
			MonitorWindow: 100 * time.Millisecond,
		})
		// Write-only trace, non-contiguous offsets so runs stay small.
		tr := &trace.Trace{Name: "x"}
		for i := 0; i < 1500; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Arrival: time.Duration(i) * gap,
				Offset:  int64(i%300) * 65536,
				Size:    4096,
				Write:   true,
			})
		}
		st, err := rig.dev.Play(tr)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	slow := build(50 * time.Millisecond)  // 20 IOPS, below gz ceiling
	fast := build(100 * time.Microsecond) // ~10000 IOPS, above lzf ceiling
	if slow.BytesByTag[compress.TagGZ] == 0 {
		t.Fatalf("slow trace never used gz: %v", slow.BytesByTag)
	}
	if fast.BytesByTag[compress.TagGZ] > fast.OrigBytes/10 {
		t.Fatalf("fast trace used gz for %d of %d bytes", fast.BytesByTag[compress.TagGZ], fast.OrigBytes)
	}
	// The fast trace should mostly skip compression entirely.
	if fast.BytesByTag[compress.TagNone] < fast.OrigBytes/2 {
		t.Fatalf("fast trace compressed too much: %v", fast.BytesByTag)
	}
}

func TestSDMergingReducesRuns(t *testing.T) {
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	mk := func(disable bool) *RunStats {
		rig := newTestRig(t, Options{Policy: Fixed("Lzf", lzf), DisableSD: disable})
		tr := &trace.Trace{Name: "seq"}
		// 10 bursts of 8 perfectly sequential 8K writes.
		for b := 0; b < 10; b++ {
			base := int64(b) * (1 << 20)
			for i := 0; i < 8; i++ {
				tr.Requests = append(tr.Requests, trace.Request{
					Arrival: time.Duration(b)*time.Second + time.Duration(i)*100*time.Microsecond,
					Offset:  base + int64(i)*8192,
					Size:    8192,
					Write:   true,
				})
			}
		}
		st, err := rig.dev.Play(tr)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	merged := mk(false)
	unmerged := mk(true)
	if merged.SDRuns >= unmerged.SDRuns {
		t.Fatalf("SD did not reduce runs: %d vs %d", merged.SDRuns, unmerged.SDRuns)
	}
	if merged.SDMerged == 0 {
		t.Fatal("no writes merged")
	}
	// Merging should improve the compression ratio (bigger blocks).
	if merged.TrafficRatio() < unmerged.TrafficRatio() {
		t.Fatalf("merged ratio %.2f < unmerged %.2f", merged.TrafficRatio(), unmerged.TrafficRatio())
	}
}

func TestIdleFlushTimer(t *testing.T) {
	// A lone write with no successor must still complete (idle flush).
	rig := newTestRig(t, Options{Policy: Native()})
	tr := &trace.Trace{Name: "lone", Requests: []trace.Request{
		{Arrival: 0, Offset: 0, Size: 4096, Write: true},
	}}
	st, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resp.Count() != 1 {
		t.Fatal("lone write never completed")
	}
	// Response includes the flush wait, bounded by the timeout plus
	// device time.
	if st.Resp.Mean() > DefaultFlushTimeout+5*time.Millisecond {
		t.Fatalf("lone write response = %v", st.Resp.Mean())
	}
	if st.Resp.Mean() < DefaultFlushTimeout/2 {
		t.Fatalf("lone write response %v too fast to include flush wait", st.Resp.Mean())
	}
}

func TestDeviceSpaceExhaustion(t *testing.T) {
	// A tiny backend with an (allowed) equal-size volume fills up under
	// partial overwrites that strand dead extent space.
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 8 // 2 MiB raw, ~1.9 MiB logical
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	be := NewSingleSSD(eng, d)
	dev, err := NewDevice(eng, be, be.LogicalBytes(), Options{Policy: Native()})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "fill"}
	// Large merged writes followed by single-block overwrites strand
	// partially-dead extents until allocation fails.
	for i := 0; i < 2000; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Millisecond,
			Offset:  int64(i%29) * 65536,
			Size:    65536,
			Write:   true,
		})
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i)*time.Millisecond + 500*time.Microsecond,
			Offset:  int64((i*7)%450) * 4096,
			Size:    4096,
			Write:   true,
		})
	}
	st, err := dev.Play(tr)
	if err == nil {
		t.Skip("volume did not fill; acceptable but not exercising ErrNoSpace")
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v; want ErrNoSpace", err)
	}
	if st == nil || st.Err == nil {
		t.Fatal("stats must record the error")
	}
}

func TestReplayRealisticWorkloadAllSchemes(t *testing.T) {
	// End-to-end: a bursty synthetic workload through every scheme with
	// verification on; checks mapping and FTL invariants afterwards.
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	gz, _ := reg.ByName("gz")
	prof := workload.Fin1(128 << 20)
	tr, err := prof.GenerateN(1500, 21)
	if err != nil {
		t.Fatal(err)
	}
	edc, _ := DefaultElastic(reg)
	for _, p := range []Policy{Native(), Fixed("Lzf", lzf), Fixed("Gzip", gz), edc} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rig := newTestRig(t, Options{Policy: p, Data: datagen.New(datagen.Enterprise(), 9)})
			st, err := rig.dev.Play(tr)
			if err != nil {
				t.Fatal(err)
			}
			if st.Resp.Count() != int64(len(tr.Requests)) {
				t.Fatalf("answered %d of %d", st.Resp.Count(), len(tr.Requests))
			}
			if err := rig.dev.Mapping().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPlayTwiceFails(t *testing.T) {
	rig := newTestRig(t, Options{Policy: Native()})
	if _, err := rig.dev.Play(seqTrace(10, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.dev.Play(seqTrace(10, time.Millisecond)); err == nil {
		t.Fatal("second Play should fail")
	}
}

func TestRAISBackendReplay(t *testing.T) {
	reg := defaultTestRegistry(t)
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 1024
	devs := make([]*ssd.SSD, 5)
	for i := range devs {
		d, err := ssd.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	arr, err := newRAIS5(devs)
	if err != nil {
		t.Fatal(err)
	}
	be := NewRAISBackend(eng, arr)
	edc, _ := DefaultElastic(reg)
	dev, err := NewDevice(eng, be, 256<<20, Options{
		Policy:      edc,
		Registry:    reg,
		Data:        datagen.New(datagen.Enterprise(), 10),
		VerifyReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dev.Play(seqTrace(500, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Resp.Count() != 500 {
		t.Fatalf("answered %d", st.Resp.Count())
	}
	if len(st.Devices) != 5 || len(st.Queues) != 5 {
		t.Fatalf("device stats = %d, queues = %d", len(st.Devices), len(st.Queues))
	}
	// Parity writes mean the array programs more pages than a single
	// device would for the same host traffic.
	var writes int64
	for _, ds := range st.Devices {
		writes += ds.HostPagesWritten
	}
	if writes == 0 {
		t.Fatal("no device writes recorded")
	}
}

func TestHostCacheServesHotReads(t *testing.T) {
	// Repeatedly read the same blocks: with a cache, later reads are
	// DRAM-fast and flash reads drop.
	mk := func(cacheBytes int64) *RunStats {
		rig := newTestRig(t, Options{Policy: Native(), CacheBytes: cacheBytes})
		tr := &trace.Trace{Name: "hot"}
		at := time.Duration(0)
		// Write 16 blocks once, then read them 20 times each.
		for i := 0; i < 16; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Arrival: at, Offset: int64(i) * 4096, Size: 4096, Write: true})
			at += time.Millisecond
		}
		for round := 0; round < 20; round++ {
			for i := 0; i < 16; i++ {
				tr.Requests = append(tr.Requests, trace.Request{
					Arrival: at, Offset: int64(i) * 4096, Size: 4096})
				at += time.Millisecond
			}
		}
		st, err := rig.dev.Play(tr)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	without := mk(0)
	with := mk(1 << 20)
	if with.Cache.HitRate() < 0.9 {
		t.Fatalf("hit rate = %v; want ~1 for a resident hot set", with.Cache.HitRate())
	}
	if without.Cache.Hits != 0 {
		t.Fatal("disabled cache recorded hits")
	}
	var rw, rwo int64
	for _, d := range with.Devices {
		rw += d.HostPagesRead
	}
	for _, d := range without.Devices {
		rwo += d.HostPagesRead
	}
	if rw >= rwo/5 {
		t.Fatalf("cached flash reads = %d; want far below %d", rw, rwo)
	}
	if with.RespRead.Mean() >= without.RespRead.Mean() {
		t.Fatalf("cached read mean %v not below uncached %v",
			with.RespRead.Mean(), without.RespRead.Mean())
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	// A working set larger than the cache must evict: hit rate well
	// below 1 but above 0.
	rig := newTestRig(t, Options{Policy: Native(), CacheBytes: 8 * 4096})
	tr := &trace.Trace{Name: "churn"}
	at := time.Duration(0)
	for i := 0; i < 64; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: at, Offset: int64(i%32) * 4096, Size: 4096, Write: i < 32})
		at += time.Millisecond
	}
	st, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Evictions == 0 {
		t.Fatal("expected evictions with an 8-block cache and 32-block set")
	}
}

func TestOffloadMovesCompressionOffHostCPU(t *testing.T) {
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	mk := func(offload bool) *RunStats {
		rig := newTestRig(t, Options{Policy: Fixed("Lzf", lzf), Offload: offload})
		st, err := rig.dev.Play(seqTrace(500, 300*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	host := mk(false)
	dev := mk(true)
	if dev.CPU.BusyTime >= host.CPU.BusyTime/10 {
		t.Fatalf("offload host CPU busy %v; want far below host-side %v",
			dev.CPU.BusyTime, host.CPU.BusyTime)
	}
	// Same data stored either way.
	if dev.StoredBytes != host.StoredBytes {
		t.Fatalf("stored bytes differ: %d vs %d", dev.StoredBytes, host.StoredBytes)
	}
	// The device queue absorbs the codec engine time instead.
	if dev.Queues[0].BusyTime <= host.Queues[0].BusyTime {
		t.Fatalf("offload device busy %v not above host-side %v",
			dev.Queues[0].BusyTime, host.Queues[0].BusyTime)
	}
}

func TestRunStatsStringAndHelpers(t *testing.T) {
	rig := newTestRig(t, Options{Policy: Native()})
	st, err := rig.dev.Play(seqTrace(60, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := st.String()
	for _, want := range []string{"Native", "mean=", "ratio="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
	if st.CodecRatio() != 1.0 {
		t.Fatalf("native codec ratio = %v", st.CodecRatio())
	}
	if st.TotalErases() != 0 {
		t.Fatalf("erases = %d on a light trace", st.TotalErases())
	}
	if st.TotalFlashWrites() == 0 {
		t.Fatal("no flash writes recorded")
	}
	if st.Composite() <= 0 {
		t.Fatalf("composite = %v", st.Composite())
	}
}
