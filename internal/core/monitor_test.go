package core

import (
	"testing"
	"time"
)

func TestUnits(t *testing.T) {
	cases := []struct {
		bytes int64
		want  float64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {65536, 16},
	}
	for _, c := range cases {
		if got := units(c.bytes); got != c.want {
			t.Errorf("units(%d) = %v; want %v", c.bytes, got, c.want)
		}
	}
}

func TestCalculatedIOPSSteadyState(t *testing.T) {
	m := NewMonitor(time.Second, 10)
	// 100 requests of 4K spread over 1 second => 100 calculated IOPS.
	for i := 0; i < 100; i++ {
		m.Record(time.Duration(i)*10*time.Millisecond, 4096)
	}
	got := m.CalculatedIOPS(time.Second)
	if got < 80 || got > 110 {
		t.Fatalf("cIOPS = %v; want ~100", got)
	}
}

func TestCalculatedIOPSNormalizesBySize(t *testing.T) {
	m := NewMonitor(time.Second, 10)
	// 10 requests of 64K in one second => 160 calculated IOPS (16 units
	// each), even though raw IOPS is 10 (the paper's 8K = 2x4K example).
	for i := 0; i < 10; i++ {
		m.Record(time.Duration(i)*100*time.Millisecond, 65536)
	}
	got := m.CalculatedIOPS(999 * time.Millisecond)
	if got < 140 || got > 170 {
		t.Fatalf("cIOPS = %v; want ~160", got)
	}
}

func TestMonitorWindowAging(t *testing.T) {
	m := NewMonitor(time.Second, 10)
	for i := 0; i < 100; i++ {
		m.Record(time.Duration(i)*10*time.Millisecond, 4096)
	}
	if got := m.CalculatedIOPS(time.Second); got < 50 {
		t.Fatalf("cIOPS right after burst = %v", got)
	}
	// Two seconds later the window has fully aged out.
	if got := m.CalculatedIOPS(3 * time.Second); got != 0 {
		t.Fatalf("cIOPS after idle = %v; want 0", got)
	}
}

func TestMonitorPartialAging(t *testing.T) {
	m := NewMonitor(time.Second, 10)
	m.Record(0, 4096)
	m.Record(900*time.Millisecond, 4096)
	// At t=1.5s only the second record remains in the 1s window.
	got := m.CalculatedIOPS(1500 * time.Millisecond)
	if got != 1 {
		t.Fatalf("cIOPS = %v; want 1", got)
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(time.Second, 10)
	m.Record(0, 4096)
	m.Reset()
	if got := m.CalculatedIOPS(0); got != 0 {
		t.Fatalf("cIOPS after reset = %v", got)
	}
}

func TestMonitorDefaults(t *testing.T) {
	m := NewMonitor(0, 0)
	if m.Window() != time.Second {
		t.Fatalf("default window = %v", m.Window())
	}
	m.Record(0, 4096)
	if got := m.CalculatedIOPS(0); got != 1 {
		t.Fatalf("cIOPS = %v", got)
	}
}
