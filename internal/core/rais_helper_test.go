package core

import (
	"edc/internal/rais"
	"edc/internal/ssd"
)

// newRAIS5 builds a RAIS5 array with a 16-page (64 KiB) stripe unit.
func newRAIS5(devs []*ssd.SSD) (*rais.Array, error) {
	return rais.New(rais.RAIS5, devs, 16)
}
