package core

import (
	"fmt"
	"time"

	"edc/internal/fault"
	"edc/internal/obs"
	"edc/internal/rais"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// Backend abstracts the flash storage under EDC: a single SSD or a RAIS
// array. Operations are asynchronous in virtual time: done fires when the
// device(s) complete the transfer, including any queueing behind earlier
// operations. done receives the operation outcome — nil, or a
// *fault.Error when an attached fault plan failed the operation (the
// device still occupied its queue for the attempt). Backends without an
// injected plan always complete with nil.
type Backend interface {
	// LogicalBytes is the host-visible capacity EDC may allocate from.
	LogicalBytes() int64
	// PageSize is the device page granularity in bytes.
	PageSize() int
	// Read fetches bytes at devOff; extra adds device-side service time
	// (e.g. an in-FTL decompression engine).
	Read(devOff, bytes int64, extra time.Duration, done func(err error))
	// Write stores bytes at devOff; extra adds device-side service time
	// (e.g. an in-FTL compression engine).
	Write(devOff, bytes int64, extra time.Duration, done func(err error))
	// Trim discards whole pages covered by [devOff, devOff+bytes).
	Trim(devOff, bytes int64)
	// DeviceStats snapshots per-member device counters.
	DeviceStats() []ssd.Stats
	// QueueStats snapshots per-member device queue counters.
	QueueStats() []sim.Stats
	// Describe returns a short human-readable backend description.
	Describe() string
}

// FaultInjectable is implemented by backends that can consult a fault
// plan on every operation. NewDevice calls InjectFaults when
// Options.Faults is active; col and st receive the backend-level fault
// observations (injected faults, degraded-read reconstructions).
type FaultInjectable interface {
	// InjectFaults attaches the plan's per-device decision streams.
	InjectFaults(p *fault.Plan, col *obs.Collector, st *RunStats)
}

// span converts a byte extent to a (lpn, pages) pair clamped to
// maxPages. The page count depends only on the transfer size — EDC packs
// compressed slots into pages (paper Fig. 5), so an n-byte object
// occupies ceil(n/pageSize) pages regardless of its byte offset within
// the packed log.
func span(devOff, bytes int64, pageSize int, maxPages int64) (lpn, pages int64) {
	if bytes <= 0 {
		return 0, 0
	}
	ps := int64(pageSize)
	start := devOff / ps
	n := (bytes + ps - 1) / ps
	if start+n > maxPages {
		start = maxPages - n
		if start < 0 {
			start = 0
			n = maxPages
		}
	}
	return start, n
}

// trimSpan returns the whole pages fully inside [devOff, devOff+bytes).
func trimSpan(devOff, bytes int64, pageSize int, maxPages int64) (lpn, pages int64) {
	ps := int64(pageSize)
	start := (devOff + ps - 1) / ps
	end := (devOff + bytes) / ps
	if end > maxPages {
		end = maxPages
	}
	if start >= end {
		return 0, 0
	}
	return start, end - start
}

// SingleSSD is a Backend over one simulated device with a FIFO queue.
type SingleSSD struct {
	dev *ssd.SSD
	st  *sim.Station
	eng *sim.Engine

	inj    *fault.Injector
	fobs   *obs.Collector
	fstats *RunStats
}

// NewSingleSSD wires dev to a station on eng.
func NewSingleSSD(eng *sim.Engine, dev *ssd.SSD) *SingleSSD {
	return &SingleSSD{dev: dev, st: sim.NewStation(eng, "ssd0"), eng: eng}
}

// InjectFaults implements FaultInjectable.
func (b *SingleSSD) InjectFaults(p *fault.Plan, col *obs.Collector, st *RunStats) {
	b.inj = p.Injector(0)
	b.fobs = col
	b.fstats = st
}

// decide consults the injector for one operation (nil injector: clean).
func (b *SingleSSD) decide(write bool, lpn, bytes int64) (*fault.Error, time.Duration) {
	if b.inj == nil {
		return nil, 0
	}
	out := b.inj.Op(b.eng.Now(), write, lpn)
	if out.Err != nil {
		b.fstats.Faults++
		b.fobs.Fault(b.eng.Now(), out.Err.Op, 0, lpn*int64(b.PageSize()), bytes, out.Err.Transient)
	}
	return out.Err, out.Extra
}

// LogicalBytes implements Backend.
func (b *SingleSSD) LogicalBytes() int64 { return b.dev.LogicalBytes() }

// PageSize implements Backend.
func (b *SingleSSD) PageSize() int { return b.dev.Config().PageSize }

// Read implements Backend.
func (b *SingleSSD) Read(devOff, bytes int64, extra time.Duration, done func(err error)) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	svc, err := b.dev.ReadTime(lpn, pages*int64(b.PageSize()))
	if err != nil {
		panic(fmt.Sprintf("core: backend read: %v", err))
	}
	ferr, fextra := b.decide(false, lpn, bytes)
	b.st.Submit(sim.Job{Service: svc + extra + fextra, Done: func(_, _ time.Duration) { done(ferr.AsError()) }})
}

// Write implements Backend.
func (b *SingleSSD) Write(devOff, bytes int64, extra time.Duration, done func(err error)) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	svc, err := b.dev.WriteTime(lpn, pages*int64(b.PageSize()))
	if err != nil {
		panic(fmt.Sprintf("core: backend write: %v", err))
	}
	ferr, fextra := b.decide(true, lpn, bytes)
	b.st.Submit(sim.Job{Service: svc + extra + fextra, Done: func(_, _ time.Duration) { done(ferr.AsError()) }})
}

// Trim implements Backend.
func (b *SingleSSD) Trim(devOff, bytes int64) {
	lpn, pages := trimSpan(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	if pages == 0 {
		return
	}
	if err := b.dev.Trim(lpn, pages); err != nil {
		panic(fmt.Sprintf("core: backend trim: %v", err))
	}
}

// DeviceStats implements Backend.
func (b *SingleSSD) DeviceStats() []ssd.Stats { return []ssd.Stats{b.dev.Stats()} }

// QueueStats implements Backend.
func (b *SingleSSD) QueueStats() []sim.Stats { return []sim.Stats{b.st.Stats()} }

// Describe implements Backend.
func (b *SingleSSD) Describe() string {
	return fmt.Sprintf("single SSD (%d MiB logical)", b.dev.LogicalBytes()>>20)
}

// RAISBackend is a Backend over a rais.Array, with one queue per member
// device. Sub-operations on different members proceed in parallel; RAIS5
// read-modify-write runs its read phase before its write phase. With a
// fault plan injected, a hard read failure on a RAIS5 member triggers a
// degraded read: the missing stripe unit is reconstructed from the
// surviving members and the operation completes successfully (the
// paper's Fig. 11 array exists exactly for this).
type RAISBackend struct {
	arr *rais.Array
	sts []*sim.Station
	eng *sim.Engine

	injs   []*fault.Injector
	fobs   *obs.Collector
	fstats *RunStats
}

var (
	_ Backend         = (*SingleSSD)(nil)
	_ Backend         = (*RAISBackend)(nil)
	_ FaultInjectable = (*SingleSSD)(nil)
	_ FaultInjectable = (*RAISBackend)(nil)
	_ FaultInjectable = (*HDDBackend)(nil)
)

// NewRAISBackend wires each member device to its own station.
func NewRAISBackend(eng *sim.Engine, arr *rais.Array) *RAISBackend {
	sts := make([]*sim.Station, len(arr.Devices()))
	for i := range sts {
		sts[i] = sim.NewStation(eng, fmt.Sprintf("ssd%d", i))
	}
	return &RAISBackend{arr: arr, sts: sts, eng: eng}
}

// InjectFaults implements FaultInjectable: each member device gets its
// own decorrelated decision stream.
func (b *RAISBackend) InjectFaults(p *fault.Plan, col *obs.Collector, st *RunStats) {
	b.injs = make([]*fault.Injector, len(b.sts))
	for i := range b.injs {
		b.injs[i] = p.Injector(i)
	}
	b.fobs = col
	b.fstats = st
}

// LogicalBytes implements Backend.
func (b *RAISBackend) LogicalBytes() int64 { return b.arr.LogicalBytes() }

// PageSize implements Backend.
func (b *RAISBackend) PageSize() int { return b.arr.PageSize() }

// issueExtra submits sub-ops to member stations (adding extra service
// time to each, e.g. a per-device in-FTL codec engine), calling next
// when all complete. Fault outcomes are decided at submit time in
// sub-op order, so the decision stream is deterministic; next receives
// the first (by completion) sub-op error, with RAIS5 hard read failures
// absorbed by degraded reads.
func (b *RAISBackend) issueExtra(ops []rais.SubOp, extra time.Duration, next func(err error)) {
	if len(ops) == 0 {
		next(nil)
		return
	}
	remaining := len(ops)
	var firstErr error
	devs := b.arr.Devices()
	sub := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			next(firstErr)
		}
	}
	for _, op := range ops {
		var svc time.Duration
		var err error
		if op.Write {
			svc, err = devs[op.Dev].WriteTime(op.LPN, op.Bytes)
		} else {
			svc, err = devs[op.Dev].ReadTime(op.LPN, op.Bytes)
		}
		if err != nil {
			panic(fmt.Sprintf("core: rais sub-op: %v", err))
		}
		var ferr *fault.Error
		if b.injs != nil {
			out := b.injs[op.Dev].Op(b.eng.Now(), op.Write, op.LPN)
			svc += out.Extra
			if out.Err != nil {
				ferr = out.Err
				b.fstats.Faults++
				b.fobs.Fault(b.eng.Now(), ferr.Op, op.Dev, op.LPN*int64(b.PageSize()), op.Bytes, ferr.Transient)
			}
		}
		if ferr != nil && !op.Write && !ferr.Transient && b.arr.Level() == rais.RAIS5 {
			// The member failed the read for good; after the attempt's
			// service time, rebuild its stripe unit from the survivors.
			op := op
			b.sts[op.Dev].Submit(sim.Job{Service: svc + extra, Done: func(_, _ time.Duration) {
				b.degradedRead(op, sub)
			}})
			continue
		}
		e := ferr.AsError()
		b.sts[op.Dev].Submit(sim.Job{Service: svc + extra, Done: func(_, _ time.Duration) { sub(e) }})
	}
}

// degradedRead reconstructs one failed member's stripe unit by reading
// the same device pages from every surviving member (the left-symmetric
// layout keeps a stripe's units at identical device-page indices).
// Reconstruction reads bypass fault injection: the model injects one
// failure per stripe, matching RAIS5's single-failure tolerance.
func (b *RAISBackend) degradedRead(op rais.SubOp, done func(err error)) {
	start := b.eng.Now()
	b.fstats.DegradedReads++
	b.fobs.DegradedRead(start, op.Dev, op.LPN*int64(b.PageSize()), op.Bytes)
	devs := b.arr.Devices()
	remaining := len(devs) - 1
	for i := range devs {
		if i == op.Dev {
			continue
		}
		svc, err := devs[i].ReadTime(op.LPN, op.Bytes)
		if err != nil {
			panic(fmt.Sprintf("core: rais degraded read: %v", err))
		}
		b.sts[i].Submit(sim.Job{Service: svc, Done: func(_, _ time.Duration) {
			remaining--
			if remaining == 0 {
				b.fstats.DegradedReadTime += b.eng.Now() - start
				done(nil)
			}
		}})
	}
}

// Read implements Backend.
func (b *RAISBackend) Read(devOff, bytes int64, extra time.Duration, done func(err error)) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		done(nil)
		return
	}
	ops, err := b.arr.MapRead(lpn, pages)
	if err != nil {
		panic(fmt.Sprintf("core: rais read map: %v", err))
	}
	b.issueExtra(ops, extra, done)
}

// Write implements Backend.
func (b *RAISBackend) Write(devOff, bytes int64, extra time.Duration, done func(err error)) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		done(nil)
		return
	}
	ops, err := b.arr.MapWrite(lpn, pages)
	if err != nil {
		panic(fmt.Sprintf("core: rais write map: %v", err))
	}
	// Split read-modify-write into its two phases: parity/old-data reads
	// complete before any write is issued. A failed read phase aborts the
	// write phase and reports the read error.
	var reads, writes []rais.SubOp
	for _, op := range ops {
		if op.Write {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	b.issueExtra(reads, 0, func(err error) {
		if err != nil {
			done(err)
			return
		}
		b.issueExtra(writes, extra, done)
	})
}

// Trim implements Backend.
func (b *RAISBackend) Trim(devOff, bytes int64) {
	lpn, pages := trimSpan(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		return
	}
	ops, err := b.arr.MapRead(lpn, pages) // data placement, no parity
	if err != nil {
		return
	}
	ps := int64(b.PageSize())
	for _, op := range ops {
		if err := b.arr.Devices()[op.Dev].Trim(op.LPN, op.Bytes/ps); err != nil {
			panic(fmt.Sprintf("core: rais trim: %v", err))
		}
	}
}

// DeviceStats implements Backend.
func (b *RAISBackend) DeviceStats() []ssd.Stats {
	out := make([]ssd.Stats, 0, len(b.arr.Devices()))
	for _, d := range b.arr.Devices() {
		out = append(out, d.Stats())
	}
	return out
}

// QueueStats implements Backend.
func (b *RAISBackend) QueueStats() []sim.Stats {
	out := make([]sim.Stats, 0, len(b.sts))
	for _, s := range b.sts {
		out = append(out, s.Stats())
	}
	return out
}

// Describe implements Backend.
func (b *RAISBackend) Describe() string {
	return fmt.Sprintf("%s x%d (%d MiB logical)", b.arr.Level(), len(b.sts), b.arr.LogicalBytes()>>20)
}
