package core

import (
	"fmt"
	"time"

	"edc/internal/rais"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// Backend abstracts the flash storage under EDC: a single SSD or a RAIS
// array. Operations are asynchronous in virtual time: done fires when the
// device(s) complete the transfer, including any queueing behind earlier
// operations.
type Backend interface {
	// LogicalBytes is the host-visible capacity EDC may allocate from.
	LogicalBytes() int64
	// PageSize is the device page granularity in bytes.
	PageSize() int
	// Read fetches bytes at devOff; extra adds device-side service time
	// (e.g. an in-FTL decompression engine).
	Read(devOff, bytes int64, extra time.Duration, done func())
	// Write stores bytes at devOff; extra adds device-side service time
	// (e.g. an in-FTL compression engine).
	Write(devOff, bytes int64, extra time.Duration, done func())
	// Trim discards whole pages covered by [devOff, devOff+bytes).
	Trim(devOff, bytes int64)
	// DeviceStats snapshots per-member device counters.
	DeviceStats() []ssd.Stats
	// QueueStats snapshots per-member device queue counters.
	QueueStats() []sim.Stats
	// Describe returns a short human-readable backend description.
	Describe() string
}

// span converts a byte extent to a (lpn, pages) pair clamped to
// maxPages. The page count depends only on the transfer size — EDC packs
// compressed slots into pages (paper Fig. 5), so an n-byte object
// occupies ceil(n/pageSize) pages regardless of its byte offset within
// the packed log.
func span(devOff, bytes int64, pageSize int, maxPages int64) (lpn, pages int64) {
	if bytes <= 0 {
		return 0, 0
	}
	ps := int64(pageSize)
	start := devOff / ps
	n := (bytes + ps - 1) / ps
	if start+n > maxPages {
		start = maxPages - n
		if start < 0 {
			start = 0
			n = maxPages
		}
	}
	return start, n
}

// trimSpan returns the whole pages fully inside [devOff, devOff+bytes).
func trimSpan(devOff, bytes int64, pageSize int, maxPages int64) (lpn, pages int64) {
	ps := int64(pageSize)
	start := (devOff + ps - 1) / ps
	end := (devOff + bytes) / ps
	if end > maxPages {
		end = maxPages
	}
	if start >= end {
		return 0, 0
	}
	return start, end - start
}

// SingleSSD is a Backend over one simulated device with a FIFO queue.
type SingleSSD struct {
	dev *ssd.SSD
	st  *sim.Station
}

// NewSingleSSD wires dev to a station on eng.
func NewSingleSSD(eng *sim.Engine, dev *ssd.SSD) *SingleSSD {
	return &SingleSSD{dev: dev, st: sim.NewStation(eng, "ssd0")}
}

// LogicalBytes implements Backend.
func (b *SingleSSD) LogicalBytes() int64 { return b.dev.LogicalBytes() }

// PageSize implements Backend.
func (b *SingleSSD) PageSize() int { return b.dev.Config().PageSize }

// Read implements Backend.
func (b *SingleSSD) Read(devOff, bytes int64, extra time.Duration, done func()) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	svc, err := b.dev.ReadTime(lpn, pages*int64(b.PageSize()))
	if err != nil {
		panic(fmt.Sprintf("core: backend read: %v", err))
	}
	b.st.Submit(sim.Job{Service: svc + extra, Done: func(_, _ time.Duration) { done() }})
}

// Write implements Backend.
func (b *SingleSSD) Write(devOff, bytes int64, extra time.Duration, done func()) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	svc, err := b.dev.WriteTime(lpn, pages*int64(b.PageSize()))
	if err != nil {
		panic(fmt.Sprintf("core: backend write: %v", err))
	}
	b.st.Submit(sim.Job{Service: svc + extra, Done: func(_, _ time.Duration) { done() }})
}

// Trim implements Backend.
func (b *SingleSSD) Trim(devOff, bytes int64) {
	lpn, pages := trimSpan(devOff, bytes, b.PageSize(), b.dev.LogicalPages())
	if pages == 0 {
		return
	}
	if err := b.dev.Trim(lpn, pages); err != nil {
		panic(fmt.Sprintf("core: backend trim: %v", err))
	}
}

// DeviceStats implements Backend.
func (b *SingleSSD) DeviceStats() []ssd.Stats { return []ssd.Stats{b.dev.Stats()} }

// QueueStats implements Backend.
func (b *SingleSSD) QueueStats() []sim.Stats { return []sim.Stats{b.st.Stats()} }

// Describe implements Backend.
func (b *SingleSSD) Describe() string {
	return fmt.Sprintf("single SSD (%d MiB logical)", b.dev.LogicalBytes()>>20)
}

// RAISBackend is a Backend over a rais.Array, with one queue per member
// device. Sub-operations on different members proceed in parallel; RAIS5
// read-modify-write runs its read phase before its write phase.
type RAISBackend struct {
	arr *rais.Array
	sts []*sim.Station
}

var (
	_ Backend = (*SingleSSD)(nil)
	_ Backend = (*RAISBackend)(nil)
)

// NewRAISBackend wires each member device to its own station.
func NewRAISBackend(eng *sim.Engine, arr *rais.Array) *RAISBackend {
	sts := make([]*sim.Station, len(arr.Devices()))
	for i := range sts {
		sts[i] = sim.NewStation(eng, fmt.Sprintf("ssd%d", i))
	}
	return &RAISBackend{arr: arr, sts: sts}
}

// LogicalBytes implements Backend.
func (b *RAISBackend) LogicalBytes() int64 { return b.arr.LogicalBytes() }

// PageSize implements Backend.
func (b *RAISBackend) PageSize() int { return b.arr.PageSize() }

// issueExtra submits sub-ops to member stations (adding extra service
// time to each, e.g. a per-device in-FTL codec engine), calling next
// when all complete.
func (b *RAISBackend) issueExtra(ops []rais.SubOp, extra time.Duration, next func()) {
	if len(ops) == 0 {
		next()
		return
	}
	remaining := len(ops)
	devs := b.arr.Devices()
	for _, op := range ops {
		var svc time.Duration
		var err error
		if op.Write {
			svc, err = devs[op.Dev].WriteTime(op.LPN, op.Bytes)
		} else {
			svc, err = devs[op.Dev].ReadTime(op.LPN, op.Bytes)
		}
		if err != nil {
			panic(fmt.Sprintf("core: rais sub-op: %v", err))
		}
		b.sts[op.Dev].Submit(sim.Job{Service: svc + extra, Done: func(_, _ time.Duration) {
			remaining--
			if remaining == 0 {
				next()
			}
		}})
	}
}

// Read implements Backend.
func (b *RAISBackend) Read(devOff, bytes int64, extra time.Duration, done func()) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		done()
		return
	}
	ops, err := b.arr.MapRead(lpn, pages)
	if err != nil {
		panic(fmt.Sprintf("core: rais read map: %v", err))
	}
	b.issueExtra(ops, extra, done)
}

// Write implements Backend.
func (b *RAISBackend) Write(devOff, bytes int64, extra time.Duration, done func()) {
	lpn, pages := span(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		done()
		return
	}
	ops, err := b.arr.MapWrite(lpn, pages)
	if err != nil {
		panic(fmt.Sprintf("core: rais write map: %v", err))
	}
	// Split read-modify-write into its two phases: parity/old-data reads
	// complete before any write is issued.
	var reads, writes []rais.SubOp
	for _, op := range ops {
		if op.Write {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	b.issueExtra(reads, 0, func() { b.issueExtra(writes, extra, done) })
}

// Trim implements Backend.
func (b *RAISBackend) Trim(devOff, bytes int64) {
	lpn, pages := trimSpan(devOff, bytes, b.PageSize(), b.arr.LogicalPages())
	if pages == 0 {
		return
	}
	ops, err := b.arr.MapRead(lpn, pages) // data placement, no parity
	if err != nil {
		return
	}
	ps := int64(b.PageSize())
	for _, op := range ops {
		if err := b.arr.Devices()[op.Dev].Trim(op.LPN, op.Bytes/ps); err != nil {
			panic(fmt.Sprintf("core: rais trim: %v", err))
		}
	}
}

// DeviceStats implements Backend.
func (b *RAISBackend) DeviceStats() []ssd.Stats {
	out := make([]ssd.Stats, 0, len(b.arr.Devices()))
	for _, d := range b.arr.Devices() {
		out = append(out, d.Stats())
	}
	return out
}

// QueueStats implements Backend.
func (b *RAISBackend) QueueStats() []sim.Stats {
	out := make([]sim.Stats, 0, len(b.sts))
	for _, s := range b.sts {
		out = append(out, s.Stats())
	}
	return out
}

// Describe implements Backend.
func (b *RAISBackend) Describe() string {
	return fmt.Sprintf("%s x%d (%d MiB logical)", b.arr.Level(), len(b.sts), b.arr.LogicalBytes()>>20)
}
