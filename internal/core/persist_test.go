package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"edc/internal/compress"
)

// buildMapping creates a mapping with a mix of whole, partially-dead and
// overwritten extents.
func buildMapping(t *testing.T, seed int64) (*Mapping, *Allocator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	volume := int64(4 << 20)
	alloc := NewAllocator(volume * 2)
	m := NewMapping(volume, alloc, nil)
	tags := []compress.Tag{compress.TagNone, compress.TagLZF, compress.TagGZ, compress.TagBWZ}
	for i := 0; i < 120; i++ {
		blocks := int64(rng.Intn(8) + 1)
		maxStart := volume/BlockSize - blocks
		off := rng.Int63n(maxStart+1) * BlockSize
		size := blocks * BlockSize
		tag := tags[rng.Intn(len(tags))]
		comp := size
		slot := size
		if tag != compress.TagNone {
			comp = size/2 + int64(rng.Intn(int(size/4)))
			slot, _ = QuantizeSlot(size, comp)
		}
		devOff, err := alloc.Alloc(slot)
		if err != nil {
			t.Fatal(err)
		}
		e := &Extent{Offset: off, OrigLen: size, CompLen: comp, SlotLen: slot,
			Tag: tag, DevOff: devOff, Version: uint32(i)}
		if err := m.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return m, alloc
}

func TestSnapshotRoundTrip(t *testing.T) {
	m, alloc := buildMapping(t, 7)
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	alloc2 := NewAllocator(alloc.Capacity())
	m2, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), alloc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m2.LiveBlocks() != m.LiveBlocks() || m2.Extents() != m.Extents() {
		t.Fatalf("restored live=%d extents=%d; want %d/%d",
			m2.LiveBlocks(), m2.Extents(), m.LiveBlocks(), m.Extents())
	}
	if m2.DeadSlotBytes() != m.DeadSlotBytes() {
		t.Fatalf("dead bytes %d; want %d", m2.DeadSlotBytes(), m.DeadSlotBytes())
	}
	if alloc2.InUse() != alloc.InUse() {
		t.Fatalf("alloc in-use %d; want %d", alloc2.InUse(), alloc.InUse())
	}
	// Per-block identity: each mapped block resolves to an equal extent.
	for b := int64(0); b < m.VolumeBlocks(); b++ {
		a := m.Lookup(b * BlockSize)
		bb := m2.Lookup(b * BlockSize)
		if (a == nil) != (bb == nil) {
			t.Fatalf("block %d mapped mismatch", b)
		}
		if a == nil {
			continue
		}
		if a.Offset != bb.Offset || a.OrigLen != bb.OrigLen || a.CompLen != bb.CompLen ||
			a.SlotLen != bb.SlotLen || a.Tag != bb.Tag || a.DevOff != bb.DevOff ||
			a.Version != bb.Version {
			t.Fatalf("block %d extent mismatch: %+v vs %+v", b, a, bb)
		}
	}
	// The restored allocator keeps working: new allocations land in gaps
	// or fresh space without overlapping restored slots.
	if _, err := alloc2.Alloc(4096); err != nil {
		t.Fatalf("post-restore alloc: %v", err)
	}
}

func TestSnapshotEmptyMapping(t *testing.T) {
	alloc := NewAllocator(1 << 20)
	m := NewMapping(1<<20, alloc, nil)
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), NewAllocator(1<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LiveBlocks() != 0 || m2.VolumeBlocks() != m.VolumeBlocks() {
		t.Fatalf("restored empty mapping wrong: %d blocks", m2.LiveBlocks())
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	m, alloc := buildMapping(t, 9)
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rng := rand.New(rand.NewSource(11))
	// Trailing garbage after the CRC trailer is legal (the snapshot may be
	// embedded in a larger stream), so corruption here means bit flips and
	// truncation.
	for trial := 0; trial < 40; trial++ {
		bad := append([]byte(nil), data...)
		switch trial % 2 {
		case 0: // bit flip
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		case 1: // truncate
			bad = bad[:rng.Intn(len(bad))]
		}
		if bytes.Equal(bad, data) {
			continue
		}
		_, err := LoadSnapshot(bytes.NewReader(bad), NewAllocator(alloc.Capacity()), nil)
		if err == nil {
			// A bit flip confined to padding-free fields must be caught by
			// the CRC; any silent success is a bug.
			t.Fatalf("trial %d: corruption not detected", trial)
		}
	}
}

func TestSnapshotBadMagicAndVersion(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("NOPE")), NewAllocator(1<<20), nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v", err)
	}
}

func TestRebuildValidation(t *testing.T) {
	a := NewAllocator(1 << 20)
	if err := a.Rebuild([]Range{{Off: 0, Len: 4096}, {Off: 2048, Len: 4096}}); err == nil {
		t.Fatal("overlapping ranges should fail")
	}
	a = NewAllocator(1 << 20)
	if err := a.Rebuild([]Range{{Off: 1 << 20, Len: 4096}}); err == nil {
		t.Fatal("out-of-capacity range should fail")
	}
	a = NewAllocator(1 << 20)
	if err := a.Rebuild([]Range{{Off: 8192, Len: 4096}}); err != nil {
		t.Fatal(err)
	}
	// The 8K gap before the reservation is reusable.
	off, err := a.Alloc(8192)
	if err != nil || off != 0 {
		t.Fatalf("gap alloc = %d, %v", off, err)
	}
}
