package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/fault"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
)

// freshSSDRig returns an engine + single-SSD backend without a device,
// for tests that build the device themselves (RecoverDevice).
func freshSSDRig(t *testing.T) (*sim.Engine, Backend) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 2048
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewSingleSSD(eng, d)
}

func TestFaultWriteRetryRecovers(t *testing.T) {
	plan := &fault.Plan{Seed: 42, WriteTransient: 0.05}
	rig := newTestRig(t, Options{Policy: Native(), Faults: plan})
	st, err := rig.dev.Play(seqTrace(400, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Resp.Count() != 400 {
		t.Fatalf("answered %d, want 400 (transient faults must not lose requests)", st.Resp.Count())
	}
	if st.Faults == 0 || st.FaultRetries == 0 {
		t.Fatalf("faults = %d, retries = %d; want both > 0", st.Faults, st.FaultRetries)
	}
	if st.WriteReallocs != 0 {
		t.Fatalf("reallocs = %d; transient-only plan must not re-allocate", st.WriteReallocs)
	}
}

func TestFaultWriteHardReallocates(t *testing.T) {
	plan := &fault.Plan{Seed: 7, WriteHard: 0.05}
	rig := newTestRig(t, Options{Policy: Native(), Faults: plan})
	st, err := rig.dev.Play(seqTrace(400, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteReallocs == 0 {
		t.Fatal("hard write faults injected but no re-allocations recorded")
	}
	// VerifyReads is on: every post-realloc read checked content, so
	// reaching here means re-allocated writes stayed readable.
	if st.Resp.Count() != 400 {
		t.Fatalf("answered %d, want 400", st.Resp.Count())
	}
}

func TestFaultReadHardAbandonsOnSingleSSD(t *testing.T) {
	plan := &fault.Plan{Seed: 3, ReadHard: 0.05}
	rig := newTestRig(t, Options{Policy: Native(), Faults: plan})
	st, err := rig.dev.Play(seqTrace(400, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// A single SSD has no redundancy: hard read failures are counted as
	// unrecovered, and the replay still completes every request.
	if st.UnrecoveredReads == 0 {
		t.Fatal("hard read faults injected but none counted unrecovered")
	}
	if st.Resp.Count() != 400 {
		t.Fatalf("answered %d, want 400", st.Resp.Count())
	}
	if st.DegradedReads != 0 {
		t.Fatalf("degraded reads = %d on a single SSD", st.DegradedReads)
	}
}

func TestFaultDegradedReadRAIS5(t *testing.T) {
	reg := defaultTestRegistry(t)
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 1024
	devs := make([]*ssd.SSD, 5)
	for i := range devs {
		d, err := ssd.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	arr, err := newRAIS5(devs)
	if err != nil {
		t.Fatal(err)
	}
	be := NewRAISBackend(eng, arr)
	dev, err := NewDevice(eng, be, 256<<20, Options{
		Policy:      Native(),
		Registry:    reg,
		Data:        datagen.New(datagen.Enterprise(), 10),
		VerifyReads: true,
		Faults:      &fault.Plan{Seed: 5, ReadHard: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dev.Play(seqTrace(500, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedReads == 0 {
		t.Fatal("hard member-read faults on RAIS5 but no degraded reads recorded")
	}
	if st.DegradedReadTime <= 0 {
		t.Fatalf("degraded read time = %v, want > 0", st.DegradedReadTime)
	}
	if st.UnrecoveredReads != 0 {
		t.Fatalf("unrecovered = %d; RAIS5 parity must reconstruct single-member failures", st.UnrecoveredReads)
	}
	if st.Resp.Count() != 500 {
		t.Fatalf("answered %d, want 500", st.Resp.Count())
	}
}

func TestFaultStallSlowsResponses(t *testing.T) {
	run := func(plan *fault.Plan) *RunStats {
		rig := newTestRig(t, Options{Policy: Native(), Faults: plan})
		st, err := rig.dev.Play(seqTrace(300, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(nil)
	stalled := run(&fault.Plan{Seed: 1, Stalls: []fault.Stall{
		{Dev: 0, At: 50 * time.Millisecond, For: 40 * time.Millisecond},
	}})
	if stalled.Resp.Mean() <= base.Resp.Mean() {
		t.Fatalf("stall did not slow the run: stalled mean %v <= base mean %v",
			stalled.Resp.Mean(), base.Resp.Mean())
	}
}

func TestFaultReplayDeterminism(t *testing.T) {
	run := func() string {
		plan := &fault.Plan{
			Seed: 99, ReadTransient: 0.01, WriteTransient: 0.02,
			WriteHard: 0.005, SpikeRate: 0.01, SpikeLatency: 2 * time.Millisecond,
		}
		rig := newTestRig(t, Options{Faults: plan})
		st, err := rig.dev.Play(seqTrace(500, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return st.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two replays under the same fault plan diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

func TestCheckpointFoldMatchesLiveMapping(t *testing.T) {
	rig := newTestRig(t, Options{
		Policy:        Native(),
		SnapshotEvery: 50 * time.Millisecond,
	})
	if _, err := rig.dev.Play(seqTrace(300, 2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	per := rig.dev.per
	if per == nil {
		t.Fatal("SnapshotEvery set but no persister armed")
	}
	if len(per.snapshot) == 0 {
		t.Fatal("no checkpoint snapshot written")
	}
	m, _, err := recoverShadow(per.snapshot, per.jnl.Bytes(), rig.dev.se.alloc.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	live := rig.dev.se.mapping
	if m.LiveBlocks() != live.LiveBlocks() || m.Extents() != live.Extents() {
		t.Fatalf("recovered %d blocks/%d extents, live %d/%d",
			m.LiveBlocks(), m.Extents(), live.LiveBlocks(), live.Extents())
	}
}

func TestRecoverMappingTruncatedSnapshot(t *testing.T) {
	// Build a small mapping and snapshot it.
	alloc := NewAllocator(1 << 20)
	m := NewMapping(64*BlockSize, alloc, nil)
	var j Journal
	j.Append(&Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 5000, SlotLen: 8192, Tag: compress.TagLZF, Version: 1, DevOff: 0})
	if _, err := ReplayJournal(m, j.Bytes()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// A truncated snapshot is corruption, not tolerated damage.
	if _, _, err := RecoverMapping(snap[:len(snap)-5], nil, NewAllocator(1<<20)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated snapshot: err = %v, want ErrBadSnapshot", err)
	}

	// An intact snapshot with a torn journal tail recovers.
	var j2 Journal
	j2.Append(&Extent{Offset: 8 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 6000, SlotLen: 8192, Tag: compress.TagGZ, Version: 2, DevOff: 8192})
	j2.Append(&Extent{Offset: 16 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 6000, SlotLen: 8192, Tag: compress.TagGZ, Version: 3, DevOff: 16384})
	tornJnl := j2.Bytes()[:len(j2.Bytes())-9]
	rec, records, err := RecoverMapping(snap, tornJnl, NewAllocator(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if records != 1 {
		t.Fatalf("replayed %d records, want 1 (torn second dropped)", records)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rec.LiveBlocks() != 8 {
		t.Fatalf("live blocks = %d, want 8", rec.LiveBlocks())
	}
}

func TestPlayUntilRecoverResume(t *testing.T) {
	const cut = 500 * time.Millisecond
	tr := seqTrace(600, 2*time.Millisecond)
	opts := func() Options {
		return Options{
			Policy:      Native(),
			Data:        datagen.New(datagen.Enterprise(), 11),
			VerifyReads: true,
		}
	}

	// Phase 1: replay until the cut.
	eng1, be1 := freshSSDRig(t)
	o := opts()
	o.Registry = defaultTestRegistry(t)
	dev1, err := NewDevice(eng1, be1, 256<<20, o)
	if err != nil {
		t.Fatal(err)
	}
	st1, cs, err := dev1.PlayUntil(tr, cut)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CutAt != cut {
		t.Fatalf("cut at %v, want %v", cs.CutAt, cut)
	}
	if st1.CrashLost != cs.Lost {
		t.Fatalf("stats lost %d != crash state lost %d", st1.CrashLost, cs.Lost)
	}
	if st1.Resp.Count() == 0 {
		t.Fatal("no requests completed before the cut")
	}

	// Phase 2: recover onto a fresh device and replay the remainder.
	eng2, be2 := freshSSDRig(t)
	o2 := opts()
	o2.Registry = defaultTestRegistry(t)
	dev2, err := RecoverDevice(eng2, be2, 256<<20, o2, cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev2.se.mapping.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Strictly after the cut: an arrival at exactly cut was admitted by
	// RunUntil (events with time <= cut fire) and is completed or lost.
	rest := &trace.Trace{Name: tr.Name}
	for _, r := range tr.Requests {
		if r.Arrival > cut {
			rest.Requests = append(rest.Requests, r)
		}
	}
	st2, err := dev2.Play(rest)
	if err != nil {
		// VerifyReads is on, so a payload-regeneration bug in recovery
		// surfaces here as a content mismatch.
		t.Fatal(err)
	}
	if st2.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st2.Recoveries)
	}
	total := st1.Resp.Count() + cs.Lost + st2.Resp.Count()
	if total != int64(len(tr.Requests)) {
		t.Fatalf("completed(%d) + lost(%d) + resumed(%d) = %d, want %d",
			st1.Resp.Count(), cs.Lost, st2.Resp.Count(), total, len(tr.Requests))
	}
}

func TestPlayUntilSecondUse(t *testing.T) {
	rig := newTestRig(t, Options{Policy: Native()})
	if _, _, err := rig.dev.PlayUntil(seqTrace(50, time.Millisecond), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rig.dev.PlayUntil(seqTrace(50, time.Millisecond), 10*time.Millisecond); !errors.Is(err, ErrReplayed) {
		t.Fatalf("second PlayUntil: err = %v, want ErrReplayed", err)
	}
	if _, err := rig.dev.Play(seqTrace(50, time.Millisecond)); !errors.Is(err, ErrReplayed) {
		t.Fatalf("Play after PlayUntil: err = %v, want ErrReplayed", err)
	}
}
