package core

import (
	"time"
)

// UnitSize is the normalization unit for the paper's "calculated IOPS":
// a request of size s counts as ceil(s/UnitSize) I/Os (Sec. III-D uses
// 4 KB, the Linux page size).
const UnitSize = 4096

// Monitor measures I/O intensity as calculated IOPS over a sliding
// window, using fixed-width bins so old traffic ages out smoothly.
type Monitor struct {
	binWidth time.Duration
	bins     []float64 // ring buffer of unit counts
	binIdx   []int64   // absolute bin number stored in each slot
	window   time.Duration
}

// NewMonitor creates a monitor with the given sliding window, divided
// into nBins bins. A 1 s window with 10 bins reacts within ~100 ms.
func NewMonitor(window time.Duration, nBins int) *Monitor {
	if window <= 0 {
		window = time.Second
	}
	if nBins <= 0 {
		nBins = 10
	}
	m := &Monitor{
		binWidth: window / time.Duration(nBins),
		bins:     make([]float64, nBins),
		binIdx:   make([]int64, nBins),
		window:   window,
	}
	for i := range m.binIdx {
		m.binIdx[i] = -1
	}
	return m
}

// Window returns the sliding-window length.
func (m *Monitor) Window() time.Duration { return m.window }

// units converts a request size to 4 KB units (the "calculated" part).
func units(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64((bytes + UnitSize - 1) / UnitSize)
}

// Record notes a request of the given size arriving at virtual time now.
func (m *Monitor) Record(now time.Duration, bytes int64) {
	bin := int64(now / m.binWidth)
	slot := int(bin % int64(len(m.bins)))
	if m.binIdx[slot] != bin {
		m.bins[slot] = 0
		m.binIdx[slot] = bin
	}
	m.bins[slot] += units(bytes)
}

// CalculatedIOPS returns the 4 KB-normalized request rate over the
// window ending at now.
func (m *Monitor) CalculatedIOPS(now time.Duration) float64 {
	cur := int64(now / m.binWidth)
	oldest := cur - int64(len(m.bins)) + 1
	var sum float64
	for slot, bin := range m.binIdx {
		if bin >= oldest && bin <= cur {
			sum += m.bins[slot]
		}
	}
	return sum / m.window.Seconds()
}

// Reset clears the monitor.
func (m *Monitor) Reset() {
	for i := range m.bins {
		m.bins[i] = 0
		m.binIdx[i] = -1
	}
}
