package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"edc/internal/compress"
	"edc/internal/dedup"
	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/sim"
	"edc/internal/trace"
)

// Crash recovery
//
// A power cut stops the replay mid-flight: requests in the pipeline are
// lost, but every write whose device I/O completed is durable — its
// mapping record is in the journal (journal.go), and older state is in
// the last snapshot (persist.go). Recovery rebuilds the mapping by
// replaying the journal over the snapshot, rebuilds the allocator from
// the surviving extents, and resumes the replay from the cut.
//
// The simulated "disk" for the metadata is a pair of in-memory byte
// images owned by the persister; edcfsck -kind snapshot/journal checks
// the same images a recovery consumes.

// persister owns a device's crash-consistency state: the latest mapping
// snapshot, the journal of writes completed since, and the checkpoint
// schedule that periodically folds the journal into a fresh snapshot.
type persister struct {
	dev      *Device
	snapshot []byte
	jnl      *Journal
}

// armPersistence turns on snapshotting + journaling for d when the run
// needs them (a checkpoint interval or a planned power cut). Called at
// Play/PlayUntil start, so the initial snapshot captures the mapping as
// it stands — empty on a fresh device, recovered state after a crash.
func (d *Device) armPersistence() error {
	if d.per != nil {
		return nil
	}
	if d.snapEvery <= 0 && (d.faults == nil || d.faults.PowerCutAt <= 0) {
		return nil
	}
	p := &persister{dev: d, jnl: &Journal{}}
	var buf bytes.Buffer
	if err := d.se.mapping.SaveSnapshot(&buf); err != nil {
		return err
	}
	p.snapshot = buf.Bytes()
	d.per = p
	d.wp.jnl = p.jnl
	if d.snapEvery > 0 {
		p.armCheckpoint(d.snapEvery)
	}
	return nil
}

// armCheckpoint schedules the next checkpoint, re-arming itself only
// while non-housekeeping events are pending so the event loop can
// drain. The timer is scheduled as housekeeping for the same reason:
// otherwise it and the maintenance tick would each count the other as
// pending work and re-arm forever.
func (p *persister) armCheckpoint(every time.Duration) {
	p.dev.eng.ScheduleHousekeepingAfter(every, func() {
		if p.dev.fs.failed() {
			return
		}
		if err := p.checkpoint(); err != nil {
			p.dev.fs.fail(err)
			return
		}
		if p.dev.eng.PendingWork() > 0 {
			p.armCheckpoint(every)
		}
	})
}

// checkpoint folds the journal into the previous snapshot and resets
// the journal. The fold runs the recovery path on a shadow mapping —
// never the live one, whose in-flight writes are not yet durable — so a
// checkpoint is exactly as trustworthy as a recovery from it.
func (p *persister) checkpoint() error {
	m, _, err := recoverShadow(p.snapshot, p.jnl.Bytes(), p.dev.se.alloc.Capacity())
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	p.snapshot = buf.Bytes()
	p.jnl.Reset()
	return nil
}

// recoverShadow rebuilds a mapping from a snapshot image plus a journal
// image over a scratch allocator of the given capacity. The scratch
// allocator absorbs the replay's frees and is discarded; callers
// rebuild their real allocator from the surviving extents (liveRanges).
func recoverShadow(snapshot, journal []byte, capacity int64) (*Mapping, int, error) {
	scratch := NewAllocator(capacity)
	m, err := LoadSnapshot(bytes.NewReader(snapshot), scratch, nil)
	if err != nil {
		return nil, 0, err
	}
	records, err := ReplayJournal(m, journal)
	if err != nil {
		return nil, 0, err
	}
	return m, records, nil
}

// RecoverMapping rebuilds a mapping from snapshot + journal images onto
// alloc (rebuilt to hold exactly the surviving extents' slots). It
// returns the mapping and the number of journal records applied; this
// is the function edcfsck and the recovery tests exercise directly.
func RecoverMapping(snapshot, journal []byte, alloc *Allocator) (*Mapping, int, error) {
	m, records, err := recoverShadow(snapshot, journal, alloc.Capacity())
	if err != nil {
		return nil, 0, err
	}
	if err := alloc.Rebuild(liveRanges(m)); err != nil {
		return nil, 0, err
	}
	m.alloc = alloc
	return m, records, nil
}

// liveRanges collects the device ranges of m's live extents, sorted by
// offset (the reserved set for Allocator.Rebuild). Slots abandoned to
// bad media by write re-allocation are not live and so return to the
// free pool — the simulated device has no persistent bad-block list.
func liveRanges(m *Mapping) []Range {
	seen := make(map[*Extent]bool, m.extents)
	rs := make([]Range, 0, m.extents)
	for _, e := range m.table {
		if e == nil || seen[e] {
			continue
		}
		seen[e] = true
		rs = append(rs, Range{Off: e.DevOff, Len: e.SlotLen})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Off < rs[j].Off })
	return rs
}

// CrashState is everything that survives a power cut: the persisted
// metadata images and the accounting of what was lost.
type CrashState struct {
	// Snapshot is the last checkpointed mapping snapshot.
	Snapshot []byte
	// Journal is the journal image at the cut (possibly mid-append in a
	// real system; here appends are atomic, so only whole records).
	Journal []byte
	// CutAt is the virtual time power was lost.
	CutAt time.Duration
	// Lost counts host requests in flight (admitted or queued) at the
	// cut; they never complete and are not in the response histograms.
	Lost int64
}

// PlayUntil replays t until virtual time cut, then simulates a power
// cut: the event loop stops, in-flight requests are lost, and the
// returned CrashState carries the persisted metadata a RecoverDevice
// resumes from. The partial RunStats covers completed requests only.
func (d *Device) PlayUntil(t *trace.Trace, cut time.Duration) (*RunStats, *CrashState, error) {
	if d.played {
		return nil, nil, ErrReplayed
	}
	if cut <= 0 {
		return nil, nil, errors.New("core: power cut time must be positive")
	}
	d.played = true
	d.stats.Trace = t.Name
	if err := d.armPersistence(); err != nil {
		return nil, nil, err
	}
	if d.per == nil {
		// No checkpoint interval and no planned cut in the fault plan:
		// journal from time zero so recovery still has a durable log.
		d.per = &persister{dev: d, jnl: &Journal{}}
		var buf bytes.Buffer
		if err := d.se.mapping.SaveSnapshot(&buf); err != nil {
			return nil, nil, err
		}
		d.per.snapshot = buf.Bytes()
		d.wp.jnl = d.per.jnl
	}
	if d.replayWorkers > 1 {
		q := parallel.Shared().NewQueue()
		d.wp.pool = q
		defer func() {
			q.Close()
			d.wp.pool = nil
		}()
	}
	d.fe.start(t)
	d.armMaint()
	d.eng.RunUntil(cut)
	lost := d.fe.inFlight + int64(len(d.fe.deferred))
	d.stats.CrashLost = lost
	d.finalize()
	cs := &CrashState{
		Snapshot: append([]byte(nil), d.per.snapshot...),
		Journal:  append([]byte(nil), d.per.jnl.Bytes()...),
		CutAt:    cut,
		Lost:     lost,
	}
	return d.stats, cs, d.fs.err
}

// RecoverDevice builds a fresh device over be and restores the mapping
// state from cs, as a restarted host would: snapshot + journal replay,
// allocator rebuild, version-counter resume, and (in verify mode)
// payload regeneration for surviving extents. The caller then Plays the
// remainder of the trace on the returned device.
func RecoverDevice(eng *sim.Engine, be Backend, volumeBytes int64, opts Options, cs *CrashState) (*Device, error) {
	d, err := NewDevice(eng, be, volumeBytes, opts)
	if err != nil {
		return nil, err
	}
	m, records, err := RecoverMapping(cs.Snapshot, cs.Journal, d.se.alloc)
	if err != nil {
		return nil, err
	}
	d.se.adoptMapping(m)

	// Resume the run version counter above every surviving extent, so
	// regenerated content for post-recovery writes never collides with
	// pre-crash versions of the same blocks.
	seen := make(map[*Extent]bool, m.extents)
	var maxVer uint32
	for _, e := range m.table {
		if e == nil || seen[e] {
			continue
		}
		seen[e] = true
		if e.Version >= maxVer {
			maxVer = e.Version + 1
		}
		var content []byte
		if d.se.dedup != nil || d.se.payloads != nil {
			// Regenerate the stored bytes (content is a pure function of
			// offset/length/version, so they match what the pre-crash
			// device stored).
			content = d.wp.data.AppendBlock(nil, e.Offset, int(e.OrigLen), e.Version)
		}
		if d.se.dedup != nil {
			// Rebuild the content index: fingerprint every surviving
			// extent and register it, first-wins in table order —
			// deterministic, like the live path's registration at each
			// extent's durable point.
			e.sum = dedup.HashSum(d.se.dedupKey, content)
			e.hasSum = true
			d.se.dedupRegister(e)
		}
		if d.se.payloads != nil {
			if e.Tag == compress.TagNone {
				d.se.payloads[e] = content
			} else {
				codec, err := d.rp.reg.ByTag(e.Tag)
				if err != nil {
					return nil, err
				}
				d.se.payloads[e] = compress.AppendCompress(codec, nil, content)
			}
		}
	}
	d.wp.version = maxVer
	d.stats.Recoveries = 1
	d.obs.Recover(eng.Now(), obs.RecoverCrash, 0, m.LiveBlocks()*BlockSize, records)
	return d, nil
}
