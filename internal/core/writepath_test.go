package core

import (
	"testing"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
)

// newTestWritePath assembles a writePath over a real single-SSD store
// engine with stub completion callbacks, so the stage composition can be
// asserted without a frontend or read path.
func newTestWritePath(t *testing.T, policy Policy) (*writePath, *[]time.Duration) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 256
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	be := NewSingleSSD(eng, d)
	stats := newRunStats("test", "unit", be.Describe())
	wp := &writePath{
		eng:   eng,
		cpu:   sim.NewStation(eng, "cpu"),
		fs:    &failState{},
		stats: stats,
		se:    newStoreEngine(be, 16<<20, false),
		meter: newDualMonitor(500*time.Millisecond, 10),
		sd:    NewSeqDetector(0),
		est:   NewEstimator(),
		// linux-src content compresses well below the 75 % slot, so the
		// fixed-codec case cannot fall into the oversize keep-raw path.
		data:      datagen.New(datagen.LinuxSrc(), 7),
		policy:    policy,
		cost:      DefaultCostModel(),
		hostCache: cache.New(0),
	}
	completions := &[]time.Duration{}
	wp.complete = func(resp time.Duration) { *completions = append(*completions, resp) }
	wp.drop = func(n int) { t.Fatalf("unexpected drop of %d writes: %v", n, wp.fs.err) }
	return wp, completions
}

// TestWritePathStageComposition drives admitted writes through the full
// stage chain — SD merge → estimate → policy → codec → quantized store —
// and checks each stage's observable effect on the run statistics.
func TestWritePathStageComposition(t *testing.T) {
	reg := defaultTestRegistry(t)
	gz, err := reg.ByName("gz")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		policy   Policy
		wantTag  compress.Tag
		compress bool
	}{
		{"fixed gzip compresses", Fixed("Gzip", gz), compress.TagGZ, true},
		{"native stores raw", Native(), compress.TagNone, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wp, completions := newTestWritePath(t, tc.policy)
			const n = 4
			for i := 0; i < n; i++ {
				wp.admitWrite(PendingWrite{
					Arrival: 0, Offset: int64(i) * 8192, Size: 8192,
				})
			}
			wp.drain()
			if err := wp.fs.err; err != nil {
				t.Fatal(err)
			}
			if len(*completions) != n {
				t.Fatalf("%d completions, want %d", len(*completions), n)
			}
			// SD merged the contiguous burst into one run...
			if wp.stats.SDRuns != 1 {
				t.Errorf("SDRuns = %d, want 1 (contiguous writes should merge)", wp.stats.SDRuns)
			}
			if want := int64(n * 8192); wp.stats.OrigBytes != want {
				t.Errorf("OrigBytes = %d, want %d", wp.stats.OrigBytes, want)
			}
			// ...which the policy then tagged and the store quantized.
			if got := wp.stats.RunsByTag[tc.wantTag]; got != 1 {
				t.Errorf("RunsByTag[%v] = %d, want 1 (have %v)", tc.wantTag, got, wp.stats.RunsByTag)
			}
			if tc.compress {
				if wp.stats.CompBytes >= wp.stats.OrigBytes {
					t.Errorf("CompBytes = %d not below OrigBytes = %d",
						wp.stats.CompBytes, wp.stats.OrigBytes)
				}
				if wp.stats.StoredBytes < wp.stats.CompBytes {
					t.Errorf("StoredBytes = %d below CompBytes = %d (quantization can only round up)",
						wp.stats.StoredBytes, wp.stats.CompBytes)
				}
			} else if wp.stats.StoredBytes != wp.stats.OrigBytes {
				t.Errorf("Native StoredBytes = %d, want OrigBytes = %d",
					wp.stats.StoredBytes, wp.stats.OrigBytes)
			}
		})
	}
}

// TestPlayDrainsTrailingRuns is the regression test for the post-Run SD
// drain: with the outstanding bound at 1 and the flush timer disabled, a
// trace of contiguous same-time writes ends with every completion
// admitting a deferred write that buffers a fresh pending run. A single
// final flush strands those writes ("requests never completed"); the
// drain loop must keep flushing until the detector is empty.
func TestPlayDrainsTrailingRuns(t *testing.T) {
	rig := newTestRig(t, Options{
		MaxOutstanding: 1,
		FlushTimeout:   -1, // disabled: only the end-of-run drain flushes
	})
	tr := &trace.Trace{Name: "tail"}
	const n = 3
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 0, Offset: int64(i) * 8192, Size: 8192, Write: true,
		})
	}
	res, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.Writes != n {
		t.Errorf("Writes = %d, want %d", res.Writes, n)
	}
	if got := res.Resp.Count(); got != n {
		t.Errorf("observed %d responses, want %d", got, n)
	}
}
