package core

import (
	"reflect"
	"testing"
	"time"

	"edc/internal/compress"
)

// tenantPart builds a RunStats carrying only tenant-attributed state,
// deterministically from seed, for the merge-algebra tests below.
func tenantPart(seed int64, tenants ...string) *RunStats {
	rs := newRunStats("elastic", "t", "sim")
	for i, name := range tenants {
		ts := rs.Tenant(name)
		n := seed + int64(i) + 1
		ts.Requests += 10 * n
		ts.Reads += 4 * n
		ts.Writes += 6 * n
		ts.WriteThrough += n
		ts.Shaped += n / 2
		ts.ShapeDelay += time.Duration(n) * time.Millisecond
		ts.Rejected += n % 3
		ts.RunsByTag[compress.TagGZ] += n
		ts.RunsByTag[compress.TagNone] += 2 * n
		for j := int64(0); j < n; j++ {
			ts.Resp.Observe(time.Duration(100+7*j*n) * time.Microsecond)
		}
	}
	return rs
}

// TestMergeTenantsCommutes pins the merge algebra the sharded replay
// relies on: the per-tenant section of a merged RunStats is the same
// whatever order the shards land in, and however the fold is grouped.
func TestMergeTenantsCommutes(t *testing.T) {
	mk := func() []*RunStats {
		return []*RunStats{
			tenantPart(3, "web", "batch"),
			tenantPart(11, "batch"),
			tenantPart(29, "web", "ml"),
		}
	}
	base := MergeRunStats(mk()).Tenants
	perms := [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		parts := mk()
		shuffled := []*RunStats{parts[perm[0]], parts[perm[1]], parts[perm[2]]}
		got := MergeRunStats(shuffled).Tenants
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("merge order %v changed tenant stats:\nwant %+v\ngot  %+v", perm, base, got)
		}
	}
	// Associativity: fold left and fold right agree.
	parts := mk()
	left := MergeRunStats([]*RunStats{MergeRunStats(parts[:2]), parts[2]}).Tenants
	right := MergeRunStats([]*RunStats{parts[0], MergeRunStats(parts[1:])}).Tenants
	if !reflect.DeepEqual(base, left) || !reflect.DeepEqual(base, right) {
		t.Fatalf("grouped merges disagree:\nflat  %+v\nleft  %+v\nright %+v", base, left, right)
	}
	// Sanity: the merge actually accumulated across parts.
	if base["web"] == nil || base["batch"] == nil || base["ml"] == nil {
		t.Fatalf("missing tenants after merge: %+v", base)
	}
	if base["web"].Requests != 10*(3+1)+10*(29+1) {
		t.Fatalf("web requests = %d", base["web"].Requests)
	}
}

// TestMergeTenantsNilParts checks merging tolerates parts without any
// tenant section and never materializes an empty map.
func TestMergeTenantsNilParts(t *testing.T) {
	plain := newRunStats("elastic", "t", "sim")
	out := MergeRunStats([]*RunStats{plain, tenantPart(5, "web"), newRunStats("elastic", "t", "sim")})
	if out.Tenants["web"] == nil {
		t.Fatalf("tenant lost in merge: %+v", out.Tenants)
	}
	if out2 := MergeRunStats([]*RunStats{plain, newRunStats("elastic", "t", "sim")}); out2.Tenants != nil {
		t.Fatalf("untagged merge materialized a tenant map: %+v", out2.Tenants)
	}
}
