package core

import (
	"context"
	"testing"
	"time"

	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
)

func newPacedServer(t *testing.T, shards int, vol int64) *Server {
	t.Helper()
	reg := defaultTestRegistry(t)
	sv, err := NewServer(ServeSetup{
		Shards:      shards,
		VolumeBytes: vol,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 512
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{
				Registry:    reg,
				Data:        datagen.New(datagen.Enterprise(), 11),
				VerifyReads: true,
			}, nil
		},
		Paced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

// pacedRun submits one fixed stamp-ordered operation sequence to a
// paced server and returns the per-operation open-loop latencies.
// jitter injects real-time stalls between submissions — the exact
// scheduling noise (mailbox batching, engines running dry mid-stream)
// that pacing must keep out of the virtual results.
func pacedRun(t *testing.T, jitter bool) []time.Duration {
	t.Helper()
	const vol = 1 << 20
	const ops = 400
	sv := newPacedServer(t, 2, vol)
	ctx := context.Background()
	lats := make([]time.Duration, ops)
	errs := make([]error, ops)
	done := make(chan int, ops)
	for i := 0; i < ops; i++ {
		// Dense stamps against 4-16KiB ops guarantee virtual queueing:
		// completions routinely land past later arrival stamps, which is
		// precisely where an unpaced engine's clock would run ahead.
		at := time.Duration(i) * 20 * time.Microsecond
		off := int64((i*7919)%(vol/BlockSize)) * BlockSize
		size := int64(BlockSize)
		if i%7 == 0 {
			size = 4 * BlockSize // may straddle the shard boundary
		}
		if off+size > vol {
			off = vol - size
		}
		aw, err := sv.SubmitAt(ctx, at, off, size, i%3 != 0)
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, aw Await) {
			lats[i], errs[i] = aw(ctx)
			done <- i
		}(i, aw)
		if jitter && i%16 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	// Stop before draining the awaits: in paced mode the tail of the
	// run only completes when the stop-drain runs the engines dry.
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ops; i++ {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return lats
}

// TestPacedServeDeterminism checks the paced-mode contract end to end:
// the same stamp-ordered submission sequence yields bit-identical
// per-operation virtual latencies no matter how real time slices the
// mailbox batches. The jittered run forces engines to drain and idle
// mid-stream; without pacing, the admit clamp converts those races
// into virtual latency (the bug the corescale identity gate catches).
func TestPacedServeDeterminism(t *testing.T) {
	smooth := pacedRun(t, false)
	jittered := pacedRun(t, true)
	for i := range smooth {
		if smooth[i] != jittered[i] {
			t.Fatalf("op %d: latency %v (smooth) != %v (jittered)", i, smooth[i], jittered[i])
		}
	}
}

// TestPacedRefusesSyncSubmit checks the synchronous wrappers are
// refused under pacing: a blocked caller could never send the later
// arrival that releases its own completion.
func TestPacedRefusesSyncSubmit(t *testing.T) {
	sv := newPacedServer(t, 1, 1<<20)
	ctx := context.Background()
	if _, err := sv.Read(ctx, 0, BlockSize); err == nil {
		t.Fatal("synchronous Read accepted under paced serve")
	}
	if _, err := sv.WriteAt(ctx, time.Millisecond, 0, BlockSize); err == nil {
		t.Fatal("synchronous WriteAt accepted under paced serve")
	}
	// The async form is the supported path.
	aw, err := sv.SubmitAt(ctx, 0, 0, BlockSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := aw(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPacedRefusesResplit checks NewServer rejects pacing combined
// with repartitioning (the quiesce protocol must run the engine dry
// past the watermark).
func TestPacedRefusesResplit(t *testing.T) {
	reg := defaultTestRegistry(t)
	_, err := NewServer(ServeSetup{
		Shards:      1,
		VolumeBytes: 1 << 20,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 512
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{Registry: reg, Data: datagen.New(datagen.Enterprise(), 11)}, nil
		},
		Paced:   true,
		Resplit: ResplitConfig{Enabled: true},
	})
	if err == nil {
		t.Fatal("NewServer accepted paced + resplit")
	}
}
