package core

import (
	"time"
)

// PendingWrite is one host write buffered by the sequentiality detector.
type PendingWrite struct {
	Arrival time.Duration // virtual arrival time of the host write
	Offset  int64         // logical byte offset
	Size    int64         // length in bytes

	// Tenant names the submitting tenant ("" for untagged traffic). The
	// write path attributes a merged run to its first write's tenant
	// and, under QoS isolation, evaluates the policy against that
	// tenant's own intensity window.
	Tenant string

	// Done, if non-nil, fires once at write completion with the response
	// time measured from Arrival, before the pipeline-wide complete
	// callback. Untagged replay leaves it nil; serve mode routes each
	// submitted operation's completion back to its waiting client with
	// it, and tagged replay observes the tenant's own latency histogram.
	Done func(resp time.Duration)
}

// Run is a maximal merged sequence of contiguous writes, compressed as a
// single block (paper Sec. III-E: larger blocks compress better and
// decompress faster per byte).
type Run struct {
	Offset int64          // logical byte offset of the run start
	Size   int64          // merged length in bytes
	Writes []PendingWrite // the host writes folded into the run, in order
}

// SeqDetector implements the paper's SD module (Fig. 7): contiguous
// writes are merged until the run is broken by a read, a non-contiguous
// write, or the size cap; the broken run is then compressed as one block.
type SeqDetector struct {
	maxRun int64
	cur    *Run

	merged  int64 // writes that joined an existing run
	flushes int64
}

// DefaultMaxRun caps merged runs at 64 KiB: large enough to capture
// cross-block redundancy, small enough to bound read amplification.
const DefaultMaxRun = 64 << 10

// NewSeqDetector returns a detector with the given run cap in bytes
// (<= 0 selects DefaultMaxRun).
func NewSeqDetector(maxRun int64) *SeqDetector {
	if maxRun <= 0 {
		maxRun = DefaultMaxRun
	}
	return &SeqDetector{maxRun: maxRun}
}

// OnWrite feeds a write request. It returns a completed run to compress
// when this write broke the pending run (nil otherwise — the write was
// merged or became the start of a new run).
func (sd *SeqDetector) OnWrite(w PendingWrite) *Run {
	if w.Size <= 0 {
		return nil
	}
	cur := sd.cur
	if cur != nil && w.Offset == cur.Offset+cur.Size && cur.Size+w.Size <= sd.maxRun {
		cur.Size += w.Size
		cur.Writes = append(cur.Writes, w)
		sd.merged++
		return nil
	}
	flushed := sd.take()
	sd.cur = &Run{Offset: w.Offset, Size: w.Size, Writes: []PendingWrite{w}}
	return flushed
}

// OnRead flushes the pending run: a read breaks write contiguity
// (Fig. 7, order 4 in the paper's example is a write; reads behave the
// same way per Sec. III-E).
func (sd *SeqDetector) OnRead() *Run {
	return sd.take()
}

// Flush forces out the pending run (end of trace, idle timeout).
func (sd *SeqDetector) Flush() *Run {
	return sd.take()
}

func (sd *SeqDetector) take() *Run {
	r := sd.cur
	sd.cur = nil
	if r != nil {
		sd.flushes++
	}
	return r
}

// Pending reports whether a run is being accumulated.
func (sd *SeqDetector) Pending() bool { return sd.cur != nil }

// Peek returns the pending run's extent and write count without
// disturbing it (ok false when nothing is buffered). The write path uses
// it to classify flush reasons for the observability layer before
// feeding OnWrite.
func (sd *SeqDetector) Peek() (off, size int64, writes int, ok bool) {
	if sd.cur == nil {
		return 0, 0, 0, false
	}
	return sd.cur.Offset, sd.cur.Size, len(sd.cur.Writes), true
}

// MaxRun returns the merge cap in bytes.
func (sd *SeqDetector) MaxRun() int64 { return sd.maxRun }

// PendingOverlaps reports whether the byte range [off, off+size)
// intersects the pending run (read-after-buffered-write detection).
func (sd *SeqDetector) PendingOverlaps(off, size int64) bool {
	if sd.cur == nil {
		return false
	}
	return off < sd.cur.Offset+sd.cur.Size && sd.cur.Offset < off+size
}

// Merged returns how many writes joined an existing run.
func (sd *SeqDetector) Merged() int64 { return sd.merged }

// Flushes returns how many runs have been emitted.
func (sd *SeqDetector) Flushes() int64 { return sd.flushes }
