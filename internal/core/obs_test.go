package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"edc/internal/obs"
	"edc/internal/trace"
)

// obsRig builds a small traced device over the standard test rig.
func obsRig(t *testing.T, cfg obs.Config, opts Options) (*testRig, *obs.Collector) {
	t.Helper()
	col := obs.New(cfg)
	opts.Obs = col
	return newTestRig(t, opts), col
}

// TestSDFlushReasons drives the detector through every flush cause and
// checks each emitted sd_flush event carries the right reason.
func TestSDFlushReasons(t *testing.T) {
	var events []obs.Event
	rig, _ := obsRig(t, obs.Config{Tracer: obs.TracerFunc(func(e *obs.Event) {
		if e.Type == obs.EvSDFlush {
			events = append(events, *e)
		}
	})}, Options{FlushTimeout: -1}) // no idle timer: reasons stay deterministic here

	const blk = BlockSize
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := &trace.Trace{Name: "flush-reasons", Requests: []trace.Request{
		// Contiguous pair, then a jump: noncontig flush of the pair.
		{Arrival: ms(0), Offset: 0, Size: blk, Write: true},
		{Arrival: ms(1), Offset: blk, Size: blk, Write: true},
		{Arrival: ms(2), Offset: 100 * blk, Size: blk, Write: true},
		// A read flushes the pending run at 100*blk.
		{Arrival: ms(3), Offset: 0, Size: blk, Write: false},
		// Contiguous run hitting the DefaultMaxRun cap (64 KiB = 16 blocks).
		{Arrival: ms(4), Offset: 200 * blk, Size: DefaultMaxRun, Write: true},
		{Arrival: ms(5), Offset: 200*blk + DefaultMaxRun, Size: blk, Write: true},
		// The final pending run drains at end of trace.
	}}
	if _, err := rig.dev.Play(tr); err != nil {
		t.Fatal(err)
	}
	var reasons []string
	for _, e := range events {
		reasons = append(reasons, e.Reason)
	}
	want := []string{obs.FlushNonContig, obs.FlushRead, obs.FlushMaxRun, obs.FlushDrain}
	if strings.Join(reasons, ",") != strings.Join(want, ",") {
		t.Fatalf("flush reasons = %v, want %v", reasons, want)
	}
	// The noncontig flush carries both merged writes.
	if events[0].Writes != 2 || events[0].Size != 2*blk {
		t.Fatalf("first flush = %+v, want 2 writes spanning 2 blocks", events[0])
	}
}

// TestFlushTimeoutReason lets the idle timer fire and checks the flush is
// tagged "timeout".
func TestFlushTimeoutReason(t *testing.T) {
	var reasons []string
	rig, _ := obsRig(t, obs.Config{Tracer: obs.TracerFunc(func(e *obs.Event) {
		if e.Type == obs.EvSDFlush {
			reasons = append(reasons, e.Reason)
		}
	})}, Options{})
	tr := &trace.Trace{Name: "timeout", Requests: []trace.Request{
		{Arrival: 0, Offset: 0, Size: BlockSize, Write: true},
		// Next arrival far beyond DefaultFlushTimeout: the timer wins.
		{Arrival: time.Second, Offset: 0, Size: BlockSize, Write: false},
	}}
	if _, err := rig.dev.Play(tr); err != nil {
		t.Fatal(err)
	}
	if len(reasons) == 0 || reasons[0] != obs.FlushTimeout {
		t.Fatalf("flush reasons = %v, want a leading %q", reasons, obs.FlushTimeout)
	}
}

// TestDeviceObsCountersMatchStats cross-checks the collector's counters
// against the independently maintained RunStats aggregates.
func TestDeviceObsCountersMatchStats(t *testing.T) {
	rig, col := obsRig(t, obs.Config{SeriesInterval: time.Second}, Options{})
	tr := seqTrace(800, 200*time.Microsecond)
	stats, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatal(err)
	}
	c := col.Counters()
	if got := c[`edc_admitted_total{op="write"}`] + c[`edc_admitted_total{op="read"}`]; got != stats.Requests {
		t.Errorf("admitted counter %d != stats.Requests %d", got, stats.Requests)
	}
	if got := c[`edc_estimates_total{verdict="write_through"}`]; got != stats.WriteThrough {
		t.Errorf("write-through counter %d != stats.WriteThrough %d", got, stats.WriteThrough)
	}
	if got := c[`edc_slot_oversize_total`]; got != stats.Oversize {
		t.Errorf("oversize counter %d != stats.Oversize %d", got, stats.Oversize)
	}
	var flushes int64
	for k, v := range c {
		if strings.HasPrefix(k, "edc_sd_flushes_total{") {
			flushes += v
		}
	}
	if flushes != stats.SDRuns {
		t.Errorf("flush counters sum %d != stats.SDRuns %d", flushes, stats.SDRuns)
	}
	if got := c["edc_sd_merged_total"]; got != stats.SDMerged {
		t.Errorf("merged counter %d != stats.SDMerged %d", got, stats.SDMerged)
	}
	if stats.Obs == nil || stats.Obs.Series == nil {
		t.Fatal("RunStats.Obs missing the series snapshot")
	}
}

// TestRunStatsFormatIncludesRates pins the satellite fix: the canonical
// report and the one-line summary both carry write-through and oversize
// rates.
func TestRunStatsFormatIncludesRates(t *testing.T) {
	rs := newRunStats("EDC", "tr", "be")
	rs.SDRuns = 200
	rs.WriteThrough = 50
	rs.Oversize = 10
	if got := rs.WriteThroughRate(); got != 0.25 {
		t.Fatalf("WriteThroughRate = %v", got)
	}
	if got := rs.OversizeRate(); got != 0.05 {
		t.Fatalf("OversizeRate = %v", got)
	}
	f := rs.Format()
	for _, want := range []string{"write-through=50 (25.0%)", "oversize=10 (5.0%)"} {
		if !strings.Contains(f, want) {
			t.Errorf("Format() missing %q:\n%s", want, f)
		}
	}
	s := rs.String()
	for _, want := range []string{"wt=25.0%", "ovr=5.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	var zero RunStats
	if zero.WriteThroughRate() != 0 || zero.OversizeRate() != 0 {
		t.Error("zero-run rates must be 0")
	}
}

// TestReportCodecNames checks the JSON report keys codec maps by name.
func TestReportCodecNames(t *testing.T) {
	rig, _ := obsRig(t, obs.Config{}, Options{})
	stats, err := rig.dev.Play(seqTrace(600, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Report()
	var runs int64
	for name, n := range rep.RunsByCodec {
		if name == "" {
			t.Error("empty codec name in report")
		}
		runs += n
	}
	var want int64
	for _, n := range stats.RunsByTag {
		want += n
	}
	if runs != want {
		t.Errorf("report runs %d != stats runs %d", runs, want)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}
