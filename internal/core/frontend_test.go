package core

import (
	"testing"
	"time"

	"edc/internal/sim"
	"edc/internal/trace"
)

// admission records one request reaching the write/read path.
type admission struct {
	idx int // request index (encoded in the offset)
	at  time.Duration
}

// runFrontend replays reqs through a frontend whose downstream stages are
// stubs completing each request after svc of virtual time, and returns
// the admissions in order.
func runFrontend(t *testing.T, maxInFlight int64, svc time.Duration, reqs []trace.Request) []admission {
	t.Helper()
	eng := sim.NewEngine()
	fe := &frontend{
		eng:         eng,
		fs:          &failState{},
		stats:       newRunStats("test", "unit", "stub"),
		meter:       newDualMonitor(500*time.Millisecond, 10),
		volBytes:    1 << 30,
		maxInFlight: maxInFlight,
	}
	var got []admission
	record := func(off int64, write bool) {
		got = append(got, admission{idx: int(off / BlockSize), at: eng.Now()})
		issue := eng.Now()
		eng.ScheduleAfter(svc, func() { fe.finish(eng.Now()-issue, write) })
	}
	fe.onWrite = func(w PendingWrite) { record(w.Offset, true) }
	fe.onRead = func(_ time.Duration, off, _ int64, _ func(time.Duration)) { record(off, false) }

	tr := &trace.Trace{Name: "unit", Requests: reqs}
	fe.start(tr)
	eng.Run()
	if fe.inFlight != 0 {
		t.Fatalf("%d requests still in flight after drain", fe.inFlight)
	}
	if got := fe.stats.Requests; got != int64(len(reqs)) {
		t.Fatalf("stats.Requests = %d, want %d", got, len(reqs))
	}
	return got
}

// req builds a test request whose index is recoverable from its offset.
func req(idx int, at time.Duration, write bool) trace.Request {
	return trace.Request{
		Arrival: at, Offset: int64(idx) * BlockSize, Size: BlockSize, Write: write,
	}
}

// TestFrontendAdmissionOrder drives the closed-loop admission seam
// through its cases: unbounded admission at arrival time, deferral past
// the outstanding bound with FIFO release on completion, and the
// pre-scheduling fallback for traces with out-of-order arrival stamps.
func TestFrontendAdmissionOrder(t *testing.T) {
	const svc = 100 * time.Microsecond
	cases := []struct {
		name        string
		maxInFlight int64
		reqs        []trace.Request
		wantIdx     []int
		wantAt      []time.Duration
	}{
		{
			name:        "unbounded admits at arrival",
			maxInFlight: 1 << 30,
			reqs: []trace.Request{
				req(0, 0, true), req(1, 10*time.Microsecond, false), req(2, 20*time.Microsecond, true),
			},
			wantIdx: []int{0, 1, 2},
			wantAt:  []time.Duration{0, 10 * time.Microsecond, 20 * time.Microsecond},
		},
		{
			name:        "bound 1 serializes same-time burst in trace order",
			maxInFlight: 1,
			reqs: []trace.Request{
				req(0, 0, true), req(1, 0, true), req(2, 0, true),
			},
			wantIdx: []int{0, 1, 2},
			wantAt:  []time.Duration{0, svc, 2 * svc},
		},
		{
			name:        "bound 2 admits pairwise",
			maxInFlight: 2,
			reqs: []trace.Request{
				req(0, 0, true), req(1, 0, false), req(2, 0, true), req(3, 0, false),
			},
			wantIdx: []int{0, 1, 2, 3},
			wantAt:  []time.Duration{0, 0, svc, svc},
		},
		{
			name:        "late arrival admits immediately once a slot is free",
			maxInFlight: 1,
			reqs: []trace.Request{
				req(0, 0, true), req(1, svc+50*time.Microsecond, true),
			},
			wantIdx: []int{0, 1},
			wantAt:  []time.Duration{0, svc + 50*time.Microsecond},
		},
		{
			name:        "unsorted trace falls back to pre-scheduling",
			maxInFlight: 1 << 30,
			reqs: []trace.Request{
				req(0, 20*time.Microsecond, true), req(1, 0, true), req(2, 10*time.Microsecond, false),
			},
			wantIdx: []int{1, 2, 0},
			wantAt:  []time.Duration{0, 10 * time.Microsecond, 20 * time.Microsecond},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runFrontend(t, tc.maxInFlight, svc, tc.reqs)
			if len(got) != len(tc.wantIdx) {
				t.Fatalf("admitted %d requests, want %d", len(got), len(tc.wantIdx))
			}
			for i := range got {
				if got[i].idx != tc.wantIdx[i] || got[i].at != tc.wantAt[i] {
					t.Errorf("admission %d = (req %d at %v), want (req %d at %v)",
						i, got[i].idx, got[i].at, tc.wantIdx[i], tc.wantAt[i])
				}
			}
		})
	}
}

// TestAlignRequest pins the block-alignment rules the frontend applies
// before any stage sees a request.
func TestAlignRequest(t *testing.T) {
	const vol = 64 * BlockSize
	cases := []struct {
		name              string
		off, size         int64
		wantOff, wantSize int64
	}{
		{"aligned passthrough", BlockSize, BlockSize, BlockSize, BlockSize},
		{"head and tail rounding", BlockSize + 1, BlockSize, BlockSize, 2 * BlockSize},
		{"zero size becomes one block", 0, 0, 0, BlockSize},
		{"offset wraps modulo volume", vol + 3*BlockSize, BlockSize, 3 * BlockSize, BlockSize},
		{"tail clamped inside volume", vol - BlockSize, 2 * BlockSize, vol - 2*BlockSize, 2 * BlockSize},
	}
	for _, tc := range cases {
		off, size := alignRequest(vol, trace.Request{Offset: tc.off, Size: tc.size})
		if off != tc.wantOff || size != tc.wantSize {
			t.Errorf("%s: alignRequest(%d, %d) = (%d, %d), want (%d, %d)",
				tc.name, tc.off, tc.size, off, size, tc.wantOff, tc.wantSize)
		}
	}
}
