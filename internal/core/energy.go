package core

// EnergyModel converts run statistics into an energy estimate — the
// paper's future work #3: EDC's "dichotomy of compression/decompression
// that consumes additional energy and data reduction that decreases data
// movement and thus energy consumption". Flash operation energies follow
// published SLC NAND characterizations; the CPU term charges active
// power for the time the compression engine is busy.
type EnergyModel struct {
	// Per flash operation, in microjoules.
	ReadPageUJ    float64
	ProgramPageUJ float64
	EraseBlockUJ  float64
	// TransferUJPerKB charges the interface/DMA path.
	TransferUJPerKB float64
	// CPUActiveWatts is drawn while the CPU station is busy
	// (de)compressing.
	CPUActiveWatts float64
}

// DefaultEnergyModel returns SLC-NAND-class constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ReadPageUJ:      12,
		ProgramPageUJ:   66,
		EraseBlockUJ:    165,
		TransferUJPerKB: 1.2,
		CPUActiveWatts:  18, // one loaded 2010-era Xeon core + uncore share
	}
}

// EnergyBreakdown is the per-component estimate in joules.
type EnergyBreakdown struct {
	CPUJ      float64 // compression/decompression compute
	ReadJ     float64 // flash array reads
	ProgramJ  float64 // flash programs (host + GC)
	EraseJ    float64 // block erases
	TransferJ float64 // interface transfers
}

// TotalJ sums the components.
func (e EnergyBreakdown) TotalJ() float64 {
	return e.CPUJ + e.ReadJ + e.ProgramJ + e.EraseJ + e.TransferJ
}

// EstimateEnergy computes the energy a run consumed under model m.
func EstimateEnergy(rs *RunStats, m EnergyModel) EnergyBreakdown {
	var b EnergyBreakdown
	b.CPUJ = rs.CPU.BusyTime.Seconds() * m.CPUActiveWatts
	var pagesRead, pagesProg, erases int64
	for _, d := range rs.Devices {
		pagesRead += d.HostPagesRead + d.GCPagesMoved
		pagesProg += d.FlashPagesWritten
		erases += d.Erases
	}
	b.ReadJ = float64(pagesRead) * m.ReadPageUJ / 1e6
	b.ProgramJ = float64(pagesProg) * m.ProgramPageUJ / 1e6
	b.EraseJ = float64(erases) * m.EraseBlockUJ / 1e6
	// Transfers: host bytes in both directions, approximated from the
	// space accounting (stored bytes out, plus reads back in).
	transferredKB := float64(rs.StoredBytes+rs.ReadBytesFetched()) / 1024
	b.TransferJ = transferredKB * m.TransferUJPerKB / 1e6
	return b
}

// ReadBytesFetched approximates bytes moved from the device by reads:
// host page reads times the page size of the first device (0 when the
// backend reports no flash stats, e.g. HDD).
func (rs *RunStats) ReadBytesFetched() int64 {
	if len(rs.Devices) == 0 {
		return 0
	}
	var pages int64
	for _, d := range rs.Devices {
		pages += d.HostPagesRead
	}
	return pages * 4096
}

// EnergyPerGB normalizes total energy by the original bytes written,
// the figure of merit for comparing schemes.
func EnergyPerGB(rs *RunStats, m EnergyModel) float64 {
	if rs.OrigBytes == 0 {
		return 0
	}
	return EstimateEnergy(rs, m).TotalJ() / (float64(rs.OrigBytes) / (1 << 30))
}
