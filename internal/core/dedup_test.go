package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/dedup"
	"edc/internal/trace"
)

// dedupTestExtent builds a 4-block stored extent at the given logical
// offset and slot placement, the shape every dedup test shares.
func dedupTestExtent(off, devOff int64) *Extent {
	return &Extent{
		Offset: off, OrigLen: 4 * BlockSize, CompLen: 9000, SlotLen: 12288,
		Tag: compress.TagLZF, Version: 1, DevOff: devOff,
	}
}

func TestJournalRefUnrefRoundTrip(t *testing.T) {
	var j Journal
	target := dedupTestExtent(0, 4096)
	dead := dedupTestExtent(8*BlockSize, 1<<18)
	j.Append(target)
	j.AppendRef(16*BlockSize, target.OrigLen, target)
	j.AppendUnref(dead)
	if j.Records() != 3 || j.Refs() != 1 || j.Unrefs() != 1 {
		t.Fatalf("records=%d refs=%d unrefs=%d, want 3/1/1", j.Records(), j.Refs(), j.Unrefs())
	}
	recs, err := DecodeJournal(j.Bytes())
	if err != nil || len(recs) != 3 {
		t.Fatalf("DecodeJournal = (%d recs, %v)", len(recs), err)
	}
	ref := recs[1]
	if !ref.Ref || ref.Relocate || ref.Unref {
		t.Fatalf("record 1 flags = %+v, want a ref record", ref)
	}
	if ref.Ext.Offset != 16*BlockSize || ref.Ext.OrigLen != target.OrigLen {
		t.Fatalf("ref run = [%d,+%d), want [%d,+%d)", ref.Ext.Offset, ref.Ext.OrigLen, 16*BlockSize, target.OrigLen)
	}
	if ref.TargetOff != target.Offset || ref.TargetDevOff != target.DevOff {
		t.Fatalf("ref target = (%d, %d), want (%d, %d)", ref.TargetOff, ref.TargetDevOff, target.Offset, target.DevOff)
	}
	un := recs[2]
	if !un.Unref || un.Ref || un.Relocate {
		t.Fatalf("record 2 flags = %+v, want an unref record", un)
	}
	if un.Ext.Offset != dead.Offset || un.Ext.OrigLen != dead.OrigLen {
		t.Fatalf("unref run = [%d,+%d), want [%d,+%d)", un.Ext.Offset, un.Ext.OrigLen, dead.Offset, dead.OrigLen)
	}
	if un.OldDevOff != dead.DevOff || un.OldSlotLen != dead.SlotLen {
		t.Fatalf("unref slot = (%d,+%d), want (%d,+%d)", un.OldDevOff, un.OldSlotLen, dead.DevOff, dead.SlotLen)
	}
	j.Reset()
	if j.Records() != 0 || j.Refs() != 0 || j.Unrefs() != 0 {
		t.Fatalf("post-Reset counters = %d/%d/%d, want zeros", j.Records(), j.Refs(), j.Unrefs())
	}
}

// A torn append of either v2 record kind drops the tail without
// invalidating the intact prefix — exactly like torn inserts.
func TestJournalRefUnrefTornTail(t *testing.T) {
	var j Journal
	target := dedupTestExtent(0, 4096)
	j.Append(target)
	j.AppendRef(16*BlockSize, target.OrigLen, target)
	j.AppendUnref(dedupTestExtent(8*BlockSize, 1<<18))
	img := j.Bytes()
	for cut, wantRecs := range map[int]int{
		len(img) - 7:                      2, // mid-unref
		len(img) - jnlUnrefRecordSize - 9: 1, // mid-ref
	} {
		records, torn, err := CheckJournal(img[:cut])
		if err != nil || !torn || records != wantRecs {
			t.Fatalf("cut %d: CheckJournal = (%d, torn=%v, %v), want (%d, true, nil)",
				cut, records, torn, err, wantRecs)
		}
	}
}

// Flipping any sealed byte of a v2 record must fail the CRC.
func TestJournalRefCRCCorruption(t *testing.T) {
	var j Journal
	target := dedupTestExtent(0, 4096)
	j.Append(target)
	j.AppendRef(16*BlockSize, target.OrigLen, target)
	img := append([]byte(nil), j.Bytes()...)
	img[jnlRecordSize+20] ^= 0x40 // inside the ref record's payload
	if _, err := DecodeJournal(img); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("corrupt ref decode: err = %v, want ErrBadJournal", err)
	}
}

// A v2 record carrying an unknown version byte is refused even with a
// valid CRC: future format revisions must not replay silently.
func TestJournalRefUnrefBadVersion(t *testing.T) {
	var jr Journal
	jr.AppendRef(16*BlockSize, 4*BlockSize, dedupTestExtent(0, 4096))
	ref := append([]byte(nil), jr.Bytes()...)
	ref[2] = 9
	binary.LittleEndian.PutUint32(ref[jnlRefCRCOffset:], crc32.ChecksumIEEE(ref[:jnlRefCRCOffset]))
	if _, err := DecodeJournal(ref); !errors.Is(err, ErrBadJournal) || !strings.Contains(err.Error(), "ref version") {
		t.Fatalf("bad ref version: err = %v, want ErrBadJournal (ref version)", err)
	}

	var ju Journal
	ju.AppendUnref(dedupTestExtent(0, 4096))
	un := append([]byte(nil), ju.Bytes()...)
	un[2] = 9
	binary.LittleEndian.PutUint32(un[jnlUnrefCRCOffset:], crc32.ChecksumIEEE(un[:jnlUnrefCRCOffset]))
	if _, err := DecodeJournal(un); !errors.Is(err, ErrBadJournal) || !strings.Contains(err.Error(), "unref version") {
		t.Fatalf("bad unref version: err = %v, want ErrBadJournal (unref version)", err)
	}
}

// Replay applies a ref record as the write path did: the run remaps to
// the already-stored extent, which becomes shared.
func TestJournalReplayRef(t *testing.T) {
	var j Journal
	target := dedupTestExtent(0, 4096)
	j.Append(target)
	j.AppendRef(16*BlockSize, target.OrigLen, target)
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	n, err := ReplayJournal(m, j.Bytes())
	if err != nil || n != 2 {
		t.Fatalf("ReplayJournal = (%d, %v)", n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	home, foreign := m.Lookup(0), m.Lookup(16*BlockSize)
	if home == nil || home != foreign {
		t.Fatalf("home %p foreign %p, want both runs on one extent", home, foreign)
	}
	if !home.shared || home.Live() != 8 {
		t.Fatalf("shared=%v live=%d, want shared extent with 8 blocks", home.shared, home.Live())
	}
	if m.LiveBlocks() != 8 || m.Extents() != 1 {
		t.Fatalf("live = %d blocks in %d extents, want 8 in 1", m.LiveBlocks(), m.Extents())
	}
}

// A ref whose target was never inserted (or does not match the recorded
// identity) is corruption, not a silent no-op.
func TestJournalReplayRefTargetMissing(t *testing.T) {
	var j Journal
	j.AppendRef(16*BlockSize, 4*BlockSize, dedupTestExtent(0, 4096))
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	if _, err := ReplayJournal(m, j.Bytes()); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("missing-target ref replay: err = %v, want ErrBadJournal", err)
	}

	// Same slot, different recorded identity: refused too.
	var j2 Journal
	target := dedupTestExtent(0, 4096)
	j2.Append(target)
	j2.AppendRef(16*BlockSize, target.OrigLen, &Extent{Offset: 8 * BlockSize, DevOff: target.DevOff})
	m2 := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	if _, err := ReplayJournal(m2, j2.Bytes()); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("identity-mismatch ref replay: err = %v, want ErrBadJournal", err)
	}
}

// The legal unref sequence: an overwrite drops the last reference, then
// the unref witnesses the release. Replay verifies rather than applies.
func TestJournalReplayUnref(t *testing.T) {
	var j Journal
	old := dedupTestExtent(0, 4096)
	repl := dedupTestExtent(0, 1<<18)
	repl.Version = 2
	j.Append(old)
	j.Append(repl) // full overwrite: old loses its last reference
	j.AppendUnref(old)
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	n, err := ReplayJournal(m, j.Bytes())
	if err != nil || n != 3 {
		t.Fatalf("ReplayJournal = (%d, %v)", n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(0); got == nil || got.Version != 2 {
		t.Fatalf("post-replay extent = %+v, want the overwrite", got)
	}
}

// An unref of a slot whose extent is still referenced marks the journal
// corrupt: the write path only journals unrefs after the last drop.
func TestJournalReplayUnrefStillLive(t *testing.T) {
	var j Journal
	target := dedupTestExtent(0, 4096)
	j.Append(target)
	j.AppendUnref(target)
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	if _, err := ReplayJournal(m, j.Bytes()); !errors.Is(err, ErrBadJournal) ||
		!strings.Contains(err.Error(), "still live") {
		t.Fatalf("live-slot unref replay: err = %v, want ErrBadJournal (still live)", err)
	}
}

// The same slot witnessed as released twice is a double unref.
func TestJournalReplayDoubleUnref(t *testing.T) {
	var j Journal
	old := dedupTestExtent(0, 4096)
	repl := dedupTestExtent(0, 1<<18)
	repl.Version = 2
	j.Append(old)
	j.Append(repl)
	j.AppendUnref(old)
	j.AppendUnref(old)
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	n, err := ReplayJournal(m, j.Bytes())
	if !errors.Is(err, ErrBadJournal) || !strings.Contains(err.Error(), "double unref") {
		t.Fatalf("double-unref replay: err = %v, want ErrBadJournal (double unref)", err)
	}
	if n != 3 {
		t.Fatalf("replay accepted %d records before refusing, want 3", n)
	}
}

// A v2 global relocate replays through ReplaceAll: every referrer of the
// old slot — home range and dedup'd foreign runs alike — moves to the
// new placement in one record.
func TestJournalReplayGlobalRelocate(t *testing.T) {
	var j Journal
	old := dedupTestExtent(0, 4096)
	moved := dedupTestExtent(0, 1<<18)
	moved.Tag = compress.TagGZ
	j.Append(old)
	j.AppendRef(16*BlockSize, old.OrigLen, old)
	j.AppendRelocateAll(old, moved)
	m := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	n, err := ReplayJournal(m, j.Bytes())
	if err != nil || n != 3 {
		t.Fatalf("ReplayJournal = (%d, %v)", n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	home, foreign := m.Lookup(0), m.Lookup(16*BlockSize)
	if home == nil || home != foreign || home.DevOff != moved.DevOff || home.Tag != compress.TagGZ {
		t.Fatalf("post-relocate home=%+v foreign=%+v, want both on the moved placement", home, foreign)
	}
	if !home.shared || home.Live() != 8 {
		t.Fatalf("shared=%v live=%d, want shared extent with 8 blocks", home.shared, home.Live())
	}
}

func TestInsertRefSharing(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)

	// Size mismatch and dead targets are refused.
	if err := m.InsertRef(16*BlockSize, 8*BlockSize, e); err == nil {
		t.Fatal("size-mismatched ref should fail")
	}
	dead := &Extent{Offset: 8 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 1, SlotLen: 4096}
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, dead); err == nil {
		t.Fatal("ref against dead extent should fail")
	}

	// A self-ref (rewriting identical content in place) is a no-op.
	if err := m.InsertRef(0, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	if e.shared || e.Live() != 4 {
		t.Fatalf("after self-ref: shared=%v live=%d, want unshared 4", e.shared, e.Live())
	}

	// A foreign ref doubles the references and marks the extent shared.
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	if !e.shared || e.Live() != 8 || m.LiveBlocks() != 8 || m.Extents() != 1 {
		t.Fatalf("after foreign ref: shared=%v live=%d liveBlocks=%d extents=%d",
			e.shared, e.Live(), m.LiveBlocks(), m.Extents())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Overwriting the home range keeps the extent alive through the
	// foreign run; overwriting that too releases the slot.
	mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagGZ)
	if e.Live() != 4 {
		t.Fatalf("after home overwrite: live=%d, want 4 foreign blocks", e.Live())
	}
	freedBefore := alloc.InUse()
	mkExtent(t, m, alloc, 16*BlockSize, 4*BlockSize, compress.TagGZ)
	if e.Live() != 0 {
		t.Fatalf("after foreign overwrite: live=%d, want 0", e.Live())
	}
	if alloc.InUse() >= freedBefore+e.SlotLen {
		t.Fatalf("slot not freed on last unref: in-use %d -> %d", freedBefore, alloc.InUse())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Replace must refuse shared extents (it only walks the home range);
// ReplaceAll moves every referrer.
func TestReplaceAllMovesForeignReferrers(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	repl := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 3000, SlotLen: 4096, Tag: compress.TagGZ, Version: e.Version}
	devOff, err := alloc.Alloc(repl.SlotLen)
	if err != nil {
		t.Fatal(err)
	}
	repl.DevOff = devOff
	if err := m.Replace(e, repl); err == nil || !strings.Contains(err.Error(), "shared") {
		t.Fatalf("Replace of shared extent: err = %v, want refusal", err)
	}
	if err := m.ReplaceAll(e, repl); err != nil {
		t.Fatal(err)
	}
	if m.Lookup(0) != repl || m.Lookup(16*BlockSize) != repl {
		t.Fatal("ReplaceAll left a referrer on the old extent")
	}
	if !repl.shared || repl.Live() != 8 || e.Live() != 0 {
		t.Fatalf("post-ReplaceAll: repl shared=%v live=%d, old live=%d", repl.shared, repl.Live(), e.Live())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The refcount cross-check behind edcfsck: CheckInvariants recounts the
// table, so an extent whose stored refcount disagrees — or an unshared
// extent with more references than home blocks — fails.
func TestCheckInvariantsRefcountMismatch(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(m *Mapping, e *Extent)
		want    string
	}{
		{"inflated refcount", func(m *Mapping, e *Extent) { e.live++ }, "recount"},
		{"deflated refcount", func(m *Mapping, e *Extent) { e.live-- }, "recount"},
		{"shared flag lost", func(m *Mapping, e *Extent) { e.shared = false }, "exceeds blocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, alloc, _ := newTestMapping(1 << 20)
			e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
			if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("healthy mapping failed: %v", err)
			}
			tc.corrupt(m, e)
			err := m.CheckInvariants()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corrupted mapping: err = %v, want %q", err, tc.want)
			}
		})
	}
}

// A snapshot of a mapping with foreign refs round-trips: shared flags,
// refcounts and dead-space accounting all survive.
func TestSnapshotDedupRoundTrip(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	mkExtent(t, m, alloc, 32*BlockSize, 8*BlockSize, compress.TagGZ)
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	// Kill e's home range: it stays alive purely through the foreign run,
	// the state only a v2 snapshot can encode.
	mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagNone)

	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != 2 {
		t.Fatalf("snapshot version = %d, want 2 when foreign refs exist", v)
	}
	alloc2 := NewAllocator(2 << 20)
	m2, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), alloc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m2.LiveBlocks() != m.LiveBlocks() || m2.Extents() != m.Extents() {
		t.Fatalf("reloaded %d blocks in %d extents, want %d in %d",
			m2.LiveBlocks(), m2.Extents(), m.LiveBlocks(), m.Extents())
	}
	got := m2.Lookup(16 * BlockSize)
	if got == nil || got.DevOff != e.DevOff || !got.shared || got.Live() != 4 {
		t.Fatalf("reloaded foreign run = %+v, want shared extent at slot %d with 4 refs", got, e.DevOff)
	}
	if m2.DeadSlotBytes() != m.DeadSlotBytes() {
		t.Fatalf("dead space %d, want %d", m2.DeadSlotBytes(), m.DeadSlotBytes())
	}
	if alloc2.InUse() != alloc.InUse() {
		t.Fatalf("allocator in-use %d, want %d", alloc2.InUse(), alloc.InUse())
	}
}

// Without foreign refs the snapshot stays version 1 — byte-compatible
// with every pre-dedup reader.
func TestSnapshotStaysV1WithoutRefs(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	// A self-ref does not force v2: nothing maps outside a home range.
	if err := m.InsertRef(0, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != 1 {
		t.Fatalf("snapshot version = %d, want 1 without foreign refs", v)
	}
	if _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), NewAllocator(2<<20), nil); err != nil {
		t.Fatal(err)
	}
}

// Corrupt refs sections must be refused field by field.
func TestSnapshotDedupCorruptRefs(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	// Punch a hole in the home range so one home block is unmapped: the
	// "inside home range" check only fires on bitmap holes (a mapped
	// home block trips the overlap check first).
	if err := m.Trim(BlockSize, BlockSize); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// The refs section sits between the extent list and the CRC trailer:
	// count u32, then per ref block u64 | extent-index u32.
	refsOff := len(img) - 4 /*crc*/ - 4 /*count*/ - 4*(8+4)
	if binary.LittleEndian.Uint32(img[refsOff:]) != 4 {
		t.Fatalf("test offsets drifted: refs count = %d at %d, want 4",
			binary.LittleEndian.Uint32(img[refsOff:]), refsOff)
	}
	corrupt := func(mutate func(b []byte)) []byte {
		c := append([]byte(nil), img...)
		mutate(c)
		binary.LittleEndian.PutUint32(c[len(c)-4:], crc32.ChecksumIEEE(c[:len(c)-4]))
		return c
	}
	cases := []struct {
		name string
		img  []byte
		want string
	}{
		{"extent index out of range", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[refsOff+4+8:], 99)
		}), "out of range"},
		{"ref inside home range", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[refsOff+4:], 1) // block 1 is in e's home range
		}), "inside home range"},
		{"ref overlaps mapped block", corrupt(func(b []byte) {
			// Point two refs at the same foreign block.
			blk := binary.LittleEndian.Uint64(b[refsOff+4:])
			binary.LittleEndian.PutUint64(b[refsOff+4+12:], blk)
		}), "overlaps"},
		{"ref out of volume", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[refsOff+4:], 1<<40)
		}), "out of volume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSnapshot(bytes.NewReader(tc.img), NewAllocator(2<<20), nil)
			if !errors.Is(err, ErrBadSnapshot) || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want ErrBadSnapshot (%s)", err, tc.want)
			}
		})
	}
	// Control: the uncorrupted image still loads.
	if _, err := LoadSnapshot(bytes.NewReader(img), NewAllocator(2<<20), nil); err != nil {
		t.Fatal(err)
	}
}

// Crash recovery with dedup on: the journal replays refs and verifies
// unrefs, RecoverDevice rebuilds the content index from the recovered
// table, and the resumed replay keeps deduplicating against pre-crash
// extents — with every read verified against regenerated content.
func TestPlayUntilRecoverDedup(t *testing.T) {
	const cut = 400 * time.Millisecond
	tr := seqTrace(600, 2*time.Millisecond)
	prof := datagen.Enterprise().WithDup(0.5, 4)
	opts := func() Options {
		return Options{
			Policy:      Native(),
			Data:        datagen.New(prof, 11),
			VerifyReads: true,
			Dedup:       &dedup.Config{Enabled: true},
		}
	}

	eng1, be1 := freshSSDRig(t)
	o := opts()
	o.Registry = defaultTestRegistry(t)
	dev1, err := NewDevice(eng1, be1, 256<<20, o)
	if err != nil {
		t.Fatal(err)
	}
	st1, cs, err := dev1.PlayUntil(tr, cut)
	if err != nil {
		t.Fatal(err)
	}
	if st1.DedupHits == 0 {
		t.Fatal("duplicate-heavy profile produced no dedup hits before the cut")
	}

	eng2, be2 := freshSSDRig(t)
	o2 := opts()
	o2.Registry = defaultTestRegistry(t)
	dev2, err := RecoverDevice(eng2, be2, 256<<20, o2, cs)
	if err != nil {
		t.Fatal(err)
	}
	// The refcount cross-check a post-recovery fsck would run.
	if err := dev2.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("recovered mapping inconsistent: %v", err)
	}
	rest := &trace.Trace{Name: tr.Name}
	for _, r := range tr.Requests {
		if r.Arrival > cut {
			rest.Requests = append(rest.Requests, r)
		}
	}
	st2, err := dev2.Play(rest)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DedupHits == 0 {
		t.Fatal("content index not rebuilt: no dedup hits after recovery")
	}
	if err := dev2.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("post-resume mapping inconsistent: %v", err)
	}
	total := st1.Resp.Count() + cs.Lost + st2.Resp.Count()
	if total != int64(len(tr.Requests)) {
		t.Fatalf("completed(%d) + lost(%d) + resumed(%d) = %d, want %d",
			st1.Resp.Count(), cs.Lost, st2.Resp.Count(), total, len(tr.Requests))
	}
}

// A recovered device must keep deferring frees: adoptMapping carries
// the dedup free policy onto the rebuilt table, so post-recovery
// overwrites journal unref records at their durable points (inline
// frees journal nothing, and would free slots before the causing
// record's durable point). Crash → recover → crash → recover: the
// second recovery replays the first recovery's journal, which is only
// well-formed if the ordering held.
func TestRecoveredMappingDefersFrees(t *testing.T) {
	const cut1 = 300 * time.Millisecond
	const cut2 = 800 * time.Millisecond
	tr := seqTrace(600, 2*time.Millisecond)
	prof := datagen.Enterprise().WithDup(0.5, 4)
	opts := func() Options {
		return Options{
			Policy:      Native(),
			Data:        datagen.New(prof, 11),
			Registry:    defaultTestRegistry(t),
			VerifyReads: true,
			Dedup:       &dedup.Config{Enabled: true},
		}
	}
	slice := func(from, to time.Duration) *trace.Trace {
		s := &trace.Trace{Name: tr.Name}
		for _, r := range tr.Requests {
			if r.Arrival > from && (to == 0 || r.Arrival <= to) {
				s.Requests = append(s.Requests, r)
			}
		}
		return s
	}

	eng1, be1 := freshSSDRig(t)
	dev1, err := NewDevice(eng1, be1, 256<<20, opts())
	if err != nil {
		t.Fatal(err)
	}
	_, cs1, err := dev1.PlayUntil(tr, cut1)
	if err != nil {
		t.Fatal(err)
	}

	eng2, be2 := freshSSDRig(t)
	dev2, err := RecoverDevice(eng2, be2, 256<<20, opts(), cs1)
	if err != nil {
		t.Fatal(err)
	}
	if !dev2.se.mapping.deferFrees {
		t.Fatal("recovered mapping does not defer frees with dedup enabled")
	}
	_, cs2, err := dev2.PlayUntil(slice(cut1, 0), cut2)
	if err != nil {
		t.Fatal(err)
	}
	var unrefs int
	for _, rec := range mustDecode(t, cs2.Journal) {
		if rec.Unref {
			unrefs++
		}
	}
	if unrefs == 0 {
		t.Fatal("post-recovery journal has no unref records: releases bypassed the dying batch")
	}

	eng3, be3 := freshSSDRig(t)
	dev3, err := RecoverDevice(eng3, be3, 256<<20, opts(), cs2)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	if err := dev3.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("twice-recovered mapping inconsistent: %v", err)
	}
	if _, err := dev3.Play(slice(cut2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := dev3.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("post-resume mapping inconsistent: %v", err)
	}
}

// The shared flag tracks current foreign references exactly: when the
// last foreign block is unmapped the extent reverts to home-range
// semantics — dead-space accounting resumes — so the in-memory state
// matches what a snapshot round-trip reconstructs.
func TestSharedClearsOnLastForeignUnref(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	if err := m.InsertRef(16*BlockSize, 4*BlockSize, e); err != nil {
		t.Fatal(err)
	}
	// Kill one home block: shared extents stay out of the dead-space
	// gauge.
	mkExtent(t, m, alloc, 0, BlockSize, compress.TagNone)
	if !e.shared || e.Live() != 7 || m.DeadSlotBytes() != 0 {
		t.Fatalf("shared=%v live=%d dead=%d, want shared 7-ref extent with no dead space",
			e.shared, e.Live(), m.DeadSlotBytes())
	}
	// Drop the foreign run: the extent is plain again, and its partially
	// dead slot re-enters the gauge.
	if err := m.Trim(16*BlockSize, 4*BlockSize); err != nil {
		t.Fatal(err)
	}
	if e.shared || e.Live() != 3 || m.DeadSlotBytes() != e.SlotLen {
		t.Fatalf("shared=%v live=%d dead=%d, want unshared extent pinning %d dead bytes",
			e.shared, e.Live(), m.DeadSlotBytes(), e.SlotLen)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A snapshot round-trip is now the identity: no foreign refs means
	// version 1, and the reload agrees on liveness and dead space.
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != 1 {
		t.Fatalf("snapshot version = %d, want 1 after last foreign unref", v)
	}
	m2, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), NewAllocator(2<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.DeadSlotBytes() != m.DeadSlotBytes() || m2.LiveBlocks() != m.LiveBlocks() {
		t.Fatalf("reload dead=%d live=%d, want %d/%d",
			m2.DeadSlotBytes(), m2.LiveBlocks(), m.DeadSlotBytes(), m.LiveBlocks())
	}
}

// abandonDying is the terminal-failure path: the dying batch's slots
// are returned to the allocator and the engine drops its bookkeeping,
// but nothing is journaled — the record that dropped the references
// never became durable.
func TestAbandonDyingFreesWithoutJournal(t *testing.T) {
	rig := newTestRig(t, Options{Policy: Native(), Dedup: &dedup.Config{Enabled: true}})
	se, wp := rig.dev.se, rig.dev.wp
	jnl := &Journal{}
	wp.jnl = jnl
	e := mkExtent(t, se.mapping, se.alloc, 0, 4*BlockSize, compress.TagLZF)
	e.sum, e.hasSum = dedup.HashSum(se.dedupKey, []byte("x")), true
	se.dedupRegister(e)
	mkExtent(t, se.mapping, se.alloc, 0, 4*BlockSize, compress.TagGZ)
	dying := se.mapping.takeDying()
	if len(dying) != 1 || dying[0] != e {
		t.Fatalf("dying batch = %v, want [e]", dying)
	}
	before := se.alloc.InUse()
	wp.abandonDying(dying)
	if got := se.alloc.InUse(); got != before-e.SlotLen {
		t.Fatalf("in-use %d -> %d, want slot of %d bytes freed", before, got, e.SlotLen)
	}
	if jnl.Records() != 0 {
		t.Fatalf("abandonDying journaled %d records, want none", jnl.Records())
	}
	if se.dedup[e.sum] == e {
		t.Fatal("abandoned extent still in the content index")
	}
}

// With dedup off, the journal image is byte-identical to a build that
// has never heard of v2 records: the format only grows when used.
func TestJournalUnchangedWithoutDedup(t *testing.T) {
	run := func(o Options) []byte {
		rig := newTestRig(t, o)
		st, cs, err := rig.dev.PlayUntil(seqTrace(300, time.Millisecond), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_ = st
		return cs.Journal
	}
	plain := run(Options{Policy: Native()})
	disabled := run(Options{Policy: Native(), Dedup: &dedup.Config{Enabled: false}})
	if !bytes.Equal(plain, disabled) {
		t.Fatal("disabled dedup changed the journal image")
	}
	for _, rec := range mustDecode(t, plain) {
		if rec.Ref || rec.Unref {
			t.Fatal("dedup-off journal contains v2 records")
		}
	}
}

// mustDecode decodes a journal image or fails the test.
func mustDecode(t *testing.T, img []byte) []JournalRec {
	t.Helper()
	recs, err := DecodeJournal(img)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// Deferred frees batch dying extents for the caller's durable point
// instead of freeing inline — the journal-ordering half of dedup.
func TestDeferredFreesBatchDying(t *testing.T) {
	m, alloc, freed := newTestMapping(1 << 20)
	m.deferFrees = true
	e1 := mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagLZF)
	if d := m.takeDying(); len(d) != 0 {
		t.Fatalf("insert produced %d dying extents, want 0", len(d))
	}
	mkExtent(t, m, alloc, 0, 4*BlockSize, compress.TagGZ)
	if len(*freed) != 0 {
		t.Fatalf("deferFrees leaked %d inline frees", len(*freed))
	}
	d := m.takeDying()
	if len(d) != 1 || d[0] != e1 {
		t.Fatalf("dying batch = %v, want [e1]", d)
	}
	if d2 := m.takeDying(); len(d2) != 0 {
		t.Fatalf("takeDying not drained: %d extents", len(d2))
	}
}
