package core

import (
	"testing"
	"time"

	"edc/internal/hdd"
	"edc/internal/sim"
)

func newHDDRig(t *testing.T, p Policy) (*sim.Engine, *Device, *HDDBackend) {
	t.Helper()
	eng := sim.NewEngine()
	disk, err := hdd.New(hdd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	be := NewHDDBackend(eng, disk)
	dev, err := NewDevice(eng, be, 256<<20, Options{
		Policy:   p,
		Registry: defaultTestRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, be
}

func TestHDDBackendReplay(t *testing.T) {
	_, dev, be := newHDDRig(t, Native())
	st, err := dev.Play(seqTrace(300, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.Resp.Count() != 300 {
		t.Fatalf("answered %d", st.Resp.Count())
	}
	ds := be.DiskStats()
	if ds.Reads == 0 || ds.Writes == 0 {
		t.Fatalf("disk stats = %+v", ds)
	}
	if len(st.Devices) != 0 {
		t.Fatal("HDD backend must not report flash stats")
	}
	if len(st.Queues) != 1 {
		t.Fatalf("queues = %d", len(st.Queues))
	}
}

func TestHDDBackendCompressionStillSavesSpace(t *testing.T) {
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	_, dev, _ := newHDDRig(t, Fixed("Lzf", lzf))
	st, err := dev.Play(seqTrace(300, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if st.TrafficRatio() <= 1.1 {
		t.Fatalf("ratio = %v; compression should be backend-independent", st.TrafficRatio())
	}
}

func TestHDDBackendClamp(t *testing.T) {
	eng := sim.NewEngine()
	disk, _ := hdd.New(hdd.DefaultConfig())
	be := NewHDDBackend(eng, disk)
	done := 0
	eng.Schedule(0, func() {
		be.Read(be.LogicalBytes()-1024, 1<<20, 0, func(error) { done++ }) // clamped
		be.Write(-5, 4096, 0, func(error) { done++ })                     // clamped
		be.Read(0, 0, 0, func(error) { done++ })                          // zero bytes
	})
	eng.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if be.PageSize() != hdd.DefaultConfig().BlockSize {
		t.Fatalf("page size = %d", be.PageSize())
	}
	if be.Describe() == "" {
		t.Fatal("empty description")
	}
}
