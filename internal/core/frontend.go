package core

import (
	"fmt"
	"time"

	"edc/internal/obs"
	"edc/internal/qos"
	"edc/internal/sim"
	"edc/internal/trace"
)

// frontend is the admission stage of the request pipeline: it streams
// trace arrivals into the event heap, enforces the closed-loop
// outstanding bound (arrivals beyond it wait in a deferred queue and are
// admitted as completions free slots), aligns requests to the volume,
// feeds the workload meter, and observes response times. Admitted
// requests are handed to the write and read paths through the two
// callbacks, so the stage is testable with fakes.
type frontend struct {
	eng   *sim.Engine
	fs    *failState
	stats *RunStats
	meter WorkloadMeter
	obs   *obs.Collector

	// qs applies multi-tenant QoS (shaping, priority admission,
	// per-tenant accounting). Nil disables QoS and the frontend is
	// bit-identical to a pre-QoS build.
	qs *qosState

	volBytes    int64
	inFlight    int64
	maxInFlight int64
	deferred    []trace.Request
	// deferredC replaces the single FIFO with per-class queues when the
	// QoS config leaves any tenant off the standard class; pop order is
	// latency, standard, bulk (see admitOrder).
	deferredC [3][]trace.Request
	// deferredBy tracks queued requests per tenant when QoS is active,
	// enforcing each tenant's MaxDeferred bound.
	deferredBy map[string]int

	// onWrite admits one aligned write (SD merge onward).
	onWrite func(w PendingWrite)
	// onRead admits one aligned read (pending-run flush + read plan).
	// done, when non-nil, observes the response time ahead of the
	// pipeline-wide completion (per-tenant latency attribution).
	onRead func(issue time.Duration, off, size int64, done func(time.Duration))
}

// start begins replaying t: request i+1 is scheduled when request i
// arrives, so the heap holds O(1) arrival events instead of the whole
// trace. Arrivals use the engine's priority class, which reproduces
// exactly the ordering of a fully pre-scheduled trace: at equal virtual
// times arrivals run before any plain event, and among themselves in
// trace order. Traces with out-of-order arrival stamps (which streaming
// could not schedule without going backwards) fall back to pre-scheduling
// every request, the pre-streaming behaviour.
func (fe *frontend) start(t *trace.Trace) {
	reqs := t.Requests
	if len(reqs) == 0 {
		return
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			for _, r := range reqs {
				r := r
				fe.eng.SchedulePriority(r.Arrival, func() { fe.arrive(r) })
			}
			return
		}
	}
	i := 0
	var step func()
	step = func() {
		r := reqs[i]
		i++
		if i < len(reqs) {
			fe.eng.SchedulePriority(reqs[i].Arrival, step)
		}
		fe.arrive(r)
	}
	fe.eng.SchedulePriority(reqs[0].Arrival, step)
}

// arrive handles one host request at the current virtual time: strict
// tenant admission, then bandwidth shaping (the request's tenant bucket
// may delay it), then the closed-loop bound (deferring or, past the
// tenant's queue bound, rejecting).
func (fe *frontend) arrive(r trace.Request) {
	if fe.fs.failed() {
		return
	}
	if !fe.qs.known(r.Tenant) {
		fe.fs.fail(fmt.Errorf("core: request at %v: %w: %q", r.Arrival, qos.ErrUnknownTenant, r.Tenant))
		return
	}
	now := fe.eng.Now()
	if d := fe.qs.shape(now, r.Tenant, r.Size); d > 0 {
		// Charged once: the shaped re-arrival bypasses the bucket.
		ts := fe.stats.Tenant(r.Tenant)
		ts.Shaped++
		ts.ShapeDelay += d
		fe.obs.Shape(now, r.Offset, r.Size, r.Write, r.Tenant, d)
		fe.eng.ScheduleAfter(d, func() { fe.arriveShaped(r) })
		return
	}
	fe.enqueue(r)
}

// arriveShaped resumes a request the shaper delayed; the bucket was
// already charged at first arrival.
func (fe *frontend) arriveShaped(r trace.Request) {
	if fe.fs.failed() {
		return
	}
	fe.enqueue(r)
}

// enqueue admits one request under the closed-loop bound, deferring it
// (or rejecting it past its tenant's queue bound) when the bound is
// reached.
func (fe *frontend) enqueue(r trace.Request) {
	if fe.inFlight >= fe.maxInFlight {
		if !fe.pushDeferred(r) {
			if ts := fe.stats.Tenant(r.Tenant); ts != nil {
				ts.Rejected++
			}
			fe.obs.AdmitReject(fe.eng.Now(), r.Offset, r.Size, r.Write, r.Tenant, obs.RejectQueueDepth)
			return
		}
		fe.obs.Defer(fe.eng.Now(), r.Offset, r.Size, r.Write, fe.deferredLen())
		return
	}
	fe.admit(r)
}

// pushDeferred queues one request past the closed-loop bound; false
// means the tenant's MaxDeferred bound was hit and the request must be
// rejected instead.
func (fe *frontend) pushDeferred(r trace.Request) bool {
	if fe.qs != nil {
		if max := fe.qs.maxDeferred(r.Tenant); max > 0 && fe.deferredBy[r.Tenant] >= max {
			return false
		}
		if fe.deferredBy == nil {
			fe.deferredBy = make(map[string]int)
		}
		fe.deferredBy[r.Tenant]++
	}
	if fe.qs.prioritized() {
		c := fe.qs.class(r.Tenant)
		fe.deferredC[c] = append(fe.deferredC[c], r)
	} else {
		fe.deferred = append(fe.deferred, r)
	}
	return true
}

// popDeferred dequeues the next request to admit: latency before
// standard before bulk under priority admission, plain FIFO otherwise.
func (fe *frontend) popDeferred() (trace.Request, bool) {
	if fe.qs.prioritized() {
		for _, c := range admitOrder {
			if q := fe.deferredC[c]; len(q) > 0 {
				r := q[0]
				fe.deferredC[c] = q[1:]
				fe.deferredBy[r.Tenant]--
				return r, true
			}
		}
		return trace.Request{}, false
	}
	if len(fe.deferred) == 0 {
		return trace.Request{}, false
	}
	r := fe.deferred[0]
	fe.deferred = fe.deferred[1:]
	if fe.deferredBy != nil {
		fe.deferredBy[r.Tenant]--
	}
	return r, true
}

// deferredLen is the total queued depth across all deferred queues.
func (fe *frontend) deferredLen() int {
	n := len(fe.deferred)
	for _, q := range fe.deferredC {
		n += len(q)
	}
	return n
}

// admit processes one admitted request.
func (fe *frontend) admit(r trace.Request) {
	off, size := alignRequest(fe.volBytes, r)
	now := fe.eng.Now()
	fe.meter.Record(now, size)
	if m := fe.qs.meter(r.Tenant); m != nil {
		m.Record(now, size)
	}
	fe.obs.AdmitTenant(now, off, size, r.Write, r.Tenant)
	fe.stats.Requests++
	ts := fe.stats.Tenant(r.Tenant) // nil for untagged traffic
	if ts != nil {
		ts.Requests++
	}
	// Response time is measured from issue (admission): under closed-loop
	// replay a saturated backend shifts issue times instead of growing an
	// unbounded arrival backlog, exactly as hardware trace replayers do.
	issue := now
	var done func(time.Duration)
	if ts != nil {
		done = func(resp time.Duration) { ts.Resp.Observe(resp) }
	}
	if r.Write {
		fe.stats.Writes++
		if ts != nil {
			ts.Writes++
		}
		fe.inFlight++
		fe.onWrite(PendingWrite{Arrival: issue, Offset: off, Size: size, Tenant: r.Tenant, Done: done})
		return
	}
	fe.stats.Reads++
	if ts != nil {
		ts.Reads++
	}
	fe.inFlight++
	fe.onRead(issue, off, size, done)
}

// finish completes one request: the response time is observed and the
// freed admission slot may admit a deferred request.
func (fe *frontend) finish(resp time.Duration, write bool) {
	fe.stats.Resp.Observe(resp)
	if write {
		fe.stats.RespWrite.Observe(resp)
	} else {
		fe.stats.RespRead.Observe(resp)
	}
	// A completion frees one admission slot.
	if fe.inFlight <= fe.maxInFlight {
		if next, ok := fe.popDeferred(); ok {
			fe.admit(next)
		}
	}
	fe.inFlight--
}

// drop releases n in-flight requests without observing them (failed
// replay teardown).
func (fe *frontend) drop(n int) {
	fe.inFlight -= int64(n)
}

// alignRequest snaps a host request to block granularity inside a volume
// of volBytes (the paper's EDC operates on fixed-size blocks, Sec.
// III-C).
func alignRequest(volBytes int64, r trace.Request) (off, size int64) {
	off = r.Offset &^ (BlockSize - 1)
	end := (r.Offset + r.Size + BlockSize - 1) &^ (BlockSize - 1)
	size = end - off
	if size <= 0 {
		size = BlockSize
	}
	if size > volBytes {
		size = volBytes
	}
	off %= volBytes
	off &^= BlockSize - 1
	if off+size > volBytes {
		off = volBytes - size
	}
	return off, size
}
