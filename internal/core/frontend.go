package core

import (
	"time"

	"edc/internal/obs"
	"edc/internal/sim"
	"edc/internal/trace"
)

// frontend is the admission stage of the request pipeline: it streams
// trace arrivals into the event heap, enforces the closed-loop
// outstanding bound (arrivals beyond it wait in a deferred queue and are
// admitted as completions free slots), aligns requests to the volume,
// feeds the workload meter, and observes response times. Admitted
// requests are handed to the write and read paths through the two
// callbacks, so the stage is testable with fakes.
type frontend struct {
	eng   *sim.Engine
	fs    *failState
	stats *RunStats
	meter WorkloadMeter
	obs   *obs.Collector

	volBytes    int64
	inFlight    int64
	maxInFlight int64
	deferred    []trace.Request

	// onWrite admits one aligned write (SD merge onward).
	onWrite func(w PendingWrite)
	// onRead admits one aligned read (pending-run flush + read plan).
	onRead func(issue time.Duration, off, size int64)
}

// start begins replaying t: request i+1 is scheduled when request i
// arrives, so the heap holds O(1) arrival events instead of the whole
// trace. Arrivals use the engine's priority class, which reproduces
// exactly the ordering of a fully pre-scheduled trace: at equal virtual
// times arrivals run before any plain event, and among themselves in
// trace order. Traces with out-of-order arrival stamps (which streaming
// could not schedule without going backwards) fall back to pre-scheduling
// every request, the pre-streaming behaviour.
func (fe *frontend) start(t *trace.Trace) {
	reqs := t.Requests
	if len(reqs) == 0 {
		return
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			for _, r := range reqs {
				r := r
				fe.eng.SchedulePriority(r.Arrival, func() { fe.arrive(r) })
			}
			return
		}
	}
	i := 0
	var step func()
	step = func() {
		r := reqs[i]
		i++
		if i < len(reqs) {
			fe.eng.SchedulePriority(reqs[i].Arrival, step)
		}
		fe.arrive(r)
	}
	fe.eng.SchedulePriority(reqs[0].Arrival, step)
}

// arrive handles one host request at the current virtual time, deferring
// it when the outstanding bound is reached (closed-loop admission).
func (fe *frontend) arrive(r trace.Request) {
	if fe.fs.failed() {
		return
	}
	if fe.inFlight >= fe.maxInFlight {
		fe.deferred = append(fe.deferred, r)
		fe.obs.Defer(fe.eng.Now(), r.Offset, r.Size, r.Write, len(fe.deferred))
		return
	}
	fe.admit(r)
}

// admit processes one admitted request.
func (fe *frontend) admit(r trace.Request) {
	off, size := alignRequest(fe.volBytes, r)
	now := fe.eng.Now()
	fe.meter.Record(now, size)
	fe.obs.Admit(now, off, size, r.Write)
	fe.stats.Requests++
	// Response time is measured from issue (admission): under closed-loop
	// replay a saturated backend shifts issue times instead of growing an
	// unbounded arrival backlog, exactly as hardware trace replayers do.
	issue := now
	if r.Write {
		fe.stats.Writes++
		fe.inFlight++
		fe.onWrite(PendingWrite{Arrival: issue, Offset: off, Size: size})
		return
	}
	fe.stats.Reads++
	fe.inFlight++
	fe.onRead(issue, off, size)
}

// finish completes one request: the response time is observed and the
// freed admission slot may admit a deferred request.
func (fe *frontend) finish(resp time.Duration, write bool) {
	fe.stats.Resp.Observe(resp)
	if write {
		fe.stats.RespWrite.Observe(resp)
	} else {
		fe.stats.RespRead.Observe(resp)
	}
	// A completion frees one admission slot.
	if len(fe.deferred) > 0 && fe.inFlight <= fe.maxInFlight {
		next := fe.deferred[0]
		fe.deferred = fe.deferred[1:]
		fe.admit(next)
	}
	fe.inFlight--
}

// drop releases n in-flight requests without observing them (failed
// replay teardown).
func (fe *frontend) drop(n int) {
	fe.inFlight -= int64(n)
}

// alignRequest snaps a host request to block granularity inside a volume
// of volBytes (the paper's EDC operates on fixed-size blocks, Sec.
// III-C).
func alignRequest(volBytes int64, r trace.Request) (off, size int64) {
	off = r.Offset &^ (BlockSize - 1)
	end := (r.Offset + r.Size + BlockSize - 1) &^ (BlockSize - 1)
	size = end - off
	if size <= 0 {
		size = BlockSize
	}
	if size > volBytes {
		size = volBytes
	}
	off %= volBytes
	off &^= BlockSize - 1
	if off+size > volBytes {
		off = volBytes - size
	}
	return off, size
}
