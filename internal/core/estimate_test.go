package core

import (
	"math/rand"
	"testing"

	"edc/internal/datagen"
)

func TestEstimateEmptyAndTiny(t *testing.T) {
	e := NewEstimator()
	if r := e.EstimateRatio(nil); r != 1 {
		t.Fatalf("empty ratio = %v; want 1", r)
	}
	if r := e.EstimateRatio([]byte{1, 2, 3}); r < 1 {
		t.Fatalf("tiny ratio = %v; want >= 1", r)
	}
}

func TestEstimateRandomIsIncompressible(t *testing.T) {
	e := NewEstimator()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 65536)
	rng.Read(data)
	if e.Compressible(data) {
		t.Fatalf("random data classified compressible (ratio %.2f)", e.EstimateRatio(data))
	}
}

func TestEstimateZerosHighlyCompressible(t *testing.T) {
	e := NewEstimator()
	data := make([]byte, 65536)
	r := e.EstimateRatio(data)
	if r < 10 {
		t.Fatalf("zero-page ratio = %v; want large", r)
	}
	if !e.Compressible(data) {
		t.Fatal("zeros must be compressible")
	}
}

func TestEstimateTextCompressible(t *testing.T) {
	e := NewEstimator()
	g := datagen.New(datagen.LinuxSrc(), 2)
	hits := 0
	total := 50
	for i := 0; i < total; i++ {
		// 64K regions with text/code classes dominate LinuxSrc.
		data := g.Block(int64(i)*65536, 16384, 0)
		if e.Compressible(data) {
			hits++
		}
	}
	if hits < total*6/10 {
		t.Fatalf("only %d/%d linux-src chunks classified compressible", hits, total)
	}
}

func TestEstimateMediaMostlyIncompressible(t *testing.T) {
	e := NewEstimator()
	g := datagen.New(datagen.Media(), 3)
	miss := 0
	total := 50
	for i := 0; i < total; i++ {
		data := g.Block(int64(i)*65536, 16384, 0)
		if !e.Compressible(data) {
			miss++
		}
	}
	if miss < total*7/10 {
		t.Fatalf("only %d/%d media chunks classified incompressible", miss, total)
	}
}

func TestEstimatorAgreesWithRealCodec(t *testing.T) {
	// The estimator's binary decision should usually match what gz
	// actually achieves against the 75% threshold.
	e := NewEstimator()
	g := datagen.New(datagen.Enterprise(), 4)
	agree, total := 0, 80
	gz, err := defaultTestRegistry(t).ByName("gz")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		data := g.Block(int64(i)*65536, 16384, 0)
		est := e.Compressible(data)
		comp := gz.Compress(data)
		_, real := QuantizeSlot(int64(len(data)), int64(len(comp)))
		if est == real {
			agree++
		}
	}
	if agree < total*7/10 {
		t.Fatalf("estimator agreed with gz on only %d/%d chunks", agree, total)
	}
}

func BenchmarkEstimate16K(b *testing.B) {
	e := NewEstimator()
	g := datagen.New(datagen.Enterprise(), 5)
	data := g.Block(0, 16384, 0)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = e.EstimateRatio(data)
	}
}
