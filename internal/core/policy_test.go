package core

import (
	"testing"
	"time"

	"edc/internal/compress"
)

func TestNativePolicy(t *testing.T) {
	p := Native()
	if p.Name() != "Native" || p.Select(0) != nil || p.Select(1e6) != nil {
		t.Fatal("native policy must never compress")
	}
	if p.ChecksCompressibility() {
		t.Fatal("native policy skips the estimator")
	}
}

func TestFixedPolicy(t *testing.T) {
	reg := defaultTestRegistry(t)
	gz, _ := reg.ByName("gz")
	p := Fixed("Gzip", gz)
	if p.Name() != "Gzip" {
		t.Fatalf("name = %q", p.Name())
	}
	for _, iops := range []float64{0, 100, 1e6} {
		if p.Select(iops) != gz {
			t.Fatalf("fixed policy changed codec at %v IOPS", iops)
		}
	}
	if p.ChecksCompressibility() {
		t.Fatal("fixed baselines compress everything per the paper")
	}
}

func TestElasticSelection(t *testing.T) {
	reg := defaultTestRegistry(t)
	p, err := DefaultElastic(reg)
	if err != nil {
		t.Fatal(err)
	}
	gz, _ := reg.ByName("gz")
	lzf, _ := reg.ByName("lzf")
	if got := p.Select(10); got != gz {
		t.Fatalf("idle selection = %v; want gz", got.Name())
	}
	if got := p.Select(DefaultGzCeiling + 1); got != lzf {
		t.Fatalf("mid selection should be lzf")
	}
	if got := p.Select(DefaultLzfCeiling + 1); got != nil {
		t.Fatalf("peak selection = %v; want none", got.Name())
	}
	if !p.ChecksCompressibility() {
		t.Fatal("EDC must check compressibility")
	}
	if len(p.Levels()) != 2 {
		t.Fatalf("levels = %d", len(p.Levels()))
	}
}

func TestElasticBoundaryInclusive(t *testing.T) {
	reg := defaultTestRegistry(t)
	p, _ := DefaultElastic(reg)
	gz, _ := reg.ByName("gz")
	if got := p.Select(DefaultGzCeiling); got != gz {
		t.Fatal("threshold should be inclusive")
	}
}

func TestNewElasticValidation(t *testing.T) {
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	if _, err := NewElastic("x", nil); err == nil {
		t.Fatal("empty levels should fail")
	}
	if _, err := NewElastic("x", []Level{{100, nil}}); err == nil {
		t.Fatal("nil codec should fail")
	}
	if _, err := NewElastic("x", []Level{{-5, lzf}}); err == nil {
		t.Fatal("negative threshold should fail")
	}
	if _, err := NewElastic("x", []Level{{100, lzf}, {100, lzf}}); err == nil {
		t.Fatal("duplicate thresholds should fail")
	}
	// Unsorted input is sorted.
	p, err := NewElastic("x", []Level{{500, lzf}, {100, lzf}})
	if err != nil {
		t.Fatal(err)
	}
	ls := p.Levels()
	if ls[0].MaxIOPS != 100 || ls[1].MaxIOPS != 500 {
		t.Fatalf("levels not sorted: %+v", ls)
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	got := cm.CompressTime(compress.TagGZ, 1<<20)
	want := time.Duration(float64(1<<20) / cm[compress.TagGZ].CompressBps * float64(time.Second))
	if d := got - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("compress time = %v; want ~%v", got, want)
	}
	if cm.CompressTime(compress.TagNone, 1<<20) != 0 {
		t.Fatal("TagNone must cost nothing")
	}
	if cm.DecompressTime(compress.TagNone, 1<<20) != 0 {
		t.Fatal("TagNone must cost nothing")
	}
	if cm.CompressTime(compress.TagLZF, 0) != 0 {
		t.Fatal("zero bytes must cost nothing")
	}
	// Ordering: bwz slowest, lz4 fastest.
	if !(cm.CompressTime(compress.TagBWZ, 1<<20) > cm.CompressTime(compress.TagGZ, 1<<20) &&
		cm.CompressTime(compress.TagGZ, 1<<20) > cm.CompressTime(compress.TagLZF, 1<<20) &&
		cm.CompressTime(compress.TagLZF, 1<<20) > cm.CompressTime(compress.TagLZ4, 1<<20)) {
		t.Fatal("cost ordering violated")
	}
	// Decompression faster than compression for every codec.
	for _, tag := range []compress.Tag{compress.TagLZF, compress.TagLZ4, compress.TagGZ, compress.TagBWZ} {
		if cm.DecompressTime(tag, 1<<20) >= cm.CompressTime(tag, 1<<20) {
			t.Fatalf("tag %d: decompress not faster than compress", tag)
		}
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := CostModel{compress.TagLZF: {CompressBps: 0, DecompressBps: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero throughput should fail validation")
	}
}

func TestCostModelPanicsOnUnknownTag(t *testing.T) {
	cm := CostModel{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown tag")
		}
	}()
	cm.CompressTime(compress.TagLZF, 100)
}

func TestContentAwareUpgrade(t *testing.T) {
	reg := defaultTestRegistry(t)
	base, err := DefaultElastic(reg)
	if err != nil {
		t.Fatal(err)
	}
	bwz, _ := reg.ByName("bwz")
	gz, _ := reg.ByName("gz")
	lzf, _ := reg.ByName("lzf")
	ca, err := NewContentAware(base, bwz, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Name() != "EDC+" {
		t.Fatalf("name = %q", ca.Name())
	}
	// Idle + very compressible -> heavy codec.
	if got := ca.SelectWithRatio(10, 5.0); got != bwz {
		t.Fatalf("idle/compressible = %v; want bwz", got.Name())
	}
	// Idle + ordinary compressibility -> stock gz.
	if got := ca.SelectWithRatio(10, 1.8); got != gz {
		t.Fatalf("idle/ordinary = %v; want gz", got.Name())
	}
	// Busy + very compressible -> stock lzf (no upgrade outside idle band).
	if got := ca.SelectWithRatio(DefaultGzCeiling+1, 5.0); got != lzf {
		t.Fatalf("busy/compressible = %v; want lzf", got.Name())
	}
	// Peak -> still skips compression.
	if got := ca.SelectWithRatio(1e9, 5.0); got != nil {
		t.Fatalf("peak = %v; want nil", got.Name())
	}
	if !ca.ChecksCompressibility() {
		t.Fatal("content-aware policy must use the estimator")
	}
}

func TestNewContentAwareValidation(t *testing.T) {
	reg := defaultTestRegistry(t)
	base, _ := DefaultElastic(reg)
	bwz, _ := reg.ByName("bwz")
	if _, err := NewContentAware(base, nil, 2); err == nil {
		t.Fatal("nil heavy codec should fail")
	}
	if _, err := NewContentAware(base, bwz, 0.5); err == nil {
		t.Fatal("MinRatio < 1 should fail")
	}
}
