package core

import (
	"fmt"
	"time"

	"edc/internal/compress"
	"edc/internal/maint"
	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/sim"
)

// Background maintenance
//
// The paper fixes each extent's codec once, at write time, from the
// instantaneous calculated IOPS — so a burst-written extent stays
// lzf/none forever even after it goes cold, and freed quantized slots
// fragment with no reclaim path. The maintainer closes both gaps: a
// virtual-time scheduler (internal/maint) ticks while the engine has
// work pending, and on ticks where the intensity monitor reports the
// device idle it (1) relocates cold lzf/none extents to a heavier codec
// for space, (2) demotes hot gz/bwz extents to a cheap codec for read
// latency, and (3) compacts the allocator's fragmented free lists.
// Relocation reuses the same primitives as the foreground pipeline
// (store-engine reads and writes, CPU-station charges, quantized
// allocation, journal append at the durable point, mapping swap), so a
// maintenance move is observable and recoverable exactly like a host
// write. With maintenance off the maintainer is never constructed and
// no foreground code path reads heat, keeping the disabled replay
// bit-identical.

// maintainer drives temperature-aware recompression and slot
// compaction for one device (one shard). All state is owned by the
// device's event-loop goroutine.
type maintainer struct {
	d     *Device
	cfg   maint.Config
	sched *maint.Scheduler
	cold  compress.Codec // target for cold lzf/none extents (nil: off)
	hot   compress.Codec // target for hot gz/bwz extents (nil: off)

	// relocating guards extents with a move in flight (membership only;
	// never iterated, so it cannot perturb determinism).
	relocating map[*Extent]struct{}
	// noWin remembers extents whose cold re-encode showed no space win
	// at the recorded version, so the scanner stops re-reading them
	// every pass; an overwrite bumps the version and retries. Membership
	// only, like relocating.
	noWin map[*Extent]uint32
	// scanPos is the next mapping-table block to examine, persisting
	// across ticks so every extent gets scanned regardless of budget.
	scanPos int64
}

// newMaintainer resolves the configured codec names against the
// device's registry and wires the tick scheduler onto its engine. cfg
// must already be normalized. A codec name of "none" disables that
// direction.
func newMaintainer(d *Device, cfg maint.Config, reg *compress.Registry) (*maintainer, error) {
	mt := &maintainer{
		d:          d,
		cfg:        cfg,
		relocating: make(map[*Extent]struct{}),
		noWin:      make(map[*Extent]uint32),
	}
	var err error
	if cfg.ColdCodec != "none" {
		if mt.cold, err = reg.ByName(cfg.ColdCodec); err != nil {
			return nil, fmt.Errorf("core: maintenance cold codec: %w", err)
		}
	}
	if cfg.HotCodec != "none" {
		if mt.hot, err = reg.ByName(cfg.HotCodec); err != nil {
			return nil, fmt.Errorf("core: maintenance hot codec: %w", err)
		}
	}
	mt.sched = maint.NewScheduler(cfg, d.eng, mt.idle, mt.step)
	return mt, nil
}

// armMaint schedules the next maintenance tick if maintenance is
// configured. Replay arms once before the event loop runs; serve mode
// re-arms on every ingested batch (the heap empties between batches).
func (d *Device) armMaint() {
	if d.mnt != nil {
		d.mnt.sched.Arm()
	}
}

// idle is the scheduler's idle-window probe: maintenance only acts
// when the workload monitor's calculated IOPS sits at or below the
// configured ceiling — the same signal that would make the foreground
// policy pick its heaviest codec — and the run has not failed.
func (mt *maintainer) idle(now time.Duration) bool {
	return !mt.d.fs.failed() && mt.d.wp.meter.Intensity(now) <= mt.cfg.IdleIOPS
}

// step is one idle tick's worth of maintenance: scan the mapping table
// from where the last tick stopped, start up to budget relocations,
// then compact the allocator if its free lists have fragmented across
// enough size classes. Returns the number of actions started.
func (mt *maintainer) step(now time.Duration, budget int) int {
	d := mt.d
	table := d.se.mapping.table
	n := int64(len(table))
	epoch := maint.Epoch(now, mt.cfg.EpochLen)
	started := 0
	var prev *Extent
	for scanned := int64(0); scanned < n && started < budget; scanned++ {
		b := mt.scanPos
		mt.scanPos++
		if mt.scanPos >= n {
			mt.scanPos = 0
		}
		e := table[b]
		if e == nil || e == prev {
			continue
		}
		prev = e
		if e.pending {
			continue // device write not durable yet; let it land first
		}
		if _, busy := mt.relocating[e]; busy {
			continue
		}
		hits := e.Heat.Hits(epoch)
		switch {
		case mt.hot != nil && hits >= mt.cfg.HotHits &&
			(e.Tag == compress.TagGZ || e.Tag == compress.TagBWZ):
			mt.relocate(e, mt.hot, obs.RelocateHot)
			started++
		case mt.cold != nil && hits == 0 && e.Heat.IdleFor(epoch) >= mt.cfg.ColdEpochs &&
			(e.Tag == compress.TagNone || e.Tag == compress.TagLZF):
			if v, tried := mt.noWin[e]; tried && v == e.Version {
				continue // re-encode already showed no space win for this content
			}
			mt.relocate(e, mt.cold, obs.RelocateCold)
			started++
		}
	}
	if classes := len(d.se.alloc.SizeClasses()); classes >= mt.cfg.CompactClasses {
		coalesced, reclaimed := d.se.alloc.Compact()
		if coalesced > 0 || reclaimed > 0 {
			d.stats.MaintCompactions++
			d.stats.MaintCoalesced += int64(coalesced)
			d.stats.MaintCompactFreed += reclaimed
			if d.obs != nil {
				d.obs.Compact(now, classes, coalesced, reclaimed)
			}
			started++
		}
	}
	return started
}

// relocate starts moving extent e to codec: read the stored payload
// back from the device, charge the re-encode CPU time, then reencode
// picks the new placement. Any fault, a run failure, or the extent
// dying to an overwrite mid-flight aborts the move (the extent is
// simply reconsidered on a later tick).
func (mt *maintainer) relocate(e *Extent, codec compress.Codec, reason string) {
	mt.relocating[e] = struct{}{}
	d := mt.d
	var extra time.Duration
	if d.rp.offload && e.Tag != compress.TagNone {
		extra = time.Duration(float64(e.OrigLen) / d.rp.offloadCost.DecompressBps * float64(time.Second))
	}
	d.se.read(e.DevOff, e.CompLen, extra, func(err error) {
		if err != nil || d.fs.failed() || e.live == 0 {
			mt.abort(e)
			return
		}
		// Pipeline the real codec work exactly as store-time compression
		// does: regenerated content and its re-encoding are pure functions
		// of the extent's immutable identity (offset, length, version), so
		// they run on the shared pool while the event loop advances;
		// reencode joins the future at the same virtual-time event it
		// would have computed inline.
		var fut *parallel.Future[reencodedRun]
		if d.wp.pool != nil {
			cbuf, pbuf := d.se.getBuf(), d.se.getBuf()
			off, olen, ver, c := e.Offset, e.OrigLen, e.Version, codec
			fut = parallel.Go(d.wp.pool, func() reencodedRun {
				content := d.wp.data.AppendBlock(cbuf, off, int(olen), ver)
				return reencodedRun{
					content: content,
					payload: compress.AppendCompress(c, pbuf, content),
				}
			})
		}
		var cpu time.Duration
		if !d.wp.offload {
			cpu = d.wp.cost.DecompressTime(e.Tag, e.OrigLen) +
				d.wp.cost.CompressTime(codec.Tag(), e.OrigLen)
		}
		if cpu > 0 {
			d.cpu.Submit(sim.Job{Service: cpu, Done: func(_, _ time.Duration) {
				mt.reencode(e, codec, reason, fut)
			}})
			return
		}
		mt.reencode(e, codec, reason, fut)
	})
}

// reencodedRun carries a relocation's regenerated content and codec
// output from a pool worker back to the event loop.
type reencodedRun struct {
	content []byte
	payload []byte
}

// reencode re-runs the codec over e's regenerated content (stored
// bytes are a pure function of offset, length, and version), picks the
// quantized slot, allocates it, and issues the device write for the
// new placement. A cold move that would not shrink the slot aborts; a
// hot demotion whose cheap codec misses every compressed class falls
// back to an uncompressed slot, the cheapest possible read.
func (mt *maintainer) reencode(e *Extent, codec compress.Codec, reason string, fut *parallel.Future[reencodedRun]) {
	d := mt.d
	// Join before any early return: the worker owns both buffers until
	// the future resolves.
	var content, payload []byte
	if fut != nil {
		r := fut.Wait()
		content, payload = r.content, r.payload
	}
	if d.fs.failed() || e.live == 0 {
		d.se.putBuf(content)
		d.se.putBuf(payload)
		mt.abort(e)
		return
	}
	if fut == nil {
		content = d.wp.data.AppendBlock(d.se.getBuf(), e.Offset, int(e.OrigLen), e.Version)
		payload = compress.AppendCompress(codec, d.se.getBuf(), content)
	}
	tag := codec.Tag()
	compLen := int64(len(payload))
	slotLen, ok := QuantizeSlot(e.OrigLen, compLen)
	stored := payload
	switch {
	case ok && d.wp.exactSlots:
		slotLen = compLen
	case !ok && reason == obs.RelocateHot:
		tag = compress.TagNone
		compLen = e.OrigLen
		slotLen = e.OrigLen
		stored = content
	case !ok:
		d.se.putBuf(content)
		d.se.putBuf(payload)
		mt.noWin[e] = e.Version
		mt.abort(e)
		return
	}
	if reason == obs.RelocateCold && slotLen >= e.SlotLen {
		// No space win; keep the current placement and remember not to
		// retry until an overwrite changes the content.
		d.se.putBuf(content)
		d.se.putBuf(payload)
		mt.noWin[e] = e.Version
		mt.abort(e)
		return
	}
	devOff, err := d.se.alloc.Alloc(slotLen)
	if err != nil {
		// Device full: skip rather than fail a background move.
		d.se.putBuf(content)
		d.se.putBuf(payload)
		mt.abort(e)
		return
	}
	if d.se.obs != nil {
		d.se.obs.SlotAlloc(d.se.now(), slotLen)
	}
	newExt := &Extent{
		Offset:  e.Offset,
		OrigLen: e.OrigLen,
		CompLen: compLen,
		SlotLen: slotLen,
		Tag:     tag,
		Version: e.Version,
		DevOff:  devOff,
	}
	d.se.keepPayload(newExt, stored)
	d.se.putBuf(content)
	d.se.putBuf(payload)
	var extra time.Duration
	if d.wp.offload && tag != compress.TagNone {
		extra = time.Duration(float64(e.OrigLen) / d.wp.offloadCost.CompressBps * float64(time.Second))
	}
	d.se.write(devOff, slotLen, extra, func(err error) {
		mt.commit(e, newExt, reason, err)
	})
}

// commit lands one relocation at its durable point (the new slot's
// device write completed): journal the versioned relocate record, swap
// the mapping to the new extent, and free the old slot. Mirrors the
// write path, where the insert record is appended at write completion
// so journal order is durability order.
func (mt *maintainer) commit(e, newExt *Extent, reason string, err error) {
	d := mt.d
	if err != nil || d.fs.failed() || e.live == 0 {
		// The new slot was never mapped: quietly return it. (obs slot
		// accounting sees the alloc without a free, matching realloc's
		// treatment of abandoned slots.)
		d.se.alloc.Free(newExt.DevOff, newExt.SlotLen)
		if d.se.payloads != nil {
			delete(d.se.payloads, newExt)
		}
		mt.abort(e)
		return
	}
	oldTag, oldSlot := e.Tag, e.SlotLen
	if d.se.dedup != nil {
		// Dedup may have mapped foreign LBAs onto e: move the content-
		// index entry (and fingerprint) to the new copy, journal a
		// whole-table relocate, remap every referring block atomically,
		// and flush the old slot's deferred release.
		d.se.dedupRemap(e, newExt)
		if d.wp.jnl != nil {
			d.wp.jnl.AppendRelocateAll(e, newExt)
		}
		if rerr := d.se.mapping.ReplaceAll(e, newExt); rerr != nil {
			d.fs.fail(rerr)
			return
		}
		d.wp.flushDying(d.se.mapping.takeDying())
	} else {
		if d.wp.jnl != nil {
			d.wp.jnl.AppendRelocate(e, newExt)
		}
		if rerr := d.se.mapping.Replace(e, newExt); rerr != nil {
			d.fs.fail(rerr)
			return
		}
	}
	delete(mt.relocating, e)
	d.stats.MaintRelocations++
	d.stats.MaintReclaimed += oldSlot - newExt.SlotLen
	if reason == obs.RelocateCold {
		d.stats.MaintCold++
	} else {
		d.stats.MaintHot++
	}
	if d.obs != nil {
		d.obs.Recompress(d.eng.Now(), newExt.Offset, newExt.OrigLen,
			tagName(d.rp.reg, oldTag), tagName(d.rp.reg, newExt.Tag),
			newExt.CompLen, oldSlot, newExt.SlotLen, reason)
	}
}

// abort gives up on an in-flight relocation; the extent stays where it
// is and remains eligible for a later tick.
func (mt *maintainer) abort(e *Extent) {
	delete(mt.relocating, e)
	mt.d.stats.MaintAborted++
}

// heatHistogram buckets every live extent's decayed hit count at the
// current epoch (finalize calls this only when maintenance ran).
func (d *Device) heatHistogram() []int64 {
	hist := make([]int64, maint.HistBuckets)
	epoch := maint.Epoch(d.eng.Now(), d.se.epochLen)
	var prev *Extent
	seen := make(map[*Extent]struct{})
	for _, e := range d.se.mapping.table {
		if e == nil || e == prev {
			continue
		}
		prev = e
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		hist[maint.HistBucket(e.Heat.Hits(epoch))]++
	}
	return hist
}
