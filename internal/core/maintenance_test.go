package core

import (
	"testing"
	"time"

	"edc/internal/datagen"
	"edc/internal/maint"
	"edc/internal/trace"
)

// maintTestConfig returns an aggressive maintenance policy for unit
// tests: every tick is idle, epochs are short, and extents go cold
// after two quiet epochs.
func maintTestConfig() *maint.Config {
	return &maint.Config{
		Enabled:    true,
		Interval:   10 * time.Millisecond,
		IdleIOPS:   1e9, // every tick idle: the tests control timing
		EpochLen:   20 * time.Millisecond,
		ColdEpochs: 2,
	}
}

// TestMaintColdRelocation writes a region without compression, lets it
// go cold while sparse traffic elsewhere keeps the event loop alive,
// and expects maintenance to recompress it — then re-reads the region
// so verify-mode catches any corruption the move introduced.
func TestMaintColdRelocation(t *testing.T) {
	rig := newTestRig(t, Options{
		Policy: Native(), // every extent lands uncompressed: all cold candidates
		Maint:  maintTestConfig(),
	})
	tr := &trace.Trace{Name: "maint-cold"}
	// Region A: written once at the start, then untouched.
	for i := 0; i < 16; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Millisecond,
			Offset:  int64(i) * 16384, Size: 16384, Write: true,
		})
	}
	// Region B: sparse reads keep the engine (and the maintenance
	// scheduler) running while region A crosses the cold threshold.
	for i := 0; i < 40; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 50*time.Millisecond + time.Duration(i)*25*time.Millisecond,
			Offset:  8 << 20, Size: 4096, Write: i == 0,
		})
	}
	// Re-read region A at the end: the relocated extents must still
	// round-trip under verification.
	for i := 0; i < 16; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 1100*time.Millisecond + time.Duration(i)*time.Millisecond,
			Offset:  int64(i) * 16384, Size: 16384,
		})
	}
	tr.SortByArrival()
	st, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	if st.MaintTicks == 0 || st.MaintIdleTicks == 0 {
		t.Fatalf("maintenance never ticked: ticks=%d idle=%d", st.MaintTicks, st.MaintIdleTicks)
	}
	if st.MaintCold == 0 {
		t.Fatalf("no cold relocations: %+v", st)
	}
	if st.MaintReclaimed <= 0 {
		t.Fatalf("cold relocations reclaimed nothing: %d", st.MaintReclaimed)
	}
	if st.MaintHot != 0 {
		t.Fatalf("unexpected hot relocations %d with no hot codec traffic", st.MaintHot)
	}
	if len(st.HeatHist) != maint.HistBuckets {
		t.Fatalf("heat histogram %v, want %d buckets", st.HeatHist, maint.HistBuckets)
	}
	if err := rig.dev.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("mapping inconsistent after maintenance: %v", err)
	}
}

// TestMaintHotDemotion stores gz-compressed extents, hammers them with
// reads to push their heat over the threshold, and expects maintenance
// to demote them to the cheap codec.
func TestMaintHotDemotion(t *testing.T) {
	reg := defaultTestRegistry(t)
	gz, err := reg.ByName("gz")
	if err != nil {
		t.Fatal(err)
	}
	cfg := maintTestConfig()
	cfg.HotHits = 3
	cfg.EpochLen = 500 * time.Millisecond // hits accumulate within one epoch
	rig := newTestRig(t, Options{
		Policy: Fixed("Gzip", gz),
		// Source-like content: compressible enough that every write lands
		// as a gz extent (hot candidates need a heavy codec to demote).
		Data:  datagen.New(datagen.LinuxSrc(), 7),
		Maint: cfg,
	})
	tr := &trace.Trace{Name: "maint-hot"}
	for i := 0; i < 8; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Millisecond,
			Offset:  int64(i) * 16384, Size: 16384, Write: true,
		})
	}
	// Read the same region over and over: each read bumps every touched
	// extent's heat, crossing HotHits well before the trace ends.
	for i := 0; i < 80; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 20*time.Millisecond + time.Duration(i)*10*time.Millisecond,
			Offset:  int64(i%8) * 16384, Size: 16384,
		})
	}
	tr.SortByArrival()
	st, err := rig.dev.Play(tr)
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	if st.MaintHot == 0 {
		t.Fatalf("no hot demotions: %+v", st)
	}
	if err := rig.dev.se.mapping.CheckInvariants(); err != nil {
		t.Fatalf("mapping inconsistent after maintenance: %v", err)
	}
}

// TestMaintDisabledNoEffect replays the same trace with maintenance
// absent and with an explicit Enabled=false config; both must produce
// no maintenance activity and identical results.
func TestMaintDisabledNoEffect(t *testing.T) {
	tr := seqTrace(400, 2*time.Millisecond)
	run := func(m *maint.Config) *RunStats {
		rig := newTestRig(t, Options{Maint: m})
		st, err := rig.dev.Play(tr)
		if err != nil {
			t.Fatalf("play: %v", err)
		}
		return st
	}
	absent := run(nil)
	disabled := run(&maint.Config{})
	if absent.MaintTicks != 0 || disabled.MaintTicks != 0 {
		t.Fatalf("maintenance ticked while disabled: %d / %d", absent.MaintTicks, disabled.MaintTicks)
	}
	if absent.HeatHist != nil || disabled.HeatHist != nil {
		t.Fatalf("heat histogram populated while disabled: %v / %v", absent.HeatHist, disabled.HeatHist)
	}
	if absent.Format() != disabled.Format() {
		t.Fatalf("nil and Enabled=false configs diverge:\n%s\n%s", absent.Format(), disabled.Format())
	}
}

// TestMaintRelocateJournaled runs maintenance under an armed journal
// and checks every relocation produced a replayable relocate record:
// the journal recovers onto the pre-run snapshot to the same mapping.
// PlayUntil (cut after the trace drains) journals the whole run with no
// checkpoint folding records away mid-flight.
func TestMaintRelocateJournaled(t *testing.T) {
	rig := newTestRig(t, Options{
		Policy: Native(),
		Maint:  maintTestConfig(),
	})
	tr := &trace.Trace{Name: "maint-journal"}
	for i := 0; i < 16; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Millisecond,
			Offset:  int64(i) * 16384, Size: 16384, Write: true,
		})
	}
	for i := 0; i < 40; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 50*time.Millisecond + time.Duration(i)*25*time.Millisecond,
			Offset:  8 << 20, Size: 4096, Write: i == 0,
		})
	}
	tr.SortByArrival()
	st, cs, err := rig.dev.PlayUntil(tr, 10*time.Second)
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	if cs.Lost != 0 {
		t.Fatalf("cut after the trace drained still lost %d requests", cs.Lost)
	}
	if st.MaintRelocations == 0 {
		t.Fatal("no relocations; the journal check needs at least one")
	}
	if got := rig.dev.per.jnl.Relocations(); got != int(st.MaintRelocations) {
		t.Fatalf("journal has %d relocate records, stats say %d",
			got, st.MaintRelocations)
	}
	m, _, err := RecoverMapping(cs.Snapshot, cs.Journal, NewAllocator(rig.dev.se.alloc.Capacity()))
	if err != nil {
		t.Fatalf("recovery over relocate records: %v", err)
	}
	if got, want := m.LiveBlocks(), rig.dev.se.mapping.LiveBlocks(); got != want {
		t.Fatalf("recovered %d live blocks, live mapping has %d", got, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("recovered mapping inconsistent: %v", err)
	}
}

// TestMergeRunStatsHeatHist checks the shard-merge path sums heat
// histograms element-wise, growing the output as needed (a shard
// without maintenance contributes a nil histogram).
func TestMergeRunStatsHeatHist(t *testing.T) {
	a := &RunStats{HeatHist: []int64{1, 2, 3, 0, 0}, MaintCold: 2, MaintReclaimed: 100}
	b := &RunStats{HeatHist: []int64{4, 0, 1, 1, 5}, MaintCold: 3, MaintReclaimed: 50}
	c := &RunStats{} // no maintenance on this shard
	out := MergeRunStats([]*RunStats{a, b, c})
	want := []int64{5, 2, 4, 1, 5}
	if len(out.HeatHist) != len(want) {
		t.Fatalf("merged histogram %v, want %v", out.HeatHist, want)
	}
	for i := range want {
		if out.HeatHist[i] != want[i] {
			t.Fatalf("merged histogram %v, want %v", out.HeatHist, want)
		}
	}
	if out.MaintCold != 5 || out.MaintReclaimed != 150 {
		t.Fatalf("merged maint counters cold=%d reclaimed=%d", out.MaintCold, out.MaintReclaimed)
	}
}
