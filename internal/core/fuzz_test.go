package core

import (
	"bytes"
	"testing"
)

func FuzzLoadSnapshot(f *testing.F) {
	// Seed with a valid snapshot.
	alloc := NewAllocator(1 << 22)
	m := NewMapping(1<<22, alloc, nil)
	devOff, _ := alloc.Alloc(8192)
	_ = m.Insert(&Extent{Offset: 4096, OrigLen: 8192, CompLen: 8192,
		SlotLen: 8192, DevOff: devOff})
	var buf bytes.Buffer
	_ = m.SaveSnapshot(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("EDCM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadSnapshot(bytes.NewReader(data), NewAllocator(1<<22), nil)
		if err == nil {
			if cerr := m.CheckInvariants(); cerr != nil {
				t.Fatalf("accepted snapshot violates invariants: %v", cerr)
			}
		}
	})
}

func FuzzEstimateRatio(f *testing.F) {
	f.Add([]byte("hello world hello world"))
	f.Add(make([]byte, 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEstimator()
		r := e.EstimateRatio(data)
		if r < 1 || r > 40 {
			t.Fatalf("ratio %v out of documented range", r)
		}
	})
}
