package core

import (
	"errors"
	"fmt"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/dedup"
	"edc/internal/fault"
	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/sim"
)

// Recovery bounds for injected device-write failures: a transient fault
// is retried up to maxRetries times with exponential virtual-time
// backoff (retryBackoff << attempt); a hard fault (or exhausted
// retries) re-allocates the run to a fresh slot up to maxReallocs
// times before the replay aborts.
const (
	maxRetries   = 3
	maxReallocs  = 2
	retryBackoff = 200 * time.Microsecond
)

// DedupHashBps models the content-fingerprint throughput of the dedup
// layer (host CPU bytes/second): ~4 GB/s, in line with fast
// non-cryptographic hashes on one core. Charged per merged run before
// the estimator, whether the lookup hits or misses.
const DedupHashBps = 4e9

// writePath is the write stage of the request pipeline: SD merge →
// compressibility estimate → policy selection → codec dispatch → slot
// quantization → store. It owns the sequentiality detector, the flush
// timer, and the run version counter; placement and device I/O go
// through the store engine, completions return to the frontend via the
// complete/drop callbacks.
type writePath struct {
	eng   *sim.Engine
	cpu   sim.Server
	fs    *failState
	stats *RunStats
	se    *storeEngine
	meter WorkloadMeter
	obs   *obs.Collector

	sd     *SeqDetector
	est    *Estimator
	data   *datagen.Generator
	policy Policy
	cost   CostModel

	// qs resolves per-tenant intensity under QoS isolation; nil keeps
	// the device-global policy signal.
	qs *qosState

	hostCache   *cache.Cache
	disableSD   bool
	exactSlots  bool
	offload     bool
	offloadCost CodecCost

	flushWait time.Duration
	flushGen  int64
	version   uint32

	// jnl, when non-nil, records each durable extent at write completion
	// (the crash-recovery journal).
	jnl *Journal

	// Real-CPU pipeline: codec work dispatched at processRun time runs
	// on pool workers while the event loop advances virtual time; store
	// joins on the future. The executor is this pipeline's queue on the
	// process-wide work-stealing pool and exists only while the pipeline
	// runs (replay or serve).
	pool parallel.Executor

	// complete finishes one host write (response observation +
	// closed-loop slot release); drop releases writes without observing
	// them on a failed run.
	complete func(resp time.Duration)
	drop     func(n int)
}

// admitWrite feeds one admitted host write into the SD merge stage.
func (wp *writePath) admitWrite(w PendingWrite) {
	if wp.disableSD {
		wp.processRun(&Run{Offset: w.Offset, Size: w.Size, Writes: []PendingWrite{w}})
		return
	}
	// Classify what this write will do to the pending run before feeding
	// the detector, so a resulting flush carries its reason. Peek is a
	// pure read; the disabled path does none of this.
	var reason string
	if wp.obs != nil {
		if off, size, _, ok := wp.sd.Peek(); ok {
			if w.Offset == off+size {
				reason = obs.FlushMaxRun // contiguous: only the cap can flush
			} else {
				reason = obs.FlushNonContig
			}
		}
	}
	run := wp.sd.OnWrite(w)
	if wp.obs != nil {
		if run != nil {
			wp.obs.SDFlush(wp.eng.Now(), reason, run.Offset, run.Size, len(run.Writes))
		} else if _, _, writes, ok := wp.sd.Peek(); ok && writes > 1 {
			wp.obs.SDMerge(wp.eng.Now(), w.Offset, w.Size, writes)
		}
	}
	if run != nil {
		wp.processRun(run)
	}
	wp.armFlushTimer()
}

// noteRead flushes the pending run: a read breaks write contiguity.
func (wp *writePath) noteRead() {
	if run := wp.sd.OnRead(); run != nil {
		wp.obs.SDFlush(wp.eng.Now(), obs.FlushRead, run.Offset, run.Size, len(run.Writes))
		wp.processRun(run)
	}
}

// armFlushTimer (re)starts the idle flush for the pending run.
func (wp *writePath) armFlushTimer() {
	if wp.flushWait <= 0 || !wp.sd.Pending() {
		return
	}
	wp.flushGen++
	gen := wp.flushGen
	wp.eng.ScheduleAfter(wp.flushWait, func() {
		if gen == wp.flushGen && wp.sd.Pending() && !wp.fs.failed() {
			run := wp.sd.Flush()
			wp.obs.SDFlush(wp.eng.Now(), obs.FlushTimeout, run.Offset, run.Size, len(run.Writes))
			wp.processRun(run)
		}
	})
}

// drain flushes the still-buffered run after the event heap empties,
// looping until no pending run remains: completing a flushed run can
// admit deferred writes that buffer a fresh run, so a single flush is
// not enough for traces that end mid-run.
func (wp *writePath) drain() {
	for wp.sd.Pending() {
		run := wp.sd.Flush()
		wp.obs.SDFlush(wp.eng.Now(), obs.FlushDrain, run.Offset, run.Size, len(run.Writes))
		wp.processRun(run)
		wp.eng.Run()
	}
}

// processRun stores one merged write run: with dedup enabled it first
// fingerprints the content and resolves it against the content index;
// otherwise (or on a miss) the run proceeds through the elastic
// pipeline in compressRun.
func (wp *writePath) processRun(run *Run) {
	if wp.fs.failed() {
		wp.drop(len(run.Writes))
		return
	}
	wp.stats.SDRuns++

	ver := wp.version
	wp.version++
	content := wp.data.AppendBlock(wp.se.getBuf(), run.Offset, int(run.Size), ver)

	if wp.se.dedup != nil {
		// Hash now (the fingerprint is a pure function of the content),
		// charge the CPU for it, and resolve against the index at the
		// job's completion time — lookup results must reflect the state
		// when the CPU work is done, not when it was queued.
		sum := dedup.HashSum(wp.se.dedupKey, content)
		hashTime := time.Duration(float64(run.Size) / DedupHashBps * float64(time.Second))
		wp.cpu.Submit(sim.Job{Service: hashTime, Done: func(_, _ time.Duration) {
			wp.dedupResolve(run, content, sum, ver)
		}})
		return
	}
	wp.compressRun(run, content, dedup.Sum{}, false, ver)
}

// dedupResolve looks the fingerprinted run up in the content index and
// dispatches to the hit fast path or the normal pipeline.
func (wp *writePath) dedupResolve(run *Run, content []byte, sum dedup.Sum, ver uint32) {
	if wp.fs.failed() {
		wp.drop(len(run.Writes))
		wp.se.putBuf(content)
		return
	}
	if tgt := wp.se.dedupLookup(sum, run.Size); tgt != nil {
		wp.dedupHit(run, tgt)
		wp.se.putBuf(content)
		return
	}
	wp.stats.DedupMisses++
	wp.obs.DedupMiss(wp.eng.Now(), run.Offset, run.Size)
	wp.compressRun(run, content, sum, true, ver)
}

// dedupHit completes a run whose content is already stored: remap the
// LBAs onto the existing extent (bumping its refcount), journal the
// ref, and finish the host writes — no estimation, codec, allocation,
// or device I/O at all. The remap is metadata-only, so any extents it
// fully dereferenced are flushed (unref-journaled and freed) here.
func (wp *writePath) dedupHit(run *Run, tgt *Extent) {
	now := wp.eng.Now()
	if err := wp.se.mapping.InsertRef(run.Offset, run.Size, tgt); err != nil {
		wp.fs.fail(fmt.Errorf("dedup ref for run at %d: %w", run.Offset, err))
		wp.drop(len(run.Writes))
		return
	}
	dying := wp.se.mapping.takeDying()
	wp.se.touch(tgt)
	wp.stats.DedupHits++
	wp.stats.DedupBytesSaved += tgt.SlotLen
	wp.stats.OrigBytes += run.Size
	wp.obs.DedupHit(now, run.Offset, run.Size, tgt.Offset, tgt.SlotLen)
	if wp.jnl != nil {
		wp.jnl.AppendRef(run.Offset, run.Size, tgt)
	}
	wp.flushDying(dying)
	wp.hostCache.InsertRange(run.Offset, run.Size)
	for _, w := range run.Writes {
		if w.Done != nil {
			w.Done(now - w.Arrival)
		}
		wp.complete(now - w.Arrival)
	}
}

// flushDying journals and frees extents whose last reference was
// dropped by a mutation that is now durable (dedup's deferred frees).
func (wp *writePath) flushDying(dying []*Extent) {
	for _, e := range dying {
		if wp.jnl != nil {
			wp.jnl.AppendUnref(e)
		}
		wp.stats.DedupUnrefs++
		wp.obs.Unref(wp.eng.Now(), e.Offset, e.OrigLen, e.SlotLen)
		wp.se.alloc.Free(e.DevOff, e.SlotLen)
		wp.se.freeExtent(e)
	}
}

// abandonDying frees a dying batch on a terminal write failure without
// journaling: the insert that dropped these references never became
// durable, so unref records for it would themselves violate replay
// ordering. The run is already failed — freeing just keeps allocator
// and engine bookkeeping (payloads, content index) consistent.
func (wp *writePath) abandonDying(dying []*Extent) {
	for _, e := range dying {
		wp.se.alloc.Free(e.DevOff, e.SlotLen)
		wp.se.freeExtent(e)
	}
}

// runTenant is the tenant a merged run is attributed to: its first
// write's. Cross-tenant merges are possible (contiguous writes from
// different tenants), so attribution is a convention, not a partition.
func runTenant(run *Run) string {
	if len(run.Writes) == 0 {
		return ""
	}
	return run.Writes[0].Tenant
}

// intensity is the calculated-IOPS signal the policy sees for a run:
// the submitting tenant's own window under QoS isolation, the
// device-global stream otherwise.
func (wp *writePath) intensity(now time.Duration, run *Run) float64 {
	if m := wp.qs.meter(runTenant(run)); m != nil {
		return m.Intensity(now)
	}
	return wp.meter.Intensity(now)
}

// compressRun runs the elastic pipeline for one run: compressibility
// estimate → policy selection → codec dispatch → store. sum/hasSum
// carry the dedup fingerprint (if one was computed) through to the
// stored extent so it can be indexed at its durable point.
func (wp *writePath) compressRun(run *Run, content []byte, sum dedup.Sum, hasSum bool, ver uint32) {
	now := wp.eng.Now()

	var codec compress.Codec
	var cpuTime time.Duration
	if wp.policy.ChecksCompressibility() {
		cpuTime += EstimateCost
		ratio := wp.est.EstimateRatio(content)
		if ratio >= WriteThroughRatio {
			wp.obs.Estimate(now, run.Offset, run.Size, ratio, false)
			// Intensity is a pure read of the meter, so capturing it for
			// the trace costs nothing on the disabled path.
			ciops := wp.intensity(now, run)
			if ra, ok := wp.policy.(RatioAware); ok {
				codec = ra.SelectWithRatio(ciops, ratio)
			} else {
				codec = wp.policy.Select(ciops)
			}
			wp.obs.PolicyChoice(now, run.Offset, run.Size, ciops, codecName(codec))
		} else {
			wp.stats.WriteThrough++
			if ts := wp.stats.Tenant(runTenant(run)); ts != nil {
				ts.WriteThrough++
			}
			wp.obs.Estimate(now, run.Offset, run.Size, ratio, true)
		}
	} else {
		ciops := wp.intensity(now, run)
		codec = wp.policy.Select(ciops)
		wp.obs.PolicyChoice(now, run.Offset, run.Size, ciops, codecName(codec))
	}
	if codec != nil && !wp.offload {
		cpuTime += wp.cost.CompressTime(codec.Tag(), run.Size)
	}
	// Pipeline the real codec work: compression is a pure function of
	// (content, codec), so it can run on a worker goroutine while the
	// event loop advances virtual time. store joins on the future, so
	// virtual-time ordering and all statistics are unchanged.
	var fut *parallel.Future[[]byte]
	if codec != nil && wp.pool != nil {
		c := codec
		dst := wp.se.getBuf()
		fut = parallel.Go(wp.pool, func() []byte {
			return compress.AppendCompress(c, dst, content)
		})
	}
	store := func(_, _ time.Duration) { wp.store(run, content, codec, fut, ver, sum, hasSum) }
	if cpuTime > 0 {
		wp.cpu.Submit(sim.Job{Service: cpuTime, Done: store})
	} else {
		store(now, now)
	}
}

// codecName renders a policy selection for the event stream ("none" when
// the run is stored uncompressed).
func codecName(c compress.Codec) string {
	if c == nil {
		return "none"
	}
	return c.Name()
}

// store joins the codec result (or runs the codec inline), allocates the
// quantized slot, updates the mapping, and issues the device write.
func (wp *writePath) store(run *Run, content []byte, codec compress.Codec, fut *parallel.Future[[]byte], ver uint32, sum dedup.Sum, hasSum bool) {
	var payload []byte
	// Join before any early return: the worker owns the payload buffer
	// (and reads content) until the future resolves.
	if fut != nil {
		payload = fut.Wait()
	}
	if wp.fs.failed() {
		wp.drop(len(run.Writes))
		wp.se.putBuf(content)
		wp.se.putBuf(payload)
		return
	}
	tag := compress.TagNone
	compLen := run.Size
	slotLen := run.Size
	if codec != nil {
		if fut == nil {
			payload = compress.AppendCompress(codec, wp.se.getBuf(), content)
		}
		slot, ok := QuantizeSlot(run.Size, int64(len(payload)))
		if ok {
			tag = codec.Tag()
			compLen = int64(len(payload))
			slotLen = slot
			if wp.exactSlots {
				slotLen = compLen // ablation: no quantization
			}
			wp.obs.SlotChoice(wp.eng.Now(), run.Offset, run.Size, codec.Name(), compLen, slotLen, false)
		} else {
			// Codec output above 75 %: keep uncompressed (Sec. III-C).
			wp.stats.Oversize++
			wp.obs.SlotChoice(wp.eng.Now(), run.Offset, run.Size, codec.Name(), int64(len(payload)), run.Size, true)
			wp.se.putBuf(payload)
			payload = nil
		}
	}
	ext := &Extent{
		Offset:  run.Offset,
		OrigLen: run.Size,
		CompLen: compLen,
		SlotLen: slotLen,
		Tag:     tag,
		Version: ver,
		sum:     sum,
		hasSum:  hasSum,
	}
	wp.se.touch(ext) // born warm: written this epoch
	ext.pending = true
	if err := wp.se.place(ext); err != nil {
		wp.fs.fail(fmt.Errorf("storing run at %d: %w", run.Offset, err))
		wp.drop(len(run.Writes))
		wp.se.putBuf(content)
		wp.se.putBuf(payload)
		return
	}
	dying := wp.se.mapping.takeDying()
	if tag != compress.TagNone {
		wp.se.keepPayload(ext, payload)
	} else {
		wp.se.keepPayload(ext, content)
	}
	wp.stats.OrigBytes += run.Size
	wp.stats.CompBytes += compLen
	wp.stats.StoredBytes += slotLen
	wp.stats.RunsByTag[tag]++
	wp.stats.BytesByTag[tag] += run.Size
	if ts := wp.stats.Tenant(runTenant(run)); ts != nil {
		ts.RunsByTag[tag]++
	}
	wp.se.putBuf(content)
	wp.se.putBuf(payload)

	var extra time.Duration
	if wp.offload && tag != compress.TagNone {
		extra = time.Duration(float64(run.Size) / wp.offloadCost.CompressBps * float64(time.Second))
	}
	wp.hostCache.InsertRange(run.Offset, run.Size)
	wp.issueWrite(ext, run.Writes, dying, extra, 0, 0)
}

// issueWrite submits the device write for ext's slot and reacts to the
// outcome: success journals the extent (when a journal is attached) and
// completes the merged host writes; a transient fault retries after a
// virtual-time backoff; a hard fault (or exhausted retries) moves the
// run to a fresh slot and starts over. Only when every recovery avenue
// is spent does the replay abort.
func (wp *writePath) issueWrite(ext *Extent, writes []PendingWrite, dying []*Extent, extra time.Duration, attempt, reallocs int) {
	wp.se.write(ext.DevOff, ext.SlotLen, extra, func(err error) {
		switch {
		case err == nil:
			// Durable: journaled and safe for maintenance to relocate.
			ext.pending = false
			if wp.jnl != nil {
				wp.jnl.Append(ext)
			}
			// Only a durably stored extent enters the content index, and
			// the extents its insert dereferenced are released only now —
			// so an unref record never precedes the insert that caused it.
			wp.se.dedupRegister(ext)
			wp.flushDying(dying)
			now := wp.eng.Now()
			for _, w := range writes {
				if w.Done != nil {
					w.Done(now - w.Arrival)
				}
				wp.complete(now - w.Arrival)
			}
		case errors.Is(err, fault.ErrTransient) && attempt < maxRetries:
			wp.stats.FaultRetries++
			wp.obs.Retry(wp.eng.Now(), "write", ext.Offset, ext.OrigLen, attempt+1)
			wp.eng.ScheduleAfter(retryBackoff<<attempt, func() {
				wp.issueWrite(ext, writes, dying, extra, attempt+1, reallocs)
			})
		case reallocs < maxReallocs:
			if rerr := wp.se.realloc(ext); rerr != nil {
				wp.fs.fail(fmt.Errorf("re-allocating run at %d after %v: %w", ext.Offset, err, rerr))
				wp.drop(len(writes))
				wp.abandonDying(dying)
				return
			}
			wp.stats.WriteReallocs++
			wp.obs.Recover(wp.eng.Now(), obs.RecoverRealloc, ext.Offset, ext.OrigLen, 0)
			wp.issueWrite(ext, writes, dying, extra, 0, reallocs+1)
		default:
			wp.fs.fail(fmt.Errorf("writing run at %d: %w", ext.Offset, err))
			wp.drop(len(writes))
			wp.abandonDying(dying)
		}
	})
}
