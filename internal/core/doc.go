// Package core implements the paper's contribution: the Elastic Data
// Compression (EDC) block layer. It contains the workload monitor
// (calculated-IOPS measurement, Sec. III-D), the sampling compressibility
// estimator, the sequentiality detector (Sec. III-E, Fig. 7), the
// quantized-slot mapping table (Sec. III-C, Fig. 5), the elastic policy
// and its fixed-algorithm baselines, and the event-driven block device
// that replays traces against a simulated SSD or RAIS backend.
//
// # Pipeline
//
// A Device is pure wiring over four stages, each in its own file:
//
//   - frontend: closed-loop admission control with a deferred FIFO
//     (frontend.go)
//   - write path: SD merge → compressibility estimate → policy codec
//     choice → codec execution → quantized slot placement (writepath.go)
//   - read path: host cache → mapping lookup → device read →
//     decompression → optional verification (readpath.go)
//   - store engine: slot allocator, mapping table, and the backend
//     (engine.go)
//
// Replay runs on a virtual-time event loop (internal/sim); codec work is
// charged deterministic CPU cost from a CostModel, so results are
// machine-independent and bit-reproducible. ShardedDevice partitions the
// volume by LBA across n independent pipelines for scale-out replay.
//
// # Observability
//
// Every stage carries an optional *obs.Collector (Options.Obs): one hook
// call per decision — admit/defer, SD merge/flush with reason, estimator
// verdict, policy codec choice with the calculated IOPS it saw, slot
// class and waste, cache hit/miss, decompression. A nil collector is a
// no-op and the instrumented replay is bit-identical to an
// uninstrumented one; sharded replays buffer per shard and merge
// deterministically. See OBSERVABILITY.md at the repository root.
package core
