package core

import (
	"sort"
	"time"

	"edc/internal/trace"
)

// WorkloadMeter is the intensity seam between the frontend (which
// records admitted traffic) and the write path (which reads the paper's
// feedback signal). The stock implementation is the two-window local
// monitor; sharded replay substitutes a read-only global snapshot so
// every shard sees the same intensity signal.
type WorkloadMeter interface {
	// Record notes an admitted request of the given aligned size.
	Record(now time.Duration, bytes int64)
	// Intensity returns the calculated IOPS driving codec selection.
	Intensity(now time.Duration) float64
}

// dualMonitor is the paper's feedback signal: the sliding-window
// calculated IOPS. Two windows are combined — a long one that recognizes
// genuinely idle periods and a short one that reacts to burst onsets
// within tens of milliseconds — and the more intense reading wins, so a
// burst is never greeted with a heavyweight codec while the long window
// is still warming up.
type dualMonitor struct {
	slow *Monitor // long window: detects idle periods
	fast *Monitor // short window: reacts to burst onsets
}

// newDualMonitor builds the stock slow+fast monitor pair.
func newDualMonitor(window time.Duration, bins int) *dualMonitor {
	return &dualMonitor{
		slow: NewMonitor(window, bins),
		fast: NewMonitor(window/8, (bins+1)/2),
	}
}

// Record implements WorkloadMeter.
func (m *dualMonitor) Record(now time.Duration, bytes int64) {
	m.slow.Record(now, bytes)
	m.fast.Record(now, bytes)
}

// Intensity implements WorkloadMeter.
func (m *dualMonitor) Intensity(now time.Duration) float64 {
	slow := m.slow.CalculatedIOPS(now)
	fast := m.fast.CalculatedIOPS(now)
	if fast > slow {
		return fast
	}
	return slow
}

// IntensitySnapshot is a read-only WorkloadMeter precomputed from a full
// trace: prefix sums over 4 KB-normalized units at each arrival answer
// exact sliding-window queries for any virtual time. Sharded replay
// builds one per trace and shares it across all shards, so a shard
// serving a quiet LBA range still sees the global burst and picks the
// same codec tier the unsharded device would — the array-level analogue
// of Elastic RAID's shared intensity signal. Safe for concurrent readers
// once built.
type IntensitySnapshot struct {
	arrivals []time.Duration
	prefix   []float64 // prefix[i] = units of arrivals[:i]
	slow     time.Duration
	fast     time.Duration
}

// NewIntensitySnapshot indexes t's arrivals (sizes aligned against
// volBytes, matching what the frontend records) over the given slow
// window; the fast window is slow/8, mirroring the local dual monitor.
func NewIntensitySnapshot(t *trace.Trace, volBytes int64, slow time.Duration) *IntensitySnapshot {
	if slow <= 0 {
		slow = 500 * time.Millisecond
	}
	s := &IntensitySnapshot{
		arrivals: make([]time.Duration, 0, len(t.Requests)),
		prefix:   make([]float64, 1, len(t.Requests)+1),
		slow:     slow,
		fast:     slow / 8,
	}
	sum := 0.0
	for _, r := range t.Requests {
		_, size := alignRequest(volBytes, r)
		s.arrivals = append(s.arrivals, r.Arrival)
		sum += units(size)
		s.prefix = append(s.prefix, sum)
	}
	if !sort.SliceIsSorted(s.arrivals, func(i, j int) bool { return s.arrivals[i] < s.arrivals[j] }) {
		idx := make([]int, len(s.arrivals))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return s.arrivals[idx[a]] < s.arrivals[idx[b]] })
		arr := make([]time.Duration, len(idx))
		pre := make([]float64, len(idx)+1)
		for i, j := range idx {
			arr[i] = s.arrivals[j]
			pre[i+1] = pre[i] + (s.prefix[j+1] - s.prefix[j])
		}
		s.arrivals, s.prefix = arr, pre
	}
	return s
}

// Record implements WorkloadMeter; the snapshot is read-only.
func (s *IntensitySnapshot) Record(time.Duration, int64) {}

// Intensity implements WorkloadMeter: the max of the slow- and
// fast-window calculated IOPS ending at now.
func (s *IntensitySnapshot) Intensity(now time.Duration) float64 {
	slow := s.windowIOPS(now, s.slow)
	fast := s.windowIOPS(now, s.fast)
	if fast > slow {
		return fast
	}
	return slow
}

// windowIOPS sums units with arrival in (now-w, now], divided by w.
func (s *IntensitySnapshot) windowIOPS(now time.Duration, w time.Duration) float64 {
	hi := sort.Search(len(s.arrivals), func(i int) bool { return s.arrivals[i] > now })
	lo := sort.Search(len(s.arrivals), func(i int) bool { return s.arrivals[i] > now-w })
	if hi <= lo {
		return 0
	}
	return (s.prefix[hi] - s.prefix[lo]) / w.Seconds()
}
