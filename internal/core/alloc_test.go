package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeSlot(t *testing.T) {
	cases := []struct {
		orig, comp int64
		wantSlot   int64
		wantOK     bool
	}{
		{4096, 500, 1024, true},
		{4096, 1024, 1024, true},
		{4096, 1025, 2048, true},
		{4096, 2048, 2048, true},
		{4096, 3000, 3072, true},
		{4096, 3072, 3072, true},
		{4096, 3073, 4096, false}, // >75%: store uncompressed
		{4096, 5000, 4096, false},
		{0, 10, 0, false},
		{16384, 4096, 4096, true},
	}
	for _, c := range cases {
		slot, ok := QuantizeSlot(c.orig, c.comp)
		if slot != c.wantSlot || ok != c.wantOK {
			t.Errorf("QuantizeSlot(%d,%d) = (%d,%v); want (%d,%v)",
				c.orig, c.comp, slot, ok, c.wantSlot, c.wantOK)
		}
	}
}

func TestQuantizeSlotProperty(t *testing.T) {
	f := func(orig uint16, comp uint32) bool {
		o := int64(orig) + 1
		c := int64(comp % uint32(2*o))
		slot, ok := QuantizeSlot(o, c)
		if ok {
			// Slot holds the payload and stays within the original.
			return slot >= c && slot <= o && slot*4 >= o // at least 25%
		}
		return slot == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorBumpAndReuse(t *testing.T) {
	a := NewAllocator(1 << 20)
	off1, err := a.Alloc(4096)
	if err != nil || off1 != 0 {
		t.Fatalf("first alloc = %d, %v", off1, err)
	}
	off2, _ := a.Alloc(4096)
	if off2 != 4096 {
		t.Fatalf("second alloc = %d", off2)
	}
	a.Free(off1, 4096)
	off3, _ := a.Alloc(4096)
	if off3 != off1 {
		t.Fatalf("freed slot not reused: %d", off3)
	}
	if a.InUse() != 8192 {
		t.Fatalf("inUse = %d", a.InUse())
	}
}

func TestAllocatorSplit(t *testing.T) {
	a := NewAllocator(8192)
	off, _ := a.Alloc(8192) // consume everything
	a.Free(off, 8192)
	// Only an 8K free slot exists; a 2K alloc must split it.
	o1, err := a.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Alloc(6144)
	if err != nil {
		t.Fatalf("remainder not reusable: %v", err)
	}
	if o1 == o2 {
		t.Fatal("overlapping allocations")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(4096)
	if _, err := a.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v; want ErrNoSpace", err)
	}
}

func TestAllocatorRejectsBadSize(t *testing.T) {
	a := NewAllocator(4096)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero-size alloc should fail")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("negative alloc should fail")
	}
}

func TestAllocatorPeak(t *testing.T) {
	a := NewAllocator(1 << 20)
	o1, _ := a.Alloc(1000)
	o2, _ := a.Alloc(1000)
	a.Free(o1, 1000)
	a.Free(o2, 1000)
	if a.PeakUse() != 2000 {
		t.Fatalf("peak = %d", a.PeakUse())
	}
	if a.InUse() != 0 {
		t.Fatalf("inUse = %d", a.InUse())
	}
}

// Property: allocations never overlap and never exceed capacity.
func TestAllocatorNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(1 << 18)
		type slot struct{ off, size int64 }
		var live []slot
		for op := 0; op < 500; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				size := int64(rng.Intn(8)+1) * 1024
				off, err := a.Alloc(size)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil || off < 0 || off+size > a.Capacity() {
					return false
				}
				for _, s := range live {
					if off < s.off+s.size && s.off < off+size {
						return false // overlap
					}
				}
				live = append(live, slot{off, size})
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i].off, live[i].size)
				live = append(live[:i], live[i+1:]...)
			}
		}
		var sum int64
		for _, s := range live {
			sum += s.size
		}
		return sum == a.InUse()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeBytesAccounting(t *testing.T) {
	a := NewAllocator(10240)
	if a.FreeBytes() != 10240 {
		t.Fatalf("initial free = %d", a.FreeBytes())
	}
	off, _ := a.Alloc(4096)
	if a.FreeBytes() != 10240-4096 {
		t.Fatalf("free after alloc = %d", a.FreeBytes())
	}
	a.Free(off, 4096)
	if a.FreeBytes() != 10240 {
		t.Fatalf("free after free = %d", a.FreeBytes())
	}
	if len(a.SizeClasses()) != 1 {
		t.Fatalf("size classes = %v", a.SizeClasses())
	}
}
