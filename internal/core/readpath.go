package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/fault"
	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/sim"
)

// readPath is the read stage of the request pipeline: host-cache check →
// mapping lookup → device read → decompression (host CPU station or
// in-device codec engine) → optional round-trip verification. Device I/O
// and the mapping go through the store engine; completions return to the
// frontend via the complete/drop callbacks.
type readPath struct {
	eng   *sim.Engine
	cpu   sim.Server
	fs    *failState
	stats *RunStats
	se    *storeEngine
	cost  CostModel
	reg   *compress.Registry
	data  *datagen.Generator
	obs   *obs.Collector

	hostCache   *cache.Cache
	verify      bool
	offload     bool
	offloadCost CodecCost

	// Real-CPU pipeline: verify-mode decompression dispatched at read
	// submission runs on pool workers while the event loop advances
	// virtual time; the completion event joins on the future, exactly as
	// the write path joins codec futures at store time. The executor is
	// this pipeline's queue on the process-wide work-stealing pool and
	// exists only while the pipeline runs.
	pool parallel.Executor

	// complete finishes one host read; drop releases a read without
	// observing it on a failed run.
	complete func(resp time.Duration)
	drop     func(n int)
}

// finishRead completes one host read: the optional per-operation done
// callback (serve mode) fires before the pipeline-wide complete callback,
// mirroring PendingWrite.Done on the write path.
func (rp *readPath) finishRead(done func(time.Duration), resp time.Duration) {
	if done != nil {
		done(resp)
	}
	rp.complete(resp)
}

// read plans and issues one host read. Fully cached reads are served
// from DRAM, skipping the device and any decompression. done, if
// non-nil, fires once at completion with the response time (serve mode;
// replay passes nil).
func (rp *readPath) read(arrival time.Duration, off, size int64, done func(time.Duration)) {
	// ContainsRange mutates the cache (LRU touch + hit/miss counters), so
	// the single existing call's result feeds both the trace and the
	// branch — calling it again for observability would perturb the run.
	hit := rp.hostCache.ContainsRange(off, size)
	if rp.obs != nil && rp.hostCache.CapacityBlocks() > 0 {
		rp.obs.CacheLookup(rp.eng.Now(), off, size, hit)
	}
	if hit {
		rp.eng.ScheduleAfter(CacheHitLatency, func() {
			rp.finishRead(done, rp.eng.Now()-arrival)
		})
		return
	}
	plan, err := rp.se.readPlan(off, size)
	if err != nil {
		rp.fs.fail(err)
		rp.drop(1)
		return
	}
	remaining := len(plan)
	if remaining == 0 {
		rp.finishRead(done, rp.eng.Now()-arrival)
		return
	}
	complete := func() {
		remaining--
		if remaining == 0 {
			rp.hostCache.InsertRange(off, size)
			rp.finishRead(done, rp.eng.Now()-arrival)
		}
	}
	for _, seg := range plan {
		if seg.Ext != nil {
			rp.se.touch(seg.Ext)
		}
		switch {
		case seg.Ext == nil:
			// Hole: the device still transfers zero pages.
			rp.issueRead(0, seg.Bytes, 0, off, seg.Bytes, 0, complete)
		case seg.Ext.Tag == compress.TagNone:
			rp.issueRead(seg.Ext.DevOff, seg.Bytes, 0, seg.Ext.Offset, seg.Bytes, 0, complete)
		default:
			ext := seg.Ext
			if rp.obs != nil {
				rp.obs.Decompress(rp.eng.Now(), ext.Offset, ext.OrigLen, tagName(rp.reg, ext.Tag), ext.CompLen)
			}
			// Snapshot the payload now: an overwrite may free the extent
			// while this read is in flight (the host still gets the data
			// captured at submission time). With a worker pool, the whole
			// verification (decompress + regenerate + compare) is pure CPU
			// work over that immutable snapshot, so it is dispatched here
			// and joined at the completion event — the freelist buffers are
			// taken and returned on the event-loop goroutine only.
			var vfut *parallel.Future[verifyResult]
			var payload []byte
			if rp.verify {
				payload = rp.se.payload(ext)
				if rp.pool != nil {
					p, got, want := payload, rp.se.getBuf(), rp.se.getBuf()
					vfut = parallel.Go(rp.pool, func() verifyResult {
						return rp.verifyExtentWork(ext, p, got, want)
					})
				}
			}
			finishVerify := func() {
				if !rp.verify {
					return
				}
				if vfut != nil {
					res := vfut.Wait()
					rp.se.putBuf(res.got)
					rp.se.putBuf(res.want)
					if res.err != nil {
						rp.fs.fail(res.err)
					}
					return
				}
				rp.verifyExtent(ext, payload)
			}
			if rp.offload {
				// The device's codec engine decompresses in-line.
				extra := time.Duration(float64(ext.OrigLen) / rp.offloadCost.DecompressBps * float64(time.Second))
				rp.issueRead(ext.DevOff, ext.CompLen, extra, ext.Offset, ext.OrigLen, 0, func() {
					finishVerify()
					complete()
				})
				break
			}
			rp.issueRead(ext.DevOff, ext.CompLen, 0, ext.Offset, ext.OrigLen, 0, func() {
				svc := rp.cost.DecompressTime(ext.Tag, ext.OrigLen)
				rp.cpu.Submit(sim.Job{Service: svc, Done: func(_, _ time.Duration) {
					finishVerify()
					complete()
				}})
			})
		}
	}
}

// issueRead submits one device read and reacts to the outcome: a
// transient fault retries after a virtual-time backoff; a hard fault
// that survived the backend's own redundancy (RAIS5 reconstructs
// internally and reports success) means the data is gone — the read is
// served anyway so the replay continues, and the loss is counted in
// UnrecoveredReads. off/size locate the logical range for the event
// stream.
func (rp *readPath) issueRead(devOff, bytes int64, extra time.Duration, off, size int64, attempt int, done func()) {
	rp.se.read(devOff, bytes, extra, func(err error) {
		switch {
		case err == nil:
			done()
		case errors.Is(err, fault.ErrTransient) && attempt < maxRetries:
			rp.stats.FaultRetries++
			rp.obs.Retry(rp.eng.Now(), "read", off, size, attempt+1)
			rp.eng.ScheduleAfter(retryBackoff<<attempt, func() {
				rp.issueRead(devOff, bytes, extra, off, size, attempt+1, done)
			})
		default:
			rp.stats.UnrecoveredReads++
			rp.obs.Recover(rp.eng.Now(), obs.RecoverReadAbandon, off, size, 0)
			done()
		}
	})
}

// tagName resolves a codec tag to its registry name for the event
// stream.
func tagName(reg *compress.Registry, tag compress.Tag) string {
	if c, err := reg.ByTag(tag); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("tag%d", tag)
}

// verifyExtent decompresses the payload snapshot taken at read submission
// and compares it with the regenerated original content (the inline,
// no-pool path; buffers come from and return to the freelist here).
func (rp *readPath) verifyExtent(ext *Extent, payload []byte) {
	res := rp.verifyExtentWork(ext, payload, rp.se.getBuf(), rp.se.getBuf())
	rp.se.putBuf(res.got)
	rp.se.putBuf(res.want)
	if res.err != nil {
		rp.fs.fail(res.err)
	}
}

// verifyResult carries a completed verification back to the event loop:
// the two scratch buffers to recycle and the failure, if any.
type verifyResult struct {
	got, want []byte
	err       error
}

// verifyExtentWork decompresses the payload snapshot into got, regenerates
// the original content into want, and compares the two. It reads only
// immutable state (the snapshot, the extent's placement-time fields, the
// concurrency-safe generator), so it may run on a pool worker; the caller
// owns recycling the returned buffers.
func (rp *readPath) verifyExtentWork(ext *Extent, payload, got, want []byte) verifyResult {
	if payload == nil {
		return verifyResult{got: got, want: want,
			err: fmt.Errorf("core: verify: extent at %d has no payload", ext.Offset)}
	}
	codec, err := rp.reg.ByTag(ext.Tag)
	if err != nil {
		return verifyResult{got: got, want: want, err: err}
	}
	got, err = compress.DecompressAppend(codec, got, payload, int(ext.OrigLen))
	if err != nil {
		return verifyResult{got: got, want: want,
			err: fmt.Errorf("core: verify: decompress extent at %d: %w", ext.Offset, err)}
	}
	want = rp.data.AppendBlock(want, ext.Offset, int(ext.OrigLen), ext.Version)
	if !bytes.Equal(got, want) {
		return verifyResult{got: got, want: want,
			err: fmt.Errorf("core: verify: content mismatch for extent at %d", ext.Offset)}
	}
	return verifyResult{got: got, want: want}
}
