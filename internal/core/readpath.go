package core

import (
	"bytes"
	"fmt"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/obs"
	"edc/internal/sim"
)

// readPath is the read stage of the request pipeline: host-cache check →
// mapping lookup → device read → decompression (host CPU station or
// in-device codec engine) → optional round-trip verification. Device I/O
// and the mapping go through the store engine; completions return to the
// frontend via the complete/drop callbacks.
type readPath struct {
	eng  *sim.Engine
	cpu  sim.Server
	fs   *failState
	se   *storeEngine
	cost CostModel
	reg  *compress.Registry
	data *datagen.Generator
	obs  *obs.Collector

	hostCache   *cache.Cache
	verify      bool
	offload     bool
	offloadCost CodecCost

	// complete finishes one host read; drop releases a read without
	// observing it on a failed run.
	complete func(resp time.Duration)
	drop     func(n int)
}

// read plans and issues one host read. Fully cached reads are served
// from DRAM, skipping the device and any decompression.
func (rp *readPath) read(arrival time.Duration, off, size int64) {
	// ContainsRange mutates the cache (LRU touch + hit/miss counters), so
	// the single existing call's result feeds both the trace and the
	// branch — calling it again for observability would perturb the run.
	hit := rp.hostCache.ContainsRange(off, size)
	if rp.obs != nil && rp.hostCache.CapacityBlocks() > 0 {
		rp.obs.CacheLookup(rp.eng.Now(), off, size, hit)
	}
	if hit {
		rp.eng.ScheduleAfter(CacheHitLatency, func() {
			rp.complete(rp.eng.Now() - arrival)
		})
		return
	}
	plan, err := rp.se.readPlan(off, size)
	if err != nil {
		rp.fs.fail(err)
		rp.drop(1)
		return
	}
	remaining := len(plan)
	if remaining == 0 {
		rp.complete(rp.eng.Now() - arrival)
		return
	}
	complete := func() {
		remaining--
		if remaining == 0 {
			rp.hostCache.InsertRange(off, size)
			rp.complete(rp.eng.Now() - arrival)
		}
	}
	for _, seg := range plan {
		switch {
		case seg.Ext == nil:
			// Hole: the device still transfers zero pages.
			rp.se.read(0, seg.Bytes, 0, complete)
		case seg.Ext.Tag == compress.TagNone:
			rp.se.read(seg.Ext.DevOff, seg.Bytes, 0, complete)
		default:
			ext := seg.Ext
			if rp.obs != nil {
				rp.obs.Decompress(rp.eng.Now(), ext.Offset, ext.OrigLen, tagName(rp.reg, ext.Tag), ext.CompLen)
			}
			// Snapshot the payload now: an overwrite may free the extent
			// while this read is in flight (the host still gets the data
			// captured at submission time).
			var payload []byte
			if rp.verify {
				payload = rp.se.payload(ext)
			}
			if rp.offload {
				// The device's codec engine decompresses in-line.
				extra := time.Duration(float64(ext.OrigLen) / rp.offloadCost.DecompressBps * float64(time.Second))
				rp.se.read(ext.DevOff, ext.CompLen, extra, func() {
					if rp.verify {
						rp.verifyExtent(ext, payload)
					}
					complete()
				})
				break
			}
			rp.se.read(ext.DevOff, ext.CompLen, 0, func() {
				svc := rp.cost.DecompressTime(ext.Tag, ext.OrigLen)
				rp.cpu.Submit(sim.Job{Service: svc, Done: func(_, _ time.Duration) {
					if rp.verify {
						rp.verifyExtent(ext, payload)
					}
					complete()
				}})
			})
		}
	}
}

// tagName resolves a codec tag to its registry name for the event
// stream.
func tagName(reg *compress.Registry, tag compress.Tag) string {
	if c, err := reg.ByTag(tag); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("tag%d", tag)
}

// verifyExtent decompresses the payload snapshot taken at read submission
// and compares it with the regenerated original content.
func (rp *readPath) verifyExtent(ext *Extent, payload []byte) {
	if payload == nil {
		rp.fs.fail(fmt.Errorf("core: verify: extent at %d has no payload", ext.Offset))
		return
	}
	codec, err := rp.reg.ByTag(ext.Tag)
	if err != nil {
		rp.fs.fail(err)
		return
	}
	got, err := codec.Decompress(payload, int(ext.OrigLen))
	if err != nil {
		rp.fs.fail(fmt.Errorf("core: verify: decompress extent at %d: %w", ext.Offset, err))
		return
	}
	want := rp.data.AppendBlock(rp.se.getBuf(), ext.Offset, int(ext.OrigLen), ext.Version)
	equal := bytes.Equal(got, want)
	rp.se.putBuf(want)
	if !equal {
		rp.fs.fail(fmt.Errorf("core: verify: content mismatch for extent at %d", ext.Offset))
	}
}
