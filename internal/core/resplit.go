package core

import (
	"fmt"

	"edc/internal/maint"
)

// Heat-balanced shard repartitioning. A statically partitioned serve
// volume wastes cores when the workload skews: one shard's event loop
// saturates while the others idle, and the shared codec pool can only
// help with compression work, not with the serialized mapping/allocator
// work on the hot shard's loop. Resplitting attacks the loop itself —
// when one shard's admitted-op share stays above its fair share for
// several evaluation windows, its LBA range is split at a quiesced,
// heat-balanced boundary into two shards with independent event loops.
//
// The protocol (see DESIGN.md §16 for the full story):
//
//  1. Trigger: each shard counts admitted ops; every WindowOps of its
//     own ops it compares its delta against the fleet's. Exceeding
//     Factor times the post-split fair share for Streak consecutive
//     windows arms a split.
//  2. Quiesce: the shard requests the router's write lock from a helper
//     goroutine while its event loop keeps draining its own mailbox —
//     a submitter holding the read lock may be blocked on exactly this
//     mailbox, so parking without draining would deadlock. Once the
//     lock is held the residual mailbox is drained, the engine runs
//     pending work dry (the SD flush timer is a normal event, so the
//     staging buffer empties too), and the split proceeds only if
//     nothing is left in flight.
//  3. Split: a heat-weighted scan picks the boundary that halves the
//     shard's access weight without straddling any extent's home range;
//     a new pipeline is stamped from the setup factories, the tail's
//     block mappings are cloned into it (slots reallocated on the new
//     backend), the source tail is trimmed (freeing its slots), and the
//     router's bounds/shards tables are spliced under the held lock.
//
// Resplitting is refused in combination with dedup (a foreign reference
// may span the boundary), read verification (expected content is keyed
// by shard-local offset, which the move rebases), and QoS (per-shard
// rate shares assume a fixed shard count). It is driven by real-time
// traffic imbalance, so runs with it enabled are not byte-deterministic
// across machines; it is off by default and every determinism gate runs
// without it.

// ResplitConfig tunes heat-balanced shard repartitioning in serve mode.
// The zero value disables it; enabling it with zero thresholds applies
// the defaults noted per field.
type ResplitConfig struct {
	// Enabled turns repartitioning on.
	Enabled bool
	// MaxShards caps the total shard count; splits stop once reached
	// (0: twice the initial shard count).
	MaxShards int
	// Factor is how many times the post-split fair share (total window
	// ops divided by shards+1) a shard's window delta must reach to be
	// considered hot (0: 2.0).
	Factor float64
	// WindowOps is how many of its own admitted ops a shard waits
	// between trigger evaluations (0: 4096).
	WindowOps int64
	// Streak is how many consecutive hot windows arm a split (0: 3).
	Streak int
}

// normalized applies the documented defaults against the initial shard
// count; a disabled config normalizes to the zero value.
func (c ResplitConfig) normalized(initialShards int) ResplitConfig {
	if !c.Enabled {
		return ResplitConfig{}
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 2 * initialShards
	}
	if c.Factor <= 0 {
		c.Factor = 2.0
	}
	if c.WindowOps <= 0 {
		c.WindowOps = 4096
	}
	if c.Streak <= 0 {
		c.Streak = 3
	}
	return c
}

// maybeResplit evaluates the repartitioning trigger on this shard's
// event-loop goroutine: every WindowOps of its own admitted ops, the
// shard compares its window delta against the fleet total; sustaining
// Factor times the post-split fair share for Streak windows starts a
// split attempt.
func (ss *serveShard) maybeResplit() {
	sv := ss.sv
	if !sv.rcfg.Enabled || ss.splitting {
		return
	}
	self := ss.ops.Load()
	if self-ss.evalSelf < sv.rcfg.WindowOps {
		return
	}
	sv.mu.RLock()
	n := len(sv.shards)
	var total int64
	for _, s := range sv.shards {
		total += s.ops.Load()
	}
	sv.mu.RUnlock()
	dSelf := self - ss.evalSelf
	dTotal := total - ss.evalTotal
	ss.evalSelf, ss.evalTotal = self, total
	if n >= sv.rcfg.MaxShards || dTotal <= 0 {
		ss.streak = 0
		return
	}
	// Fair share is measured post-split (total over shards+1): a shard
	// is hot when splitting it would still leave both halves with work,
	// which also lets a single-shard system split at Factor 2.0.
	fair := float64(dTotal) / float64(n+1)
	if float64(dSelf) < sv.rcfg.Factor*fair {
		ss.streak = 0
		return
	}
	ss.streak++
	if ss.streak < sv.rcfg.Streak {
		return
	}
	ss.streak = 0
	ss.trySplit()
}

// trySplit quiesces this shard and, holding the router's write lock,
// splits its LBA range. Runs on the shard's event-loop goroutine.
func (ss *serveShard) trySplit() {
	sv := ss.sv
	ss.splitting = true
	defer func() { ss.splitting = false }()
	lockc := make(chan struct{})
	go func() {
		sv.mu.Lock()
		close(lockc)
	}()
	// Keep draining our own mailbox while the helper waits for the
	// write lock: a submitter holding the read lock may be blocked
	// mailing to this very shard, and the write lock is not granted
	// until every reader releases.
	stop := ss.stop
wait:
	for {
		select {
		case <-lockc:
			break wait
		case op := <-ss.mail:
			ss.ingest(op)
		case <-stop:
			// Stop is racing us; disable this case (a closed channel
			// fires forever) and keep waiting for the lock — the closed
			// flag check below aborts the split, and the run loop sees
			// the stop again afterwards.
			stop = nil
		}
	}
	defer sv.mu.Unlock()
	if sv.closed {
		return
	}
	// Quiesce: drain residual mail, then run the engine dry of real
	// events. The SD flush timer is a normal event, so RunPending
	// empties the staging buffer; maintenance timers are housekeeping
	// and stay parked. Split only if truly nothing is left in flight.
	for {
		select {
		case op := <-ss.mail:
			ss.ingest(op)
			continue
		default:
		}
		break
	}
	ss.dev.armMaint()
	ss.dev.eng.RunPending()
	if ss.dev.fs.failed() || len(ss.pending) > 0 {
		return
	}
	sv.splitShard(ss)
}

// splitShard splits ss's LBA range at a heat-balanced boundary. Called
// with the router's write lock held and ss fully quiesced.
func (sv *Server) splitShard(ss *serveShard) {
	idx := -1
	for i, s := range sv.shards {
		if s == ss {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	d := ss.dev
	width := sv.bounds[idx+1] - sv.bounds[idx]
	widthBlocks := width / BlockSize
	if widthBlocks < 2 {
		return
	}
	splitBlock := chooseSplitBlock(d, widthBlocks)
	if splitBlock <= 0 || splitBlock >= widthBlocks {
		return
	}
	localSplit := splitBlock * BlockSize
	ns, kid, err := sv.buildShard(len(sv.kids), width-localSplit)
	if err != nil {
		return
	}
	// Align the new engine's clock with the source shard's so heat
	// epochs and maintenance deadlines agree across the split.
	ns.dev.eng.RunUntil(d.eng.Now())
	nse := ns.dev.se
	var movedSlot int64
	clone := func(e *Extent) (*Extent, error) {
		if e.pending || e.shared {
			return nil, fmt.Errorf("core: extent at %d not movable (pending=%v shared=%v)", e.Offset, e.pending, e.shared)
		}
		devOff, err := nse.alloc.Alloc(e.SlotLen)
		if err != nil {
			return nil, err
		}
		ne := &Extent{
			Offset:  e.Offset - localSplit,
			OrigLen: e.OrigLen,
			CompLen: e.CompLen,
			SlotLen: e.SlotLen,
			Tag:     e.Tag,
			DevOff:  devOff,
			Version: e.Version,
			Heat:    e.Heat,
		}
		if nse.obs != nil {
			nse.obs.SlotAlloc(nse.now(), ne.SlotLen)
		}
		movedSlot += ne.SlotLen
		return ne, nil
	}
	moved, err := d.se.mapping.SplitTail(localSplit, nse.mapping, clone)
	if err != nil {
		// The new shard never went live: abandon it (its partially
		// built mapping, slots, and collector are unreachable) and keep
		// serving the unsplit range.
		return
	}
	// Retire the migrated tail from the source shard, freeing its slots
	// on the old backend. A failure here means the two shards disagree
	// about who owns the tail — fatal for the source.
	if err := d.se.mapping.Trim(localSplit, width-localSplit); err != nil {
		d.fs.fail(err)
		return
	}
	// Splice the router: the new shard serves the tail of ss's range.
	gsplit := sv.bounds[idx] + localSplit
	sv.bounds = append(sv.bounds, 0)
	copy(sv.bounds[idx+2:], sv.bounds[idx+1:])
	sv.bounds[idx+1] = gsplit
	sv.shards = append(sv.shards, nil)
	copy(sv.shards[idx+2:], sv.shards[idx+1:])
	sv.shards[idx+1] = ns
	sv.kids = append(sv.kids, kid)
	d.stats.Resplits++
	d.obs.Resplit(d.eng.Now(), localSplit, moved, movedSlot,
		d.se.mapping.LiveBlocks(), nse.mapping.LiveBlocks())
	// Reset this shard's trigger marks against the new fleet total; the
	// new shard starts its own window from zero.
	ss.evalSelf = ss.ops.Load()
	ss.evalTotal = 0
	for _, s := range sv.shards {
		ss.evalTotal += s.ops.Load()
	}
	go ns.run()
}

// chooseSplitBlock picks the boundary (in blocks, shard-local) that
// halves the shard's heat-weighted access mass without straddling any
// extent's home range. Weight per block is the mapped extent's current
// heat plus one (so cold data still counts by occupancy); unmapped
// blocks weigh nothing. Returns 0 when no valid boundary exists.
func chooseSplitBlock(d *Device, widthBlocks int64) int64 {
	m := d.se.mapping
	epoch := maint.Epoch(d.se.now(), d.se.epochLen)
	weight := func(b int64) int64 {
		e := m.table[b]
		if e == nil {
			return 0
		}
		return int64(e.Heat.Hits(epoch)) + 1
	}
	// minHome[b] = the lowest home-start block among extents mapped at
	// or beyond b: boundary b is safe iff minHome[b] >= b, i.e. no
	// extent mapped in the tail has live blocks (which are always
	// within its home range) on the left side.
	minHome := make([]int64, widthBlocks+1)
	minHome[widthBlocks] = widthBlocks
	for b := widthBlocks - 1; b >= 0; b-- {
		minHome[b] = minHome[b+1]
		if e := m.table[b]; e != nil {
			if h := e.Offset / BlockSize; h < minHome[b] {
				minHome[b] = h
			}
		}
	}
	var total int64
	for b := int64(0); b < widthBlocks; b++ {
		total += weight(b)
	}
	if total == 0 {
		return 0
	}
	var acc int64
	for b := int64(1); b < widthBlocks; b++ {
		acc += weight(b - 1)
		if 2*acc >= total && minHome[b] >= b {
			return b
		}
	}
	return 0
}
