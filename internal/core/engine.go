package core

import (
	"time"

	"edc/internal/dedup"
	"edc/internal/maint"
	"edc/internal/obs"
)

// storeEngine owns the storage side of the pipeline: the slot allocator,
// the logical-to-device mapping table, the backend, the verify-mode
// payload store, and the replay buffer freelist. The write path calls it
// to place compressed runs; the read path calls it to plan and issue
// device reads. It performs no policy decisions and observes no
// statistics of its own.
type storeEngine struct {
	be      Backend
	alloc   *Allocator
	mapping *Mapping

	// obs/now feed slot alloc/free events to the observability layer;
	// both are set by NewDevice (now is the owning engine's clock).
	obs *obs.Collector
	now func() time.Duration

	payloads map[*Extent][]byte // verify mode; nil otherwise

	// epochLen is the heat-epoch length used when stamping extent
	// temperature; set by NewDevice (default even with maintenance off,
	// so heat tracking itself never branches).
	epochLen time.Duration

	// freeBufs recycles content/payload buffers. It is only touched by
	// the event-loop goroutine (workers receive buffers by closure and
	// hand them back through the joined future), so no locking.
	freeBufs [][]byte

	// dedup is the content index: fingerprint -> stored extent. Nil
	// unless dedup is enabled; entries are registered only once the
	// extent's device write is durable, and removed when the extent's
	// slot is released. dedupKey seeds the fingerprint; dedupMax caps
	// the index size. Event-loop goroutine only.
	dedup    map[dedup.Sum]*Extent
	dedupKey uint64
	dedupMax int
}

// newStoreEngine wires allocator + mapping over be for a volume of
// volBytes. Freed extents trim their device range; in verify mode the
// retained payload snapshot is dropped with the extent.
func newStoreEngine(be Backend, volBytes int64, verify bool) *storeEngine {
	se := &storeEngine{
		be:    be,
		alloc: NewAllocator(be.LogicalBytes()),
		// NewDevice rebinds now to the owning engine's clock; the default
		// keeps bare store engines (unit tests) safe to touch.
		now: func() time.Duration { return 0 },
	}
	se.mapping = NewMapping(volBytes, se.alloc, se.freeExtent)
	if verify {
		se.payloads = make(map[*Extent][]byte)
	}
	return se
}

// freeExtent is the mapping's slot-release callback: trim the device
// range, drop any verify-mode payload and content-index entry, and
// record the event.
func (se *storeEngine) freeExtent(e *Extent) {
	if se.obs != nil {
		se.obs.SlotFree(se.now(), e.Offset, e.OrigLen, e.SlotLen)
	}
	se.be.Trim(e.DevOff, e.SlotLen)
	if se.payloads != nil {
		delete(se.payloads, e)
	}
	se.dedupForget(e)
}

// dedupLookup resolves a fingerprint to a reusable stored extent: it
// must still be live, durable (not pending), and the same uncompressed
// length as the incoming run. Returns nil on a miss.
func (se *storeEngine) dedupLookup(sum dedup.Sum, size int64) *Extent {
	e := se.dedup[sum]
	if e == nil || e.pending || e.live <= 0 || e.OrigLen != size {
		return nil
	}
	return e
}

// dedupRegister indexes a durably stored extent under its fingerprint.
// First writer wins — a duplicate stored before its fingerprint hit the
// index keeps its own slot and simply is not indexed — and the index
// stops growing at dedupMax entries.
func (se *storeEngine) dedupRegister(e *Extent) {
	if se.dedup == nil || !e.hasSum {
		return
	}
	if _, ok := se.dedup[e.sum]; ok {
		return
	}
	if len(se.dedup) >= se.dedupMax {
		return
	}
	se.dedup[e.sum] = e
}

// dedupForget drops e's content-index entry if e is the indexed extent
// for its fingerprint.
func (se *storeEngine) dedupForget(e *Extent) {
	if se.dedup != nil && e.hasSum && se.dedup[e.sum] == e {
		delete(se.dedup, e.sum)
	}
}

// dedupRemap transfers old's fingerprint (and index entry, if old holds
// it) to repl — maintenance relocating an indexed extent keeps the
// index pointing at the surviving copy.
func (se *storeEngine) dedupRemap(old, repl *Extent) {
	if se.dedup == nil || !old.hasSum {
		return
	}
	repl.sum, repl.hasSum = old.sum, true
	if se.dedup[old.sum] == old {
		se.dedup[old.sum] = repl
	}
	old.hasSum = false
}

// adoptMapping swaps in a recovered mapping table (crash recovery),
// rewiring the standard slot-release callback onto it. The mapping must
// already be built over se's allocator.
func (se *storeEngine) adoptMapping(m *Mapping) {
	se.mapping = m
	m.alloc = se.alloc
	m.onFree = se.freeExtent
	// deferFrees is engine policy, not persisted mapping state: with
	// dedup on, the recovered table must keep parking releases on the
	// dying batch, or post-recovery frees happen inline — no unref
	// records, and slots freed before their causing record's durable
	// point, breaking a second recovery's replay ordering.
	m.deferFrees = se.dedup != nil
}

// getBuf returns a recycled buffer (possibly nil) with zero length.
// Event-loop goroutine only.
func (se *storeEngine) getBuf() []byte {
	if n := len(se.freeBufs); n > 0 {
		b := se.freeBufs[n-1]
		se.freeBufs = se.freeBufs[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf recycles a buffer for a later getBuf. Event-loop goroutine
// only; the caller must not retain b.
func (se *storeEngine) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	se.freeBufs = append(se.freeBufs, b[:0])
}

// place allocates a slot of slotLen and maps [ext.Offset, +OrigLen) to
// the extent, filling ext.DevOff. Any previous extents covering those
// blocks are unmapped (and their slots freed).
func (se *storeEngine) place(ext *Extent) error {
	devOff, err := se.alloc.Alloc(ext.SlotLen)
	if err != nil {
		return err
	}
	ext.DevOff = devOff
	if se.obs != nil {
		se.obs.SlotAlloc(se.now(), ext.SlotLen)
	}
	return se.mapping.Insert(ext)
}

// touch bumps ext's temperature at the current heat epoch. Heat is a
// strict observation — nothing on the foreground paths reads it back —
// so touching costs the same whether maintenance is on or off.
func (se *storeEngine) touch(ext *Extent) {
	ext.Heat.Touch(maint.Epoch(se.now(), se.epochLen))
}

// keepPayload snapshots the stored bytes for verify-mode reads.
func (se *storeEngine) keepPayload(ext *Extent, data []byte) {
	if se.payloads != nil {
		se.payloads[ext] = append([]byte(nil), data...)
	}
}

// payload returns the verify-mode snapshot for ext (nil outside verify
// mode or after the extent died).
func (se *storeEngine) payload(ext *Extent) []byte {
	return se.payloads[ext]
}

// realloc moves ext to a freshly allocated slot of the same size after
// a hard write failure. The failed slot is abandoned, not freed — the
// media there is bad — so its bytes stay accounted as in use for the
// rest of the run.
func (se *storeEngine) realloc(ext *Extent) error {
	devOff, err := se.alloc.Alloc(ext.SlotLen)
	if err != nil {
		return err
	}
	ext.DevOff = devOff
	if se.obs != nil {
		se.obs.SlotAlloc(se.now(), ext.SlotLen)
	}
	return nil
}

// write issues a device write of the extent's slot; done fires when the
// transfer (plus any device-side codec time in extra) completes, with
// the operation outcome (nil, or an injected *fault.Error).
func (se *storeEngine) write(devOff, slotLen int64, extra time.Duration, done func(err error)) {
	se.be.Write(devOff, slotLen, extra, done)
}

// read issues a device read; done fires at transfer completion with the
// operation outcome.
func (se *storeEngine) read(devOff, bytes int64, extra time.Duration, done func(err error)) {
	se.be.Read(devOff, bytes, extra, done)
}

// readPlan decomposes a block-aligned read into extents and holes.
func (se *storeEngine) readPlan(off, size int64) ([]ReadSegment, error) {
	return se.mapping.ReadPlan(off, size)
}

// failState carries the first fatal replay error; every stage shares one
// instance so any stage can abort the run.
type failState struct {
	err error
}

// fail records the first fatal error (later errors are dropped).
func (f *failState) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

// failed reports whether the replay has aborted.
func (f *failState) failed() bool { return f.err != nil }
