package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/qos"
	"edc/internal/sim"
	"edc/internal/trace"
)

// Serve mode runs the EDC pipelines live instead of replaying a recorded
// trace: client goroutines submit reads and writes through a
// goroutine-safe facade, each LBA shard's event loop becomes a
// long-lived goroutine draining a bounded submission mailbox, and
// open-loop latency is measured in virtual time — from the operation's
// intended arrival stamp to its virtual completion — so offered load
// beyond the simulated device's capacity shows up as queueing collapse
// (latency growing without bound) exactly as it would on hardware,
// which closed-loop replay structurally cannot expose.

// DefaultServeMailbox bounds each shard's submission mailbox: when a
// shard's event loop falls behind, submitters block on the full mailbox
// (backpressure) instead of growing an unbounded queue.
const DefaultServeMailbox = 256

// DefaultServeBatch caps how many submissions one event-loop wakeup
// drains from the mailbox before running the engine: batching amortizes
// the channel handoff without letting one drain starve the clock.
const DefaultServeBatch = 64

// ErrServeStopped reports a submission to — or a second Stop of — a
// Server that has already been stopped.
var ErrServeStopped = errors.New("core: server stopped")

// ServeSetup describes a live serving stack: like ShardSetup, the
// volume is partitioned into contiguous block-aligned LBA ranges, each
// served by a private pipeline instance built by the factories. Unlike
// replay, there is no trace to derive a global intensity signal from, so
// each shard's workload monitor measures its own slice of the traffic
// (Options.Meter is honored if the factory sets one).
type ServeSetup struct {
	// Shards is the partition width (>= 1).
	Shards int
	// VolumeBytes is the full logical volume being partitioned.
	VolumeBytes int64
	// Backend builds one shard's private backend on its private engine.
	Backend func(eng *sim.Engine) (Backend, error)
	// Options builds one shard's Options; it must return fresh per-shard
	// mutable state on every call, exactly as ShardSetup.Options does.
	Options func(shard int) (Options, error)
	// Mailbox bounds each shard's submission mailbox
	// (0: DefaultServeMailbox).
	Mailbox int
	// Batch caps submissions drained per event-loop wakeup
	// (0: DefaultServeBatch).
	Batch int
	// Obs observes the merged run: each shard gets a private buffering
	// child collector, folded back deterministically at Stop. Nil
	// disables observability.
	Obs *obs.Collector
	// Resplit enables heat-balanced shard repartitioning: a shard whose
	// admitted-op share stays above its fair share splits its LBA range
	// at a quiesced, heat-balanced boundary (see ResplitConfig). The
	// zero value keeps the shard map fixed.
	Resplit ResplitConfig
	// Paced keeps every shard's virtual clock at or below the highest
	// arrival stamp it has admitted so far (a conservative watermark):
	// completion events past the watermark stay queued until a later
	// arrival — or the stop-drain — advances it. For submitters that
	// mail operations in globally non-decreasing stamp order this makes
	// every virtual-time result a pure function of the operation
	// sequence, independent of GOMAXPROCS and mailbox batching; without
	// it, an engine that ran dry ahead of an arrival still in flight
	// clamps that arrival to wherever the clock happened to be — a real
	// scheduling race leaking into virtual latency. The synchronous
	// Read/Write wrappers are refused under pacing (their completion may
	// only be released by a later arrival the blocked caller would never
	// send), as is resplitting (its quiesce protocol must run the engine
	// dry past the watermark).
	Paced bool
}

// serveResult is one completed facade operation: the open-loop latency
// (virtual completion minus intended arrival) and the first error any
// sub-operation hit.
type serveResult struct {
	lat time.Duration
	err error
}

// joinOp joins the per-shard sub-operations of one facade call: the
// call's latency is the slowest sub-operation's, and the buffered result
// channel lets completion outlive a caller that gave up on its context.
type joinOp struct {
	mu        sync.Mutex
	remaining int
	lat       time.Duration
	err       error
	res       chan serveResult
}

// complete folds one sub-operation's outcome in; the last one fires the
// result channel. Sub-operations complete on their shard's event-loop
// goroutine, so the fold is mutex-guarded.
func (j *joinOp) complete(lat time.Duration, err error) {
	j.mu.Lock()
	if err != nil && j.err == nil {
		j.err = err
	}
	if lat > j.lat {
		j.lat = lat
	}
	j.remaining--
	fire := j.remaining == 0
	lat, err = j.lat, j.err
	j.mu.Unlock()
	if fire {
		j.res <- serveResult{lat: lat, err: err}
	}
}

// serveOp is one shard-local submission: an intended virtual arrival
// stamp plus the (already shard-rebased) operation it carries.
type serveOp struct {
	at     time.Duration // intended virtual arrival (offset from serve start)
	off    int64         // shard-local byte offset
	size   int64         // length in bytes
	write  bool
	tenant string // submitting tenant ("" untagged)
	shaped bool   // the tenant's bucket was already charged
	j      *joinOp
}

// Server routes live requests to LBA-range shards, each drained by a
// long-lived event-loop goroutine. Build one with NewServer; submit with
// Read/Write (goroutine-safe, any number of concurrent callers); Stop
// drains the mailboxes and returns the merged RunStats.
type Server struct {
	vol    int64
	bounds []int64
	shards []*serveShard

	// setup keeps the (normalized) factories so a resplit can stamp out
	// an additional shard pipeline mid-run.
	setup ServeSetup
	// rcfg is the normalized repartitioning policy (Enabled=false keeps
	// the shard map fixed).
	rcfg ResplitConfig

	// qcfg is the QoS configuration shared by every shard (nil when QoS
	// is off); the facade-side strict-tenant check runs against it
	// before any piece is mailed.
	qcfg *qos.Config

	obs  *obs.Collector
	kids []*obs.Collector

	// paced freezes each shard's clock at its arrival watermark; see
	// ServeSetup.Paced. Immutable after NewServer.
	paced bool

	mu     sync.RWMutex // guards closed and the shard router (bounds/shards/kids)
	closed bool
	stalls atomic.Int64 // submissions that found a full mailbox
}

// serveShard is one shard's live pipeline: the Device, its bounded
// mailbox, and the event-loop goroutine state. All fields past the
// channels are touched only by that goroutine.
type serveShard struct {
	sv   *Server
	id   int
	dev  *Device
	mail chan *serveOp
	stop chan struct{}
	done chan struct{}

	batch   int
	pending map[*serveOp]struct{}
	// inflightBy counts pending operations per tenant; a tenant with a
	// MaxDeferred bound is refused admission past it (the serve-mode
	// analogue of the replay frontend's deferred-queue bound).
	inflightBy map[string]int

	// ops counts admitted operations; written by this shard's event-loop
	// goroutine, read by other shards evaluating the resplit trigger.
	ops atomic.Int64
	// Resplit trigger state, touched only by this shard's goroutine:
	// the ops/total marks of the last evaluation and how many
	// consecutive windows this shard exceeded its fair share.
	evalSelf  int64
	evalTotal int64
	streak    int
	// splitting marks a trySplit in progress, so the ingests that drain
	// the mailbox while awaiting the router lock cannot re-enter it.
	splitting bool
	// horizon is the highest arrival stamp admitted so far — the paced
	// mode watermark the engine may run up to.
	horizon time.Duration
}

// NewServer validates the setup, stamps out one pipeline per shard, and
// starts the shard event-loop goroutines.
func NewServer(setup ServeSetup) (*Server, error) {
	if setup.Shards < 1 {
		setup.Shards = 1
	}
	if setup.Backend == nil || setup.Options == nil {
		return nil, errors.New("core: serve setup needs Backend and Options factories")
	}
	vol := setup.VolumeBytes &^ (BlockSize - 1)
	if vol <= 0 {
		return nil, errors.New("core: volume smaller than one block")
	}
	if int64(setup.Shards) > vol/BlockSize {
		return nil, fmt.Errorf("core: %d shards exceed %d volume blocks", setup.Shards, vol/BlockSize)
	}
	if setup.Mailbox <= 0 {
		setup.Mailbox = DefaultServeMailbox
	}
	if setup.Batch <= 0 {
		setup.Batch = DefaultServeBatch
	}
	if setup.Paced && setup.Resplit.Enabled {
		return nil, errors.New("core: resplit quiesce must run the engine past the paced-mode watermark; disable one of the two")
	}
	sv := &Server{
		vol:    vol,
		bounds: shardBounds(vol, setup.Shards),
		shards: make([]*serveShard, setup.Shards),
		setup:  setup,
		rcfg:   setup.Resplit.normalized(setup.Shards),
		obs:    setup.Obs,
		kids:   make([]*obs.Collector, setup.Shards),
		paced:  setup.Paced,
	}
	for i := 0; i < setup.Shards; i++ {
		ss, kid, err := sv.buildShard(i, sv.bounds[i+1]-sv.bounds[i])
		if err != nil {
			return nil, err
		}
		sv.kids[i] = kid
		sv.shards[i] = ss
	}
	for _, ss := range sv.shards {
		go ss.run()
	}
	return sv, nil
}

// buildShard stamps out one shard pipeline from the setup factories:
// id is its observability shard tag, vol its LBA-range width. Used by
// NewServer for the initial partition and by a resplit for the shard
// it adds mid-run; the caller registers the returned shard and child
// collector in the router.
func (sv *Server) buildShard(id int, vol int64) (*serveShard, *obs.Collector, error) {
	opts, err := sv.setup.Options(id)
	if err != nil {
		return nil, nil, err
	}
	if id == 0 {
		sv.qcfg = opts.QoS
	}
	if opts.Faults != nil && opts.Faults.PowerCutAt > 0 {
		return nil, nil, errors.New("core: serve mode does not support power-cut fault plans")
	}
	if sv.rcfg.Enabled {
		// Resplitting migrates extents by re-homing their mapping
		// entries; features whose state is keyed to a fixed shard-local
		// address space cannot survive that and are refused up front.
		switch {
		case opts.Dedup != nil && opts.Dedup.Enabled:
			return nil, nil, errors.New("core: resplit cannot migrate dedup-shared extents (references may span the split boundary); disable one of the two")
		case opts.VerifyReads:
			return nil, nil, errors.New("core: resplit rebases extents to new shard-local offsets, which breaks offset-keyed read verification; disable one of the two")
		case opts.QoS != nil:
			return nil, nil, errors.New("core: resplit changes the shard count mid-run, invalidating per-shard QoS rate shares; disable one of the two")
		}
	}
	kid := sv.setup.Obs.Child(id)
	opts.Obs = kid
	eng := sim.NewEngine()
	be, err := sv.setup.Backend(eng)
	if err != nil {
		return nil, nil, fmt.Errorf("core: shard %d backend: %w", id, err)
	}
	dev, err := NewDevice(eng, be, vol, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: shard %d: %w", id, err)
	}
	if dev.wp.flushWait <= 0 && !dev.wp.disableSD {
		return nil, nil, errors.New("core: serve mode requires a positive SD flush timeout (a disabled timer would buffer the last run forever)")
	}
	// The device is consumed by the serve loop: a Play on it would
	// race the loop, so mark it used and detach the replay-only
	// closed-loop callbacks — serve tracks completion per operation.
	dev.played = true
	dev.stats.Trace = "serve"
	dev.wp.complete = func(time.Duration) {}
	dev.rp.complete = func(time.Duration) {}
	dev.wp.drop = func(int) {}
	dev.rp.drop = func(int) {}
	return &serveShard{
		sv:         sv,
		id:         id,
		dev:        dev,
		mail:       make(chan *serveOp, sv.setup.Mailbox),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		batch:      sv.setup.Batch,
		pending:    make(map[*serveOp]struct{}),
		inflightBy: make(map[string]int),
	}, kid, nil
}

// VolumeBytes returns the full logical volume size.
func (sv *Server) VolumeBytes() int64 { return sv.vol }

// Shards returns the current shard count — the initial partition width
// plus one per resplit so far.
func (sv *Server) Shards() int {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.shards)
}

// Stalls returns how many submissions so far found their shard mailbox
// full and had to block (the backpressure signal).
func (sv *Server) Stalls() int64 { return sv.stalls.Load() }

// Read submits one read of [off, off+size) arriving as soon as possible
// and blocks until it completes, returning its open-loop virtual
// latency. Goroutine-safe; ctx cancels the wait (the operation itself
// still completes server-side).
func (sv *Server) Read(ctx context.Context, off, size int64) (time.Duration, error) {
	return sv.submit(ctx, 0, off, size, false)
}

// Write submits one write of [off, off+size) arriving as soon as
// possible and blocks until it completes. Goroutine-safe.
func (sv *Server) Write(ctx context.Context, off, size int64) (time.Duration, error) {
	return sv.submit(ctx, 0, off, size, true)
}

// ReadAt is Read with an explicit intended virtual arrival stamp (offset
// from serve start): the shard admits the operation no earlier than at,
// and the returned latency is measured from at — so a generator that
// stamps arrivals from a seeded process gets coordinated-omission-free
// open-loop latencies regardless of scheduling jitter on the way in.
func (sv *Server) ReadAt(ctx context.Context, at time.Duration, off, size int64) (time.Duration, error) {
	return sv.submit(ctx, at, off, size, false)
}

// WriteAt is Write with an explicit intended virtual arrival stamp; see
// ReadAt.
func (sv *Server) WriteAt(ctx context.Context, at time.Duration, off, size int64) (time.Duration, error) {
	return sv.submit(ctx, at, off, size, true)
}

// shardIndex returns the shard whose [bounds[i], bounds[i+1]) range
// contains byte offset off.
func shardIndex(bounds []int64, off int64) int {
	lo, hi := 0, len(bounds)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if bounds[mid] <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Await blocks for one submitted operation's completion and returns its
// open-loop virtual latency. The operation completes server-side even if
// the context cancels the wait.
type Await func(ctx context.Context) (time.Duration, error)

// SubmitAt mails one operation to its shard(s) — blocking only on full
// mailboxes (backpressure) — and returns an Await for its completion.
// Splitting submission from waiting lets a stamp-ordered sequencer keep
// mailing while earlier operations are still in flight: a shard's
// virtual clock only ever advances to stamps it has already seen, so
// the clamp in admit measures true queueing delay rather than
// cross-client submission skew.
func (sv *Server) SubmitAt(ctx context.Context, at time.Duration, off, size int64, write bool) (Await, error) {
	return sv.SubmitAtTag(ctx, at, off, size, write, "")
}

// SubmitAtTag is SubmitAt with the submitting tenant's tag: the
// operation is shaped, prioritized, and accounted under that tenant's
// QoS treatment. Under a strict QoS config an unknown tenant fails
// immediately with ErrUnknownTenant. The empty tag is untagged traffic
// and behaves exactly as SubmitAt.
func (sv *Server) SubmitAtTag(ctx context.Context, at time.Duration, off, size int64, write bool, tenant string) (Await, error) {
	j, err := sv.mail(ctx, at, off, size, write, tenant)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (time.Duration, error) {
		select {
		case r := <-j.res:
			return r.lat, r.err
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}, nil
}

// submit is the synchronous form: mail, then wait.
func (sv *Server) submit(ctx context.Context, at time.Duration, off, size int64, write bool) (time.Duration, error) {
	if sv.paced {
		// Under pacing a completion past the watermark is only released
		// by a later arrival; a caller blocked here would never send it.
		return 0, errors.New("core: synchronous submit would deadlock under paced serve; use SubmitAt and await concurrently")
	}
	j, err := sv.mail(ctx, at, off, size, write, "")
	if err != nil {
		return 0, err
	}
	select {
	case r := <-j.res:
		return r.lat, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// mail aligns one facade operation against the volume, cuts it at
// shard boundaries, and mails the pieces to their shards, blocking on
// full mailboxes (backpressure). The read lock holds Stop off until
// every piece is mailed, so a mailbox is never closed under a
// submitter.
func (sv *Server) mail(ctx context.Context, at time.Duration, off, size int64, write bool, tenant string) (*joinOp, error) {
	if at < 0 {
		at = 0
	}
	if tenant != "" && !sv.qcfg.Known(tenant) {
		return nil, fmt.Errorf("core: tenant %q: %w", tenant, qos.ErrUnknownTenant)
	}
	aOff, aSize := alignRequest(sv.vol, trace.Request{Offset: off, Size: size, Write: write})
	// The read lock covers both passes over the router: a resplit
	// (holding the write lock) must not move a boundary between the
	// piece count and the mailing.
	sv.mu.RLock()
	if sv.closed {
		sv.mu.RUnlock()
		return nil, ErrServeStopped
	}
	// Count the shard-boundary pieces first: the join needs the fan-out
	// width before the first piece can be mailed.
	pieces := 0
	for o, n := aOff, aSize; n > 0; {
		i := shardIndex(sv.bounds, o)
		c := sv.bounds[i+1] - o
		if c > n {
			c = n
		}
		o += c
		n -= c
		pieces++
	}
	j := &joinOp{remaining: pieces, res: make(chan serveResult, 1)}
	for o, n := aOff, aSize; n > 0; {
		i := shardIndex(sv.bounds, o)
		c := sv.bounds[i+1] - o
		if c > n {
			c = n
		}
		op := &serveOp{at: at, off: o - sv.bounds[i], size: c, write: write, tenant: tenant, j: j}
		ss := sv.shards[i]
		select {
		case ss.mail <- op:
		default:
			sv.stalls.Add(1)
			select {
			case ss.mail <- op:
			case <-ctx.Done():
				sv.mu.RUnlock()
				return nil, ctx.Err()
			}
		}
		o += c
		n -= c
	}
	sv.mu.RUnlock()
	return j, nil
}

// Stop closes the intake, drains every shard's mailbox and pipeline,
// joins the event-loop goroutines, and returns the merged statistics.
// A second Stop returns ErrServeStopped.
func (sv *Server) Stop() (*RunStats, error) {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, ErrServeStopped
	}
	sv.closed = true
	sv.mu.Unlock()
	for _, ss := range sv.shards {
		close(ss.stop)
	}
	for _, ss := range sv.shards {
		<-ss.done
	}
	sv.obs.Absorb(sv.kids)
	parts := make([]*RunStats, len(sv.shards))
	for i, ss := range sv.shards {
		parts[i] = ss.dev.stats
	}
	merged := MergeRunStats(parts)
	merged.Obs = sv.obs.Report()
	merged.SubmitStalls = sv.stalls.Load()
	merged.ShardLiveBlocks = make([]int64, len(sv.shards))
	for i, ss := range sv.shards {
		merged.ShardLiveBlocks[i] = ss.dev.se.mapping.LiveBlocks()
	}
	merged.Backend = fmt.Sprintf("serve %d-shard [%s]", len(sv.shards), parts[0].Backend)
	var firstErr error
	for i, ss := range sv.shards {
		if err := ss.dev.fs.err; err != nil {
			firstErr = fmt.Errorf("core: shard %d: %w", i, err)
			break
		}
	}
	if merged.Err == nil {
		merged.Err = firstErr
	}
	return merged, firstErr
}

// run is the shard's event-loop goroutine: block on the mailbox, drain a
// batch, run the virtual-time engine until quiescent, repeat. On stop it
// drains whatever was already accepted, then finalizes the device.
func (ss *serveShard) run() {
	defer close(ss.done)
	if ss.dev.replayWorkers > 1 {
		// Every shard's codec futures go through one queue each on the
		// process-wide work-stealing pool, so a hot shard's backlog is
		// drained by whatever workers the cold shards leave idle.
		q := parallel.Shared().NewQueue()
		ss.dev.wp.pool = q
		ss.dev.rp.pool = q
		defer func() {
			q.Close()
			ss.dev.wp.pool = nil
			ss.dev.rp.pool = nil
		}()
	}
	for {
		select {
		case op := <-ss.mail:
			ss.ingest(op)
		case <-ss.stop:
			for {
				select {
				case op := <-ss.mail:
					ss.ingest(op)
				default:
					ss.finish()
					return
				}
			}
		}
	}
}

// ingest admits one submission plus up to batch-1 more already waiting,
// then runs the engine to quiescence. Admitting the whole batch before
// running lets simultaneous submissions sort into virtual-time order on
// the event heap regardless of mailbox interleaving.
func (ss *serveShard) ingest(first *serveOp) {
	ss.admit(first)
drain:
	for n := 1; n < ss.batch; n++ {
		select {
		case op := <-ss.mail:
			ss.admit(op)
		default:
			break drain
		}
	}
	// Re-arm maintenance for this batch (a tick that fired with nothing
	// pending disarmed itself). RunPending — not Run — so the armed
	// maintenance/checkpoint timers cannot fast-forward the clock ahead
	// of arrival stamps still in flight; they fire when real traffic
	// pushes the clock past their deadlines. Paced mode goes further:
	// the engine stops at the arrival watermark itself, so completions
	// past the newest stamp wait for the next batch (or the stop-drain)
	// and the clock can never outrun a stamp-ordered submitter.
	ss.dev.armMaint()
	if ss.sv.paced {
		ss.dev.eng.RunUntil(ss.horizon)
	} else {
		ss.dev.eng.RunPending()
	}
	if ss.dev.fs.failed() {
		ss.failAll()
		return
	}
	ss.maybeResplit()
}

// admit schedules one submission's arrival at max(virtual now, its
// intended stamp) — the clamp models the ingress queue: an arrival the
// pipeline could not have seen yet is admitted as soon as it can be.
// A tenant with a MaxDeferred bound is refused admission past that many
// pending operations in the shard (ErrAdmissionRejected).
func (ss *serveShard) admit(op *serveOp) {
	d := ss.dev
	if d.fs.failed() {
		op.j.complete(0, d.fs.err)
		return
	}
	if op.tenant != "" {
		if max := d.fe.qs.maxDeferred(op.tenant); max > 0 && ss.inflightBy[op.tenant] >= max {
			now := d.eng.Now()
			d.stats.Tenant(op.tenant).Rejected++
			d.obs.AdmitReject(now, op.off, op.size, op.write, op.tenant, obs.RejectQueueDepth)
			op.j.complete(0, fmt.Errorf("core: tenant %q: %w", op.tenant, qos.ErrAdmissionRejected))
			return
		}
		ss.inflightBy[op.tenant]++
	}
	ss.ops.Add(1)
	at := op.at
	if now := d.eng.Now(); at < now {
		at = now
	}
	if at > ss.horizon {
		ss.horizon = at
	}
	ss.pending[op] = struct{}{}
	d.eng.SchedulePriority(at, func() { ss.arrive(op) })
}

// remove drops one pending operation from the shard's books.
func (ss *serveShard) remove(op *serveOp) {
	delete(ss.pending, op)
	if op.tenant != "" {
		ss.inflightBy[op.tenant]--
	}
}

// arrive feeds one admitted operation into the pipeline at the current
// virtual time, wiring a per-operation completion that measures the
// open-loop latency from the intended stamp. A shaped tenant's bucket
// may push the arrival later; the added delay is part of the measured
// latency, exactly like ingress queueing.
func (ss *serveShard) arrive(op *serveOp) {
	d := ss.dev
	if d.fs.failed() {
		if _, ok := ss.pending[op]; ok {
			ss.remove(op)
			op.j.complete(0, d.fs.err)
		}
		return
	}
	now := d.eng.Now()
	if !op.shaped {
		if delay := d.fe.qs.shape(now, op.tenant, op.size); delay > 0 {
			// Charged once: the delayed re-arrival bypasses the bucket.
			// The re-arrival parks as a housekeeping event — like the
			// maintenance timers, a far-future deadline must not
			// fast-forward the clock past arrival stamps still in
			// flight, or every later operation is billed for delay the
			// shaper only owed this one. Parked re-arrivals fire when
			// real traffic pushes the clock past them, or during the
			// stop-drain.
			op.shaped = true
			ts := d.stats.Tenant(op.tenant)
			ts.Shaped++
			ts.ShapeDelay += delay
			d.obs.Shape(now, op.off, op.size, op.write, op.tenant, delay)
			d.eng.ScheduleHousekeepingAfter(delay, func() { ss.arrive(op) })
			return
		}
	}
	d.wp.meter.Record(now, op.size)
	if m := d.fe.qs.meter(op.tenant); m != nil {
		m.Record(now, op.size)
	}
	d.obs.AdmitTenant(now, op.off, op.size, op.write, op.tenant)
	d.stats.Requests++
	ts := d.stats.Tenant(op.tenant) // nil for untagged traffic
	if ts != nil {
		ts.Requests++
	}
	wait := now - op.at // ingress queueing ahead of admission
	done := func(resp time.Duration) {
		ss.remove(op)
		lat := wait + resp
		d.stats.Resp.Observe(lat)
		if ts != nil {
			ts.Resp.Observe(lat)
		}
		if op.write {
			d.stats.RespWrite.Observe(lat)
		} else {
			d.stats.RespRead.Observe(lat)
		}
		op.j.complete(lat, nil)
	}
	if op.write {
		d.stats.Writes++
		if ts != nil {
			ts.Writes++
		}
		d.wp.admitWrite(PendingWrite{Arrival: now, Offset: op.off, Size: op.size, Tenant: op.tenant, Done: done})
		return
	}
	d.stats.Reads++
	if ts != nil {
		ts.Reads++
	}
	d.wp.noteRead()
	d.rp.read(now, op.off, op.size, done)
}

// failAll completes every pending operation with the shard's fatal
// error: once the pipeline has failed, nothing in flight will ever
// complete normally, and a submitter must not block forever.
func (ss *serveShard) failAll() {
	err := ss.dev.fs.err
	if err == nil {
		err = errors.New("core: serve pipeline failed")
	}
	for op := range ss.pending {
		ss.remove(op)
		op.j.complete(0, err)
	}
}

// finish drains the pipeline after the intake closed: run the engine
// dry, flush any buffered SD run, fail whatever could not complete, and
// snapshot end-of-run statistics.
func (ss *serveShard) finish() {
	d := ss.dev
	d.eng.Run()
	d.wp.drain()
	if d.fs.failed() {
		ss.failAll()
	}
	if len(ss.pending) > 0 {
		d.fs.fail(fmt.Errorf("core: serve shard %d stopped with %d operations unfinished", ss.id, len(ss.pending)))
		ss.failAll()
	}
	d.finalize()
}
