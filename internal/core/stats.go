package core

import (
	"fmt"
	"strings"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/metrics"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// RunStats aggregates everything a replay produces: the response-time
// distributions (Figs. 10/11), the space accounting behind the
// compression-ratio comparison (Fig. 8), the composite ratio/time metric
// (Fig. 9), per-codec usage, SD effectiveness, and device endurance
// counters (the paper's reliability objective).
type RunStats struct {
	Scheme  string
	Trace   string
	Backend string

	Resp      *metrics.LatencyHist
	RespRead  *metrics.LatencyHist
	RespWrite *metrics.LatencyHist

	Requests int64
	Reads    int64
	Writes   int64

	// Write-traffic space accounting (bytes entering the device):
	OrigBytes   int64 // uncompressed bytes the host wrote
	CompBytes   int64 // codec output bytes
	StoredBytes int64 // quantized slot bytes actually stored

	// Live-space accounting at end of run:
	LiveBlocks    int64
	LiveSlotBytes int64
	PeakSlotBytes int64
	DeadSlotBytes int64
	// AllocClasses counts distinct free-slot sizes at end of run — a
	// fragmentation proxy (the quantization ablation inflates it).
	AllocClasses int

	// Policy behaviour:
	RunsByTag    map[compress.Tag]int64 // runs stored per codec
	BytesByTag   map[compress.Tag]int64 // original bytes per codec
	WriteThrough int64                  // runs bypassed by the estimator
	Oversize     int64                  // runs whose codec output missed the 75 % slot

	// Sequentiality detector:
	SDMerged int64
	SDRuns   int64

	// Infrastructure:
	CPU     sim.Stats
	Cache   cache.Stats
	Devices []ssd.Stats
	Queues  []sim.Stats

	// Duration is the virtual time at which the replay drained.
	Duration time.Duration

	// Err records a fatal replay error (e.g. device space exhaustion).
	Err error
}

func newRunStats(scheme, traceName, backend string) *RunStats {
	return &RunStats{
		Scheme: scheme, Trace: traceName, Backend: backend,
		Resp:       metrics.NewLatencyHist(),
		RespRead:   metrics.NewLatencyHist(),
		RespWrite:  metrics.NewLatencyHist(),
		RunsByTag:  make(map[compress.Tag]int64),
		BytesByTag: make(map[compress.Tag]int64),
	}
}

// mergeRunStats folds per-shard results into one global RunStats. Parts
// are processed in slice (shard) order, so the merge is deterministic:
// counters and histograms sum, per-device slices concatenate, Duration is
// the longest shard's virtual time (shards run concurrently in real time
// and each simulates the full trace timeline), and the first shard error
// wins.
func mergeRunStats(parts []*RunStats) *RunStats {
	out := newRunStats(parts[0].Scheme, parts[0].Trace, parts[0].Backend)
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Resp.Merge(p.Resp)
		out.RespRead.Merge(p.RespRead)
		out.RespWrite.Merge(p.RespWrite)
		out.Requests += p.Requests
		out.Reads += p.Reads
		out.Writes += p.Writes
		out.OrigBytes += p.OrigBytes
		out.CompBytes += p.CompBytes
		out.StoredBytes += p.StoredBytes
		out.LiveBlocks += p.LiveBlocks
		out.LiveSlotBytes += p.LiveSlotBytes
		out.PeakSlotBytes += p.PeakSlotBytes
		out.DeadSlotBytes += p.DeadSlotBytes
		out.AllocClasses += p.AllocClasses
		for tag, n := range p.RunsByTag {
			out.RunsByTag[tag] += n
		}
		for tag, n := range p.BytesByTag {
			out.BytesByTag[tag] += n
		}
		out.WriteThrough += p.WriteThrough
		out.Oversize += p.Oversize
		out.SDMerged += p.SDMerged
		out.SDRuns += p.SDRuns
		out.CPU.Jobs += p.CPU.Jobs
		out.CPU.BusyTime += p.CPU.BusyTime
		out.CPU.WaitTime += p.CPU.WaitTime
		if p.CPU.MaxQueue > out.CPU.MaxQueue {
			out.CPU.MaxQueue = p.CPU.MaxQueue
		}
		out.Cache.Hits += p.Cache.Hits
		out.Cache.Misses += p.Cache.Misses
		out.Cache.Insertions += p.Cache.Insertions
		out.Cache.Evictions += p.Cache.Evictions
		out.Devices = append(out.Devices, p.Devices...)
		out.Queues = append(out.Queues, p.Queues...)
		if p.Duration > out.Duration {
			out.Duration = p.Duration
		}
		if out.Err == nil && p.Err != nil {
			out.Err = p.Err
		}
	}
	return out
}

// TrafficRatio is the paper's compression ratio over write traffic:
// original bytes divided by stored bytes (>= 1; 1 for Native).
func (rs *RunStats) TrafficRatio() float64 {
	if rs.StoredBytes == 0 {
		return 1
	}
	return float64(rs.OrigBytes) / float64(rs.StoredBytes)
}

// CodecRatio is original bytes over raw codec output (ignores slot
// quantization overhead).
func (rs *RunStats) CodecRatio() float64 {
	if rs.CompBytes == 0 {
		return 1
	}
	return float64(rs.OrigBytes) / float64(rs.CompBytes)
}

// MeanResponse is the average response time over all requests.
func (rs *RunStats) MeanResponse() time.Duration { return rs.Resp.Mean() }

// Composite is the paper's Fig. 9 metric: compression ratio divided by
// response time (here per millisecond, higher is better). Normalize to a
// Native run for cross-scheme comparison.
func (rs *RunStats) Composite() float64 {
	ms := float64(rs.Resp.Mean()) / float64(time.Millisecond)
	if ms <= 0 {
		return 0
	}
	return rs.TrafficRatio() / ms
}

// TotalErases sums member-device erase counts (endurance proxy).
func (rs *RunStats) TotalErases() int64 {
	var n int64
	for _, d := range rs.Devices {
		n += d.Erases
	}
	return n
}

// TotalFlashWrites sums pages programmed across members (host + GC).
func (rs *RunStats) TotalFlashWrites() int64 {
	var n int64
	for _, d := range rs.Devices {
		n += d.FlashPagesWritten
	}
	return n
}

// String renders a compact one-line summary.
func (rs *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: n=%d mean=%v p99=%v ratio=%.2f comp=%.2f erases=%d",
		rs.Scheme, rs.Trace, rs.Requests, rs.Resp.Mean().Round(time.Microsecond),
		rs.Resp.Percentile(99).Round(time.Microsecond),
		rs.TrafficRatio(), rs.Composite(), rs.TotalErases())
	if rs.Err != nil {
		fmt.Fprintf(&b, " ERR=%v", rs.Err)
	}
	return b.String()
}
