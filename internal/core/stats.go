package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/metrics"
	"edc/internal/obs"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// RunStats aggregates everything a replay produces: the response-time
// distributions (Figs. 10/11), the space accounting behind the
// compression-ratio comparison (Fig. 8), the composite ratio/time metric
// (Fig. 9), per-codec usage, SD effectiveness, and device endurance
// counters (the paper's reliability objective).
type RunStats struct {
	// Scheme, Trace, and Backend identify the run: the compression
	// scheme name, the workload trace name, and the device backend.
	Scheme  string
	Trace   string
	Backend string

	// Response-time distributions: all requests, reads only, writes only.
	Resp      *metrics.LatencyHist
	RespRead  *metrics.LatencyHist
	RespWrite *metrics.LatencyHist

	// Request counts completed by the replay.
	Requests int64
	Reads    int64
	Writes   int64

	// Write-traffic space accounting (bytes entering the device):
	OrigBytes   int64 // uncompressed bytes the host wrote
	CompBytes   int64 // codec output bytes
	StoredBytes int64 // quantized slot bytes actually stored

	// Live-space accounting at end of run:
	LiveBlocks    int64
	LiveSlotBytes int64
	PeakSlotBytes int64
	DeadSlotBytes int64
	// AllocClasses counts distinct free-slot sizes at end of run — a
	// fragmentation proxy (the quantization ablation inflates it).
	AllocClasses int

	// Policy behaviour:
	RunsByTag    map[compress.Tag]int64 // runs stored per codec
	BytesByTag   map[compress.Tag]int64 // original bytes per codec
	WriteThrough int64                  // runs bypassed by the estimator
	Oversize     int64                  // runs whose codec output missed the 75 % slot

	// Sequentiality detector:
	SDMerged int64
	SDRuns   int64

	// SubmitStalls counts serve-mode submissions that found their shard
	// mailbox full and had to block (backpressure events; zero in replay).
	SubmitStalls int64

	// Resplits counts serve-mode heat-balanced shard splits (zero in
	// replay and with resplitting disabled; omitted from JSON then so
	// earlier runs' serialized form is unchanged).
	Resplits int64 `json:"Resplits,omitempty"`
	// ShardLiveBlocks is the per-shard live-block occupancy, in LBA
	// order, at the end of a serve run — the occupancy counters a
	// resplit rebalances (nil outside serve mode).
	ShardLiveBlocks []int64 `json:"ShardLiveBlocks,omitempty"`

	// Content-addressed dedup (all zero unless dedup is enabled):
	DedupHits       int64 // runs resolved against an existing stored extent
	DedupMisses     int64 // fingerprinted runs that stored normally
	DedupBytesSaved int64 // slot bytes not stored thanks to hits
	DedupUnrefs     int64 // slots released after their last reference dropped

	// Background maintenance (all zero unless maintenance is enabled):
	MaintTicks        int64   // maintenance ticks fired
	MaintIdleTicks    int64   // ticks that found the device idle
	MaintRelocations  int64   // extents rewritten to a new slot
	MaintCold         int64   // relocations that recompressed cold data
	MaintHot          int64   // relocations that demoted hot data
	MaintAborted      int64   // relocations abandoned mid-flight
	MaintReclaimed    int64   // net live slot bytes freed by relocation
	MaintCompactions  int64   // allocator free-list compactions
	MaintCoalesced    int64   // adjacent free slots merged by compaction
	MaintCompactFreed int64   // free-tail bytes returned to fresh space
	HeatHist          []int64 // live extents by decayed heat bucket at end of run

	// Fault injection and recovery (all zero without a fault plan):
	Faults           int64         // injected device errors observed
	FaultRetries     int64         // virtual-time retries issued
	DegradedReads    int64         // RAIS5 reads served by parity reconstruction
	DegradedReadTime time.Duration // virtual time spent reconstructing
	WriteReallocs    int64         // writes moved to a fresh slot after hard failure
	UnrecoveredReads int64         // hard read failures with no redundancy to recover from
	Recoveries       int64         // crash recoveries performed (power cut)
	CrashLost        int64         // requests in flight and lost at the power cut

	// Tenants breaks the run down by submitting tenant when multi-
	// tenant QoS is active (nil otherwise — untagged runs carry no
	// tenant section, and omitempty keeps their serialized form
	// identical to pre-QoS builds). Keys are tenant names; the map is
	// merged in sorted key order so sharded runs stay deterministic.
	Tenants map[string]*TenantStats `json:"Tenants,omitempty"`

	// Infrastructure:
	CPU     sim.Stats
	Cache   cache.Stats
	Devices []ssd.Stats
	Queues  []sim.Stats

	// Duration is the virtual time at which the replay drained.
	Duration time.Duration

	// Obs is the observability snapshot (decision counters plus optional
	// time series) when a collector was attached; nil otherwise.
	Obs *obs.Report

	// Err records a fatal replay error (e.g. device space exhaustion).
	Err error
}

// TenantStats is one tenant's slice of a run: request counts, the
// tenant's own response-time distribution, its codec mix, and the QoS
// actions applied to it.
type TenantStats struct {
	// Requests/Reads/Writes count the tenant's completed operations.
	Requests int64
	Reads    int64
	Writes   int64
	// Resp is the tenant's response-time distribution.
	Resp *metrics.LatencyHist
	// RunsByTag counts stored runs per codec attributed to the tenant
	// (by the run's first write).
	RunsByTag map[compress.Tag]int64
	// WriteThrough counts the tenant's runs bypassed by the estimator.
	WriteThrough int64
	// Shaped counts requests delayed by the tenant's bandwidth
	// schedule; ShapeDelay sums the virtual time added.
	Shaped     int64
	ShapeDelay time.Duration
	// Rejected counts requests refused admission (queue depth or
	// strict-tenant violations surfaced as errors in serve mode).
	Rejected int64
}

func newTenantStats() *TenantStats {
	return &TenantStats{
		Resp:      metrics.NewLatencyHist(),
		RunsByTag: make(map[compress.Tag]int64),
	}
}

// merge folds o into ts (counter sums, histogram merge).
func (ts *TenantStats) merge(o *TenantStats) {
	ts.Requests += o.Requests
	ts.Reads += o.Reads
	ts.Writes += o.Writes
	ts.Resp.Merge(o.Resp)
	for tag, n := range o.RunsByTag {
		ts.RunsByTag[tag] += n
	}
	ts.WriteThrough += o.WriteThrough
	ts.Shaped += o.Shaped
	ts.ShapeDelay += o.ShapeDelay
	ts.Rejected += o.Rejected
}

// Tenant returns the named tenant's stats, allocating on first use.
// Unnamed (untagged) traffic is never given an entry.
func (rs *RunStats) Tenant(name string) *TenantStats {
	if name == "" {
		return nil
	}
	if rs.Tenants == nil {
		rs.Tenants = make(map[string]*TenantStats)
	}
	ts, ok := rs.Tenants[name]
	if !ok {
		ts = newTenantStats()
		rs.Tenants[name] = ts
	}
	return ts
}

func newRunStats(scheme, traceName, backend string) *RunStats {
	return &RunStats{
		Scheme: scheme, Trace: traceName, Backend: backend,
		Resp:       metrics.NewLatencyHist(),
		RespRead:   metrics.NewLatencyHist(),
		RespWrite:  metrics.NewLatencyHist(),
		RunsByTag:  make(map[compress.Tag]int64),
		BytesByTag: make(map[compress.Tag]int64),
	}
}

// MergeRunStats folds per-part results into one global RunStats. The
// sharded replay merges per-shard stats; the facade merges the pre- and
// post-power-cut phases of a crash-recovery run. Parts are processed in
// slice order, so the merge is deterministic: counters and histograms
// sum, per-device slices concatenate, Duration is the longest part's
// virtual time (shards run concurrently in real time and each simulates
// the full trace timeline), and the first error wins.
func MergeRunStats(parts []*RunStats) *RunStats {
	out := newRunStats(parts[0].Scheme, parts[0].Trace, parts[0].Backend)
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Resp.Merge(p.Resp)
		out.RespRead.Merge(p.RespRead)
		out.RespWrite.Merge(p.RespWrite)
		out.Requests += p.Requests
		out.Reads += p.Reads
		out.Writes += p.Writes
		out.OrigBytes += p.OrigBytes
		out.CompBytes += p.CompBytes
		out.StoredBytes += p.StoredBytes
		out.LiveBlocks += p.LiveBlocks
		out.LiveSlotBytes += p.LiveSlotBytes
		out.PeakSlotBytes += p.PeakSlotBytes
		out.DeadSlotBytes += p.DeadSlotBytes
		out.AllocClasses += p.AllocClasses
		for tag, n := range p.RunsByTag {
			out.RunsByTag[tag] += n
		}
		for tag, n := range p.BytesByTag {
			out.BytesByTag[tag] += n
		}
		out.WriteThrough += p.WriteThrough
		out.Oversize += p.Oversize
		out.SDMerged += p.SDMerged
		out.SDRuns += p.SDRuns
		out.SubmitStalls += p.SubmitStalls
		out.Resplits += p.Resplits
		out.DedupHits += p.DedupHits
		out.DedupMisses += p.DedupMisses
		out.DedupBytesSaved += p.DedupBytesSaved
		out.DedupUnrefs += p.DedupUnrefs
		out.MaintTicks += p.MaintTicks
		out.MaintIdleTicks += p.MaintIdleTicks
		out.MaintRelocations += p.MaintRelocations
		out.MaintCold += p.MaintCold
		out.MaintHot += p.MaintHot
		out.MaintAborted += p.MaintAborted
		out.MaintReclaimed += p.MaintReclaimed
		out.MaintCompactions += p.MaintCompactions
		out.MaintCoalesced += p.MaintCoalesced
		out.MaintCompactFreed += p.MaintCompactFreed
		for len(out.HeatHist) < len(p.HeatHist) {
			out.HeatHist = append(out.HeatHist, 0)
		}
		for i, v := range p.HeatHist {
			out.HeatHist[i] += v
		}
		out.Faults += p.Faults
		out.FaultRetries += p.FaultRetries
		out.DegradedReads += p.DegradedReads
		out.DegradedReadTime += p.DegradedReadTime
		out.WriteReallocs += p.WriteReallocs
		out.UnrecoveredReads += p.UnrecoveredReads
		out.Recoveries += p.Recoveries
		out.CrashLost += p.CrashLost
		if len(p.Tenants) > 0 {
			// Fold tenants in sorted name order so the merge stays
			// deterministic whatever map iteration does.
			names := make([]string, 0, len(p.Tenants))
			for name := range p.Tenants {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				out.Tenant(name).merge(p.Tenants[name])
			}
		}
		out.CPU.Jobs += p.CPU.Jobs
		out.CPU.BusyTime += p.CPU.BusyTime
		out.CPU.WaitTime += p.CPU.WaitTime
		if p.CPU.MaxQueue > out.CPU.MaxQueue {
			out.CPU.MaxQueue = p.CPU.MaxQueue
		}
		out.Cache.Hits += p.Cache.Hits
		out.Cache.Misses += p.Cache.Misses
		out.Cache.Insertions += p.Cache.Insertions
		out.Cache.Evictions += p.Cache.Evictions
		out.Devices = append(out.Devices, p.Devices...)
		out.Queues = append(out.Queues, p.Queues...)
		if p.Duration > out.Duration {
			out.Duration = p.Duration
		}
		if out.Err == nil && p.Err != nil {
			out.Err = p.Err
		}
	}
	return out
}

// TrafficRatio is the paper's compression ratio over write traffic:
// original bytes divided by stored bytes (>= 1; 1 for Native).
func (rs *RunStats) TrafficRatio() float64 {
	if rs.StoredBytes == 0 {
		return 1
	}
	return float64(rs.OrigBytes) / float64(rs.StoredBytes)
}

// CodecRatio is original bytes over raw codec output (ignores slot
// quantization overhead).
func (rs *RunStats) CodecRatio() float64 {
	if rs.CompBytes == 0 {
		return 1
	}
	return float64(rs.OrigBytes) / float64(rs.CompBytes)
}

// MeanResponse is the average response time over all requests.
func (rs *RunStats) MeanResponse() time.Duration { return rs.Resp.Mean() }

// Composite is the paper's Fig. 9 metric: compression ratio divided by
// response time (here per millisecond, higher is better). Normalize to a
// Native run for cross-scheme comparison.
func (rs *RunStats) Composite() float64 {
	ms := float64(rs.Resp.Mean()) / float64(time.Millisecond)
	if ms <= 0 {
		return 0
	}
	return rs.TrafficRatio() / ms
}

// TotalErases sums member-device erase counts (endurance proxy).
func (rs *RunStats) TotalErases() int64 {
	var n int64
	for _, d := range rs.Devices {
		n += d.Erases
	}
	return n
}

// TotalFlashWrites sums pages programmed across members (host + GC).
func (rs *RunStats) TotalFlashWrites() int64 {
	var n int64
	for _, d := range rs.Devices {
		n += d.FlashPagesWritten
	}
	return n
}

// WriteThroughRate is the fraction of stored runs the estimator bypassed
// as incompressible (0 when no runs were stored).
func (rs *RunStats) WriteThroughRate() float64 {
	if rs.SDRuns == 0 {
		return 0
	}
	return float64(rs.WriteThrough) / float64(rs.SDRuns)
}

// OversizeRate is the fraction of stored runs whose codec output missed
// the 75 % slot class and reverted to uncompressed storage (0 when no
// runs were stored).
func (rs *RunStats) OversizeRate() float64 {
	if rs.SDRuns == 0 {
		return 0
	}
	return float64(rs.Oversize) / float64(rs.SDRuns)
}

// DedupHitRate is the fraction of fingerprinted runs resolved against
// an existing extent (0 when dedup never ran).
func (rs *RunStats) DedupHitRate() float64 {
	total := rs.DedupHits + rs.DedupMisses
	if total == 0 {
		return 0
	}
	return float64(rs.DedupHits) / float64(total)
}

// String renders a compact one-line summary.
func (rs *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: n=%d mean=%v p99=%v ratio=%.2f comp=%.2f wt=%.1f%% ovr=%.1f%% erases=%d",
		rs.Scheme, rs.Trace, rs.Requests, rs.Resp.Mean().Round(time.Microsecond),
		rs.Resp.Percentile(99).Round(time.Microsecond),
		rs.TrafficRatio(), rs.Composite(),
		100*rs.WriteThroughRate(), 100*rs.OversizeRate(), rs.TotalErases())
	if rs.Err != nil {
		fmt.Fprintf(&b, " ERR=%v", rs.Err)
	}
	return b.String()
}

// tagLabel names a codec tag using the default registry ("none" for
// uncompressed storage).
func tagLabel(tag compress.Tag) string {
	if tag == compress.TagNone {
		return "none"
	}
	if c, err := compress.Default().ByTag(tag); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("tag%d", tag)
}

// Format renders the canonical multi-line human-readable report: request
// counts, the response-time distribution, space accounting, policy
// behaviour (including the write-through and oversize rates), SD
// effectiveness, and endurance counters. It is the one report the docs
// reference; edcbench prints it for single replays.
func (rs *RunStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s trace=%s backend=%s\n", rs.Scheme, rs.Trace, rs.Backend)
	fmt.Fprintf(&b, "requests: %d (%d reads, %d writes)\n", rs.Requests, rs.Reads, rs.Writes)
	fmt.Fprintf(&b, "response: mean=%v p50=%v p90=%v p99=%v (read mean=%v, write mean=%v)\n",
		rs.Resp.Mean().Round(time.Microsecond),
		rs.Resp.Percentile(50).Round(time.Microsecond),
		rs.Resp.Percentile(90).Round(time.Microsecond),
		rs.Resp.Percentile(99).Round(time.Microsecond),
		rs.RespRead.Mean().Round(time.Microsecond),
		rs.RespWrite.Mean().Round(time.Microsecond))
	fmt.Fprintf(&b, "space: orig=%d comp=%d stored=%d ratio=%.3f codec-ratio=%.3f\n",
		rs.OrigBytes, rs.CompBytes, rs.StoredBytes, rs.TrafficRatio(), rs.CodecRatio())
	fmt.Fprintf(&b, "live: blocks=%d slot-bytes=%d peak=%d dead=%d alloc-classes=%d\n",
		rs.LiveBlocks, rs.LiveSlotBytes, rs.PeakSlotBytes, rs.DeadSlotBytes, rs.AllocClasses)
	fmt.Fprintf(&b, "policy: write-through=%d (%.1f%%) oversize=%d (%.1f%%)\n",
		rs.WriteThrough, 100*rs.WriteThroughRate(), rs.Oversize, 100*rs.OversizeRate())
	tags := make([]int, 0, len(rs.RunsByTag))
	for tag := range rs.RunsByTag {
		tags = append(tags, int(tag))
	}
	sort.Ints(tags)
	for _, t := range tags {
		tag := compress.Tag(t)
		fmt.Fprintf(&b, "  codec %-5s runs=%d bytes=%d\n", tagLabel(tag), rs.RunsByTag[tag], rs.BytesByTag[tag])
	}
	fmt.Fprintf(&b, "sd: runs=%d merged-writes=%d\n", rs.SDRuns, rs.SDMerged)
	// The stalls line only appears in serve mode, so replay reports stay
	// byte-identical to pre-serve builds.
	if rs.SubmitStalls > 0 {
		fmt.Fprintf(&b, "serve: submit-stalls=%d\n", rs.SubmitStalls)
	}
	// The dedup line only appears when dedup fingerprinted something, so
	// dedup-off reports stay byte-identical to pre-dedup builds.
	if rs.DedupHits > 0 || rs.DedupMisses > 0 {
		fmt.Fprintf(&b, "dedup: hits=%d misses=%d hit-rate=%.1f%% saved-bytes=%d unrefs=%d\n",
			rs.DedupHits, rs.DedupMisses, 100*rs.DedupHitRate(),
			rs.DedupBytesSaved, rs.DedupUnrefs)
	}
	// The maint lines only appear when maintenance ran, so
	// maintenance-off reports stay byte-identical to pre-maintenance
	// builds.
	if rs.MaintTicks > 0 || rs.MaintRelocations > 0 || rs.MaintCompactions > 0 {
		fmt.Fprintf(&b, "maint: ticks=%d idle=%d relocated=%d (cold=%d hot=%d aborted=%d) reclaimed=%d compactions=%d coalesced=%d\n",
			rs.MaintTicks, rs.MaintIdleTicks, rs.MaintRelocations,
			rs.MaintCold, rs.MaintHot, rs.MaintAborted,
			rs.MaintReclaimed, rs.MaintCompactions, rs.MaintCoalesced)
	}
	if len(rs.HeatHist) == 5 {
		fmt.Fprintf(&b, "heat: h0=%d h1=%d h2-3=%d h4-7=%d h8+=%d\n",
			rs.HeatHist[0], rs.HeatHist[1], rs.HeatHist[2], rs.HeatHist[3], rs.HeatHist[4])
	}
	// The faults line only appears when a fault plan fired, so no-plan
	// reports stay byte-identical to an un-instrumented build.
	if rs.Faults > 0 || rs.Recoveries > 0 {
		fmt.Fprintf(&b, "faults: injected=%d retries=%d degraded-reads=%d (%v) reallocs=%d unrecovered=%d recoveries=%d lost=%d\n",
			rs.Faults, rs.FaultRetries, rs.DegradedReads,
			rs.DegradedReadTime.Round(time.Microsecond),
			rs.WriteReallocs, rs.UnrecoveredReads, rs.Recoveries, rs.CrashLost)
	}
	// The tenant lines only appear when QoS tagged something, so
	// untagged reports stay byte-identical to pre-QoS builds.
	if len(rs.Tenants) > 0 {
		names := make([]string, 0, len(rs.Tenants))
		for name := range rs.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := rs.Tenants[name]
			fmt.Fprintf(&b, "tenant %s: requests=%d (%d reads, %d writes) mean=%v p99=%v",
				name, ts.Requests, ts.Reads, ts.Writes,
				ts.Resp.Mean().Round(time.Microsecond),
				ts.Resp.Percentile(99).Round(time.Microsecond))
			tags := make([]int, 0, len(ts.RunsByTag))
			for tag := range ts.RunsByTag {
				tags = append(tags, int(tag))
			}
			sort.Ints(tags)
			for _, t := range tags {
				tag := compress.Tag(t)
				fmt.Fprintf(&b, " %s=%d", tagLabel(tag), ts.RunsByTag[tag])
			}
			if ts.WriteThrough > 0 {
				fmt.Fprintf(&b, " write-through=%d", ts.WriteThrough)
			}
			if ts.Shaped > 0 {
				fmt.Fprintf(&b, " shaped=%d delay=%v", ts.Shaped, ts.ShapeDelay.Round(time.Microsecond))
			}
			if ts.Rejected > 0 {
				fmt.Fprintf(&b, " rejected=%d", ts.Rejected)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "cache: hits=%d misses=%d\n", rs.Cache.Hits, rs.Cache.Misses)
	fmt.Fprintf(&b, "endurance: erases=%d flash-pages=%d\n", rs.TotalErases(), rs.TotalFlashWrites())
	fmt.Fprintf(&b, "composite=%.3f duration=%v\n", rs.Composite(), rs.Duration.Round(time.Millisecond))
	if rs.Err != nil {
		fmt.Fprintf(&b, "error: %v\n", rs.Err)
	}
	return b.String()
}

// Report is the machine-readable form of RunStats, stable under
// encoding/json round-trips (edcbench -json). Histograms flatten to the
// percentiles the experiments report; codec maps key by name.
type Report struct {
	// Scheme/Trace/Backend identify the run.
	Scheme  string `json:"scheme"`
	Trace   string `json:"trace"`
	Backend string `json:"backend"`

	// Request counts.
	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`

	// Response-time distribution in microseconds.
	MeanUS      float64 `json:"mean_us"`
	P50US       float64 `json:"p50_us"`
	P90US       float64 `json:"p90_us"`
	P99US       float64 `json:"p99_us"`
	ReadMeanUS  float64 `json:"read_mean_us"`
	WriteMeanUS float64 `json:"write_mean_us"`

	// Space accounting.
	OrigBytes    int64   `json:"orig_bytes"`
	CompBytes    int64   `json:"comp_bytes"`
	StoredBytes  int64   `json:"stored_bytes"`
	TrafficRatio float64 `json:"traffic_ratio"`
	CodecRatio   float64 `json:"codec_ratio"`

	// Live-space accounting.
	LiveBlocks    int64 `json:"live_blocks"`
	LiveSlotBytes int64 `json:"live_slot_bytes"`
	PeakSlotBytes int64 `json:"peak_slot_bytes"`
	DeadSlotBytes int64 `json:"dead_slot_bytes"`
	AllocClasses  int   `json:"alloc_classes"`

	// Policy behaviour (codec maps key by registry name).
	RunsByCodec      map[string]int64 `json:"runs_by_codec"`
	BytesByCodec     map[string]int64 `json:"bytes_by_codec"`
	WriteThrough     int64            `json:"write_through"`
	WriteThroughRate float64          `json:"write_through_rate"`
	Oversize         int64            `json:"oversize"`
	OversizeRate     float64          `json:"oversize_rate"`

	// SD effectiveness.
	SDRuns   int64 `json:"sd_runs"`
	SDMerged int64 `json:"sd_merged"`

	// Serve-mode backpressure (omitted in replay).
	SubmitStalls int64 `json:"submit_stalls,omitempty"`

	// Content-addressed dedup (omitted when dedup is off).
	DedupHits       int64   `json:"dedup_hits,omitempty"`
	DedupMisses     int64   `json:"dedup_misses,omitempty"`
	DedupHitRate    float64 `json:"dedup_hit_rate,omitempty"`
	DedupBytesSaved int64   `json:"dedup_saved_bytes,omitempty"`
	DedupUnrefs     int64   `json:"dedup_unrefs,omitempty"`

	// Background maintenance (omitted when maintenance is off).
	MaintTicks       int64   `json:"maint_ticks,omitempty"`
	MaintIdleTicks   int64   `json:"maint_idle_ticks,omitempty"`
	MaintRelocations int64   `json:"maint_relocations,omitempty"`
	MaintCold        int64   `json:"maint_cold,omitempty"`
	MaintHot         int64   `json:"maint_hot,omitempty"`
	MaintAborted     int64   `json:"maint_aborted,omitempty"`
	MaintReclaimed   int64   `json:"maint_reclaimed_bytes,omitempty"`
	MaintCompactions int64   `json:"maint_compactions,omitempty"`
	MaintCoalesced   int64   `json:"maint_coalesced,omitempty"`
	HeatHist         []int64 `json:"heat_hist,omitempty"`

	// Fault injection and recovery (omitted without a fault plan).
	Faults             int64 `json:"faults,omitempty"`
	FaultRetries       int64 `json:"fault_retries,omitempty"`
	DegradedReads      int64 `json:"degraded_reads,omitempty"`
	DegradedReadTimeUS int64 `json:"degraded_read_time_us,omitempty"`
	WriteReallocs      int64 `json:"write_reallocs,omitempty"`
	UnrecoveredReads   int64 `json:"unrecovered_reads,omitempty"`
	Recoveries         int64 `json:"recoveries,omitempty"`
	CrashLost          int64 `json:"crash_lost,omitempty"`

	// Cache behaviour.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Endurance counters and the composite metric (Fig. 9).
	Erases     int64   `json:"erases"`
	FlashPages int64   `json:"flash_pages"`
	Composite  float64 `json:"composite"`
	DurationUS int64   `json:"duration_us"`

	// Tenants is the per-tenant breakdown (omitted for untagged runs).
	Tenants map[string]*TenantReport `json:"tenants,omitempty"`

	// Obs is the observability snapshot when a collector was attached.
	Obs *obs.Report `json:"obs,omitempty"`

	// Error is the fatal replay error, if any.
	Error string `json:"error,omitempty"`
}

// TenantReport is the machine-readable form of TenantStats.
type TenantReport struct {
	// Requests/Reads/Writes count the tenant's completed operations.
	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`
	// MeanUS/P50US/P99US summarize the tenant's latency distribution
	// in microseconds.
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	// RunsByCodec is the tenant's codec mix (keys are registry names).
	RunsByCodec map[string]int64 `json:"runs_by_codec,omitempty"`
	// WriteThrough counts the tenant's estimator-bypassed runs.
	WriteThrough int64 `json:"write_through,omitempty"`
	// Shaped/ShapeDelayUS account the bandwidth shaper's actions.
	Shaped       int64 `json:"shaped,omitempty"`
	ShapeDelayUS int64 `json:"shape_delay_us,omitempty"`
	// Rejected counts admission rejections.
	Rejected int64 `json:"rejected,omitempty"`
}

// Report flattens the run into its machine-readable form.
func (rs *RunStats) Report() *Report {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	r := &Report{
		Scheme: rs.Scheme, Trace: rs.Trace, Backend: rs.Backend,
		Requests: rs.Requests, Reads: rs.Reads, Writes: rs.Writes,
		MeanUS: us(rs.Resp.Mean()), P50US: us(rs.Resp.Percentile(50)),
		P90US: us(rs.Resp.Percentile(90)), P99US: us(rs.Resp.Percentile(99)),
		ReadMeanUS: us(rs.RespRead.Mean()), WriteMeanUS: us(rs.RespWrite.Mean()),
		OrigBytes: rs.OrigBytes, CompBytes: rs.CompBytes, StoredBytes: rs.StoredBytes,
		TrafficRatio: rs.TrafficRatio(), CodecRatio: rs.CodecRatio(),
		LiveBlocks: rs.LiveBlocks, LiveSlotBytes: rs.LiveSlotBytes,
		PeakSlotBytes: rs.PeakSlotBytes, DeadSlotBytes: rs.DeadSlotBytes,
		AllocClasses: rs.AllocClasses,
		RunsByCodec:  make(map[string]int64, len(rs.RunsByTag)),
		BytesByCodec: make(map[string]int64, len(rs.BytesByTag)),
		WriteThrough: rs.WriteThrough, WriteThroughRate: rs.WriteThroughRate(),
		Oversize: rs.Oversize, OversizeRate: rs.OversizeRate(),
		SDRuns: rs.SDRuns, SDMerged: rs.SDMerged,
		SubmitStalls: rs.SubmitStalls,
		DedupHits:    rs.DedupHits, DedupMisses: rs.DedupMisses,
		DedupHitRate: rs.DedupHitRate(), DedupBytesSaved: rs.DedupBytesSaved,
		DedupUnrefs: rs.DedupUnrefs,
		MaintTicks:  rs.MaintTicks, MaintIdleTicks: rs.MaintIdleTicks,
		MaintRelocations: rs.MaintRelocations, MaintCold: rs.MaintCold,
		MaintHot: rs.MaintHot, MaintAborted: rs.MaintAborted,
		MaintReclaimed: rs.MaintReclaimed, MaintCompactions: rs.MaintCompactions,
		MaintCoalesced: rs.MaintCoalesced, HeatHist: rs.HeatHist,
		Faults: rs.Faults, FaultRetries: rs.FaultRetries,
		DegradedReads:      rs.DegradedReads,
		DegradedReadTimeUS: rs.DegradedReadTime.Microseconds(),
		WriteReallocs:      rs.WriteReallocs,
		UnrecoveredReads:   rs.UnrecoveredReads,
		Recoveries:         rs.Recoveries, CrashLost: rs.CrashLost,
		CacheHits: rs.Cache.Hits, CacheMisses: rs.Cache.Misses,
		Erases: rs.TotalErases(), FlashPages: rs.TotalFlashWrites(),
		Composite: rs.Composite(), DurationUS: rs.Duration.Microseconds(),
		Obs: rs.Obs,
	}
	for tag, n := range rs.RunsByTag {
		r.RunsByCodec[tagLabel(tag)] += n
	}
	for tag, n := range rs.BytesByTag {
		r.BytesByCodec[tagLabel(tag)] += n
	}
	if len(rs.Tenants) > 0 {
		r.Tenants = make(map[string]*TenantReport, len(rs.Tenants))
		for name, ts := range rs.Tenants {
			tr := &TenantReport{
				Requests: ts.Requests, Reads: ts.Reads, Writes: ts.Writes,
				MeanUS: us(ts.Resp.Mean()), P50US: us(ts.Resp.Percentile(50)),
				P99US:        us(ts.Resp.Percentile(99)),
				WriteThrough: ts.WriteThrough, Shaped: ts.Shaped,
				ShapeDelayUS: ts.ShapeDelay.Microseconds(), Rejected: ts.Rejected,
			}
			if len(ts.RunsByTag) > 0 {
				tr.RunsByCodec = make(map[string]int64, len(ts.RunsByTag))
				for tag, n := range ts.RunsByTag {
					tr.RunsByCodec[tagLabel(tag)] += n
				}
			}
			r.Tenants[name] = tr
		}
	}
	if rs.Err != nil {
		r.Error = rs.Err.Error()
	}
	return r
}
