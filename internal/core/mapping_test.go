package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edc/internal/compress"
)

func newTestMapping(volume int64) (*Mapping, *Allocator, *[]int64) {
	alloc := NewAllocator(volume * 2)
	var freed []int64
	m := NewMapping(volume, alloc, func(e *Extent) { freed = append(freed, e.DevOff) })
	return m, alloc, &freed
}

// mkExtent allocates a slot and builds an extent for [off, off+size).
func mkExtent(t testing.TB, m *Mapping, alloc *Allocator, off, size int64, tag compress.Tag) *Extent {
	t.Helper()
	slot := size / 2
	if tag == compress.TagNone || slot == 0 {
		slot = size
	}
	devOff, err := alloc.Alloc(slot)
	if err != nil {
		t.Fatal(err)
	}
	e := &Extent{Offset: off, OrigLen: size, CompLen: slot, SlotLen: slot, Tag: tag, DevOff: devOff}
	if err := m.Insert(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMappingInsertLookup(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 8192, 16384, compress.TagLZF)
	if m.Lookup(8192) != e || m.Lookup(8192+16383) != e {
		t.Fatal("lookup did not return the extent")
	}
	if m.Lookup(0) != nil {
		t.Fatal("unmapped block should be nil")
	}
	if e.Live() != 4 {
		t.Fatalf("live = %d; want 4 blocks", e.Live())
	}
	if m.LiveBlocks() != 4 || m.Extents() != 1 {
		t.Fatalf("liveBlocks=%d extents=%d", m.LiveBlocks(), m.Extents())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMappingRejectsUnaligned(t *testing.T) {
	m, _, _ := newTestMapping(1 << 20)
	bad := &Extent{Offset: 100, OrigLen: 4096}
	if err := m.Insert(bad); err == nil {
		t.Fatal("unaligned insert should fail")
	}
	bad2 := &Extent{Offset: 0, OrigLen: 100}
	if err := m.Insert(bad2); err == nil {
		t.Fatal("unaligned length should fail")
	}
	far := &Extent{Offset: 1 << 21, OrigLen: 4096}
	if err := m.Insert(far); err == nil {
		t.Fatal("out-of-volume insert should fail")
	}
}

func TestMappingOverwriteFreesSlot(t *testing.T) {
	m, alloc, freed := newTestMapping(1 << 20)
	e1 := mkExtent(t, m, alloc, 0, 8192, compress.TagGZ)
	mkExtent(t, m, alloc, 0, 8192, compress.TagLZF)
	if len(*freed) != 1 || (*freed)[0] != e1.DevOff {
		t.Fatalf("freed = %v; want [%d]", *freed, e1.DevOff)
	}
	if m.Extents() != 1 {
		t.Fatalf("extents = %d", m.Extents())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMappingPartialOverwrite(t *testing.T) {
	m, alloc, freed := newTestMapping(1 << 20)
	e1 := mkExtent(t, m, alloc, 0, 16384, compress.TagGZ) // 4 blocks
	mkExtent(t, m, alloc, 4096, 4096, compress.TagLZF)    // overwrite block 1
	if len(*freed) != 0 {
		t.Fatal("partially-dead extent must keep its slot")
	}
	if e1.Live() != 3 {
		t.Fatalf("live = %d; want 3", e1.Live())
	}
	if m.DeadSlotBytes() != e1.SlotLen {
		t.Fatalf("dead slot bytes = %d; want %d", m.DeadSlotBytes(), e1.SlotLen)
	}
	// Overwrite the remaining blocks: extent dies, slot freed.
	mkExtent(t, m, alloc, 0, 4096, compress.TagLZF)
	mkExtent(t, m, alloc, 8192, 8192, compress.TagLZF)
	if len(*freed) != 1 {
		t.Fatalf("freed = %v", *freed)
	}
	if m.DeadSlotBytes() != 0 {
		t.Fatalf("dead slot bytes = %d after full death", m.DeadSlotBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMappingTrim(t *testing.T) {
	m, alloc, freed := newTestMapping(1 << 20)
	mkExtent(t, m, alloc, 0, 8192, compress.TagNone)
	if err := m.Trim(0, 8192); err != nil {
		t.Fatal(err)
	}
	if m.LiveBlocks() != 0 || len(*freed) != 1 {
		t.Fatalf("liveBlocks=%d freed=%v", m.LiveBlocks(), *freed)
	}
	if err := m.Trim(100, 8192); err == nil {
		t.Fatal("unaligned trim should fail")
	}
}

func TestReadPlanCoalescesWithinExtent(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	e := mkExtent(t, m, alloc, 0, 32768, compress.TagGZ)
	plan, err := m.ReadPlan(4096, 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Ext != e || plan[0].Bytes != 16384 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestReadPlanSpansExtentsAndHoles(t *testing.T) {
	m, alloc, _ := newTestMapping(1 << 20)
	a := mkExtent(t, m, alloc, 0, 8192, compress.TagLZF)
	b := mkExtent(t, m, alloc, 16384, 8192, compress.TagGZ)
	plan, err := m.ReadPlan(0, 24576)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].Ext != a || plan[1].Ext != nil || plan[2].Ext != b {
		t.Fatalf("plan order wrong: %+v", plan)
	}
	if plan[1].Bytes != 8192 {
		t.Fatalf("hole bytes = %d", plan[1].Bytes)
	}
}

func TestMappingInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		volume := int64(1 << 20)
		alloc := NewAllocator(volume * 4)
		m := NewMapping(volume, alloc, nil)
		for op := 0; op < 400; op++ {
			blocks := int64(rng.Intn(8) + 1)
			maxStart := volume/BlockSize - blocks
			off := rng.Int63n(maxStart+1) * BlockSize
			size := blocks * BlockSize
			switch rng.Intn(5) {
			case 4:
				if err := m.Trim(off, size); err != nil {
					return false
				}
			default:
				slot := size
				devOff, err := alloc.Alloc(slot)
				if err != nil {
					continue
				}
				e := &Extent{Offset: off, OrigLen: size, CompLen: slot,
					SlotLen: slot, Tag: compress.TagNone, DevOff: devOff}
				if err := m.Insert(e); err != nil {
					return false
				}
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
