package core

import (
	"testing"
	"time"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
)

// defaultTestRegistry returns the process registry with all four codecs
// registered (via the blank imports above).
func defaultTestRegistry(t testing.TB) *compress.Registry {
	t.Helper()
	reg := compress.Default()
	for _, name := range []string{"lzf", "lz4", "gz", "bwz"} {
		if _, err := reg.ByName(name); err != nil {
			t.Fatalf("codec %s not registered: %v", name, err)
		}
	}
	return reg
}

// testRig bundles a fresh engine + single-SSD device for core tests.
type testRig struct {
	eng *sim.Engine
	dev *Device
}

// newTestRig builds a small device (256 MiB volume on a 512 MiB SSD) with
// read verification enabled.
func newTestRig(t testing.TB, opts Options) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 2048 // 512 MiB raw
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	be := NewSingleSSD(eng, d)
	if opts.Registry == nil {
		opts.Registry = defaultTestRegistry(t)
	}
	if opts.Data == nil {
		opts.Data = datagen.New(datagen.Enterprise(), 11)
	}
	opts.VerifyReads = true
	dev, err := NewDevice(eng, be, 256<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{eng: eng, dev: dev}
}

// seqTrace builds a simple deterministic trace: n alternating write/read
// pairs over a small working set.
func seqTrace(n int, gap time.Duration) *trace.Trace {
	tr := &trace.Trace{Name: "unit"}
	for i := 0; i < n; i++ {
		at := time.Duration(i) * gap
		off := int64(i%64) * 16384
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: at, Offset: off, Size: 8192, Write: i%3 != 2,
		})
	}
	tr.SortByArrival()
	return tr
}
