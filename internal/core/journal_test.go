package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"edc/internal/compress"
)

// jnlTestExtents returns a few valid extents with distinct field values.
func jnlTestExtents() []*Extent {
	return []*Extent{
		{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 5000, SlotLen: 8192, Tag: compress.TagLZF, Version: 1, DevOff: 0},
		{Offset: 16 * BlockSize, OrigLen: 2 * BlockSize, CompLen: 8192, SlotLen: 8192, Tag: compress.TagNone, Version: 2, DevOff: 8192},
		{Offset: 4 * BlockSize, OrigLen: 8 * BlockSize, CompLen: 9000, SlotLen: 12288, Tag: compress.TagGZ, Version: 7, DevOff: 16384},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var j Journal
	want := jnlTestExtents()
	for _, e := range want {
		j.Append(e)
	}
	if j.Records() != len(want) {
		t.Fatalf("records = %d, want %d", j.Records(), len(want))
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i, e := range want {
		if got[i].Relocate {
			t.Fatalf("record %d decoded as relocate", i)
		}
		g := got[i].Ext
		if g.Offset != e.Offset || g.OrigLen != e.OrigLen || g.CompLen != e.CompLen ||
			g.SlotLen != e.SlotLen || g.Tag != e.Tag || g.Version != e.Version || g.DevOff != e.DevOff {
			t.Fatalf("record %d: got %+v, want %+v", i, g, e)
		}
	}
}

func TestJournalTornTail(t *testing.T) {
	var j Journal
	for _, e := range jnlTestExtents() {
		j.Append(e)
	}
	// Tear the final append mid-record: expected crash damage.
	torn := j.Bytes()[:len(j.Bytes())-17]
	got, err := DecodeJournal(torn)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2 (torn third dropped)", len(got))
	}
	records, tornFlag, err := CheckJournal(torn)
	if err != nil || records != 2 || !tornFlag {
		t.Fatalf("CheckJournal = (%d, %v, %v), want (2, true, nil)", records, tornFlag, err)
	}
	if _, tornFlag, _ = CheckJournal(j.Bytes()); tornFlag {
		t.Fatal("intact journal reported as torn")
	}
}

func TestJournalCRCCorruption(t *testing.T) {
	var j Journal
	for _, e := range jnlTestExtents() {
		j.Append(e)
	}
	img := append([]byte(nil), j.Bytes()...)
	img[jnlRecordSize+12] ^= 0xff // flip a byte inside record 1
	if _, err := DecodeJournal(img); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("corrupted record: err = %v, want ErrBadJournal", err)
	}
}

func TestJournalBadMagic(t *testing.T) {
	var j Journal
	j.Append(jnlTestExtents()[0])
	img := append([]byte(nil), j.Bytes()...)
	img[0] = 'X'
	if _, err := DecodeJournal(img); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("bad magic: err = %v, want ErrBadJournal", err)
	}
}

func TestJournalSequenceBreak(t *testing.T) {
	var j Journal
	for _, e := range jnlTestExtents() {
		j.Append(e)
	}
	img := append([]byte(nil), j.Bytes()...)
	// Rewrite record 1's sequence number and re-seal its CRC, so only
	// the sequence check can catch the gap.
	rec := img[jnlRecordSize : 2*jnlRecordSize]
	binary.LittleEndian.PutUint64(rec[2:], 99)
	binary.LittleEndian.PutUint32(rec[jnlCRCOffset:], crc32.ChecksumIEEE(rec[:jnlCRCOffset]))
	if _, err := DecodeJournal(img); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("sequence break: err = %v, want ErrBadJournal", err)
	}
}

func TestJournalResetContinuesSequence(t *testing.T) {
	var j Journal
	exts := jnlTestExtents()
	j.Append(exts[0])
	j.Append(exts[1])
	j.Reset()
	if j.Records() != 0 || len(j.Bytes()) != 0 {
		t.Fatalf("after Reset: records = %d, bytes = %d", j.Records(), len(j.Bytes()))
	}
	j.Append(exts[2])
	// Sequence numbering must continue across the checkpoint boundary.
	if seq := binary.LittleEndian.Uint64(j.Bytes()[2:]); seq != 2 {
		t.Fatalf("post-reset seq = %d, want 2", seq)
	}
	// The post-reset image decodes on its own (recovery baselines on the
	// first record's sequence number).
	got, err := DecodeJournal(j.Bytes())
	if err != nil || len(got) != 1 {
		t.Fatalf("post-reset decode = (%d, %v)", len(got), err)
	}
}

func TestJournalRelocateRoundTrip(t *testing.T) {
	var j Journal
	old := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 9000, SlotLen: 12288, Tag: compress.TagLZF, Version: 3, DevOff: 4096}
	repl := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 3000, SlotLen: 4096, Tag: compress.TagGZ, Version: 3, DevOff: 65536}
	j.Append(old)
	j.AppendRelocate(old, repl)
	if j.Records() != 2 || j.Relocations() != 1 {
		t.Fatalf("records = %d, relocations = %d, want 2, 1", j.Records(), j.Relocations())
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil || len(got) != 2 {
		t.Fatalf("decode = (%d, %v)", len(got), err)
	}
	r := got[1]
	if !r.Relocate || r.OldDevOff != old.DevOff || r.OldSlotLen != old.SlotLen {
		t.Fatalf("relocate record = %+v", r)
	}
	if e := r.Ext; e.Tag != repl.Tag || e.CompLen != repl.CompLen || e.SlotLen != repl.SlotLen ||
		e.DevOff != repl.DevOff || e.Version != repl.Version {
		t.Fatalf("relocated extent = %+v, want %+v", r.Ext, repl)
	}

	// A torn relocate append is expected crash damage.
	torn := j.Bytes()[:len(j.Bytes())-9]
	recs, err := DecodeJournal(torn)
	if err != nil || len(recs) != 1 {
		t.Fatalf("torn relocate decode = (%d, %v), want (1, nil)", len(recs), err)
	}
	n, tornFlag, err := CheckJournal(torn)
	if err != nil || n != 1 || !tornFlag {
		t.Fatalf("CheckJournal(torn relocate) = (%d, %v, %v)", n, tornFlag, err)
	}

	// An unknown relocate format version is corruption, not damage.
	img := append([]byte(nil), j.Bytes()...)
	img[jnlRecordSize+2] = 9 // version byte of the relocate record
	rec := img[jnlRecordSize:]
	binary.LittleEndian.PutUint32(rec[jnlRelocCRCOffset:], crc32.ChecksumIEEE(rec[:jnlRelocCRCOffset]))
	if _, err := DecodeJournal(img); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("future relocate version: err = %v, want ErrBadJournal", err)
	}
}

func TestJournalReplayRelocate(t *testing.T) {
	var j Journal
	old := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 9000, SlotLen: 12288, Tag: compress.TagLZF, Version: 1, DevOff: 0}
	repl := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 3000, SlotLen: 4096, Tag: compress.TagGZ, Version: 1, DevOff: 32768}
	j.Append(old)
	j.AppendRelocate(old, repl)
	alloc := NewAllocator(1 << 20)
	m := NewMapping(64*BlockSize, alloc, nil)
	n, err := ReplayJournal(m, j.Bytes())
	if err != nil || n != 2 {
		t.Fatalf("ReplayJournal = (%d, %v)", n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(0); got == nil || got.DevOff != repl.DevOff || got.Tag != compress.TagGZ {
		t.Fatalf("post-replay extent = %+v, want relocated placement", got)
	}
	if m.LiveBlocks() != 4 || m.Extents() != 1 {
		t.Fatalf("live = %d blocks in %d extents, want 4 in 1", m.LiveBlocks(), m.Extents())
	}
}

// A relocate whose old placement is not mapped (already freed by an
// earlier record, or plain missing) must be refused, never
// double-freed.
func TestJournalReplayRelocateDoubleFree(t *testing.T) {
	build := func() ([]byte, *Extent) {
		var j Journal
		old := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 9000, SlotLen: 12288, Tag: compress.TagLZF, Version: 1, DevOff: 0}
		repl := &Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 3000, SlotLen: 4096, Tag: compress.TagGZ, Version: 1, DevOff: 32768}
		j.Append(old)
		j.AppendRelocate(old, repl)
		j.AppendRelocate(old, repl) // second free of the same slot
		return j.Bytes(), old
	}
	img, _ := build()
	alloc := NewAllocator(1 << 20)
	m := NewMapping(64*BlockSize, alloc, nil)
	n, err := ReplayJournal(m, img)
	if !errors.Is(err, ErrBadJournal) {
		t.Fatalf("double-free replay: err = %v, want ErrBadJournal", err)
	}
	if n != 2 {
		t.Fatalf("replay applied %d records before refusing, want 2", n)
	}
	// Relocate of a never-inserted run is refused too.
	var j2 Journal
	j2.AppendRelocate(
		&Extent{Offset: 8 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 9000, SlotLen: 12288, Tag: compress.TagLZF, Version: 1, DevOff: 4096},
		&Extent{Offset: 8 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 3000, SlotLen: 4096, Tag: compress.TagGZ, Version: 1, DevOff: 65536})
	m2 := NewMapping(64*BlockSize, NewAllocator(1<<20), nil)
	if _, err := ReplayJournal(m2, j2.Bytes()); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("unmapped relocate replay: err = %v, want ErrBadJournal", err)
	}
}

func TestJournalReplay(t *testing.T) {
	var j Journal
	// Two versions of the same logical range: replay must apply them in
	// append order so the overwrite wins.
	j.Append(&Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 5000, SlotLen: 8192, Tag: compress.TagLZF, Version: 1, DevOff: 0})
	j.Append(&Extent{Offset: 0, OrigLen: 4 * BlockSize, CompLen: 6000, SlotLen: 8192, Tag: compress.TagGZ, Version: 2, DevOff: 8192})
	alloc := NewAllocator(1 << 20)
	m := NewMapping(64*BlockSize, alloc, nil)
	n, err := ReplayJournal(m, j.Bytes())
	if err != nil || n != 2 {
		t.Fatalf("ReplayJournal = (%d, %v)", n, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.LiveBlocks() != 4 || m.Extents() != 1 {
		t.Fatalf("live = %d blocks in %d extents, want 4 in 1", m.LiveBlocks(), m.Extents())
	}
}
