package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"edc/internal/compress"
)

// Mapping persistence
//
// A production EDC must persist the LBA -> (device offset, size, tag)
// table across power cycles (the paper's Fig. 5 metadata). The snapshot
// format is a flat extent list:
//
//	header:  magic "EDCM" | version u16 | volumeBytes u64 | extents u32
//	extent:  offset u64 | origLen u32 | compLen u32 | slotLen u32 |
//	         tag u8 | version u32 | devOff u64 | liveBitmap (origLen/4K bits)
//	trailer: CRC32 (IEEE) of everything before it
//
// The live bitmap records which logical blocks of the extent are still
// mapped (partial overwrites leave holes that must be reconstructed
// exactly).
//
// Content-addressed dedup can map blocks outside an extent's home range
// [offset, offset+origLen) onto it; the home bitmap cannot express
// those. A snapshot containing any such foreign reference is written as
// version 2: the same layout with a refs section between the extent
// list and the trailer:
//
//	refs:    count u32, then per ref: block u64 | extentIdx u32
//
// where extentIdx indexes the extent list in file order. A mapping with
// no foreign references — dedup off, or simply none live — still
// serializes as version 1, byte-identical to the pre-dedup format.

const (
	snapMagic        = "EDCM"
	snapVersion      = 1
	snapVersionDedup = 2
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot.
var ErrBadSnapshot = errors.New("core: bad mapping snapshot")

// SaveSnapshot serializes the mapping to w.
func (m *Mapping) SaveSnapshot(w io.Writer) error {
	// Collect extents and their per-block liveness in table order; blocks
	// outside their extent's home range (dedup refs) go to the refs
	// section instead of the bitmap.
	type entry struct {
		ext  *Extent
		bits []bool
		idx  int
	}
	type foreignRef struct {
		block int64
		idx   uint32
	}
	index := make(map[*Extent]*entry)
	var order []*entry
	var refs []foreignRef
	for b, e := range m.table {
		if e == nil {
			continue
		}
		en, ok := index[e]
		if !ok {
			en = &entry{ext: e, bits: make([]bool, e.OrigLen/BlockSize), idx: len(order)}
			index[e] = en
			order = append(order, en)
		}
		rel := int64(b) - e.Offset/BlockSize
		if rel >= 0 && rel < int64(len(en.bits)) {
			en.bits[rel] = true
		} else {
			refs = append(refs, foreignRef{block: int64(b), idx: uint32(en.idx)})
		}
	}
	ver := uint64(snapVersion)
	if len(refs) > 0 {
		ver = snapVersionDedup
	}

	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)
	buf := make([]byte, 8)
	writeU := func(v uint64, n int) error {
		binary.LittleEndian.PutUint64(buf, v)
		_, err := out.Write(buf[:n])
		return err
	}
	if _, err := out.Write([]byte(snapMagic)); err != nil {
		return err
	}
	if err := writeU(ver, 2); err != nil {
		return err
	}
	if err := writeU(uint64(len(m.table))*BlockSize, 8); err != nil {
		return err
	}
	if err := writeU(uint64(len(order)), 4); err != nil {
		return err
	}
	for _, en := range order {
		e := en.ext
		if err := writeU(uint64(e.Offset), 8); err != nil {
			return err
		}
		if err := writeU(uint64(e.OrigLen), 4); err != nil {
			return err
		}
		if err := writeU(uint64(e.CompLen), 4); err != nil {
			return err
		}
		if err := writeU(uint64(e.SlotLen), 4); err != nil {
			return err
		}
		if err := writeU(uint64(e.Tag), 1); err != nil {
			return err
		}
		if err := writeU(uint64(e.Version), 4); err != nil {
			return err
		}
		if err := writeU(uint64(e.DevOff), 8); err != nil {
			return err
		}
		// Pack the liveness bitmap.
		bm := make([]byte, (len(en.bits)+7)/8)
		for i, v := range en.bits {
			if v {
				bm[i/8] |= 1 << uint(i%8)
			}
		}
		if _, err := out.Write(bm); err != nil {
			return err
		}
	}
	if ver == snapVersionDedup {
		if err := writeU(uint64(len(refs)), 4); err != nil {
			return err
		}
		for _, r := range refs {
			if err := writeU(uint64(r.block), 8); err != nil {
				return err
			}
			if err := writeU(uint64(r.idx), 4); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(buf, crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

// LoadSnapshot reconstructs a mapping from r. The allocator is rebuilt
// by re-allocating every extent's slot; onFree retains its role for
// subsequent overwrites.
func LoadSnapshot(r io.Reader, alloc *Allocator, onFree func(*Extent)) (*Mapping, error) {
	crc := crc32.NewIEEE()
	tee := io.TeeReader(r, crc)
	buf := make([]byte, 8)
	readU := func(n int) (uint64, error) {
		if _, err := io.ReadFull(tee, buf[:n]); err != nil {
			return 0, err
		}
		var full [8]byte
		copy(full[:], buf[:n])
		return binary.LittleEndian.Uint64(full[:]), nil
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tee, magic); err != nil || string(magic) != snapMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadSnapshot)
	}
	ver, err := readU(2)
	if err != nil || (ver != snapVersion && ver != snapVersionDedup) {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, ver)
	}
	volBytes, err := readU(8)
	if err != nil || volBytes == 0 || volBytes%BlockSize != 0 ||
		volBytes > uint64(alloc.Capacity()) {
		// The volume can never exceed the backing device (NewDevice
		// enforces it), so a larger value means corruption — and guards
		// the mapping-table allocation against absurd sizes.
		return nil, fmt.Errorf("%w: volume", ErrBadSnapshot)
	}
	count, err := readU(4)
	if err != nil {
		return nil, fmt.Errorf("%w: extent count", ErrBadSnapshot)
	}
	m := NewMapping(int64(volBytes), alloc, onFree)
	var reserved []Range
	order := make([]*Extent, 0, count)
	for i := uint64(0); i < count; i++ {
		var f [7]uint64
		for j, n := range []int{8, 4, 4, 4, 1, 4, 8} {
			v, err := readU(n)
			if err != nil {
				return nil, fmt.Errorf("%w: extent %d field %d", ErrBadSnapshot, i, j)
			}
			f[j] = v
		}
		e := &Extent{
			Offset:  int64(f[0]),
			OrigLen: int64(f[1]),
			CompLen: int64(f[2]),
			SlotLen: int64(f[3]),
			Tag:     compress.Tag(f[4]),
			Version: uint32(f[5]),
			DevOff:  int64(f[6]),
		}
		if e.OrigLen <= 0 || e.OrigLen%BlockSize != 0 || e.Offset%BlockSize != 0 ||
			e.SlotLen <= 0 || e.CompLen <= 0 || e.Tag > compress.MaxTag {
			return nil, fmt.Errorf("%w: extent %d invalid", ErrBadSnapshot, i)
		}
		nBlocks := e.OrigLen / BlockSize
		bm := make([]byte, (nBlocks+7)/8)
		if _, err := io.ReadFull(tee, bm); err != nil {
			return nil, fmt.Errorf("%w: extent %d bitmap", ErrBadSnapshot, i)
		}
		reserved = append(reserved, Range{Off: e.DevOff, Len: e.SlotLen})
		first := e.Offset / BlockSize
		live := int32(0)
		for b := int64(0); b < nBlocks; b++ {
			if bm[b/8]&(1<<uint(b%8)) == 0 {
				continue
			}
			idx := first + b
			if idx < 0 || idx >= int64(len(m.table)) {
				return nil, fmt.Errorf("%w: extent %d out of volume", ErrBadSnapshot, i)
			}
			if m.table[idx] != nil {
				return nil, fmt.Errorf("%w: extent %d overlaps block %d", ErrBadSnapshot, i, idx)
			}
			m.table[idx] = e
			m.liveBlocks++
			live++
		}
		e.live = live
		m.extents++
		order = append(order, e)
	}
	if ver == snapVersionDedup {
		nRefs, err := readU(4)
		if err != nil {
			return nil, fmt.Errorf("%w: ref count", ErrBadSnapshot)
		}
		for i := uint64(0); i < nRefs; i++ {
			blk, err := readU(8)
			if err != nil {
				return nil, fmt.Errorf("%w: ref %d block", ErrBadSnapshot, i)
			}
			idx, err := readU(4)
			if err != nil {
				return nil, fmt.Errorf("%w: ref %d extent", ErrBadSnapshot, i)
			}
			if idx >= count {
				return nil, fmt.Errorf("%w: ref %d extent %d out of range", ErrBadSnapshot, i, idx)
			}
			e := order[idx]
			b := int64(blk)
			if b < 0 || b >= int64(len(m.table)) {
				return nil, fmt.Errorf("%w: ref %d out of volume", ErrBadSnapshot, i)
			}
			if m.table[b] != nil {
				return nil, fmt.Errorf("%w: ref %d overlaps block %d", ErrBadSnapshot, i, b)
			}
			if first := e.Offset / BlockSize; b >= first && b < first+e.OrigLen/BlockSize {
				// Home-range liveness belongs in the bitmap.
				return nil, fmt.Errorf("%w: ref %d inside home range", ErrBadSnapshot, i)
			}
			m.table[b] = e
			m.liveBlocks++
			e.live++
			e.foreign++
			e.shared = true
		}
	}
	// Liveness and dead-space accounting settle only after the refs
	// section: a fully-overwritten home range is legal when foreign
	// blocks still reference the extent.
	for i, e := range order {
		if e.live == 0 {
			return nil, fmt.Errorf("%w: extent %d has no live blocks", ErrBadSnapshot, i)
		}
		if !e.shared && e.live < int32(e.OrigLen/BlockSize) {
			m.deadSpace += e.SlotLen
			e.deadCounted = true
		}
	}
	sum := crc.Sum32()
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: trailer", ErrBadSnapshot)
	}
	if binary.LittleEndian.Uint32(buf[:4]) != sum {
		return nil, fmt.Errorf("%w: checksum", ErrBadSnapshot)
	}
	if err := alloc.Rebuild(reserved); err != nil {
		return nil, err
	}
	return m, nil
}
