package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/parallel"
	"edc/internal/sim"
	"edc/internal/trace"
)

// Options configures a Device. Zero fields take documented defaults.
type Options struct {
	// Policy selects the compression scheme (default: DefaultElastic).
	Policy Policy
	// Cost is the CPU cost model (default: DefaultCostModel).
	Cost CostModel
	// Registry resolves codec tags (default: compress.Default()).
	Registry *compress.Registry
	// MonitorWindow/MonitorBins configure the workload monitor
	// (default: 1 s window, 10 bins).
	MonitorWindow time.Duration
	MonitorBins   int
	// MaxRun caps SD merging in bytes (default: DefaultMaxRun).
	MaxRun int64
	// FlushTimeout bounds how long a pending run may wait for a
	// contiguous successor before being compressed anyway
	// (default: 10 ms). Zero keeps the default; negative disables.
	FlushTimeout time.Duration
	// Estimator samples write payloads (default: NewEstimator).
	Estimator *Estimator
	// Data generates write payload content (default: datagen.Enterprise
	// profile, seed 1).
	Data *datagen.Generator
	// VerifyReads stores compressed payloads and checks every read
	// decompresses to the original content (tests only: memory-hungry).
	VerifyReads bool
	// DisableSD turns off write merging (ablation).
	DisableSD bool
	// ExactSlots disables the 25/50/75/100 % slot quantization and
	// allocates compressed runs at their exact size (ablation: shows the
	// fragmentation/relocation cost quantization avoids, Sec. III-C).
	ExactSlots bool
	// CPUWorkers is the number of parallel compression workers (default
	// 1, the paper's single-threaded engine; raise it to model a
	// multicore host absorbing compression cost).
	CPUWorkers int
	// ReplayWorkers is the number of OS goroutines executing *real*
	// codec work concurrently with the virtual-time event loop (the
	// wall-clock analogue of CPUWorkers, which only models virtual CPU
	// time). Compressed output is a pure function of (content, codec),
	// so results are bit-identical for any setting. Default
	// runtime.GOMAXPROCS(0); values < 0 (or 1) run sequentially inline.
	ReplayWorkers int
	// MaxOutstanding bounds host requests in flight (closed-loop replay:
	// arrivals beyond the bound are admitted as earlier requests
	// complete, as a real block layer's bounded queue does). Zero keeps
	// the default of 64; negative disables the bound.
	MaxOutstanding int
	// CacheBytes enables a host DRAM read cache of the given size
	// (0 disables). Hits skip both the device read and decompression.
	CacheBytes int64
	// Offload moves (de)compression into the device, as FTL-integrated
	// designs do (zFTL [28]; hardware-assisted compression [23]): the
	// host CPU is not charged, and the codec engine's time (OffloadCost)
	// is added to the device operation instead.
	Offload bool
	// OffloadCost is the device-side codec engine throughput (default:
	// a hardware-assisted engine at 150/300 MB/s).
	OffloadCost CodecCost
}

// DefaultOffloadCost models a hardware compression engine in the device
// controller.
func DefaultOffloadCost() CodecCost {
	return CodecCost{CompressBps: 150e6, DecompressBps: 300e6}
}

// CacheHitLatency is the DRAM service time for a fully cached read.
const CacheHitLatency = 10 * time.Microsecond

// DefaultMaxOutstanding is the stock host queue-depth bound.
const DefaultMaxOutstanding = 64

// DefaultFlushTimeout bounds SD buffering delay. It is short relative
// to burst inter-arrival gaps so the merge wait does not dominate write
// response time.
const DefaultFlushTimeout = 300 * time.Microsecond

// Device is the EDC block device: the paper's three modules — Workload
// Monitor, Compression/Decompression Engine, Request Distributer — wired
// between a trace replay source and a simulated flash backend (Fig. 4).
type Device struct {
	eng *sim.Engine
	cpu sim.Server
	be  Backend

	policy     Policy
	cost       CostModel
	reg        *compress.Registry
	monitor    *Monitor // long window: detects idle periods
	fastMon    *Monitor // short window: reacts to burst onsets
	sd         *SeqDetector
	est        *Estimator
	data       *datagen.Generator
	alloc      *Allocator
	mapping    *Mapping
	volBytes   int64
	flushWait  time.Duration
	disableSD  bool
	exactSlots bool
	verify     bool

	version     uint32
	flushGen    int64
	inFlight    int64
	maxInFlight int64
	deferred    []trace.Request
	hostCache   *cache.Cache
	offload     bool
	offloadCost CodecCost

	payloads map[*Extent][]byte // verify mode

	// Real-CPU pipeline: codec work dispatched at processRun time runs
	// on pool workers while the event loop advances virtual time; store
	// joins on the future. The pool exists only while Play runs.
	replayWorkers int
	pool          *parallel.Pool

	// freeBufs recycles content/payload buffers. It is only touched by
	// the event-loop goroutine (workers receive buffers by closure and
	// hand them back through the joined future), so no locking.
	freeBufs [][]byte

	stats *RunStats
	err   error
}

// NewDevice builds an EDC device over backend be exposing volumeBytes of
// logical space. volumeBytes must fit the backend.
func NewDevice(eng *sim.Engine, be Backend, volumeBytes int64, opts Options) (*Device, error) {
	if volumeBytes <= 0 {
		return nil, errors.New("core: volumeBytes must be positive")
	}
	if volumeBytes > be.LogicalBytes() {
		return nil, fmt.Errorf("core: volume %d exceeds backend capacity %d",
			volumeBytes, be.LogicalBytes())
	}
	if opts.Policy == nil {
		p, err := DefaultElastic(compress.Default())
		if err != nil {
			return nil, err
		}
		opts.Policy = p
	}
	if opts.Cost == nil {
		opts.Cost = DefaultCostModel()
	}
	if err := opts.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.Registry == nil {
		opts.Registry = compress.Default()
	}
	if opts.MonitorWindow <= 0 {
		opts.MonitorWindow = 500 * time.Millisecond
	}
	if opts.MonitorBins <= 0 {
		opts.MonitorBins = 10
	}
	if opts.Estimator == nil {
		opts.Estimator = NewEstimator()
	}
	if opts.Data == nil {
		opts.Data = datagen.New(datagen.Enterprise(), 1)
	}
	if opts.Offload && (opts.OffloadCost.CompressBps <= 0 || opts.OffloadCost.DecompressBps <= 0) {
		opts.OffloadCost = DefaultOffloadCost()
	}
	switch {
	case opts.FlushTimeout == 0:
		opts.FlushTimeout = DefaultFlushTimeout
	case opts.FlushTimeout < 0:
		opts.FlushTimeout = 0 // disabled
	}
	switch {
	case opts.MaxOutstanding == 0:
		opts.MaxOutstanding = DefaultMaxOutstanding
	case opts.MaxOutstanding < 0:
		opts.MaxOutstanding = 1 << 30 // effectively unbounded
	}
	var cpu sim.Server
	if opts.CPUWorkers > 1 {
		cpu = sim.NewMultiStation(eng, "cpu", opts.CPUWorkers)
	} else {
		cpu = sim.NewStation(eng, "cpu")
	}
	switch {
	case opts.ReplayWorkers == 0:
		opts.ReplayWorkers = runtime.GOMAXPROCS(0)
	case opts.ReplayWorkers < 0:
		opts.ReplayWorkers = 1 // sequential inline execution
	}
	d := &Device{
		eng:         eng,
		cpu:         cpu,
		be:          be,
		policy:      opts.Policy,
		cost:        opts.Cost,
		reg:         opts.Registry,
		monitor:     NewMonitor(opts.MonitorWindow, opts.MonitorBins),
		fastMon:     NewMonitor(opts.MonitorWindow/8, (opts.MonitorBins+1)/2),
		sd:          NewSeqDetector(opts.MaxRun),
		est:         opts.Estimator,
		data:        opts.Data,
		alloc:       NewAllocator(be.LogicalBytes()),
		volBytes:    volumeBytes &^ (BlockSize - 1),
		flushWait:   opts.FlushTimeout,
		maxInFlight: int64(opts.MaxOutstanding),
		hostCache:   cache.New(opts.CacheBytes),
		offload:     opts.Offload,
		offloadCost: opts.OffloadCost,
		disableSD:   opts.DisableSD,
		exactSlots:  opts.ExactSlots,
		verify:      opts.VerifyReads,

		replayWorkers: opts.ReplayWorkers,
	}
	if d.volBytes == 0 {
		return nil, errors.New("core: volume smaller than one block")
	}
	d.mapping = NewMapping(d.volBytes, d.alloc, func(e *Extent) {
		d.be.Trim(e.DevOff, e.SlotLen)
		if d.payloads != nil {
			delete(d.payloads, e)
		}
	})
	if d.verify {
		d.payloads = make(map[*Extent][]byte)
	}
	return d, nil
}

// Policy returns the device's policy.
func (d *Device) Policy() Policy { return d.policy }

// VolumeBytes returns the logical volume size.
func (d *Device) VolumeBytes() int64 { return d.volBytes }

// Mapping exposes the mapping table (tests, diagnostics).
func (d *Device) Mapping() *Mapping { return d.mapping }

// alignRequest snaps a host request to block granularity inside the
// volume (the paper's EDC operates on fixed-size blocks, Sec. III-C).
func (d *Device) alignRequest(r trace.Request) (off, size int64) {
	off = r.Offset &^ (BlockSize - 1)
	end := (r.Offset + r.Size + BlockSize - 1) &^ (BlockSize - 1)
	size = end - off
	if size <= 0 {
		size = BlockSize
	}
	if size > d.volBytes {
		size = d.volBytes
	}
	off %= d.volBytes
	off &^= BlockSize - 1
	if off+size > d.volBytes {
		off = d.volBytes - size
	}
	return off, size
}

// getBuf returns a recycled buffer (possibly nil) with zero length.
// Event-loop goroutine only.
func (d *Device) getBuf() []byte {
	if n := len(d.freeBufs); n > 0 {
		b := d.freeBufs[n-1]
		d.freeBufs = d.freeBufs[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf recycles a buffer for a later getBuf. Event-loop goroutine
// only; the caller must not retain b.
func (d *Device) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	d.freeBufs = append(d.freeBufs, b[:0])
}

// Play replays t to completion and returns the collected statistics.
// The device is single-use: create a fresh Device per run.
func (d *Device) Play(t *trace.Trace) (*RunStats, error) {
	if d.stats != nil {
		return nil, errors.New("core: device already played a trace")
	}
	if d.replayWorkers > 1 {
		d.pool = parallel.NewPool(d.replayWorkers)
		defer func() {
			d.pool.Close()
			d.pool = nil
		}()
	}
	d.stats = newRunStats(d.policy.Name(), t.Name, d.be.Describe())
	for _, r := range t.Requests {
		r := r
		d.eng.Schedule(r.Arrival, func() { d.arrive(r) })
	}
	d.eng.Run()
	// Drain any still-buffered run.
	if d.sd.Pending() {
		d.processRun(d.sd.Flush())
		d.eng.Run()
	}
	if d.inFlight != 0 && d.err == nil {
		d.err = fmt.Errorf("core: %d requests never completed", d.inFlight)
	}
	d.finalize()
	return d.stats, d.err
}

// arrive handles one host request at the current virtual time, deferring
// it when the outstanding bound is reached (closed-loop admission).
func (d *Device) arrive(r trace.Request) {
	if d.err != nil {
		return
	}
	if d.inFlight >= d.maxInFlight {
		d.deferred = append(d.deferred, r)
		return
	}
	d.admit(r)
}

// admit processes one admitted request.
func (d *Device) admit(r trace.Request) {
	off, size := d.alignRequest(r)
	now := d.eng.Now()
	d.monitor.Record(now, size)
	d.fastMon.Record(now, size)
	d.stats.Requests++
	// Response time is measured from issue (admission): under closed-loop
	// replay a saturated backend shifts issue times instead of growing an
	// unbounded arrival backlog, exactly as hardware trace replayers do.
	issue := now
	if r.Write {
		d.stats.Writes++
		w := PendingWrite{Arrival: issue, Offset: off, Size: size}
		d.inFlight++
		if d.disableSD {
			d.processRun(&Run{Offset: off, Size: size, Writes: []PendingWrite{w}})
			return
		}
		if run := d.sd.OnWrite(w); run != nil {
			d.processRun(run)
		}
		d.armFlushTimer()
		return
	}
	d.stats.Reads++
	d.inFlight++
	if run := d.sd.OnRead(); run != nil {
		d.processRun(run)
	}
	d.processRead(issue, off, size)
}

// armFlushTimer (re)starts the idle flush for the pending run.
func (d *Device) armFlushTimer() {
	if d.flushWait <= 0 || !d.sd.Pending() {
		return
	}
	d.flushGen++
	gen := d.flushGen
	d.eng.ScheduleAfter(d.flushWait, func() {
		if gen == d.flushGen && d.sd.Pending() && d.err == nil {
			d.processRun(d.sd.Flush())
		}
	})
}

// intensity is the paper's feedback signal: the sliding-window calculated
// IOPS. Two windows are combined — a long one that recognizes genuinely
// idle periods and a short one that reacts to burst onsets within tens of
// milliseconds — and the more intense reading wins, so a burst is never
// greeted with a heavyweight codec while the long window is still warming
// up.
func (d *Device) intensity(now time.Duration) float64 {
	slow := d.monitor.CalculatedIOPS(now)
	fast := d.fastMon.CalculatedIOPS(now)
	if fast > slow {
		return fast
	}
	return slow
}

// fail records the first fatal error and releases in-flight requests so
// the replay terminates cleanly.
func (d *Device) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// processRun compresses and stores one merged write run.
func (d *Device) processRun(run *Run) {
	if d.err != nil {
		d.inFlight -= int64(len(run.Writes))
		return
	}
	now := d.eng.Now()
	d.stats.SDRuns++

	ver := d.version
	d.version++
	content := d.data.AppendBlock(d.getBuf(), run.Offset, int(run.Size), ver)

	var codec compress.Codec
	var cpuTime time.Duration
	if d.policy.ChecksCompressibility() {
		cpuTime += EstimateCost
		ratio := d.est.EstimateRatio(content)
		if ratio >= WriteThroughRatio {
			if ra, ok := d.policy.(RatioAware); ok {
				codec = ra.SelectWithRatio(d.intensity(now), ratio)
			} else {
				codec = d.policy.Select(d.intensity(now))
			}
		} else {
			d.stats.WriteThrough++
		}
	} else {
		codec = d.policy.Select(d.intensity(now))
	}
	if codec != nil && !d.offload {
		cpuTime += d.cost.CompressTime(codec.Tag(), run.Size)
	}
	// Pipeline the real codec work: compression is a pure function of
	// (content, codec), so it can run on a worker goroutine while the
	// event loop advances virtual time. store joins on the future, so
	// virtual-time ordering and all statistics are unchanged.
	var fut *parallel.Future[[]byte]
	if codec != nil && d.pool != nil {
		c := codec
		dst := d.getBuf()
		fut = parallel.Go(d.pool, func() []byte {
			return compress.AppendCompress(c, dst, content)
		})
	}
	store := func(_, _ time.Duration) { d.store(run, content, codec, fut, ver) }
	if cpuTime > 0 {
		d.cpu.Submit(sim.Job{Service: cpuTime, Done: store})
	} else {
		store(now, now)
	}
}

// store joins the codec result (or runs the codec inline), allocates the
// quantized slot, updates the mapping, and issues the device write.
func (d *Device) store(run *Run, content []byte, codec compress.Codec, fut *parallel.Future[[]byte], ver uint32) {
	var payload []byte
	// Join before any early return: the worker owns the payload buffer
	// (and reads content) until the future resolves.
	if fut != nil {
		payload = fut.Wait()
	}
	if d.err != nil {
		d.inFlight -= int64(len(run.Writes))
		d.putBuf(content)
		d.putBuf(payload)
		return
	}
	tag := compress.TagNone
	compLen := run.Size
	slotLen := run.Size
	if codec != nil {
		if fut == nil {
			payload = compress.AppendCompress(codec, d.getBuf(), content)
		}
		slot, ok := QuantizeSlot(run.Size, int64(len(payload)))
		if ok {
			tag = codec.Tag()
			compLen = int64(len(payload))
			slotLen = slot
			if d.exactSlots {
				slotLen = compLen // ablation: no quantization
			}
		} else {
			// Codec output above 75 %: keep uncompressed (Sec. III-C).
			d.stats.Oversize++
			d.putBuf(payload)
			payload = nil
		}
	}
	devOff, err := d.alloc.Alloc(slotLen)
	if err != nil {
		d.fail(fmt.Errorf("storing run at %d: %w", run.Offset, err))
		d.inFlight -= int64(len(run.Writes))
		d.putBuf(content)
		d.putBuf(payload)
		return
	}
	ext := &Extent{
		Offset:  run.Offset,
		OrigLen: run.Size,
		CompLen: compLen,
		SlotLen: slotLen,
		Tag:     tag,
		DevOff:  devOff,
		Version: ver,
	}
	if err := d.mapping.Insert(ext); err != nil {
		d.fail(err)
		d.inFlight -= int64(len(run.Writes))
		d.putBuf(content)
		d.putBuf(payload)
		return
	}
	if d.verify {
		if tag != compress.TagNone {
			d.payloads[ext] = append([]byte(nil), payload...)
		} else {
			d.payloads[ext] = append([]byte(nil), content...)
		}
	}
	d.stats.OrigBytes += run.Size
	d.stats.CompBytes += compLen
	d.stats.StoredBytes += slotLen
	d.stats.RunsByTag[tag]++
	d.stats.BytesByTag[tag] += run.Size
	d.putBuf(content)
	d.putBuf(payload)

	var extra time.Duration
	if d.offload && tag != compress.TagNone {
		extra = time.Duration(float64(run.Size) / d.offloadCost.CompressBps * float64(time.Second))
	}
	d.hostCache.InsertRange(run.Offset, run.Size)
	writes := run.Writes
	d.be.Write(devOff, slotLen, extra, func() {
		now := d.eng.Now()
		for _, w := range writes {
			d.observe(now-w.Arrival, true)
			d.inFlight--
		}
	})
}

// processRead plans and issues one host read. Fully cached reads are
// served from DRAM, skipping the device and any decompression.
func (d *Device) processRead(arrival time.Duration, off, size int64) {
	if d.hostCache.ContainsRange(off, size) {
		d.eng.ScheduleAfter(CacheHitLatency, func() {
			d.observe(d.eng.Now()-arrival, false)
			d.inFlight--
		})
		return
	}
	plan, err := d.mapping.ReadPlan(off, size)
	if err != nil {
		d.fail(err)
		d.inFlight--
		return
	}
	remaining := len(plan)
	if remaining == 0 {
		d.observe(d.eng.Now()-arrival, false)
		d.inFlight--
		return
	}
	complete := func() {
		remaining--
		if remaining == 0 {
			d.hostCache.InsertRange(off, size)
			d.observe(d.eng.Now()-arrival, false)
			d.inFlight--
		}
	}
	for _, seg := range plan {
		switch {
		case seg.Ext == nil:
			// Hole: the device still transfers zero pages.
			d.be.Read(0, seg.Bytes, 0, complete)
		case seg.Ext.Tag == compress.TagNone:
			d.be.Read(seg.Ext.DevOff, seg.Bytes, 0, complete)
		default:
			ext := seg.Ext
			// Snapshot the payload now: an overwrite may free the extent
			// while this read is in flight (the host still gets the data
			// captured at submission time).
			var payload []byte
			if d.verify {
				payload = d.payloads[ext]
			}
			if d.offload {
				// The device's codec engine decompresses in-line.
				extra := time.Duration(float64(ext.OrigLen) / d.offloadCost.DecompressBps * float64(time.Second))
				d.be.Read(ext.DevOff, ext.CompLen, extra, func() {
					if d.verify {
						d.verifyExtent(ext, payload)
					}
					complete()
				})
				break
			}
			d.be.Read(ext.DevOff, ext.CompLen, 0, func() {
				svc := d.cost.DecompressTime(ext.Tag, ext.OrigLen)
				d.cpu.Submit(sim.Job{Service: svc, Done: func(_, _ time.Duration) {
					if d.verify {
						d.verifyExtent(ext, payload)
					}
					complete()
				}})
			})
		}
	}
}

// verifyExtent decompresses the payload snapshot taken at read submission
// and compares it with the regenerated original content.
func (d *Device) verifyExtent(ext *Extent, payload []byte) {
	if payload == nil {
		d.fail(fmt.Errorf("core: verify: extent at %d has no payload", ext.Offset))
		return
	}
	codec, err := d.reg.ByTag(ext.Tag)
	if err != nil {
		d.fail(err)
		return
	}
	got, err := codec.Decompress(payload, int(ext.OrigLen))
	if err != nil {
		d.fail(fmt.Errorf("core: verify: decompress extent at %d: %w", ext.Offset, err))
		return
	}
	want := d.data.AppendBlock(d.getBuf(), ext.Offset, int(ext.OrigLen), ext.Version)
	equal := bytes.Equal(got, want)
	d.putBuf(want)
	if !equal {
		d.fail(fmt.Errorf("core: verify: content mismatch for extent at %d", ext.Offset))
	}
}

func (d *Device) observe(resp time.Duration, write bool) {
	d.stats.Resp.Observe(resp)
	if write {
		d.stats.RespWrite.Observe(resp)
	} else {
		d.stats.RespRead.Observe(resp)
	}
	// A completion frees one admission slot.
	if len(d.deferred) > 0 && d.inFlight <= d.maxInFlight {
		next := d.deferred[0]
		d.deferred = d.deferred[1:]
		d.admit(next)
	}
}

// finalize snapshots end-of-run state into stats.
func (d *Device) finalize() {
	s := d.stats
	s.LiveBlocks = d.mapping.LiveBlocks()
	s.LiveSlotBytes = d.alloc.InUse()
	s.PeakSlotBytes = d.alloc.PeakUse()
	s.DeadSlotBytes = d.mapping.DeadSlotBytes()
	s.AllocClasses = len(d.alloc.SizeClasses())
	s.SDMerged = d.sd.Merged()
	s.CPU = d.cpu.Stats()
	s.Cache = d.hostCache.Stats()
	s.Devices = d.be.DeviceStats()
	s.Queues = d.be.QueueStats()
	s.Duration = d.eng.Now()
	if s.Err == nil {
		s.Err = d.err
	}
}
