package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"edc/internal/cache"
	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/dedup"
	"edc/internal/fault"
	"edc/internal/maint"
	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/qos"
	"edc/internal/sim"
	"edc/internal/trace"
)

// Options configures a Device. Zero fields take documented defaults.
type Options struct {
	// Policy selects the compression scheme (default: DefaultElastic).
	Policy Policy
	// Cost is the CPU cost model (default: DefaultCostModel).
	Cost CostModel
	// Registry resolves codec tags (default: compress.Default()).
	Registry *compress.Registry
	// MonitorWindow/MonitorBins configure the workload monitor
	// (default: 1 s window, 10 bins).
	MonitorWindow time.Duration
	MonitorBins   int
	// Meter overrides the local dual-window workload monitor with an
	// external intensity source. Sharded replay injects a shared
	// read-only IntensitySnapshot here so every shard sees the same
	// global signal. Nil keeps the local monitors.
	Meter WorkloadMeter
	// MaxRun caps SD merging in bytes (default: DefaultMaxRun).
	MaxRun int64
	// FlushTimeout bounds how long a pending run may wait for a
	// contiguous successor before being compressed anyway
	// (default: 10 ms). Zero keeps the default; negative disables.
	FlushTimeout time.Duration
	// Estimator samples write payloads (default: NewEstimator).
	Estimator *Estimator
	// Data generates write payload content (default: datagen.Enterprise
	// profile, seed 1).
	Data *datagen.Generator
	// VerifyReads stores compressed payloads and checks every read
	// decompresses to the original content (tests only: memory-hungry).
	VerifyReads bool
	// DisableSD turns off write merging (ablation).
	DisableSD bool
	// ExactSlots disables the 25/50/75/100 % slot quantization and
	// allocates compressed runs at their exact size (ablation: shows the
	// fragmentation/relocation cost quantization avoids, Sec. III-C).
	ExactSlots bool
	// CPUWorkers is the number of parallel compression workers (default
	// 1, the paper's single-threaded engine; raise it to model a
	// multicore host absorbing compression cost).
	CPUWorkers int
	// ReplayWorkers is the number of OS goroutines executing *real*
	// codec work concurrently with the virtual-time event loop (the
	// wall-clock analogue of CPUWorkers, which only models virtual CPU
	// time). Compressed output is a pure function of (content, codec),
	// so results are bit-identical for any setting. Default
	// runtime.GOMAXPROCS(0); values < 0 (or 1) run sequentially inline.
	ReplayWorkers int
	// MaxOutstanding bounds host requests in flight (closed-loop replay:
	// arrivals beyond the bound are admitted as earlier requests
	// complete, as a real block layer's bounded queue does). Zero keeps
	// the default of 64; negative disables the bound.
	MaxOutstanding int
	// CacheBytes enables a host DRAM read cache of the given size
	// (0 disables). Hits skip both the device read and decompression.
	CacheBytes int64
	// Offload moves (de)compression into the device, as FTL-integrated
	// designs do (zFTL [28]; hardware-assisted compression [23]): the
	// host CPU is not charged, and the codec engine's time (OffloadCost)
	// is added to the device operation instead.
	Offload bool
	// OffloadCost is the device-side codec engine throughput (default:
	// a hardware-assisted engine at 150/300 MB/s).
	OffloadCost CodecCost
	// Obs receives one event per pipeline decision plus counters and
	// optional time series (see internal/obs). Nil disables observability
	// entirely; the nil path is bit-identical to an uninstrumented
	// replay — collectors are strict observers and never feed back into
	// the simulation.
	Obs *obs.Collector
	// Faults attaches a deterministic fault plan: every backend device
	// operation consults a seeded per-device injector, and the pipeline
	// recovers (retry, re-allocate, degraded read). Nil injects nothing
	// and the replay is bit-identical to an un-instrumented build.
	Faults *fault.Plan
	// SnapshotEvery, when positive, checkpoints the mapping (snapshot +
	// journal reset) every interval of virtual time, bounding how much
	// journal a crash recovery replays. Zero disables checkpointing; the
	// journal then covers the whole run.
	SnapshotEvery time.Duration
	// Maint enables temperature-aware background maintenance (see
	// maintenance.go): idle-window recompression of cold extents,
	// demotion of hot ones, and allocator compaction. Nil (or a config
	// with Enabled false) runs no maintenance and the replay is
	// bit-identical to a build without the maintenance seam.
	Maint *maint.Config
	// QoS attaches the multi-tenant policy (per-tenant classes,
	// bandwidth shaping, priority admission; see internal/qos). Nil
	// disables QoS and the pipeline is bit-identical to a pre-QoS
	// build; untagged requests are unaffected either way.
	QoS *qos.Config
	// QoSShare divides each tenant's bandwidth schedule across sharded
	// pipelines: with n shards each enforcing rate/n, the aggregate
	// stays at the configured rate. 0 or 1 keeps the full rate.
	QoSShare int
	// Dedup enables content-addressed deduplication under the mapping
	// table (see writepath.go/engine.go): each merged run is
	// fingerprinted before compression, and a run whose content is
	// already stored maps onto the existing extent instead of storing a
	// second copy. Nil (or Enabled false) builds no content index and
	// the replay is bit-identical to a build without the dedup seam.
	Dedup *dedup.Config
}

// DefaultOffloadCost models a hardware compression engine in the device
// controller.
func DefaultOffloadCost() CodecCost {
	return CodecCost{CompressBps: 150e6, DecompressBps: 300e6}
}

// CacheHitLatency is the DRAM service time for a fully cached read.
const CacheHitLatency = 10 * time.Microsecond

// DefaultMaxOutstanding is the stock host queue-depth bound.
const DefaultMaxOutstanding = 64

// DefaultFlushTimeout bounds SD buffering delay. It is short relative
// to burst inter-arrival gaps so the merge wait does not dominate write
// response time.
const DefaultFlushTimeout = 300 * time.Microsecond

// Device is the EDC block device: the paper's three modules — Workload
// Monitor, Compression/Decompression Engine, Request Distributer — wired
// between a trace replay source and a simulated flash backend (Fig. 4).
// Since the pipeline decomposition it is pure wiring: the frontend
// admits requests under the closed-loop bound, the write path runs
// SD merge → estimate → policy → codec → store, the read path runs
// lookup → device read → decompress → verify, and the store engine owns
// allocator + mapping + backend. Each stage lives in its own file and is
// unit-testable in isolation.
type Device struct {
	eng *sim.Engine
	cpu sim.Server

	fs *failState
	fe *frontend
	wp *writePath
	rp *readPath
	se *storeEngine

	policy   Policy
	volBytes int64
	obs      *obs.Collector

	replayWorkers int
	played        bool
	stats         *RunStats

	// Crash-recovery configuration (see recovery.go).
	faults    *fault.Plan
	snapEvery time.Duration
	per       *persister

	// mnt drives background recompression/compaction; nil when
	// maintenance is off (see maintenance.go).
	mnt *maintainer
}

// NewDevice builds an EDC device over backend be exposing volumeBytes of
// logical space. volumeBytes must fit the backend.
func NewDevice(eng *sim.Engine, be Backend, volumeBytes int64, opts Options) (*Device, error) {
	if volumeBytes <= 0 {
		return nil, errors.New("core: volumeBytes must be positive")
	}
	if volumeBytes > be.LogicalBytes() {
		return nil, fmt.Errorf("core: volume %d exceeds backend capacity %d",
			volumeBytes, be.LogicalBytes())
	}
	if opts.Policy == nil {
		p, err := DefaultElastic(compress.Default())
		if err != nil {
			return nil, err
		}
		opts.Policy = p
	}
	if opts.Cost == nil {
		opts.Cost = DefaultCostModel()
	}
	if err := opts.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.Registry == nil {
		opts.Registry = compress.Default()
	}
	if opts.MonitorWindow <= 0 {
		opts.MonitorWindow = 500 * time.Millisecond
	}
	if opts.MonitorBins <= 0 {
		opts.MonitorBins = 10
	}
	if opts.Meter == nil {
		opts.Meter = newDualMonitor(opts.MonitorWindow, opts.MonitorBins)
	}
	if opts.Estimator == nil {
		opts.Estimator = NewEstimator()
	}
	if opts.Data == nil {
		opts.Data = datagen.New(datagen.Enterprise(), 1)
	}
	if opts.Offload && (opts.OffloadCost.CompressBps <= 0 || opts.OffloadCost.DecompressBps <= 0) {
		opts.OffloadCost = DefaultOffloadCost()
	}
	switch {
	case opts.FlushTimeout == 0:
		opts.FlushTimeout = DefaultFlushTimeout
	case opts.FlushTimeout < 0:
		opts.FlushTimeout = 0 // disabled
	}
	switch {
	case opts.MaxOutstanding == 0:
		opts.MaxOutstanding = DefaultMaxOutstanding
	case opts.MaxOutstanding < 0:
		opts.MaxOutstanding = 1 << 30 // effectively unbounded
	}
	var cpu sim.Server
	if opts.CPUWorkers > 1 {
		cpu = sim.NewMultiStation(eng, "cpu", opts.CPUWorkers)
	} else {
		cpu = sim.NewStation(eng, "cpu")
	}
	switch {
	case opts.ReplayWorkers == 0:
		opts.ReplayWorkers = runtime.GOMAXPROCS(0)
	case opts.ReplayWorkers < 0:
		opts.ReplayWorkers = 1 // sequential inline execution
	}
	volBytes := volumeBytes &^ (BlockSize - 1)
	if volBytes == 0 {
		return nil, errors.New("core: volume smaller than one block")
	}

	fs := &failState{}
	se := newStoreEngine(be, volBytes, opts.VerifyReads)
	se.obs = opts.Obs
	se.now = eng.Now
	// Heat epochs tick at the same length whether or not maintenance is
	// on: heat is write-only on the foreground paths, so the disabled
	// run is unchanged, and tests can inspect temperature either way.
	maintCfg := maint.Config{}.Normalize()
	if opts.Maint != nil && opts.Maint.Enabled {
		if err := opts.Maint.Validate(); err != nil {
			return nil, err
		}
		maintCfg = opts.Maint.Normalize()
	}
	se.epochLen = maintCfg.EpochLen
	if opts.Dedup != nil && opts.Dedup.Enabled {
		if err := opts.Dedup.Validate(); err != nil {
			return nil, err
		}
		dcfg := opts.Dedup.Normalize()
		se.dedup = make(map[dedup.Sum]*Extent)
		se.dedupKey = dcfg.Key
		se.dedupMax = dcfg.MaxEntries
		// Frees become deferred: the write path flushes them at each
		// mutation's durable point so journal order stays replayable.
		se.mapping.deferFrees = true
	}
	var qs *qosState
	if opts.QoS != nil {
		if err := opts.QoS.Validate(); err != nil {
			return nil, err
		}
		var err error
		qs, err = newQoSState(opts.QoS, opts.QoSShare, func() WorkloadMeter {
			return newDualMonitor(opts.MonitorWindow, opts.MonitorBins)
		})
		if err != nil {
			return nil, err
		}
	}
	hostCache := cache.New(opts.CacheBytes)
	stats := newRunStats(opts.Policy.Name(), "", be.Describe())
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, err
		}
		if opts.Faults.Active() {
			fi, ok := be.(FaultInjectable)
			if !ok {
				return nil, fmt.Errorf("core: backend %s does not support fault injection", be.Describe())
			}
			fi.InjectFaults(opts.Faults, opts.Obs, stats)
		}
	}

	wp := &writePath{
		eng:         eng,
		cpu:         cpu,
		fs:          fs,
		stats:       stats,
		se:          se,
		meter:       opts.Meter,
		obs:         opts.Obs,
		qs:          qs,
		sd:          NewSeqDetector(opts.MaxRun),
		est:         opts.Estimator,
		data:        opts.Data,
		policy:      opts.Policy,
		cost:        opts.Cost,
		hostCache:   hostCache,
		disableSD:   opts.DisableSD,
		exactSlots:  opts.ExactSlots,
		offload:     opts.Offload,
		offloadCost: opts.OffloadCost,
		flushWait:   opts.FlushTimeout,
	}
	rp := &readPath{
		eng:         eng,
		cpu:         cpu,
		fs:          fs,
		stats:       stats,
		se:          se,
		cost:        opts.Cost,
		reg:         opts.Registry,
		data:        opts.Data,
		obs:         opts.Obs,
		hostCache:   hostCache,
		verify:      opts.VerifyReads,
		offload:     opts.Offload,
		offloadCost: opts.OffloadCost,
	}
	fe := &frontend{
		eng:         eng,
		fs:          fs,
		stats:       stats,
		meter:       opts.Meter,
		obs:         opts.Obs,
		qs:          qs,
		volBytes:    volBytes,
		maxInFlight: int64(opts.MaxOutstanding),
	}
	// Stage wiring: admission fans out to the write/read paths; both
	// report completions back to the frontend's closed loop.
	fe.onWrite = wp.admitWrite
	fe.onRead = func(issue time.Duration, off, size int64, done func(time.Duration)) {
		wp.noteRead() // a read breaks write contiguity (Fig. 7)
		rp.read(issue, off, size, done)
	}
	wp.complete = func(resp time.Duration) { fe.finish(resp, true) }
	wp.drop = fe.drop
	rp.complete = func(resp time.Duration) { fe.finish(resp, false) }
	rp.drop = fe.drop

	d := &Device{
		eng:           eng,
		cpu:           cpu,
		fs:            fs,
		fe:            fe,
		wp:            wp,
		rp:            rp,
		se:            se,
		policy:        opts.Policy,
		volBytes:      volBytes,
		obs:           opts.Obs,
		replayWorkers: opts.ReplayWorkers,
		stats:         stats,
		faults:        opts.Faults,
		snapEvery:     opts.SnapshotEvery,
	}
	if opts.Maint != nil && opts.Maint.Enabled {
		mnt, err := newMaintainer(d, maintCfg, opts.Registry)
		if err != nil {
			return nil, err
		}
		d.mnt = mnt
	}
	return d, nil
}

// Policy returns the device's policy.
func (d *Device) Policy() Policy { return d.policy }

// VolumeBytes returns the logical volume size.
func (d *Device) VolumeBytes() int64 { return d.volBytes }

// Mapping exposes the mapping table (tests, diagnostics).
func (d *Device) Mapping() *Mapping { return d.se.mapping }

// ErrReplayed reports a second Play on a single-use Device (or System).
var ErrReplayed = errors.New("core: device already played a trace")

// Play replays t to completion and returns the collected statistics.
// The device is single-use: create a fresh Device per run.
func (d *Device) Play(t *trace.Trace) (*RunStats, error) {
	if d.played {
		return nil, ErrReplayed
	}
	d.played = true
	d.stats.Trace = t.Name
	if err := d.armPersistence(); err != nil {
		return nil, err
	}
	if d.replayWorkers > 1 {
		// One bounded queue on the process-wide work-stealing pool: any
		// idle pool worker — including one whose own shard is cold — can
		// run this device's codec futures.
		q := parallel.Shared().NewQueue()
		d.wp.pool = q
		d.rp.pool = q
		defer func() {
			q.Close()
			d.wp.pool = nil
			d.rp.pool = nil
		}()
	}
	d.fe.start(t)
	d.armMaint()
	d.eng.Run()
	d.wp.drain()
	if d.fe.inFlight != 0 && d.fs.err == nil {
		d.fs.err = fmt.Errorf("core: %d requests never completed", d.fe.inFlight)
	}
	d.finalize()
	return d.stats, d.fs.err
}

// finalize snapshots end-of-run state into stats.
func (d *Device) finalize() {
	s := d.stats
	s.LiveBlocks = d.se.mapping.LiveBlocks()
	s.LiveSlotBytes = d.se.alloc.InUse()
	s.PeakSlotBytes = d.se.alloc.PeakUse()
	s.DeadSlotBytes = d.se.mapping.DeadSlotBytes()
	s.AllocClasses = len(d.se.alloc.SizeClasses())
	s.SDMerged = d.wp.sd.Merged()
	s.CPU = d.cpu.Stats()
	s.Cache = d.wp.hostCache.Stats()
	s.Devices = d.se.be.DeviceStats()
	s.Queues = d.se.be.QueueStats()
	s.Duration = d.eng.Now()
	if d.mnt != nil {
		s.MaintTicks = d.mnt.sched.Ticks()
		s.MaintIdleTicks = d.mnt.sched.IdleTicks()
		s.HeatHist = d.heatHistogram()
	}
	s.Obs = d.obs.Report()
	if s.Err == nil {
		s.Err = d.fs.err
	}
}
