package core

import (
	"fmt"
	"time"

	"edc/internal/compress"
)

// CodecCost is the CPU throughput model for one codec.
type CodecCost struct {
	CompressBps   float64 // bytes per second
	DecompressBps float64
}

// CostModel converts (de)compression work into CPU service time for the
// simulator. The simulator charges deterministic, configurable costs so
// experiment timing is machine-independent: defaults are calibrated to
// the measured throughput class of the codecs in this repository on
// 2010s-era server cores (cf. the paper's Fig. 2: Bzip2/Gzip slow with
// high ratios, Lzf/Lz4 fast with low ratios). The codecs still run for
// real to obtain true compressed sizes; only the *time charged* in
// virtual time comes from this table.
type CostModel map[compress.Tag]CodecCost

// DefaultCostModel returns the calibrated defaults: single-core
// throughputs of the four codec families on the paper's 2010-era Xeon
// X5680 class of hardware (scaled from this repository's measured codec
// throughput; the relative ordering matches Fig. 2).
func DefaultCostModel() CostModel {
	return CostModel{
		compress.TagLZF: {CompressBps: 40e6, DecompressBps: 150e6},
		compress.TagLZ4: {CompressBps: 80e6, DecompressBps: 250e6},
		compress.TagGZ:  {CompressBps: 22e6, DecompressBps: 120e6},
		compress.TagBWZ: {CompressBps: 12e6, DecompressBps: 40e6},
	}
}

// EstimateCost is the fixed CPU charge for the sampling compressibility
// estimator (a few hundred bytes of entropy math).
const EstimateCost = 5 * time.Microsecond

// CompressTime returns the CPU time to compress `bytes` with the codec
// identified by tag. TagNone costs nothing.
func (cm CostModel) CompressTime(tag compress.Tag, bytes int64) time.Duration {
	if tag == compress.TagNone || bytes <= 0 {
		return 0
	}
	c, ok := cm[tag]
	if !ok || c.CompressBps <= 0 {
		panic(fmt.Sprintf("core: no compress cost for tag %d", tag))
	}
	return time.Duration(float64(bytes) / c.CompressBps * float64(time.Second))
}

// DecompressTime returns the CPU time to decompress to `origBytes`.
func (cm CostModel) DecompressTime(tag compress.Tag, origBytes int64) time.Duration {
	if tag == compress.TagNone || origBytes <= 0 {
		return 0
	}
	c, ok := cm[tag]
	if !ok || c.DecompressBps <= 0 {
		panic(fmt.Sprintf("core: no decompress cost for tag %d", tag))
	}
	return time.Duration(float64(origBytes) / c.DecompressBps * float64(time.Second))
}

// Validate checks that every listed codec has positive throughputs.
func (cm CostModel) Validate() error {
	for tag, c := range cm {
		if c.CompressBps <= 0 || c.DecompressBps <= 0 {
			return fmt.Errorf("core: cost model for tag %d has non-positive throughput", tag)
		}
	}
	return nil
}
