package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"edc/internal/compress"
)

// Mapping journal
//
// The snapshot (persist.go) captures the whole table at a checkpoint; a
// production EDC cannot afford one per write. Between checkpoints every
// completed device write appends one fixed-size record to this
// append-only journal, making the write's mapping durable at the moment
// its data is. Crash recovery replays the journal over the last
// snapshot (RecoverMapping, recovery.go).
//
// The format is versioned by record magic. An insert record is the
// original (PR 4) layout, unchanged byte for byte so pre-maintenance
// journal artifacts still recover:
//
//	insert: magic "EJ" | seq u64 | offset u64 | origLen u32 |
//	        compLen u32 | slotLen u32 | tag u8 | version u32 |
//	        devOff u64 | CRC32 (IEEE) of the preceding bytes
//
// Background maintenance appends a relocate record when it rewrites a
// stored extent into a new slot; it carries an explicit format-version
// byte after the magic plus the old placement being freed:
//
//	relocate: magic "ER" | ver u8 (=1) | seq u64 | oldDevOff u64 |
//	          oldSlotLen u32 | offset u64 | origLen u32 | compLen u32 |
//	          slotLen u32 | tag u8 | version u32 | devOff u64 | CRC32
//
// Insert records are 47 bytes, relocate records 60, both little-endian,
// sharing one consecutive sequence-number space. A crash can tear the
// final append: a short trailing record is expected damage and is
// dropped; a CRC, magic, or sequence violation anywhere else is
// corruption.

const (
	jnlMagic      = "EJ"
	jnlRecordSize = 47
	jnlCRCOffset  = jnlRecordSize - 4

	jnlRelocMagic      = "ER"
	jnlRelocVersion    = 1
	jnlRelocRecordSize = 60
	jnlRelocCRCOffset  = jnlRelocRecordSize - 4
)

// ErrBadJournal reports a corrupt journal (failed CRC, bad magic, or a
// sequence break — anything beyond a torn final record).
var ErrBadJournal = errors.New("core: bad mapping journal")

// Journal accumulates fixed-size mapping records in an in-memory
// buffer (the simulated durable log). The zero value is ready to use.
type Journal struct {
	buf    []byte
	seq    uint64
	n      int
	nReloc int
}

// Append records that ext's device write completed (its durable point).
func (j *Journal) Append(e *Extent) {
	var rec [jnlRecordSize]byte
	copy(rec[0:2], jnlMagic)
	binary.LittleEndian.PutUint64(rec[2:], j.seq)
	putJnlExtent(rec[10:], e)
	binary.LittleEndian.PutUint32(rec[jnlCRCOffset:], crc32.ChecksumIEEE(rec[:jnlCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
}

// AppendRelocate records that maintenance rewrote old's run into the
// already-written extent e, freeing old's slot. Appended only after
// e's device write completed, so replay order matches durability order.
func (j *Journal) AppendRelocate(old, e *Extent) {
	var rec [jnlRelocRecordSize]byte
	copy(rec[0:2], jnlRelocMagic)
	rec[2] = jnlRelocVersion
	binary.LittleEndian.PutUint64(rec[3:], j.seq)
	binary.LittleEndian.PutUint64(rec[11:], uint64(old.DevOff))
	binary.LittleEndian.PutUint32(rec[19:], uint32(old.SlotLen))
	putJnlExtent(rec[23:], e)
	binary.LittleEndian.PutUint32(rec[jnlRelocCRCOffset:], crc32.ChecksumIEEE(rec[:jnlRelocCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
	j.nReloc++
}

// putJnlExtent writes the shared 33-byte extent body (offset, lengths,
// tag, version, devOff) both record kinds carry.
func putJnlExtent(b []byte, e *Extent) {
	binary.LittleEndian.PutUint64(b[0:], uint64(e.Offset))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.OrigLen))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.CompLen))
	binary.LittleEndian.PutUint32(b[16:], uint32(e.SlotLen))
	b[20] = byte(e.Tag)
	binary.LittleEndian.PutUint32(b[21:], e.Version)
	binary.LittleEndian.PutUint64(b[25:], uint64(e.DevOff))
}

// getJnlExtent decodes the shared extent body written by putJnlExtent.
func getJnlExtent(b []byte) *Extent {
	return &Extent{
		Offset:  int64(binary.LittleEndian.Uint64(b[0:])),
		OrigLen: int64(binary.LittleEndian.Uint32(b[8:])),
		CompLen: int64(binary.LittleEndian.Uint32(b[12:])),
		SlotLen: int64(binary.LittleEndian.Uint32(b[16:])),
		Tag:     compress.Tag(b[20]),
		Version: binary.LittleEndian.Uint32(b[21:]),
		DevOff:  int64(binary.LittleEndian.Uint64(b[25:])),
	}
}

// Bytes returns the journal contents (not a copy: snapshot it before
// mutating the journal further).
func (j *Journal) Bytes() []byte { return j.buf }

// Records returns the number of appended records since the last Reset.
func (j *Journal) Records() int { return j.n }

// Relocations returns how many of the appended records are relocates.
func (j *Journal) Relocations() int { return j.nReloc }

// Reset empties the journal after a checkpoint folded its records into
// the snapshot. Sequence numbering continues, so a recovery spanning a
// checkpoint boundary cannot silently mix epochs.
func (j *Journal) Reset() {
	j.buf = j.buf[:0]
	j.n = 0
	j.nReloc = 0
}

// JournalRec is one decoded journal record: a plain extent insert, or —
// when Relocate is set — a maintenance relocation that remaps Ext's run
// to Ext's placement and frees the old slot [OldDevOff, +OldSlotLen).
type JournalRec struct {
	// Ext is the extent the record makes durable.
	Ext *Extent
	// Relocate distinguishes a relocate record from an insert.
	Relocate bool
	// OldDevOff is the device offset of the slot the relocation freed
	// (relocate records only).
	OldDevOff int64
	// OldSlotLen is the size of the freed slot (relocate records only).
	OldSlotLen int64
}

// DecodeJournal parses a journal image into its records, in append
// order. A short final record (torn tail: the crash interrupted the
// last append) is dropped silently; any other malformation is
// ErrBadJournal.
func DecodeJournal(data []byte) ([]JournalRec, error) {
	recs, _, err := decodeJournal(data)
	return recs, err
}

// decodeJournal is DecodeJournal plus the undecoded tail length, so
// CheckJournal can report torn appends across both record sizes.
func decodeJournal(data []byte) (recs []JournalRec, tail int, err error) {
	var wantSeq uint64
	for i := 0; ; i++ {
		if len(data) < jnlRecordSize {
			// Too short for any record: a torn final append.
			return recs, len(data), nil
		}
		var rec JournalRec
		var body, whole []byte
		var seq uint64
		switch string(data[0:2]) {
		case jnlMagic:
			whole = data[:jnlRecordSize]
			if crc32.ChecksumIEEE(whole[:jnlCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[2:])
			body = whole[10:]
		case jnlRelocMagic:
			if len(data) < jnlRelocRecordSize {
				return recs, len(data), nil // torn relocate append
			}
			whole = data[:jnlRelocRecordSize]
			if whole[2] != jnlRelocVersion {
				return nil, 0, fmt.Errorf("%w: record %d relocate version %d", ErrBadJournal, i, whole[2])
			}
			if crc32.ChecksumIEEE(whole[:jnlRelocCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlRelocCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[3:])
			rec.Relocate = true
			rec.OldDevOff = int64(binary.LittleEndian.Uint64(whole[11:]))
			rec.OldSlotLen = int64(binary.LittleEndian.Uint32(whole[19:]))
			body = whole[23:]
		default:
			return nil, 0, fmt.Errorf("%w: record %d magic", ErrBadJournal, i)
		}
		data = data[len(whole):]
		if i == 0 {
			wantSeq = seq
		}
		if seq != wantSeq {
			return nil, 0, fmt.Errorf("%w: record %d sequence %d, want %d", ErrBadJournal, i, seq, wantSeq)
		}
		wantSeq++
		e := getJnlExtent(body)
		if e.OrigLen <= 0 || e.OrigLen%BlockSize != 0 || e.Offset < 0 || e.Offset%BlockSize != 0 ||
			e.SlotLen <= 0 || e.CompLen <= 0 || e.Tag > compress.MaxTag {
			return nil, 0, fmt.Errorf("%w: record %d invalid extent", ErrBadJournal, i)
		}
		if rec.Relocate && (rec.OldDevOff < 0 || rec.OldSlotLen <= 0) {
			return nil, 0, fmt.Errorf("%w: record %d invalid old slot", ErrBadJournal, i)
		}
		rec.Ext = e
		recs = append(recs, rec)
	}
}

// CheckJournal validates a journal image for edcfsck: the number of
// intact records, whether the tail was torn, and any corruption found.
func CheckJournal(data []byte) (records int, torn bool, err error) {
	recs, tail, err := decodeJournal(data)
	if err != nil {
		return 0, false, err
	}
	return len(recs), tail != 0, nil
}

// ReplayJournal applies a journal image onto m in append order (inserts
// unmap the blocks they cover exactly as the live write path did;
// relocates remap the surviving blocks of their run and free the old
// slot) and returns the number of records applied. A relocate whose old
// placement is not mapped — already freed, or never present — is
// refused as corruption rather than double-freed.
func ReplayJournal(m *Mapping, data []byte) (int, error) {
	recs, err := DecodeJournal(data)
	if err != nil {
		return 0, err
	}
	for i, rec := range recs {
		if !rec.Relocate {
			if err := m.Insert(rec.Ext); err != nil {
				return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
			}
			continue
		}
		old := m.findExtent(rec.Ext.Offset, rec.Ext.OrigLen, rec.OldDevOff)
		if old == nil {
			return i, fmt.Errorf("%w: relocate record %d: old slot %d for run at %d not mapped (double free?)",
				ErrBadJournal, i, rec.OldDevOff, rec.Ext.Offset)
		}
		if old.SlotLen != rec.OldSlotLen {
			return i, fmt.Errorf("%w: relocate record %d: old slot size %d, mapping has %d",
				ErrBadJournal, i, rec.OldSlotLen, old.SlotLen)
		}
		if err := m.Replace(old, rec.Ext); err != nil {
			return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
		}
	}
	return len(recs), nil
}
