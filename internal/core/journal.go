package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"edc/internal/compress"
)

// Mapping journal
//
// The snapshot (persist.go) captures the whole table at a checkpoint; a
// production EDC cannot afford one per write. Between checkpoints every
// completed device write appends one fixed-size record to this
// append-only journal, making the write's mapping durable at the moment
// its data is. Crash recovery replays the journal over the last
// snapshot (RecoverMapping, recovery.go).
//
//	record: magic "EJ" | seq u64 | offset u64 | origLen u32 |
//	        compLen u32 | slotLen u32 | tag u8 | version u32 |
//	        devOff u64 | CRC32 (IEEE) of the preceding bytes
//
// Records are 47 bytes, little-endian, with consecutive sequence
// numbers. A crash can tear the final append: a short trailing record
// is expected damage and is dropped; a CRC or sequence violation
// anywhere else is corruption.

const (
	jnlMagic      = "EJ"
	jnlRecordSize = 47
	jnlCRCOffset  = jnlRecordSize - 4
)

// ErrBadJournal reports a corrupt journal (failed CRC, bad magic, or a
// sequence break — anything beyond a torn final record).
var ErrBadJournal = errors.New("core: bad mapping journal")

// Journal accumulates fixed-size mapping records in an in-memory
// buffer (the simulated durable log). The zero value is ready to use.
type Journal struct {
	buf []byte
	seq uint64
	n   int
}

// Append records that ext's device write completed (its durable point).
func (j *Journal) Append(e *Extent) {
	var rec [jnlRecordSize]byte
	copy(rec[0:2], jnlMagic)
	binary.LittleEndian.PutUint64(rec[2:], j.seq)
	binary.LittleEndian.PutUint64(rec[10:], uint64(e.Offset))
	binary.LittleEndian.PutUint32(rec[18:], uint32(e.OrigLen))
	binary.LittleEndian.PutUint32(rec[22:], uint32(e.CompLen))
	binary.LittleEndian.PutUint32(rec[26:], uint32(e.SlotLen))
	rec[30] = byte(e.Tag)
	binary.LittleEndian.PutUint32(rec[31:], e.Version)
	binary.LittleEndian.PutUint64(rec[35:], uint64(e.DevOff))
	binary.LittleEndian.PutUint32(rec[jnlCRCOffset:], crc32.ChecksumIEEE(rec[:jnlCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
}

// Bytes returns the journal contents (not a copy: snapshot it before
// mutating the journal further).
func (j *Journal) Bytes() []byte { return j.buf }

// Records returns the number of appended records since the last Reset.
func (j *Journal) Records() int { return j.n }

// Reset empties the journal after a checkpoint folded its records into
// the snapshot. Sequence numbering continues, so a recovery spanning a
// checkpoint boundary cannot silently mix epochs.
func (j *Journal) Reset() {
	j.buf = j.buf[:0]
	j.n = 0
}

// DecodeJournal parses a journal image into its extents, in append
// order. A short final record (torn tail: the crash interrupted the
// last append) is dropped silently; any other malformation is
// ErrBadJournal.
func DecodeJournal(data []byte) ([]*Extent, error) {
	var out []*Extent
	var wantSeq uint64
	for i := 0; len(data) >= jnlRecordSize; i++ {
		rec := data[:jnlRecordSize]
		data = data[jnlRecordSize:]
		if string(rec[0:2]) != jnlMagic {
			return nil, fmt.Errorf("%w: record %d magic", ErrBadJournal, i)
		}
		if crc32.ChecksumIEEE(rec[:jnlCRCOffset]) != binary.LittleEndian.Uint32(rec[jnlCRCOffset:]) {
			return nil, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
		}
		seq := binary.LittleEndian.Uint64(rec[2:])
		if i == 0 {
			wantSeq = seq
		}
		if seq != wantSeq {
			return nil, fmt.Errorf("%w: record %d sequence %d, want %d", ErrBadJournal, i, seq, wantSeq)
		}
		wantSeq++
		e := &Extent{
			Offset:  int64(binary.LittleEndian.Uint64(rec[10:])),
			OrigLen: int64(binary.LittleEndian.Uint32(rec[18:])),
			CompLen: int64(binary.LittleEndian.Uint32(rec[22:])),
			SlotLen: int64(binary.LittleEndian.Uint32(rec[26:])),
			Tag:     compress.Tag(rec[30]),
			Version: binary.LittleEndian.Uint32(rec[31:]),
			DevOff:  int64(binary.LittleEndian.Uint64(rec[35:])),
		}
		if e.OrigLen <= 0 || e.OrigLen%BlockSize != 0 || e.Offset < 0 || e.Offset%BlockSize != 0 ||
			e.SlotLen <= 0 || e.CompLen <= 0 || e.Tag > compress.MaxTag {
			return nil, fmt.Errorf("%w: record %d invalid extent", ErrBadJournal, i)
		}
		out = append(out, e)
	}
	return out, nil
}

// CheckJournal validates a journal image for edcfsck: the number of
// intact records, whether the tail was torn, and any corruption found.
func CheckJournal(data []byte) (records int, torn bool, err error) {
	exts, err := DecodeJournal(data)
	if err != nil {
		return 0, false, err
	}
	return len(exts), len(data)%jnlRecordSize != 0, nil
}

// ReplayJournal applies a journal image onto m in append order
// (overwrites unmap the blocks they cover, exactly as the live write
// path did) and returns the number of records applied.
func ReplayJournal(m *Mapping, data []byte) (int, error) {
	exts, err := DecodeJournal(data)
	if err != nil {
		return 0, err
	}
	for i, e := range exts {
		if err := m.Insert(e); err != nil {
			return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
		}
	}
	return len(exts), nil
}
