package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"edc/internal/compress"
)

// Mapping journal
//
// The snapshot (persist.go) captures the whole table at a checkpoint; a
// production EDC cannot afford one per write. Between checkpoints every
// completed device write appends one fixed-size record to this
// append-only journal, making the write's mapping durable at the moment
// its data is. Crash recovery replays the journal over the last
// snapshot (RecoverMapping, recovery.go).
//
// The format is versioned by record magic. An insert record is the
// original (PR 4) layout, unchanged byte for byte so pre-maintenance
// journal artifacts still recover:
//
//	insert: magic "EJ" | seq u64 | offset u64 | origLen u32 |
//	        compLen u32 | slotLen u32 | tag u8 | version u32 |
//	        devOff u64 | CRC32 (IEEE) of the preceding bytes
//
// Background maintenance appends a relocate record when it rewrites a
// stored extent into a new slot; it carries an explicit format-version
// byte after the magic plus the old placement being freed:
//
//	relocate: magic "ER" | ver u8 (=1) | seq u64 | oldDevOff u64 |
//	          oldSlotLen u32 | offset u64 | origLen u32 | compLen u32 |
//	          slotLen u32 | tag u8 | version u32 | devOff u64 | CRC32
//
// Content-addressed dedup (PR 8) adds the v2 record family. A ref
// record makes a dedup hit durable — a run of LBAs now references an
// extent stored elsewhere, identified by its logical run and device
// slot. An unref record witnesses the deferred release of a slot whose
// last reference was dropped by a preceding insert/ref/relocate; replay
// verifies it against the reconstructed mapping rather than applying it
// (the release is implied by the record that dropped the reference):
//
//	ref:   magic "ED" | ver u8 (=2) | seq u64 | offset u64 |
//	       origLen u32 | targetOff u64 | targetDevOff u64 | CRC32
//	unref: magic "EU" | ver u8 (=2) | seq u64 | offset u64 |
//	       origLen u32 | devOff u64 | slotLen u32 | CRC32
//
// A relocate of a dedup-shared extent must move every referring block,
// wherever it is mapped; such relocations are appended with version
// byte 2 in the same 60-byte "ER" layout, telling replay to remap the
// whole table (ReplaceAll) instead of just the home range.
//
// Insert records are 47 bytes, relocate records 60, ref 43, unref 39,
// all little-endian, sharing one consecutive sequence-number space. A
// crash can tear the final append: a short trailing record is expected
// damage and is dropped; a CRC, magic, or sequence violation anywhere
// else is corruption. Journals written before dedup existed contain
// only v0/v1 records and replay byte-for-byte as before.

const (
	jnlMagic      = "EJ"
	jnlRecordSize = 47
	jnlCRCOffset  = jnlRecordSize - 4

	jnlRelocMagic      = "ER"
	jnlRelocVersion    = 1
	jnlRelocRecordSize = 60
	jnlRelocCRCOffset  = jnlRelocRecordSize - 4

	// jnlV2 is the format-version byte shared by the dedup-era records:
	// ref, unref, and whole-table relocate.
	jnlV2 = 2

	jnlRefMagic      = "ED"
	jnlRefRecordSize = 43
	jnlRefCRCOffset  = jnlRefRecordSize - 4

	jnlUnrefMagic      = "EU"
	jnlUnrefRecordSize = 39
	jnlUnrefCRCOffset  = jnlUnrefRecordSize - 4
)

// ErrBadJournal reports a corrupt journal (failed CRC, bad magic, or a
// sequence break — anything beyond a torn final record).
var ErrBadJournal = errors.New("core: bad mapping journal")

// Journal accumulates fixed-size mapping records in an in-memory
// buffer (the simulated durable log). The zero value is ready to use.
type Journal struct {
	buf    []byte
	seq    uint64
	n      int
	nReloc int
	nRef   int
	nUnref int
}

// Append records that ext's device write completed (its durable point).
func (j *Journal) Append(e *Extent) {
	var rec [jnlRecordSize]byte
	copy(rec[0:2], jnlMagic)
	binary.LittleEndian.PutUint64(rec[2:], j.seq)
	putJnlExtent(rec[10:], e)
	binary.LittleEndian.PutUint32(rec[jnlCRCOffset:], crc32.ChecksumIEEE(rec[:jnlCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
}

// AppendRelocate records that maintenance rewrote old's run into the
// already-written extent e, freeing old's slot. Appended only after
// e's device write completed, so replay order matches durability order.
func (j *Journal) AppendRelocate(old, e *Extent) {
	var rec [jnlRelocRecordSize]byte
	copy(rec[0:2], jnlRelocMagic)
	rec[2] = jnlRelocVersion
	binary.LittleEndian.PutUint64(rec[3:], j.seq)
	binary.LittleEndian.PutUint64(rec[11:], uint64(old.DevOff))
	binary.LittleEndian.PutUint32(rec[19:], uint32(old.SlotLen))
	putJnlExtent(rec[23:], e)
	binary.LittleEndian.PutUint32(rec[jnlRelocCRCOffset:], crc32.ChecksumIEEE(rec[:jnlRelocCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
	j.nReloc++
}

// AppendRelocateAll is AppendRelocate for a dedup-era relocation: the
// same record layout with the v2 version byte, telling replay to remap
// every block referencing the old placement, not just its home range.
func (j *Journal) AppendRelocateAll(old, e *Extent) {
	var rec [jnlRelocRecordSize]byte
	copy(rec[0:2], jnlRelocMagic)
	rec[2] = jnlV2
	binary.LittleEndian.PutUint64(rec[3:], j.seq)
	binary.LittleEndian.PutUint64(rec[11:], uint64(old.DevOff))
	binary.LittleEndian.PutUint32(rec[19:], uint32(old.SlotLen))
	putJnlExtent(rec[23:], e)
	binary.LittleEndian.PutUint32(rec[jnlRelocCRCOffset:], crc32.ChecksumIEEE(rec[:jnlRelocCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
	j.nReloc++
}

// AppendRef records a dedup hit: the run [off, +size) now references
// the stored extent target. Appended at the hit's effect point — the
// remap is metadata-only, so it is durable immediately.
func (j *Journal) AppendRef(off, size int64, target *Extent) {
	var rec [jnlRefRecordSize]byte
	copy(rec[0:2], jnlRefMagic)
	rec[2] = jnlV2
	binary.LittleEndian.PutUint64(rec[3:], j.seq)
	binary.LittleEndian.PutUint64(rec[11:], uint64(off))
	binary.LittleEndian.PutUint32(rec[19:], uint32(size))
	binary.LittleEndian.PutUint64(rec[23:], uint64(target.Offset))
	binary.LittleEndian.PutUint64(rec[31:], uint64(target.DevOff))
	binary.LittleEndian.PutUint32(rec[jnlRefCRCOffset:], crc32.ChecksumIEEE(rec[:jnlRefCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
	j.nRef++
}

// AppendUnref witnesses the release of e's slot after its last
// reference was dropped. The preceding record in the journal already
// implies the release; replay uses unref records to cross-check its
// reconstructed refcounts (a live slot being unreferenced, or the same
// slot unreferenced twice, is corruption).
func (j *Journal) AppendUnref(e *Extent) {
	var rec [jnlUnrefRecordSize]byte
	copy(rec[0:2], jnlUnrefMagic)
	rec[2] = jnlV2
	binary.LittleEndian.PutUint64(rec[3:], j.seq)
	binary.LittleEndian.PutUint64(rec[11:], uint64(e.Offset))
	binary.LittleEndian.PutUint32(rec[19:], uint32(e.OrigLen))
	binary.LittleEndian.PutUint64(rec[23:], uint64(e.DevOff))
	binary.LittleEndian.PutUint32(rec[31:], uint32(e.SlotLen))
	binary.LittleEndian.PutUint32(rec[jnlUnrefCRCOffset:], crc32.ChecksumIEEE(rec[:jnlUnrefCRCOffset]))
	j.buf = append(j.buf, rec[:]...)
	j.seq++
	j.n++
	j.nUnref++
}

// putJnlExtent writes the shared 33-byte extent body (offset, lengths,
// tag, version, devOff) both record kinds carry.
func putJnlExtent(b []byte, e *Extent) {
	binary.LittleEndian.PutUint64(b[0:], uint64(e.Offset))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.OrigLen))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.CompLen))
	binary.LittleEndian.PutUint32(b[16:], uint32(e.SlotLen))
	b[20] = byte(e.Tag)
	binary.LittleEndian.PutUint32(b[21:], e.Version)
	binary.LittleEndian.PutUint64(b[25:], uint64(e.DevOff))
}

// getJnlExtent decodes the shared extent body written by putJnlExtent.
func getJnlExtent(b []byte) *Extent {
	return &Extent{
		Offset:  int64(binary.LittleEndian.Uint64(b[0:])),
		OrigLen: int64(binary.LittleEndian.Uint32(b[8:])),
		CompLen: int64(binary.LittleEndian.Uint32(b[12:])),
		SlotLen: int64(binary.LittleEndian.Uint32(b[16:])),
		Tag:     compress.Tag(b[20]),
		Version: binary.LittleEndian.Uint32(b[21:]),
		DevOff:  int64(binary.LittleEndian.Uint64(b[25:])),
	}
}

// Bytes returns the journal contents (not a copy: snapshot it before
// mutating the journal further).
func (j *Journal) Bytes() []byte { return j.buf }

// Records returns the number of appended records since the last Reset.
func (j *Journal) Records() int { return j.n }

// Relocations returns how many of the appended records are relocates.
func (j *Journal) Relocations() int { return j.nReloc }

// Refs returns how many of the appended records are dedup refs.
func (j *Journal) Refs() int { return j.nRef }

// Unrefs returns how many of the appended records are slot unrefs.
func (j *Journal) Unrefs() int { return j.nUnref }

// Reset empties the journal after a checkpoint folded its records into
// the snapshot. Sequence numbering continues, so a recovery spanning a
// checkpoint boundary cannot silently mix epochs.
func (j *Journal) Reset() {
	j.buf = j.buf[:0]
	j.n = 0
	j.nReloc = 0
	j.nRef = 0
	j.nUnref = 0
}

// JournalRec is one decoded journal record: a plain extent insert, a
// maintenance relocation (Relocate) that remaps Ext's run to Ext's
// placement and frees the old slot [OldDevOff, +OldSlotLen), a dedup
// ref (Ref) mapping Ext's run onto the extent stored at TargetDevOff,
// or a slot unref witness (Unref) reusing OldDevOff/OldSlotLen for the
// released slot.
type JournalRec struct {
	// Ext is the extent the record makes durable. Ref and unref records
	// carry only the run identity (Offset, OrigLen).
	Ext *Extent
	// Relocate distinguishes a relocate record from an insert.
	Relocate bool
	// Global marks a v2 relocate: replay must remap every block
	// referencing the old placement, not just its home range.
	Global bool
	// Ref marks a dedup-hit record.
	Ref bool
	// Unref marks a slot-release witness record.
	Unref bool
	// OldDevOff is the device offset of the slot the record freed
	// (relocate and unref records).
	OldDevOff int64
	// OldSlotLen is the size of the freed slot (relocate and unref
	// records).
	OldSlotLen int64
	// TargetOff is the logical offset of the referenced extent's home
	// run (ref records only).
	TargetOff int64
	// TargetDevOff is the device slot of the referenced extent (ref
	// records only).
	TargetDevOff int64
}

// DecodeJournal parses a journal image into its records, in append
// order. A short final record (torn tail: the crash interrupted the
// last append) is dropped silently; any other malformation is
// ErrBadJournal.
func DecodeJournal(data []byte) ([]JournalRec, error) {
	recs, _, err := decodeJournal(data)
	return recs, err
}

// decodeJournal is DecodeJournal plus the undecoded tail length, so
// CheckJournal can report torn appends across both record sizes.
func decodeJournal(data []byte) (recs []JournalRec, tail int, err error) {
	var wantSeq uint64
	for i := 0; ; i++ {
		if len(data) < 2 {
			// Too short even for a magic: a torn final append.
			return recs, len(data), nil
		}
		var rec JournalRec
		var body, whole []byte
		var seq uint64
		switch string(data[0:2]) {
		case jnlMagic:
			if len(data) < jnlRecordSize {
				return recs, len(data), nil // torn insert append
			}
			whole = data[:jnlRecordSize]
			if crc32.ChecksumIEEE(whole[:jnlCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[2:])
			body = whole[10:]
		case jnlRelocMagic:
			if len(data) < jnlRelocRecordSize {
				return recs, len(data), nil // torn relocate append
			}
			whole = data[:jnlRelocRecordSize]
			if whole[2] != jnlRelocVersion && whole[2] != jnlV2 {
				return nil, 0, fmt.Errorf("%w: record %d relocate version %d", ErrBadJournal, i, whole[2])
			}
			if crc32.ChecksumIEEE(whole[:jnlRelocCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlRelocCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[3:])
			rec.Relocate = true
			rec.Global = whole[2] == jnlV2
			rec.OldDevOff = int64(binary.LittleEndian.Uint64(whole[11:]))
			rec.OldSlotLen = int64(binary.LittleEndian.Uint32(whole[19:]))
			body = whole[23:]
		case jnlRefMagic:
			if len(data) < jnlRefRecordSize {
				return recs, len(data), nil // torn ref append
			}
			whole = data[:jnlRefRecordSize]
			if whole[2] != jnlV2 {
				return nil, 0, fmt.Errorf("%w: record %d ref version %d", ErrBadJournal, i, whole[2])
			}
			if crc32.ChecksumIEEE(whole[:jnlRefCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlRefCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[3:])
			rec.Ref = true
			rec.Ext = &Extent{
				Offset:  int64(binary.LittleEndian.Uint64(whole[11:])),
				OrigLen: int64(binary.LittleEndian.Uint32(whole[19:])),
			}
			rec.TargetOff = int64(binary.LittleEndian.Uint64(whole[23:]))
			rec.TargetDevOff = int64(binary.LittleEndian.Uint64(whole[31:]))
		case jnlUnrefMagic:
			if len(data) < jnlUnrefRecordSize {
				return recs, len(data), nil // torn unref append
			}
			whole = data[:jnlUnrefRecordSize]
			if whole[2] != jnlV2 {
				return nil, 0, fmt.Errorf("%w: record %d unref version %d", ErrBadJournal, i, whole[2])
			}
			if crc32.ChecksumIEEE(whole[:jnlUnrefCRCOffset]) != binary.LittleEndian.Uint32(whole[jnlUnrefCRCOffset:]) {
				return nil, 0, fmt.Errorf("%w: record %d checksum", ErrBadJournal, i)
			}
			seq = binary.LittleEndian.Uint64(whole[3:])
			rec.Unref = true
			rec.Ext = &Extent{
				Offset:  int64(binary.LittleEndian.Uint64(whole[11:])),
				OrigLen: int64(binary.LittleEndian.Uint32(whole[19:])),
			}
			rec.OldDevOff = int64(binary.LittleEndian.Uint64(whole[23:]))
			rec.OldSlotLen = int64(binary.LittleEndian.Uint32(whole[31:]))
		default:
			return nil, 0, fmt.Errorf("%w: record %d magic", ErrBadJournal, i)
		}
		data = data[len(whole):]
		if i == 0 {
			wantSeq = seq
		}
		if seq != wantSeq {
			return nil, 0, fmt.Errorf("%w: record %d sequence %d, want %d", ErrBadJournal, i, seq, wantSeq)
		}
		wantSeq++
		if body != nil {
			e := getJnlExtent(body)
			if e.OrigLen <= 0 || e.OrigLen%BlockSize != 0 || e.Offset < 0 || e.Offset%BlockSize != 0 ||
				e.SlotLen <= 0 || e.CompLen <= 0 || e.Tag > compress.MaxTag {
				return nil, 0, fmt.Errorf("%w: record %d invalid extent", ErrBadJournal, i)
			}
			rec.Ext = e
		} else {
			// Ref/unref records carry only a run identity plus a slot.
			e := rec.Ext
			if e.OrigLen <= 0 || e.OrigLen%BlockSize != 0 || e.Offset < 0 || e.Offset%BlockSize != 0 {
				return nil, 0, fmt.Errorf("%w: record %d invalid run", ErrBadJournal, i)
			}
			if rec.Ref && (rec.TargetOff < 0 || rec.TargetOff%BlockSize != 0 || rec.TargetDevOff < 0) {
				return nil, 0, fmt.Errorf("%w: record %d invalid ref target", ErrBadJournal, i)
			}
			if rec.Unref && (rec.OldDevOff < 0 || rec.OldSlotLen <= 0) {
				return nil, 0, fmt.Errorf("%w: record %d invalid old slot", ErrBadJournal, i)
			}
		}
		if rec.Relocate && (rec.OldDevOff < 0 || rec.OldSlotLen <= 0) {
			return nil, 0, fmt.Errorf("%w: record %d invalid old slot", ErrBadJournal, i)
		}
		recs = append(recs, rec)
	}
}

// CheckJournal validates a journal image for edcfsck: the number of
// intact records, whether the tail was torn, and any corruption found.
func CheckJournal(data []byte) (records int, torn bool, err error) {
	recs, tail, err := decodeJournal(data)
	if err != nil {
		return 0, false, err
	}
	return len(recs), tail != 0, nil
}

// ReplayJournal applies a journal image onto m in append order (inserts
// unmap the blocks they cover exactly as the live write path did;
// relocates remap the surviving blocks of their run and free the old
// slot; refs remap their run onto the referenced extent) and returns
// the number of records applied. Unref records are verified, not
// applied: the release they witness is implied by the reference-
// dropping record before them, so a slot that is still live — or
// already witnessed as released — marks the journal corrupt. A relocate
// or ref whose old/target placement is not mapped is likewise refused
// rather than double-freed.
func ReplayJournal(m *Mapping, data []byte) (int, error) {
	recs, err := DecodeJournal(data)
	if err != nil {
		return 0, err
	}
	// devIdx resolves device offsets to the extents replay has seen
	// there (live or dead); released tracks slots whose unref has been
	// witnessed. Both are built lazily at the first v2 record, so v0/v1
	// journals replay on the historical path with no index at all.
	var devIdx map[int64]*Extent
	var released map[int64]bool
	index := func(e *Extent) {
		if devIdx != nil {
			devIdx[e.DevOff] = e
			delete(released, e.DevOff)
		}
	}
	ensureIdx := func() {
		if devIdx != nil {
			return
		}
		devIdx = make(map[int64]*Extent)
		released = make(map[int64]bool)
		seen := make(map[*Extent]bool)
		for _, e := range m.table {
			if e != nil && !seen[e] {
				seen[e] = true
				devIdx[e.DevOff] = e
			}
		}
	}
	for i, rec := range recs {
		switch {
		case rec.Ref:
			ensureIdx()
			tgt := devIdx[rec.TargetDevOff]
			if tgt == nil || tgt.live <= 0 || tgt.Offset != rec.TargetOff || tgt.OrigLen != rec.Ext.OrigLen {
				return i, fmt.Errorf("%w: ref record %d: target slot %d for run at %d not mapped",
					ErrBadJournal, i, rec.TargetDevOff, rec.TargetOff)
			}
			if err := m.InsertRef(rec.Ext.Offset, rec.Ext.OrigLen, tgt); err != nil {
				return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
			}
		case rec.Unref:
			ensureIdx()
			if e := devIdx[rec.OldDevOff]; e != nil && e.live > 0 {
				return i, fmt.Errorf("%w: unref record %d: slot %d for run at %d still live",
					ErrBadJournal, i, rec.OldDevOff, rec.Ext.Offset)
			}
			if released[rec.OldDevOff] {
				return i, fmt.Errorf("%w: unref record %d: slot %d already released (double unref?)",
					ErrBadJournal, i, rec.OldDevOff)
			}
			released[rec.OldDevOff] = true
		case rec.Relocate && rec.Global:
			ensureIdx()
			old := devIdx[rec.OldDevOff]
			if old == nil || old.live <= 0 || old.Offset != rec.Ext.Offset || old.OrigLen != rec.Ext.OrigLen {
				return i, fmt.Errorf("%w: relocate record %d: old slot %d for run at %d not mapped (double free?)",
					ErrBadJournal, i, rec.OldDevOff, rec.Ext.Offset)
			}
			if old.SlotLen != rec.OldSlotLen {
				return i, fmt.Errorf("%w: relocate record %d: old slot size %d, mapping has %d",
					ErrBadJournal, i, rec.OldSlotLen, old.SlotLen)
			}
			if err := m.ReplaceAll(old, rec.Ext); err != nil {
				return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
			}
			index(rec.Ext)
		case rec.Relocate:
			old := m.findExtent(rec.Ext.Offset, rec.Ext.OrigLen, rec.OldDevOff)
			if old == nil {
				return i, fmt.Errorf("%w: relocate record %d: old slot %d for run at %d not mapped (double free?)",
					ErrBadJournal, i, rec.OldDevOff, rec.Ext.Offset)
			}
			if old.SlotLen != rec.OldSlotLen {
				return i, fmt.Errorf("%w: relocate record %d: old slot size %d, mapping has %d",
					ErrBadJournal, i, rec.OldSlotLen, old.SlotLen)
			}
			if err := m.Replace(old, rec.Ext); err != nil {
				return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
			}
			index(rec.Ext)
		default:
			if err := m.Insert(rec.Ext); err != nil {
				return i, fmt.Errorf("core: journal replay record %d: %w", i, err)
			}
			index(rec.Ext)
		}
	}
	return len(recs), nil
}
