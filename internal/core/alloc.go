package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace reports allocator exhaustion: the compressed store no longer
// fits on the backing device.
var ErrNoSpace = errors.New("core: device space exhausted")

// Allocator manages byte extents of the backing device's logical address
// space for compressed slots. Because EDC quantizes slot sizes to
// quarters of the (4 KiB-aligned) run size (Sec. III-C), the set of
// distinct slot sizes is small, so segregated exact-size free lists
// recycle space without fragmentation; a split fallback handles mixed
// sizes.
type Allocator struct {
	capacity int64
	bump     int64
	free     map[int64][]int64 // slot size -> free offsets (LIFO)
	inUse    int64
	peakUse  int64
	allocs   int64
	splits   int64
}

// NewAllocator manages [0, capacity) bytes.
func NewAllocator(capacity int64) *Allocator {
	return &Allocator{capacity: capacity, free: make(map[int64][]int64)}
}

// Capacity returns the managed space in bytes.
func (a *Allocator) Capacity() int64 { return a.capacity }

// InUse returns currently allocated bytes.
func (a *Allocator) InUse() int64 { return a.inUse }

// PeakUse returns the high-water mark of allocated bytes.
func (a *Allocator) PeakUse() int64 { return a.peakUse }

// Alloc returns the device offset of a slot of exactly `size` bytes.
func (a *Allocator) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("core: Alloc(%d): size must be positive", size)
	}
	a.allocs++
	// 1. Exact-size free list.
	if lst := a.free[size]; len(lst) > 0 {
		off := lst[len(lst)-1]
		a.free[size] = lst[:len(lst)-1]
		a.account(size)
		return off, nil
	}
	// 2. Fresh space.
	if a.bump+size <= a.capacity {
		off := a.bump
		a.bump += size
		a.account(size)
		return off, nil
	}
	// 3. Split the smallest adequate free slot.
	bestSize := int64(-1)
	for s, lst := range a.free {
		if s >= size && len(lst) > 0 && (bestSize < 0 || s < bestSize) {
			bestSize = s
		}
	}
	if bestSize < 0 {
		return 0, ErrNoSpace
	}
	lst := a.free[bestSize]
	off := lst[len(lst)-1]
	a.free[bestSize] = lst[:len(lst)-1]
	if rem := bestSize - size; rem > 0 {
		a.free[rem] = append(a.free[rem], off+size)
	}
	a.splits++
	a.account(size)
	return off, nil
}

func (a *Allocator) account(size int64) {
	a.inUse += size
	if a.inUse > a.peakUse {
		a.peakUse = a.inUse
	}
}

// Free returns a slot to its size class.
func (a *Allocator) Free(off, size int64) {
	if size <= 0 {
		return
	}
	a.free[size] = append(a.free[size], off)
	a.inUse -= size
}

// FreeBytes returns bytes available (free lists + untouched space).
func (a *Allocator) FreeBytes() int64 {
	var freeList int64
	for s, lst := range a.free {
		freeList += s * int64(len(lst))
	}
	return freeList + (a.capacity - a.bump)
}

// SizeClasses returns the distinct free-list sizes in ascending order
// (diagnostics).
func (a *Allocator) SizeClasses() []int64 {
	out := make([]int64, 0, len(a.free))
	for s, lst := range a.free {
		if len(lst) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compact coalesces the free lists: adjacent free slots merge into
// larger ones, and a merged run that touches the bump frontier is
// returned to fresh space. Free slots never move live data, so
// compaction is pure metadata work — no device I/O — and it undoes the
// size-class fragmentation that quantized recycling accumulates.
// Returns how many adjacent slots were coalesced away and how many
// bytes rejoined the untouched region. Deterministic: the rebuilt free
// lists depend only on the set of free ranges, not map iteration order.
func (a *Allocator) Compact() (coalesced int, reclaimed int64) {
	ranges := make([]Range, 0, 16)
	for s, lst := range a.free {
		for _, off := range lst {
			ranges = append(ranges, Range{Off: off, Len: s})
		}
	}
	if len(ranges) == 0 {
		return 0, 0
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Off < ranges[j].Off })
	merged := ranges[:1]
	for _, r := range ranges[1:] {
		last := &merged[len(merged)-1]
		if last.Off+last.Len == r.Off {
			last.Len += r.Len
			coalesced++
			continue
		}
		merged = append(merged, r)
	}
	if tail := &merged[len(merged)-1]; tail.Off+tail.Len == a.bump {
		a.bump = tail.Off
		reclaimed = tail.Len
		merged = merged[:len(merged)-1]
	}
	a.free = make(map[int64][]int64)
	for _, r := range merged {
		a.free[r.Len] = append(a.free[r.Len], r.Off)
	}
	return coalesced, reclaimed
}

// Range is one reserved extent used when rebuilding from a snapshot.
type Range struct {
	Off, Len int64 // byte offset and length on the device
}

// Rebuild resets the allocator to exactly the given reserved ranges
// (mapping-snapshot restore): gaps between reservations become free
// slots, and fresh space resumes after the last reservation. Ranges must
// be in-capacity and non-overlapping.
func (a *Allocator) Rebuild(reserved []Range) error {
	sort.Slice(reserved, func(i, j int) bool { return reserved[i].Off < reserved[j].Off })
	a.free = make(map[int64][]int64)
	a.inUse = 0
	a.bump = 0
	for _, r := range reserved {
		if r.Len <= 0 || r.Off < 0 || r.Off+r.Len > a.capacity {
			return fmt.Errorf("core: rebuild range [%d,+%d) invalid", r.Off, r.Len)
		}
		if r.Off < a.bump {
			return fmt.Errorf("core: rebuild range [%d,+%d) overlaps", r.Off, r.Len)
		}
		if gap := r.Off - a.bump; gap > 0 {
			a.free[gap] = append(a.free[gap], a.bump)
		}
		a.inUse += r.Len
		a.bump = r.Off + r.Len
	}
	if a.inUse > a.peakUse {
		a.peakUse = a.inUse
	}
	return nil
}

// QuantizeSlot maps a compressed length to the paper's quantized slot
// size: the smallest of 25/50/75/100 % of origLen that fits. It returns
// origLen (and false) when the compressed form would need more than 75 %
// — the block should then be stored uncompressed (Sec. III-C).
func QuantizeSlot(origLen, compLen int64) (slot int64, compressed bool) {
	if origLen <= 0 {
		return 0, false
	}
	quarter := (origLen + 3) / 4
	switch {
	case compLen <= quarter:
		return quarter, true
	case compLen <= 2*quarter:
		return 2 * quarter, true
	case compLen <= 3*quarter:
		return 3 * quarter, true
	default:
		return origLen, false
	}
}
