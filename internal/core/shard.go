package core

import (
	"errors"
	"fmt"
	"time"

	"edc/internal/obs"
	"edc/internal/parallel"
	"edc/internal/sim"
	"edc/internal/trace"
)

// ShardSetup describes an LBA-sharded replay: the volume is partitioned
// into Shards contiguous block-aligned ranges, each served by an
// independent pipeline instance — its own sim.Engine, backend, allocator,
// mapping, and stages — replayed concurrently on OS goroutines. The
// factories run once per shard so no mutable state is shared; the only
// cross-shard structure is the read-only IntensitySnapshot every shard
// queries for the global workload signal.
type ShardSetup struct {
	// Shards is the partition width (>= 1).
	Shards int
	// VolumeBytes is the full logical volume being partitioned.
	VolumeBytes int64
	// Backend builds one shard's private backend on its private engine.
	Backend func(eng *sim.Engine) (Backend, error)
	// Options builds one shard's Options. It must return fresh
	// per-shard state for every call (Data generator, Estimator, Policy)
	// — sharing any of them across shards races. Options.Meter is
	// overwritten with the shared intensity snapshot.
	Options func(shard int) (Options, error)
	// MonitorWindow sizes the shared snapshot's slow window (zero: the
	// device default of 500 ms).
	MonitorWindow time.Duration
	// Obs observes the merged replay: each shard gets a private buffering
	// child collector (Options.Obs is overwritten), and after the shards
	// join their event streams merge deterministically by (virtual time,
	// shard, sequence) into this parent. Nil disables observability.
	Obs *obs.Collector
}

// ShardedDevice routes requests to LBA-range shards and replays them in
// parallel. Single-shard replay should use Device directly: the sharded
// path has different (though deterministic) semantics — per-shard
// closed-loop bounds, shard-local SD merge, and a trace-derived global
// intensity signal.
type ShardedDevice struct {
	setup  ShardSetup
	vol    int64
	bounds []int64 // len Shards+1; shard i serves [bounds[i], bounds[i+1])
	played bool
}

// NewSharded validates the setup and computes the LBA partition.
func NewSharded(setup ShardSetup) (*ShardedDevice, error) {
	if setup.Shards < 1 {
		return nil, errors.New("core: shards must be >= 1")
	}
	if setup.Backend == nil || setup.Options == nil {
		return nil, errors.New("core: shard setup needs Backend and Options factories")
	}
	vol := setup.VolumeBytes &^ (BlockSize - 1)
	if vol <= 0 {
		return nil, errors.New("core: volume smaller than one block")
	}
	nBlocks := vol / BlockSize
	if int64(setup.Shards) > nBlocks {
		return nil, fmt.Errorf("core: %d shards exceed %d volume blocks", setup.Shards, nBlocks)
	}
	return &ShardedDevice{
		setup:  setup,
		vol:    vol,
		bounds: shardBounds(vol, setup.Shards),
	}, nil
}

// shardBounds splits vol into n block-aligned ranges covering the whole
// volume with no overlap: the first vol/BlockSize mod n shards get one
// extra block.
func shardBounds(vol int64, n int) []int64 {
	nBlocks := vol / BlockSize
	per, rem := nBlocks/int64(n), nBlocks%int64(n)
	bounds := make([]int64, n+1)
	for i := 0; i < n; i++ {
		blocks := per
		if int64(i) < rem {
			blocks++
		}
		bounds[i+1] = bounds[i] + blocks*BlockSize
	}
	return bounds
}

// Bounds returns the partition offsets (len Shards+1, ascending,
// bounds[0]=0, bounds[n]=volume).
func (s *ShardedDevice) Bounds() []int64 {
	out := make([]int64, len(s.bounds))
	copy(out, s.bounds)
	return out
}

// VolumeBytes returns the full logical volume size.
func (s *ShardedDevice) VolumeBytes() int64 { return s.vol }

// shardFor returns the shard index serving byte offset off.
func (s *ShardedDevice) shardFor(off int64) int {
	return shardIndex(s.bounds, off)
}

// split routes t across the shards: each request is aligned against the
// full volume (exactly as an unsharded device would), cut at shard
// boundaries, and rebased into shard-local offsets. Arrival order within
// a shard is trace order, so per-shard replay stays deterministic.
func (s *ShardedDevice) split(t *trace.Trace) []*trace.Trace {
	subs := make([]*trace.Trace, len(s.bounds)-1)
	for i := range subs {
		subs[i] = &trace.Trace{Name: t.Name}
	}
	for _, r := range t.Requests {
		off, size := alignRequest(s.vol, r)
		for size > 0 {
			i := s.shardFor(off)
			end := s.bounds[i+1]
			n := size
			if off+n > end {
				n = end - off
			}
			subs[i].Requests = append(subs[i].Requests, trace.Request{
				Arrival: r.Arrival,
				Offset:  off - s.bounds[i],
				Size:    n,
				Write:   r.Write,
			})
			off += n
			size -= n
		}
	}
	return subs
}

// Play replays t across all shards concurrently and returns the merged
// statistics. Each shard's replay is an independent virtual-time
// simulation; the merge folds shard results in shard order, so the
// output is deterministic for a fixed shard count.
func (s *ShardedDevice) Play(t *trace.Trace) (*RunStats, error) {
	if s.played {
		return nil, errors.New("core: device already played a trace")
	}
	s.played = true

	// The shared global workload signal: every shard selects codecs
	// against the same trace-wide intensity, not its own slice of it.
	snap := NewIntensitySnapshot(t, s.vol, s.setup.MonitorWindow)

	n := len(s.bounds) - 1
	devs := make([]*Device, n)
	kids := make([]*obs.Collector, n)
	for i := 0; i < n; i++ {
		opts, err := s.setup.Options(i)
		if err != nil {
			return nil, err
		}
		opts.Meter = snap
		kids[i] = s.setup.Obs.Child(i)
		opts.Obs = kids[i]
		eng := sim.NewEngine()
		be, err := s.setup.Backend(eng)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d backend: %w", i, err)
		}
		shardVol := s.bounds[i+1] - s.bounds[i]
		dev, err := NewDevice(eng, be, shardVol, opts)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		devs[i] = dev
	}
	subs := s.split(t)

	type shardResult struct {
		stats *RunStats
		err   error
	}
	pool := parallel.NewPool(n)
	futs := make([]*parallel.Future[shardResult], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = parallel.Go(pool, func() shardResult {
			st, err := devs[i].Play(subs[i])
			return shardResult{stats: st, err: err}
		})
	}
	parts := make([]*RunStats, n)
	var firstErr error
	for i, fut := range futs {
		r := fut.Wait()
		parts[i] = r.stats
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: shard %d: %w", i, r.err)
		}
	}
	pool.Close()
	s.setup.Obs.Absorb(kids)
	merged := MergeRunStats(parts)
	merged.Obs = s.setup.Obs.Report()
	merged.Backend = fmt.Sprintf("%d-shard [%s]", n, parts[0].Backend)
	if merged.Err == nil {
		merged.Err = firstErr
	}
	return merged, firstErr
}
