package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"edc/internal/datagen"
	"edc/internal/fault"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// newTestServer builds an n-shard live server over small private SSDs.
func newTestServer(t *testing.T, n int, vol int64, mailbox, batch int) *Server {
	t.Helper()
	reg := defaultTestRegistry(t)
	sv, err := NewServer(ServeSetup{
		Shards:      n,
		VolumeBytes: vol,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 512
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{
				Registry:    reg,
				Data:        datagen.New(datagen.Enterprise(), 11),
				VerifyReads: true,
			}, nil
		},
		Mailbox: mailbox,
		Batch:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

// TestServeBasic drives a single-shard server from one client and checks
// the merged statistics account for every operation.
func TestServeBasic(t *testing.T) {
	sv := newTestServer(t, 1, 1<<20, 0, 0)
	ctx := context.Background()
	const ops = 32
	for i := 0; i < ops; i++ {
		off := int64(i%64) * BlockSize
		if i%2 == 0 {
			if lat, err := sv.Write(ctx, off, BlockSize); err != nil || lat <= 0 {
				t.Fatalf("write %d: lat=%v err=%v", i, lat, err)
			}
		} else {
			if lat, err := sv.Read(ctx, off, BlockSize); err != nil || lat <= 0 {
				t.Fatalf("read %d: lat=%v err=%v", i, lat, err)
			}
		}
	}
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Requests != ops || st.Reads != ops/2 || st.Writes != ops/2 {
		t.Fatalf("requests=%d reads=%d writes=%d, want %d/%d/%d",
			st.Requests, st.Reads, st.Writes, ops, ops/2, ops/2)
	}
	if st.OrigBytes != int64(ops/2)*BlockSize {
		t.Fatalf("OrigBytes=%d, want %d", st.OrigBytes, int64(ops/2)*BlockSize)
	}
	if got := st.Resp.Count(); got != ops {
		t.Fatalf("latency observations=%d, want %d", got, ops)
	}
	if st.Trace != "serve" {
		t.Fatalf("Trace=%q, want serve", st.Trace)
	}
}

// TestServeConcurrentClients hammers a sharded server from many client
// goroutines (run under -race) and checks completion accounting.
func TestServeConcurrentClients(t *testing.T) {
	const (
		clients = 8
		perC    = 40
		vol     = int64(4 << 20)
	)
	sv := newTestServer(t, 4, vol, 8, 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			blocks := vol / BlockSize
			for i := 0; i < perC; i++ {
				// In-shard, block-aligned single-block ops keep the
				// request count exact (no boundary splitting).
				off := (int64(c*perC+i) * 7919 % blocks) * BlockSize
				at := time.Duration(i) * 50 * time.Microsecond
				var err error
				if i%3 == 0 {
					_, err = sv.ReadAt(ctx, at, off, BlockSize)
				} else {
					_, err = sv.WriteAt(ctx, at, off, BlockSize)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Requests != clients*perC {
		t.Fatalf("requests=%d, want %d", st.Requests, clients*perC)
	}
	if st.Resp.Count() != clients*perC {
		t.Fatalf("latency observations=%d, want %d", st.Resp.Count(), clients*perC)
	}
	if st.SubmitStalls != sv.Stalls() {
		t.Fatalf("merged stalls=%d, server reports %d", st.SubmitStalls, sv.Stalls())
	}
}

// TestServeDeterministicCounts runs the same concurrent workload twice
// and checks the interleaving-independent invariants: request counts and
// total written bytes are identical even though goroutine scheduling is
// not.
func TestServeDeterministicCounts(t *testing.T) {
	run := func() *RunStats {
		const clients, perC = 4, 25
		vol := int64(2 << 20)
		sv := newTestServer(t, 2, vol, 4, 2)
		ctx := context.Background()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				blocks := vol / BlockSize
				for i := 0; i < perC; i++ {
					off := (int64(c*perC+i) * 104729 % blocks) * BlockSize
					if (c+i)%4 == 0 {
						sv.ReadAt(ctx, time.Duration(i)*time.Millisecond, off, BlockSize)
					} else {
						sv.WriteAt(ctx, time.Duration(i)*time.Millisecond, off, BlockSize)
					}
				}
			}()
		}
		wg.Wait()
		st, err := sv.Stop()
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
		return st
	}
	a, b := run(), run()
	if a.Requests != b.Requests || a.Reads != b.Reads || a.Writes != b.Writes {
		t.Fatalf("request counts differ: %d/%d/%d vs %d/%d/%d",
			a.Requests, a.Reads, a.Writes, b.Requests, b.Reads, b.Writes)
	}
	if a.OrigBytes != b.OrigBytes {
		t.Fatalf("OrigBytes differ: %d vs %d", a.OrigBytes, b.OrigBytes)
	}
}

// TestServeShardSpanning submits one operation straddling a shard
// boundary and checks it fans out to both shards and joins into a single
// completion.
func TestServeShardSpanning(t *testing.T) {
	vol := int64(1 << 20)
	sv := newTestServer(t, 2, vol, 0, 0)
	bound := vol / 2 // two equal shards
	ctx := context.Background()
	lat, err := sv.Write(ctx, bound-BlockSize, 2*BlockSize)
	if err != nil || lat <= 0 {
		t.Fatalf("spanning write: lat=%v err=%v", lat, err)
	}
	if lat2, err := sv.Read(ctx, bound-BlockSize, 2*BlockSize); err != nil || lat2 <= 0 {
		t.Fatalf("spanning read: lat=%v err=%v", lat2, err)
	}
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Each spanning call becomes one sub-operation per shard.
	if st.Requests != 4 || st.Reads != 2 || st.Writes != 2 {
		t.Fatalf("requests=%d reads=%d writes=%d, want 4/2/2", st.Requests, st.Reads, st.Writes)
	}
}

// TestServeOpenLoopLatency checks the intended-arrival semantics: an
// operation stamped far in the future is admitted at its stamp and
// measures only its own response time, while a stamp in the virtual past
// is clamped to now and accrues the ingress wait.
func TestServeOpenLoopLatency(t *testing.T) {
	sv := newTestServer(t, 1, 1<<20, 0, 0)
	ctx := context.Background()
	// Advance the virtual clock well past zero.
	for i := 0; i < 200; i++ {
		if _, err := sv.Write(ctx, int64(i%32)*BlockSize, BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	// Stamp 0 is now deep in the virtual past: the latency includes the
	// whole clamp-to-now wait.
	past, err := sv.WriteAt(ctx, 0, 0, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	// A far-future stamp advances the clock instead: latency is response
	// time only.
	future, err := sv.WriteAt(ctx, time.Hour, 0, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if past <= future {
		t.Fatalf("past-stamped latency %v should exceed future-stamped %v", past, future)
	}
	if future >= time.Hour {
		t.Fatalf("future-stamped latency %v should not include the stamp", future)
	}
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServeSubmitAtOrdered pins the stamp-ordered pipelining contract:
// a sequencer that mails operations in global stamp order through
// SubmitAt — without waiting for earlier completions — must see
// latencies bounded by genuine service and queueing time, never
// inflated by the virtual clock racing ahead of stamps still to come.
func TestServeSubmitAtOrdered(t *testing.T) {
	sv := newTestServer(t, 1, 1<<20, 0, 0)
	ctx := context.Background()
	const ops = 200
	awaits := make([]Await, 0, ops)
	for i := 0; i < ops; i++ {
		// 2 ms spacing: far below device capacity, so with in-order
		// admission every wait is ~zero and latency is pure response
		// time (well under one spacing).
		at := time.Duration(i) * 2 * time.Millisecond
		aw, err := sv.SubmitAt(ctx, at, int64(i%64)*BlockSize, BlockSize, i%2 == 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		awaits = append(awaits, aw)
	}
	for i, aw := range awaits {
		lat, err := aw(ctx)
		if err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		if lat <= 0 || lat >= 2*time.Millisecond {
			t.Fatalf("op %d: latency %v outside (0, 2ms): clock ran ahead of unsubmitted stamps", i, lat)
		}
	}
	st, err := sv.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != ops {
		t.Fatalf("requests=%d, want %d", st.Requests, ops)
	}
}

// TestServeStopped checks submissions and second Stops after Stop fail
// with ErrServeStopped.
func TestServeStopped(t *testing.T) {
	sv := newTestServer(t, 1, 1<<20, 0, 0)
	ctx := context.Background()
	if _, err := sv.Write(ctx, 0, BlockSize); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Write(ctx, 0, BlockSize); !errors.Is(err, ErrServeStopped) {
		t.Fatalf("Write after Stop: %v, want ErrServeStopped", err)
	}
	if _, err := sv.Read(ctx, 0, BlockSize); !errors.Is(err, ErrServeStopped) {
		t.Fatalf("Read after Stop: %v, want ErrServeStopped", err)
	}
	if _, err := sv.Stop(); !errors.Is(err, ErrServeStopped) {
		t.Fatalf("second Stop: %v, want ErrServeStopped", err)
	}
}

// TestServeBackpressure runs many concurrent clients against a
// one-deep mailbox: every operation must still complete (submitters
// block instead of losing work) and the stall counter must be coherent.
func TestServeBackpressure(t *testing.T) {
	const clients, perC = 8, 25
	sv := newTestServer(t, 1, 1<<20, 1, 1)
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				off := int64((c*perC+i)%128) * BlockSize
				if _, err := sv.Write(ctx, off, BlockSize); err != nil {
					t.Errorf("client %d write %d: %v", c, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Requests != clients*perC {
		t.Fatalf("requests=%d, want %d", st.Requests, clients*perC)
	}
	if st.SubmitStalls < 0 || st.SubmitStalls != sv.Stalls() {
		t.Fatalf("stall accounting broken: merged=%d server=%d", st.SubmitStalls, sv.Stalls())
	}
}

// TestServeContextCancel checks a canceled context unblocks the waiting
// submitter even though the operation itself may still complete
// server-side.
func TestServeContextCancel(t *testing.T) {
	sv := newTestServer(t, 1, 1<<20, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.Write(ctx, 0, BlockSize); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write with canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServeFailurePropagation injects unrecoverable write faults and
// checks the fatal pipeline error reaches both the failing client and
// Stop instead of stranding submitters forever.
func TestServeFailurePropagation(t *testing.T) {
	reg := defaultTestRegistry(t)
	sv, err := NewServer(ServeSetup{
		Shards:      1,
		VolumeBytes: 1 << 20,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 64
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			// Every device write hard-fails: retries and re-allocations
			// exhaust, then the pipeline aborts.
			return Options{
				Registry: reg,
				Faults:   &fault.Plan{Seed: 7, WriteHard: 1.0},
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var opErr error
	for i := 0; i < 64; i++ {
		if _, opErr = sv.Write(ctx, int64(i)*BlockSize, BlockSize); opErr != nil {
			break
		}
	}
	if opErr == nil {
		t.Fatal("writes never failed under a 100% hard-fault plan")
	}
	if errors.Is(opErr, ErrServeStopped) || errors.Is(opErr, context.Canceled) {
		t.Fatalf("unexpected error class: %v", opErr)
	}
	if _, err := sv.Stop(); err == nil {
		t.Fatal("Stop reported no error after pipeline failure")
	}
}

// TestNewServerValidation covers the setup error paths.
func TestNewServerValidation(t *testing.T) {
	bf := func(eng *sim.Engine) (Backend, error) {
		t.Fatal("backend factory must not run for invalid setups")
		return nil, nil
	}
	of := func(int) (Options, error) { return Options{}, nil }
	for _, tc := range []ServeSetup{
		{Shards: 2, VolumeBytes: 1 << 20, Backend: nil, Options: of},
		{Shards: 2, VolumeBytes: 1 << 20, Backend: bf, Options: nil},
		{Shards: 2, VolumeBytes: BlockSize - 1, Backend: bf, Options: of},
		{Shards: 9, VolumeBytes: 8 * BlockSize, Backend: bf, Options: of},
	} {
		if _, err := NewServer(tc); err == nil {
			t.Errorf("NewServer(%+v) accepted invalid setup", tc)
		}
	}
	// A disabled flush timeout would strand buffered runs forever.
	_, err := NewServer(ServeSetup{
		Shards: 1, VolumeBytes: 1 << 20,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 64
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{FlushTimeout: -1}, nil
		},
	})
	if err == nil {
		t.Error("NewServer accepted a disabled flush timeout")
	}
}
