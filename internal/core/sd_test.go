package core

import (
	"testing"
	"time"
)

func w(off, size int64) PendingWrite {
	return PendingWrite{Offset: off, Size: size}
}

func TestSDMergesContiguousWrites(t *testing.T) {
	// The paper's Fig. 7 example: A1 A2 A3 B1 B2 C1 D1 (A, B sequential
	// runs; C, D isolated).
	sd := NewSeqDetector(0)
	if r := sd.OnWrite(w(0, 4096)); r != nil { // A1
		t.Fatalf("A1 flushed %+v", r)
	}
	if r := sd.OnWrite(w(4096, 4096)); r != nil { // A2 merges
		t.Fatalf("A2 flushed %+v", r)
	}
	if r := sd.OnWrite(w(8192, 4096)); r != nil { // A3 merges
		t.Fatalf("A3 flushed %+v", r)
	}
	r := sd.OnWrite(w(1<<20, 4096)) // B1 breaks the A run
	if r == nil || r.Offset != 0 || r.Size != 12288 || len(r.Writes) != 3 {
		t.Fatalf("A run = %+v", r)
	}
	if r := sd.OnWrite(w(1<<20+4096, 4096)); r != nil { // B2 merges
		t.Fatalf("B2 flushed %+v", r)
	}
	r = sd.OnWrite(w(2<<20, 4096)) // C1 breaks B
	if r == nil || r.Size != 8192 || len(r.Writes) != 2 {
		t.Fatalf("B run = %+v", r)
	}
	r = sd.OnWrite(w(3<<20, 4096)) // D1 breaks C
	if r == nil || r.Size != 4096 {
		t.Fatalf("C run = %+v", r)
	}
	if got := sd.Merged(); got != 3 {
		t.Fatalf("merged = %d; want 3 (A2, A3, B2)", got)
	}
}

func TestSDReadFlushes(t *testing.T) {
	sd := NewSeqDetector(0)
	sd.OnWrite(w(0, 4096))
	sd.OnWrite(w(4096, 4096))
	r := sd.OnRead()
	if r == nil || r.Size != 8192 {
		t.Fatalf("read flush = %+v", r)
	}
	if sd.Pending() {
		t.Fatal("run still pending after read flush")
	}
	if sd.OnRead() != nil {
		t.Fatal("second read should flush nothing")
	}
}

func TestSDMaxRunCap(t *testing.T) {
	sd := NewSeqDetector(16384)
	sd.OnWrite(w(0, 8192))
	if r := sd.OnWrite(w(8192, 8192)); r != nil {
		t.Fatalf("second write should merge, got %+v", r)
	}
	// Third contiguous write exceeds the 16K cap: flushes the run.
	r := sd.OnWrite(w(16384, 8192))
	if r == nil || r.Size != 16384 {
		t.Fatalf("cap flush = %+v", r)
	}
	if !sd.Pending() {
		t.Fatal("the capped write should start a new run")
	}
}

func TestSDFlush(t *testing.T) {
	sd := NewSeqDetector(0)
	if sd.Flush() != nil {
		t.Fatal("flush of empty detector should be nil")
	}
	sd.OnWrite(w(0, 4096))
	r := sd.Flush()
	if r == nil || r.Size != 4096 {
		t.Fatalf("flush = %+v", r)
	}
	if sd.Flushes() != 1 {
		t.Fatalf("flushes = %d", sd.Flushes())
	}
}

func TestSDIgnoresEmptyWrites(t *testing.T) {
	sd := NewSeqDetector(0)
	if sd.OnWrite(w(0, 0)) != nil || sd.Pending() {
		t.Fatal("zero-size write should be ignored")
	}
}

func TestSDOverlapDetection(t *testing.T) {
	sd := NewSeqDetector(0)
	sd.OnWrite(PendingWrite{Arrival: time.Second, Offset: 8192, Size: 8192})
	if !sd.PendingOverlaps(12288, 4096) {
		t.Fatal("overlap not detected")
	}
	if sd.PendingOverlaps(16384, 4096) {
		t.Fatal("adjacent range is not overlapping")
	}
	if sd.PendingOverlaps(0, 8192) {
		t.Fatal("preceding range is not overlapping")
	}
}

func TestSDNonContiguousBackwardWrite(t *testing.T) {
	sd := NewSeqDetector(0)
	sd.OnWrite(w(8192, 4096))
	// A write just *before* the run is not contiguous in the forward
	// direction and must flush.
	r := sd.OnWrite(w(4096, 4096))
	if r == nil || r.Offset != 8192 {
		t.Fatalf("backward write did not flush: %+v", r)
	}
}
