package core

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
	"edc/internal/trace"
)

// unusedFactories satisfy NewSharded for tests that only exercise the
// partition/routing logic and must never build a device.
func unusedFactories(t *testing.T) (func(*sim.Engine) (Backend, error), func(int) (Options, error)) {
	t.Helper()
	return func(*sim.Engine) (Backend, error) {
			t.Fatal("backend factory called")
			return nil, nil
		}, func(int) (Options, error) {
			t.Fatal("options factory called")
			return Options{}, nil
		}
}

// TestShardBoundsPartition checks the LBA partition invariants over a
// range of volume/shard shapes: full coverage, block alignment, strict
// monotonicity, and balance within one block.
func TestShardBoundsPartition(t *testing.T) {
	cases := []struct {
		blocks int64
		shards int
	}{
		{1, 1}, {5, 2}, {64, 3}, {7, 7}, {100, 9}, {4096, 16},
	}
	for _, tc := range cases {
		vol := tc.blocks * BlockSize
		b := shardBounds(vol, tc.shards)
		if len(b) != tc.shards+1 {
			t.Fatalf("blocks=%d shards=%d: %d bounds, want %d", tc.blocks, tc.shards, len(b), tc.shards+1)
		}
		if b[0] != 0 || b[tc.shards] != vol {
			t.Errorf("blocks=%d shards=%d: bounds span [%d, %d], want [0, %d]",
				tc.blocks, tc.shards, b[0], b[tc.shards], vol)
		}
		minSz, maxSz := int64(1<<62), int64(0)
		for i := 0; i < tc.shards; i++ {
			sz := b[i+1] - b[i]
			if sz <= 0 {
				t.Errorf("blocks=%d shards=%d: shard %d empty or inverted", tc.blocks, tc.shards, i)
			}
			if b[i]%BlockSize != 0 {
				t.Errorf("blocks=%d shards=%d: bound %d = %d not block-aligned", tc.blocks, tc.shards, i, b[i])
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > BlockSize {
			t.Errorf("blocks=%d shards=%d: shard sizes differ by %d > one block",
				tc.blocks, tc.shards, maxSz-minSz)
		}
	}
}

// TestShardSplitCoverage routes a boundary-crossing trace and verifies
// every aligned request is tiled exactly — no byte lost, duplicated, or
// routed outside its shard — with arrivals preserved.
func TestShardSplitCoverage(t *testing.T) {
	const vol = 64 * BlockSize
	bf, of := unusedFactories(t)
	sd, err := NewSharded(ShardSetup{Shards: 3, VolumeBytes: vol, Backend: bf, Options: of})
	if err != nil {
		t.Fatal(err)
	}
	bounds := sd.Bounds()

	tr := &trace.Trace{Name: "split"}
	// One request per block plus spans crossing each internal boundary
	// and one covering the whole volume.
	for i := int64(0); i < 64; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Microsecond,
			Offset:  i * BlockSize, Size: BlockSize, Write: i%2 == 0,
		})
	}
	for _, b := range bounds[1 : len(bounds)-1] {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Millisecond, Offset: b - BlockSize, Size: 3 * BlockSize, Write: true,
		})
	}
	tr.Requests = append(tr.Requests, trace.Request{
		Arrival: 2 * time.Millisecond, Offset: 0, Size: vol, Write: true,
	})

	subs := sd.split(tr)
	if len(subs) != 3 {
		t.Fatalf("%d sub-traces, want 3", len(subs))
	}
	type piece struct{ off, size int64 }
	pieces := map[time.Duration][]piece{} // keyed by arrival; sizes rebased to global offsets
	for i, sub := range subs {
		for _, r := range sub.Requests {
			if r.Offset < 0 || r.Offset+r.Size > bounds[i+1]-bounds[i] {
				t.Fatalf("shard %d: local request [%d, +%d) outside shard of %d bytes",
					i, r.Offset, r.Size, bounds[i+1]-bounds[i])
			}
			pieces[r.Arrival] = append(pieces[r.Arrival], piece{off: r.Offset + bounds[i], size: r.Size})
		}
	}
	for _, r := range tr.Requests {
		off, size := alignRequest(vol, r)
		ps := pieces[r.Arrival]
		// Keep only the pieces tiling this request (same-arrival requests
		// in this trace never overlap in LBA space).
		var mine []piece
		for _, p := range ps {
			if p.off >= off && p.off < off+size {
				mine = append(mine, p)
			}
		}
		sort.Slice(mine, func(a, b int) bool { return mine[a].off < mine[b].off })
		at := off
		for _, p := range mine {
			if p.off != at {
				t.Fatalf("request at %v: gap or overlap at %d (piece starts %d)", r.Arrival, at, p.off)
			}
			at += p.size
		}
		if at != off+size {
			t.Fatalf("request at %v: tiled %d of %d bytes", r.Arrival, at-off, size)
		}
	}
}

// TestNewShardedValidation covers the setup error paths.
func TestNewShardedValidation(t *testing.T) {
	bf, of := unusedFactories(t)
	for _, tc := range []ShardSetup{
		{Shards: 0, VolumeBytes: 1 << 20, Backend: bf, Options: of},
		{Shards: 2, VolumeBytes: 1 << 20, Backend: nil, Options: of},
		{Shards: 2, VolumeBytes: 1 << 20, Backend: bf, Options: nil},
		{Shards: 2, VolumeBytes: BlockSize - 1, Backend: bf, Options: of},
		{Shards: 9, VolumeBytes: 8 * BlockSize, Backend: bf, Options: of},
	} {
		if _, err := NewSharded(tc); err == nil {
			t.Errorf("NewSharded(%+v) accepted invalid setup", tc)
		}
	}
}

// newTestSharded builds an n-shard device over small private SSDs with
// read verification on.
func newTestSharded(t *testing.T, n int, vol int64) *ShardedDevice {
	t.Helper()
	reg := defaultTestRegistry(t)
	sd, err := NewSharded(ShardSetup{
		Shards:      n,
		VolumeBytes: vol,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 512
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{
				Registry:    reg,
				Data:        datagen.New(datagen.Enterprise(), 11),
				VerifyReads: true,
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

// spreadTrace scatters alternating write/read pairs across the whole
// volume so every shard sees traffic (seqTrace stays inside the first
// MiB, which a multi-shard split would route entirely to shard 0).
func spreadTrace(n int, vol int64, gap time.Duration) *trace.Trace {
	tr := &trace.Trace{Name: "spread"}
	blocks := vol / BlockSize
	for i := 0; i < n; i++ {
		off := (int64(i) * 7919 % blocks) * BlockSize
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * gap,
			Offset:  off, Size: 8192, Write: i%3 != 2,
		})
	}
	tr.SortByArrival()
	return tr
}

// TestShardedReplayDeterministic replays the same trace twice across
// three shards and requires field-identical merged statistics: the only
// nondeterminism in the sharded path is goroutine scheduling, which the
// shard-order join and merge must hide.
func TestShardedReplayDeterministic(t *testing.T) {
	tr := spreadTrace(900, 32<<20, 40*time.Microsecond)
	run := func() *RunStats {
		res, err := newTestSharded(t, 3, 32<<20).Play(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded replays differ:\na: %v\nb: %v", a, b)
	}
	if a.Resp.Count() != a.Requests {
		t.Errorf("observed %d responses for %d requests", a.Resp.Count(), a.Requests)
	}
	if len(a.Devices) != 3 {
		t.Errorf("merged stats carry %d devices, want 3", len(a.Devices))
	}
	if a.Writes == 0 || a.Reads == 0 || a.OrigBytes == 0 {
		t.Errorf("merged counters look empty: %+v", a)
	}
}

// TestShardedSingleUse mirrors the Device contract: one trace per
// ShardedDevice.
func TestShardedSingleUse(t *testing.T) {
	sd := newTestSharded(t, 2, 16<<20)
	tr := seqTrace(50, 50*time.Microsecond)
	if _, err := sd.Play(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Play(tr); err == nil {
		t.Fatal("second Play succeeded, want error")
	}
}

// TestShardedPropagatesShardError surfaces a failing shard as a replay
// error instead of silently merging partial results.
func TestShardedPropagatesShardError(t *testing.T) {
	bf, _ := unusedFactories(t)
	boom := errors.New("boom")
	sd, err := NewSharded(ShardSetup{
		Shards:      2,
		VolumeBytes: 16 << 20,
		Backend:     bf,
		Options: func(int) (Options, error) {
			return Options{}, boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Play(seqTrace(10, time.Microsecond)); !errors.Is(err, boom) {
		t.Fatalf("Play error = %v, want %v", err, boom)
	}
}
