package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"edc/internal/datagen"
	"edc/internal/sim"
	"edc/internal/ssd"
)

// TestSplitTailPreservesPartialOverwrites checks the block-exact clone:
// an extent that lost some blocks to a newer overwrite must arrive in
// the destination with exactly its surviving references, not a
// resurrected whole run.
func TestSplitTailPreservesPartialOverwrites(t *testing.T) {
	alloc := NewAllocator(1 << 20)
	var freed []*Extent
	m := NewMapping(16*BlockSize, alloc, func(e *Extent) { freed = append(freed, e) })
	place := func(off, size int64) *Extent {
		t.Helper()
		devOff, err := alloc.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		e := &Extent{Offset: off, OrigLen: size, CompLen: size, SlotLen: size, DevOff: devOff}
		if err := m.Insert(e); err != nil {
			t.Fatal(err)
		}
		return e
	}
	head := place(0, 4*BlockSize)
	e1 := place(8*BlockSize, 4*BlockSize)        // tail run [8,12)
	place(9*BlockSize, 2*BlockSize)              // overwrites blocks 9-10
	if e1.Live() != 2 || m.LiveBlocks() != 4+4 { // e1 keeps 8 and 11
		t.Fatalf("setup: e1.live=%d liveBlocks=%d", e1.Live(), m.LiveBlocks())
	}

	dstAlloc := NewAllocator(1 << 20)
	dst := NewMapping(8*BlockSize, dstAlloc, nil)
	clone := func(e *Extent) (*Extent, error) {
		devOff, err := dstAlloc.Alloc(e.SlotLen)
		if err != nil {
			return nil, err
		}
		return &Extent{Offset: e.Offset - 8*BlockSize, OrigLen: e.OrigLen,
			CompLen: e.CompLen, SlotLen: e.SlotLen, DevOff: devOff}, nil
	}
	moved, err := m.SplitTail(8*BlockSize, dst, clone)
	if err != nil || moved != 2 {
		t.Fatalf("SplitTail: moved=%d err=%v, want 2,nil", moved, err)
	}
	c1, c2 := dst.Lookup(0), dst.Lookup(1*BlockSize)
	if c1 == nil || c2 == nil || c1 == c2 {
		t.Fatalf("clones: block0=%p block1=%p", c1, c2)
	}
	if dst.Lookup(2*BlockSize) != c2 || dst.Lookup(3*BlockSize) != c1 {
		t.Fatal("destination table does not mirror the source's overwrite pattern")
	}
	if c1.Live() != 2 || c2.Live() != 2 || dst.LiveBlocks() != 4 {
		t.Fatalf("clone live counts %d/%d, liveBlocks=%d", c1.Live(), c2.Live(), dst.LiveBlocks())
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatalf("destination invariants: %v", err)
	}

	// Committing the move trims the source tail, freeing both old slots.
	if err := m.Trim(8*BlockSize, 8*BlockSize); err != nil {
		t.Fatal(err)
	}
	if len(freed) != 2 || m.LiveBlocks() != 4 || m.Lookup(0) != head {
		t.Fatalf("after trim: freed=%d liveBlocks=%d", len(freed), m.LiveBlocks())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("source invariants: %v", err)
	}
}

// TestSplitTailRefusesStraddle checks the guard against an extent whose
// home range crosses the boundary.
func TestSplitTailRefusesStraddle(t *testing.T) {
	alloc := NewAllocator(1 << 20)
	m := NewMapping(16*BlockSize, alloc, nil)
	devOff, err := alloc.Alloc(4 * BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	e := &Extent{Offset: 6 * BlockSize, OrigLen: 4 * BlockSize, CompLen: 4 * BlockSize,
		SlotLen: 4 * BlockSize, DevOff: devOff}
	if err := m.Insert(e); err != nil {
		t.Fatal(err)
	}
	dst := NewMapping(8*BlockSize, NewAllocator(1<<20), nil)
	if _, err := m.SplitTail(8*BlockSize, dst, func(e *Extent) (*Extent, error) { return nil, nil }); err == nil {
		t.Fatal("SplitTail accepted a boundary inside an extent's home range")
	}
}

// newResplitServer builds a single-shard server with the given
// repartitioning policy (read verification off: resplit refuses it).
func newResplitServer(t *testing.T, rc ResplitConfig, vol int64) *Server {
	t.Helper()
	reg := defaultTestRegistry(t)
	sv, err := NewServer(ServeSetup{
		Shards:      1,
		VolumeBytes: vol,
		Backend: func(eng *sim.Engine) (Backend, error) {
			cfg := ssd.DefaultConfig()
			cfg.Blocks = 512
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			return NewSingleSSD(eng, d), nil
		},
		Options: func(int) (Options, error) {
			return Options{
				Registry: reg,
				Data:     datagen.New(datagen.Enterprise(), 11),
			}, nil
		},
		Resplit: rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

// TestResplitSplitsHotShard drives a sustained single-client load at an
// aggressively configured server and checks the shard map actually
// grows, every operation still completes (including reads spanning the
// new boundaries), and the merged statistics account for the splits and
// the final occupancy.
func TestResplitSplitsHotShard(t *testing.T) {
	const vol = 1 << 20 // 256 blocks
	rc := ResplitConfig{Enabled: true, MaxShards: 3, Factor: 1.0, WindowOps: 32, Streak: 1}
	sv := newResplitServer(t, rc, vol)
	ctx := context.Background()
	nblocks := int64(vol / BlockSize)
	for pass := 0; pass < 2; pass++ {
		for b := int64(0); b < nblocks; b++ {
			if _, err := sv.Write(ctx, b*BlockSize, BlockSize); err != nil {
				t.Fatalf("pass %d write block %d: %v", pass, b, err)
			}
		}
	}
	if got := sv.Shards(); got < 2 || got > rc.MaxShards {
		t.Fatalf("shards=%d after hot load, want in [2,%d]", got, rc.MaxShards)
	}
	// Reads across the whole volume exercise the re-routed boundaries,
	// including one request fanning out over every shard.
	for b := int64(0); b < nblocks; b++ {
		if lat, err := sv.Read(ctx, b*BlockSize, BlockSize); err != nil || lat <= 0 {
			t.Fatalf("read block %d: lat=%v err=%v", b, lat, err)
		}
	}
	if lat, err := sv.Read(ctx, 0, vol); err != nil || lat <= 0 {
		t.Fatalf("full-volume read: lat=%v err=%v", lat, err)
	}
	shards := sv.Shards()
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Resplits != int64(shards-1) {
		t.Fatalf("Resplits=%d, want %d (shards went 1 -> %d)", st.Resplits, shards-1, shards)
	}
	if len(st.ShardLiveBlocks) != shards {
		t.Fatalf("ShardLiveBlocks has %d entries, want %d", len(st.ShardLiveBlocks), shards)
	}
	var live int64
	for i, n := range st.ShardLiveBlocks {
		if n <= 0 {
			t.Fatalf("shard %d reports %d live blocks after a split", i, n)
		}
		live += n
	}
	if live != nblocks {
		t.Fatalf("total live blocks %d, want %d", live, nblocks)
	}
	// The full-volume read fans out into one sub-operation per shard,
	// and each shard counts its piece as a request.
	wantOps := 2*nblocks + nblocks + int64(shards)
	if st.Requests != wantOps {
		t.Fatalf("Requests=%d, want %d", st.Requests, wantOps)
	}
}

// TestResplitMaxShardsCap checks splitting stops at the configured cap
// even under a load that stays hot forever.
func TestResplitMaxShardsCap(t *testing.T) {
	rc := ResplitConfig{Enabled: true, MaxShards: 2, Factor: 1.0, WindowOps: 16, Streak: 1}
	sv := newResplitServer(t, rc, 1<<20)
	ctx := context.Background()
	for i := 0; i < 512; i++ {
		off := int64(i%256) * BlockSize
		if _, err := sv.Write(ctx, off, BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := sv.Shards(); got != 2 {
		t.Fatalf("shards=%d, want exactly MaxShards=2", got)
	}
	if _, err := sv.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestResplitConcurrentClients races submitters against splits (and the
// final Stop) and checks no operation is lost or double-counted.
func TestResplitConcurrentClients(t *testing.T) {
	rc := ResplitConfig{Enabled: true, MaxShards: 4, Factor: 1.0, WindowOps: 32, Streak: 1}
	sv := newResplitServer(t, rc, 1<<20)
	const clients, perClient = 4, 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				off := rng.Int63n(256) * BlockSize
				var err error
				if rng.Intn(2) == 0 {
					_, err = sv.Write(ctx, off, BlockSize)
				} else {
					_, err = sv.Read(ctx, off, BlockSize)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	st, err := sv.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st.Requests != clients*perClient {
		t.Fatalf("Requests=%d, want %d", st.Requests, clients*perClient)
	}
	if len(st.ShardLiveBlocks) != int(st.Resplits)+1 {
		t.Fatalf("ShardLiveBlocks=%d entries, Resplits=%d", len(st.ShardLiveBlocks), st.Resplits)
	}
}

// TestResplitRefusesIncompatibleOptions checks the three feature
// combinations resplit cannot support are refused at setup.
func TestResplitRefusesIncompatibleOptions(t *testing.T) {
	reg := defaultTestRegistry(t)
	build := func(mut func(*Options)) error {
		_, err := NewServer(ServeSetup{
			Shards:      1,
			VolumeBytes: 1 << 20,
			Backend: func(eng *sim.Engine) (Backend, error) {
				cfg := ssd.DefaultConfig()
				cfg.Blocks = 64
				d, err := ssd.New(cfg)
				if err != nil {
					return nil, err
				}
				return NewSingleSSD(eng, d), nil
			},
			Options: func(int) (Options, error) {
				o := Options{Registry: reg, Data: datagen.New(datagen.Enterprise(), 11)}
				mut(&o)
				return o, nil
			},
			Resplit: ResplitConfig{Enabled: true},
		})
		return err
	}
	if err := build(func(o *Options) { o.VerifyReads = true }); err == nil {
		t.Fatal("resplit + VerifyReads accepted")
	}
	if err := build(func(o *Options) {}); err != nil {
		t.Fatalf("resplit alone refused: %v", err)
	}
}
