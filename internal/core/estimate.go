package core

import (
	"math"
)

// Estimator predicts a block's compressibility from small samples without
// running a full compressor on the I/O path (the paper's "sampling
// technique", Sec. III-D, citing SDGen [14] and content-based sampling
// [37]). A block whose estimated ratio falls below the write-through
// threshold (4/3, i.e. compressed size above 75 % of the original,
// Sec. III-C) is stored uncompressed.
type Estimator struct {
	// SampleSize is the bytes inspected per sample window.
	SampleSize int
	// Samples is the number of windows spread evenly across the block.
	Samples int

	// Repeated-4-gram hash-set scratch, reused across calls with an
	// epoch tag so it never needs re-zeroing. An Estimator belongs to
	// one Device and is only used from its event-loop goroutine; the
	// estimate itself stays a pure function of the input.
	seen  [512]uint32
	epoch [512]uint32
	cur   uint32
}

// NewEstimator returns the default estimator: three 256-byte windows.
func NewEstimator() *Estimator {
	return &Estimator{SampleSize: 256, Samples: 3}
}

// WriteThroughRatio is the minimum estimated compression ratio at which
// compression is attempted; below it the block is written through. The
// paper stores blocks whose compressed form exceeds 75 % of the original
// uncompressed, hence 4/3.
const WriteThroughRatio = 4.0 / 3.0

// EstimateRatio predicts original/compressed for data. The prediction
// combines a byte-entropy bound with a repeated-4-gram heuristic that
// captures LZ-style matches entropy alone misses. It is intentionally
// cheap: O(Samples*SampleSize).
func (e *Estimator) EstimateRatio(data []byte) float64 {
	n := len(data)
	if n == 0 {
		return 1
	}
	ss := e.SampleSize
	if ss <= 0 {
		ss = 256
	}
	k := e.Samples
	if k <= 0 {
		k = 3
	}
	if ss*k >= n {
		return e.estimateWindow(data)
	}
	// Evenly spaced windows, including the block head (headers compress
	// differently from bodies).
	var sum float64
	stride := (n - ss) / k
	for i := 0; i < k; i++ {
		off := i * stride
		sum += e.estimateWindow(data[off : off+ss])
	}
	return sum / float64(k)
}

// estimateWindow predicts the ratio of one window.
func (e *Estimator) estimateWindow(w []byte) float64 {
	if len(w) == 0 {
		return 1
	}
	// Byte entropy in bits/byte.
	var counts [256]int
	for _, b := range w {
		counts[b]++
	}
	n := float64(len(w))
	entropy := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		entropy -= p * math.Log2(p)
	}
	// Repeated 4-gram fraction: how often a 4-byte window was seen
	// before (cheap LZ-match proxy) using a small hash set.
	matchFrac := 0.0
	if len(w) >= 8 {
		if e.cur == ^uint32(0) {
			// Epoch wrap: reset the tags so stale entries cannot alias.
			e.epoch = [512]uint32{}
			e.cur = 0
		}
		e.cur++
		matches := 0
		total := 0
		for i := 0; i+4 <= len(w); i++ {
			v := uint32(w[i]) | uint32(w[i+1])<<8 | uint32(w[i+2])<<16 | uint32(w[i+3])<<24
			h := (v * 2654435761) >> 23 // 9 bits
			if e.epoch[h] == e.cur && e.seen[h] == v && v != 0 {
				matches++
			}
			e.seen[h] = v
			e.epoch[h] = e.cur
			total++
		}
		matchFrac = float64(matches) / float64(total)
	}
	// Entropy bound: ratio_H = 8/H. LZ matches push the achievable ratio
	// above the order-0 bound; blend the two signals.
	ratioH := 8.0 / math.Max(entropy, 0.4)
	ratio := ratioH * (1 + 2.5*matchFrac)
	if ratio < 1 {
		ratio = 1
	}
	if ratio > 40 {
		ratio = 40
	}
	return ratio
}

// Compressible reports whether data clears the write-through threshold.
func (e *Estimator) Compressible(data []byte) bool {
	return e.EstimateRatio(data) >= WriteThroughRatio
}
