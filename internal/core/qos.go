package core

import (
	"time"

	"edc/internal/qos"
)

// qosState is the pipeline-side view of a qos.Config: per-tenant token
// buckets (built once from each tenant's bandwidth schedule) and, under
// isolation, per-tenant calculated-IOPS monitors. A nil *qosState is
// valid and free — every method no-ops to the untagged behaviour, so a
// device without QoS is bit-identical to a pre-QoS build.
//
// The state is single-goroutine like the rest of a device pipeline:
// each shard builds its own (buckets scaled by the shard count), and
// the event loop is the only caller.
type qosState struct {
	cfg *qos.Config

	// buckets holds one shaper per tenant with a bandwidth schedule
	// (absent tenants are unshaped). Built eagerly so arrival-path
	// lookups never allocate.
	buckets map[string]*qos.Bucket

	// meters holds per-tenant dual-window monitors when cfg.Isolate is
	// set: the policy then sees the submitting tenant's own intensity
	// instead of the device-global stream. Entries are created lazily
	// at first admission so only active tenants pay for a monitor.
	meters   map[string]WorkloadMeter
	newMeter func() WorkloadMeter
}

// newQoSState builds the pipeline state for cfg. share scales every
// bandwidth schedule down for sharded pipelines (each of n shards
// enforces rate/n); share <= 1 keeps the full rate. cfg must already
// be validated.
func newQoSState(cfg *qos.Config, share int, newMeter func() WorkloadMeter) (*qosState, error) {
	qs := &qosState{cfg: cfg, newMeter: newMeter}
	if cfg.Shaped() {
		qs.buckets = make(map[string]*qos.Bucket)
		for _, name := range cfg.Names() {
			b, err := cfg.Bucket(name, share)
			if err != nil {
				return nil, err
			}
			if b != nil {
				qs.buckets[name] = b
			}
		}
	}
	if cfg.Isolate {
		qs.meters = make(map[string]WorkloadMeter)
	}
	return qs, nil
}

// bucket returns the tenant's shaper, or nil when the tenant is
// unshaped (or QoS is off entirely).
func (qs *qosState) bucket(tenant string) *qos.Bucket {
	if qs == nil || tenant == "" {
		return nil
	}
	return qs.buckets[tenant]
}

// meter returns the tenant's private intensity monitor under isolation
// (allocating it on first use), or nil when the policy should keep the
// device-global signal.
func (qs *qosState) meter(tenant string) WorkloadMeter {
	if qs == nil || qs.meters == nil || tenant == "" {
		return nil
	}
	m, ok := qs.meters[tenant]
	if !ok {
		m = qs.newMeter()
		qs.meters[tenant] = m
	}
	return m
}

// class resolves the tenant's traffic class (standard when QoS is off
// or the tenant is unknown).
func (qs *qosState) class(tenant string) qos.Class {
	if qs == nil {
		return qos.ClassStandard
	}
	return qs.cfg.ClassOf(tenant)
}

// known reports whether the tenant may submit at all (always true
// without QoS or outside strict mode).
func (qs *qosState) known(tenant string) bool {
	if qs == nil {
		return true
	}
	return qs.cfg.Known(tenant)
}

// prioritized reports whether deferred admission should use the
// class-priority queues instead of the single FIFO.
func (qs *qosState) prioritized() bool {
	return qs != nil && qs.cfg.Prioritized()
}

// maxDeferred returns the tenant's deferred-queue bound (0 means
// unlimited).
func (qs *qosState) maxDeferred(tenant string) int {
	if qs == nil || tenant == "" {
		return 0
	}
	return qs.cfg.Tenants[tenant].MaxDeferred
}

// shape charges the tenant's bucket for one request of size bytes at
// virtual time now and returns the delay before it may be admitted
// (0: admit immediately). The bucket is charged exactly once per
// request — callers reschedule the arrival by the returned delay and
// must not charge again on re-arrival.
func (qs *qosState) shape(now time.Duration, tenant string, size int64) time.Duration {
	b := qs.bucket(tenant)
	if b == nil {
		return 0
	}
	return b.Take(now, size)
}

// admitOrder is the class pop order for the priority queues: latency
// preempts standard, bulk drains last.
var admitOrder = [...]qos.Class{qos.ClassLatency, qos.ClassStandard, qos.ClassBulk}
