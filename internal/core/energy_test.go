package core

import (
	"testing"
	"time"

	"edc/internal/ssd"
)

func TestEstimateEnergyComponents(t *testing.T) {
	m := DefaultEnergyModel()
	rs := newRunStats("x", "t", "b")
	rs.CPU.BusyTime = 2 * time.Second
	rs.Devices = []ssd.Stats{{
		HostPagesRead:     1000,
		FlashPagesWritten: 2000,
		GCPagesMoved:      500,
		Erases:            10,
	}}
	rs.StoredBytes = 8 << 20
	b := EstimateEnergy(rs, m)
	if b.CPUJ != 2*m.CPUActiveWatts {
		t.Fatalf("CPUJ = %v", b.CPUJ)
	}
	wantRead := float64(1500) * m.ReadPageUJ / 1e6
	if b.ReadJ != wantRead {
		t.Fatalf("ReadJ = %v; want %v", b.ReadJ, wantRead)
	}
	wantProg := float64(2000) * m.ProgramPageUJ / 1e6
	if b.ProgramJ != wantProg {
		t.Fatalf("ProgramJ = %v; want %v", b.ProgramJ, wantProg)
	}
	if b.EraseJ != 10*m.EraseBlockUJ/1e6 {
		t.Fatalf("EraseJ = %v", b.EraseJ)
	}
	if b.TransferJ <= 0 {
		t.Fatalf("TransferJ = %v", b.TransferJ)
	}
	total := b.CPUJ + b.ReadJ + b.ProgramJ + b.EraseJ + b.TransferJ
	if b.TotalJ() != total {
		t.Fatalf("TotalJ = %v; want %v", b.TotalJ(), total)
	}
}

func TestEnergyPerGB(t *testing.T) {
	m := DefaultEnergyModel()
	rs := newRunStats("x", "t", "b")
	if EnergyPerGB(rs, m) != 0 {
		t.Fatal("empty run should report 0 J/GB")
	}
	rs.OrigBytes = 1 << 30
	rs.CPU.BusyTime = time.Second
	if got := EnergyPerGB(rs, m); got != m.CPUActiveWatts {
		t.Fatalf("J/GB = %v; want %v", got, m.CPUActiveWatts)
	}
}

func TestEnergyCompressionTradeoffEndToEnd(t *testing.T) {
	// Lzf must spend more CPU joules but fewer flash joules than Native
	// on compressible data.
	reg := defaultTestRegistry(t)
	lzf, _ := reg.ByName("lzf")
	runOne := func(p Policy) *RunStats {
		rig := newTestRig(t, Options{Policy: p})
		st, err := rig.dev.Play(seqTrace(600, 300*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	nat := runOne(Native())
	comp := runOne(Fixed("Lzf", lzf))
	m := DefaultEnergyModel()
	bn := EstimateEnergy(nat, m)
	bc := EstimateEnergy(comp, m)
	if bc.CPUJ <= bn.CPUJ {
		t.Fatalf("compression CPU energy %v not above native %v", bc.CPUJ, bn.CPUJ)
	}
	if bc.ProgramJ >= bn.ProgramJ {
		t.Fatalf("compression program energy %v not below native %v", bc.ProgramJ, bn.ProgramJ)
	}
}
