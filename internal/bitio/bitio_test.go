package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTripSimple(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xff, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0x1234, 16)
	data := w.Bytes()

	r := NewReader(data)
	if v, err := r.ReadBits(3); err != nil || v != 0b101 {
		t.Fatalf("ReadBits(3) = %v, %v; want 0b101", v, err)
	}
	if v, err := r.ReadBits(8); err != nil || v != 0xff {
		t.Fatalf("ReadBits(8) = %v, %v; want 0xff", v, err)
	}
	if v, err := r.ReadBits(1); err != nil || v != 0 {
		t.Fatalf("ReadBits(1) = %v, %v; want 0", v, err)
	}
	if v, err := r.ReadBits(16); err != nil || v != 0x1234 {
		t.Fatalf("ReadBits(16) = %v, %v; want 0x1234", v, err)
	}
}

func TestWriterAlignPadsWithZeros(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 1)
	w.Align()
	w.WriteBits(0xab, 8)
	data := w.Bytes()
	if len(data) != 2 {
		t.Fatalf("len = %d; want 2", len(data))
	}
	if data[0] != 0x01 || data[1] != 0xab {
		t.Fatalf("data = %x; want 01ab", data)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v; want ErrUnexpectedEOF", err)
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b110101, 6)
	w.WriteBits(0x3c, 8)
	r := NewReader(w.Bytes())

	v, avail := r.Peek(6)
	if avail != 6 || v != 0b110101 {
		t.Fatalf("Peek = %b (avail %d); want 110101 (6)", v, avail)
	}
	r.Skip(6)
	got, err := r.ReadBits(8)
	if err != nil || got != 0x3c {
		t.Fatalf("after skip ReadBits(8) = %x, %v; want 3c", got, err)
	}
}

func TestPeekShortInput(t *testing.T) {
	r := NewReader([]byte{0b101})
	v, avail := r.Peek(16)
	if avail != 8 {
		t.Fatalf("avail = %d; want 8", avail)
	}
	if v != 0b101 {
		t.Fatalf("v = %b; want 101", v)
	}
}

func TestReaderAlign(t *testing.T) {
	r := NewReader([]byte{0xff, 0x5a})
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	v, err := r.ReadBits(8)
	if err != nil || v != 0x5a {
		t.Fatalf("ReadBits after Align = %x, %v; want 5a", v, err)
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d; want 13", w.BitLen())
	}
	r := NewReader(w.Bytes())
	if r.BitsRemaining() != 16 { // padded to 2 bytes
		t.Fatalf("BitsRemaining = %d; want 16", r.BitsRemaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.BitsRemaining() != 11 {
		t.Fatalf("BitsRemaining = %d; want 11", r.BitsRemaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xffff, 16)
	w.Reset()
	w.WriteBits(0x2, 2)
	data := w.Bytes()
	if len(data) != 1 || data[0] != 0x2 {
		t.Fatalf("after reset data = %x; want 02", data)
	}
}

// Property: any sequence of variable-width writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		widths := make([]uint, count)
		values := make([]uint64, count)
		w := NewWriter(64)
		for i := 0; i < count; i++ {
			widths[i] = uint(rng.Intn(57)) + 1
			values[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < count; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 13)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 100000; i++ {
		w.WriteBits(uint64(i), 13)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if r.BitsRemaining() < 13 {
			r = NewReader(data)
		}
		if _, err := r.ReadBits(13); err != nil {
			b.Fatal(err)
		}
	}
}
