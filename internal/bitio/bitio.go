// Package bitio provides LSB-first bit-level readers and writers used by
// the entropy coders in internal/compress.
//
// Bits are packed least-significant-bit first within each byte: the first
// bit written becomes bit 0 of the first output byte. This matches the
// packing order of DEFLATE and keeps the hot encode/decode loops branch
// friendly.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the input.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of input")

// Writer accumulates bits into an in-memory buffer.
//
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // bit accumulator, low bits first
	nAcc uint   // number of valid bits in acc
}

// NewWriter returns a Writer whose underlying buffer has the given
// capacity hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBits appends the low n bits of v, least significant bit first.
// n must be in [0, 57]; larger writes must be split by the caller.
// (57 = 64-7 keeps the accumulator from overflowing before a flush.)
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	w.acc |= (v & ((1 << n) - 1)) << w.nAcc
	w.nAcc += n
	for w.nAcc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nAcc -= 8
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteByte appends one full byte (aligned with the bit stream, i.e. it is
// equivalent to WriteBits(uint64(b), 8)).
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Align pads the stream with zero bits to the next byte boundary.
func (w *Writer) Align() {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nAcc = 0
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nAcc)
}

// Bytes flushes any partial byte (zero padded) and returns the buffer.
// The returned slice aliases the Writer's internal storage.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reset truncates the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nAcc = 0
}

// ResetBuf re-points the writer at buf: subsequent writes append after
// buf's existing contents, reusing its spare capacity. It lets callers
// run the bit stream over a caller-managed (e.g. pooled) buffer with a
// zero-value Writer, avoiding both the Writer and the buffer allocation:
//
//	var w bitio.Writer
//	w.ResetBuf(dst)
//	... writes ...
//	dst = w.Bytes()
func (w *Writer) ResetBuf(buf []byte) {
	w.buf = buf
	w.acc = 0
	w.nAcc = 0
}

// Reader consumes bits from a byte slice, LSB first.
type Reader struct {
	data []byte
	pos  int    // next byte to load
	acc  uint64 // bit accumulator
	nAcc uint   // valid bits in acc
}

// NewReader returns a Reader over data. The reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-points the reader at data, discarding any buffered bits. It
// lets callers run the bit stream through a stack- or pool-resident
// zero-value Reader, avoiding the NewReader allocation on hot decode
// paths:
//
//	var r bitio.Reader
//	r.Reset(src)
//	... reads ...
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.acc = 0
	r.nAcc = 0
}

// fill loads bytes into the accumulator until it holds at least n bits or
// input is exhausted.
func (r *Reader) fill(n uint) {
	for r.nAcc < n && r.pos < len(r.data) {
		r.acc |= uint64(r.data[r.pos]) << r.nAcc
		r.pos++
		r.nAcc += 8
	}
}

// ReadBits reads n bits (n <= 57) and returns them in the low bits of the
// result. It returns ErrUnexpectedEOF if fewer than n bits remain.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	r.fill(n)
	if r.nAcc < n {
		return 0, ErrUnexpectedEOF
	}
	v := r.acc & ((1 << n) - 1)
	r.acc >>= n
	r.nAcc -= n
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Peek returns up to n bits (n <= 57) without consuming them. If fewer
// than n bits remain the missing high bits are zero; ok reports how many
// bits are actually available.
func (r *Reader) Peek(n uint) (v uint64, avail uint) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: Peek n=%d out of range", n))
	}
	r.fill(n)
	avail = r.nAcc
	if avail > n {
		avail = n
	}
	return r.acc & ((1 << n) - 1), avail
}

// Skip consumes n bits that were previously Peeked. n must not exceed the
// number of buffered bits.
func (r *Reader) Skip(n uint) {
	if n > r.nAcc {
		panic("bitio: Skip past buffered bits")
	}
	r.acc >>= n
	r.nAcc -= n
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	drop := r.nAcc % 8
	r.acc >>= drop
	r.nAcc -= drop
}

// ReadByte reads one byte from the bit stream.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// BitsRemaining reports how many unread bits remain (including buffered
// accumulator bits).
func (r *Reader) BitsRemaining() int {
	return (len(r.data)-r.pos)*8 + int(r.nAcc)
}
