package rais

import (
	"testing"

	"edc/internal/ssd"
)

func makeDevs(t testing.TB, n int) []*ssd.SSD {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 256
	devs := make([]*ssd.SSD, n)
	for i := range devs {
		d, err := ssd.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return devs
}

func TestNewValidation(t *testing.T) {
	devs := makeDevs(t, 5)
	if _, err := New(RAIS5, devs[:2], 16); err == nil {
		t.Fatal("RAIS5 with 2 devices should fail")
	}
	if _, err := New(RAIS0, devs[:1], 16); err == nil {
		t.Fatal("RAIS0 with 1 device should fail")
	}
	if _, err := New(RAIS0, devs, 0); err == nil {
		t.Fatal("zero stripe unit should fail")
	}
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 128
	odd, _ := ssd.New(cfg)
	if _, err := New(RAIS0, append(devs[:2:2], odd), 16); err == nil {
		t.Fatal("mismatched capacities should fail")
	}
}

func TestCapacity(t *testing.T) {
	devs := makeDevs(t, 5)
	a0, err := New(RAIS0, devs, 16)
	if err != nil {
		t.Fatal(err)
	}
	a5devs := makeDevs(t, 5)
	a5, err := New(RAIS5, a5devs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a0.LogicalPages() <= a5.LogicalPages() {
		t.Fatalf("RAIS0 capacity %d should exceed RAIS5 %d", a0.LogicalPages(), a5.LogicalPages())
	}
	// RAIS5 over 5 devices stores 4/5 of RAIS0 capacity.
	want := a0.LogicalPages() * 4 / 5
	if a5.LogicalPages() != want {
		t.Fatalf("RAIS5 pages = %d; want %d", a5.LogicalPages(), want)
	}
}

func TestRAIS0MappingDistributesAcrossDevices(t *testing.T) {
	devs := makeDevs(t, 4)
	a, _ := New(RAIS0, devs, 4)
	// Read spanning 4 stripe units must touch all 4 devices.
	ops, err := a.MapRead(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var bytes int64
	for _, op := range ops {
		if op.Write || op.Parity {
			t.Fatalf("read mapped to write/parity op: %+v", op)
		}
		seen[op.Dev] = true
		bytes += op.Bytes
	}
	if len(seen) != 4 {
		t.Fatalf("devices touched = %d; want 4", len(seen))
	}
	if bytes != 16*4096 {
		t.Fatalf("total bytes = %d", bytes)
	}
}

func TestRAIS0RoundRobin(t *testing.T) {
	devs := makeDevs(t, 4)
	a, _ := New(RAIS0, devs, 4)
	// Unit i lives on device i%4.
	for unit := 0; unit < 8; unit++ {
		ops, err := a.MapRead(int64(unit)*4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) != 1 {
			t.Fatalf("unit %d: ops = %+v", unit, ops)
		}
		if ops[0].Dev != unit%4 {
			t.Fatalf("unit %d on dev %d; want %d", unit, ops[0].Dev, unit%4)
		}
	}
}

func TestRAIS5ParityRotates(t *testing.T) {
	devs := makeDevs(t, 5)
	a, _ := New(RAIS5, devs, 4)
	parityDevs := map[int]bool{}
	stripeData := int64(4 * 4) // unit * dataPerStripe
	for s := int64(0); s < 5; s++ {
		pd, _ := a.parityFor(s * stripeData)
		parityDevs[pd] = true
	}
	if len(parityDevs) != 5 {
		t.Fatalf("parity used %d distinct devices over 5 stripes; want 5", len(parityDevs))
	}
}

func TestRAIS5DataNeverOnParityDevice(t *testing.T) {
	devs := makeDevs(t, 5)
	a, _ := New(RAIS5, devs, 4)
	for lpn := int64(0); lpn < 500; lpn++ {
		dev, _ := a.locate(lpn)
		pdev, _ := a.parityFor(lpn)
		if dev == pdev {
			t.Fatalf("lpn %d: data and parity on device %d", lpn, dev)
		}
	}
}

func TestRAIS5PartialWriteDoesRMW(t *testing.T) {
	devs := makeDevs(t, 5)
	a, _ := New(RAIS5, devs, 4)
	// Write 1 page: expect data write, old-data read, old-parity read,
	// parity write.
	ops, err := a.MapWrite(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var dataWrites, parityWrites, parityReads int
	for _, op := range ops {
		switch {
		case op.Write && !op.Parity:
			dataWrites++
		case op.Write && op.Parity:
			parityWrites++
		case !op.Write && op.Parity:
			parityReads++
		default:
			t.Fatalf("unexpected plain read in write mapping: %+v", op)
		}
	}
	if dataWrites != 1 || parityWrites != 1 || parityReads != 2 {
		t.Fatalf("ops = %+v (data %d, pw %d, pr %d)", ops, dataWrites, parityWrites, parityReads)
	}
}

func TestRAIS5FullStripeWriteSkipsRMW(t *testing.T) {
	devs := makeDevs(t, 5)
	a, _ := New(RAIS5, devs, 4)
	stripeData := int64(4 * 4)
	ops, err := a.MapWrite(0, stripeData)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if !op.Write {
			t.Fatalf("full-stripe write produced a read: %+v", op)
		}
	}
	// 4 data units + 1 parity unit.
	if len(ops) != 5 {
		t.Fatalf("ops = %d; want 5", len(ops))
	}
}

func TestRAIS0WriteNoParity(t *testing.T) {
	devs := makeDevs(t, 4)
	a, _ := New(RAIS0, devs, 4)
	ops, err := a.MapWrite(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Parity {
			t.Fatalf("RAIS0 produced parity op: %+v", op)
		}
		if !op.Write {
			t.Fatalf("RAIS0 write produced read: %+v", op)
		}
	}
}

func TestMapRangeErrors(t *testing.T) {
	devs := makeDevs(t, 4)
	a, _ := New(RAIS0, devs, 4)
	if _, err := a.MapRead(-1, 4); err == nil {
		t.Fatal("negative lpn should fail")
	}
	if _, err := a.MapWrite(a.LogicalPages(), 1); err == nil {
		t.Fatal("write past capacity should fail")
	}
}

func TestCoalesceMergesAdjacent(t *testing.T) {
	devs := makeDevs(t, 4)
	a, _ := New(RAIS0, devs, 4)
	// A read within one unit arrives as one op even if assembled from
	// page-sized pieces.
	ops, err := a.MapRead(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("ops = %+v; want single coalesced op", ops)
	}
	if ops[0].Bytes != 4*4096 {
		t.Fatalf("bytes = %d", ops[0].Bytes)
	}
}

func TestLevelString(t *testing.T) {
	if RAIS0.String() != "RAIS0" || RAIS5.String() != "RAIS5" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level should still print")
	}
}
