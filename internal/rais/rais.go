// Package rais implements Redundant Arrays of Independent SSDs (the
// paper's RAIS, Sec. IV): RAIS0 striping and RAIS5 rotating-parity over N
// simulated devices. The array maps an array-logical request to per-
// device sub-operations; the replay engine issues sub-operations to the
// member devices' stations in parallel, so array response time is the
// maximum of the member completions — exactly how the paper's software
// RAIS5 of five X25-E drives behaves.
package rais

import (
	"errors"
	"fmt"

	"edc/internal/ssd"
)

// Level selects the array organization.
type Level int

// Supported array levels.
const (
	RAIS0 Level = iota // striping, no redundancy
	RAIS5              // striping with rotating parity
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case RAIS0:
		return "RAIS0"
	case RAIS5:
		return "RAIS5"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// SubOp is one device-level operation produced by mapping an array
// request.
type SubOp struct {
	Dev   int   // member device index
	LPN   int64 // device-logical page number
	Bytes int64
	Write bool
	// Parity marks parity maintenance traffic (reads of old data/parity
	// and parity writes) as opposed to host data movement.
	Parity bool
}

// Array is a RAIS0/RAIS5 group of simulated SSDs.
type Array struct {
	level Level
	devs  []*ssd.SSD
	// unit is the stripe unit ("chunk") size in pages.
	unit int64
	// dataPerStripe = number of data units per stripe.
	dataPerStripe int64
	// devLogical = logical pages per member device.
	devLogical int64
}

// New builds an array over devs with the given stripe unit in pages.
// RAIS5 requires at least 3 devices; RAIS0 at least 2.
func New(level Level, devs []*ssd.SSD, unitPages int) (*Array, error) {
	if unitPages <= 0 {
		return nil, errors.New("rais: unitPages must be positive")
	}
	minDevs := 2
	if level == RAIS5 {
		minDevs = 3
	}
	if len(devs) < minDevs {
		return nil, fmt.Errorf("rais: %s needs >= %d devices, have %d", level, minDevs, len(devs))
	}
	devLogical := devs[0].LogicalPages()
	for _, d := range devs[1:] {
		if d.LogicalPages() != devLogical {
			return nil, errors.New("rais: member devices must have identical capacity")
		}
	}
	a := &Array{level: level, devs: devs, unit: int64(unitPages), devLogical: devLogical}
	switch level {
	case RAIS0:
		a.dataPerStripe = int64(len(devs))
	case RAIS5:
		a.dataPerStripe = int64(len(devs) - 1)
	default:
		return nil, fmt.Errorf("rais: unsupported level %v", level)
	}
	return a, nil
}

// Level returns the array level.
func (a *Array) Level() Level { return a.level }

// Devices returns the member devices.
func (a *Array) Devices() []*ssd.SSD { return a.devs }

// LogicalPages returns the host-visible array capacity in pages.
func (a *Array) LogicalPages() int64 {
	stripes := a.devLogical / a.unit
	return stripes * a.unit * a.dataPerStripe
}

// PageSize returns the member device page size in bytes.
func (a *Array) PageSize() int { return a.devs[0].Config().PageSize }

// LogicalBytes returns the host-visible array capacity in bytes.
func (a *Array) LogicalBytes() int64 {
	return a.LogicalPages() * int64(a.PageSize())
}

// locate maps an array-logical page to (device, device page, stripe).
func (a *Array) locate(lpn int64) (dev int, devPage int64) {
	unitIdx := lpn / a.unit // which stripe unit in array order
	inUnit := lpn % a.unit  // page within the unit
	stripe := unitIdx / a.dataPerStripe
	dataPos := unitIdx % a.dataPerStripe
	devPage = stripe*a.unit + inUnit
	switch a.level {
	case RAIS0:
		dev = int(dataPos)
	case RAIS5:
		// Left-symmetric rotation: parity device for stripe s is
		// (n-1 - s mod n); data units fill the remaining devices in order.
		n := int64(len(a.devs))
		parityDev := n - 1 - stripe%n
		d := dataPos
		if d >= parityDev {
			d++
		}
		dev = int(d)
	}
	return dev, devPage
}

// parityFor returns the parity device and device page for the stripe that
// contains array-logical page lpn (RAIS5 only).
func (a *Array) parityFor(lpn int64) (dev int, devPage int64) {
	unitIdx := lpn / a.unit
	stripe := unitIdx / a.dataPerStripe
	n := int64(len(a.devs))
	parityDev := n - 1 - stripe%n
	return int(parityDev), stripe*a.unit + lpn%a.unit
}

// MapRead splits a read of n pages at array page lpn into sub-ops.
func (a *Array) MapRead(lpn, pages int64) ([]SubOp, error) {
	if err := a.checkRange(lpn, pages); err != nil {
		return nil, err
	}
	ps := int64(a.PageSize())
	var out []SubOp
	for p := lpn; p < lpn+pages; {
		dev, dp := a.locate(p)
		// Extend through contiguous pages in the same unit.
		run := a.unit - p%a.unit
		if run > lpn+pages-p {
			run = lpn + pages - p
		}
		out = append(out, SubOp{Dev: dev, LPN: dp, Bytes: run * ps})
		p += run
	}
	return a.coalesce(out), nil
}

// MapWrite splits a write of n pages at array page lpn into sub-ops,
// adding RAIS5 parity maintenance: full-stripe writes compute parity in
// memory and write it; partial-stripe writes perform read-modify-write
// (read old data + old parity, then write data + parity).
func (a *Array) MapWrite(lpn, pages int64) ([]SubOp, error) {
	if err := a.checkRange(lpn, pages); err != nil {
		return nil, err
	}
	ps := int64(a.PageSize())
	var out []SubOp
	stripeData := a.unit * a.dataPerStripe // data pages per stripe
	for p := lpn; p < lpn+pages; {
		stripeStart := p / stripeData * stripeData
		stripeEnd := stripeStart + stripeData
		end := lpn + pages
		if end > stripeEnd {
			end = stripeEnd
		}
		span := end - p
		// Data writes for this stripe.
		for q := p; q < end; {
			dev, dp := a.locate(q)
			run := a.unit - q%a.unit
			if run > end-q {
				run = end - q
			}
			out = append(out, SubOp{Dev: dev, LPN: dp, Bytes: run * ps, Write: true})
			q += run
		}
		if a.level == RAIS5 {
			pdev, pp := a.parityFor(p)
			full := span == stripeData
			if !full {
				// Read-modify-write: old data spans + old parity.
				for q := p; q < end; {
					dev, dp := a.locate(q)
					run := a.unit - q%a.unit
					if run > end-q {
						run = end - q
					}
					out = append(out, SubOp{Dev: dev, LPN: dp, Bytes: run * ps, Parity: true})
					q += run
				}
				out = append(out, SubOp{Dev: pdev, LPN: pp, Bytes: minI64(span, a.unit) * ps, Parity: true})
			}
			out = append(out, SubOp{Dev: pdev, LPN: pp, Bytes: minI64(span, a.unit) * ps, Write: true, Parity: true})
		}
		p = end
	}
	return a.coalesce(out), nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (a *Array) checkRange(lpn, pages int64) error {
	if lpn < 0 || pages < 0 || lpn+pages > a.LogicalPages() {
		return fmt.Errorf("rais: range [%d,+%d) beyond %d pages", lpn, pages, a.LogicalPages())
	}
	return nil
}

// coalesce merges sub-ops that are device-contiguous and of the same kind
// into single larger transfers.
func (a *Array) coalesce(ops []SubOp) []SubOp {
	if len(ops) < 2 {
		return ops
	}
	ps := int64(a.PageSize())
	out := ops[:1]
	for _, op := range ops[1:] {
		last := &out[len(out)-1]
		if last.Dev == op.Dev && last.Write == op.Write && last.Parity == op.Parity &&
			op.LPN == last.LPN+last.Bytes/ps {
			last.Bytes += op.Bytes
			continue
		}
		out = append(out, op)
	}
	return out
}
