package fault

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestInjectorDeterminism(t *testing.T) {
	p := &Plan{Seed: 42, ReadTransient: 0.1, ReadHard: 0.02,
		WriteTransient: 0.05, WriteHard: 0.01, SpikeRate: 0.2, SpikeLatency: time.Millisecond}
	a, b := p.Injector(3), p.Injector(3)
	for i := 0; i < 10000; i++ {
		now := time.Duration(i) * time.Microsecond
		oa := a.Op(now, i%2 == 0, int64(i))
		ob := b.Op(now, i%2 == 0, int64(i))
		if oa.Extra != ob.Extra {
			t.Fatalf("op %d: extra %v != %v", i, oa.Extra, ob.Extra)
		}
		if (oa.Err == nil) != (ob.Err == nil) {
			t.Fatalf("op %d: error mismatch", i)
		}
		if oa.Err != nil && *oa.Err != *ob.Err {
			t.Fatalf("op %d: %v != %v", i, oa.Err, ob.Err)
		}
	}
}

func TestInjectorDevicesDecorrelated(t *testing.T) {
	p := &Plan{Seed: 7, ReadTransient: 0.5}
	a, b := p.Injector(0), p.Injector(1)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		oa := a.Op(0, false, 0)
		ob := b.Op(0, false, 0)
		if (oa.Err == nil) == (ob.Err == nil) {
			same++
		}
	}
	if same == n {
		t.Fatal("device streams identical; expected decorrelated decisions")
	}
}

func TestInjectorRates(t *testing.T) {
	p := &Plan{Seed: 1, WriteTransient: 0.2, WriteHard: 0.05}
	in := p.Injector(0)
	const n = 200000
	var transient, hard int
	for i := 0; i < n; i++ {
		out := in.Op(0, true, 0)
		if out.Err == nil {
			continue
		}
		if out.Err.Transient {
			transient++
		} else {
			hard++
		}
	}
	if got := float64(transient) / n; math.Abs(got-0.2) > 0.01 {
		t.Errorf("transient rate %.4f, want ~0.2", got)
	}
	if got := float64(hard) / n; math.Abs(got-0.05) > 0.005 {
		t.Errorf("hard rate %.4f, want ~0.05", got)
	}
}

func TestErrorClasses(t *testing.T) {
	te := &Error{Op: "read", Dev: 2, LBA: 99, Transient: true}
	he := &Error{Op: "write", Dev: 0, LBA: 1}
	if !errors.Is(te, ErrTransient) || errors.Is(te, ErrHard) {
		t.Errorf("transient error classifies wrong: %v", te)
	}
	if !errors.Is(he, ErrHard) || errors.Is(he, ErrTransient) {
		t.Errorf("hard error classifies wrong: %v", he)
	}
	var fe *Error
	if !errors.As(error(te), &fe) || fe.Dev != 2 || fe.LBA != 99 {
		t.Errorf("errors.As lost fields: %+v", fe)
	}
}

func TestStallWindow(t *testing.T) {
	p := &Plan{Stalls: []Stall{{Dev: 1, At: 100 * time.Millisecond, For: 50 * time.Millisecond}}}
	in := p.Injector(1)
	if out := in.Op(99*time.Millisecond, false, 0); out.Extra != 0 {
		t.Errorf("before window: extra %v", out.Extra)
	}
	if out := in.Op(120*time.Millisecond, false, 0); out.Extra != 30*time.Millisecond {
		t.Errorf("inside window: extra %v, want 30ms", out.Extra)
	}
	if out := in.Op(150*time.Millisecond, false, 0); out.Extra != 0 {
		t.Errorf("after window: extra %v", out.Extra)
	}
	other := p.Injector(0)
	if out := other.Op(120*time.Millisecond, false, 0); out.Extra != 0 {
		t.Errorf("other device stalled: extra %v", out.Extra)
	}
}

func TestValidate(t *testing.T) {
	good := []*Plan{
		nil,
		{},
		{Seed: 9, ReadTransient: 0.5, ReadHard: 0.5},
		{SpikeRate: 0.1, SpikeLatency: time.Millisecond},
		{PowerCutAt: time.Second},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d: unexpected error %v", i, err)
		}
	}
	bad := []*Plan{
		{ReadTransient: -0.1},
		{WriteHard: 1.5},
		{ReadTransient: 0.7, ReadHard: 0.7},
		{SpikeRate: 0.1},
		{Stalls: []Stall{{Dev: -1, For: time.Second}}},
		{Stalls: []Stall{{Dev: 0, At: 0, For: 0}}},
		{PowerCutAt: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d: validated", i)
		}
	}
}

func TestActive(t *testing.T) {
	if (&Plan{}).Active() {
		t.Error("zero plan active")
	}
	if (&Plan{PowerCutAt: time.Second}).Active() {
		t.Error("power-cut-only plan should not need injectors")
	}
	if !(&Plan{ReadHard: 0.01}).Active() {
		t.Error("error plan inactive")
	}
	if !(&Plan{Stalls: []Stall{{For: time.Second}}}).Active() {
		t.Error("stall plan inactive")
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan active")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(`{"seed":7,"read_transient":0.01,"write_hard":0.002,
		"spike_rate":0.05,"spike_latency":"2ms",
		"stalls":[{"dev":1,"at":"100ms","for":"20ms"}],
		"power_cut_at":"1.5s"}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.ReadTransient != 0.01 || p.WriteHard != 0.002 {
		t.Errorf("probabilities lost: %+v", p)
	}
	if p.SpikeLatency != 2*time.Millisecond || p.PowerCutAt != 1500*time.Millisecond {
		t.Errorf("durations lost: %+v", p)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (Stall{Dev: 1, At: 100 * time.Millisecond, For: 20 * time.Millisecond}) {
		t.Errorf("stalls lost: %+v", p.Stalls)
	}
	// Numeric durations are nanoseconds.
	p2, err := ParsePlan(`{"spike_rate":0.1,"spike_latency":1000000}`)
	if err != nil {
		t.Fatal(err)
	}
	if p2.SpikeLatency != time.Millisecond {
		t.Errorf("numeric duration: %v", p2.SpikeLatency)
	}
	if _, err := ParsePlan(`{"read_transient":2}`); err == nil {
		t.Error("invalid plan parsed")
	}
	if _, err := ParsePlan(`{"spike_latency":"xyz"}`); err == nil {
		t.Error("bad duration parsed")
	}
}
