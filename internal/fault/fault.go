// Package fault is the deterministic fault-injection layer of the EDC
// simulator: a seeded, virtual-time fault Plan that every storage
// backend consults on every device operation.
//
// The paper assumes a well-behaved flash device; a production EDC does
// not get one. This package lets a replay inject the failure modes a
// deployed system must survive — transient and hard read/write errors,
// latency spikes, whole-device stall windows, and a power cut at a
// chosen virtual time — while keeping the two properties the repository
// is built on:
//
//   - Determinism: every decision is a pure function of the plan seed,
//     the device index, and the (deterministic) order of operations on
//     that device's event loop. Two replays of the same trace under the
//     same plan produce byte-identical results, including under LBA
//     sharding.
//   - Zero cost when disabled: with no plan attached, no injector
//     exists and the pipeline is bit-identical to an un-instrumented
//     build.
//
// The recovery behaviours the plan exercises (bounded retry with
// virtual-time backoff, RAIS5 degraded reads, write re-allocation, and
// journal-based crash recovery) live in internal/core; this package
// only decides *what goes wrong, and when*.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Sentinel error classes, matched through errors.Is on a *Error.
var (
	// ErrTransient classifies an injected error that a bounded retry may
	// clear (the device succeeded on a later attempt).
	ErrTransient = errors.New("fault: transient device error")
	// ErrHard classifies an injected error that no retry clears (failed
	// media: the slot or device stays bad for the whole replay).
	ErrHard = errors.New("fault: hard device error")
)

// Error is one injected device-operation failure. It satisfies
// errors.As, and errors.Is against ErrTransient / ErrHard.
type Error struct {
	// Op is the failed operation: "read" or "write".
	Op string
	// Dev is the member-device index (0 on single-device backends).
	Dev int
	// LBA is the device logical page the operation addressed.
	LBA int64
	// Transient distinguishes retryable faults from hard media errors.
	Transient bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	kind := "hard"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: %s %s error on dev %d lba %d", kind, e.Op, e.Dev, e.LBA)
}

// AsError converts e to the error interface, mapping a nil *Error to a
// nil error — callers threading a possibly-nil fault through a done
// callback avoid the typed-nil interface pitfall.
func (e *Error) AsError() error {
	if e == nil {
		return nil
	}
	return e
}

// Unwrap maps the fault to its sentinel class for errors.Is.
func (e *Error) Unwrap() error {
	if e.Transient {
		return ErrTransient
	}
	return ErrHard
}

// Stall is a whole-device outage window: every operation issued to Dev
// during [At, At+For) is delayed until the window closes (no error is
// reported — the device just stops answering).
type Stall struct {
	// Dev is the member-device index the stall applies to.
	Dev int `json:"dev"`
	// At is the virtual time the device stops answering.
	At time.Duration `json:"at"`
	// For is how long the outage lasts.
	For time.Duration `json:"for"`
}

// Plan is a seeded, virtual-time fault schedule. The zero value injects
// nothing. Probabilities are per operation; each device operation rolls
// independently against them in a fixed order (latency spike first,
// then error class), so the decision stream for a device is a pure
// function of (Seed, device index, operation order).
type Plan struct {
	// Seed selects the deterministic decision stream. Two replays with
	// equal seeds see identical faults.
	Seed int64 `json:"seed"`

	// ReadTransient / ReadHard are per-read error probabilities in
	// [0, 1]; their sum must not exceed 1.
	ReadTransient float64 `json:"read_transient,omitempty"`
	ReadHard      float64 `json:"read_hard,omitempty"`
	// WriteTransient / WriteHard are the write-side equivalents.
	WriteTransient float64 `json:"write_transient,omitempty"`
	WriteHard      float64 `json:"write_hard,omitempty"`

	// SpikeRate is the per-operation probability of a latency spike of
	// SpikeLatency added device-side service time.
	SpikeRate    float64       `json:"spike_rate,omitempty"`
	SpikeLatency time.Duration `json:"spike_latency,omitempty"`

	// Stalls lists whole-device outage windows.
	Stalls []Stall `json:"stalls,omitempty"`

	// PowerCutAt, when positive, cuts power to the whole system at that
	// virtual time: the replay stops mid-flight and must recover from
	// the last mapping snapshot plus the journal before resuming.
	PowerCutAt time.Duration `json:"power_cut_at,omitempty"`
}

// Validate checks the plan's internal consistency.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"read_transient", p.ReadTransient},
		{"read_hard", p.ReadHard},
		{"write_transient", p.WriteTransient},
		{"write_hard", p.WriteHard},
		{"spike_rate", p.SpikeRate},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s=%g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.ReadTransient+p.ReadHard > 1 {
		return fmt.Errorf("fault: read error probabilities sum to %g > 1", p.ReadTransient+p.ReadHard)
	}
	if p.WriteTransient+p.WriteHard > 1 {
		return fmt.Errorf("fault: write error probabilities sum to %g > 1", p.WriteTransient+p.WriteHard)
	}
	if p.SpikeRate > 0 && p.SpikeLatency <= 0 {
		return fmt.Errorf("fault: spike_rate=%g needs a positive spike_latency", p.SpikeRate)
	}
	if p.SpikeLatency < 0 {
		return errors.New("fault: spike_latency must be >= 0")
	}
	for i, s := range p.Stalls {
		if s.Dev < 0 || s.At < 0 || s.For <= 0 {
			return fmt.Errorf("fault: stall %d invalid (dev=%d at=%v for=%v)", i, s.Dev, s.At, s.For)
		}
	}
	if p.PowerCutAt < 0 {
		return errors.New("fault: power_cut_at must be >= 0")
	}
	return nil
}

// Active reports whether the plan can affect device operations (the
// power cut alone does not need per-operation injectors).
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.ReadTransient > 0 || p.ReadHard > 0 ||
		p.WriteTransient > 0 || p.WriteHard > 0 ||
		p.SpikeRate > 0 || len(p.Stalls) > 0
}

// Outcome is one per-operation decision: an optional injected error and
// extra device-side latency (spike and/or stall-window remainder).
type Outcome struct {
	// Err is the injected failure, nil on success.
	Err *Error
	// Extra is added device service time.
	Extra time.Duration
}

// Injector is the per-device decision stream of a Plan. One injector
// serves exactly one member device and must only be used from that
// device's event-loop goroutine (backends submit operations in
// deterministic order, which is what makes the stream reproducible).
type Injector struct {
	plan  *Plan
	dev   int
	state uint64
}

// Injector returns the decision stream for member device dev.
func (p *Plan) Injector(dev int) *Injector {
	// Seed the per-device stream by folding the device index into the
	// plan seed through one splitmix64 step, so member devices of an
	// array see decorrelated streams from one plan seed.
	s := mix(uint64(p.Seed) + 0x9e3779b97f4a7c15*uint64(dev+1))
	return &Injector{plan: p, dev: dev, state: s}
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns the next uniform float64 in [0, 1).
func (in *Injector) roll() float64 {
	in.state += 0x9e3779b97f4a7c15
	return float64(mix(in.state)>>11) / (1 << 53)
}

// Op decides the fate of one device operation issued at virtual time
// now: write selects the write-side probabilities, lba is recorded in
// any injected error. Every call consumes exactly two rolls (spike,
// error) so the stream advances identically whatever the outcome.
func (in *Injector) Op(now time.Duration, write bool, lba int64) Outcome {
	var out Outcome
	if in.roll() < in.plan.SpikeRate {
		out.Extra += in.plan.SpikeLatency
	}
	hard, transient := in.plan.ReadHard, in.plan.ReadTransient
	op := "read"
	if write {
		hard, transient = in.plan.WriteHard, in.plan.WriteTransient
		op = "write"
	}
	r := in.roll()
	switch {
	case r < hard:
		out.Err = &Error{Op: op, Dev: in.dev, LBA: lba, Transient: false}
	case r < hard+transient:
		out.Err = &Error{Op: op, Dev: in.dev, LBA: lba, Transient: true}
	}
	// Stall windows are schedule-driven, not random: an operation issued
	// inside a window waits out its remainder.
	for _, s := range in.plan.Stalls {
		if s.Dev == in.dev && now >= s.At && now < s.At+s.For {
			out.Extra += s.At + s.For - now
		}
	}
	return out
}

// durationJSON parses a JSON duration that is either a number
// (nanoseconds) or a Go duration string ("150ms").
func durationJSON(raw json.RawMessage) (time.Duration, error) {
	if len(raw) == 0 {
		return 0, nil
	}
	var n int64
	if err := json.Unmarshal(raw, &n); err == nil {
		return time.Duration(n), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, fmt.Errorf("fault: duration %s: want number or string", raw)
	}
	return time.ParseDuration(s)
}

// UnmarshalJSON accepts durations either as nanosecond numbers or as Go
// duration strings ("250ms"), so hand-written plans stay readable.
func (p *Plan) UnmarshalJSON(data []byte) error {
	type stallAux struct {
		Dev int             `json:"dev"`
		At  json.RawMessage `json:"at"`
		For json.RawMessage `json:"for"`
	}
	var aux struct {
		Seed           int64           `json:"seed"`
		ReadTransient  float64         `json:"read_transient"`
		ReadHard       float64         `json:"read_hard"`
		WriteTransient float64         `json:"write_transient"`
		WriteHard      float64         `json:"write_hard"`
		SpikeRate      float64         `json:"spike_rate"`
		SpikeLatency   json.RawMessage `json:"spike_latency"`
		Stalls         []stallAux      `json:"stalls"`
		PowerCutAt     json.RawMessage `json:"power_cut_at"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*p = Plan{
		Seed:           aux.Seed,
		ReadTransient:  aux.ReadTransient,
		ReadHard:       aux.ReadHard,
		WriteTransient: aux.WriteTransient,
		WriteHard:      aux.WriteHard,
		SpikeRate:      aux.SpikeRate,
	}
	var err error
	if p.SpikeLatency, err = durationJSON(aux.SpikeLatency); err != nil {
		return err
	}
	if p.PowerCutAt, err = durationJSON(aux.PowerCutAt); err != nil {
		return err
	}
	for _, s := range aux.Stalls {
		at, err := durationJSON(s.At)
		if err != nil {
			return err
		}
		dur, err := durationJSON(s.For)
		if err != nil {
			return err
		}
		p.Stalls = append(p.Stalls, Stall{Dev: s.Dev, At: at, For: dur})
	}
	return nil
}

// ParsePlan decodes a JSON plan (the edcbench -faults argument) and
// validates it.
func ParsePlan(s string) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
