package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edc"
	"edc/internal/metrics"
	"edc/internal/parallel"
	"edc/internal/workload"
)

// ServeParams sizes one open-loop serve run: Clients goroutines each
// drive a seeded workload.Stream against a live System, so the offered
// rate is the spec's QPS regardless of how fast the simulated device
// completes work. Params supplies the shared knobs (volume, seed,
// shards, workers, faults); Requests is ignored — the spec's durations
// bound the run.
type ServeParams struct {
	Params
	// Spec is the multi-step open-loop workload to offer.
	Spec workload.Spec
	// Clients is the number of submitting goroutines (default 8).
	Clients int
	// Scheme is the compression scheme (default EDC).
	Scheme string
	// Mailbox and Batch bound the per-shard submission queues
	// (0: the core defaults).
	Mailbox int
	Batch   int
	// QoS overrides the QoS configuration attached to the System. Nil
	// derives one from the spec's class/bw annotations
	// (workload.Spec.QoSConfig); specs without annotations attach none.
	QoS *edc.QoSConfig
	// NoQoS suppresses even the spec-derived QoS config: operations
	// still carry their tenant tags (so per-tenant accounting works)
	// but no shaping, isolation, or priority applies — the
	// interference baseline the qos experiment compares against.
	NoQoS bool
}

func (p ServeParams) clients() int {
	if p.Clients <= 0 {
		return 8
	}
	return p.Clients
}

func (p ServeParams) scheme() string {
	if p.Scheme == "" {
		return string(edc.SchemeEDC)
	}
	return p.Scheme
}

// StepStats reports one spec step's open-loop outcome: offered vs
// achieved throughput plus the virtual-latency distribution. Achieved
// QPS is ops divided by the virtual span from the step's start to its
// last completion — under overload it falls below OfferedQPS while the
// percentiles grow with queueing delay, the open-loop saturation
// signature.
type StepStats struct {
	// Index is the zero-based step number.
	Index int `json:"index"`
	// Step echoes the generating spec step.
	Step workload.Step `json:"step"`
	// Ops, Reads, and Writes count completed operations.
	Ops    int64 `json:"ops"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// OfferedQPS is the spec's configured arrival rate.
	OfferedQPS float64 `json:"offered_qps"`
	// AchievedQPS is completions per second of virtual time.
	AchievedQPS float64 `json:"achieved_qps"`
	// Mean, P50, P99, and P999 summarize open-loop virtual latency.
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
}

// ServeResult is one serve run's full outcome: per-step open-loop
// stats, the merged pipeline Results, and the wall-clock throughput of
// the harness itself (the core-scaling metric — virtual-time results
// are scheduling-independent, wall time is what extra cores buy).
type ServeResult struct {
	// Clients and Shards echo the run shape.
	Clients int `json:"clients"`
	Shards  int `json:"shards"`
	// SpecText is the spec rendered one step per line.
	SpecText string `json:"spec"`
	// Steps holds one entry per spec step.
	Steps []StepStats `json:"steps"`
	// Stalls counts submissions that blocked on a full mailbox.
	Stalls int64 `json:"stalls"`
	// Rejected counts operations refused admission by per-tenant queue
	// bounds (zero, and omitted, without QoS).
	Rejected int64 `json:"rejected,omitempty"`
	// WallTime is the harness wall-clock duration (generation through
	// StopServe); OpsPerSecWall is total completions divided by it.
	WallTime      time.Duration `json:"wall_ns"`
	OpsPerSecWall float64       `json:"ops_per_sec_wall"`
	// Pool is the shared work-stealing codec pool's activity during the
	// run (nil when the run never touched the pool — replay workers <= 1
	// keep codec work inline on the event loops).
	Pool *PoolActivity `json:"pool,omitempty"`
	// Result is the merged pipeline Results, as a replay would return.
	Result *edc.Results `json:"result"`
}

// PoolActivity is the delta of the process-wide work-stealing codec
// pool's counters over one serve run: how much codec work the shard
// queues offered, how much of it was executed by a worker that stole it
// from another shard's queue, and how much ran inline on a submitting
// event loop because its queue was full (backpressure). The counters
// are process-global, so concurrent runs would blend — the bench
// harness runs one at a time.
type PoolActivity struct {
	// Workers is the pool's worker count (GOMAXPROCS at first use).
	Workers int `json:"workers"`
	// Submitted counts jobs queued to shard codec queues.
	Submitted int64 `json:"submitted"`
	// Stolen counts jobs executed by a worker scanning past its
	// preferred queue — cross-shard work movement.
	Stolen int64 `json:"stolen"`
	// Inline counts jobs the submitter ran itself on a full queue.
	Inline int64 `json:"inline"`
}

// stepAccum accumulates one step's completions across all clients.
type stepAccum struct {
	lat     *metrics.StripedLatency
	ops     atomic.Int64
	reads   atomic.Int64
	writes  atomic.Int64
	lastEnd atomic.Int64 // max virtual completion (ns), CAS-maxed
}

// noteEnd CAS-maxes the step's last virtual completion stamp.
func (a *stepAccum) noteEnd(ns int64) {
	for {
		cur := a.lastEnd.Load()
		if ns <= cur || a.lastEnd.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// RunServe builds a System from p, switches it into serve mode (paced:
// see edc.WithPacedServe), and drives it with p.Clients() open-loop
// generator goroutines until the spec is exhausted. Virtual-time
// results (counts, latencies, achieved QPS) are deterministic for a
// fixed (spec, seed, clients, shards) — the corescale gate asserts
// they are byte-identical across GOMAXPROCS; WallTime and Stalls vary
// with the machine.
func RunServe(p ServeParams) (*ServeResult, error) {
	vol := p.volume()
	if err := p.Spec.Validate(vol); err != nil {
		return nil, err
	}
	clients := p.clients()
	opts := []edc.Option{
		edc.WithScheme(edc.Scheme(p.scheme())),
		edc.WithSSDConfig(singleSSDConfig()),
		edc.WithServeQueue(p.Mailbox, p.Batch),
		// The sequencer below submits in global stamp order and awaits
		// concurrently — exactly the contract pacing requires — so the
		// virtual-time results become a pure function of (spec, seed,
		// clients, shards), independent of GOMAXPROCS and mailbox races.
		edc.WithPacedServe(),
	}
	if p.Workers != 0 {
		opts = append(opts, edc.WithReplayWorkers(p.Workers))
	}
	if p.Shards > 1 {
		opts = append(opts, edc.WithShards(p.Shards))
	}
	if p.Faults != nil {
		opts = append(opts, edc.WithFaults(p.Faults))
	}
	if p.Maint {
		opts = append(opts, edc.WithMaintenance(edc.Maintenance{}))
	}
	if p.Dedup {
		opts = append(opts, edc.WithDedup(edc.Dedup{}))
	}
	qcfg := p.QoS
	if qcfg == nil && !p.NoQoS {
		qcfg = p.Spec.QoSConfig()
	}
	if qcfg != nil {
		opts = append(opts, edc.WithQoS(*qcfg))
	}
	// The dup knob is spec-global (Validate enforces it): the -dup-ratio
	// flag wins, otherwise the spec's first step supplies it.
	dup, uni := p.DupRatio, p.DupUniverse
	if dup == 0 {
		dup, uni = p.Spec[0].Dup, p.Spec[0].DupUniverse
	}
	if dup > 0 {
		opts = append(opts, edc.WithDataProfile(
			edc.DataProfiles()["enterprise"].WithDup(dup, uni), 1))
	}
	sys, err := edc.NewSystem(vol, opts...)
	if err != nil {
		return nil, err
	}
	if err := sys.Serve(); err != nil {
		return nil, err
	}

	accums := make([]*stepAccum, len(p.Spec))
	for i := range accums {
		accums[i] = &stepAccum{lat: metrics.NewStripedLatency(clients)}
	}

	poolBefore := parallel.Shared().Stats()
	start := time.Now()
	ctx := context.Background()

	// Each client goroutine generates its seeded stream into a bounded
	// channel; the sequencer merges the streams by arrival stamp and
	// submits in global stamp order (so no shard's virtual clock ever
	// runs ahead of an arrival still to come — the latency clamp then
	// measures genuine queueing, not cross-client submission skew).
	// Completions are awaited concurrently: submission never blocks on
	// earlier operations finishing, which keeps the load open-loop.
	//
	// A multi-tenant spec splits into per-tenant sub-specs (each
	// tenant's timeline starting at t=0, so tenants run concurrently)
	// and every tenant gets its own set of client streams with a
	// tenant-offset seed; a single-tenant or untagged spec reduces to
	// exactly the pre-tenant feed layout and seeds.
	type workerOp struct {
		op workload.Op
		ok bool
	}
	parts := p.Spec.ByTenant()
	var (
		feeds   []chan workerOp
		feedIdx [][]int // per feed: sub-spec step -> original spec index
		feedCli []int   // per feed: client number within its tenant
	)
	for ti, part := range parts {
		for w := 0; w < clients; w++ {
			stream, err := workload.NewStream(part.Steps, vol, 2000+p.Seed+7919*int64(ti), w, clients)
			if err != nil {
				sys.StopServe()
				return nil, err
			}
			ch := make(chan workerOp, 64)
			feeds = append(feeds, ch)
			feedIdx = append(feedIdx, part.Index)
			feedCli = append(feedCli, w)
			go func(stream *workload.Stream, ch chan workerOp) {
				for {
					op, ok := stream.Next()
					ch <- workerOp{op, ok}
					if !ok {
						return
					}
				}
			}(stream, ch)
		}
	}
	heads := make([]workerOp, len(feeds))
	for w, ch := range feeds {
		heads[w] = <-ch
	}
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Mutex
		runErr   error
		rejected atomic.Int64
	)
	fail := func(err error) {
		errOnce.Lock()
		if runErr == nil {
			runErr = err
		}
		errOnce.Unlock()
		failed.Store(true)
	}
	for !failed.Load() {
		// Pop the earliest unsubmitted arrival (ties to the lowest worker,
		// keeping the merge deterministic for a fixed seed).
		w := -1
		for i, h := range heads {
			if h.ok && (w < 0 || h.op.At < heads[w].op.At) {
				w = i
			}
		}
		if w < 0 {
			break
		}
		op := heads[w].op
		heads[w] = <-feeds[w]
		cli, gi := feedCli[w], feedIdx[w][op.Step]
		await, err := sys.SubmitAtTag(ctx, op.At, op.Off, op.Size, op.Write, op.Tenant)
		if err != nil {
			fail(fmt.Errorf("client %d: %w", cli, err))
			break
		}
		wg.Add(1)
		go func(cli, gi int, op workload.Op, await edc.Await) {
			defer wg.Done()
			lat, err := await(ctx)
			if err != nil {
				// A per-tenant queue bound refusing one operation is the
				// shaper doing its job, not a harness failure.
				if errors.Is(err, edc.ErrAdmissionRejected) {
					rejected.Add(1)
					return
				}
				fail(fmt.Errorf("client %d: %w", cli, err))
				return
			}
			a := accums[gi]
			a.lat.Observe(cli, lat)
			a.ops.Add(1)
			if op.Write {
				a.writes.Add(1)
			} else {
				a.reads.Add(1)
			}
			a.noteEnd(int64(op.At + lat))
		}(cli, gi, op, await)
	}
	for w, h := range heads {
		// Drain abandoned generators so their goroutines exit.
		for h.ok {
			h = <-feeds[w]
		}
	}
	// Stop before waiting on the awaits: a shaped operation whose
	// bandwidth deadline lies past the last real arrival parks in its
	// shard until the stop-drain runs the engine dry, so waiting first
	// would deadlock.
	stalls := sys.ServeStalls()
	res, err := sys.StopServe()
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	poolAfter := parallel.Shared().Stats()

	shards := p.Shards
	if shards < 1 {
		shards = 1
	}
	var pool *PoolActivity
	if poolAfter.Submitted+poolAfter.Inline > poolBefore.Submitted+poolBefore.Inline {
		pool = &PoolActivity{
			Workers:   poolAfter.Workers,
			Submitted: poolAfter.Submitted - poolBefore.Submitted,
			Stolen:    poolAfter.Stolen - poolBefore.Stolen,
			Inline:    poolAfter.Inline - poolBefore.Inline,
		}
	}
	out := &ServeResult{
		Clients:  clients,
		Shards:   shards,
		SpecText: FormatSpec(p.Spec),
		Stalls:   stalls,
		Pool:     pool,
		Rejected: rejected.Load(),
		WallTime: wall,
		Result:   res,
	}
	// Each step's virtual start is its offset within its own tenant's
	// timeline (tenants run concurrently, each from t=0); for a
	// single-tenant spec this is the plain running sum of durations.
	bases := make([]time.Duration, len(p.Spec))
	for _, part := range parts {
		var b time.Duration
		for k, gi := range part.Index {
			bases[gi] = b
			b += part.Steps[k].D
		}
	}
	var total int64
	for i, st := range p.Spec {
		a := accums[i]
		h := a.lat.Merge()
		ss := StepStats{
			Index:      i,
			Step:       st,
			Ops:        a.ops.Load(),
			Reads:      a.reads.Load(),
			Writes:     a.writes.Load(),
			OfferedQPS: st.QPS,
			Mean:       h.Mean(),
			P50:        h.Percentile(50),
			P99:        h.Percentile(99),
			P999:       h.Percentile(99.9),
		}
		if span := time.Duration(a.lastEnd.Load()) - bases[i]; span > 0 && ss.Ops > 0 {
			ss.AchievedQPS = float64(ss.Ops) / span.Seconds()
		}
		total += ss.Ops
		out.Steps = append(out.Steps, ss)
	}
	if wall > 0 {
		out.OpsPerSecWall = float64(total) / wall.Seconds()
	}
	return out, nil
}

// FormatSpec renders a Spec back into the DSL, one step per line.
// Tenant annotations only appear on tagged steps, so an untagged spec
// renders exactly as it did before multi-tenant QoS existed.
func FormatSpec(s workload.Spec) string {
	var b []byte
	for i, st := range s {
		if i > 0 {
			b = append(b, '\n')
		}
		b = fmt.Appendf(b, "d=%v rw=%g qps=%g ad=%s rkd=%s wkd=%s bs=%d",
			st.D, st.RW, st.QPS, st.AD, st.RKD, st.WKD, st.BS)
		if st.Tenant != "" {
			b = fmt.Appendf(b, " tenant=%s", st.Tenant)
			if st.Class != "" {
				b = fmt.Appendf(b, " class=%s", st.Class)
			}
			if st.BW != "" {
				b = fmt.Appendf(b, " bw=%s", strings.ReplaceAll(st.BW, " ", "+"))
			}
		}
	}
	return string(b)
}

// ServeTable renders a ServeResult as the standard table shape so the
// CLI shares the text/CSV/JSON writers with the experiment suite. A
// tenant column appears only when the spec names two or more distinct
// tenants, so single-tenant and untagged runs render exactly the
// pre-QoS table.
func ServeTable(sr *ServeResult) *Table {
	tenants := map[string]bool{}
	for _, ss := range sr.Steps {
		tenants[ss.Step.Tenant] = true
	}
	multi := len(tenants) > 1
	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("open-loop serve: %d clients, %d shard(s), scheme %s",
			sr.Clients, sr.Shards, sr.Result.Scheme),
		Header: []string{"step", "dur", "offered qps", "achieved qps", "ops", "read%", "mean", "p50", "p99", "p999"},
	}
	if multi {
		t.Header = append([]string{"step", "tenant"}, t.Header[1:]...)
	}
	for _, ss := range sr.Steps {
		readPct := 0.0
		if ss.Ops > 0 {
			readPct = 100 * float64(ss.Reads) / float64(ss.Ops)
		}
		row := []string{fmt.Sprintf("%d", ss.Index+1)}
		if multi {
			name := ss.Step.Tenant
			if name == "" {
				name = "-"
			}
			row = append(row, name)
		}
		row = append(row,
			ss.Step.D.String(),
			f1(ss.OfferedQPS),
			f1(ss.AchievedQPS),
			fmt.Sprintf("%d", ss.Ops),
			f1(readPct),
			ss.Mean.Round(time.Microsecond).String(),
			ss.P50.Round(time.Microsecond).String(),
			ss.P99.Round(time.Microsecond).String(),
			ss.P999.Round(time.Microsecond).String(),
		)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("wall %v, %s ops/sec wall, %d submit stall(s); latency is open-loop virtual time",
			sr.WallTime.Round(time.Millisecond), f1(sr.OpsPerSecWall), sr.Stalls))
	if sr.Rejected > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d operation(s) refused admission by per-tenant queue bounds", sr.Rejected))
	}
	return t
}
