package bench

import (
	"fmt"
	"time"

	"edc"
)

func init() {
	register("ablation-sd", "EDC with/without the sequentiality detector", runAblationSD)
	register("ablation-sampling", "EDC with/without the compressibility estimator", runAblationSampling)
	register("ablation-slots", "Quantized vs exact-fit slot allocation", runAblationSlots)
}

// runAblationSD quantifies the SD module's contribution (Sec. III-E) on
// Prxy_0: almost write-only, so sequential runs survive long enough to
// merge (reads break runs, Fig. 7). The fixed Lzf scheme is used so
// every run is actually compressed (EDC's intensity ladder would write
// the heaviest bursts through and mask the merge effect).
func runAblationSD(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Prxy_0"].GenerateN(p.requests(), 1002+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-sd",
		Title:  "Sequentiality detector ablation (Prxy_0, single SSD, fixed Gzip)",
		Header: []string{"variant", "runs", "merged writes", "ratio", "mean resp ms", "flash pages written"},
	}
	for _, variant := range []struct {
		name string
		opts []edc.Option
	}{
		{"with SD", nil},
		{"without SD", []edc.Option{edc.WithoutSD()}},
	} {
		res, err := replayScheme(p, edc.SingleSSD, tr, edc.SchemeGzip, variant.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%d", res.SDRuns),
			fmt.Sprintf("%d", res.SDMerged),
			f2(res.TrafficRatio()),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			fmt.Sprintf("%d", res.TotalFlashWrites()),
		})
	}
	t.Notes = append(t.Notes, "Merging improves ratio and cuts flash pages (fewer per-run slot roundings and table overheads) at the cost of buffering delay; the ratio gain depends on the codec window (lzf's 8 KiB window gains little, gz's 32 KiB window more).")
	return []*Table{t}, nil
}

// runAblationSampling quantifies write-through on incompressible data:
// an EDC without the estimator compresses media-class data anyway.
func runAblationSampling(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Prxy_0"].GenerateN(p.requests(), 1003+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-sampling",
		Title:  "Compressibility estimator ablation (Prxy_0 on a media-class volume, EDC)",
		Header: []string{"variant", "write-through runs", "oversize runs", "ratio", "mean resp ms", "CPU busy ms"},
	}
	media := edc.DataProfiles()["media"]
	for _, variant := range []struct {
		name string
		opts []edc.Option
	}{
		{"with estimator", []edc.Option{edc.WithDataProfile(media, 6+p.Seed)}},
		{"without estimator", []edc.Option{edc.WithDataProfile(media, 6+p.Seed), edc.WithoutEstimator()}},
	} {
		res, err := replayScheme(p, edc.SingleSSD, tr, edc.SchemeEDC, variant.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%d", res.WriteThrough),
			fmt.Sprintf("%d", res.Oversize),
			f2(res.TrafficRatio()),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f1(float64(res.CPU.BusyTime) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes, "Without sampling, CPU is burned compressing incompressible blocks for no space gain (the paper's motivation for write-through).")
	return []*Table{t}, nil
}

// runAblationSlots compares the paper's 25/50/75/100% quantized slots
// with exact-fit allocation.
func runAblationSlots(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Fin1"].GenerateN(p.requests(), 1004+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-slots",
		Title:  "Slot quantization ablation (Fin1, single SSD, EDC)",
		Header: []string{"variant", "stored MiB", "ratio", "peak slot MiB", "free-list size classes", "mean resp ms"},
	}
	for _, variant := range []struct {
		name string
		opts []edc.Option
	}{
		{"quantized 25/50/75/100%", nil},
		{"exact-fit slots", []edc.Option{edc.WithExactSlots()}},
	} {
		res, err := replayScheme(p, edc.SingleSSD, tr, edc.SchemeEDC, variant.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.name,
			f1(float64(res.StoredBytes) / (1 << 20)),
			f2(res.TrafficRatio()),
			f1(float64(res.PeakSlotBytes) / (1 << 20)),
			fmt.Sprintf("%d", res.AllocClasses),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes, "Exact-fit stores slightly less but explodes the number of distinct slot sizes — the fragmentation the paper's quantization avoids (Sec. III-C).")
	return []*Table{t}, nil
}
