package bench

import (
	"fmt"
	"math/rand"
	"time"

	"edc/internal/compress"
	"edc/internal/core"
	"edc/internal/datagen"
	"edc/internal/metrics"
	"edc/internal/ssd"
	"edc/internal/workload"
)

func init() {
	register("fig1", "SSD response time vs request size (Fig. 1)", runFig1)
	register("fig2", "Codec compression efficiency (Fig. 2)", runFig2)
	register("fig3", "Workload burstiness/idleness (Fig. 3)", runFig3)
}

// runFig1 reproduces the IOmeter microbenchmark: mean device service
// time for random accesses of increasing size, normalized to 4 KiB.
// The paper observes an approximately linear correlation.
func runFig1(p Params) ([]*Table, error) {
	dev, err := ssd.New(ssd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7 + p.Seed))
	sizes := []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	const n = 2000
	type row struct {
		size      int64
		read, wrt time.Duration
	}
	var rows []row
	for _, size := range sizes {
		var rsum, wsum time.Duration
		pages := (size + 4095) / 4096
		for i := 0; i < n; i++ {
			lpn := rng.Int63n(dev.LogicalPages() - pages)
			rt, err := dev.ReadTime(lpn, size)
			if err != nil {
				return nil, err
			}
			wt, err := dev.WriteTime(lpn, size)
			if err != nil {
				return nil, err
			}
			rsum += rt
			wsum += wt
		}
		rows = append(rows, row{size, rsum / n, wsum / n})
	}
	t := &Table{
		ID:     "fig1",
		Title:  "Response time vs request size on the simulated SSD (normalized to 4 KiB)",
		Header: []string{"size KiB", "read us", "write us", "read norm", "write norm"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.size>>10),
			fmt.Sprintf("%d", r.read.Microseconds()),
			fmt.Sprintf("%d", r.wrt.Microseconds()),
			f2(float64(r.read) / float64(rows[0].read)),
			f2(float64(r.wrt) / float64(rows[0].wrt)),
		})
	}
	// Linearity check for the notes: compare 256K/4K against 64.
	t.Notes = append(t.Notes, fmt.Sprintf(
		"linearity: 256K/4K read ratio = %.1f (ideal 64.0 for a fully size-proportional device)",
		float64(rows[len(rows)-1].read)/float64(rows[0].read)))
	return []*Table{t}, nil
}

// runFig2 measures every codec on the paper's two datasets: compression
// ratio plus real (wall-clock) and modeled compress/decompress speeds.
func runFig2(p Params) ([]*Table, error) {
	reg := compress.Default()
	cost := core.DefaultCostModel()
	datasets := []datagen.Profile{datagen.LinuxSrc(), datagen.FirefoxBin()}
	codecNames := []string{"lzf", "lz4", "gz", "bwz"}
	const total = 16 << 20
	const chunk = 128 << 10
	t := &Table{
		ID:     "fig2",
		Title:  "Compression efficiency per codec and dataset (ratio, measured MB/s, modeled MB/s)",
		Header: []string{"dataset", "codec", "ratio", "C MB/s", "D MB/s", "model C", "model D"},
	}
	for _, ds := range datasets {
		gen := datagen.New(ds, 21+p.Seed)
		data := gen.Block(0, total, 0)
		for _, name := range codecNames {
			c, err := reg.ByName(name)
			if err != nil {
				return nil, err
			}
			var compBytes int64
			start := time.Now()
			comps := make([][]byte, 0, total/chunk)
			for off := 0; off < total; off += chunk {
				out := c.Compress(data[off : off+chunk])
				compBytes += int64(len(out))
				comps = append(comps, out)
			}
			compDur := time.Since(start)
			start = time.Now()
			for _, blob := range comps {
				if _, err := c.Decompress(blob, chunk); err != nil {
					return nil, err
				}
			}
			decompDur := time.Since(start)
			mbps := func(d time.Duration) float64 {
				if d <= 0 {
					return 0
				}
				return float64(total) / d.Seconds() / 1e6
			}
			cc := cost[c.Tag()]
			t.Rows = append(t.Rows, []string{
				ds.Name, name,
				f2(compress.Ratio(total, int(compBytes))),
				f1(mbps(compDur)), f1(mbps(decompDur)),
				f1(cc.CompressBps / 1e6), f1(cc.DecompressBps / 1e6),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Expected ordering (paper Fig. 2): ratio bwz>gz>lzf~lz4; speed lz4>=lzf>>gz>>bwz; decompression faster than compression.")
	return []*Table{t}, nil
}

// runFig3 renders the 1-second IOPS series of the OLTP (Fin1) and
// enterprise (Usr_0) profiles: the burst/idle alternation EDC exploits.
func runFig3(p Params) ([]*Table, error) {
	profiles := []workload.Profile{
		workload.Fin1(p.volume()),
		workload.Usr0(p.volume()),
	}
	const window = 3 * time.Minute
	series := make([]*metrics.TimeSeries, len(profiles))
	stats := &Table{
		ID:     "fig3",
		Title:  "Burstiness and idleness of the access patterns (1 s bins over 3 min)",
		Header: []string{"workload", "mean IOPS", "peak IOPS", "peak/mean", "idle bins %", "<25% bins %"},
	}
	for i, prof := range profiles {
		tr, err := prof.Generate(window, 300+int64(i)+p.Seed)
		if err != nil {
			return nil, err
		}
		ts := metrics.NewTimeSeries(time.Second)
		for _, r := range tr.Requests {
			ts.Add(r.Arrival, 1)
		}
		series[i] = ts
		mean, peak, idle := ts.Stats()
		low := 0
		pts := ts.Dense()
		for _, pt := range pts {
			if pt.V < mean/4 {
				low++
			}
		}
		stats.Rows = append(stats.Rows, []string{
			prof.Name, f1(mean), f1(peak), f1(peak / mean),
			f1(idle * 100), f1(float64(low) / float64(len(pts)) * 100),
		})
	}
	spark := &Table{
		ID:     "fig3-series",
		Title:  "IOPS per second (first 100 s; # = 100 IOPS, + = partial)",
		Header: []string{"t", profiles[0].Name, profiles[1].Name},
	}
	for sec := 0; sec < 100; sec++ {
		row := []string{fmt.Sprintf("%3ds", sec)}
		for _, ts := range series {
			v := 0.0
			for _, pt := range ts.Dense() {
				if int(pt.T/time.Second) == sec {
					v = pt.V
					break
				}
			}
			bar := ""
			for k := 0.0; k+100 <= v; k += 100 {
				bar += "#"
			}
			if int(v)%100 >= 50 {
				bar += "+"
			}
			row = append(row, fmt.Sprintf("%4d %s", int(v), bar))
		}
		spark.Rows = append(spark.Rows, row)
	}
	return []*Table{stats, spark}, nil
}
