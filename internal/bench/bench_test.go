package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps test replays fast.
var tiny = Params{Requests: 800, VolumeMiB: 128}

func TestExperimentsRegistered(t *testing.T) {
	ids := Experiments()
	want := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"ablation-sd", "ablation-sampling", "ablation-slots",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	desc := Describe()
	for _, id := range ids {
		if desc[id] == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a    bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTab1(t *testing.T) {
	tables, err := Run("tab1", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) < 5 {
		t.Fatalf("tab1 = %+v", tables)
	}
}

func TestTab2ColumnsPlausible(t *testing.T) {
	tables, err := Run("tab2", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("tab2 rows = %d", len(rows))
	}
	readPct := map[string]float64{"Fin1": 23, "Fin2": 82, "Usr_0": 60, "Prxy_0": 3}
	for _, row := range rows {
		want := readPct[row[0]]
		got, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got < want-6 || got > want+6 {
			t.Errorf("%s read%% = %v; want ~%v", row[0], got, want)
		}
	}
}

func TestFig1Linear(t *testing.T) {
	tables, err := Run("fig1", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Normalized read latency should grow with size, roughly linearly.
	prev := 0.0
	for i, row := range rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("row %d: normalized latency %v not increasing", i, v)
		}
		prev = v
	}
	last, _ := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	sizeKiB, _ := strconv.ParseFloat(rows[len(rows)-1][0], 64)
	lin := last / (sizeKiB / 4)
	if lin < 0.7 || lin > 1.3 {
		t.Fatalf("linearity = %v; want ~1", lin)
	}
}

func TestFig2Ordering(t *testing.T) {
	tables, err := Run("fig2", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows // 4 codecs x 2 datasets; first 4 are linux-src
	ratio := func(i int) float64 {
		v, err := strconv.ParseFloat(rows[i][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// rows: lzf, lz4, gz, bwz
	if !(ratio(3) > ratio(2) && ratio(2) > ratio(0) && ratio(0) > 1) {
		t.Fatalf("linux-src ratio ordering violated: lzf=%v gz=%v bwz=%v", ratio(0), ratio(2), ratio(3))
	}
}

func TestFig3Bursty(t *testing.T) {
	tables, err := Run("fig3", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig3 tables = %d", len(tables))
	}
	pm, err := strconv.ParseFloat(tables[0].Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if pm < 2 {
		t.Fatalf("Fin1 peak/mean = %v; want bursty", pm)
	}
}

// evalValue reads scheme x trace-average from an eval figure.
func evalValue(t *testing.T, tab *Table, scheme string) float64 {
	t.Helper()
	for _, row := range tab.Rows {
		if row[0] == scheme {
			v, err := strconv.ParseFloat(row[len(row)-1], 64)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("scheme %s missing", scheme)
	return 0
}

func TestFig8Fig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full eval sweep")
	}
	t8, err := Run("fig8", tiny)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := Run("fig10", tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio: Bzip2 > Gzip > Lzf > 1; EDC above 1.
	if !(evalValue(t, t8[0], "Bzip2") > evalValue(t, t8[0], "Gzip") &&
		evalValue(t, t8[0], "Gzip") > evalValue(t, t8[0], "Lzf") &&
		evalValue(t, t8[0], "Lzf") > 1 && evalValue(t, t8[0], "EDC") > 1) {
		t.Fatalf("fig8 ordering violated: %+v", t8[0].Rows)
	}
	// Response: Bzip2 worst; EDC best among compression schemes.
	if !(evalValue(t, t10[0], "Bzip2") > evalValue(t, t10[0], "Gzip") &&
		evalValue(t, t10[0], "EDC") < evalValue(t, t10[0], "Gzip") &&
		evalValue(t, t10[0], "EDC") <= evalValue(t, t10[0], "Lzf")*1.05) {
		t.Fatalf("fig10 ordering violated: %+v", t10[0].Rows)
	}
}

func TestFig12Monotonicity(t *testing.T) {
	tables, err := Run("fig12", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	firstRatio, _ := strconv.ParseFloat(rows[0][2], 64)
	lastRatio, _ := strconv.ParseFloat(rows[len(rows)-1][2], 64)
	if lastRatio <= firstRatio {
		t.Fatalf("ratio did not grow with gz share: %v -> %v", firstRatio, lastRatio)
	}
	firstShare, _ := strconv.ParseFloat(rows[0][1], 64)
	lastShare, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if lastShare <= firstShare {
		t.Fatalf("gz share did not grow: %v -> %v", firstShare, lastShare)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation replays")
	}
	for _, id := range []string{"ablation-sd", "ablation-sampling", "ablation-slots"} {
		tables, err := Run(id, tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables[0].Rows) != 2 {
			t.Fatalf("%s: rows = %d", id, len(tables[0].Rows))
		}
	}
}

func TestAblationSDImprovesRatio(t *testing.T) {
	tables, err := Run("ablation-sd", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	with, _ := strconv.ParseFloat(rows[0][3], 64)
	without, _ := strconv.ParseFloat(rows[1][3], 64)
	if with < without {
		t.Fatalf("SD should not hurt ratio: with=%v without=%v", with, without)
	}
}

func TestWriteTablesFormats(t *testing.T) {
	tables := []*Table{{
		ID: "x", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}}
	var buf bytes.Buffer
	if err := WriteTables(&buf, tables, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,b\n1,2") {
		t.Fatalf("csv output wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteTables(&buf, tables, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ID": "x"`) {
		t.Fatalf("json output wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteTables(&buf, tables, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== x: demo ==") {
		t.Fatalf("table output wrong:\n%s", buf.String())
	}
	if err := WriteTables(&buf, tables, "xml"); err == nil {
		t.Fatal("unknown format should fail")
	}
}

func TestExtensionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extension replays")
	}
	wantRows := map[string]int{
		"ext-hints":     2,
		"ext-endurance": 5,
		"ext-energy":    5,
		"ext-hdd":       5,
		"ext-multicore": 4,
		"ext-offload":   4,
		"ext-cache":     4,
		"ext-tail":      5,
	}
	for id, rows := range wantRows {
		tables, err := Run(id, tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) != rows {
			t.Fatalf("%s: rows = %d; want %d", id, len(tables[0].Rows), rows)
		}
	}
}

func TestExtOffloadFreesHostCPU(t *testing.T) {
	tables, err := Run("ext-offload", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	// Row 1 = Lzf host-side, row 2 = Lzf in-FTL; CPU column is last.
	host, _ := strconv.ParseFloat(rows[1][4], 64)
	ftl, _ := strconv.ParseFloat(rows[2][4], 64)
	if ftl >= host/2 {
		t.Fatalf("offload CPU %v not far below host %v", ftl, host)
	}
}

func TestExtCacheMonotone(t *testing.T) {
	tables, err := Run("ext-cache", tiny)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	first, _ := strconv.ParseFloat(rows[0][1], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if last <= first {
		t.Fatalf("hit rate did not grow with cache size: %v -> %v", first, last)
	}
}
