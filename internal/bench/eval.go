package bench

import (
	"fmt"
	"sync"
	"time"

	"edc"
	"edc/internal/compress"
	"edc/internal/trace"
)

func init() {
	register("fig8", "Compression ratio by scheme (Fig. 8)", func(p Params) ([]*Table, error) {
		return evalTables(p, edc.SingleSSD, "fig8")
	})
	register("fig9", "Composite ratio/response-time metric (Fig. 9)", func(p Params) ([]*Table, error) {
		return evalTables(p, edc.SingleSSD, "fig9")
	})
	register("fig10", "Response time by scheme, single SSD (Fig. 10)", func(p Params) ([]*Table, error) {
		return evalTables(p, edc.SingleSSD, "fig10")
	})
	register("fig11", "Response time by scheme, RAIS5 (Fig. 11)", func(p Params) ([]*Table, error) {
		return evalTables(p, edc.RAIS5, "fig11")
	})
	register("fig12", "Sensitivity to the Gzip IOPS threshold (Fig. 12)", runFig12)
}

// evalKey caches full scheme x trace sweeps: fig8/9/10 share one sweep.
type evalKey struct {
	p       Params
	backend edc.BackendKind
}

var (
	evalMu    sync.Mutex
	evalCache = map[evalKey]map[string]map[edc.Scheme]*edc.Results{}
)

// runEval replays every scheme over every standard trace and returns
// results[traceName][scheme].
func runEval(p Params, backend edc.BackendKind) (map[string]map[edc.Scheme]*edc.Results, error) {
	key := evalKey{p: p, backend: backend}
	evalMu.Lock()
	if r, ok := evalCache[key]; ok {
		evalMu.Unlock()
		return r, nil
	}
	evalMu.Unlock()

	traces, err := standardTraces(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[edc.Scheme]*edc.Results, len(traces))
	for _, tr := range traces {
		byScheme := make(map[edc.Scheme]*edc.Results, 5)
		for _, s := range edc.Schemes() {
			res, err := replayScheme(p, backend, tr, s, nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s, tr.Name, err)
			}
			byScheme[s] = res
		}
		out[tr.Name] = byScheme
	}
	evalMu.Lock()
	evalCache[key] = out
	evalMu.Unlock()
	return out, nil
}

// replayScheme runs one (scheme, trace, backend) cell.
func replayScheme(p Params, backend edc.BackendKind, tr *trace.Trace, s edc.Scheme, extra []edc.Option) (*edc.Results, error) {
	prof := edc.DataProfiles()["enterprise"]
	if p.DupRatio > 0 {
		prof = prof.WithDup(p.DupRatio, p.DupUniverse)
	}
	opts := []edc.Option{
		edc.WithScheme(s),
		edc.WithDataProfile(prof, 5+p.Seed),
	}
	if p.Workers != 0 {
		opts = append(opts, edc.WithReplayWorkers(p.Workers))
	}
	if p.Shards > 1 {
		opts = append(opts, edc.WithShards(p.Shards))
	}
	if p.Faults != nil {
		opts = append(opts, edc.WithFaults(p.Faults))
	}
	if p.Maint {
		opts = append(opts, edc.WithMaintenance(edc.Maintenance{}))
	}
	if p.Dedup {
		opts = append(opts, edc.WithDedup(edc.Dedup{}))
	}
	if backend == edc.SingleSSD {
		opts = append(opts, edc.WithSSDConfig(singleSSDConfig()))
	} else {
		opts = append(opts,
			edc.WithBackend(backend, 5),
			edc.WithSSDConfig(raisSSDConfig()))
	}
	opts = append(opts, extra...)
	return edc.Replay(tr, p.volume(), opts...)
}

// traceOrder is the paper's presentation order.
var traceOrder = []string{"Fin1", "Fin2", "Usr_0", "Prxy_0"}

// evalTables renders the requested figure from the shared sweep.
func evalTables(p Params, backend edc.BackendKind, fig string) ([]*Table, error) {
	results, err := runEval(p, backend)
	if err != nil {
		return nil, err
	}
	var t *Table
	switch fig {
	case "fig8":
		t = &Table{ID: fig, Title: "Compression ratio normalized to Native (higher is better)"}
	case "fig9":
		t = &Table{ID: fig, Title: "Ratio/response-time composite normalized to Native (higher is better)"}
	case "fig10":
		t = &Table{ID: fig, Title: "Mean response time normalized to Native, single SSD (lower is better)"}
	case "fig11":
		t = &Table{ID: fig, Title: "Mean response time normalized to Native, RAIS5 x5 (lower is better)"}
	default:
		return nil, fmt.Errorf("bench: unknown eval figure %q", fig)
	}
	t.Header = append([]string{"scheme"}, traceOrder...)
	t.Header = append(t.Header, "average")
	for _, s := range edc.Schemes() {
		row := []string{string(s)}
		var sum float64
		for _, tn := range traceOrder {
			res := results[tn][s]
			nat := results[tn][edc.SchemeNative]
			var v float64
			switch fig {
			case "fig8":
				v = res.TrafficRatio() / nat.TrafficRatio()
			case "fig9":
				v = res.Composite() / nat.Composite()
			default: // fig10 / fig11
				v = float64(res.MeanResponse()) / float64(nat.MeanResponse())
			}
			sum += v
			row = append(row, f2(v))
		}
		row = append(row, f2(sum/float64(len(traceOrder))))
		t.Rows = append(t.Rows, row)
	}
	if fig == "fig8" {
		var space []string
		for _, tn := range traceOrder {
			r := results[tn][edc.SchemeEDC].TrafficRatio()
			space = append(space, fmt.Sprintf("%s %.1f%%", tn, (1-1/r)*100))
		}
		t.Notes = append(t.Notes, "EDC space savings: "+joinComma(space)+
			" (paper: up to 38.7%, avg 33.7%)")
	}
	if fig == "fig10" {
		lzfGain := make([]string, 0, len(traceOrder))
		for _, tn := range traceOrder {
			e := float64(results[tn][edc.SchemeEDC].MeanResponse())
			l := float64(results[tn][edc.SchemeLzf].MeanResponse())
			lzfGain = append(lzfGain, fmt.Sprintf("%s %.1f%%", tn, (1-e/l)*100))
		}
		t.Notes = append(t.Notes, "EDC response-time reduction vs Lzf: "+joinComma(lzfGain)+
			" (paper: up to 61.4%, avg 36.7%)")
	}
	return []*Table{t}, nil
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// runFig12 sweeps EDC's Gzip ceiling on the Fin2 trace, reporting how
// the share of runs compressed with Gzip trades ratio against response
// time (the paper finds ~20% a good balance).
func runFig12(p Params) ([]*Table, error) {
	profiles := standardProfilesByName(p)
	tr, err := profiles["Fin2"].GenerateN(p.requests(), 1001+p.Seed)
	if err != nil {
		return nil, err
	}
	ceilings := []float64{0.001, 100, 200, 400, 800, 1600, 3200, 5e8}
	t := &Table{
		ID:     "fig12",
		Title:  "EDC sensitivity to the Lzf/Gzip threshold on Fin2 (single SSD)",
		Header: []string{"gz ceiling cIOPS", "gz runs %", "ratio", "mean resp ms", "p99 ms"},
	}
	for _, ceil := range ceilings {
		res, err := replayScheme(p, edc.SingleSSD, tr, edc.SchemeEDC,
			[]edc.Option{edc.WithElasticThresholds(ceil, 1e9)})
		if err != nil {
			return nil, err
		}
		var runs int64
		for _, n := range res.RunsByTag {
			runs += n
		}
		gzShare := 0.0
		if runs > 0 {
			gzShare = float64(res.RunsByTag[compress.TagGZ]) / float64(runs) * 100
		}
		label := fmt.Sprintf("%.0f", ceil)
		if ceil >= 5e8 {
			label = "inf"
		} else if ceil < 1 {
			label = "0"
		}
		t.Rows = append(t.Rows, []string{
			label,
			f1(gzShare),
			f2(res.TrafficRatio()),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes,
		"The Lzf ceiling is held at infinity so only the Gzip share varies (paper Sec. IV-B: ~20% Gzip balances ratio and response time).")
	return []*Table{t}, nil
}

// standardProfilesByName returns the four profiles keyed by trace name.
func standardProfilesByName(p Params) map[string]edc.WorkloadProfile {
	out := make(map[string]edc.WorkloadProfile, 4)
	for _, prof := range edc.StandardWorkloads(p.volume()) {
		out[prof.Name] = prof
	}
	return out
}
