package bench

import (
	"fmt"
	"time"

	"edc"
	"edc/internal/compress"
	"edc/internal/core"
	"edc/internal/datagen"
	"edc/internal/hdd"
	"edc/internal/sim"
	"edc/internal/trace"
	"edc/internal/workload"
)

func init() {
	register("ext-cache", "Host DRAM cache in front of EDC (the paper's upper-layer buffer)", runExtCache)
	register("ext-hints", "Content-aware EDC+ vs stock EDC (paper future work #1)", runExtHints)
	register("ext-endurance", "Flash endurance by scheme (paper future work #4)", runExtEndurance)
	register("ext-energy", "Energy estimate by scheme (paper future work #3)", runExtEnergy)
	register("ext-hdd", "EDC on an HDD backend (paper future work #2)", runExtHDD)
	register("ext-multicore", "Fixed Gzip with 1/2/4 compression workers", runExtMulticore)
	register("ext-offload", "Host-side vs in-FTL (offloaded) compression", runExtOffload)
	register("ext-tail", "Tail latency percentiles by scheme", runExtTail)
}

// runExtCache varies the host DRAM read cache in front of EDC on the
// read-heavy Fin2 trace: hits skip both the flash read and the
// decompression, so the cache hides most of the compressed-read cost on
// hot data.
func runExtCache(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Fin2"].GenerateN(p.requests(), 1009+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-cache",
		Title:  "EDC under a host DRAM read cache (Fin2, single SSD)",
		Header: []string{"cache MiB", "hit rate %", "mean resp ms", "p99 ms", "flash reads"},
	}
	for _, mib := range []int64{0, 4, 16, 64} {
		res, err := replayScheme(p, edc.SingleSSD, tr, edc.SchemeEDC,
			[]edc.Option{edc.WithCache(mib << 20)})
		if err != nil {
			return nil, err
		}
		var reads int64
		for _, d := range res.Devices {
			reads += d.HostPagesRead
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", mib),
			f1(res.Cache.HitRate() * 100),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
			fmt.Sprintf("%d", reads),
		})
	}
	t.Notes = append(t.Notes,
		"The Fin2 hot set (15% of the volume takes 75% of accesses) fits in tens of MiB; a hit costs 10 us of DRAM instead of flash read + decompression.")
	return []*Table{t}, nil
}

// runExtHints compares stock EDC with the content-aware EDC+ on a
// source-tree-like volume: during idle periods EDC+ upgrades highly
// compressible runs to Bzip2-class compression, buying extra space at a
// small latency cost on exactly the data that deserves it.
func runExtHints(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Fin2"].GenerateN(p.requests(), 1008+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-hints",
		Title:  "Stock EDC vs content-aware EDC+ (Fin2 on a linux-src volume)",
		Header: []string{"scheme", "ratio", "mean resp ms", "p99 ms", "bwz runs"},
	}
	linux := edc.DataProfiles()["linux-src"]
	for _, s := range []edc.Scheme{edc.SchemeEDC, edc.SchemeEDCPlus} {
		res, err := replayScheme(p, edc.SingleSSD, tr, s,
			[]edc.Option{edc.WithDataProfile(linux, 8+p.Seed)})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			string(s),
			f2(res.TrafficRatio()),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
			fmt.Sprintf("%d", res.RunsByTag[compress.TagBWZ]),
		})
	}
	t.Notes = append(t.Notes,
		"Future work #1 implemented: the estimator's ratio doubles as a content hint; only idle-period, highly-compressible runs pay for Bzip2.")
	return []*Table{t}, nil
}

// runExtEndurance compares erase counts and write amplification per
// scheme under GC pressure: the reliability benefit the paper claims but
// does not measure. A small device and an extended write-only trace make
// the volume wrap, so garbage collection actually runs.
func runExtEndurance(p Params) ([]*Table, error) {
	volume := int64(96) << 20
	prof, err := edc.WorkloadByName("prxy0", volume)
	if err != nil {
		return nil, err
	}
	tr, err := prof.GenerateN(3*p.requests(), 1007+p.Seed)
	if err != nil {
		return nil, err
	}
	cfg := singleSSDConfig()
	cfg.Blocks = 512 // 128 MiB raw: sustained writes force GC
	t := &Table{
		ID:     "ext-endurance",
		Title:  "Flash wear per scheme under GC pressure (Prxy_0, 128 MiB device)",
		Header: []string{"scheme", "flash pages written", "erases", "write amp", "vs Native erases"},
	}
	var natErases int64
	for _, s := range edc.Schemes() {
		res, err := edc.Replay(tr, volume,
			edc.WithScheme(s),
			edc.WithSSDConfig(cfg),
			edc.WithDataProfile(edc.DataProfiles()["enterprise"], 5+p.Seed))
		if err != nil {
			return nil, err
		}
		var host, flash, erases int64
		for _, d := range res.Devices {
			host += d.HostPagesWritten
			flash += d.FlashPagesWritten
			erases += d.Erases
		}
		if s == edc.SchemeNative {
			natErases = erases
		}
		wa := 0.0
		if host > 0 {
			wa = float64(flash) / float64(host)
		}
		vs := "-"
		if natErases > 0 {
			vs = f2(float64(erases) / float64(natErases))
		}
		t.Rows = append(t.Rows, []string{
			string(s),
			fmt.Sprintf("%d", flash),
			fmt.Sprintf("%d", erases),
			f2(wa),
			vs,
		})
	}
	t.Notes = append(t.Notes,
		"Fewer programmed pages -> fewer erase cycles -> longer flash lifetime (paper Sec. III-A objective 3).")
	return []*Table{t}, nil
}

// runExtEnergy estimates per-scheme energy: compression compute vs the
// data movement it saves.
func runExtEnergy(p Params) ([]*Table, error) {
	results, err := runEval(p, edc.SingleSSD)
	if err != nil {
		return nil, err
	}
	m := core.DefaultEnergyModel()
	t := &Table{
		ID:     "ext-energy",
		Title:  "Energy estimate per scheme on Fin1 (SLC NAND + CPU model)",
		Header: []string{"scheme", "CPU J", "flash J", "transfer J", "total J", "J per GB written"},
	}
	for _, s := range edc.Schemes() {
		res := results["Fin1"][s]
		b := core.EstimateEnergy(res, m)
		t.Rows = append(t.Rows, []string{
			string(s),
			f2(b.CPUJ),
			f2(b.ReadJ + b.ProgramJ + b.EraseJ),
			f2(b.TransferJ),
			f2(b.TotalJ()),
			f1(core.EnergyPerGB(res, m)),
		})
	}
	t.Notes = append(t.Notes,
		"The paper's dichotomy: compression burns CPU joules but removes flash program/transfer joules; heavy codecs overshoot.")
	return []*Table{t}, nil
}

// runExtHDD replays Fin1 on the analytical disk model: positioning
// dominates small random I/O, so compression's transfer savings matter
// less than on flash — and heavy codecs still queue.
func runExtHDD(p Params) ([]*Table, error) {
	// A gentle large-request stream that the disk can sustain: bursty
	// traces saturate a ~100-IOPS disk and flatten every scheme into the
	// queueing ceiling.
	prof := workloadUniform("hdd-mix", 65536, 60, 0.5, p.volume())
	tr, err := prof.GenerateN(p.requests()/2, 1005+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-hdd",
		Title:  "Schemes on a 7200 RPM disk backend (64 KiB mixed stream at 60 IOPS)",
		Header: []string{"scheme", "mean resp ms", "p99 ms", "ratio", "vs Native"},
	}
	var natMean time.Duration
	for _, s := range edc.Schemes() {
		res, err := replayHDD(p, tr, s)
		if err != nil {
			return nil, err
		}
		if s == edc.SchemeNative {
			natMean = res.MeanResponse()
		}
		t.Rows = append(t.Rows, []string{
			string(s),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
			f2(res.TrafficRatio()),
			f2(float64(res.MeanResponse()) / float64(natMean)),
		})
	}
	t.Notes = append(t.Notes,
		"On disks, seek+rotation dominate small I/O, so compression's size reduction buys less latency than on flash; space savings are unchanged.")
	return []*Table{t}, nil
}

// replayHDD builds a core.Device over the disk backend directly (the
// public facade only wires flash backends).
func replayHDD(p Params, tr *trace.Trace, s edc.Scheme) (*core.RunStats, error) {
	eng := sim.NewEngine()
	cfg := hdd.DefaultConfig()
	disk, err := hdd.New(cfg)
	if err != nil {
		return nil, err
	}
	be := core.NewHDDBackend(eng, disk)
	pol, err := corePolicy(s)
	if err != nil {
		return nil, err
	}
	dev, err := core.NewDevice(eng, be, p.volume(), core.Options{
		Policy: pol,
		Data:   datagen.New(datagen.Enterprise(), 5+p.Seed),
	})
	if err != nil {
		return nil, err
	}
	return dev.Play(tr)
}

// workloadUniform builds a constant-rate profile (IOmeter style).
func workloadUniform(name string, size int64, iops, readRatio float64, volume int64) edc.WorkloadProfile {
	return workload.Uniform(name, size, iops, readRatio, volume)
}

// corePolicy maps a public scheme name onto a core policy.
func corePolicy(s edc.Scheme) (core.Policy, error) {
	reg := compress.Default()
	switch s {
	case edc.SchemeNative:
		return core.Native(), nil
	case edc.SchemeLzf:
		c, err := reg.ByName("lzf")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Lzf", c), nil
	case edc.SchemeGzip:
		c, err := reg.ByName("gz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Gzip", c), nil
	case edc.SchemeBzip2:
		c, err := reg.ByName("bwz")
		if err != nil {
			return nil, err
		}
		return core.Fixed("Bzip2", c), nil
	case edc.SchemeEDC:
		return core.DefaultElastic(reg)
	default:
		return nil, fmt.Errorf("bench: unsupported scheme %q", s)
	}
}

// runExtOffload contrasts host-side compression with the FTL-integrated
// designs in the paper's related work (zFTL, hardware-assisted
// compression): offloading frees the host CPU, but every compressed
// operation occupies the device's codec engine, so under load the device
// queue absorbs what the CPU queue used to.
func runExtOffload(p Params) ([]*Table, error) {
	tr, err := standardProfilesByName(p)["Fin1"].GenerateN(p.requests(), 1010+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-offload",
		Title:  "Host-side vs device-offloaded compression (Fin1, single SSD)",
		Header: []string{"variant", "mean resp ms", "p99 ms", "ratio", "host CPU busy ms"},
	}
	for _, v := range []struct {
		name   string
		scheme edc.Scheme
		opts   []edc.Option
	}{
		{"Native", edc.SchemeNative, nil},
		{"Lzf host-side", edc.SchemeLzf, nil},
		{"Lzf in-FTL (150 MB/s engine)", edc.SchemeLzf, []edc.Option{edc.WithOffload()}},
		{"EDC host-side", edc.SchemeEDC, nil},
	} {
		res, err := replayScheme(p, edc.SingleSSD, tr, v.scheme, v.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
			f2(res.TrafficRatio()),
			f1(float64(res.CPU.BusyTime) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes,
		"Offloading removes the host CPU cost (the objection the paper raises against FTL-integrated compression is device resource consumption, which shows up here as device-queue time).")
	return []*Table{t}, nil
}

// runExtTail reports the full latency distribution per scheme — tail
// percentiles tell the queueing story the paper's mean-only Fig. 10
// compresses away: heavy codecs hurt the p99/p999 far more than the
// mean.
func runExtTail(p Params) ([]*Table, error) {
	results, err := runEval(p, edc.SingleSSD)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-tail",
		Title:  "Response-time percentiles on Fin1 (ms)",
		Header: []string{"scheme", "p50", "p90", "p99", "p99.9", "max-ish (p99.99)"},
	}
	ms := func(d time.Duration) string { return f3(float64(d) / float64(time.Millisecond)) }
	for _, s := range edc.Schemes() {
		res := results["Fin1"][s]
		t.Rows = append(t.Rows, []string{
			string(s),
			ms(res.Resp.Percentile(50)),
			ms(res.Resp.Percentile(90)),
			ms(res.Resp.Percentile(99)),
			ms(res.Resp.Percentile(99.9)),
			ms(res.Resp.Percentile(99.99)),
		})
	}
	t.Notes = append(t.Notes,
		"The mean understates fixed-codec damage: bursts inflate the tail first. EDC's burst skipping shows up as a flat p99.")
	return []*Table{t}, nil
}

// runExtMulticore shows modern multicore absorbing fixed-Gzip's CPU
// cost: with enough workers the latency penalty shrinks toward the
// device floor, narrowing (but not closing) the gap to EDC.
func runExtMulticore(p Params) ([]*Table, error) {
	profiles := standardProfilesByName(p)
	tr, err := profiles["Fin1"].GenerateN(p.requests(), 1006+p.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-multicore",
		Title:  "Fixed Gzip vs EDC as compression workers scale (Fin1, single SSD)",
		Header: []string{"variant", "workers", "mean resp ms", "p99 ms", "ratio"},
	}
	add := func(name string, s edc.Scheme, workers int) error {
		res, err := replayScheme(p, edc.SingleSSD, tr, s,
			[]edc.Option{edc.WithCPUWorkers(workers)})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", workers),
			f3(float64(res.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(res.Resp.Percentile(99)) / float64(time.Millisecond)),
			f2(res.TrafficRatio()),
		})
		return nil
	}
	for _, w := range []int{1, 2, 4} {
		if err := add("Gzip", edc.SchemeGzip, w); err != nil {
			return nil, err
		}
	}
	if err := add("EDC", edc.SchemeEDC, 1); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"Parallel compression hides throughput, not per-request latency: each request still waits for its own compression, so EDC keeps an edge during bursts.")
	return []*Table{t}, nil
}
