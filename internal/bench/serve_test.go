package bench

import (
	"strings"
	"testing"

	"edc/internal/workload"
)

// serveTestSpec is a short two-step spec: a light step then a 4x rate
// step, mixed read/write, zipfian reads.
func serveTestSpec(t *testing.T) workload.Spec {
	t.Helper()
	spec, err := workload.ParseSpec("d=200ms qps=500 rw=0.5 rkd=zipfian-0.99\nqps=2000")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestRunServe drives a short open-loop run and checks the per-step
// accounting against the merged pipeline Results.
func TestRunServe(t *testing.T) {
	sr, err := RunServe(ServeParams{
		Params:  Params{VolumeMiB: 64},
		Spec:    serveTestSpec(t),
		Clients: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Steps) != 2 {
		t.Fatalf("steps=%d, want 2", len(sr.Steps))
	}
	var total, reads, writes int64
	for i, ss := range sr.Steps {
		if ss.Ops <= 0 {
			t.Fatalf("step %d: no ops", i)
		}
		if ss.Reads+ss.Writes != ss.Ops {
			t.Fatalf("step %d: reads %d + writes %d != ops %d", i, ss.Reads, ss.Writes, ss.Ops)
		}
		if ss.AchievedQPS <= 0 {
			t.Fatalf("step %d: achieved qps %g", i, ss.AchievedQPS)
		}
		if ss.Mean <= 0 || ss.P99 < ss.P50 {
			t.Fatalf("step %d: implausible latency mean=%v p50=%v p99=%v", i, ss.Mean, ss.P50, ss.P99)
		}
		total += ss.Ops
		reads += ss.Reads
		writes += ss.Writes
	}
	// Step 2 offers 4x step 1's rate over the same duration.
	if lo, hi := 3*sr.Steps[0].Ops, 5*sr.Steps[0].Ops; sr.Steps[1].Ops < lo || sr.Steps[1].Ops > hi {
		t.Fatalf("step ops %d vs %d: want roughly 4x", sr.Steps[0].Ops, sr.Steps[1].Ops)
	}
	if sr.Result.Requests != total {
		t.Fatalf("pipeline requests=%d, driver counted %d", sr.Result.Requests, total)
	}
	if sr.Result.Reads != reads || sr.Result.Writes != writes {
		t.Fatalf("pipeline reads/writes=%d/%d, driver counted %d/%d",
			sr.Result.Reads, sr.Result.Writes, reads, writes)
	}
	if sr.WallTime <= 0 || sr.OpsPerSecWall <= 0 {
		t.Fatalf("wall accounting: %v, %g ops/sec", sr.WallTime, sr.OpsPerSecWall)
	}
	tbl := ServeTable(sr)
	if len(tbl.Rows) != 2 || len(tbl.Header) != len(tbl.Rows[0]) {
		t.Fatalf("serve table shape: %d rows, %d header cols", len(tbl.Rows), len(tbl.Header))
	}
	if !strings.Contains(sr.SpecText, "rkd=zipfian-0.99") {
		t.Fatalf("spec text %q lost the zipfian choice", sr.SpecText)
	}
}

// TestRunServeDeterministicCounts checks the seeded run's virtual-time
// outcome (op counts per step and per direction) is reproducible across
// runs — the generator streams are pure functions of (seed, worker).
func TestRunServeDeterministicCounts(t *testing.T) {
	p := ServeParams{
		Params:  Params{VolumeMiB: 64, Seed: 3, Shards: 2},
		Spec:    serveTestSpec(t),
		Clients: 3,
	}
	a, err := RunServe(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServe(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Steps {
		x, y := a.Steps[i], b.Steps[i]
		if x.Ops != y.Ops || x.Reads != y.Reads || x.Writes != y.Writes {
			t.Fatalf("step %d: counts differ across runs: %+v vs %+v", i, x, y)
		}
	}
	if a.Result.OrigBytes != b.Result.OrigBytes {
		t.Fatalf("OrigBytes differ: %d vs %d", a.Result.OrigBytes, b.Result.OrigBytes)
	}
}
