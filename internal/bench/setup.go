package bench

import (
	"fmt"
	"time"

	"edc/internal/ssd"
	"edc/internal/trace"
	"edc/internal/workload"
)

// singleSSDConfig is the device model for single-SSD experiments:
// 512 MiB raw so the 256 MiB volume sees realistic GC pressure.
func singleSSDConfig() ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 2048
	return cfg
}

// raisSSDConfig is the member-device model for array experiments.
func raisSSDConfig() ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.Blocks = 1024 // 256 MiB each; 5-device RAIS5 ≈ 950 MiB logical
	return cfg
}

// standardTraces generates the paper's four evaluation traces at the
// requested size. Seeds are fixed per trace (offset by p.Seed) so every
// experiment sees identical request streams.
func standardTraces(p Params) ([]*trace.Trace, error) {
	profiles := workload.Standard(p.volume())
	out := make([]*trace.Trace, len(profiles))
	for i, prof := range profiles {
		tr, err := prof.GenerateN(p.requests(), 1000+int64(i)+p.Seed)
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

func init() {
	register("tab1", "Experimental setup (Table I)", runTab1)
	register("tab2", "Workload characteristics (Table II)", runTab2)
}

func runTab1(p Params) ([]*Table, error) {
	cfg := singleSSDConfig()
	t := &Table{
		ID:     "tab1",
		Title:  "Simulated experimental setup (paper Table I analogue)",
		Header: []string{"component", "configuration"},
		Rows: [][]string{
			{"Host model", "two-station tandem queue (CPU + device), virtual time"},
			{"Device model", fmt.Sprintf("X25-E-class SLC: read %v/page, program %v/page, erase %v/block",
				cfg.ReadPageLatency, cfg.ProgramLatency, cfg.EraseLatency)},
			{"Interface", fmt.Sprintf("%d MB/s, transfer time proportional to size", cfg.TransferBW>>20)},
			{"Geometry", fmt.Sprintf("%d blocks x %d pages x %d B (%.0f MiB raw, %.0f%% over-provisioned)",
				cfg.Blocks, cfg.PagesPerBlock, cfg.PageSize,
				float64(cfg.Blocks*cfg.PagesPerBlock*cfg.PageSize)/(1<<20), cfg.OverProvision*100)},
			{"GC", fmt.Sprintf("greedy, foreground, watermarks %.0f%%/%.0f%%", cfg.GCLowWater*100, cfg.GCHighWater*100)},
			{"Array", "RAIS5 of 5 identical devices, 64 KiB stripe unit (fig11)"},
			{"Traces", "synthetic Fin1/Fin2 (SPC OLTP) + Usr_0/Prxy_0 (MSR) profiles"},
			{"Trace generation", "MMPP burst/idle arrivals; SDGen-style content (internal/datagen)"},
			{"Compression algorithms", "lzf, lz4, gz (LZ77+Huffman), bwz (BWT+MTF+Huffman)"},
		},
		Notes: []string{
			"Real hardware in the paper: Xeon X5680, PERC H710, 5x Intel X25-E 64 GB (see DESIGN.md substitutions).",
		},
	}
	return []*Table{t}, nil
}

func runTab2(p Params) ([]*Table, error) {
	traces, err := standardTraces(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "tab2",
		Title:  "Key characteristics of evaluation workloads (Table II analogue)",
		Header: []string{"trace", "requests", "read%", "avg KB", "mean IOPS", "peak/mean", "footprint MiB"},
	}
	for _, tr := range traces {
		st := tr.Stats()
		mean, peak := burstStats(tr)
		pm := 0.0
		if mean > 0 {
			pm = peak / mean
		}
		t.Rows = append(t.Rows, []string{
			tr.Name,
			fmt.Sprintf("%d", st.Requests),
			f1(st.ReadRatio * 100),
			f1(st.AvgSize / 1024),
			f1(st.AvgIOPS),
			f1(pm),
			f1(float64(st.MaxOffset) / (1 << 20)),
		})
	}
	t.Notes = append(t.Notes,
		"Synthetic approximations of the published traces; drop real SPC/MSR files in via internal/trace parsers to reproduce on original data.")
	return []*Table{t}, nil
}

// burstStats computes the 1-second-binned IOPS mean and peak.
func burstStats(tr *trace.Trace) (mean, peak float64) {
	if len(tr.Requests) == 0 {
		return 0, 0
	}
	bins := make(map[int64]int)
	for _, r := range tr.Requests {
		bins[int64(r.Arrival/time.Second)]++
	}
	last := int64(tr.Duration() / time.Second)
	var sum float64
	for _, c := range bins {
		v := float64(c)
		sum += v
		if v > peak {
			peak = v
		}
	}
	return sum / float64(last+1), peak
}
