package bench

import (
	"fmt"
	"time"

	"edc"
)

func init() {
	register("maint", "Background recompression: space before/after maintenance", runMaint)
}

// runMaint replays EDC over the four standard traces twice — maintenance
// off, then on with the default policy — and reports the live slot
// footprint of each run side by side. The savings come from cold
// lzf/uncompressed extents recompressed to gz during idle windows plus
// free-list compaction; the p99 columns bound the foreground cost of the
// background I/O.
func runMaint(p Params) ([]*Table, error) {
	traces, err := standardTraces(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "maint",
		Title: "EDC live slot bytes before/after background maintenance (single SSD)",
		Header: []string{"trace", "live MiB off", "live MiB on", "saved KiB", "saved %",
			"reloc cold", "reloc hot", "compactions", "p99 off ms", "p99 on ms"},
	}
	off := p
	off.Maint = false
	on := p
	on.Maint = true
	for _, tr := range traces {
		base, err := replayScheme(off, edc.SingleSSD, tr, edc.SchemeEDC, nil)
		if err != nil {
			return nil, fmt.Errorf("maint off/%s: %w", tr.Name, err)
		}
		maint, err := replayScheme(on, edc.SingleSSD, tr, edc.SchemeEDC, nil)
		if err != nil {
			return nil, fmt.Errorf("maint on/%s: %w", tr.Name, err)
		}
		saved := base.LiveSlotBytes - maint.LiveSlotBytes
		pct := 0.0
		if base.LiveSlotBytes > 0 {
			pct = float64(saved) / float64(base.LiveSlotBytes) * 100
		}
		t.Rows = append(t.Rows, []string{
			tr.Name,
			f2(float64(base.LiveSlotBytes) / (1 << 20)),
			f2(float64(maint.LiveSlotBytes) / (1 << 20)),
			f1(float64(saved) / 1024),
			f2(pct),
			fmt.Sprintf("%d", maint.MaintCold),
			fmt.Sprintf("%d", maint.MaintHot),
			fmt.Sprintf("%d", maint.MaintCompactions),
			f3(float64(base.Resp.Percentile(99)) / float64(time.Millisecond)),
			f3(float64(maint.Resp.Percentile(99)) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes,
		"Maintenance runs only in idle windows (calculated IOPS at or below the gz ceiling), so savings concentrate in bursty traces whose burst-written lzf/uncompressed extents go cold.",
		"The paper fixes each extent's codec at write time; this experiment quantifies what the missing background pass leaves on the table.")
	return []*Table{t}, nil
}
