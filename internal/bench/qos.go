package bench

// The qos experiment demonstrates multi-tenant isolation: a
// latency-sensitive victim tenant is measured solo, then with a bulk
// aggressor flooding writes beside it — once with QoS disabled (tags
// flow but no policy applies) and once with the full treatment
// (per-tenant intensity isolation, class-priority admission, and a
// bandwidth schedule shaping the aggressor). Without QoS the
// aggressor's burst drags the shared calculated-IOPS signal above the
// Lzf ceiling, forcing the victim's writes into uncompressed
// write-through and inflating its tail latency; with QoS on the
// victim's codec mix and p99 stay within noise of its solo run.

import (
	"fmt"
	"time"

	"edc/internal/workload"
)

func init() {
	register("qos", "Multi-tenant QoS: victim isolation under an aggressor burst", runQoS)
}

// The victim offers ~250 calculated IOPS (inside the Gzip band); the
// aggressor's 16 KiB writes at 2500 QPS offer ~10000 — far above the
// 7000 write-through ceiling — unless its 2 MiB/s schedule shapes them
// down. The victim line comes first, so its generator seed (and thus
// its offered stream) is identical in every mode.
const (
	qosVictimLine = "tenant=web class=latency d=4s qps=250 rw=0.5 bs=4k"
	qosAggrLine   = "tenant=batch class=bulk bw=2M d=4s qps=2500 rw=0.05 bs=16k"
)

func runQoS(p Params) ([]*Table, error) {
	shared := qosVictimLine + "\n" + qosAggrLine
	modes := []struct {
		name    string
		spec    string
		noQoS   bool
		isolate bool
	}{
		{"victim solo", qosVictimLine, false, true},
		{"shared, qos off", shared, true, false},
		{"shared, qos on", shared, false, true},
	}
	t := &Table{
		ID:     "qos",
		Title:  "Multi-tenant QoS: victim vs aggressor (victim tenant \"web\", aggressor \"batch\")",
		Header: []string{"mode", "victim p99", "victim mean", "victim comp%", "victim none-runs", "aggr qps", "aggr shaped"},
	}
	for _, m := range modes {
		spec, err := workload.ParseSpec(m.spec)
		if err != nil {
			return nil, fmt.Errorf("qos: %w", err)
		}
		sp := ServeParams{
			// Only the shared sizing knobs carry over: faults, maint, and
			// dedup would perturb the isolation comparison.
			Params: Params{VolumeMiB: p.VolumeMiB, Seed: p.Seed, Workers: p.Workers, Shards: p.Shards},
			Spec:   spec,
			NoQoS:  m.noQoS,
		}
		if !m.noQoS {
			cfg := spec.QoSConfig()
			if cfg != nil && m.isolate {
				cfg.Isolate = true
			}
			sp.QoS = cfg
		}
		sr, err := RunServe(sp)
		if err != nil {
			return nil, fmt.Errorf("qos: %s: %w", m.name, err)
		}
		rep := sr.Result.Report()
		vt := rep.Tenants["web"]
		if vt == nil {
			return nil, fmt.Errorf("qos: %s: no victim tenant section in results", m.name)
		}
		var runs, none int64
		for codec, n := range vt.RunsByCodec {
			runs += n
			if codec == "none" {
				none += n
			}
		}
		compPct := "-"
		if runs > 0 {
			compPct = f1(100 * float64(runs-none) / float64(runs))
		}
		aggrQPS, aggrShaped := "-", "-"
		for _, ss := range sr.Steps {
			if ss.Step.Tenant == "batch" {
				aggrQPS = f1(ss.AchievedQPS)
			}
		}
		if at := rep.Tenants["batch"]; at != nil {
			aggrShaped = fmt.Sprintf("%d", at.Shaped)
		}
		us := func(v float64) string {
			return time.Duration(v * float64(time.Microsecond)).Round(time.Microsecond).String()
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			us(vt.P99US),
			us(vt.MeanUS),
			compPct,
			fmt.Sprintf("%d", none),
			aggrQPS,
			aggrShaped,
		})
	}
	t.Notes = append(t.Notes,
		"victim: "+qosVictimLine,
		"aggressor: "+qosAggrLine,
		"qos off shares one intensity meter: the aggressor pushes calculated IOPS past the Lzf ceiling and the victim's writes store uncompressed; qos on isolates the victim's meter, shapes the aggressor to its schedule, and admits latency-class requests first",
	)
	return []*Table{t}, nil
}
