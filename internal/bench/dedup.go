package bench

import (
	"fmt"
	"time"

	"edc"
)

func init() {
	register("dedup", "Content-addressed dedup: space and latency with duplicate-heavy payloads", runDedup)
}

// runDedup replays EDC over the four standard traces twice — dedup off,
// then on — against a duplicate-heavy payload profile (half the content
// regions are clones from a small pool, the shape of VM images or
// container layers). It reports the live slot footprint side by side,
// the hit rate the content index achieved, and the latency cost of
// fingerprinting every flushed run.
func runDedup(p Params) ([]*Table, error) {
	if p.DupRatio == 0 {
		p.DupRatio, p.DupUniverse = 0.5, 8
	}
	traces, err := standardTraces(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "dedup",
		Title: fmt.Sprintf("EDC live slot bytes without/with dedup (single SSD, dup ratio %.0f%%)", p.DupRatio*100),
		Header: []string{"trace", "live MiB off", "live MiB on", "saved %",
			"hits", "hit rate %", "saved MiB", "mean off ms", "mean on ms", "p99 on ms"},
	}
	off := p
	off.Dedup = false
	on := p
	on.Dedup = true
	for _, tr := range traces {
		base, err := replayScheme(off, edc.SingleSSD, tr, edc.SchemeEDC, nil)
		if err != nil {
			return nil, fmt.Errorf("dedup off/%s: %w", tr.Name, err)
		}
		dd, err := replayScheme(on, edc.SingleSSD, tr, edc.SchemeEDC, nil)
		if err != nil {
			return nil, fmt.Errorf("dedup on/%s: %w", tr.Name, err)
		}
		saved := base.LiveSlotBytes - dd.LiveSlotBytes
		pct := 0.0
		if base.LiveSlotBytes > 0 {
			pct = float64(saved) / float64(base.LiveSlotBytes) * 100
		}
		t.Rows = append(t.Rows, []string{
			tr.Name,
			f2(float64(base.LiveSlotBytes) / (1 << 20)),
			f2(float64(dd.LiveSlotBytes) / (1 << 20)),
			f2(pct),
			fmt.Sprintf("%d", dd.DedupHits),
			f1(dd.DedupHitRate() * 100),
			f2(float64(dd.DedupBytesSaved) / (1 << 20)),
			f3(float64(base.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(dd.MeanResponse()) / float64(time.Millisecond)),
			f3(float64(dd.Resp.Percentile(99)) / float64(time.Millisecond)),
		})
	}
	t.Notes = append(t.Notes,
		"A dedup hit skips estimation, compression, and slot allocation entirely, so on duplicate-heavy payloads the on-column mean can beat the off-column despite the per-run fingerprint cost.",
		"saved MiB counts slot bytes hits avoided allocating over the whole run (DedupBytesSaved); live MiB compares the final footprint, which also reflects overwrites and unrefs.",
		"The paper's EDC has no dedup stage; this experiment quantifies what a content index in front of the elastic codec ladder adds on clone-heavy workloads.")
	return []*Table{t}, nil
}
