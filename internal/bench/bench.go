// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. IV). Each experiment is identified by the paper's
// label (tab1, tab2, fig1, fig2, fig3, fig8, fig9, fig10, fig11, fig12)
// plus three ablations beyond the paper (ablation-sd, ablation-sampling,
// ablation-slots). The cmd/edcbench tool and the repository-level
// bench_test.go both drive this package.
//
// Absolute numbers will not match the authors' 2010-era testbed — the
// backend is a simulator — but the shapes (who wins, by roughly what
// factor, where the knees fall) reproduce; EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"edc"
)

// Params sizes an experiment run. Zero values select defaults tuned to
// finish the full suite in a few minutes.
type Params struct {
	// Requests per trace replay (default 12000).
	Requests int
	// VolumeMiB is the logical volume size (default 256).
	VolumeMiB int
	// Seed offsets all generator seeds (default 0: the published seeds).
	Seed int64
	// Workers is the replay pipeline width passed to
	// edc.WithReplayWorkers (default 0: runtime.GOMAXPROCS(0)). It only
	// affects wall-clock speed; results are identical for any setting.
	Workers int
	// Shards is the LBA-shard count passed to edc.WithShards (default 0:
	// the stock single pipeline). Unlike Workers, n > 1 changes the
	// simulated system (n independent devices over disjoint LBA ranges),
	// so results differ from the single-pipeline numbers — but remain
	// deterministic for a fixed n.
	Shards int
	// Faults attaches a deterministic fault-injection plan to every
	// replay (edc.WithFaults). Nil injects nothing; a non-nil plan
	// changes the simulated system but keeps results deterministic for
	// a fixed plan seed.
	Faults *edc.FaultPlan
	// Maint enables temperature-aware background maintenance with its
	// default policy on every replay (edc.WithMaintenance). False runs
	// no maintenance and reproduces the historical numbers exactly.
	Maint bool
	// Dedup enables content-addressed deduplication with its default
	// policy on every replay (edc.WithDedup). False runs no dedup and
	// reproduces the historical numbers exactly.
	Dedup bool
	// DupRatio / DupUniverse override the payload generator's content
	// duplication knobs on every replay (edc.DataProfile.WithDup): a
	// DupRatio fraction of content regions are clones drawn from a pool
	// of DupUniverse distinct payloads. Zero keeps the stock profile
	// (no injected duplication).
	DupRatio    float64
	DupUniverse int
}

func (p Params) requests() int {
	if p.Requests <= 0 {
		return 12000
	}
	return p.Requests
}

func (p Params) volume() int64 {
	if p.VolumeMiB <= 0 {
		return 256 << 20
	}
	return int64(p.VolumeMiB) << 20
}

// Table is one rendered result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as CSV with an id/title comment line.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTables renders tables in the requested format: "table" (aligned
// text), "csv", or "json".
func WriteTables(w io.Writer, tables []*Table, format string) error {
	switch format {
	case "", "table":
		for _, t := range tables {
			t.Fprint(w)
		}
		return nil
	case "csv":
		for _, t := range tables {
			if err := t.FprintCSV(w); err != nil {
				return err
			}
		}
		return nil
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	default:
		return fmt.Errorf("bench: unknown output format %q", format)
	}
}

// experiment produces one or more tables.
type experiment struct {
	id    string
	title string
	run   func(Params) ([]*Table, error)
}

var (
	registryMu sync.Mutex
	registry   []experiment
)

func register(id, title string, run func(Params) ([]*Table, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, experiment{id: id, title: title, run: run})
}

// Experiments lists the registered experiment IDs in run order.
func Experiments() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Describe returns id -> title.
func Describe() map[string]string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, p Params) ([]*Table, error) {
	registryMu.Lock()
	var exp *experiment
	for i := range registry {
		if registry[i].id == id {
			exp = &registry[i]
			break
		}
	}
	registryMu.Unlock()
	if exp == nil {
		known := Experiments()
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(known, ", "))
	}
	return exp.run(p)
}

// RunAll executes every experiment in registration order.
func RunAll(p Params) ([]*Table, error) {
	var out []*Table
	for _, id := range Experiments() {
		ts, err := Run(id, p)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// f2 formats a float with 2 decimals; f1/f3 likewise.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
