// Package cache implements the block-granular LRU host cache that sits
// above EDC in the paper's architecture (Fig. 4 places a DRAM buffer and
// I/O scheduling in the upper layers; the bursty arrival patterns EDC
// sees are partly shaped by such caches). A hit is served from DRAM,
// skipping the device read *and* the decompression that a compressed
// extent would otherwise require.
package cache

// BlockSize is the cache line granularity (matches the EDC block size).
const BlockSize = 4096

// entry is one node of the intrusive recency ring: the links are array
// indices into Cache.entries rather than pointers, so the whole LRU
// lives in one preallocated slice and insert/touch/evict never allocate.
type entry struct {
	block      int64
	prev, next int32
}

// Cache is an LRU set of logical block numbers. It tracks presence, not
// contents: the simulator's payloads are synthesized deterministically,
// so only hit/miss behaviour and capacity pressure need modeling.
// Not safe for concurrent use (the simulation is single-threaded).
//
// The recency order is kept in an index-based doubly linked ring over a
// fixed entries array (entries[0] is the sentinel: its next is the most
// recent block, its prev the least recent). Nodes released by
// Invalidate are chained through their next links onto a free list.
// After the block index map has grown to capacity, no operation
// allocates.
type Cache struct {
	capBlocks int
	entries   []entry // entries[0] is the ring sentinel
	free      int32   // head of the free chain (through next); 0 = empty
	length    int
	index     map[int64]int32

	hits       int64
	misses     int64
	insertions int64
	evictions  int64
}

// New returns a cache holding up to capacityBytes of blocks (rounded
// down; at least one block if capacityBytes > 0). A nil *Cache is a
// valid always-miss cache.
func New(capacityBytes int64) *Cache {
	blocks := int(capacityBytes / BlockSize)
	if capacityBytes > 0 && blocks == 0 {
		blocks = 1
	}
	if blocks <= 0 {
		return nil
	}
	c := &Cache{
		capBlocks: blocks,
		entries:   make([]entry, blocks+1),
		index:     make(map[int64]int32, blocks),
	}
	// Chain every node (indices 1..blocks) onto the free list; the last
	// node's zero-valued next terminates it at the sentinel index.
	for i := 1; i < blocks; i++ {
		c.entries[i].next = int32(i + 1)
	}
	c.free = 1
	return c
}

// unlink removes node i from the recency ring.
func (c *Cache) unlink(i int32) {
	p, n := c.entries[i].prev, c.entries[i].next
	c.entries[p].next = n
	c.entries[n].prev = p
}

// pushFront links node i in as the most recent entry.
func (c *Cache) pushFront(i int32) {
	h := c.entries[0].next
	c.entries[i].prev = 0
	c.entries[i].next = h
	c.entries[h].prev = i
	c.entries[0].next = i
}

// moveToFront refreshes node i's recency.
func (c *Cache) moveToFront(i int32) {
	if c.entries[0].next == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// CapacityBlocks returns the block capacity (0 for a nil cache).
func (c *Cache) CapacityBlocks() int {
	if c == nil {
		return 0
	}
	return c.capBlocks
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return c.length
}

// Contains reports whether block is cached, counting and refreshing it
// as an access.
func (c *Cache) Contains(block int64) bool {
	if c == nil {
		return false
	}
	if i, ok := c.index[block]; ok {
		c.moveToFront(i)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Peek reports presence without touching recency or counters.
func (c *Cache) Peek(block int64) bool {
	if c == nil {
		return false
	}
	_, ok := c.index[block]
	return ok
}

// Insert adds (or refreshes) a block, evicting the LRU block if full.
func (c *Cache) Insert(block int64) {
	if c == nil {
		return
	}
	if i, ok := c.index[block]; ok {
		c.moveToFront(i)
		return
	}
	c.insertions++
	if c.length >= c.capBlocks {
		oldest := c.entries[0].prev // never the sentinel: length >= 1 here
		delete(c.index, c.entries[oldest].block)
		c.unlink(oldest)
		c.entries[oldest].next = c.free
		c.free = oldest
		c.length--
		c.evictions++
	}
	i := c.free
	c.free = c.entries[i].next
	c.entries[i].block = block
	c.pushFront(i)
	c.index[block] = i
	c.length++
}

// InsertRange caches every block of the byte range [off, off+size).
func (c *Cache) InsertRange(off, size int64) {
	if c == nil || size <= 0 {
		return
	}
	for b := off / BlockSize; b <= (off+size-1)/BlockSize; b++ {
		c.Insert(b)
	}
}

// ContainsRange reports whether every block of the range is cached
// (counting one aggregate hit or miss per block).
func (c *Cache) ContainsRange(off, size int64) bool {
	if c == nil {
		return false
	}
	if size <= 0 {
		return true
	}
	all := true
	for b := off / BlockSize; b <= (off+size-1)/BlockSize; b++ {
		if !c.Contains(b) {
			all = false
		}
	}
	return all
}

// Invalidate drops a block if present.
func (c *Cache) Invalidate(block int64) {
	if c == nil {
		return
	}
	if i, ok := c.index[block]; ok {
		delete(c.index, block)
		c.unlink(i)
		c.entries[i].next = c.free
		c.free = i
		c.length--
	}
}

// Stats reports cumulative counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Insertions int64
	Evictions  int64
}

// Stats returns a snapshot (zero for a nil cache).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{Hits: c.hits, Misses: c.misses, Insertions: c.insertions, Evictions: c.evictions}
}

// HitRate returns hits / (hits+misses), 0 when no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
