// Package cache implements the block-granular LRU host cache that sits
// above EDC in the paper's architecture (Fig. 4 places a DRAM buffer and
// I/O scheduling in the upper layers; the bursty arrival patterns EDC
// sees are partly shaped by such caches). A hit is served from DRAM,
// skipping the device read *and* the decompression that a compressed
// extent would otherwise require.
package cache

import (
	"container/list"
)

// BlockSize is the cache line granularity (matches the EDC block size).
const BlockSize = 4096

// Cache is an LRU set of logical block numbers. It tracks presence, not
// contents: the simulator's payloads are synthesized deterministically,
// so only hit/miss behaviour and capacity pressure need modeling.
// Not safe for concurrent use (the simulation is single-threaded).
type Cache struct {
	capBlocks int
	lru       *list.List // front = most recent; values are int64 blocks
	index     map[int64]*list.Element

	hits       int64
	misses     int64
	insertions int64
	evictions  int64
}

// New returns a cache holding up to capacityBytes of blocks (rounded
// down; at least one block if capacityBytes > 0). A nil *Cache is a
// valid always-miss cache.
func New(capacityBytes int64) *Cache {
	blocks := int(capacityBytes / BlockSize)
	if capacityBytes > 0 && blocks == 0 {
		blocks = 1
	}
	if blocks <= 0 {
		return nil
	}
	return &Cache{
		capBlocks: blocks,
		lru:       list.New(),
		index:     make(map[int64]*list.Element, blocks),
	}
}

// CapacityBlocks returns the block capacity (0 for a nil cache).
func (c *Cache) CapacityBlocks() int {
	if c == nil {
		return 0
	}
	return c.capBlocks
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return c.lru.Len()
}

// Contains reports whether block is cached, counting and refreshing it
// as an access.
func (c *Cache) Contains(block int64) bool {
	if c == nil {
		return false
	}
	if el, ok := c.index[block]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Peek reports presence without touching recency or counters.
func (c *Cache) Peek(block int64) bool {
	if c == nil {
		return false
	}
	_, ok := c.index[block]
	return ok
}

// Insert adds (or refreshes) a block, evicting the LRU block if full.
func (c *Cache) Insert(block int64) {
	if c == nil {
		return
	}
	if el, ok := c.index[block]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.insertions++
	if c.lru.Len() >= c.capBlocks {
		oldest := c.lru.Back()
		if oldest != nil {
			delete(c.index, oldest.Value.(int64))
			c.lru.Remove(oldest)
			c.evictions++
		}
	}
	c.index[block] = c.lru.PushFront(block)
}

// InsertRange caches every block of the byte range [off, off+size).
func (c *Cache) InsertRange(off, size int64) {
	if c == nil || size <= 0 {
		return
	}
	for b := off / BlockSize; b <= (off+size-1)/BlockSize; b++ {
		c.Insert(b)
	}
}

// ContainsRange reports whether every block of the range is cached
// (counting one aggregate hit or miss per block).
func (c *Cache) ContainsRange(off, size int64) bool {
	if c == nil {
		return false
	}
	if size <= 0 {
		return true
	}
	all := true
	for b := off / BlockSize; b <= (off+size-1)/BlockSize; b++ {
		if !c.Contains(b) {
			all = false
		}
	}
	return all
}

// Invalidate drops a block if present.
func (c *Cache) Invalidate(block int64) {
	if c == nil {
		return
	}
	if el, ok := c.index[block]; ok {
		delete(c.index, block)
		c.lru.Remove(el)
	}
}

// Stats reports cumulative counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Insertions int64
	Evictions  int64
}

// Stats returns a snapshot (zero for a nil cache).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{Hits: c.hits, Misses: c.misses, Insertions: c.insertions, Evictions: c.evictions}
}

// HitRate returns hits / (hits+misses), 0 when no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
