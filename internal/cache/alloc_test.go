package cache

import (
	"testing"

	"edc/internal/race"
)

// TestCacheAllocs pins the steady-state allocation behaviour of the
// intrusive LRU: once the index map has grown to capacity, hits,
// refreshes, and insert-with-evict cycles must not allocate.
func TestCacheAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector perturbs allocation counts")
	}
	const blocks = 256
	c := New(blocks * BlockSize)
	for b := int64(0); b < blocks; b++ {
		c.Insert(b)
	}

	t.Run("hit", func(t *testing.T) {
		b := int64(0)
		allocs := testing.AllocsPerRun(100, func() {
			if !c.Contains(b) {
				t.Fatal("expected hit")
			}
			b = (b + 1) % blocks
		})
		if allocs > 0 {
			t.Errorf("Contains hit: %v allocs/op, want 0", allocs)
		}
	})
	t.Run("insert-evict", func(t *testing.T) {
		next := int64(blocks)
		allocs := testing.AllocsPerRun(100, func() {
			c.Insert(next) // full cache: every insert evicts the LRU block
			next++
		})
		if allocs > 0 {
			t.Errorf("Insert with eviction: %v allocs/op, want 0", allocs)
		}
	})
	t.Run("refresh", func(t *testing.T) {
		allocs := testing.AllocsPerRun(100, func() {
			c.Insert(next(c)) // refresh the current LRU block to the front
		})
		if allocs > 0 {
			t.Errorf("Insert refresh: %v allocs/op, want 0", allocs)
		}
	})
}

// next returns the least recently used block (the refresh target).
func next(c *Cache) int64 {
	return c.entries[c.entries[0].prev].block
}
