package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if c.Contains(5) || c.Peek(5) {
		t.Fatal("nil cache must miss")
	}
	c.Insert(5)     // must not panic
	c.Invalidate(5) // must not panic
	c.InsertRange(0, 8192)
	if c.ContainsRange(0, 8192) {
		t.Fatal("nil cache must miss ranges")
	}
	if c.Len() != 0 || c.CapacityBlocks() != 0 {
		t.Fatal("nil cache has no capacity")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("nil cache stats must be zero")
	}
}

func TestNewSizing(t *testing.T) {
	if New(0) != nil {
		t.Fatal("zero capacity should yield nil cache")
	}
	if New(-5) != nil {
		t.Fatal("negative capacity should yield nil cache")
	}
	if c := New(100); c.CapacityBlocks() != 1 {
		t.Fatalf("sub-block capacity = %d blocks; want 1", c.CapacityBlocks())
	}
	if c := New(10 * BlockSize); c.CapacityBlocks() != 10 {
		t.Fatalf("capacity = %d; want 10", c.CapacityBlocks())
	}
}

func TestHitMissAndLRU(t *testing.T) {
	c := New(3 * BlockSize)
	for b := int64(0); b < 3; b++ {
		if c.Contains(b) {
			t.Fatalf("block %d should miss cold", b)
		}
		c.Insert(b)
	}
	if !c.Contains(0) { // refresh 0: order now 0,2,1
		t.Fatal("block 0 should hit")
	}
	c.Insert(3) // evicts LRU = 1
	if c.Peek(1) {
		t.Fatal("block 1 should have been evicted")
	}
	if !c.Peek(0) || !c.Peek(2) || !c.Peek(3) {
		t.Fatal("blocks 0,2,3 should remain")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Insertions != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("hit/miss = %d/%d", st.Hits, st.Misses)
	}
}

func TestInsertRefreshesWithoutDuplicating(t *testing.T) {
	c := New(2 * BlockSize)
	c.Insert(1)
	c.Insert(1)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Insert(2)
	c.Insert(1) // refresh: 2 becomes LRU
	c.Insert(3)
	if c.Peek(2) {
		t.Fatal("block 2 should have been evicted")
	}
	if !c.Peek(1) {
		t.Fatal("refreshed block 1 should survive")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4 * BlockSize)
	c.Insert(7)
	c.Invalidate(7)
	if c.Peek(7) || c.Len() != 0 {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(99) // absent: no-op
}

func TestRangeOps(t *testing.T) {
	c := New(16 * BlockSize)
	c.InsertRange(8192, 12288) // blocks 2,3,4
	for b := int64(2); b <= 4; b++ {
		if !c.Peek(b) {
			t.Fatalf("block %d missing", b)
		}
	}
	if c.Peek(1) || c.Peek(5) {
		t.Fatal("range insert leaked outside range")
	}
	if !c.ContainsRange(8192, 12288) {
		t.Fatal("full range should hit")
	}
	if c.ContainsRange(8192, 16384) { // extends to block 5: miss
		t.Fatal("partially-cached range should miss")
	}
	if !c.ContainsRange(0, 0) {
		t.Fatal("empty range is trivially contained")
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

// Property: Len never exceeds capacity, and the most recently inserted
// block is always present.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capBlocks := rng.Intn(16) + 1
		c := New(int64(capBlocks) * BlockSize)
		for i := 0; i < 500; i++ {
			b := int64(rng.Intn(64))
			switch rng.Intn(4) {
			case 0:
				c.Invalidate(b)
			case 1:
				c.Contains(b)
			default:
				c.Insert(b)
				if !c.Peek(b) {
					return false
				}
			}
			if c.Len() > capBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := int64(rng.Intn(512))
		if !c.Contains(blk) {
			c.Insert(blk)
		}
	}
}
