package qos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Unlimited marks a timetable slot with no bandwidth cap ("off").
const Unlimited int64 = -1

// Slot is one timetable entry: from Start-of-day onward the tenant's
// rate is Rate bytes per second (Unlimited for "off").
type Slot struct {
	// Start is the offset from midnight at which the slot takes effect.
	Start time.Duration
	// Rate is the bandwidth cap in bytes/second (Unlimited: none).
	Rate int64
}

// Timetable is a cyclic 24-hour bandwidth schedule: the rate in effect
// at time-of-day tod is the last slot whose Start <= tod, wrapping to
// the day's last slot before the first Start (the rclone bwtimetable
// semantics).
type Timetable []Slot

// ParseRate parses a bandwidth figure: a decimal number with an
// optional binary suffix (k/K=KiB, M=MiB, G=GiB) in bytes/second, or
// "off" for no limit. Bare numbers are KiB/s, matching rclone.
func ParseRate(s string) (int64, error) {
	if s == "off" {
		return Unlimited, nil
	}
	mult := int64(1 << 10) // bare figures are KiB/s
	num := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'b', 'B':
			mult = 1
			num = s[:n-1]
		case 'k', 'K':
			mult = 1 << 10
			num = s[:n-1]
		case 'm', 'M':
			mult = 1 << 20
			num = s[:n-1]
		case 'g', 'G':
			mult = 1 << 30
			num = s[:n-1]
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("qos: bad rate %q: %v", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("qos: rate %q must be positive (use \"off\" for no limit)", s)
	}
	return int64(v * float64(mult)), nil
}

// parseTOD parses "HH:MM" into an offset from midnight.
func parseTOD(s string) (time.Duration, error) {
	hh, mm, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("qos: bad time of day %q (want HH:MM)", s)
	}
	h, err := strconv.Atoi(hh)
	if err != nil || h < 0 || h > 23 {
		return 0, fmt.Errorf("qos: bad hour in %q", s)
	}
	m, err := strconv.Atoi(mm)
	if err != nil || m < 0 || m > 59 {
		return 0, fmt.Errorf("qos: bad minute in %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute, nil
}

// ParseTimetable parses a bandwidth schedule: either one bare rate
// ("10M") applying all day, or whitespace-separated "HH:MM,rate" pairs
// ("08:00,10M 18:00,off") with strictly increasing starts. An all-"off"
// schedule is rejected — drop the Bandwidth field instead.
func ParseTimetable(s string) (Timetable, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("qos: empty bandwidth schedule")
	}
	if len(fields) == 1 && !strings.Contains(fields[0], ",") {
		r, err := ParseRate(fields[0])
		if err != nil {
			return nil, err
		}
		if r == Unlimited {
			return nil, fmt.Errorf("qos: schedule %q never limits; leave bandwidth unset instead", s)
		}
		return Timetable{{Start: 0, Rate: r}}, nil
	}
	tt := make(Timetable, 0, len(fields))
	limited := false
	for _, f := range fields {
		tod, rate, ok := strings.Cut(f, ",")
		if !ok {
			return nil, fmt.Errorf("qos: bad schedule entry %q (want HH:MM,rate)", f)
		}
		at, err := parseTOD(tod)
		if err != nil {
			return nil, err
		}
		r, err := ParseRate(rate)
		if err != nil {
			return nil, err
		}
		if n := len(tt); n > 0 && at <= tt[n-1].Start {
			return nil, fmt.Errorf("qos: schedule times must be strictly increasing (%q)", f)
		}
		if r != Unlimited {
			limited = true
		}
		tt = append(tt, Slot{Start: at, Rate: r})
	}
	if !limited {
		return nil, fmt.Errorf("qos: schedule %q never limits; leave bandwidth unset instead", s)
	}
	return tt, nil
}

// RateAt returns the rate in effect at virtual time now (anchored with
// midnight at t=0, repeating every Day).
func (tt Timetable) RateAt(now time.Duration) int64 {
	if len(tt) == 0 {
		return Unlimited
	}
	tod := now % Day
	// Before the first slot of the day the previous day's last slot is
	// still in effect (the schedule is cyclic).
	cur := tt[len(tt)-1].Rate
	for _, s := range tt {
		if s.Start <= tod {
			cur = s.Rate
		} else {
			break
		}
	}
	return cur
}

// nextChange returns the virtual time > now at which the effective
// rate next changes slot (not necessarily value). With a single slot
// the schedule never changes; nextChange returns now+Day as a bound.
func (tt Timetable) nextChange(now time.Duration) time.Duration {
	tod := now % Day
	base := now - tod
	for _, s := range tt {
		if s.Start > tod {
			return base + s.Start
		}
	}
	return base + Day + tt[0].Start
}

// MaxRate returns the schedule's fastest finite rate (sizes the default
// burst). At least one finite rate exists by construction.
func (tt Timetable) MaxRate() int64 {
	var max int64
	for _, s := range tt {
		if s.Rate != Unlimited && s.Rate > max {
			max = s.Rate
		}
	}
	return max
}

// String renders the schedule in its DSL spelling.
func (tt Timetable) String() string {
	if len(tt) == 1 && tt[0].Start == 0 {
		return FormatRate(tt[0].Rate)
	}
	parts := make([]string, len(tt))
	for i, s := range tt {
		parts[i] = fmt.Sprintf("%02d:%02d,%s",
			int(s.Start.Hours()), int(s.Start.Minutes())%60, FormatRate(s.Rate))
	}
	return strings.Join(parts, " ")
}

// FormatRate renders a rate in the parser's spelling ("off", "10M",
// "512k").
func FormatRate(r int64) string {
	switch {
	case r == Unlimited:
		return "off"
	case r >= 1<<30 && r%(1<<30) == 0:
		return fmt.Sprintf("%dG", r>>30)
	case r >= 1<<20 && r%(1<<20) == 0:
		return fmt.Sprintf("%dM", r>>20)
	case r >= 1<<10 && r%(1<<10) == 0:
		return fmt.Sprintf("%dk", r>>10)
	default:
		return fmt.Sprintf("%dB", r)
	}
}
