package qos

import (
	"errors"
	"testing"
	"time"
)

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"off", Unlimited, true},
		{"10M", 10 << 20, true},
		{"512k", 512 << 10, true},
		{"1G", 1 << 30, true},
		{"100", 100 << 10, true}, // bare figures are KiB/s
		{"4096B", 4096, true},
		{"1.5M", 3 << 19, true},
		{"0", 0, false},
		{"-5M", 0, false},
		{"fast", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseRate(%q): err=%v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Errorf("ParseRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseTimetable(t *testing.T) {
	tt, err := ParseTimetable("08:00,10M 18:00,off")
	if err != nil {
		t.Fatal(err)
	}
	if len(tt) != 2 {
		t.Fatalf("got %d slots, want 2", len(tt))
	}
	// Before 08:00 the previous day's last slot (off) is in effect.
	if r := tt.RateAt(6 * time.Hour); r != Unlimited {
		t.Errorf("06:00 rate = %d, want off", r)
	}
	if r := tt.RateAt(9 * time.Hour); r != 10<<20 {
		t.Errorf("09:00 rate = %d, want 10M", r)
	}
	if r := tt.RateAt(23 * time.Hour); r != Unlimited {
		t.Errorf("23:00 rate = %d, want off", r)
	}
	// Cyclic across days.
	if r := tt.RateAt(Day + 9*time.Hour); r != 10<<20 {
		t.Errorf("day+09:00 rate = %d, want 10M", r)
	}

	bare, err := ParseTimetable("4M")
	if err != nil {
		t.Fatal(err)
	}
	if r := bare.RateAt(15 * time.Hour); r != 4<<20 {
		t.Errorf("bare rate = %d, want 4M", r)
	}

	for _, bad := range []string{
		"", "18:00,off", "08:00,10M 08:00,1M", "08:00,10M 06:00,1M",
		"8am,10M", "25:00,10M", "08:61,10M", "08:00;10M", "08:00,zoom",
	} {
		if _, err := ParseTimetable(bad); err == nil {
			t.Errorf("ParseTimetable(%q): want error", bad)
		}
	}
}

func TestTimetableRoundTrip(t *testing.T) {
	for _, s := range []string{"10M", "08:00,10M 18:00,off", "00:30,512k 12:00,1G 23:45,off"} {
		tt, err := ParseTimetable(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := tt.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestBucketSteadyRate(t *testing.T) {
	tt, _ := ParseTimetable("1M") // 1 MiB/s all day
	b := NewBucket(tt, 0, 1)
	// Burst defaults to 1s of rate: the first 1 MiB is free.
	if d := b.Take(0, 1<<20); d != 0 {
		t.Fatalf("burst take delayed %v", d)
	}
	// The next 1 MiB must wait ~1 second.
	d := b.Take(0, 1<<20)
	if d != time.Second {
		t.Fatalf("deficit delay = %v, want 1s", d)
	}
	// After the predicted delay the deficit has drained.
	if d := b.Take(time.Second, 0); d != 0 {
		t.Fatalf("post-drain take delayed %v", d)
	}
	// Tokens accrue while idle, capped at burst.
	b2 := NewBucket(tt, 0, 1)
	b2.Take(0, 1<<20)
	b2.advance(10 * time.Second)
	if b2.Level() != 1<<20 {
		t.Fatalf("level after idle = %d, want burst %d", b2.Level(), 1<<20)
	}
}

func TestBucketOffWindowForgives(t *testing.T) {
	tt, _ := ParseTimetable("08:00,1M 18:00,off")
	b := NewBucket(tt, 0, 1)
	at := 17*time.Hour + 59*time.Minute + 59*time.Second
	b.advance(at)
	// Charge far beyond the remaining second of the limited window: the
	// delay runs only until the off slot opens.
	d := b.Take(at, 100<<20)
	if d != time.Second {
		t.Fatalf("delay into off window = %v, want 1s", d)
	}
	// During the off window everything is free.
	if d := b.Take(20*time.Hour, 100<<20); d != 0 {
		t.Fatalf("off-window take delayed %v", d)
	}
}

func TestBucketShardShare(t *testing.T) {
	tt, _ := ParseTimetable("2M")
	full := NewBucket(tt, 0, 1)
	half := NewBucket(tt, 0, 2)
	full.Take(0, 2<<20) // drain burst
	half.Take(0, 1<<20) // drain scaled burst
	df := full.Take(0, 2<<20)
	dh := half.Take(0, 1<<20)
	if df != time.Second || dh != time.Second {
		t.Fatalf("full=%v half=%v, want 1s each (rate and burst both halved)", df, dh)
	}
}

func TestBucketDeepDeficitDaySkip(t *testing.T) {
	tt, _ := ParseTimetable("08:00,1M 18:00,4k") // no off slot
	b := NewBucket(tt, 0, 1)
	b.advance(9 * time.Hour)
	d := b.Take(9*time.Hour, 200<<30) // far beyond a day's budget
	if d <= Day {
		t.Fatalf("deep deficit delay = %v, want > a day", d)
	}
	// Determinism: same sequence, same delay.
	b2 := NewBucket(tt, 0, 1)
	b2.advance(9 * time.Hour)
	if d2 := b2.Take(9*time.Hour, 200<<30); d2 != d {
		t.Fatalf("replayed delay %v != %v", d2, d)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := &Config{Tenants: map[string]Tenant{
		"alice": {Class: ClassLatency, Bandwidth: "08:00,10M 18:00,off"},
		"bob":   {Class: ClassBulk, Bandwidth: "1M", MaxDeferred: 8},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]*Config{
		"bad schedule":  {Tenants: map[string]Tenant{"a": {Bandwidth: "zoom"}}},
		"neg burst":     {Tenants: map[string]Tenant{"a": {BurstBytes: -1}}},
		"neg deferred":  {Tenants: map[string]Tenant{"a": {MaxDeferred: -1}}},
		"bad class":     {Tenants: map[string]Tenant{"a": {Class: 9}}},
		"empty name":    {Tenants: map[string]Tenant{"": {}}},
		"all-off sched": {Tenants: map[string]Tenant{"a": {Bandwidth: "00:00,off"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestConfigQueries(t *testing.T) {
	c := &Config{
		Strict: true,
		Tenants: map[string]Tenant{
			"alice": {Class: ClassLatency},
			"bob":   {Bandwidth: "1M"},
		},
	}
	if c.ClassOf("alice") != ClassLatency || c.ClassOf("bob") != ClassStandard {
		t.Fatal("ClassOf mismatch")
	}
	if !c.Known("alice") || !c.Known("") || c.Known("mallory") {
		t.Fatal("Known mismatch")
	}
	if !c.Shaped() || !c.Prioritized() {
		t.Fatal("Shaped/Prioritized should be true")
	}
	if got := c.Names(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Names = %v", got)
	}
	bk, err := c.Bucket("bob", 1)
	if err != nil || bk == nil {
		t.Fatalf("Bucket(bob) = %v, %v", bk, err)
	}
	if bk, err := c.Bucket("alice", 1); err != nil || bk != nil {
		t.Fatalf("Bucket(alice) = %v, %v (want nil, no schedule)", bk, err)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": ClassStandard, "standard": ClassStandard, "latency": ClassLatency, "bulk": ClassBulk} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("turbo"); err == nil {
		t.Error("ParseClass(turbo): want error")
	}
	if ClassLatency.String() != "latency" || ClassBulk.String() != "bulk" || ClassStandard.String() != "standard" {
		t.Error("Class.String mismatch")
	}
}

func TestSentinels(t *testing.T) {
	if !errors.Is(ErrUnknownTenant, ErrUnknownTenant) || errors.Is(ErrUnknownTenant, ErrAdmissionRejected) {
		t.Fatal("sentinel identity broken")
	}
}
