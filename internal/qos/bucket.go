package qos

import (
	"time"
)

const nanos = int64(time.Second)

// maxBurst bounds the token bucket so byte*nanosecond arithmetic stays
// in int64 range.
const maxBurst = 8 << 30

// Bucket is a token-bucket bandwidth shaper driven by a Timetable,
// operating entirely in virtual time: Take charges bytes against the
// bucket and returns how long the request must be delayed to respect
// the schedule. All arithmetic is integral, so identical call sequences
// produce identical delays — the property replay determinism needs.
//
// A Bucket is not goroutine-safe; each pipeline (shard) owns its own.
// Sharded pipelines pass share=n so each of the n buckets enforces
// rate/n, approximating the tenant-global cap without cross-shard
// coordination.
type Bucket struct {
	tt    Timetable
	share int64
	burst int64         // bytes; bucket capacity
	level int64         // bytes; negative = charged-ahead deficit
	last  time.Duration // virtual time tokens were last accrued
}

// NewBucket builds a bucket over a parsed schedule. burstBytes <= 0
// defaults to one second of the schedule's fastest rate; share > 1
// scales rate and burst down for sharded enforcement.
func NewBucket(tt Timetable, burstBytes int64, share int) *Bucket {
	sh := int64(share)
	if sh < 1 {
		sh = 1
	}
	b := burstBytes
	if b <= 0 {
		b = tt.MaxRate()
	}
	b /= sh
	if b < 1 {
		b = 1
	}
	if b > maxBurst {
		b = maxBurst
	}
	return &Bucket{tt: tt, share: sh, burst: b, level: b}
}

// rateAt returns the shard-scaled rate in effect at now.
func (b *Bucket) rateAt(now time.Duration) int64 {
	r := b.tt.RateAt(now)
	if r == Unlimited {
		return Unlimited
	}
	r /= b.share
	if r < 1 {
		r = 1
	}
	return r
}

// nsFor returns the nanoseconds needed to move n bytes at r bytes/sec,
// rounded up, without overflowing the intermediate product.
func nsFor(n, r int64) int64 {
	return (n/r)*nanos + ((n%r)*nanos+r-1)/r
}

// bytesFor returns the bytes accrued over dt nanoseconds at r
// bytes/sec, rounded down, without overflowing.
func bytesFor(r, dt int64) int64 {
	return r*(dt/nanos) + r*(dt%nanos)/nanos
}

// advance accrues tokens from the last update to now, walking the
// schedule segment by segment. An "off" segment refills the bucket
// instantly (and forgives any deficit): unlimited periods do not carry
// debt forward.
func (b *Bucket) advance(now time.Duration) {
	if now <= b.last {
		return
	}
	t := b.last
	for t < now && b.level < b.burst {
		segEnd := b.tt.nextChange(t)
		if segEnd > now {
			segEnd = now
		}
		if r := b.rateAt(t); r == Unlimited {
			b.level = b.burst
		} else {
			need := b.burst - b.level
			if dt := int64(segEnd - t); dt >= nsFor(need, r) {
				b.level = b.burst
			} else {
				b.level += bytesFor(r, dt)
			}
		}
		t = segEnd
	}
	b.last = now
}

// Take charges n bytes at virtual time now. The returned delay is how
// long admission must be postponed for the schedule to cover the
// charge (0: admit immediately). The charge lands on first call —
// callers reschedule the request once by the returned delay and admit
// it unconditionally when it re-arrives.
func (b *Bucket) Take(now time.Duration, n int64) time.Duration {
	b.advance(now)
	if b.rateAt(now) == Unlimited {
		return 0 // off period: unlimited, bucket already refilled
	}
	b.level -= n
	if b.level >= 0 {
		return 0
	}
	return b.refillDelay(now)
}

// refillDelay predicts when the deficit clears, walking future
// schedule segments (with a whole-day fast path for deep deficits).
func (b *Bucket) refillDelay(now time.Duration) time.Duration {
	deficit := -b.level
	t := now
	daily, hasOff := b.dailyCapacity()
	if !hasOff && deficit > daily && len(b.tt) > 1 {
		days := deficit / daily
		t += time.Duration(days) * Day
		deficit -= days * daily
		if deficit <= 0 {
			deficit = 1
		}
	}
	for {
		r := b.rateAt(t)
		if r == Unlimited {
			// The off slot refills the bucket the moment it starts.
			return t - now
		}
		segEnd := b.tt.nextChange(t)
		dt := int64(segEnd - t)
		if fill := nsFor(deficit, r); fill <= dt || len(b.tt) == 1 {
			return t - now + time.Duration(fill)
		}
		deficit -= bytesFor(r, dt)
		if deficit <= 0 {
			return segEnd - now
		}
		t = segEnd
	}
}

// dailyCapacity sums one full day's shard-scaled byte budget; hasOff
// reports an unlimited slot (infinite capacity).
func (b *Bucket) dailyCapacity() (bytes int64, hasOff bool) {
	base := time.Duration(0)
	t := base
	for t < Day {
		r := b.rateAt(t)
		segEnd := b.tt.nextChange(t)
		if segEnd > Day {
			segEnd = Day
		}
		if r == Unlimited {
			hasOff = true
		} else {
			bytes += bytesFor(r, int64(segEnd-t))
		}
		t = segEnd
	}
	if bytes < 1 {
		bytes = 1
	}
	return bytes, hasOff
}

// Level returns the current token level in bytes (negative while a
// charged-ahead deficit drains) without accruing.
func (b *Bucket) Level() int64 { return b.level }
