// Package qos implements multi-tenant quality of service for the EDC
// pipeline: per-tenant traffic classes, token-bucket bandwidth shaping
// with an rclone-style time-of-day schedule, and priority admission.
// Everything operates in virtual time so replay and serve runs stay
// byte-deterministic.
package qos

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Typed sentinels. Callers branch with errors.Is.
var (
	// ErrUnknownTenant reports a request tagged with a tenant absent
	// from a strict Config.
	ErrUnknownTenant = errors.New("qos: unknown tenant")
	// ErrAdmissionRejected reports a request refused admission because
	// its tenant exceeded the configured queue depth.
	ErrAdmissionRejected = errors.New("qos: admission rejected")
)

// Class is a tenant's traffic class, ordering admission when the
// pipeline is saturated.
type Class uint8

// The three traffic classes, in admission-priority order.
const (
	// ClassStandard is the default best-effort class.
	ClassStandard Class = iota
	// ClassLatency marks latency-sensitive tenants: their deferred
	// requests preempt the standard FIFO.
	ClassLatency
	// ClassBulk marks throughput-oriented background tenants: admitted
	// only after standard and latency queues drain.
	ClassBulk
)

// String returns the class's DSL spelling.
func (c Class) String() string {
	switch c {
	case ClassLatency:
		return "latency"
	case ClassBulk:
		return "bulk"
	default:
		return "standard"
	}
}

// ParseClass parses a DSL class name ("standard", "latency", "bulk").
func ParseClass(s string) (Class, error) {
	switch s {
	case "standard", "":
		return ClassStandard, nil
	case "latency":
		return ClassLatency, nil
	case "bulk":
		return ClassBulk, nil
	default:
		return ClassStandard, fmt.Errorf("qos: unknown class %q (valid: standard, latency, bulk)", s)
	}
}

// Tenant configures one tenant's QoS treatment.
type Tenant struct {
	// Class orders this tenant's deferred requests against other
	// tenants' when the closed-loop bound is hit.
	Class Class `json:"class,omitempty"`
	// Bandwidth is a time-of-day bandwidth schedule in the rclone
	// bwtimetable idiom: either a single rate ("10M") applying all day,
	// or space-separated "HH:MM,rate" pairs ("08:00,10M 18:00,off").
	// "off" means unlimited. Empty disables shaping for the tenant.
	Bandwidth string `json:"bandwidth,omitempty"`
	// BurstBytes sizes the shaper's token bucket (0: one second of the
	// schedule's fastest rate).
	BurstBytes int64 `json:"burst_bytes,omitempty"`
	// MaxDeferred bounds this tenant's deferred-queue depth; requests
	// beyond it are rejected with ErrAdmissionRejected (0: unlimited).
	MaxDeferred int `json:"max_deferred,omitempty"`
}

// Config is the facade-level QoS configuration: the tenant table plus
// global knobs.
type Config struct {
	// Tenants maps tenant name to treatment. Requests tagged with a
	// tenant not in the map get zero-value treatment (standard class,
	// no shaping) unless Strict is set.
	Tenants map[string]Tenant `json:"tenants,omitempty"`
	// Strict rejects requests tagged with a tenant absent from Tenants
	// (ErrUnknownTenant). Untagged requests are always admitted.
	Strict bool `json:"strict,omitempty"`
	// Isolate evaluates the elastic policy against the submitting
	// tenant's own calculated-IOPS window instead of the device-global
	// signal, so one tenant's burst cannot force write-through for
	// everyone. Off, QoS still shapes, prioritizes, and reports per
	// tenant, but codec selection stays global.
	Isolate bool `json:"isolate,omitempty"`
}

// Validate checks the tenant table: parseable bandwidth schedules,
// non-negative bursts and queue depths. Tenants are checked in sorted
// name order so the first error is deterministic.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	names := make([]string, 0, len(c.Tenants))
	for name := range c.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.Tenants[name]
		if name == "" {
			return errors.New("qos: empty tenant name")
		}
		if t.BurstBytes < 0 {
			return fmt.Errorf("qos: tenant %q: negative burst %d", name, t.BurstBytes)
		}
		if t.MaxDeferred < 0 {
			return fmt.Errorf("qos: tenant %q: negative max deferred %d", name, t.MaxDeferred)
		}
		if t.Class > ClassBulk {
			return fmt.Errorf("qos: tenant %q: unknown class %d", name, t.Class)
		}
		if t.Bandwidth != "" {
			if _, err := ParseTimetable(t.Bandwidth); err != nil {
				return fmt.Errorf("qos: tenant %q: %w", name, err)
			}
		}
	}
	return nil
}

// ClassOf resolves a tenant's class (zero value for unknown tenants).
func (c *Config) ClassOf(tenant string) Class {
	if c == nil {
		return ClassStandard
	}
	return c.Tenants[tenant].Class
}

// Known reports whether the tenant appears in the table (or the tag is
// empty, which is always admitted).
func (c *Config) Known(tenant string) bool {
	if c == nil || !c.Strict || tenant == "" {
		return true
	}
	_, ok := c.Tenants[tenant]
	return ok
}

// Shaped reports whether any tenant has a bandwidth schedule — lets
// the pipeline skip bucket bookkeeping entirely when nothing shapes.
func (c *Config) Shaped() bool {
	if c == nil {
		return false
	}
	for _, t := range c.Tenants {
		if t.Bandwidth != "" {
			return true
		}
	}
	return false
}

// Prioritized reports whether any tenant leaves the standard class —
// the pipeline keeps the plain FIFO when all classes are equal.
func (c *Config) Prioritized() bool {
	if c == nil {
		return false
	}
	for _, t := range c.Tenants {
		if t.Class != ClassStandard {
			return true
		}
	}
	return false
}

// Names returns the configured tenant names in sorted order.
func (c *Config) Names() []string {
	if c == nil {
		return nil
	}
	names := make([]string, 0, len(c.Tenants))
	for name := range c.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Bucket builds the tenant's token bucket, or nil when the tenant has
// no bandwidth schedule. share scales the rate for sharded pipelines
// (each of n shards enforces rate/n); share <= 1 means the full rate.
func (c *Config) Bucket(tenant string, share int) (*Bucket, error) {
	if c == nil {
		return nil, nil
	}
	t, ok := c.Tenants[tenant]
	if !ok || t.Bandwidth == "" {
		return nil, nil
	}
	tt, err := ParseTimetable(t.Bandwidth)
	if err != nil {
		return nil, err
	}
	return NewBucket(tt, t.BurstBytes, share), nil
}

// Day is the schedule period: timetables repeat every 24 hours of
// virtual time, with virtual t=0 anchored at midnight.
const Day = 24 * time.Hour
