package workload

// Open-loop serving workloads: where the MMPP Profile above synthesizes
// whole traces for deterministic replay, the Spec/Stream machinery below
// generates operations on the fly for serve mode — each client worker
// owns a seeded Stream producing (intended arrival, offset, size,
// direction) tuples at its share of the offered rate, so the aggregate
// arrival process hits the configured QPS regardless of how fast the
// system under test completes operations (the defining property of an
// open-loop benchmark).

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"edc/internal/qos"
)

// ArrivalKind selects a step's interarrival process.
type ArrivalKind int

// Arrival processes: Poisson (exponential interarrivals, the memoryless
// default matching classic open-loop load generators) and uniform
// (deterministic equal spacing, workers phase-staggered so the aggregate
// stays smooth).
const (
	ArrivalPoisson ArrivalKind = iota
	ArrivalUniform
)

// String names the arrival kind as the spec DSL spells it.
func (a ArrivalKind) String() string {
	if a == ArrivalUniform {
		return "uniform"
	}
	return "poisson"
}

// KeyKind selects a step's key-pick distribution.
type KeyKind int

// Key distributions: uniform over the volume's blocks, or YCSB-style
// bounded zipfian with skew theta in (0, 1).
const (
	KeyUniform KeyKind = iota
	KeyZipfian
)

// KeyChoice is one direction's key distribution: the kind plus the
// zipfian skew (ignored for uniform).
type KeyChoice struct {
	Kind  KeyKind
	Theta float64
}

// String names the key choice as the spec DSL spells it.
func (k KeyChoice) String() string {
	if k.Kind == KeyZipfian {
		return fmt.Sprintf("zipfian-%g", k.Theta)
	}
	return "uniform"
}

// Step is one phase of an open-loop workload: for D of virtual time,
// offer QPS operations per second with read fraction RW, arrivals drawn
// from AD, read offsets from RKD, write offsets from WKD, each operation
// BS bytes.
type Step struct {
	D   time.Duration // step duration in virtual time
	QPS float64       // aggregate offered arrival rate (ops/sec)
	RW  float64       // fraction of operations that are reads, in [0, 1]
	AD  ArrivalKind   // interarrival process
	RKD KeyChoice     // read key distribution
	WKD KeyChoice     // write key distribution
	BS  int64         // operation size in bytes

	// Dup / DupUniverse set the payload generator's content-duplication
	// knobs (datagen.Profile.WithDup): a Dup fraction of content regions
	// are clones drawn from a pool of DupUniverse distinct payloads.
	// Payload content is a property of the serving device, not of a
	// phase, so the knob is spec-global: the first step's values apply
	// to the whole run and Validate rejects a mid-spec change.
	Dup         float64
	DupUniverse int

	// Tenant names the tenant submitting this step's operations for
	// multi-tenant QoS; empty means untagged (the pre-tenant behavior).
	// Class ("standard", "latency", "bulk") and BW (an rclone-style
	// time-of-day bandwidth schedule, '+'-separated in the DSL) describe
	// the tenant's QoS treatment; both require Tenant and must not
	// change between a tenant's steps. The json tags keep untagged
	// specs' serialized form identical to the pre-tenant encoding.
	Tenant string `json:"Tenant,omitempty"`
	Class  string `json:"Class,omitempty"`
	BW     string `json:"BW,omitempty"`
}

// Spec is a multi-step open-loop workload, executed in order.
type Spec []Step

// Duration sums the steps' virtual durations.
func (s Spec) Duration() time.Duration {
	var d time.Duration
	for _, st := range s {
		d += st.D
	}
	return d
}

// Validate checks every step for usability against a volume size.
func (s Spec) Validate(volumeBytes int64) error {
	if len(s) == 0 {
		return fmt.Errorf("workload: empty spec")
	}
	for i, st := range s {
		switch {
		case st.D <= 0:
			return fmt.Errorf("workload: step %d: duration %v must be positive", i+1, st.D)
		case st.QPS <= 0:
			return fmt.Errorf("workload: step %d: qps %g must be positive", i+1, st.QPS)
		case st.RW < 0 || st.RW > 1:
			return fmt.Errorf("workload: step %d: rw %g out of [0,1]", i+1, st.RW)
		case st.BS <= 0:
			return fmt.Errorf("workload: step %d: block size %d must be positive", i+1, st.BS)
		case volumeBytes > 0 && st.BS > volumeBytes:
			return fmt.Errorf("workload: step %d: block size %d exceeds volume %d", i+1, st.BS, volumeBytes)
		}
		for _, kc := range []KeyChoice{st.RKD, st.WKD} {
			if kc.Kind == KeyZipfian && (kc.Theta <= 0 || kc.Theta >= 1) {
				return fmt.Errorf("workload: step %d: zipfian theta %g out of (0,1)", i+1, kc.Theta)
			}
		}
		if st.Dup < 0 || st.Dup > 1 {
			return fmt.Errorf("workload: step %d: dup %g out of [0,1]", i+1, st.Dup)
		}
		if st.DupUniverse < 0 {
			return fmt.Errorf("workload: step %d: dup universe %d must be non-negative", i+1, st.DupUniverse)
		}
		if i > 0 && (st.Dup != s[0].Dup || st.DupUniverse != s[0].DupUniverse) {
			return fmt.Errorf("workload: step %d: dup knobs cannot change mid-spec (payload content is a device property, not a phase property)", i+1)
		}
		if st.Tenant == "" && (st.Class != "" || st.BW != "") {
			return fmt.Errorf("workload: step %d: class/bw require tenant", i+1)
		}
		if _, err := qos.ParseClass(st.Class); err != nil {
			return fmt.Errorf("workload: step %d: %v", i+1, err)
		}
		if st.BW != "" {
			if _, err := qos.ParseTimetable(st.BW); err != nil {
				return fmt.Errorf("workload: step %d: %v", i+1, err)
			}
		}
	}
	// A tenant's QoS treatment is a tenant property, not a phase
	// property: class/bw must agree across all of a tenant's steps.
	seen := map[string]Step{}
	for i, st := range s {
		if st.Tenant == "" {
			continue
		}
		if prev, ok := seen[st.Tenant]; ok {
			if prev.Class != st.Class || prev.BW != st.BW {
				return fmt.Errorf("workload: step %d: tenant %q changes class/bw mid-spec", i+1, st.Tenant)
			}
		} else {
			seen[st.Tenant] = st
		}
	}
	return nil
}

// TenantSteps is one tenant's slice of a multi-tenant Spec: the steps
// in spec order, each step's index in the original spec, and the
// tenant's own virtual timeline (each tenant's first step starts at
// t=0 — tenants run concurrently, not sequentially).
type TenantSteps struct {
	// Tenant is the tenant name ("" for the untagged stream).
	Tenant string
	// Steps is the tenant's sub-spec, timeline starting at zero.
	Steps Spec
	// Index maps each sub-spec step back to its index in the original.
	Index []int
}

// ByTenant splits the spec into per-tenant sub-specs in order of first
// appearance. A single-tenant (or untagged) spec returns one entry
// containing the whole spec, so callers can treat every spec uniformly.
func (s Spec) ByTenant() []TenantSteps {
	var out []TenantSteps
	at := map[string]int{}
	for i, st := range s {
		j, ok := at[st.Tenant]
		if !ok {
			j = len(out)
			at[st.Tenant] = j
			out = append(out, TenantSteps{Tenant: st.Tenant})
		}
		out[j].Steps = append(out[j].Steps, st)
		out[j].Index = append(out[j].Index, i)
	}
	return out
}

// QoSConfig derives a qos.Config from the spec's tenant annotations:
// one tenant entry per tagged tenant, carrying its class= and bw=
// values. Specs without annotations (or with only bare tenant= tags)
// return nil — nothing to configure. The spec must have passed
// Validate.
func (s Spec) QoSConfig() *qos.Config {
	tenants := map[string]qos.Tenant{}
	any := false
	for _, st := range s {
		if st.Tenant == "" {
			continue
		}
		if _, ok := tenants[st.Tenant]; ok {
			continue
		}
		cls, _ := qos.ParseClass(st.Class)
		tenants[st.Tenant] = qos.Tenant{Class: cls, Bandwidth: st.BW}
		if st.Class != "" || st.BW != "" {
			any = true
		}
	}
	if !any {
		return nil
	}
	return &qos.Config{Tenants: tenants}
}

// Op is one generated open-loop operation.
type Op struct {
	At     time.Duration // intended virtual arrival (from serve start)
	Off    int64         // volume byte offset
	Size   int64         // length in bytes
	Write  bool
	Step   int    // index of the producing spec step
	Tenant string // submitting tenant ("" untagged)
}

// splitmix64 is the SplitMix64 finalizer: a cheap high-quality bijection
// used to derive per-worker seeds and to scramble zipfian ranks into
// scattered block addresses (YCSB's scrambled-zipfian construction).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyPicker draws block indices in [0, n).
type keyPicker interface {
	pick(rng *rand.Rand) int64
}

// uniformKeys draws uniformly over the n blocks.
type uniformKeys struct{ n int64 }

func (u uniformKeys) pick(rng *rand.Rand) int64 { return rng.Int63n(u.n) }

// zipfKeys is the YCSB bounded zipfian over n items with skew theta in
// (0, 1) — Go's rand.Zipf requires s > 1 and cannot express this range.
// Ranks are scrambled through splitmix64 so the hot keys scatter across
// the volume instead of clustering at offset zero.
type zipfKeys struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// newZipfKeys precomputes the zeta terms (Gray et al.'s incremental
// formulas as used by YCSB's ZipfianGenerator).
func newZipfKeys(n int64, theta float64) zipfKeys {
	var zetan float64
	for i := int64(1); i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	return zipfKeys{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
	}
}

func (z zipfKeys) pick(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	var rank int64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	return int64(splitmix64(uint64(rank)) % uint64(z.n))
}

// newKeyPicker builds the picker for one direction of one step.
func newKeyPicker(kc KeyChoice, nBlocks int64) keyPicker {
	if kc.Kind == KeyZipfian {
		return newZipfKeys(nBlocks, kc.Theta)
	}
	return uniformKeys{n: nBlocks}
}

// Stream generates one worker's share of an open-loop Spec: worker w of
// W offers QPS/W operations per second, with all randomness drawn from a
// private generator seeded by (seed, worker) — the produced operation
// sequence is a pure function of those inputs, independent of goroutine
// scheduling or how fast the served system completes work.
type Stream struct {
	spec    Spec
	vol     int64
	rng     *rand.Rand
	worker  int
	workers int

	step  int           // current step index
	base  time.Duration // virtual start of the current step
	at    time.Duration // last arrival within the current step
	reads keyPicker
	wris  keyPicker
}

// NewStream validates the spec and builds worker w of W (0 <= w < W).
func NewStream(spec Spec, volumeBytes int64, seed int64, worker, workers int) (*Stream, error) {
	if err := spec.Validate(volumeBytes); err != nil {
		return nil, err
	}
	if volumeBytes <= 0 {
		return nil, fmt.Errorf("workload: volume %d must be positive", volumeBytes)
	}
	if workers < 1 || worker < 0 || worker >= workers {
		return nil, fmt.Errorf("workload: worker %d of %d out of range", worker, workers)
	}
	s := &Stream{
		spec:    spec,
		vol:     volumeBytes,
		rng:     rand.New(rand.NewSource(int64(splitmix64(uint64(seed)) ^ splitmix64(uint64(worker)+0x51ed2701)))),
		worker:  worker,
		workers: workers,
		step:    -1,
	}
	s.enter(0)
	return s, nil
}

// enter positions the stream at the start of step i.
func (s *Stream) enter(i int) {
	st := s.spec[i]
	if s.step >= 0 {
		s.base += s.spec[s.step].D
	}
	s.step = i
	s.at = 0
	nBlocks := s.vol / st.BS
	if nBlocks < 1 {
		nBlocks = 1
	}
	s.reads = newKeyPicker(st.RKD, nBlocks)
	s.wris = newKeyPicker(st.WKD, nBlocks)
	if st.AD == ArrivalUniform {
		// Phase-stagger the workers so W uniform trains interleave into
		// one smooth aggregate instead of W-wide arrival spikes. at sits
		// one spacing before the first arrival, so Next's unconditional
		// advance lands worker w's train at phase w/W of the spacing.
		spacing := time.Duration(float64(s.workers) / st.QPS * float64(time.Second))
		phase := spacing * time.Duration(s.worker) / time.Duration(s.workers)
		s.at = phase - spacing
	}
}

// Next returns the next operation, or ok=false when the spec is
// exhausted.
func (s *Stream) Next() (op Op, ok bool) {
	for {
		st := s.spec[s.step]
		rate := st.QPS / float64(s.workers)
		var dt time.Duration
		if st.AD == ArrivalUniform {
			dt = time.Duration(1 / rate * float64(time.Second))
		} else {
			dt = time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
		}
		s.at += dt
		if s.at >= st.D {
			if s.step+1 >= len(s.spec) {
				return Op{}, false
			}
			s.enter(s.step + 1)
			continue
		}
		write := s.rng.Float64() >= st.RW
		var blk int64
		if write {
			blk = s.wris.pick(s.rng)
		} else {
			blk = s.reads.pick(s.rng)
		}
		off := blk * st.BS
		if off+st.BS > s.vol {
			off = s.vol - st.BS
		}
		return Op{
			At:     s.base + s.at,
			Off:    off,
			Size:   st.BS,
			Write:  write,
			Step:   s.step,
			Tenant: st.Tenant,
		}, true
	}
}
