package workload

import (
	"math"
	"sort"
	"testing"
	"time"
)

// oneStep is a single-step spec for the statistical tests.
func oneStep(d time.Duration, qps, rw float64, ad ArrivalKind, rkd, wkd KeyChoice) Spec {
	return Spec{{D: d, QPS: qps, RW: rw, AD: ad, RKD: rkd, WKD: wkd, BS: 4096}}
}

// collect drains a stream into a slice.
func collect(t *testing.T, spec Spec, vol, seed int64, worker, workers int) []Op {
	t.Helper()
	s, err := NewStream(spec, vol, seed, worker, workers)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// TestPoissonInterarrivals checks the exponential interarrival law: the
// sample mean tracks 1/rate and the coefficient of variation tracks 1
// (the memoryless signature a uniform process would fail).
func TestPoissonInterarrivals(t *testing.T) {
	const qps = 2000.0
	spec := oneStep(10*time.Second, qps, 0.5, ArrivalPoisson,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyUniform})
	ops := collect(t, spec, 1<<26, 42, 0, 1)
	if len(ops) < 10000 {
		t.Fatalf("only %d ops generated", len(ops))
	}
	var gaps []float64
	for i := 1; i < len(ops); i++ {
		gaps = append(gaps, float64(ops[i].At-ops[i-1].At)/float64(time.Second))
	}
	mean, sd := meanStd(gaps)
	want := 1 / qps
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean interarrival %.6fs, want %.6fs ±5%%", mean, want)
	}
	if cv := sd / mean; math.Abs(cv-1) > 0.05 {
		t.Errorf("interarrival CV %.3f, want ~1 (exponential)", cv)
	}
}

// TestUniformInterarrivals checks deterministic spacing: every gap is
// exactly workers/qps, and two workers' trains are phase-staggered.
func TestUniformInterarrivals(t *testing.T) {
	const qps = 1000.0
	spec := oneStep(time.Second, qps, 0.5, ArrivalUniform,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyUniform})
	a := collect(t, spec, 1<<26, 1, 0, 2)
	b := collect(t, spec, 1<<26, 1, 1, 2)
	spacing := time.Duration(2 / qps * float64(time.Second))
	for i := 1; i < len(a); i++ {
		if got := a[i].At - a[i-1].At; got != spacing {
			t.Fatalf("worker 0 gap %v, want %v", got, spacing)
		}
	}
	if len(b) == 0 || b[0].At != a[0].At+spacing/2 {
		t.Fatalf("worker 1 phase %v, want %v", b[0].At, a[0].At+spacing/2)
	}
}

// TestReadWriteMix checks the rw fraction over a large sample.
func TestReadWriteMix(t *testing.T) {
	const rw = 0.3
	spec := oneStep(20*time.Second, 2500, rw, ArrivalPoisson,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyUniform})
	ops := collect(t, spec, 1<<26, 7, 0, 1)
	reads := 0
	for _, op := range ops {
		if !op.Write {
			reads++
		}
	}
	got := float64(reads) / float64(len(ops))
	if math.Abs(got-rw) > 0.02 {
		t.Errorf("read fraction %.3f over %d ops, want %.2f ±0.02", got, len(ops), rw)
	}
}

// TestZipfianSlope checks the rank-frequency law: sorting block
// frequencies descending, log(freq) against log(rank) regresses to a
// slope of -theta (scrambling is a bijection, so the sorted frequency
// profile is exactly the unscrambled zipfian's).
func TestZipfianSlope(t *testing.T) {
	const theta = 0.99
	vol := int64(1024 * 4096) // 1024 blocks
	spec := oneStep(40*time.Second, 5000, 0, ArrivalPoisson,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyZipfian, Theta: theta})
	ops := collect(t, spec, vol, 99, 0, 1)
	freq := make(map[int64]int)
	for _, op := range ops {
		freq[op.Off/4096]++
	}
	counts := make([]int, 0, len(freq))
	for _, n := range freq {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// Regress over the top ranks, where the bounded zipfian matches the
	// pure power law best.
	var xs, ys []float64
	for i := 0; i < 64 && i < len(counts); i++ {
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(counts[i])))
	}
	slope := fitSlope(xs, ys)
	if math.Abs(slope-(-theta)) > 0.15 {
		t.Errorf("rank-frequency slope %.3f over %d ops, want %.2f ±0.15", slope, len(ops), -theta)
	}
	// The skew must concentrate mass: the hottest block of 1024 gets far
	// more than the uniform share.
	if float64(counts[0]) < 20*float64(len(ops))/1024 {
		t.Errorf("hottest block got %d of %d ops — no visible skew", counts[0], len(ops))
	}
}

// TestZipfianScramble checks the hot ranks scatter across the volume
// instead of clustering at offset zero.
func TestZipfianScramble(t *testing.T) {
	z := newZipfKeys(1<<16, 0.99)
	spec := oneStep(5*time.Second, 2000, 0, ArrivalPoisson,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyZipfian, Theta: 0.99})
	vol := int64(1<<16) * 4096
	ops := collect(t, spec, vol, 3, 0, 1)
	low := 0
	for _, op := range ops {
		if op.Off < vol/4 {
			low++
		}
	}
	// Unscrambled zipfian would put nearly all mass in the first quarter;
	// scrambled should be roughly proportional.
	if frac := float64(low) / float64(len(ops)); frac > 0.5 {
		t.Errorf("%.0f%% of zipfian ops landed in the first quarter of the volume — ranks not scrambled", 100*frac)
	}
	_ = z
}

// TestStreamDeterminism checks the same (seed, worker) produces the
// byte-identical operation sequence, and different workers diverge.
func TestStreamDeterminism(t *testing.T) {
	spec, err := ParseSpec("d=2s qps=800 rw=0.4 ad=poisson rkd=zipfian-0.9 wkd=uniform bs=8192\nd=1s qps=1600 ad=uniform")
	if err != nil {
		t.Fatal(err)
	}
	vol := int64(1 << 26)
	a := collect(t, spec, vol, 1234, 2, 4)
	b := collect(t, spec, vol, 1234, 2, 4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(t, spec, vol, 1234, 3, 4)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("workers 2 and 3 produced identical streams")
	}
}

// TestStreamSteps checks multi-step progression: arrival stamps are
// monotone, stay within each step's window, and the per-step offered
// rate shifts with qps.
func TestStreamSteps(t *testing.T) {
	spec, err := ParseSpec("d=2s qps=500\nqps=2000 d=2s")
	if err != nil {
		t.Fatal(err)
	}
	ops := collect(t, spec, 1<<26, 5, 0, 1)
	var n0, n1 int
	var last time.Duration
	for _, op := range ops {
		if op.At < last {
			t.Fatalf("arrival went backwards: %v after %v", op.At, last)
		}
		last = op.At
		switch op.Step {
		case 0:
			n0++
			if op.At >= 2*time.Second {
				t.Fatalf("step-0 op stamped %v, beyond the step window", op.At)
			}
		case 1:
			n1++
			if op.At < 2*time.Second || op.At >= 4*time.Second {
				t.Fatalf("step-1 op stamped %v, outside [2s,4s)", op.At)
			}
		}
	}
	if n0 < 800 || n0 > 1200 {
		t.Errorf("step 0 produced %d ops, want ~1000", n0)
	}
	if n1 < 3500 || n1 > 4500 {
		t.Errorf("step 1 produced %d ops, want ~4000", n1)
	}
}

// TestNewStreamValidation covers the constructor error paths.
func TestNewStreamValidation(t *testing.T) {
	good := oneStep(time.Second, 100, 0.5, ArrivalPoisson,
		KeyChoice{Kind: KeyUniform}, KeyChoice{Kind: KeyUniform})
	for _, tc := range []struct {
		name  string
		spec  Spec
		vol   int64
		w, ws int
	}{
		{"empty spec", Spec{}, 1 << 20, 0, 1},
		{"zero qps", Spec{{D: time.Second, BS: 4096}}, 1 << 20, 0, 1},
		{"zero duration", Spec{{QPS: 10, BS: 4096}}, 1 << 20, 0, 1},
		{"bad theta", Spec{{D: time.Second, QPS: 10, BS: 4096,
			RKD: KeyChoice{Kind: KeyZipfian, Theta: 1.5}}}, 1 << 20, 0, 1},
		{"bs over volume", Spec{{D: time.Second, QPS: 10, BS: 1 << 21}}, 1 << 20, 0, 1},
		{"worker out of range", good, 1 << 20, 4, 4},
		{"zero workers", good, 1 << 20, 0, 0},
	} {
		if _, err := NewStream(tc.spec, tc.vol, 1, tc.w, tc.ws); err == nil {
			t.Errorf("%s: NewStream accepted invalid input", tc.name)
		}
	}
}

// meanStd returns the sample mean and standard deviation.
func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)-1))
}

// fitSlope is least-squares slope of ys against xs.
func fitSlope(xs, ys []float64) float64 {
	mx, _ := meanStd(xs)
	my, _ := meanStd(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	return num / den
}
