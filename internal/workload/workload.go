// Package workload synthesizes block-level I/O traces with the bursty,
// idle-interspersed arrival structure the paper observes in real OLTP and
// enterprise workloads (Fig. 3) and the per-trace characteristics of its
// four evaluation traces (Table II). The real Fin1/Fin2 (SPC financial)
// and usr_0/prxy_0 (MSR Cambridge) traces are not redistributable, so the
// generator reproduces their published shape — read ratio, request-size
// mix, mean IOPS, burst/idle alternation and write sequentiality — via a
// two-state Markov-modulated Poisson arrival process. Real traces can be
// substituted through internal/trace's parsers without code changes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"edc/internal/trace"
)

// SizeWeight is one entry of a discrete request-size distribution.
type SizeWeight struct {
	Bytes  int64
	Weight float64
}

// Profile describes a synthetic workload.
type Profile struct {
	Name      string
	ReadRatio float64 // fraction of requests that are reads

	// Sizes is the request size distribution (weights need not sum to 1).
	Sizes []SizeWeight

	// Arrival process: a two-state (burst/idle) Markov-modulated Poisson
	// process. Sojourn times in each state are exponential.
	BurstIOPS float64
	IdleIOPS  float64
	MeanBurst time.Duration
	MeanIdle  time.Duration

	// BurstJitter is the sigma of a log-normal multiplier applied to
	// BurstIOPS on each burst-state entry, so burst heaviness varies the
	// way real traces' peaks do (0 disables).
	BurstJitter float64

	// SeqProb is the probability that a write continues the preceding
	// write run (the sequentiality EDC's SD module exploits).
	SeqProb float64

	// VolumeBytes is the footprint offsets are drawn from.
	VolumeBytes int64

	// HotFraction of the volume receives HotWeight of the random
	// accesses (skewed working set).
	HotFraction float64
	HotWeight   float64
}

// Validate checks a profile for usability.
func (p Profile) Validate() error {
	switch {
	case p.ReadRatio < 0 || p.ReadRatio > 1:
		return fmt.Errorf("workload %s: ReadRatio out of [0,1]", p.Name)
	case len(p.Sizes) == 0:
		return fmt.Errorf("workload %s: empty size distribution", p.Name)
	case p.BurstIOPS <= 0 || p.IdleIOPS < 0:
		return fmt.Errorf("workload %s: bad arrival rates", p.Name)
	case p.MeanBurst <= 0 || p.MeanIdle < 0:
		return fmt.Errorf("workload %s: bad state durations", p.Name)
	case p.VolumeBytes <= 0:
		return fmt.Errorf("workload %s: VolumeBytes must be positive", p.Name)
	case p.SeqProb < 0 || p.SeqProb > 1:
		return fmt.Errorf("workload %s: SeqProb out of [0,1]", p.Name)
	case p.HotFraction < 0 || p.HotFraction > 1 || p.HotWeight < 0 || p.HotWeight > 1:
		return fmt.Errorf("workload %s: hot-spot parameters out of range", p.Name)
	}
	return nil
}

// gen holds generation state.
type gen struct {
	p         Profile
	rng       *rand.Rand
	now       time.Duration
	burst     bool
	stEnd     time.Duration
	burstRate float64       // current burst-state arrival rate
	lastEmit  time.Duration // arrival of the previously emitted request
	seqNext   int64         // next sequential write offset, -1 if none
	sizeCum   []float64
	sizeSum   float64
}

func newGen(p Profile, seed int64) *gen {
	g := &gen{p: p, rng: rand.New(rand.NewSource(seed)), seqNext: -1}
	g.sizeCum = make([]float64, len(p.Sizes))
	for i, sw := range p.Sizes {
		g.sizeSum += sw.Weight
		g.sizeCum[i] = g.sizeSum
	}
	// Start in the idle state so traces warm up gently.
	g.burst = false
	g.stEnd = g.exp(p.MeanIdle)
	g.burstRate = p.BurstIOPS
	return g
}

// exp samples an exponential duration with the given mean.
func (g *gen) exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(g.rng.ExpFloat64() * float64(mean))
}

// nextArrival advances the MMPP and returns the next arrival time.
func (g *gen) nextArrival() time.Duration {
	for {
		rate := g.p.IdleIOPS
		if g.burst {
			rate = g.burstRate
		}
		var dt time.Duration
		if rate <= 0 {
			dt = time.Duration(math.MaxInt64) // idle state emits nothing
		} else {
			dt = time.Duration(g.rng.ExpFloat64() / rate * float64(time.Second))
		}
		if g.now+dt > g.stEnd || g.now+dt < g.now /* overflow */ {
			g.now = g.stEnd
			g.burst = !g.burst
			if g.burst {
				g.stEnd = g.now + g.exp(g.p.MeanBurst)
				g.burstRate = g.p.BurstIOPS
				if s := g.p.BurstJitter; s > 0 {
					m := math.Exp(g.rng.NormFloat64() * s)
					if m < 0.25 {
						m = 0.25
					}
					if m > 2.5 {
						m = 2.5
					}
					g.burstRate *= m
				}
			} else {
				g.stEnd = g.now + g.exp(g.p.MeanIdle)
			}
			continue
		}
		g.now += dt
		return g.now
	}
}

// pickSize samples the request size distribution.
func (g *gen) pickSize() int64 {
	v := g.rng.Float64() * g.sizeSum
	for i, c := range g.sizeCum {
		if v <= c {
			return g.p.Sizes[i].Bytes
		}
	}
	return g.p.Sizes[len(g.p.Sizes)-1].Bytes
}

// pickOffset draws a random aligned offset, honoring the hot region.
func (g *gen) pickOffset(size int64) int64 {
	vol := g.p.VolumeBytes
	if size >= vol {
		return 0
	}
	hotBytes := int64(float64(vol) * g.p.HotFraction)
	var off int64
	if hotBytes > size && g.rng.Float64() < g.p.HotWeight {
		off = g.rng.Int63n(hotBytes - size)
	} else {
		off = g.rng.Int63n(vol - size)
	}
	return off &^ 4095 // 4 KiB alignment
}

// next produces one request.
func (g *gen) next() trace.Request {
	at := g.nextArrival()
	size := g.pickSize()
	write := g.rng.Float64() >= g.p.ReadRatio
	var off int64
	seq := false
	if write && g.seqNext >= 0 && g.rng.Float64() < g.p.SeqProb &&
		g.seqNext+size <= g.p.VolumeBytes {
		off = g.seqNext
		seq = true
	} else {
		off = g.pickOffset(size)
	}
	if seq && at > g.lastEmit {
		// Sequential continuations are issued back-to-back by the
		// application (a streaming write), far closer together than the
		// workload's aggregate inter-arrival gap.
		at = g.lastEmit + (at-g.lastEmit)/8
	}
	g.lastEmit = at
	if write {
		g.seqNext = off + size
	} else {
		g.seqNext = -1 // reads break write runs (mirrors SD semantics)
	}
	return trace.Request{Arrival: at, Offset: off, Size: size, Write: write}
}

// Generate produces requests until the virtual clock passes d.
func (p Profile) Generate(d time.Duration, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := newGen(p, seed)
	t := &trace.Trace{Name: p.Name}
	for {
		r := g.next()
		if r.Arrival > d {
			break
		}
		t.Requests = append(t.Requests, r)
	}
	return t, nil
}

// GenerateN produces exactly n requests.
func (p Profile) GenerateN(n int, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := newGen(p, seed)
	t := &trace.Trace{Name: p.Name, Requests: make([]trace.Request, 0, n)}
	for len(t.Requests) < n {
		t.Requests = append(t.Requests, g.next())
	}
	return t, nil
}

// smallBlocks is the OLTP-style size mix (0.5–8 KiB, ~3.5 KiB average).
func smallBlocks() []SizeWeight {
	return []SizeWeight{
		{512, 0.10}, {1024, 0.10}, {2048, 0.15}, {4096, 0.45},
		{8192, 0.15}, {16384, 0.05},
	}
}

// Fin1 approximates the SPC Financial1 OLTP trace: write-dominated,
// small requests, strong bursts.
func Fin1(volume int64) Profile {
	return Profile{
		Name: "Fin1", ReadRatio: 0.23,
		Sizes:     smallBlocks(),
		BurstIOPS: 2200, IdleIOPS: 80, BurstJitter: 0.6,
		MeanBurst: 3 * time.Second, MeanIdle: 9 * time.Second,
		SeqProb:     0.30,
		VolumeBytes: volume,
		HotFraction: 0.10, HotWeight: 0.80,
	}
}

// Fin2 approximates SPC Financial2: read-dominated OLTP.
func Fin2(volume int64) Profile {
	return Profile{
		Name: "Fin2", ReadRatio: 0.82,
		Sizes:     smallBlocks(),
		BurstIOPS: 1700, IdleIOPS: 90, BurstJitter: 0.6,
		MeanBurst: 4 * time.Second, MeanIdle: 8 * time.Second,
		SeqProb:     0.15,
		VolumeBytes: volume,
		HotFraction: 0.15, HotWeight: 0.75,
	}
}

// Usr0 approximates MSR Cambridge usr_0: enterprise home-directory
// volume, larger requests, sequential write runs.
func Usr0(volume int64) Profile {
	return Profile{
		Name: "Usr_0", ReadRatio: 0.60,
		Sizes: []SizeWeight{
			{4096, 0.25}, {8192, 0.15}, {16384, 0.20},
			{32768, 0.20}, {65536, 0.20},
		},
		BurstIOPS: 650, IdleIOPS: 30, BurstJitter: 0.6,
		MeanBurst: 2 * time.Second, MeanIdle: 12 * time.Second,
		SeqProb:     0.55,
		VolumeBytes: volume,
		HotFraction: 0.20, HotWeight: 0.70,
	}
}

// Prxy0 approximates MSR Cambridge prxy_0: firewall/web proxy, almost
// write-only, small requests, heavy bursts.
func Prxy0(volume int64) Profile {
	return Profile{
		Name: "Prxy_0", ReadRatio: 0.03,
		Sizes: []SizeWeight{
			{512, 0.05}, {4096, 0.60}, {8192, 0.25}, {16384, 0.10},
		},
		BurstIOPS: 1600, IdleIOPS: 120, BurstJitter: 0.5,
		MeanBurst: 3 * time.Second, MeanIdle: 6 * time.Second,
		SeqProb:     0.40,
		VolumeBytes: volume,
		HotFraction: 0.05, HotWeight: 0.85,
	}
}

// Uniform returns an IOmeter-style profile: constant-rate Poisson
// arrivals of fixed-size random accesses (the Fig. 1 microbenchmark).
func Uniform(name string, size int64, iops float64, readRatio float64, volume int64) Profile {
	return Profile{
		Name: name, ReadRatio: readRatio,
		Sizes:     []SizeWeight{{size, 1}},
		BurstIOPS: iops, IdleIOPS: iops,
		MeanBurst: time.Hour, MeanIdle: time.Nanosecond,
		SeqProb:     0,
		VolumeBytes: volume,
	}
}

// Standard returns the paper's four evaluation profiles (Table II),
// scaled to the given volume footprint.
func Standard(volume int64) []Profile {
	return []Profile{Fin1(volume), Fin2(volume), Usr0(volume), Prxy0(volume)}
}
