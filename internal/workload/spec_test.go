package workload

import (
	"errors"
	"testing"
	"time"
)

// TestParseSpecBasic parses a full single-step line.
func TestParseSpecBasic(t *testing.T) {
	spec, err := ParseSpec("d=30s rw=0.5 qps=500 ad=poisson rkd=zipfian-0.99 wkd=uniform bs=4k")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 1 {
		t.Fatalf("steps=%d, want 1", len(spec))
	}
	st := spec[0]
	if st.D != 30*time.Second || st.QPS != 500 || st.RW != 0.5 {
		t.Errorf("d/qps/rw = %v/%g/%g", st.D, st.QPS, st.RW)
	}
	if st.AD != ArrivalPoisson {
		t.Errorf("ad=%v, want poisson", st.AD)
	}
	if st.RKD.Kind != KeyZipfian || st.RKD.Theta != 0.99 {
		t.Errorf("rkd=%v, want zipfian-0.99", st.RKD)
	}
	if st.WKD.Kind != KeyUniform {
		t.Errorf("wkd=%v, want uniform", st.WKD)
	}
	if st.BS != 4096 {
		t.Errorf("bs=%d, want 4096", st.BS)
	}
}

// TestParseSpecInheritance checks later steps inherit every value the
// previous step set, with comments and blank lines ignored.
func TestParseSpecInheritance(t *testing.T) {
	spec, err := ParseSpec(`
# ramp: warm up, then double the rate read-heavy
d=10s qps=250 rw=0.2 rkd=zipfian-0.9 bs=8k

d=20s qps=500 rw=0.9   # inherits rkd and bs
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 2 {
		t.Fatalf("steps=%d, want 2", len(spec))
	}
	s1 := spec[1]
	if s1.RKD.Kind != KeyZipfian || s1.RKD.Theta != 0.9 || s1.BS != 8192 {
		t.Errorf("step 2 did not inherit rkd/bs: %+v", s1)
	}
	if s1.D != 20*time.Second || s1.QPS != 500 || s1.RW != 0.9 {
		t.Errorf("step 2 overrides lost: %+v", s1)
	}
	if spec.Duration() != 30*time.Second {
		t.Errorf("Duration=%v, want 30s", spec.Duration())
	}
}

// TestParseSpecErrors covers the parser's failure modes: every error is
// a *SpecError naming the offending 1-based line and unwrapping to its
// class.
func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		line int
		is   error
	}{
		{"unknown key", "d=1s qps=10 bogus=3", 1, ErrSpecUnknownKey},
		{"unknown key later line", "d=1s qps=10\nd=2s frobnicate=1", 2, ErrSpecUnknownKey},
		{"malformed zipfian theta", "d=1s qps=10 rkd=zipfian-fast", 1, ErrSpecBadValue},
		{"zipfian theta at 1", "d=1s qps=10 rkd=zipfian-1", 1, ErrSpecBadValue},
		{"zipfian theta over 1", "d=1s qps=10 wkd=zipfian-1.5", 1, ErrSpecBadValue},
		{"zero qps", "d=1s qps=0", 1, ErrSpecBadValue},
		{"negative qps", "d=1s qps=-5", 1, ErrSpecBadValue},
		{"zero duration", "d=0s qps=10", 1, ErrSpecBadValue},
		{"negative duration", "d=-3s qps=10", 1, ErrSpecBadValue},
		{"malformed duration", "d=banana qps=10", 1, ErrSpecBadValue},
		{"rw out of range", "d=1s qps=10 rw=1.5", 1, ErrSpecBadValue},
		{"bad arrival dist", "d=1s qps=10 ad=pareto", 1, ErrSpecBadValue},
		{"bad block size", "d=1s qps=10 bs=zero", 1, ErrSpecBadValue},
		{"not key=value", "d=1s qps=10 whatever", 1, ErrSpecBadValue},
		{"first step missing qps", "d=1s rw=0.5", 1, ErrSpecBadValue},
		{"first step missing d", "qps=10", 1, ErrSpecBadValue},
		{"error after comments", "# intro\n\nd=1s qps=10\nd=2s qqps=20", 4, ErrSpecUnknownKey},
	} {
		_, err := ParseSpec(tc.src)
		if err == nil {
			t.Errorf("%s: ParseSpec accepted %q", tc.name, tc.src)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *SpecError", tc.name, err)
			continue
		}
		if se.Line != tc.line {
			t.Errorf("%s: error names line %d, want %d (%v)", tc.name, se.Line, tc.line, err)
		}
		if !errors.Is(err, tc.is) {
			t.Errorf("%s: error %v does not unwrap to %v", tc.name, err, tc.is)
		}
	}
}

// TestParseSpecEmpty checks an all-comment spec fails with ErrSpecEmpty.
func TestParseSpecEmpty(t *testing.T) {
	for _, src := range []string{"", "   \n\t\n", "# only comments\n# here\n"} {
		if _, err := ParseSpec(src); !errors.Is(err, ErrSpecEmpty) {
			t.Errorf("ParseSpec(%q) = %v, want ErrSpecEmpty", src, err)
		}
	}
}
