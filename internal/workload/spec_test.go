package workload

import (
	"errors"
	"testing"
	"time"

	"edc/internal/qos"
)

// TestParseSpecBasic parses a full single-step line.
func TestParseSpecBasic(t *testing.T) {
	spec, err := ParseSpec("d=30s rw=0.5 qps=500 ad=poisson rkd=zipfian-0.99 wkd=uniform bs=4k")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 1 {
		t.Fatalf("steps=%d, want 1", len(spec))
	}
	st := spec[0]
	if st.D != 30*time.Second || st.QPS != 500 || st.RW != 0.5 {
		t.Errorf("d/qps/rw = %v/%g/%g", st.D, st.QPS, st.RW)
	}
	if st.AD != ArrivalPoisson {
		t.Errorf("ad=%v, want poisson", st.AD)
	}
	if st.RKD.Kind != KeyZipfian || st.RKD.Theta != 0.99 {
		t.Errorf("rkd=%v, want zipfian-0.99", st.RKD)
	}
	if st.WKD.Kind != KeyUniform {
		t.Errorf("wkd=%v, want uniform", st.WKD)
	}
	if st.BS != 4096 {
		t.Errorf("bs=%d, want 4096", st.BS)
	}
}

// TestParseSpecInheritance checks later steps inherit every value the
// previous step set, with comments and blank lines ignored.
func TestParseSpecInheritance(t *testing.T) {
	spec, err := ParseSpec(`
# ramp: warm up, then double the rate read-heavy
d=10s qps=250 rw=0.2 rkd=zipfian-0.9 bs=8k

d=20s qps=500 rw=0.9   # inherits rkd and bs
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 2 {
		t.Fatalf("steps=%d, want 2", len(spec))
	}
	s1 := spec[1]
	if s1.RKD.Kind != KeyZipfian || s1.RKD.Theta != 0.9 || s1.BS != 8192 {
		t.Errorf("step 2 did not inherit rkd/bs: %+v", s1)
	}
	if s1.D != 20*time.Second || s1.QPS != 500 || s1.RW != 0.9 {
		t.Errorf("step 2 overrides lost: %+v", s1)
	}
	if spec.Duration() != 30*time.Second {
		t.Errorf("Duration=%v, want 30s", spec.Duration())
	}
}

// TestParseSpecErrors covers the parser's failure modes: every error is
// a *SpecError naming the offending 1-based line and unwrapping to its
// class.
func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		line int
		is   error
	}{
		{"unknown key", "d=1s qps=10 bogus=3", 1, ErrSpecUnknownKey},
		{"unknown key later line", "d=1s qps=10\nd=2s frobnicate=1", 2, ErrSpecUnknownKey},
		{"malformed zipfian theta", "d=1s qps=10 rkd=zipfian-fast", 1, ErrSpecBadValue},
		{"zipfian theta at 1", "d=1s qps=10 rkd=zipfian-1", 1, ErrSpecBadValue},
		{"zipfian theta over 1", "d=1s qps=10 wkd=zipfian-1.5", 1, ErrSpecBadValue},
		{"zero qps", "d=1s qps=0", 1, ErrSpecBadValue},
		{"negative qps", "d=1s qps=-5", 1, ErrSpecBadValue},
		{"zero duration", "d=0s qps=10", 1, ErrSpecBadValue},
		{"negative duration", "d=-3s qps=10", 1, ErrSpecBadValue},
		{"malformed duration", "d=banana qps=10", 1, ErrSpecBadValue},
		{"rw out of range", "d=1s qps=10 rw=1.5", 1, ErrSpecBadValue},
		{"bad arrival dist", "d=1s qps=10 ad=pareto", 1, ErrSpecBadValue},
		{"bad block size", "d=1s qps=10 bs=zero", 1, ErrSpecBadValue},
		{"not key=value", "d=1s qps=10 whatever", 1, ErrSpecBadValue},
		{"first step missing qps", "d=1s rw=0.5", 1, ErrSpecBadValue},
		{"first step missing d", "qps=10", 1, ErrSpecBadValue},
		{"error after comments", "# intro\n\nd=1s qps=10\nd=2s qqps=20", 4, ErrSpecUnknownKey},
	} {
		_, err := ParseSpec(tc.src)
		if err == nil {
			t.Errorf("%s: ParseSpec accepted %q", tc.name, tc.src)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *SpecError", tc.name, err)
			continue
		}
		if se.Line != tc.line {
			t.Errorf("%s: error names line %d, want %d (%v)", tc.name, se.Line, tc.line, err)
		}
		if !errors.Is(err, tc.is) {
			t.Errorf("%s: error %v does not unwrap to %v", tc.name, err, tc.is)
		}
	}
}

// TestParseSpecTenants parses the multi-tenant QoS keys: tenant/class/
// bw inherit like everything else, except a tenant switch restores the
// target tenant's own class/bw so treatment never leaks between
// tenants.
func TestParseSpecTenants(t *testing.T) {
	spec, err := ParseSpec(`
tenant=web class=latency d=10s qps=100
d=20s qps=200                            # still web/latency
tenant=batch class=bulk bw=08:00,4M+18:00,off d=30s qps=500
d=5s tenant=web                          # switch back: web's own class returns
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 4 {
		t.Fatalf("steps=%d, want 4", len(spec))
	}
	if spec[0].Tenant != "web" || spec[0].Class != "latency" {
		t.Errorf("step 1 = %+v", spec[0])
	}
	if spec[1].Tenant != "web" || spec[1].Class != "latency" {
		t.Errorf("step 2 should inherit tenant and class: %+v", spec[1])
	}
	if spec[2].Tenant != "batch" || spec[2].Class != "bulk" || spec[2].BW != "08:00,4M 18:00,off" {
		t.Errorf("step 3 = %+v", spec[2])
	}
	if spec[3].Tenant != "web" || spec[3].Class != "latency" || spec[3].BW != "" {
		t.Errorf("step 4 should restore web's own treatment: %+v", spec[3])
	}
	if err := spec.Validate(1 << 26); err != nil {
		t.Fatal(err)
	}
}

// TestParseSpecTenantErrors is the malformed tenant=/bandwidth-schedule
// error table: every failure is a *SpecError naming the offending line
// and unwrapping to its class.
func TestParseSpecTenantErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		line int
		is   error
	}{
		{"empty tenant", "d=1s qps=10 tenant=", 1, ErrSpecBadValue},
		{"tenant with comma", "d=1s qps=10 tenant=a,b", 1, ErrSpecBadValue},
		{"class without tenant", "d=1s qps=10 class=latency", 1, ErrSpecBadValue},
		{"bw without tenant", "d=1s qps=10 bw=4M", 1, ErrSpecBadValue},
		{"unknown class", "d=1s qps=10 tenant=a class=turbo", 1, ErrSpecBadValue},
		{"bad bw rate", "d=1s qps=10 tenant=a bw=fast", 1, ErrSpecBadValue},
		{"bad bw time", "d=1s qps=10 tenant=a bw=25:00,4M", 1, ErrSpecBadValue},
		{"bw times not increasing", "d=1s qps=10 tenant=a bw=08:00,4M+08:00,1M", 1, ErrSpecBadValue},
		{"bw never limits", "d=1s qps=10 tenant=a bw=00:00,off", 1, ErrSpecBadValue},
		{"bad bw on later line", "d=1s qps=10\nd=2s tenant=a bw=08:00", 2, ErrSpecBadValue},
	} {
		_, err := ParseSpec(tc.src)
		if err == nil {
			t.Errorf("%s: ParseSpec accepted %q", tc.name, tc.src)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *SpecError", tc.name, err)
			continue
		}
		if se.Line != tc.line {
			t.Errorf("%s: error names line %d, want %d (%v)", tc.name, se.Line, tc.line, err)
		}
		if !errors.Is(err, tc.is) {
			t.Errorf("%s: error %v does not unwrap to %v", tc.name, err, tc.is)
		}
	}
}

// TestSpecByTenant checks the per-tenant split: order of first
// appearance, original indices preserved, untagged specs pass through
// whole.
func TestSpecByTenant(t *testing.T) {
	spec, err := ParseSpec(`
tenant=web d=10s qps=100
tenant=batch d=30s qps=500
tenant=web d=20s qps=200
`)
	if err != nil {
		t.Fatal(err)
	}
	parts := spec.ByTenant()
	if len(parts) != 2 {
		t.Fatalf("parts=%d, want 2", len(parts))
	}
	if parts[0].Tenant != "web" || parts[1].Tenant != "batch" {
		t.Fatalf("order = %q, %q", parts[0].Tenant, parts[1].Tenant)
	}
	if len(parts[0].Steps) != 2 || parts[0].Index[0] != 0 || parts[0].Index[1] != 2 {
		t.Errorf("web part = %+v", parts[0])
	}
	if len(parts[1].Steps) != 1 || parts[1].Index[0] != 1 {
		t.Errorf("batch part = %+v", parts[1])
	}

	plain, _ := ParseSpec("d=1s qps=10")
	pp := plain.ByTenant()
	if len(pp) != 1 || pp[0].Tenant != "" || len(pp[0].Steps) != 1 {
		t.Errorf("untagged split = %+v", pp)
	}
}

// TestSpecQoSConfig derives the qos.Config from spec annotations.
func TestSpecQoSConfig(t *testing.T) {
	spec, err := ParseSpec("tenant=web class=latency d=1s qps=10\ntenant=batch bw=4M d=1s qps=10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.QoSConfig()
	if cfg == nil {
		t.Fatal("want a derived config")
	}
	if cfg.Tenants["web"].Class != qos.ClassLatency {
		t.Errorf("web = %+v", cfg.Tenants["web"])
	}
	if cfg.Tenants["batch"].Bandwidth != "4M" {
		t.Errorf("batch = %+v", cfg.Tenants["batch"])
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	if plain, _ := ParseSpec("d=1s qps=10"); plain.QoSConfig() != nil {
		t.Error("untagged spec should derive no config")
	}
	if bare, _ := ParseSpec("tenant=web d=1s qps=10"); bare.QoSConfig() != nil {
		t.Error("bare tenant tags carry no treatment; want nil config")
	}
}

// TestValidateTenantConsistency rejects a tenant whose class or bw
// changes between steps when the Spec is built programmatically (the
// DSL's inheritance makes this unreachable from ParseSpec).
func TestValidateTenantConsistency(t *testing.T) {
	spec := Spec{
		{D: time.Second, QPS: 10, BS: 4096, Tenant: "a", Class: "latency"},
		{D: time.Second, QPS: 10, BS: 4096, Tenant: "a", Class: "bulk"},
	}
	if err := spec.Validate(1 << 26); err == nil {
		t.Fatal("want mid-spec class change rejected")
	}
	spec[1].Class = "latency"
	if err := spec.Validate(1 << 26); err != nil {
		t.Fatal(err)
	}
}

// TestParseSpecEmpty checks an all-comment spec fails with ErrSpecEmpty.
func TestParseSpecEmpty(t *testing.T) {
	for _, src := range []string{"", "   \n\t\n", "# only comments\n# here\n"} {
		if _, err := ParseSpec(src); !errors.Is(err, ErrSpecEmpty) {
			t.Errorf("ParseSpec(%q) = %v, want ErrSpecEmpty", src, err)
		}
	}
}
