package workload

import (
	"math"
	"testing"
	"time"

	"edc/internal/metrics"
)

const testVolume = 1 << 30

func TestValidate(t *testing.T) {
	if err := Fin1(testVolume).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Fin1(testVolume)
	bad.ReadRatio = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for ReadRatio > 1")
	}
	bad = Fin1(testVolume)
	bad.Sizes = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty sizes")
	}
	bad = Fin1(testVolume)
	bad.VolumeBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero volume")
	}
	bad = Fin1(testVolume)
	bad.BurstIOPS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero burst IOPS")
	}
}

func TestGenerateNCount(t *testing.T) {
	tr, err := Fin1(testVolume).GenerateN(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 5000 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	if tr.Name != "Fin1" {
		t.Fatalf("name = %q", tr.Name)
	}
}

func TestGenerateDuration(t *testing.T) {
	tr, err := Fin2(testVolume).Generate(30*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() > 30*time.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if len(tr.Requests) < 100 {
		t.Fatalf("only %d requests in 30s", len(tr.Requests))
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Usr0(testVolume).GenerateN(1000, 7)
	b, _ := Usr0(testVolume).GenerateN(1000, 7)
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between same-seed runs", i)
		}
	}
	c, _ := Usr0(testVolume).GenerateN(1000, 8)
	same := 0
	for i := range a.Requests {
		if a.Requests[i] == c.Requests[i] {
			same++
		}
	}
	if same == len(a.Requests) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestReadRatioMatchesProfile(t *testing.T) {
	for _, p := range Standard(testVolume) {
		tr, err := p.GenerateN(20000, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Stats().ReadRatio
		if math.Abs(got-p.ReadRatio) > 0.02 {
			t.Errorf("%s: read ratio %.3f; want %.3f±0.02", p.Name, got, p.ReadRatio)
		}
	}
}

func TestArrivalsMonotonic(t *testing.T) {
	tr, _ := Prxy0(testVolume).GenerateN(5000, 4)
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Arrival < tr.Requests[i-1].Arrival {
			t.Fatal("arrivals not monotonic")
		}
	}
}

func TestOffsetsWithinVolume(t *testing.T) {
	for _, p := range Standard(testVolume) {
		tr, _ := p.GenerateN(10000, 5)
		for _, r := range tr.Requests {
			if r.Offset < 0 || r.Offset+r.Size > testVolume {
				t.Fatalf("%s: request out of volume: %+v", p.Name, r)
			}
			if r.Offset%4096 != 0 && r.Offset != 0 {
				// Sequential continuations may be sub-4K aligned only when
				// following a sub-4K write; all base picks are aligned.
				_ = r
			}
		}
	}
}

func TestBurstiness(t *testing.T) {
	// Fig. 3 property: the IOPS time series must show bursts well above
	// the mean and a meaningful fraction of near-idle seconds.
	tr, err := Fin1(testVolume).Generate(10*time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	ts := metrics.NewTimeSeries(time.Second)
	for _, r := range tr.Requests {
		ts.Add(r.Arrival, 1)
	}
	mean, peak, _ := ts.Stats()
	if peak < 3*mean {
		t.Fatalf("peak/mean = %.1f; want bursty (>3)", peak/mean)
	}
	// Count low-activity bins.
	low := 0
	pts := ts.Dense()
	for _, p := range pts {
		if p.V < mean/2 {
			low++
		}
	}
	if float64(low)/float64(len(pts)) < 0.3 {
		t.Fatalf("only %d/%d low-activity seconds; expected idleness", low, len(pts))
	}
}

func TestSequentialRuns(t *testing.T) {
	// Usr0 has SeqProb 0.55: a good fraction of writes must continue the
	// previous write.
	tr, _ := Usr0(testVolume).GenerateN(20000, 9)
	seq, writes := 0, 0
	var lastEnd int64 = -1
	for _, r := range tr.Requests {
		if r.Write {
			writes++
			if r.Offset == lastEnd {
				seq++
			}
			lastEnd = r.Offset + r.Size
		} else {
			lastEnd = -1
		}
	}
	frac := float64(seq) / float64(writes)
	if frac < 0.2 {
		t.Fatalf("sequential write fraction = %.3f; want >= 0.2", frac)
	}
}

func TestUniformProfile(t *testing.T) {
	p := Uniform("iometer-16k", 16384, 200, 0.5, testVolume)
	tr, err := p.Generate(20*time.Second, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if math.Abs(st.AvgSize-16384) > 1 {
		t.Fatalf("avg size = %v", st.AvgSize)
	}
	if st.AvgIOPS < 150 || st.AvgIOPS > 250 {
		t.Fatalf("iops = %v; want ~200", st.AvgIOPS)
	}
}

func TestMeanIOPSInRange(t *testing.T) {
	// The four standard profiles should land in a plausible Table II
	// range (tens to a few hundred IOPS on average).
	for _, p := range Standard(testVolume) {
		tr, _ := p.Generate(5*time.Minute, 11)
		iops := tr.Stats().AvgIOPS
		if iops < 20 || iops > 1200 {
			t.Errorf("%s: mean IOPS %.1f outside [20,1200]", p.Name, iops)
		}
	}
}
