package workload

// The workload-spec DSL: one step per line, `key=value` pairs separated
// by whitespace, later lines inheriting every value the previous step
// set (the fabbench convention — a multi-phase ramp only spells out what
// changes). `#` starts a comment; blank lines are skipped.
//
//	# warm-up, then a read-heavy zipfian phase at double the rate
//	d=30s rw=0.5 qps=500 ad=poisson rkd=zipfian-0.99 wkd=uniform bs=4096
//	d=60s qps=1000 rw=0.9
//
// Keys: d (step duration, Go duration syntax), qps (offered aggregate
// arrival rate), rw (read fraction in [0,1]), ad (poisson | uniform),
// rkd/wkd (uniform | zipfian-θ with 0<θ<1), bs (operation bytes, k/m
// suffixes allowed), dup (fraction of payload content regions cloned
// from a small pool, in [0,1]; pairs with -dedup) and dupu (distinct
// clone payloads in that pool; 0 selects the default 64). The first
// step must set d and qps; everything else defaults to rw=0.5,
// ad=poisson, rkd=uniform, wkd=uniform, bs=4096, dup=0. Payload
// content is a device property, so dup/dupu are spec-global: set them
// on the first step (Spec.Validate rejects a mid-spec change).
//
// Multi-tenant QoS keys: tenant (the submitting tenant's name; steps
// of different tenants run concurrently, each tenant's first step at
// t=0), class (standard | latency | bulk), and bw (an rclone-style
// time-of-day bandwidth schedule with '+' joining the slots, e.g.
// bw=08:00,10M+18:00,off, or a single all-day rate like bw=4M).
// class/bw require tenant. Treatment sticks to its tenant: switching
// tenant= on a line restores that tenant's own class/bw (defaults for
// a first appearance) instead of inheriting the previous tenant's,
// while all other keys inherit as usual.
//
//	# a latency-sensitive victim plus a shaped bulk aggressor
//	tenant=web   class=latency d=30s qps=200
//	tenant=batch class=bulk bw=4M d=30s qps=4000 rw=0.1

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"edc/internal/qos"
)

// Parse error classes, matched through errors.Is on a *SpecError.
var (
	// ErrSpecUnknownKey classifies a key=value pair whose key the DSL
	// does not define.
	ErrSpecUnknownKey = errors.New("workload: unknown spec key")
	// ErrSpecBadValue classifies a recognized key with a malformed or
	// out-of-range value.
	ErrSpecBadValue = errors.New("workload: bad spec value")
	// ErrSpecEmpty classifies a spec with no steps at all.
	ErrSpecEmpty = errors.New("workload: spec has no steps")
)

// SpecError locates a parse failure: the 1-based source line, its text,
// and the underlying cause (unwrapping to ErrSpecUnknownKey or
// ErrSpecBadValue).
type SpecError struct {
	Line int    // 1-based line number in the spec source
	Text string // the offending line, comment stripped
	Err  error
}

// Error renders the located failure.
func (e *SpecError) Error() string {
	return fmt.Sprintf("spec line %d (%q): %v", e.Line, e.Text, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *SpecError) Unwrap() error { return e.Err }

// defaultStep is the inherited state before the first step line.
func defaultStep() Step {
	return Step{
		RW:  0.5,
		AD:  ArrivalPoisson,
		RKD: KeyChoice{Kind: KeyUniform},
		WKD: KeyChoice{Kind: KeyUniform},
		BS:  4096,
	}
}

// ParseSpec parses the DSL into a Spec. Every returned error is a
// *SpecError naming the offending line.
func ParseSpec(src string) (Spec, error) {
	var spec Spec
	cur := defaultStep()
	first := true
	// Each tenant's last-seen QoS treatment: a tenant switch restores
	// the target tenant's own class/bw (defaults for a new tenant)
	// instead of leaking the previous tenant's.
	type treatment struct{ class, bw string }
	seen := map[string]treatment{}
	for n, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(err error) (Spec, error) {
			return nil, &SpecError{Line: n + 1, Text: line, Err: err}
		}
		// A tenant switch swaps in the target tenant's own class/bw
		// before the main pass, whatever the keys' order on the line:
		// treatment belongs to a tenant and must not leak across a
		// switch.
		for _, tok := range strings.Fields(line) {
			if val, ok := strings.CutPrefix(tok, "tenant="); ok && val != cur.Tenant {
				tr := seen[val]
				cur.Tenant, cur.Class, cur.BW = val, tr.class, tr.bw
			}
		}
		sawD, sawQPS := false, false
		for _, tok := range strings.Fields(line) {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return fail(fmt.Errorf("%w: %q is not key=value", ErrSpecBadValue, tok))
			}
			switch key {
			case "d":
				d, err := time.ParseDuration(val)
				if err != nil {
					return fail(fmt.Errorf("%w: d=%q: %v", ErrSpecBadValue, val, err))
				}
				if d <= 0 {
					return fail(fmt.Errorf("%w: d=%q must be positive", ErrSpecBadValue, val))
				}
				cur.D = d
				sawD = true
			case "qps":
				q, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fail(fmt.Errorf("%w: qps=%q: %v", ErrSpecBadValue, val, err))
				}
				if q <= 0 {
					return fail(fmt.Errorf("%w: qps=%q must be positive", ErrSpecBadValue, val))
				}
				cur.QPS = q
				sawQPS = true
			case "rw":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fail(fmt.Errorf("%w: rw=%q: %v", ErrSpecBadValue, val, err))
				}
				if r < 0 || r > 1 {
					return fail(fmt.Errorf("%w: rw=%q out of [0,1]", ErrSpecBadValue, val))
				}
				cur.RW = r
			case "ad":
				switch val {
				case "poisson":
					cur.AD = ArrivalPoisson
				case "uniform":
					cur.AD = ArrivalUniform
				default:
					return fail(fmt.Errorf("%w: ad=%q (want poisson or uniform)", ErrSpecBadValue, val))
				}
			case "rkd", "wkd":
				kc, err := parseKeyChoice(val)
				if err != nil {
					return fail(fmt.Errorf("%w: %s=%q: %v", ErrSpecBadValue, key, val, err))
				}
				if key == "rkd" {
					cur.RKD = kc
				} else {
					cur.WKD = kc
				}
			case "bs":
				b, err := parseBytes(val)
				if err != nil {
					return fail(fmt.Errorf("%w: bs=%q: %v", ErrSpecBadValue, val, err))
				}
				cur.BS = b
			case "dup":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fail(fmt.Errorf("%w: dup=%q: %v", ErrSpecBadValue, val, err))
				}
				if r < 0 || r > 1 {
					return fail(fmt.Errorf("%w: dup=%q out of [0,1]", ErrSpecBadValue, val))
				}
				cur.Dup = r
			case "dupu":
				u, err := strconv.Atoi(val)
				if err != nil {
					return fail(fmt.Errorf("%w: dupu=%q: %v", ErrSpecBadValue, val, err))
				}
				if u < 0 {
					return fail(fmt.Errorf("%w: dupu=%q must be non-negative", ErrSpecBadValue, val))
				}
				cur.DupUniverse = u
			case "tenant":
				if val == "" {
					return fail(fmt.Errorf("%w: tenant= needs a name", ErrSpecBadValue))
				}
				if strings.ContainsAny(val, ", \t") {
					return fail(fmt.Errorf("%w: tenant=%q must not contain commas or spaces", ErrSpecBadValue, val))
				}
				// Already applied by the pre-pass; nothing to do here.
			case "class":
				if _, err := qos.ParseClass(val); err != nil {
					return fail(fmt.Errorf("%w: class=%q (want standard, latency or bulk)", ErrSpecBadValue, val))
				}
				cur.Class = val
			case "bw":
				sched := strings.ReplaceAll(val, "+", " ")
				if _, err := qos.ParseTimetable(sched); err != nil {
					return fail(fmt.Errorf("%w: bw=%q: %v", ErrSpecBadValue, val, err))
				}
				cur.BW = sched
			default:
				return fail(fmt.Errorf("%w: %q", ErrSpecUnknownKey, key))
			}
		}
		if cur.Tenant == "" && (cur.Class != "" || cur.BW != "") {
			return fail(fmt.Errorf("%w: class/bw require tenant", ErrSpecBadValue))
		}
		if cur.Tenant != "" {
			seen[cur.Tenant] = treatment{class: cur.Class, bw: cur.BW}
		}
		if first && (!sawD || !sawQPS) {
			return fail(fmt.Errorf("%w: the first step must set d and qps", ErrSpecBadValue))
		}
		first = false
		spec = append(spec, cur)
	}
	if len(spec) == 0 {
		return nil, &SpecError{Line: 0, Text: "", Err: ErrSpecEmpty}
	}
	return spec, nil
}

// parseKeyChoice parses "uniform" or "zipfian-θ".
func parseKeyChoice(val string) (KeyChoice, error) {
	if val == "uniform" {
		return KeyChoice{Kind: KeyUniform}, nil
	}
	rest, ok := strings.CutPrefix(val, "zipfian-")
	if !ok {
		return KeyChoice{}, fmt.Errorf("want uniform or zipfian-θ")
	}
	theta, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return KeyChoice{}, fmt.Errorf("theta %q: %v", rest, err)
	}
	if theta <= 0 || theta >= 1 {
		return KeyChoice{}, fmt.Errorf("theta %g out of (0,1)", theta)
	}
	return KeyChoice{Kind: KeyZipfian, Theta: theta}, nil
}

// parseBytes parses a byte count with optional k/m suffix (powers of
// 1024).
func parseBytes(val string) (int64, error) {
	mult := int64(1)
	s := strings.ToLower(val)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n * mult, nil
}
