// Package obs is the observability layer of the EDC pipeline: a
// structured decision tracer, fixed-interval time series, and a counters
// snapshot with a Prometheus-style text exposition.
//
// The paper's central claim is that EDC's per-request decisions —
// calculated-IOPS feedback (Fig. 6), estimator write-through
// (Sec. III-C), SD merging (Fig. 7), and quantized slot placement
// (Fig. 5) — buy its performance/space tradeoff. This package makes
// every one of those decisions visible as it happens instead of only as
// end-of-run aggregates in core.RunStats.
//
// The core pipeline calls a *Collector at each decision point. A nil
// *Collector is valid and free: every hook is a nil-receiver no-op, so
// the disabled path is bit-identical to a build without the layer.
// Collectors are strictly observers — they read values the pipeline has
// already computed and never feed anything back, so an attached tracer
// cannot perturb the simulation (replay results are identical with and
// without one; the core tests enforce this).
//
// Sharded replay gives each shard a buffering Child collector and merges
// the shards deterministically afterwards (sort by virtual time, then
// shard, then per-shard sequence), so a traced sharded run produces the
// same event stream every time for a fixed shard count.
//
// The JSONL event schema, counter names, and time-series format are
// documented in OBSERVABILITY.md at the repository root.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// EventType names a pipeline decision point. The values appear verbatim
// in the JSONL "type" field.
type EventType string

// The decision points traced by the pipeline, in stage order.
const (
	// EvAdmit: the frontend admitted one host request under the
	// closed-loop bound.
	EvAdmit EventType = "admit"
	// EvDefer: the outstanding bound was reached and the request joined
	// the deferred FIFO.
	EvDefer EventType = "defer"
	// EvSDMerge: a contiguous write joined the pending run (Fig. 7).
	EvSDMerge EventType = "sd_merge"
	// EvSDFlush: the pending run was flushed; Reason says why.
	EvSDFlush EventType = "sd_flush"
	// EvEstimate: the sampling estimator ruled on a run's
	// compressibility (Sec. III-C write-through rule).
	EvEstimate EventType = "estimate"
	// EvPolicy: the policy chose a codec at the current calculated IOPS
	// (Fig. 6 feedback selection).
	EvPolicy EventType = "policy"
	// EvSlot: the codec output was placed into a quantized slot
	// (Fig. 5), or kept uncompressed when it missed the 75 % class.
	EvSlot EventType = "slot"
	// EvSlotFree: a live extent died (overwrite) and its slot bytes were
	// returned to the allocator.
	EvSlotFree EventType = "slot_free"
	// EvCacheHit / EvCacheMiss: the host DRAM cache ruled on a read.
	EvCacheHit EventType = "cache_hit"
	// EvCacheMiss is the cache-lookup counterpart of EvCacheHit.
	EvCacheMiss EventType = "cache_miss"
	// EvDecompress: a read covers a compressed extent and must
	// decompress it.
	EvDecompress EventType = "decompress"
	// EvFault: an injected device fault hit an operation (Reason is
	// "transient" or "hard"; Dev names the member device).
	EvFault EventType = "fault"
	// EvRetry: a path re-issued an operation after a transient fault
	// (Attempt counts retries so far).
	EvRetry EventType = "retry"
	// EvDegradedRead: a RAIS5 read reconstructed a failed member's data
	// from the surviving devices' stripe units.
	EvDegradedRead EventType = "degraded_read"
	// EvRecover: a recovery decision (Reason "realloc" for a write
	// re-allocated to a fresh slot, "read_abandon" for an unrecoverable
	// read served as lost data, "crash" for journal-based crash
	// recovery, with Records journal records applied).
	EvRecover EventType = "recover"
	// EvRecompress: background maintenance rewrote a stored extent with
	// a different codec (Reason "cold" for idle-data recompression to a
	// heavier codec, "hot" for demotion to a cheaper one; From/Codec
	// name the old and new codecs, Slot the new slot, Reclaimed the
	// slot bytes saved — negative when a hot demotion grew the slot).
	EvRecompress EventType = "recompress"
	// EvCompact: maintenance coalesced the allocator's free lists
	// (Classes is the size-class count that triggered it, Merged the
	// adjacent slots folded together, Reclaimed the tail bytes returned
	// to fresh space).
	EvCompact EventType = "compact"
	// EvDedupHit: a flushed run's fingerprint matched an existing
	// extent; the run mapped to it by reference and skipped the codec
	// entirely (Target is the matched extent's logical offset, Slot the
	// slot bytes the hit avoided allocating).
	EvDedupHit EventType = "dedup_hit"
	// EvDedupMiss: the fingerprint was unseen; the run continued down
	// the normal estimate/compress/place pipeline and registered itself
	// in the content index at its durable point.
	EvDedupMiss EventType = "dedup_miss"
	// EvUnref: a dedup-shared extent lost its last reference and its
	// slot bytes were released (the dedup analogue of slot_free; Size is
	// the original length, Slot the released slot bytes).
	EvUnref EventType = "unref"
	// EvShape: the tenant's bandwidth schedule delayed a request's
	// admission (Tenant names the tenant, DelayUS the added wait).
	EvShape EventType = "shape"
	// EvAdmitReject: admission control refused a request (Reason
	// "queue_depth" when the tenant's deferred bound overflowed).
	EvAdmitReject EventType = "admit_reject"
	// EvResplit: serve mode split a sustained-hot shard's LBA range at a
	// quiesced, heat-balanced boundary (Off is the split offset within
	// the source shard, Records the extents migrated, Slot the slot
	// bytes migrated, LeftBlocks/RightBlocks the live-block occupancy of
	// the two halves after the split).
	EvResplit EventType = "resplit"
)

// SD flush reasons recorded in Event.Reason.
const (
	// FlushNonContig: a write outside the run's tail broke contiguity.
	FlushNonContig = "noncontig"
	// FlushMaxRun: the merged run hit the size cap.
	FlushMaxRun = "maxrun"
	// FlushRead: a read arrived (reads break write contiguity, Fig. 7).
	FlushRead = "read"
	// FlushTimeout: the idle flush timer fired.
	FlushTimeout = "timeout"
	// FlushDrain: end-of-trace drain forced the run out.
	FlushDrain = "drain"
)

// Admission-rejection reasons recorded in Event.Reason on admit_reject
// events.
const (
	// RejectQueueDepth: the tenant's deferred-queue bound overflowed.
	RejectQueueDepth = "queue_depth"
)

// Recovery reasons recorded in Event.Reason on recover events.
const (
	// RecoverRealloc: a write moved to a fresh slot after a hard fault.
	RecoverRealloc = "realloc"
	// RecoverReadAbandon: a hard read failure with no redundancy was
	// served as lost data.
	RecoverReadAbandon = "read_abandon"
	// RecoverCrash: the mapping was rebuilt from snapshot + journal
	// after a power cut.
	RecoverCrash = "crash"
)

// Maintenance reasons recorded in Event.Reason on recompress events.
const (
	// RelocateCold: an idle extent was recompressed to a heavier codec
	// for space.
	RelocateCold = "cold"
	// RelocateHot: a hot extent was demoted to a cheaper codec for
	// read latency.
	RelocateHot = "hot"
)

// Event is one pipeline decision. Every event carries the virtual time
// (microseconds), the shard that produced it, a per-shard sequence
// number, the decision type, and the logical byte range it concerns;
// the remaining fields are type-specific and omitted from the JSON when
// zero-valued (read them with jq's // operator: `.ciops // 0`).
type Event struct {
	// TUS is the virtual time of the decision in microseconds.
	TUS int64 `json:"t_us"`
	// Shard is the LBA shard that produced the event (0 unsharded).
	Shard int `json:"shard"`
	// Seq is the per-shard emission index; (TUS, Shard, Seq) totally
	// orders a merged stream.
	Seq int64 `json:"seq"`
	// Type is the decision point.
	Type EventType `json:"type"`
	// Op is "read" or "write" on admit/defer events.
	Op string `json:"op,omitempty"`
	// Off is the logical byte offset the decision concerns (shard-local
	// under sharded replay, like every offset the shard pipeline sees).
	Off int64 `json:"off"`
	// Size is the logical byte length (the original, uncompressed size
	// on write-path events).
	Size int64 `json:"size"`
	// Reason qualifies sd_flush ("noncontig", "maxrun", "read",
	// "timeout", "drain") and slot ("oversize") events.
	Reason string `json:"reason,omitempty"`
	// Writes is the number of host writes folded into a flushed run.
	Writes int `json:"writes,omitempty"`
	// Queued is the deferred-FIFO depth after a defer event.
	Queued int `json:"queued,omitempty"`
	// Ratio is the estimator's sampled compression ratio (>= 1).
	Ratio float64 `json:"ratio,omitempty"`
	// Verdict is the estimator ruling: "compress" or "write_through".
	Verdict string `json:"verdict,omitempty"`
	// CIOPS is the calculated IOPS observed at policy-decision time.
	CIOPS float64 `json:"ciops,omitempty"`
	// Codec is the codec name ("none" when stored uncompressed).
	Codec string `json:"codec,omitempty"`
	// Comp is the codec output length in bytes.
	Comp int64 `json:"comp,omitempty"`
	// Slot is the allocated (quantized) slot length in bytes.
	Slot int64 `json:"slot,omitempty"`
	// ClassPct is the slot class as a percentage of the original size
	// (25/50/75/100 under quantized allocation).
	ClassPct int `json:"class_pct,omitempty"`
	// Waste is Slot - Comp: the internal fragmentation the quantized
	// class accepts to avoid relocation (Fig. 5).
	Waste int64 `json:"waste,omitempty"`
	// Dev is the member device a fault or degraded read concerns.
	Dev int `json:"dev,omitempty"`
	// Attempt is the retry ordinal on retry events (1 = first retry).
	Attempt int `json:"attempt,omitempty"`
	// Records is the number of journal records applied on recover
	// events.
	Records int `json:"records,omitempty"`
	// From is the codec an extent stored before a recompress event
	// (Codec holds the new one).
	From string `json:"from,omitempty"`
	// Reclaimed is the slot bytes a maintenance action gave back:
	// old slot minus new slot on recompress events (negative when the
	// new slot is larger), tail bytes returned to fresh space on
	// compact events.
	Reclaimed int64 `json:"reclaimed,omitempty"`
	// Classes is the allocator size-class count that triggered a
	// compact event.
	Classes int `json:"classes,omitempty"`
	// Target is the logical offset of the already-stored extent a
	// dedup_hit run mapped to.
	Target int64 `json:"target,omitempty"`
	// Merged is the number of adjacent free slots coalesced by a
	// compact event.
	Merged int `json:"merged,omitempty"`
	// Tenant names the submitting tenant on QoS-tagged events (absent
	// on untagged traffic, so untagged streams keep the pre-tenant
	// schema byte for byte).
	Tenant string `json:"tenant,omitempty"`
	// DelayUS is the virtual delay a shape event added, in
	// microseconds.
	DelayUS int64 `json:"delay_us,omitempty"`
	// LeftBlocks is the live-block occupancy kept by the source shard
	// after a resplit.
	LeftBlocks int64 `json:"left_blocks,omitempty"`
	// RightBlocks is the live-block occupancy migrated to the new shard
	// by a resplit.
	RightBlocks int64 `json:"right_blocks,omitempty"`
}

// Tracer consumes pipeline decision events. Implementations must not
// retain e past the call: the collector reuses nothing today, but the
// contract keeps buffering strategies open.
type Tracer interface {
	// Emit receives one decision event.
	Emit(e *Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(*Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(e *Event) { f(e) }

// JSONLTracer writes one JSON object per event, one event per line —
// the format OBSERVABILITY.md documents and `jq` consumes directly.
// Output is buffered; call Flush when the replay completes. Not safe
// for concurrent use (the pipeline emits from one goroutine; sharded
// replay buffers per shard and emits the merged stream sequentially).
type JSONLTracer struct {
	w   *bufio.Writer
	err error
}

// NewJSONLTracer returns a tracer writing JSONL to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Tracer: marshal the event and append a newline. The
// first write error sticks and suppresses further output.
func (t *JSONLTracer) Emit(e *Event) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.err = t.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen.
func (t *JSONLTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err returns the first write or marshal error (nil if none).
func (t *JSONLTracer) Err() error { return t.err }
