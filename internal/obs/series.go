package obs

import (
	"sort"
	"time"

	"edc/internal/metrics"
)

// Series samples the pipeline's state into fixed-interval bins built on
// metrics.TimeSeries. Sampling is passive: values are recorded at the
// decision points the pipeline already reaches, never from scheduled
// timer events, so enabling a series cannot add events to the simulation
// heap (which would renumber event sequence tie-breaks and perturb the
// replay).
//
// Three signals are tracked:
//
//   - calculated IOPS, observed at each policy decision (per-bin mean);
//   - codec mix, runs stored per codec per bin;
//   - slot occupancy, the net slot bytes allocated minus freed per bin
//     (deltas sum across shards; the cumulative sum is the live
//     occupancy curve).
type Series struct {
	interval time.Duration

	iopsSum *metrics.TimeSeries // sum of ciops samples per bin
	iopsN   *metrics.TimeSeries // sample counts per bin
	codec   map[string]*metrics.TimeSeries
	slot    *metrics.TimeSeries // net slot-byte delta per bin
}

// NewSeries returns a series set with the given bin width (<= 0 selects
// one second).
func NewSeries(interval time.Duration) *Series {
	if interval <= 0 {
		interval = time.Second
	}
	return &Series{
		interval: interval,
		iopsSum:  metrics.NewTimeSeries(interval),
		iopsN:    metrics.NewTimeSeries(interval),
		codec:    make(map[string]*metrics.TimeSeries),
		slot:     metrics.NewTimeSeries(interval),
	}
}

// Interval returns the bin width.
func (s *Series) Interval() time.Duration { return s.interval }

// observeIOPS records one calculated-IOPS sample at virtual time t.
func (s *Series) observeIOPS(t time.Duration, v float64) {
	s.iopsSum.Add(t, v)
	s.iopsN.Add(t, 1)
}

// observeCodec records one stored run for the named codec.
func (s *Series) observeCodec(t time.Duration, codec string) {
	ts := s.codec[codec]
	if ts == nil {
		ts = metrics.NewTimeSeries(s.interval)
		s.codec[codec] = ts
	}
	ts.Add(t, 1)
}

// observeSlot records a slot-occupancy change of delta bytes (positive
// on allocation, negative on free).
func (s *Series) observeSlot(t time.Duration, delta int64) {
	s.slot.Add(t, float64(delta))
}

// merge folds o's bins into s (bin-exact: both series must share the
// interval, which Child guarantees).
func (s *Series) merge(o *Series) {
	if o == nil {
		return
	}
	mergeTS(s.iopsSum, o.iopsSum)
	mergeTS(s.iopsN, o.iopsN)
	mergeTS(s.slot, o.slot)
	for name, ts := range o.codec {
		dst := s.codec[name]
		if dst == nil {
			dst = metrics.NewTimeSeries(s.interval)
			s.codec[name] = dst
		}
		mergeTS(dst, ts)
	}
}

// mergeTS re-adds src's occupied bins into dst. Points() returns bin
// start times, which Add maps back onto exactly the same bins.
func mergeTS(dst, src *metrics.TimeSeries) {
	for _, p := range src.Points() {
		dst.Add(p.T, p.V)
	}
}

// SeriesPoint is one (bin start, value) sample in a report.
type SeriesPoint struct {
	// TUS is the bin start in virtual microseconds.
	TUS int64 `json:"t_us"`
	// V is the bin value (meaning depends on the series).
	V float64 `json:"v"`
}

// SeriesReport is the JSON form of a Series, written by
// `edcbench -series-out` and embedded in Report.
type SeriesReport struct {
	// IntervalUS is the bin width in microseconds.
	IntervalUS int64 `json:"interval_us"`
	// CIOPS is the per-bin mean calculated IOPS observed at policy
	// decisions (bins with no decision are omitted).
	CIOPS []SeriesPoint `json:"ciops"`
	// CodecRuns maps codec name to runs stored per bin.
	CodecRuns map[string][]SeriesPoint `json:"codec_runs"`
	// SlotBytes is the live slot occupancy in bytes at each bin end
	// (cumulative sum of the per-bin allocation deltas, dense from bin
	// zero through the last change).
	SlotBytes []SeriesPoint `json:"slot_bytes"`
}

// report renders the series for JSON output.
func (s *Series) report() *SeriesReport {
	r := &SeriesReport{
		IntervalUS: s.interval.Microseconds(),
		CodecRuns:  make(map[string][]SeriesPoint, len(s.codec)),
	}
	counts := s.iopsN.Points()
	nByBin := make(map[int64]float64, len(counts))
	for _, p := range counts {
		nByBin[int64(p.T)] = p.V
	}
	for _, p := range s.iopsSum.Points() {
		n := nByBin[int64(p.T)]
		if n <= 0 {
			continue
		}
		r.CIOPS = append(r.CIOPS, SeriesPoint{TUS: p.T.Microseconds(), V: p.V / n})
	}
	names := make([]string, 0, len(s.codec))
	for name := range s.codec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := s.codec[name].Points()
		out := make([]SeriesPoint, len(pts))
		for i, p := range pts {
			out[i] = SeriesPoint{TUS: p.T.Microseconds(), V: p.V}
		}
		r.CodecRuns[name] = out
	}
	var occ float64
	for _, p := range s.slot.Dense() {
		occ += p.V
		r.SlotBytes = append(r.SlotBytes, SeriesPoint{TUS: p.T.Microseconds(), V: occ})
	}
	return r
}
