package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Config configures a Collector. The zero value collects counters only.
type Config struct {
	// Tracer receives one Event per decision (nil: no event stream).
	Tracer Tracer
	// SeriesInterval enables fixed-interval time-series sampling with
	// the given bin width (0 disables).
	SeriesInterval time.Duration
	// Shard tags every event with the producing shard (0 unsharded).
	Shard int
}

// Collector is the pipeline-facing observer: the core stages call one
// hook method per decision. A nil *Collector is valid — every method is
// a nil-receiver no-op — so the disabled path costs one nil check per
// decision and is bit-identical to an uninstrumented replay. Hooks only
// read values the pipeline already computed; nothing flows back.
//
// A Collector is used from a single goroutine (its pipeline's event
// loop). Sharded replay creates one buffering Child per shard and folds
// them back with Absorb after the shards join.
type Collector struct {
	shard  int
	tracer Tracer
	series *Series

	buffering bool
	buf       []Event

	seq      int64
	counters map[string]int64
}

// New returns a Collector streaming to cfg.Tracer and sampling series
// at cfg.SeriesInterval. Counters are always collected.
func New(cfg Config) *Collector {
	c := &Collector{
		shard:    cfg.Shard,
		tracer:   cfg.Tracer,
		counters: make(map[string]int64),
	}
	if cfg.SeriesInterval > 0 {
		c.series = NewSeries(cfg.SeriesInterval)
	}
	return c
}

// Child returns a buffering collector for one shard of a sharded
// replay: it records events in memory instead of streaming them, so the
// shard goroutines never contend on the parent's tracer. Fold children
// back with Absorb. A nil parent returns a nil child (the no-op chain).
func (c *Collector) Child(shard int) *Collector {
	if c == nil {
		return nil
	}
	child := &Collector{
		shard:     shard,
		buffering: c.tracer != nil,
		counters:  make(map[string]int64),
	}
	if c.series != nil {
		child.series = NewSeries(c.series.interval)
	}
	return child
}

// Absorb merges the per-shard children into c deterministically: events
// are ordered by (virtual time, shard, per-shard sequence) and emitted
// to c's tracer in that order; counters sum; series bins sum. Because
// each shard's replay is itself deterministic, a traced sharded run
// yields an identical event stream for a fixed shard count.
func (c *Collector) Absorb(children []*Collector) {
	if c == nil {
		return
	}
	var total int
	for _, ch := range children {
		if ch != nil {
			total += len(ch.buf)
		}
	}
	merged := make([]Event, 0, total)
	for _, ch := range children {
		if ch == nil {
			continue
		}
		merged = append(merged, ch.buf...)
		for k, v := range ch.counters {
			c.counters[k] += v
		}
		if c.series != nil {
			c.series.merge(ch.series)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.TUS != b.TUS {
			return a.TUS < b.TUS
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	if c.tracer != nil {
		for i := range merged {
			c.tracer.Emit(&merged[i])
		}
	}
}

// Events returns a copy of the buffered event stream (buffering
// collectors only; streaming collectors return nil).
func (c *Collector) Events() []Event {
	if c == nil || len(c.buf) == 0 {
		return nil
	}
	out := make([]Event, len(c.buf))
	copy(out, c.buf)
	return out
}

// emit stamps and routes one event.
func (c *Collector) emit(e Event) {
	e.Shard = c.shard
	e.Seq = c.seq
	c.seq++
	c.counters["edc_events_total"]++
	if c.buffering {
		c.buf = append(c.buf, e)
	}
	if c.tracer != nil {
		c.tracer.Emit(&e)
	}
}

// op renders the admit/defer direction label.
func op(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// Admit records one request admitted by the frontend.
func (c *Collector) Admit(now time.Duration, off, size int64, write bool) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_admitted_total{op=%q}", op(write))]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvAdmit, Op: op(write), Off: off, Size: size})
}

// Defer records one request parked in the deferred FIFO; queued is the
// queue depth including it.
func (c *Collector) Defer(now time.Duration, off, size int64, write bool, queued int) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_deferred_total{op=%q}", op(write))]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvDefer, Op: op(write), Off: off, Size: size, Queued: queued})
}

// AdmitTenant records one tenant-tagged request admitted by the
// frontend: the admit event gains the tenant label and the per-tenant
// counters tick. Called instead of Admit when QoS tagging is active.
func (c *Collector) AdmitTenant(now time.Duration, off, size int64, write bool, tenant string) {
	if c == nil {
		return
	}
	if tenant == "" {
		c.Admit(now, off, size, write)
		return
	}
	c.counters[fmt.Sprintf("edc_admitted_total{op=%q}", op(write))]++
	c.counters[fmt.Sprintf("edc_tenant_requests_total{tenant=%q}", tenant)]++
	c.counters[fmt.Sprintf("edc_tenant_bytes_total{tenant=%q}", tenant)] += size
	c.emit(Event{TUS: now.Microseconds(), Type: EvAdmit, Op: op(write), Off: off, Size: size, Tenant: tenant})
}

// Shape records the bandwidth shaper delaying a tenant's request by
// delay of virtual time before admission.
func (c *Collector) Shape(now time.Duration, off, size int64, write bool, tenant string, delay time.Duration) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_tenant_shaped_total{tenant=%q}", tenant)]++
	c.counters[fmt.Sprintf("edc_tenant_shape_delay_us_total{tenant=%q}", tenant)] += delay.Microseconds()
	c.emit(Event{TUS: now.Microseconds(), Type: EvShape, Op: op(write), Off: off, Size: size,
		Tenant: tenant, DelayUS: delay.Microseconds()})
}

// AdmitReject records admission control refusing a tenant's request
// for the given reason ("queue_depth").
func (c *Collector) AdmitReject(now time.Duration, off, size int64, write bool, tenant, reason string) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_tenant_rejected_total{tenant=%q}", tenant)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvAdmitReject, Op: op(write), Off: off, Size: size,
		Tenant: tenant, Reason: reason})
}

// SDMerge records a write joining the pending run; writes is the run's
// host-write count including it.
func (c *Collector) SDMerge(now time.Duration, off, size int64, writes int) {
	if c == nil {
		return
	}
	c.counters["edc_sd_merged_total"]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvSDMerge, Off: off, Size: size, Writes: writes})
}

// SDFlush records the pending run [runOff, runOff+runSize), carrying
// writes host writes, leaving the detector for the given reason.
func (c *Collector) SDFlush(now time.Duration, reason string, runOff, runSize int64, writes int) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_sd_flushes_total{reason=%q}", reason)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvSDFlush, Reason: reason, Off: runOff, Size: runSize, Writes: writes})
}

// Estimate records the sampling estimator's verdict on the run at
// [off, off+size): the sampled ratio and whether the run is written
// through (ratio below the 4/3 write-through threshold).
func (c *Collector) Estimate(now time.Duration, off, size int64, ratio float64, writeThrough bool) {
	if c == nil {
		return
	}
	verdict := "compress"
	if writeThrough {
		verdict = "write_through"
	}
	c.counters[fmt.Sprintf("edc_estimates_total{verdict=%q}", verdict)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvEstimate, Off: off, Size: size, Ratio: ratio, Verdict: verdict})
}

// PolicyChoice records the codec the policy selected for the run at
// [off, off+size) given the calculated IOPS at decision time. codec is
// "none" when the run is stored uncompressed.
func (c *Collector) PolicyChoice(now time.Duration, off, size int64, ciops float64, codec string) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_policy_runs_total{codec=%q}", codec)]++
	if c.series != nil {
		c.series.observeIOPS(now, ciops)
		c.series.observeCodec(now, codec)
	}
	c.emit(Event{TUS: now.Microseconds(), Type: EvPolicy, Off: off, Size: size, CIOPS: ciops, Codec: codec})
}

// SlotChoice records the quantized placement of one stored run: the
// codec output of comp bytes went into a slot of slot bytes (Fig. 5
// classes 25/50/75/100 % of orig). oversize marks codec output above
// the 75 % class, which reverts the run to uncompressed storage.
func (c *Collector) SlotChoice(now time.Duration, off, orig int64, codec string, comp, slot int64, oversize bool) {
	if c == nil {
		return
	}
	e := Event{TUS: now.Microseconds(), Type: EvSlot, Off: off, Size: orig,
		Codec: codec, Comp: comp, Slot: slot, ClassPct: slotClassPct(orig, slot), Waste: slot - comp}
	if oversize {
		e.Reason = "oversize"
		c.counters["edc_slot_oversize_total"]++
	} else {
		c.counters[fmt.Sprintf("edc_slots_total{class=%q}", fmt.Sprintf("%d", e.ClassPct))]++
		c.counters["edc_slot_waste_bytes_total"] += e.Waste
	}
	c.emit(e)
}

// SlotAlloc records slot bytes entering use (occupancy series +
// counters); the engine calls it when an extent is placed.
func (c *Collector) SlotAlloc(now time.Duration, bytes int64) {
	if c == nil {
		return
	}
	c.counters["edc_slot_alloc_bytes_total"] += bytes
	if c.series != nil {
		c.series.observeSlot(now, bytes)
	}
}

// SlotFree records a dead extent's slot returning to the allocator:
// the logical range [off, off+orig) stored in slot bytes.
func (c *Collector) SlotFree(now time.Duration, off, orig, slot int64) {
	if c == nil {
		return
	}
	c.counters["edc_slot_free_bytes_total"] += slot
	if c.series != nil {
		c.series.observeSlot(now, -slot)
	}
	c.emit(Event{TUS: now.Microseconds(), Type: EvSlotFree, Off: off, Size: orig, Slot: slot})
}

// CacheLookup records the host-cache ruling on a read of
// [off, off+size).
func (c *Collector) CacheLookup(now time.Duration, off, size int64, hit bool) {
	if c == nil {
		return
	}
	typ, result := EvCacheMiss, "miss"
	if hit {
		typ, result = EvCacheHit, "hit"
	}
	c.counters[fmt.Sprintf("edc_cache_lookups_total{result=%q}", result)]++
	c.emit(Event{TUS: now.Microseconds(), Type: typ, Off: off, Size: size})
}

// Decompress records a read segment that must decompress a compressed
// extent: comp stored bytes inflate back to orig bytes with codec.
func (c *Collector) Decompress(now time.Duration, off, orig int64, codec string, comp int64) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_decompress_total{codec=%q}", codec)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvDecompress, Off: off, Size: orig, Codec: codec, Comp: comp})
}

// Fault records one injected device fault on an operation against
// [off, off+size) of member device dev.
func (c *Collector) Fault(now time.Duration, opName string, dev int, off, size int64, transient bool) {
	if c == nil {
		return
	}
	kind := "hard"
	if transient {
		kind = "transient"
	}
	c.counters[fmt.Sprintf("edc_faults_total{op=%q,kind=%q}", opName, kind)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvFault, Op: opName, Dev: dev,
		Off: off, Size: size, Reason: kind})
}

// Retry records a path re-issuing an operation after a transient fault;
// attempt is the retry ordinal (1 = first retry).
func (c *Collector) Retry(now time.Duration, opName string, off, size int64, attempt int) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_retries_total{op=%q}", opName)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvRetry, Op: opName,
		Off: off, Size: size, Attempt: attempt})
}

// DegradedRead records a RAIS5 stripe reconstruction: the read of
// [off, off+size) on member dev failed hard and was rebuilt from the
// surviving devices.
func (c *Collector) DegradedRead(now time.Duration, dev int, off, size int64) {
	if c == nil {
		return
	}
	c.counters["edc_degraded_reads_total"]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvDegradedRead, Dev: dev, Off: off, Size: size})
}

// Recover records one recovery decision: reason "realloc" (hard write
// failure moved the run to a fresh slot at [off, off+size)),
// "read_abandon" (a read gave up after retries and served lost data),
// or "crash" (journal recovery rebuilt the mapping; size carries the
// recovered live bytes and records the journal records applied).
func (c *Collector) Recover(now time.Duration, reason string, off, size int64, records int) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_recoveries_total{reason=%q}", reason)]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvRecover, Reason: reason,
		Off: off, Size: size, Records: records})
}

// Recompress records one background maintenance relocation: the extent
// at [off, off+orig) moved from codec `from` (slot oldSlot) to codec
// `to` (compressed length comp in slot newSlot) because it went cold or
// hot (reason).
func (c *Collector) Recompress(now time.Duration, off, orig int64, from, to string, comp, oldSlot, newSlot int64, reason string) {
	if c == nil {
		return
	}
	c.counters[fmt.Sprintf("edc_maint_recompress_total{reason=%q}", reason)]++
	if saved := oldSlot - newSlot; saved > 0 {
		c.counters["edc_maint_reclaimed_bytes_total"] += saved
	}
	c.emit(Event{TUS: now.Microseconds(), Type: EvRecompress, Reason: reason,
		Off: off, Size: orig, From: from, Codec: to, Comp: comp,
		Slot: newSlot, ClassPct: slotClassPct(orig, newSlot), Reclaimed: oldSlot - newSlot})
}

// Compact records one allocator free-list compaction: classes size
// classes existed, merged adjacent free slots were coalesced, and
// reclaimed bytes rejoined the untouched region.
func (c *Collector) Compact(now time.Duration, classes, merged int, reclaimed int64) {
	if c == nil {
		return
	}
	c.counters["edc_maint_compactions_total"]++
	c.counters["edc_maint_coalesced_total"] += int64(merged)
	c.emit(Event{TUS: now.Microseconds(), Type: EvCompact,
		Classes: classes, Merged: merged, Reclaimed: reclaimed})
}

// Resplit records serve mode splitting this shard's LBA range at the
// heat-balanced boundary splitOff (shard-local bytes): moved extents
// carrying movedSlot slot bytes migrated to a new shard, leaving
// left/right live blocks on the two sides. Emitted by the source
// shard's collector, so Event.Shard identifies which shard split.
func (c *Collector) Resplit(now time.Duration, splitOff int64, moved int, movedSlot, left, right int64) {
	if c == nil {
		return
	}
	c.counters["edc_resplit_total"]++
	c.counters["edc_resplit_moved_extents_total"] += int64(moved)
	c.counters["edc_resplit_moved_slot_bytes_total"] += movedSlot
	c.emit(Event{TUS: now.Microseconds(), Type: EvResplit, Off: splitOff,
		Records: moved, Slot: movedSlot, LeftBlocks: left, RightBlocks: right})
}

// DedupHit records a flushed run whose fingerprint matched the extent
// at targetOff: the run at [off, off+size) mapped by reference and
// skipped compression and allocation of slot bytes.
func (c *Collector) DedupHit(now time.Duration, off, size, targetOff, slot int64) {
	if c == nil {
		return
	}
	c.counters["edc_dedup_hits_total"]++
	c.counters["edc_dedup_saved_bytes_total"] += slot
	c.emit(Event{TUS: now.Microseconds(), Type: EvDedupHit, Off: off, Size: size,
		Target: targetOff, Slot: slot})
}

// DedupMiss records a flushed run whose fingerprint was unseen; the run
// continued down the normal compression pipeline.
func (c *Collector) DedupMiss(now time.Duration, off, size int64) {
	if c == nil {
		return
	}
	c.counters["edc_dedup_misses_total"]++
	c.emit(Event{TUS: now.Microseconds(), Type: EvDedupMiss, Off: off, Size: size})
}

// Unref records a dedup-shared extent losing its last reference: the
// extent once mapped at [off, off+orig) released slot bytes back to the
// allocator.
func (c *Collector) Unref(now time.Duration, off, orig, slot int64) {
	if c == nil {
		return
	}
	c.counters["edc_dedup_unrefs_total"]++
	c.counters["edc_slot_free_bytes_total"] += slot
	if c.series != nil {
		c.series.observeSlot(now, -slot)
	}
	c.emit(Event{TUS: now.Microseconds(), Type: EvUnref, Off: off, Size: orig, Slot: slot})
}

// slotClassPct maps a slot length to its quantized class percentage.
// Non-quantized slots (the exact-fit ablation) round up to the nearest
// percent.
func slotClassPct(orig, slot int64) int {
	if orig <= 0 {
		return 0
	}
	quarter := (orig + 3) / 4
	if quarter > 0 && slot%quarter == 0 && slot/quarter >= 1 && slot/quarter <= 4 {
		return int(25 * (slot / quarter))
	}
	if slot >= orig {
		return 100
	}
	return int((slot*100 + orig - 1) / orig)
}

// Counters returns a copy of the counter map (Prometheus-style keys,
// labels inline: `edc_sd_flushes_total{reason="read"}`).
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Report snapshots the collector for embedding in RunStats and JSON
// output. A nil collector reports nil.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	r := &Report{Counters: c.Counters()}
	if c.series != nil {
		r.Series = c.series.report()
	}
	return r
}

// Report is the end-of-run observability snapshot: the counters and, if
// sampling was enabled, the time series.
type Report struct {
	// Counters holds the cumulative decision counters keyed by
	// Prometheus-style name (labels inline).
	Counters map[string]int64 `json:"counters"`
	// Series holds the sampled time series (nil when disabled).
	Series *SeriesReport `json:"series,omitempty"`
}

// counterHelp documents each counter family for the text exposition.
var counterHelp = map[string]string{
	"edc_events_total":                   "decision events emitted",
	"edc_admitted_total":                 "host requests admitted by the frontend",
	"edc_deferred_total":                 "host requests parked by the closed-loop bound",
	"edc_sd_merged_total":                "writes merged into a pending run",
	"edc_sd_flushes_total":               "pending runs flushed, by reason",
	"edc_estimates_total":                "sampling-estimator verdicts",
	"edc_policy_runs_total":              "stored runs by selected codec",
	"edc_slots_total":                    "quantized slot placements by class",
	"edc_slot_oversize_total":            "runs whose codec output missed the 75% class",
	"edc_slot_waste_bytes_total":         "slot bytes beyond codec output (internal fragmentation)",
	"edc_slot_alloc_bytes_total":         "slot bytes allocated",
	"edc_slot_free_bytes_total":          "slot bytes freed by dead extents",
	"edc_cache_lookups_total":            "host-cache read lookups by result",
	"edc_decompress_total":               "read segments requiring decompression, by codec",
	"edc_faults_total":                   "injected device faults by operation and kind",
	"edc_retries_total":                  "operations re-issued after transient faults",
	"edc_degraded_reads_total":           "RAIS5 reads reconstructed from surviving members",
	"edc_recoveries_total":               "recovery decisions by reason",
	"edc_maint_recompress_total":         "extents rewritten by background maintenance, by reason",
	"edc_maint_reclaimed_bytes_total":    "slot bytes reclaimed by cold recompression",
	"edc_maint_compactions_total":        "allocator free-list compactions",
	"edc_maint_coalesced_total":          "adjacent free slots merged by compaction",
	"edc_dedup_hits_total":               "flushed runs deduplicated against an existing extent",
	"edc_dedup_misses_total":             "flushed runs fingerprinted but unseen in the content index",
	"edc_dedup_saved_bytes_total":        "slot bytes dedup hits avoided allocating",
	"edc_dedup_unrefs_total":             "shared extents released on their last unref",
	"edc_tenant_requests_total":          "tenant-tagged requests admitted, by tenant",
	"edc_tenant_bytes_total":             "tenant-tagged bytes admitted, by tenant",
	"edc_tenant_shaped_total":            "requests delayed by a tenant bandwidth schedule",
	"edc_tenant_shape_delay_us_total":    "virtual microseconds of bandwidth-shaping delay, by tenant",
	"edc_tenant_rejected_total":          "requests refused admission, by tenant",
	"edc_resplit_total":                  "serve-mode shard splits at heat-balanced boundaries",
	"edc_resplit_moved_extents_total":    "extents migrated to new shards by resplits",
	"edc_resplit_moved_slot_bytes_total": "slot bytes migrated to new shards by resplits",
}

// WritePrometheus renders the counters in the Prometheus text
// exposition format (families sorted, HELP/TYPE once per family).
func (r *Report) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := ""
	for _, k := range keys {
		family := k
		if i := indexByte(k, '{'); i >= 0 {
			family = k[:i]
		}
		if family != seen {
			seen = family
			if help := counterHelp[family]; help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, r.Counters[k]); err != nil {
			return err
		}
	}
	return nil
}

// indexByte is strings.IndexByte without the import.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
