package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilCollectorHooksAreNoOps exercises every hook on a nil receiver:
// the disabled path must be safe to call unconditionally.
func TestNilCollectorHooksAreNoOps(t *testing.T) {
	var c *Collector
	c.Admit(0, 0, 4096, true)
	c.Defer(0, 0, 4096, false, 3)
	c.SDMerge(0, 0, 4096, 2)
	c.SDFlush(0, FlushRead, 0, 8192, 2)
	c.Estimate(0, 0, 8192, 2.5, false)
	c.PolicyChoice(0, 0, 8192, 1000, "lz4")
	c.SlotChoice(0, 0, 8192, "lz4", 3000, 4096, false)
	c.SlotAlloc(0, 4096)
	c.SlotFree(0, 0, 8192, 4096)
	c.CacheLookup(0, 0, 4096, true)
	c.Decompress(0, 0, 8192, "lz4", 3000)
	c.Absorb([]*Collector{nil})
	if c.Events() != nil || c.Counters() != nil || c.Report() != nil {
		t.Fatal("nil collector must report nothing")
	}
	if c.Child(1) != nil {
		t.Fatal("nil collector must hand out nil children")
	}
}

// TestJSONLTracerValidLines checks every emitted line parses back into
// an Event.
func TestJSONLTracerValidLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	c := New(Config{Tracer: tr})
	c.Admit(10*time.Microsecond, 4096, 8192, true)
	c.SDFlush(20*time.Microsecond, FlushMaxRun, 4096, 65536, 16)
	c.PolicyChoice(30*time.Microsecond, 4096, 65536, 812.5, "gz")
	c.SlotChoice(40*time.Microsecond, 4096, 65536, "gz", 20000, 32768, false)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	var seen []EventType
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Seq != int64(n) {
			t.Fatalf("line %d: seq=%d", n, e.Seq)
		}
		seen = append(seen, e.Type)
		n++
	}
	want := []EventType{EvAdmit, EvSDFlush, EvPolicy, EvSlot}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("event types %v, want %v", seen, want)
	}
}

// TestSlotClassPct covers the quantized classes and the exact-fit
// ablation fallback.
func TestSlotClassPct(t *testing.T) {
	cases := []struct {
		orig, slot int64
		want       int
	}{
		{8192, 2048, 25},
		{8192, 4096, 50},
		{8192, 6144, 75},
		{8192, 8192, 100},
		{8192, 9000, 100}, // >= orig
		{8192, 3000, 37},  // exact-fit ablation: ceil(3000*100/8192)
		{0, 4096, 0},      // degenerate
		{4097, 1025, 25},  // quarter rounds up: (4097+3)/4 = 1025
	}
	for _, tc := range cases {
		if got := slotClassPct(tc.orig, tc.slot); got != tc.want {
			t.Errorf("slotClassPct(%d,%d)=%d want %d", tc.orig, tc.slot, got, tc.want)
		}
	}
}

// TestCountersAndReport checks counter keys and the JSON round-trip of
// the report.
func TestCountersAndReport(t *testing.T) {
	c := New(Config{SeriesInterval: time.Second})
	c.Admit(0, 0, 4096, true)
	c.Admit(time.Second, 4096, 4096, false)
	c.SDFlush(time.Second, FlushNonContig, 0, 8192, 2)
	c.Estimate(time.Second, 0, 8192, 1.1, true)
	c.PolicyChoice(time.Second, 0, 8192, 500, "lzf")
	c.SlotChoice(time.Second, 0, 8192, "lzf", 3500, 4096, false)
	c.SlotAlloc(time.Second, 4096)
	c.SlotFree(2*time.Second, 0, 8192, 4096)
	c.CacheLookup(2*time.Second, 0, 4096, false)
	c.Decompress(2*time.Second, 0, 8192, "lzf", 3500)

	got := c.Counters()
	for k, want := range map[string]int64{
		`edc_admitted_total{op="write"}`:               1,
		`edc_admitted_total{op="read"}`:                1,
		`edc_sd_flushes_total{reason="noncontig"}`:     1,
		`edc_estimates_total{verdict="write_through"}`: 1,
		`edc_policy_runs_total{codec="lzf"}`:           1,
		`edc_slots_total{class="50"}`:                  1,
		`edc_slot_waste_bytes_total`:                   596,
		`edc_slot_alloc_bytes_total`:                   4096,
		`edc_slot_free_bytes_total`:                    4096,
		`edc_cache_lookups_total{result="miss"}`:       1,
		`edc_decompress_total{codec="lzf"}`:            1,
	} {
		if got[k] != want {
			t.Errorf("counter %s = %d, want %d", k, got[k], want)
		}
	}

	r := c.Report()
	if r.Series == nil || r.Series.IntervalUS != time.Second.Microseconds() {
		t.Fatalf("series report missing or wrong interval: %+v", r.Series)
	}
	// Slot occupancy: +4096 in bin 1, -4096 in bin 2 → cumulative 0 at end.
	sb := r.Series.SlotBytes
	if len(sb) != 3 || sb[1].V != 4096 || sb[2].V != 0 {
		t.Fatalf("slot occupancy curve wrong: %+v", sb)
	}
	if len(r.Series.CIOPS) != 1 || r.Series.CIOPS[0].V != 500 {
		t.Fatalf("ciops series wrong: %+v", r.Series.CIOPS)
	}

	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Counters, r.Counters) {
		t.Fatal("counters did not round-trip through JSON")
	}
}

// TestOversizeSlotCounts verifies oversize runs hit their own counter
// and carry the reason field.
func TestOversizeSlotCounts(t *testing.T) {
	var events []Event
	c := New(Config{Tracer: TracerFunc(func(e *Event) { events = append(events, *e) })})
	c.SlotChoice(0, 0, 8192, "lz4", 7000, 8192, true)
	if got := c.Counters()["edc_slot_oversize_total"]; got != 1 {
		t.Fatalf("oversize counter = %d", got)
	}
	if len(events) != 1 || events[0].Reason != "oversize" {
		t.Fatalf("oversize event wrong: %+v", events)
	}
}

// TestAbsorbDeterministicMerge checks that children merge in
// (time, shard, seq) order regardless of child slice order.
func TestAbsorbDeterministicMerge(t *testing.T) {
	run := func(order []int) []Event {
		parent := New(Config{Tracer: TracerFunc(func(*Event) {}), SeriesInterval: time.Second})
		kids := make([]*Collector, 3)
		for i := range kids {
			kids[i] = parent.Child(i)
		}
		// Interleaved virtual times across shards.
		kids[1].Admit(5*time.Microsecond, 0, 1, true)
		kids[0].Admit(5*time.Microsecond, 0, 2, true)
		kids[2].Admit(3*time.Microsecond, 0, 3, true)
		kids[0].Admit(5*time.Microsecond, 0, 4, true)
		var out []Event
		parent.tracer = TracerFunc(func(e *Event) { out = append(out, *e) })
		shuffled := make([]*Collector, len(kids))
		for i, j := range order {
			shuffled[i] = kids[j]
		}
		parent.Absorb(shuffled)
		return out
	}
	a := run([]int{0, 1, 2})
	b := run([]int{2, 0, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merge order depends on child slice order:\n%+v\n%+v", a, b)
	}
	wantSizes := []int64{3, 2, 4, 1}
	for i, e := range a {
		if e.Size != wantSizes[i] {
			t.Fatalf("merged order wrong at %d: %+v", i, a)
		}
	}
}

// TestWritePrometheus checks exposition format basics: sorted families,
// TYPE lines, parseable samples.
func TestWritePrometheus(t *testing.T) {
	c := New(Config{})
	c.Admit(0, 0, 4096, true)
	c.CacheLookup(0, 0, 4096, true)
	var buf bytes.Buffer
	if err := c.Report().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE edc_admitted_total counter") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `edc_admitted_total{op="write"} 1`) {
		t.Fatalf("missing sample:\n%s", out)
	}
	var lastFamily string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fam := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			fam = line[:i]
		}
		if fam < lastFamily {
			t.Fatalf("families not sorted: %q after %q", fam, lastFamily)
		}
		lastFamily = fam
	}
	if err := (*Report)(nil).WritePrometheus(&buf); err != nil {
		t.Fatal("nil report must write nothing without error")
	}
}

// TestSeriesMergeAcrossChildren verifies per-shard series bins sum in
// the parent.
func TestSeriesMergeAcrossChildren(t *testing.T) {
	parent := New(Config{SeriesInterval: time.Second})
	a, b := parent.Child(0), parent.Child(1)
	a.PolicyChoice(500*time.Millisecond, 0, 1, 100, "lz4")
	b.PolicyChoice(600*time.Millisecond, 0, 1, 300, "lz4")
	b.SlotAlloc(600*time.Millisecond, 1024)
	parent.Absorb([]*Collector{a, b})
	r := parent.Report()
	if len(r.Series.CIOPS) != 1 || r.Series.CIOPS[0].V != 200 {
		t.Fatalf("merged ciops mean wrong: %+v", r.Series.CIOPS)
	}
	if got := r.Series.CodecRuns["lz4"]; len(got) != 1 || got[0].V != 2 {
		t.Fatalf("merged codec runs wrong: %+v", got)
	}
	if len(r.Series.SlotBytes) != 1 || r.Series.SlotBytes[0].V != 1024 {
		t.Fatalf("merged slot occupancy wrong: %+v", r.Series.SlotBytes)
	}
}
