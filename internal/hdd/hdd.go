// Package hdd is an analytical hard-disk model used for the paper's
// stated future work ("conduct more experiments on other storage
// devices, such as HDD-based ... storage systems"). The model captures
// what matters for compression studies on disks: positioning time
// (seek + rotational latency) that is independent of request size, and
// transfer time proportional to size — so compression helps large
// sequential transfers far more than small random ones, the opposite
// emphasis from flash.
package hdd

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Config describes the simulated disk.
type Config struct {
	CapacityBytes int64
	// RPM sets rotational latency (half a revolution on average).
	RPM int
	// MinSeek is the track-to-track seek; MaxSeek the full stroke.
	MinSeek time.Duration
	MaxSeek time.Duration
	// TransferBW is the media/interface bandwidth in bytes/second.
	TransferBW int64
	// BlockSize is the logical block granularity.
	BlockSize int
}

// DefaultConfig models a 7200 RPM enterprise SATA disk.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 2 << 30, // scaled like the SSD model
		RPM:           7200,
		MinSeek:       500 * time.Microsecond,
		MaxSeek:       9 * time.Millisecond,
		TransferBW:    150 << 20,
		BlockSize:     4096,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return errors.New("hdd: CapacityBytes must be positive")
	case c.RPM <= 0:
		return errors.New("hdd: RPM must be positive")
	case c.MinSeek < 0 || c.MaxSeek < c.MinSeek:
		return errors.New("hdd: seeks must satisfy 0 <= min <= max")
	case c.TransferBW <= 0:
		return errors.New("hdd: TransferBW must be positive")
	case c.BlockSize <= 0:
		return errors.New("hdd: BlockSize must be positive")
	}
	return nil
}

// Stats counts disk activity.
type Stats struct {
	Reads       int64
	Writes      int64
	BytesRead   int64
	BytesWrit   int64
	SeekTime    time.Duration
	RotTime     time.Duration
	XferTime    time.Duration
	Sequentials int64 // operations that needed no seek
}

// HDD is the simulated disk. Not safe for concurrent use (the simulation
// kernel is single-threaded).
type HDD struct {
	cfg   Config
	head  int64 // current head byte position
	stats Stats
}

// New returns a disk with the head parked at offset 0.
func New(cfg Config) (*HDD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HDD{cfg: cfg}, nil
}

// Config returns the disk configuration.
func (d *HDD) Config() Config { return d.cfg }

// LogicalBytes returns the usable capacity.
func (d *HDD) LogicalBytes() int64 { return d.cfg.CapacityBytes }

// Stats returns a snapshot of the counters.
func (d *HDD) Stats() Stats { return d.stats }

// rotationalLatency is the deterministic expected value: half a turn.
func (d *HDD) rotationalLatency() time.Duration {
	perRev := time.Minute / time.Duration(d.cfg.RPM)
	return perRev / 2
}

// seekTime models seek as min + (max-min)*sqrt(distance/capacity), the
// classic square-root approximation of arm acceleration.
func (d *HDD) seekTime(from, to int64) time.Duration {
	if from == to {
		return 0
	}
	dist := from - to
	if dist < 0 {
		dist = -dist
	}
	frac := math.Sqrt(float64(dist) / float64(d.cfg.CapacityBytes))
	return d.cfg.MinSeek + time.Duration(frac*float64(d.cfg.MaxSeek-d.cfg.MinSeek))
}

// access computes the service time for an operation at off and moves the
// head to the end of the transfer.
func (d *HDD) access(off, bytes int64) (time.Duration, error) {
	if bytes <= 0 {
		return 0, nil
	}
	if off < 0 || off+bytes > d.cfg.CapacityBytes {
		return 0, fmt.Errorf("hdd: access [%d,+%d) beyond capacity %d", off, bytes, d.cfg.CapacityBytes)
	}
	seek := d.seekTime(d.head, off)
	var rot time.Duration
	if seek == 0 {
		d.stats.Sequentials++
	} else {
		rot = d.rotationalLatency()
	}
	xfer := time.Duration(bytes * int64(time.Second) / d.cfg.TransferBW)
	d.head = off + bytes
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.XferTime += xfer
	return seek + rot + xfer, nil
}

// ReadTime returns the service time of a read at off.
func (d *HDD) ReadTime(off, bytes int64) (time.Duration, error) {
	t, err := d.access(off, bytes)
	if err != nil {
		return 0, err
	}
	d.stats.Reads++
	d.stats.BytesRead += bytes
	return t, nil
}

// WriteTime returns the service time of a write at off.
func (d *HDD) WriteTime(off, bytes int64) (time.Duration, error) {
	t, err := d.access(off, bytes)
	if err != nil {
		return 0, err
	}
	d.stats.Writes++
	d.stats.BytesWrit += bytes
	return t, nil
}
