package hdd

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.RPM = 0 },
		func(c *Config) { c.MinSeek = -time.Millisecond },
		func(c *Config) { c.MaxSeek = c.MinSeek - time.Millisecond },
		func(c *Config) { c.TransferBW = 0 },
		func(c *Config) { c.BlockSize = 0 },
	}
	for i, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestSequentialAccessSkipsSeek(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := d.ReadTime(1<<20, 65536)
	if err != nil {
		t.Fatal(err)
	}
	// The head is now at 1M+64K; a contiguous read pays transfer only.
	t2, err := d.ReadTime(1<<20+65536, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if t2 >= t1 {
		t.Fatalf("sequential read %v not faster than cold read %v", t2, t1)
	}
	if d.Stats().Sequentials != 1 {
		t.Fatalf("sequentials = %d", d.Stats().Sequentials)
	}
	// Sequential transfer time is purely size-proportional.
	want := time.Duration(65536 * int64(time.Second) / DefaultConfig().TransferBW)
	if t2 != want {
		t.Fatalf("sequential time = %v; want %v", t2, want)
	}
}

func TestRandomAccessDominatedByPositioning(t *testing.T) {
	d, _ := New(DefaultConfig())
	// 4K random read: positioning should dwarf transfer.
	tr, err := d.ReadTime(1<<30, 4096)
	if err != nil {
		t.Fatal(err)
	}
	xfer := time.Duration(4096 * int64(time.Second) / DefaultConfig().TransferBW)
	if tr < 10*xfer {
		t.Fatalf("random 4K read %v not positioning-dominated (xfer %v)", tr, xfer)
	}
}

func TestSeekGrowsWithDistance(t *testing.T) {
	d, _ := New(DefaultConfig())
	near := d.seekTime(0, 1<<20)
	far := d.seekTime(0, d.LogicalBytes()-1)
	if far <= near {
		t.Fatalf("far seek %v not longer than near %v", far, near)
	}
	if far > DefaultConfig().MaxSeek {
		t.Fatalf("seek %v exceeds max %v", far, DefaultConfig().MaxSeek)
	}
	if d.seekTime(5, 5) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
}

func TestBounds(t *testing.T) {
	d, _ := New(DefaultConfig())
	if _, err := d.ReadTime(-1, 4096); err == nil {
		t.Fatal("negative offset should fail")
	}
	if _, err := d.WriteTime(d.LogicalBytes(), 4096); err == nil {
		t.Fatal("past-capacity write should fail")
	}
	if dt, err := d.ReadTime(0, 0); err != nil || dt != 0 {
		t.Fatalf("zero-byte read = %v, %v", dt, err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, _ := New(DefaultConfig())
	if _, err := d.WriteTime(0, 8192); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadTime(1<<25, 4096); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("ops = %+v", st)
	}
	if st.BytesWrit != 8192 || st.BytesRead != 4096 {
		t.Fatalf("bytes = %+v", st)
	}
	if st.XferTime <= 0 || st.RotTime <= 0 {
		t.Fatalf("time accounting = %+v", st)
	}
}

func TestRotationalLatencyMatchesRPM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RPM = 15000
	d, _ := New(cfg)
	want := time.Minute / 15000 / 2
	if got := d.rotationalLatency(); got != want {
		t.Fatalf("rot latency = %v; want %v", got, want)
	}
}
