package maint

import (
	"testing"
	"time"
)

func TestEpoch(t *testing.T) {
	el := 250 * time.Millisecond
	cases := []struct {
		now  time.Duration
		want int64
	}{
		{0, 0},
		{249 * time.Millisecond, 0},
		{250 * time.Millisecond, 1},
		{time.Second, 4},
		{time.Second + 249*time.Millisecond, 4},
	}
	for _, c := range cases {
		if got := Epoch(c.now, el); got != c.want {
			t.Errorf("Epoch(%v) = %d, want %d", c.now, got, c.want)
		}
	}
	if got := Epoch(time.Hour, 0); got != 0 {
		t.Errorf("Epoch with zero epochLen = %d, want 0", got)
	}
}

// Epoch rollover: hits accumulated in one epoch halve per epoch of
// inactivity and the recency clock advances with the touch.
func TestHeatEpochRollover(t *testing.T) {
	var h Heat
	for i := 0; i < 8; i++ {
		h.Touch(3)
	}
	if got := h.Hits(3); got != 8 {
		t.Fatalf("hits in epoch 3 = %d, want 8", got)
	}
	if got := h.IdleFor(3); got != 0 {
		t.Fatalf("IdleFor same epoch = %d, want 0", got)
	}
	// One epoch later: halved, idle for one.
	if got := h.Hits(4); got != 4 {
		t.Errorf("hits one epoch later = %d, want 4", got)
	}
	if got := h.IdleFor(4); got != 1 {
		t.Errorf("IdleFor one epoch later = %d, want 1", got)
	}
	// Three epochs later: 8 >> 3 == 1.
	if got := h.Hits(6); got != 1 {
		t.Errorf("hits three epochs later = %d, want 1", got)
	}
	// A touch after the gap decays first, then counts itself.
	h.Touch(6)
	if got := h.Hits(6); got != 2 {
		t.Errorf("hits after touch at 6 = %d, want 2", got)
	}
	// Far future: fully cold, idle reflects the last touch epoch.
	if got := h.Hits(100); got != 0 {
		t.Errorf("hits at epoch 100 = %d, want 0", got)
	}
	if got := h.IdleFor(100); got != 94 {
		t.Errorf("IdleFor(100) = %d, want 94", got)
	}
}

// A never-touched extent reports the whole epoch count as idle, so
// recovered mappings look cold immediately.
func TestHeatZeroValueIsCold(t *testing.T) {
	var h Heat
	if got := h.Hits(10); got != 0 {
		t.Errorf("zero-value hits = %d, want 0", got)
	}
	if got := h.IdleFor(10); got != 10 {
		t.Errorf("zero-value IdleFor(10) = %d, want 10", got)
	}
}

// Decay ordering: an extent touched more recently must never report
// fewer decayed hits than the same access count touched earlier.
func TestHeatDecayOrdering(t *testing.T) {
	var old, recent Heat
	for i := 0; i < 6; i++ {
		old.Touch(0)
		recent.Touch(2)
	}
	for epoch := int64(2); epoch < 12; epoch++ {
		if old.Hits(epoch) > recent.Hits(epoch) {
			t.Fatalf("epoch %d: older extent hotter (%d > %d)",
				epoch, old.Hits(epoch), recent.Hits(epoch))
		}
	}
	// And strictly cooler somewhere in between.
	if old.Hits(3) >= recent.Hits(3) {
		t.Errorf("epoch 3: old=%d want < recent=%d", old.Hits(3), recent.Hits(3))
	}
}

func TestHeatSaturation(t *testing.T) {
	var h Heat
	for i := 0; i < maxHits*2; i++ {
		h.Touch(0)
	}
	if got := h.Hits(0); got != maxHits {
		t.Errorf("saturated hits = %d, want %d", got, maxHits)
	}
}

func TestHistBucket(t *testing.T) {
	cases := []struct {
		hits uint16
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {500, 4}}
	for _, c := range cases {
		if got := HistBucket(c.hits); got != c.want {
			t.Errorf("HistBucket(%d) = %d, want %d", c.hits, got, c.want)
		}
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{Enabled: true}.Normalize()
	if c.Interval != 100*time.Millisecond || c.IdleIOPS != 300 ||
		c.BudgetPerTick != 8 || c.EpochLen != 250*time.Millisecond ||
		c.ColdEpochs != 4 || c.HotHits != 4 ||
		c.ColdCodec != "gz" || c.HotCodec != "lzf" || c.CompactClasses != 12 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Explicit values survive normalization.
	c2 := Config{Interval: time.Second, ColdCodec: "bwz"}.Normalize()
	if c2.Interval != time.Second || c2.ColdCodec != "bwz" {
		t.Fatalf("explicit fields overwritten: %+v", c2)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	for _, bad := range []Config{
		{Interval: -1}, {EpochLen: -1}, {IdleIOPS: -1},
		{BudgetPerTick: -1}, {ColdEpochs: -1}, {CompactClasses: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}

// fakeClock is a minimal deterministic Clock for scheduler tests.
type fakeClock struct {
	now     time.Duration
	pending int
	timers  []func()
}

func (c *fakeClock) Now() time.Duration { return c.now }
func (c *fakeClock) ScheduleHousekeepingAfter(d time.Duration, fn func()) {
	c.timers = append(c.timers, fn)
}
func (c *fakeClock) PendingWork() int { return c.pending }

// fire runs every queued timer, advancing the clock by d per timer.
func (c *fakeClock) fire(d time.Duration) {
	timers := c.timers
	c.timers = nil
	for _, fn := range timers {
		c.now += d
		fn()
	}
}

func TestSchedulerIdleGateAndBudget(t *testing.T) {
	cfg := Config{Enabled: true}.Normalize()
	clock := &fakeClock{pending: 1}
	idle := false
	var budgets []int
	s := NewScheduler(cfg, clock, func(time.Duration) bool { return idle },
		func(_ time.Duration, budget int) int {
			budgets = append(budgets, budget)
			return 3
		})
	s.Arm()
	s.Arm() // second arm is a no-op
	if len(clock.timers) != 1 {
		t.Fatalf("double Arm queued %d timers, want 1", len(clock.timers))
	}
	clock.fire(cfg.Interval) // busy tick: no step
	if len(budgets) != 0 {
		t.Fatalf("busy tick ran the step")
	}
	idle = true
	clock.fire(cfg.Interval) // idle tick: budgeted step
	if len(budgets) != 1 || budgets[0] != cfg.BudgetPerTick {
		t.Fatalf("budgets = %v, want [%d]", budgets, cfg.BudgetPerTick)
	}
	if s.Ticks() != 2 || s.IdleTicks() != 1 || s.Actions() != 3 {
		t.Fatalf("counters = %d/%d/%d, want 2/1/3",
			s.Ticks(), s.IdleTicks(), s.Actions())
	}
	// Once nothing is pending the scheduler disarms itself...
	clock.pending = 0
	clock.fire(cfg.Interval)
	if len(clock.timers) != 0 {
		t.Fatalf("scheduler re-armed with an empty event queue")
	}
	// ...and a later Arm (the serve-mode ingest hook) revives it.
	clock.pending = 1
	s.Arm()
	if len(clock.timers) != 1 {
		t.Fatalf("Arm after disarm did not schedule")
	}
}

func TestSchedulerNil(t *testing.T) {
	var s *Scheduler
	s.Arm() // must not panic
	if s.Ticks() != 0 || s.IdleTicks() != 0 || s.Actions() != 0 {
		t.Fatal("nil scheduler counters nonzero")
	}
}
