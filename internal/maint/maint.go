// Package maint holds the policy side of background maintenance:
// per-extent heat tracking (epoch-decayed recency + frequency
// counters), the maintenance configuration, and a virtual-time
// scheduler that wakes periodically, asks the workload monitor whether
// the device is idle, and hands a bounded work budget to a step
// callback. The package is deliberately mechanism-free — it never
// touches extents, slots, or devices directly — so the simulator core
// can drive relocation and compaction through it without an import
// cycle, and tests can exercise the temperature policy in isolation.
package maint

import (
	"errors"
	"fmt"
	"time"
)

// Epoch maps a virtual timestamp onto the heat-epoch counter used by
// Heat: epoch k covers [k*epochLen, (k+1)*epochLen). A non-positive
// epochLen yields epoch 0 forever (heat never decays).
func Epoch(now, epochLen time.Duration) int64 {
	if epochLen <= 0 {
		return 0
	}
	return int64(now / epochLen)
}

// maxHits saturates the per-epoch frequency counter; past this an
// extent cannot get hotter, which keeps decay cheap (a shift) and the
// counter small enough to embed in every mapping entry.
const maxHits = 1 << 14

// Heat is a per-extent temperature counter combining recency (the last
// epoch the extent was touched) and frequency (an access count that
// halves for every epoch that passes without a touch). The zero value
// is fully cold. Heat is sized to embed directly in a mapping entry
// and is only mutated from the owning shard's event loop, so it needs
// no synchronization.
type Heat struct {
	epoch int64
	hits  uint16
}

// Touch records one access at the given epoch: prior hits decay by the
// number of epochs elapsed since the last touch, then the count
// increments (saturating).
func (h *Heat) Touch(epoch int64) {
	h.hits = h.decayed(epoch)
	h.epoch = epoch
	if h.hits < maxHits {
		h.hits++
	}
}

// Hits reports the decayed access count as of the given epoch without
// mutating the counter.
func (h *Heat) Hits(epoch int64) uint16 {
	return h.decayed(epoch)
}

// IdleFor reports how many whole epochs have passed since the last
// touch (zero if touched in the current epoch). A never-touched Heat
// reports the epoch itself, so freshly recovered extents look cold.
func (h *Heat) IdleFor(epoch int64) int64 {
	if epoch <= h.epoch {
		return 0
	}
	return epoch - h.epoch
}

// decayed halves hits once per elapsed epoch since the last touch.
func (h *Heat) decayed(epoch int64) uint16 {
	d := epoch - h.epoch
	if d <= 0 {
		return h.hits
	}
	if d >= 16 {
		return 0
	}
	return h.hits >> uint(d)
}

// HistBuckets is the number of buckets in the end-of-run heat
// histogram: decayed hit counts 0, 1, 2-3, 4-7, and 8+.
const HistBuckets = 5

// HistBucket maps a decayed hit count to its heat-histogram bucket
// index in [0, HistBuckets).
func HistBucket(hits uint16) int {
	switch {
	case hits == 0:
		return 0
	case hits == 1:
		return 1
	case hits <= 3:
		return 2
	case hits <= 7:
		return 3
	default:
		return 4
	}
}

// Config parameterizes background maintenance. The zero value is
// disabled; Normalize fills every other zero field with the documented
// default so callers only set what they care about.
type Config struct {
	// Enabled turns background maintenance on. When false the engine
	// never arms the scheduler and the replay is bit-identical to a
	// build without maintenance.
	Enabled bool `json:"enabled"`

	// Interval is the virtual-time cadence of maintenance ticks
	// (default 100ms). Every tick the scheduler samples workload
	// intensity; only idle ticks do work.
	Interval time.Duration `json:"interval,omitempty"`

	// IdleIOPS is the calculated-IOPS ceiling under which the device
	// counts as idle (default 300, the stock gz ceiling — if the
	// foreground would pick the heaviest codec anyway, background work
	// cannot be preempting anything that matters).
	IdleIOPS float64 `json:"idle_iops,omitempty"`

	// BudgetPerTick caps how many extent relocations one idle tick may
	// start (default 8), bounding the maintenance I/O burst a returning
	// foreground workload can collide with.
	BudgetPerTick int `json:"budget_per_tick,omitempty"`

	// EpochLen is the heat-epoch length (default 250ms): access counts
	// halve once per epoch of inactivity.
	EpochLen time.Duration `json:"epoch_len,omitempty"`

	// ColdEpochs is how many whole epochs an extent must sit untouched
	// before it is recompression-cold (default 4, i.e. one second at
	// the default EpochLen).
	ColdEpochs int64 `json:"cold_epochs,omitempty"`

	// HotHits is the decayed hit count at which an extent counts as
	// hot enough to demote to a cheaper codec (default 4).
	HotHits uint16 `json:"hot_hits,omitempty"`

	// ColdCodec names the codec cold lzf/none extents are recompressed
	// to (default "gz"; "bwz" trades more CPU for more space).
	ColdCodec string `json:"cold_codec,omitempty"`

	// HotCodec names the cheap codec hot gz/bwz extents are demoted to
	// (default "lzf"; demotion falls back to an uncompressed slot when
	// the cheap codec cannot fit a quantized slot).
	HotCodec string `json:"hot_codec,omitempty"`

	// CompactClasses is the free-list size-class count at which an idle
	// tick compacts the allocator, merging adjacent free slots (default
	// 12).
	CompactClasses int `json:"compact_classes,omitempty"`
}

// Normalize returns cfg with every zero tunable replaced by its
// default. Enabled passes through unchanged.
func (c Config) Normalize() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.IdleIOPS <= 0 {
		c.IdleIOPS = 300
	}
	if c.BudgetPerTick <= 0 {
		c.BudgetPerTick = 8
	}
	if c.EpochLen <= 0 {
		c.EpochLen = 250 * time.Millisecond
	}
	if c.ColdEpochs <= 0 {
		c.ColdEpochs = 4
	}
	if c.HotHits == 0 {
		c.HotHits = 4
	}
	if c.ColdCodec == "" {
		c.ColdCodec = "gz"
	}
	if c.HotCodec == "" {
		c.HotCodec = "lzf"
	}
	if c.CompactClasses <= 0 {
		c.CompactClasses = 12
	}
	return c
}

// ErrBadConfig reports a maintenance configuration that cannot be
// normalized into something runnable.
var ErrBadConfig = errors.New("maint: invalid config")

// Validate rejects negative tunables that Normalize would otherwise
// silently replace; codec names are validated by the engine against
// its registry when the device is built.
func (c Config) Validate() error {
	if c.Interval < 0 || c.EpochLen < 0 {
		return fmt.Errorf("%w: negative interval", ErrBadConfig)
	}
	if c.IdleIOPS < 0 {
		return fmt.Errorf("%w: negative idle IOPS", ErrBadConfig)
	}
	if c.BudgetPerTick < 0 || c.ColdEpochs < 0 || c.CompactClasses < 0 {
		return fmt.Errorf("%w: negative budget", ErrBadConfig)
	}
	return nil
}

// Clock is the slice of the virtual-time engine the scheduler needs:
// the current time, timer scheduling, and whether any simulation work
// is still pending (so the scheduler can let the event loop drain).
type Clock interface {
	// Now reports the current virtual time.
	Now() time.Duration
	// ScheduleHousekeepingAfter runs fn after d of virtual time,
	// counting the timer as housekeeping (excluded from PendingWork).
	ScheduleHousekeepingAfter(d time.Duration, fn func())
	// PendingWork reports how many non-housekeeping events remain
	// queued. The scheduler gates its re-arm on this rather than the
	// raw pending count so that two independent timer loops (say, this
	// scheduler and a checkpoint persister) cannot keep each other —
	// and the event loop — alive forever.
	PendingWork() int
}

// Scheduler drives maintenance ticks in virtual time. It re-arms only
// while the engine has other pending work — the same contract the
// checkpoint persister uses — so an armed scheduler never keeps the
// event loop spinning after the workload drains; serve mode re-arms it
// on every ingested batch instead.
type Scheduler struct {
	cfg   Config
	clock Clock
	idle  func(now time.Duration) bool
	step  func(now time.Duration, budget int) int
	armed bool

	ticks, idleTicks, actions int64
}

// NewScheduler builds a scheduler over a normalized cfg. idle reports
// whether the device is quiet at a virtual time; step performs up to
// budget units of maintenance and returns how many it started.
func NewScheduler(cfg Config, clock Clock, idle func(time.Duration) bool, step func(time.Duration, int) int) *Scheduler {
	return &Scheduler{cfg: cfg, clock: clock, idle: idle, step: step}
}

// Arm schedules the next maintenance tick if one is not already
// queued. Safe to call repeatedly (and on a nil scheduler); the replay
// path arms once at start, the serve path on every batch.
func (s *Scheduler) Arm() {
	if s == nil || s.armed {
		return
	}
	s.armed = true
	s.clock.ScheduleHousekeepingAfter(s.cfg.Interval, s.tick)
}

// tick samples intensity, runs the budgeted step when idle, and
// re-arms only while other events remain pending.
func (s *Scheduler) tick() {
	s.armed = false
	s.ticks++
	now := s.clock.Now()
	if s.idle(now) {
		s.idleTicks++
		s.actions += int64(s.step(now, s.cfg.BudgetPerTick))
	}
	if s.clock.PendingWork() > 0 {
		s.Arm()
	}
}

// Ticks reports how many maintenance ticks have fired.
func (s *Scheduler) Ticks() int64 {
	if s == nil {
		return 0
	}
	return s.ticks
}

// IdleTicks reports how many ticks found the device idle.
func (s *Scheduler) IdleTicks() int64 {
	if s == nil {
		return 0
	}
	return s.idleTicks
}

// Actions reports the total maintenance actions started by idle ticks.
func (s *Scheduler) Actions() int64 {
	if s == nil {
		return 0
	}
	return s.actions
}
