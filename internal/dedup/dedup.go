// Package dedup holds the policy side of content-addressed
// deduplication: the 128-bit content fingerprint the write path computes
// for every merged run, and the configuration knob the facade exposes.
// Like internal/maint it is deliberately mechanism-free — the content
// index itself (fingerprint -> stored extent) lives in the simulator
// core, which owns extent lifetimes; this package only defines the hash
// and its tuning so the fingerprint can be tested in isolation and
// shared with tooling.
package dedup

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sum is a 128-bit content fingerprint. Two runs with equal Sums are
// treated as byte-identical by the dedup layer; at 128 bits the
// collision probability is negligible for any simulated volume.
type Sum struct {
	// Hi is the first 64-bit lane of the fingerprint.
	Hi uint64
	// Lo is the second, independently seeded 64-bit lane.
	Lo uint64
}

// splitmix is the SplitMix64 finalizer, the same mixer datagen uses to
// derive per-region seeds; chaining it over the input words gives a
// fast, well-distributed (non-cryptographic) fingerprint.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashSum fingerprints p under the given key. The key is fixed per
// device (Config.Key), so the fingerprint of a payload is deterministic
// across runs of the same configuration — the property the determinism
// gates (make dedupcheck) rely on. The two lanes are seeded from
// different key expansions and fed decorrelated views of each word, so
// a collision requires defeating both independently.
func HashSum(key uint64, p []byte) Sum {
	h1 := splitmix(key ^ 0x243f6a8885a308d3)
	h2 := splitmix(key ^ 0x452821e638d01377)
	i := 0
	for ; i+8 <= len(p); i += 8 {
		w := binary.LittleEndian.Uint64(p[i:])
		h1 = splitmix(h1 ^ w)
		h2 = splitmix(h2 ^ w*0x9e3779b97f4a7c15)
	}
	if rem := len(p) - i; rem > 0 {
		var tail [8]byte
		copy(tail[:], p[i:])
		w := binary.LittleEndian.Uint64(tail[:]) ^ uint64(rem)<<56
		h1 = splitmix(h1 ^ w)
		h2 = splitmix(h2 ^ w*0x9e3779b97f4a7c15)
	}
	n := uint64(len(p))
	return Sum{Hi: splitmix(h1 ^ n), Lo: splitmix(h2 ^ n)}
}

// DefaultKey seeds the fingerprint when the configuration leaves Key
// zero: an arbitrary odd constant, fixed so artifacts (journals,
// benchmark outputs) are comparable across runs by default.
const DefaultKey = 0xe7037ed1a0b428db

// DefaultMaxEntries bounds the content index when the configuration
// leaves MaxEntries zero: 1Mi fingerprints (~48 MiB of index for a
// fully unique corpus), far above what the bundled traces store.
const DefaultMaxEntries = 1 << 20

// Config parameterizes content-addressed dedup. The zero value is
// disabled; Normalize fills every other zero field with the documented
// default so callers only set what they care about.
type Config struct {
	// Enabled turns dedup on. When false the engine builds no content
	// index, the write path computes no fingerprints, and the replay is
	// bit-identical to a build without the dedup seam.
	Enabled bool `json:"enabled"`

	// Key seeds the per-device content fingerprint (default
	// DefaultKey). Shards of one system share the key; because shards
	// never exchange extents, per-shard indexes stay independent and
	// deterministic regardless.
	Key uint64 `json:"key,omitempty"`

	// MaxEntries caps the content index (default DefaultMaxEntries).
	// When the index is full, new fingerprints are simply not
	// registered — misses still store normally — so the bound is a
	// memory ceiling, not a correctness knob.
	MaxEntries int `json:"max_entries,omitempty"`
}

// Normalize returns cfg with every zero tunable replaced by its
// default. Enabled passes through unchanged.
func (c Config) Normalize() Config {
	if c.Key == 0 {
		c.Key = DefaultKey
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	return c
}

// ErrBadConfig reports a dedup configuration that cannot be normalized
// into something runnable.
var ErrBadConfig = errors.New("dedup: invalid config")

// Validate rejects values Normalize would otherwise silently replace.
func (c Config) Validate() error {
	if c.MaxEntries < 0 {
		return fmt.Errorf("%w: negative max entries", ErrBadConfig)
	}
	return nil
}
