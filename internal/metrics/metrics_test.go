package metrics

import (
	"math"
	"testing"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, v := range []float64{2, 4, 6} {
		s.Observe(v)
	}
	if s.Count() != 3 || s.Sum() != 12 {
		t.Fatalf("count/sum = %d/%v", s.Count(), s.Sum())
	}
	if s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %v; want %v", s.StdDev(), want)
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Observe(-5)
	s.Observe(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestLatencyHistPercentiles(t *testing.T) {
	h := NewLatencyHist()
	// 100 observations: 1ms..100ms
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v; want ~50ms", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v; want ~99ms", p99)
	}
	mean := h.Mean()
	if mean < 49*time.Millisecond || mean > 52*time.Millisecond {
		t.Fatalf("mean = %v; want ~50.5ms", mean)
	}
}

func TestLatencyHistEdges(t *testing.T) {
	h := NewLatencyHist()
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist should report zero")
	}
	h.Observe(0)               // below 1µs clamps to first bucket
	h.Observe(10 * time.Hour)  // overflow
	h.Observe(3 * time.Second) // normal
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if p := h.Percentile(0); p > 2*time.Microsecond {
		t.Fatalf("p0 = %v; want ~1µs", p)
	}
	if p := h.Percentile(-5); p > 2*time.Microsecond {
		t.Fatalf("clamped negative percentile = %v", p)
	}
	_ = h.Percentile(200) // clamped, must not panic
}

func TestLatencyHistAccuracy(t *testing.T) {
	h := NewLatencyHist()
	v := 12345 * time.Microsecond
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	got := h.Percentile(50)
	relErr := math.Abs(float64(got-v)) / float64(v)
	if relErr > 0.07 {
		t.Fatalf("p50 = %v for constant %v (rel err %.3f)", got, v, relErr)
	}
}

func TestLatencyHistEmptyPercentiles(t *testing.T) {
	h := NewLatencyHist()
	for _, p := range []float64{-1, 0, 50, 99, 100, 200} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty hist p%v = %v; want 0", p, got)
		}
	}
	var zero *LatencyHist
	h.Merge(zero) // nil merge must be a no-op
	if h.Count() != 0 {
		t.Fatalf("count after nil merge = %d", h.Count())
	}
}

func TestLatencyHistSingleBucket(t *testing.T) {
	h := NewLatencyHist()
	v := 100 * time.Microsecond
	h.Observe(v)
	// With one observation every percentile lands in the same bucket,
	// whose lower bound is at most the observed value and within the
	// histogram's ~1/16 relative bucket width below it.
	lo := h.Percentile(0)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		got := h.Percentile(p)
		if got != lo {
			t.Fatalf("p%v = %v; want %v (single bucket)", p, got, lo)
		}
		if got > v || float64(v-got)/float64(v) > 1.0/histSubBuckets {
			t.Fatalf("p%v = %v outside bucket containing %v", p, got, v)
		}
	}
	if h.Mean() != v {
		t.Fatalf("mean = %v; want exact %v", h.Mean(), v)
	}
}

func TestLatencyHistMergeCommutative(t *testing.T) {
	build := func(vals []time.Duration) *LatencyHist {
		h := NewLatencyHist()
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := []time.Duration{time.Microsecond, 50 * time.Microsecond, 3 * time.Millisecond, 10 * time.Hour}
	b := []time.Duration{7 * time.Microsecond, 3 * time.Millisecond, 900 * time.Millisecond}

	ab := build(a)
	ab.Merge(build(b))
	ba := build(b)
	ba.Merge(build(a))
	union := build(append(append([]time.Duration{}, a...), b...))

	for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
		if ab.Percentile(p) != ba.Percentile(p) {
			t.Fatalf("p%v: a+b %v != b+a %v", p, ab.Percentile(p), ba.Percentile(p))
		}
		if ab.Percentile(p) != union.Percentile(p) {
			t.Fatalf("p%v: merged %v != union %v", p, ab.Percentile(p), union.Percentile(p))
		}
	}
	if ab.Count() != ba.Count() || ab.Count() != int64(len(a)+len(b)) {
		t.Fatalf("counts: a+b=%d b+a=%d want %d", ab.Count(), ba.Count(), len(a)+len(b))
	}
	if ab.Mean() != ba.Mean() || ab.Mean() != union.Mean() {
		t.Fatalf("means: a+b=%v b+a=%v union=%v", ab.Mean(), ba.Mean(), union.Mean())
	}
}

func TestSummaryStdDevNearConstant(t *testing.T) {
	// The naive sum-of-squares variance can go slightly negative on
	// near-constant streams with a large offset; StdDev must clamp it to
	// zero instead of returning NaN.
	var s Summary
	base := 1e9
	for i := 0; i < 10000; i++ {
		s.Observe(base + 1e-6*float64(i%2))
	}
	sd := s.StdDev()
	if math.IsNaN(sd) || sd < 0 {
		t.Fatalf("stddev = %v on near-constant stream", sd)
	}
	var c Summary
	for i := 0; i < 1000; i++ {
		c.Observe(base)
	}
	sd = c.StdDev()
	if math.IsNaN(sd) || sd < 0 {
		t.Fatalf("stddev = %v on constant stream", sd)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(0, 1)
	ts.Add(500*time.Millisecond, 1)
	ts.Add(2500*time.Millisecond, 3)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].V != 2 || pts[1].V != 3 {
		t.Fatalf("values = %v, %v", pts[0].V, pts[1].V)
	}
	dense := ts.Dense()
	if len(dense) != 3 {
		t.Fatalf("dense = %v", dense)
	}
	if dense[1].V != 0 {
		t.Fatalf("dense gap = %v; want 0", dense[1].V)
	}
	mean, peak, idle := ts.Stats()
	if peak != 3 {
		t.Fatalf("peak = %v", peak)
	}
	if math.Abs(mean-5.0/3.0) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(idle-1.0/3.0) > 1e-9 {
		t.Fatalf("idle = %v", idle)
	}
}

func TestTimeSeriesDefaultInterval(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.Interval() != time.Second {
		t.Fatalf("interval = %v; want 1s default", ts.Interval())
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Points(); len(pts) != 0 {
		t.Fatalf("points = %v; want empty", pts)
	}
	mean, peak, idle := ts.Stats()
	if mean != 0 || peak != 0 || idle != 0 {
		t.Fatal("empty stats should be zero")
	}
}
