package metrics

import (
	"sync"
	"time"
)

// StripedLatency is a latency histogram sharded across n independent
// stripes so concurrent recorders never touch a shared lock: each
// recorder observes into its own stripe (guarded by a per-stripe mutex
// that is uncontended as long as stripes are not shared), and readers
// merge all stripes into one LatencyHist on demand. The serve-mode
// workload drivers give every client goroutine its own stripe, so the
// submission hot path costs one uncontended lock acquisition — no global
// lock, no atomics on the bucket array.
type StripedLatency struct {
	stripes []latencyStripe
}

// latencyStripe pads each histogram pointer + mutex out to its own cache
// line so adjacent stripes do not false-share under concurrent Observe.
type latencyStripe struct {
	mu sync.Mutex
	h  *LatencyHist
	_  [64 - 16]byte
}

// NewStripedLatency returns a recorder with n stripes (n < 1 selects 1).
func NewStripedLatency(n int) *StripedLatency {
	if n < 1 {
		n = 1
	}
	s := &StripedLatency{stripes: make([]latencyStripe, n)}
	for i := range s.stripes {
		s.stripes[i].h = NewLatencyHist()
	}
	return s
}

// Stripes returns the stripe count.
func (s *StripedLatency) Stripes() int { return len(s.stripes) }

// Observe records d into the given stripe (taken modulo the stripe
// count, so callers may pass a worker index directly).
func (s *StripedLatency) Observe(stripe int, d time.Duration) {
	st := &s.stripes[stripe%len(s.stripes)]
	st.mu.Lock()
	st.h.Observe(d)
	st.mu.Unlock()
}

// Merge folds every stripe into one LatencyHist snapshot (merge-on-read:
// safe to call while recorders are still observing; the snapshot is
// bucket-exact for all observations that completed before their stripe
// was visited).
func (s *StripedLatency) Merge() *LatencyHist {
	out := NewLatencyHist()
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		out.Merge(st.h)
		st.mu.Unlock()
	}
	return out
}

// Count returns the total observation count across stripes (merge-on-read
// like Merge, without copying buckets).
func (s *StripedLatency) Count() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.h.Count()
		st.mu.Unlock()
	}
	return n
}
