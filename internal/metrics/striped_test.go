package metrics

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// A striped recorder must merge to exactly the histogram a single
// recorder would have produced from the union of the observations.
func TestStripedMergeEqualsUnion(t *testing.T) {
	s := NewStripedLatency(4)
	want := NewLatencyHist()
	for i := 0; i < 1000; i++ {
		d := time.Duration(1+i*7) * time.Microsecond
		s.Observe(i, d)
		want.Observe(d)
	}
	got := s.Merge()
	if got.Count() != want.Count() {
		t.Fatalf("count: got %d want %d", got.Count(), want.Count())
	}
	if got.Mean() != want.Mean() {
		t.Fatalf("mean: got %v want %v", got.Mean(), want.Mean())
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if got.Percentile(p) != want.Percentile(p) {
			t.Fatalf("p%.1f: got %v want %v", p, got.Percentile(p), want.Percentile(p))
		}
	}
	if s.Count() != want.Count() {
		t.Fatalf("striped count: got %d want %d", s.Count(), want.Count())
	}
}

// Concurrent observers on distinct stripes plus a concurrent merger must
// be race-free and lose no observations (run under -race).
func TestStripedConcurrentObserve(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	s := NewStripedLatency(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Observe(w, time.Duration(w*1000+i)*time.Microsecond)
			}
		}(w)
	}
	// Merge-on-read while writers are active: result is a valid snapshot.
	for i := 0; i < 10; i++ {
		if h := s.Merge(); h.Count() > workers*perWorker {
			t.Fatalf("snapshot overcounted: %d", h.Count())
		}
	}
	wg.Wait()
	if got := s.Merge().Count(); got != workers*perWorker {
		t.Fatalf("final count: got %d want %d", got, workers*perWorker)
	}
}

// TestStripedContendedObserve hammers EVERY stripe from every one of
// GOMAXPROCS goroutines — unlike the distinct-stripe test above, this
// forces real mutex contention on each stripe — and checks the merged
// result is bucket-exact against a serial reference histogram fed the
// same observations: same count, mean, and percentiles, not just the
// same cardinality. Run under -race this is the shared-pool era's
// contention gate for the recorder.
func TestStripedContendedObserve(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const stripes = 4
	const perWorker = 5000
	s := NewStripedLatency(stripes)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every goroutine cycles over all stripes; the duration
				// depends only on (w, i), so the reference can replay it.
				s.Observe(i, time.Duration(1+(w*perWorker+i)*13)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	want := NewLatencyHist()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			want.Observe(time.Duration(1+(w*perWorker+i)*13) * time.Microsecond)
		}
	}
	got := s.Merge()
	if got.Count() != want.Count() {
		t.Fatalf("count: got %d want %d", got.Count(), want.Count())
	}
	if got.Mean() != want.Mean() {
		t.Fatalf("mean: got %v want %v", got.Mean(), want.Mean())
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if got.Percentile(p) != want.Percentile(p) {
			t.Fatalf("p%.1f: got %v want %v", p, got.Percentile(p), want.Percentile(p))
		}
	}
}

func TestStripedStripeClamping(t *testing.T) {
	s := NewStripedLatency(0)
	if s.Stripes() != 1 {
		t.Fatalf("stripes: got %d want 1", s.Stripes())
	}
	s.Observe(17, time.Millisecond) // modulo stripe count, must not panic
	if s.Count() != 1 {
		t.Fatalf("count: got %d want 1", s.Count())
	}
}
