// Package metrics provides the statistics collectors used throughout the
// simulator and the experiment harness: streaming summaries, log-bucketed
// latency histograms with percentile queries, and fixed-interval time
// series (the paper's IOPS-over-time plots, Fig. 3, and the sensitivity
// sweeps, Fig. 12).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates count/sum/min/max/mean of a stream of float64
// observations. The zero value is ready to use.
type Summary struct {
	n    int64
	sum  float64
	ssq  float64
	min  float64
	max  float64
	seen bool
}

// Observe adds one observation.
func (s *Summary) Observe(v float64) {
	s.n++
	s.sum += v
	s.ssq += v * v
	if !s.seen || v < s.min {
		s.min = v
	}
	if !s.seen || v > s.max {
		s.max = v
	}
	s.seen = true
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Sum returns the sum of observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if !s.seen {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if !s.seen {
		return 0
	}
	return s.max
}

// StdDev returns the population standard deviation (0 when empty).
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.ssq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// LatencyHist is a log-bucketed histogram of durations supporting
// approximate percentile queries. Buckets grow geometrically from 1 µs to
// ~1 hour with 16 sub-buckets per octave, bounding relative error to ~4 %.
type LatencyHist struct {
	buckets  []int64
	count    int64
	sum      time.Duration
	overflow int64
}

const (
	histSubBuckets = 16
	histOctaves    = 32 // 1µs << 32 ≈ 1.2 hours
)

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{buckets: make([]int64, histSubBuckets*histOctaves)}
}

func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	// octave = floor(log2(us)), position within octave by linear division.
	oct := 63 - leadingZeros64(uint64(us))
	if oct >= histOctaves {
		return -1
	}
	base := int64(1) << uint(oct)
	sub := int((us - base) * histSubBuckets / base)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return oct*histSubBuckets + sub
}

func leadingZeros64(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound duration of bucket i.
func bucketLow(i int) time.Duration {
	oct := i / histSubBuckets
	sub := i % histSubBuckets
	base := int64(1) << uint(oct)
	us := base + base*int64(sub)/histSubBuckets
	return time.Duration(us) * time.Microsecond
}

// Observe adds one duration.
func (h *LatencyHist) Observe(d time.Duration) {
	h.count++
	h.sum += d
	i := bucketIndex(d)
	if i < 0 {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Merge adds every observation recorded in o into h (bucket-exact:
// merging histograms equals observing the union of their inputs).
// Sharded replay uses it to fold per-shard response distributions into
// one global distribution.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	h.count += o.count
	h.sum += o.sum
	h.overflow += o.overflow
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 { return h.count }

// Mean returns the exact mean duration.
func (h *LatencyHist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the approximate p-th percentile (p in [0,100]).
func (h *LatencyHist) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := int64(math.Ceil(p / 100 * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return bucketLow(i)
		}
	}
	return bucketLow(len(h.buckets) - 1)
}

// TimeSeries accumulates per-interval values over virtual time: used to
// plot IOPS-over-time and queue-depth-over-time series.
type TimeSeries struct {
	interval time.Duration
	bins     map[int64]float64
}

// NewTimeSeries returns a series with the given bin width.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{interval: interval, bins: make(map[int64]float64)}
}

// Add accumulates v into the bin containing time t.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.bins[int64(t/ts.interval)] += v
}

// Interval returns the bin width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

// Point is one (bin start, value) sample.
type Point struct {
	T time.Duration // bin start (virtual time)
	V float64       // accumulated value in the bin
}

// Points returns the series sorted by time. Empty bins are omitted.
func (ts *TimeSeries) Points() []Point {
	keys := make([]int64, 0, len(ts.bins))
	for k := range ts.bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, len(keys))
	for i, k := range keys {
		out[i] = Point{T: time.Duration(k) * ts.interval, V: ts.bins[k]}
	}
	return out
}

// Dense returns the series with empty bins filled with zeros from bin 0
// through the last occupied bin.
func (ts *TimeSeries) Dense() []Point {
	var maxBin int64 = -1
	for k := range ts.bins {
		if k > maxBin {
			maxBin = k
		}
	}
	out := make([]Point, 0, maxBin+1)
	for k := int64(0); k <= maxBin; k++ {
		out = append(out, Point{T: time.Duration(k) * ts.interval, V: ts.bins[k]})
	}
	return out
}

// Stats summarizes the dense series values (burstiness analysis: the
// peak-to-mean ratio and the fraction of idle bins).
func (ts *TimeSeries) Stats() (mean, peak, idleFrac float64) {
	pts := ts.Dense()
	if len(pts) == 0 {
		return 0, 0, 0
	}
	var sum float64
	idle := 0
	for _, p := range pts {
		sum += p.V
		if p.V > peak {
			peak = p.V
		}
		if p.V == 0 {
			idle++
		}
	}
	mean = sum / float64(len(pts))
	idleFrac = float64(idle) / float64(len(pts))
	return mean, peak, idleFrac
}
